#include "sparse/pattern.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace rt3 {

Pattern::Pattern(std::int64_t psize, std::vector<std::uint8_t> bits)
    : psize_(psize), bits_(std::move(bits)) {
  check(psize > 0, "Pattern: psize must be positive");
  check(static_cast<std::int64_t>(bits_.size()) == psize * psize,
        "Pattern: bits size mismatch");
  for (auto b : bits_) {
    check(b == 0 || b == 1, "Pattern: bits must be 0/1");
  }
}

Pattern Pattern::dense(std::int64_t psize) {
  return Pattern(psize,
                 std::vector<std::uint8_t>(
                     static_cast<std::size_t>(psize * psize), 1));
}

Pattern Pattern::from_importance(const Tensor& importance, std::int64_t kept) {
  check(importance.dim() == 2 && importance.size(0) == importance.size(1),
        "Pattern::from_importance: need square importance map");
  const std::int64_t psize = importance.size(0);
  const std::int64_t total = psize * psize;
  check(kept >= 0 && kept <= total,
        "Pattern::from_importance: kept out of range");
  std::vector<std::int64_t> order(static_cast<std::size_t>(total));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     return importance[a] > importance[b];
                   });
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(total), 0);
  for (std::int64_t k = 0; k < kept; ++k) {
    bits[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] = 1;
  }
  return Pattern(psize, std::move(bits));
}

bool Pattern::kept(std::int64_t r, std::int64_t c) const {
  check(r >= 0 && r < psize_ && c >= 0 && c < psize_,
        "Pattern::kept: out of range");
  return bits_[static_cast<std::size_t>(r * psize_ + c)] != 0;
}

std::int64_t Pattern::count_kept() const {
  std::int64_t n = 0;
  for (auto b : bits_) {
    n += b;
  }
  return n;
}

double Pattern::sparsity() const {
  return 1.0 - static_cast<double>(count_kept()) /
                   static_cast<double>(psize_ * psize_);
}

std::vector<std::int64_t> Pattern::kept_indices() const {
  std::vector<std::int64_t> idx;
  idx.reserve(static_cast<std::size_t>(count_kept()));
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i] != 0) {
      idx.push_back(static_cast<std::int64_t>(i));
    }
  }
  return idx;
}

Tensor Pattern::to_mask() const {
  Tensor mask({psize_, psize_});
  for (std::int64_t i = 0; i < psize_ * psize_; ++i) {
    mask[i] = static_cast<float>(bits_[static_cast<std::size_t>(i)]);
  }
  return mask;
}

double Pattern::retained_l2(const Tensor& block) const {
  check(block.dim() == 2 && block.size(0) == psize_ && block.size(1) == psize_,
        "Pattern::retained_l2: block shape mismatch");
  double acc = 0.0;
  for (std::int64_t i = 0; i < psize_ * psize_; ++i) {
    if (bits_[static_cast<std::size_t>(i)] != 0) {
      acc += static_cast<double>(block[i]) * block[i];
    }
  }
  return acc;
}

double Pattern::overlap(const Pattern& other) const {
  check(psize_ == other.psize_, "Pattern::overlap: psize mismatch");
  std::int64_t agree = 0;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    agree += (bits_[i] == other.bits_[i]) ? 1 : 0;
  }
  return static_cast<double>(agree) / static_cast<double>(bits_.size());
}

std::string Pattern::to_ascii() const {
  std::ostringstream os;
  for (std::int64_t r = 0; r < psize_; ++r) {
    for (std::int64_t c = 0; c < psize_; ++c) {
      os << (kept(r, c) ? '#' : '.');
    }
    os << '\n';
  }
  return os.str();
}

double PatternSet::sparsity() const {
  check(!patterns.empty(), "PatternSet::sparsity: empty set");
  return patterns.front().sparsity();
}

std::int64_t PatternSet::psize() const {
  check(!patterns.empty(), "PatternSet::psize: empty set");
  return patterns.front().psize();
}

std::int64_t PatternSet::storage_bytes() const {
  if (patterns.empty()) {
    return 0;
  }
  const std::int64_t p = psize();
  const std::int64_t bits_per_pattern = p * p;
  return static_cast<std::int64_t>(patterns.size()) *
         ((bits_per_pattern + 7) / 8);
}

}  // namespace rt3
