// The GovernorPolicy seam: LadderPolicy bitwise equivalence across the
// serve grid, Governor ladder validation, the adaptive-margin controller's
// EWMA window, and the learned RL governor — decision determinism under a
// fixed seed, reward monotonicity, and the train/serialize/reload
// round-trip behind `rt3 train-governor`.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "rl/governor.hpp"
#include "serve/governor_policy.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"

namespace rt3 {
namespace {

Governor paper_governor() {
  return Governor::equal_tranches(paper_serve_ladder());
}

TEST(DeadlinePressure, EdgeCasesAndInterpolation) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(deadline_pressure(100.0, inf, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(deadline_pressure(100.0, 110.0, 0.0), 1.0);
  // Halfway through the oldest request's max-wait budget.
  EXPECT_DOUBLE_EQ(deadline_pressure(90.0, 100.0, 20.0), 0.5);
  // Clamped on both sides.
  EXPECT_DOUBLE_EQ(deadline_pressure(0.0, 1000.0, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(deadline_pressure(200.0, 100.0, 20.0), 1.0);
}

// The seam's core contract: a session under the default governor (a bare
// ladder wrapped by the GovernorHandle) is byte-identical to one under an
// explicitly constructed LadderPolicy, across scenarios and with the
// governor-aware batching margin both off and on.
TEST(LadderPolicy, SessionsAreBitwiseIdenticalAcrossConstructionPaths) {
  for (const TrafficScenario scenario :
       {TrafficScenario::kSteady, TrafficScenario::kBurst,
        TrafficScenario::kDiurnal}) {
    for (const double margin : {0.0, 0.05}) {
      TrafficConfig tcfg;
      tcfg.scenario = scenario;
      tcfg.rate_rps = 3.0;
      tcfg.duration_ms = 30'000.0;
      const std::vector<Request> schedule = generate_traffic(tcfg);

      ServeSessionConfig implicit;  // GovernorKind::kLadder default
      implicit.governor_margin = margin;
      ServeSession a(implicit);

      ServeSessionConfig explicit_policy = implicit;
      explicit_policy.governor_policy =
          std::make_shared<LadderPolicy>(paper_governor());
      ServeSession b(explicit_policy);

      EXPECT_EQ(a.server().serve(schedule).to_json(),
                b.server().serve(schedule).to_json())
          << traffic_scenario_name(scenario) << " margin " << margin;
    }
  }
}

TEST(GovernorValidation, RejectsMalformedLadders) {
  try {
    Governor({5, 3, 2}, {0.6});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("3 levels need 2 thresholds, got 1"),
              std::string::npos)
        << e.what();
  }
  try {
    Governor({5, 3}, {1.5});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("out of (0, 1)"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(Governor({5, 3}, {std::nan("")}), CheckError);
  try {
    Governor({5, 3, 2}, {0.3, 0.6});
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("strictly descending"),
              std::string::npos)
        << e.what();
  }
  // Equal thresholds are not strictly descending either.
  EXPECT_THROW(Governor({5, 3, 2}, {0.5, 0.5}), CheckError);
}

TEST(AdaptiveMarginPolicy, WindowTracksDrainEwmaBetweenFloorAndCap) {
  AdaptiveMarginPolicy policy(paper_governor());
  // Before any feedback the window collapses to the configured floor.
  EXPECT_DOUBLE_EQ(policy.shrink_margin(0.0), 0.0);
  EXPECT_DOUBLE_EQ(policy.shrink_margin(0.05), 0.05);

  BatchFeedback fb;
  fb.drain_fraction = 0.01;
  policy.observe_batch(fb);  // first observation seeds the EWMA
  EXPECT_DOUBLE_EQ(policy.drain_ewma(), 0.01);
  EXPECT_DOUBLE_EQ(policy.shrink_margin(0.0), 0.02);  // 2 batches of drain

  fb.drain_fraction = 0.03;
  policy.observe_batch(fb);
  EXPECT_DOUBLE_EQ(policy.drain_ewma(), 0.01 + 0.2 * 0.02);
  // The configured margin stays a floor under the adaptive window.
  EXPECT_DOUBLE_EQ(policy.shrink_margin(0.1), 0.1);

  // A pathological draw spike saturates at the hard cap.
  fb.drain_fraction = 10.0;
  for (int i = 0; i < 50; ++i) {
    policy.observe_batch(fb);
  }
  EXPECT_DOUBLE_EQ(policy.shrink_margin(0.0), policy.config().max_margin);

  policy.reset();
  EXPECT_DOUBLE_EQ(policy.drain_ewma(), 0.0);
  EXPECT_DOUBLE_EQ(policy.shrink_margin(0.0), 0.0);

  // Decisions remain pure ladder lookups.
  GovernorObservation obs;
  obs.battery_fraction = 0.5;
  EXPECT_EQ(policy.decide(obs), paper_governor().level_position(0.5));
}

// Identically-seeded RL policies make identical greedy decisions over an
// identical observation stream, and repeated decide() calls inside one
// decision epoch return the cached choice.
TEST(RlGovernorPolicy, DecisionsAreDeterministicUnderFixedSeed) {
  RlGovernorConfig config;
  config.seed = 21;
  RlGovernorPolicy a(paper_governor(), config);
  RlGovernorPolicy b(paper_governor(), config);

  double fraction = 1.0;
  for (int step = 0; step < 40; ++step) {
    GovernorObservation obs;
    obs.now_ms = 100.0 * step;
    obs.battery_fraction = fraction;
    obs.queue_depth = step % 7;
    obs.deadline_pressure = (step % 5) / 4.0;
    const std::int64_t pos = a.decide(obs);
    EXPECT_EQ(pos, b.decide(obs)) << "step " << step;
    EXPECT_GE(pos, 0);
    EXPECT_LT(pos, a.num_levels());
    // Same epoch -> cached choice, even if the observation moved.
    GovernorObservation moved = obs;
    moved.queue_depth += 3;
    EXPECT_EQ(a.decide(moved), pos);

    BatchFeedback fb;
    fb.level_pos = pos;
    fb.batch_size = 2;
    fb.misses = step % 3 == 0 ? 1 : 0;
    fb.drain_fraction = 0.005;
    fraction -= 0.005;
    fb.battery_fraction = fraction;
    a.observe_batch(fb);
    b.observe_batch(fb);
  }
  EXPECT_EQ(a.decisions_this_episode(), 40);
  EXPECT_DOUBLE_EQ(a.miss_ewma(), b.miss_ewma());
}

// RL switches fire exactly at the boundary they were decided at: no
// threshold-crossing lag is attributed inside the drain.
TEST(RlGovernorPolicy, ReportsNoDrainLag) {
  RlGovernorPolicy policy(paper_governor());
  EXPECT_LT(policy.drain_lag_ms(0, 0.7, 0.6, 100.0), 0.0);
  // The ladder default DOES interpolate on the same crossing.
  LadderPolicy ladder(paper_governor());
  EXPECT_GT(ladder.drain_lag_ms(0, 0.7, 0.6, 100.0), 0.0);
}

TEST(GovernorReward, MoreMissesNeverIncreaseReward) {
  const GovernorRewardConfig config;
  ServerStats stats;
  stats.submitted = 100;
  stats.completed = 90;
  stats.dropped = 10;
  stats.sim_end_ms = 60'000.0;
  double prev = std::numeric_limits<double>::infinity();
  for (std::int64_t misses = 0; misses <= 90; ++misses) {
    stats.deadline_misses = misses;
    const double reward = governor_reward(config, stats);
    EXPECT_LE(reward, prev) << misses << " misses";
    prev = reward;
  }
  // Serving more of the submitted load is always at least as good...
  ServerStats more = stats;
  more.deadline_misses = 5;
  stats.deadline_misses = 5;
  more.completed = 95;
  more.dropped = 5;
  EXPECT_GT(governor_reward(config, more), governor_reward(config, stats));
  // ...and dying earlier is always worse.
  ServerStats died = stats;
  died.sim_end_ms = 30'000.0;
  EXPECT_LT(governor_reward(config, died), governor_reward(config, stats));
}

TEST(RlGovernorPolicy, TrainSerializeReloadRoundTrip) {
  GovernorTrainConfig tcfg;
  tcfg.episodes = 4;
  tcfg.traffic.rate_rps = 3.0;
  tcfg.traffic.duration_ms = 10'000.0;
  tcfg.reward.reference_lifetime_ms = tcfg.traffic.duration_ms;
  const GovernorTrainResult result = train_governor(tcfg);
  ASSERT_EQ(result.rewards.size(), 4u);
  ASSERT_EQ(result.advantages.size(), 4u);
  ASSERT_EQ(result.miss_rates.size(), 4u);
  ASSERT_NE(result.policy, nullptr);
  EXPECT_GT(result.policy->decisions_this_episode(), -1);  // reset() ran

  // Training is bit-deterministic from the config's seeds.
  const GovernorTrainResult repeat = train_governor(tcfg);
  EXPECT_EQ(result.policy->serialize(), repeat.policy->serialize());
  for (std::size_t e = 0; e < result.rewards.size(); ++e) {
    EXPECT_DOUBLE_EQ(result.rewards[e], repeat.rewards[e]);
  }

  // serialize -> parse -> serialize is byte-identical.
  const std::string text = result.policy->serialize();
  const std::shared_ptr<RlGovernorPolicy> reloaded =
      RlGovernorPolicy::parse(text, paper_governor());
  EXPECT_EQ(reloaded->serialize(), text);

  // The reloaded policy serves bit-identically to the trained original.
  TrafficConfig tc;
  tc.scenario = TrafficScenario::kBurst;
  tc.duration_ms = 20'000.0;
  const std::vector<Request> schedule = generate_traffic(tc);
  ServeSessionConfig original_cfg;
  original_cfg.governor_policy = result.policy;
  ServeSessionConfig reloaded_cfg;
  reloaded_cfg.governor_policy = reloaded;
  ServeSession original(original_cfg);
  ServeSession from_disk(reloaded_cfg);
  EXPECT_EQ(original.server().serve(schedule).to_json(),
            from_disk.server().serve(schedule).to_json());
}

TEST(RlGovernorPolicy, ParseRejectsCorruptArtifacts) {
  RlGovernorPolicy policy(paper_governor());
  const std::string text = policy.serialize();
  EXPECT_THROW(RlGovernorPolicy::parse("bogus\n", paper_governor()),
               CheckError);
  // A ladder with a different rung count must be rejected.
  EXPECT_THROW(
      RlGovernorPolicy::parse(text, Governor::equal_tranches({5, 3, 2, 1})),
      CheckError);
}

TEST(ServeSession, GovernorKindPlumbing) {
  EXPECT_EQ(governor_kind_from_name("ladder"), GovernorKind::kLadder);
  EXPECT_EQ(governor_kind_from_name("adaptive"), GovernorKind::kAdaptive);
  EXPECT_EQ(governor_kind_from_name("rl"), GovernorKind::kRl);
  EXPECT_THROW(governor_kind_from_name("ondemand"), CheckError);
  EXPECT_EQ(governor_kind_name(GovernorKind::kAdaptive), "adaptive");

  // The rl kind has no weights to invent: it requires a trained policy.
  ServeSessionConfig config;
  config.governor = GovernorKind::kRl;
  EXPECT_THROW(ServeSession session(config), CheckError);

  // An adaptive session runs end-to-end (and differs from ladder only
  // through the margin, so with margin 0 and light drain it still serves).
  ServeSessionConfig adaptive;
  adaptive.governor = GovernorKind::kAdaptive;
  TrafficConfig tc;
  tc.duration_ms = 10'000.0;
  const std::vector<Request> schedule = generate_traffic(tc);
  ServeSession session(adaptive);
  const ServerStats stats = session.server().serve(schedule);
  EXPECT_EQ(stats.completed + stats.dropped, stats.submitted);
}

}  // namespace
}  // namespace rt3
