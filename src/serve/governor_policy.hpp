// The governor seam: every level decision in the serving path goes
// through a GovernorPolicy, so "which rung do we run the next batch at"
// is a pluggable strategy instead of a hard-wired threshold lookup.
//
// Three families implement the seam:
//
//   LadderPolicy         — the paper's static battery-threshold ladder,
//       bit-for-bit the historical Governor behaviour (the default; every
//       pre-seam bench cell is byte-identical under it).
//   AdaptiveMarginPolicy — ladder decisions, but the governor-aware
//       batching margin widens/narrows with the observed per-batch energy
//       draw instead of staying a fixed configuration constant.
//   RlGovernorPolicy     — the paper's learned runtime controller
//       (src/rl/governor.hpp): a GRU policy over (battery fraction, queue
//       depth, deadline pressure, miss-rate EWMA), trained offline in the
//       virtual-clock simulator.
//
// The seam is deliberately narrow and pull-based: the serving loops build
// a GovernorObservation at each decision point and ask the policy, then
// feed back one BatchFeedback per executed batch.  Policies keep their own
// EWMAs from that feedback — they must NOT read the observability layer,
// which is contractually pure observation (attaching telemetry must leave
// serving byte-identical, so no control path may depend on it).
//
// Servers and nodes take a GovernorHandle, implicitly constructible from
// a plain Governor (wrapped in a LadderPolicy), so historical call sites
// keep compiling unchanged while policy-driven ones share one policy
// instance across every shard behind the same battery.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dvfs/dvfs.hpp"

namespace rt3 {

/// What the serving loop knows at a decision point (a batch boundary or
/// an idle wakeup).  Everything here is derived from loop-local state —
/// building it never perturbs the session.
struct GovernorObservation {
  double now_ms = 0.0;
  double battery_fraction = 1.0;
  /// Requests pending across the deciding scope's batcher(s).
  std::int64_t queue_depth = 0;
  /// How much of the oldest pending request's max-wait budget is already
  /// consumed, in [0, 1]; 0 when nothing is pending.  1 means a batch
  /// release is being forced right now — the deadline pressure signal.
  double deadline_pressure = 0.0;
};

/// Per-executed-batch feedback: the only channel through which a policy
/// sees outcomes (energy draw, misses), so stateful policies stay
/// independent of the pure-observation telemetry layer.
struct BatchFeedback {
  double start_ms = 0.0;
  double end_ms = 0.0;
  std::int64_t batch_size = 0;
  /// Level position the batch ran at.
  std::int64_t level_pos = 0;
  double energy_mj = 0.0;
  /// Battery fraction AFTER the batch's drain.
  double battery_fraction = 0.0;
  /// Battery fraction this one batch consumed (>= 0).
  double drain_fraction = 0.0;
  /// Deadline misses inside this batch.
  std::int64_t misses = 0;
};

/// Deadline-pressure signal from batcher state: the consumed share of the
/// oldest pending request's max-wait budget, in [0, 1].  `release_at_ms`
/// is the forced-release instant (+infinity when nothing pends -> 0).
double deadline_pressure(double now_ms, double release_at_ms,
                         double max_wait_ms);

/// Owns the level decision at every decision point of a serving loop.
/// Constructed over a Governor ladder, which remains the source of truth
/// for the level list (positions, table indices) even when decisions
/// ignore its thresholds.
class GovernorPolicy {
 public:
  explicit GovernorPolicy(Governor ladder) : ladder_(std::move(ladder)) {}
  virtual ~GovernorPolicy() = default;

  GovernorPolicy(const GovernorPolicy&) = delete;
  GovernorPolicy& operator=(const GovernorPolicy&) = delete;

  /// Short stable identifier ("ladder" / "adaptive" / "rl").
  virtual std::string name() const = 0;

  /// Level POSITION (0 = fastest rung) to run at, given the observation.
  virtual std::int64_t decide(const GovernorObservation& obs) = 0;

  /// Effective governor-aware-batching margin, given the configured one.
  /// The loop shrinks the batch cap while the battery sits within this
  /// margin above next_step_down; returning `configured_margin` unchanged
  /// (the default) preserves the historical behaviour exactly.
  virtual double shrink_margin(double configured_margin) const {
    return configured_margin;
  }

  /// Feedback after every executed batch (the policy's only outcome
  /// channel).  Stateless policies ignore it.
  virtual void observe_batch(const BatchFeedback& feedback) {
    (void)feedback;
  }

  /// Drain-then-switch lag bookkeeping: after a batch drained the battery
  /// from `frac_before` to `frac_after` over `lat_ms`, returns the lag
  /// from the decision boundary being crossed inside that (linear) drain
  /// to the batch's end — or a NEGATIVE value when this batch crossed no
  /// boundary (the caller then leaves its pending lag untouched).
  /// The default interpolates against the ladder threshold, exactly the
  /// historical formula.
  virtual double drain_lag_ms(std::int64_t active_pos, double frac_before,
                              double frac_after, double lat_ms) const;

  /// Clears per-episode state (EWMAs, recurrent state, cached decisions)
  /// at session start.  Learned weights survive; serve() calls this so
  /// repeated sessions on one policy instance are independent.
  virtual void reset() {}

  /// Battery fraction at which the ladder's level for `battery_fraction`
  /// steps down (0 on the last rung) — drives the margin shrink window
  /// and stays ladder-defined for every policy.
  double next_step_down(double battery_fraction) const {
    return ladder_.next_step_down(battery_fraction);
  }

  const Governor& ladder() const { return ladder_; }
  std::int64_t num_levels() const {
    return static_cast<std::int64_t>(ladder_.levels().size());
  }

 protected:
  Governor ladder_;
};

/// The historical static threshold governor behind the policy seam:
/// decisions are pure battery-threshold lookups, so a session under
/// LadderPolicy is byte-identical to the pre-seam serving path.
class LadderPolicy final : public GovernorPolicy {
 public:
  explicit LadderPolicy(Governor ladder) : GovernorPolicy(std::move(ladder)) {}

  std::string name() const override { return "ladder"; }
  std::int64_t decide(const GovernorObservation& obs) override {
    return ladder_.level_position(obs.battery_fraction);
  }
};

/// Ladder decisions with a self-sizing batching margin: instead of a
/// fixed configured margin, the shrink window tracks an EWMA of the
/// per-batch battery drain — heavy draw widens the window (the threshold
/// is coming fast, start shrinking earlier), light draw narrows it (don't
/// give up batch amortization for a crossing that is still far away).
class AdaptiveMarginPolicy final : public GovernorPolicy {
 public:
  struct Config {
    /// Margin expressed in units of per-batch drain: 2.0 means "start
    /// shrinking when the threshold is within ~2 batches of drain".
    double batches_of_headroom = 2.0;
    /// EWMA smoothing of the per-batch drain fraction.
    double drain_alpha = 0.2;
    /// Hard cap so a pathological draw spike cannot pin the margin open.
    double max_margin = 0.25;
  };

  explicit AdaptiveMarginPolicy(Governor ladder);
  AdaptiveMarginPolicy(Governor ladder, Config config);

  std::string name() const override { return "adaptive"; }
  std::int64_t decide(const GovernorObservation& obs) override {
    return ladder_.level_position(obs.battery_fraction);
  }
  double shrink_margin(double configured_margin) const override;
  void observe_batch(const BatchFeedback& feedback) override;
  void reset() override { drain_ewma_ = 0.0; }

  double drain_ewma() const { return drain_ewma_; }
  const Config& config() const { return config_; }

 private:
  Config config_;
  double drain_ewma_ = 0.0;
};

/// The governor surface Server/ServeNode constructors take: a shared
/// policy, implicitly constructible from a bare Governor (wrapped in a
/// LadderPolicy) so historical call sites stay one-line.  Shards behind
/// one battery share ONE policy instance through copies of the handle.
class GovernorHandle {
 public:
  /// Wraps the ladder in a LadderPolicy (the default governor behaviour).
  GovernorHandle(Governor ladder)  // NOLINT(google-explicit-constructor)
      : policy_(std::make_shared<LadderPolicy>(std::move(ladder))) {}

  /// Adopts a shared policy (rl / adaptive / custom).
  GovernorHandle(  // NOLINT(google-explicit-constructor)
      std::shared_ptr<GovernorPolicy> policy);

  GovernorPolicy& policy() const { return *policy_; }
  const std::shared_ptr<GovernorPolicy>& shared() const { return policy_; }
  /// The underlying level ladder (level list + thresholds).
  const Governor& ladder() const { return policy_->ladder(); }

 private:
  std::shared_ptr<GovernorPolicy> policy_;
};

}  // namespace rt3
