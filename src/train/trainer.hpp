// Training loops: base-model pre-training, Level-1 fine-tuning with the
// reweighted group lasso, the Fig.-2 JOINT training of the shared backbone
// across all selected pattern sets, and individual fine-tuning (the
// accuracy upper-bound baseline of Table III).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "data/corpus.hpp"
#include "data/glue.hpp"
#include "nn/distilbert.hpp"
#include "nn/module.hpp"
#include "nn/transformer_lm.hpp"
#include "pruning/model_pruner.hpp"
#include "sparse/pattern.hpp"

namespace rt3 {

struct TrainConfig {
  std::int64_t steps = 150;
  std::int64_t batch = 8;
  std::int64_t seq_len = 16;
  float lr = 5e-3F;
  /// Group-lasso strength during Level-1 fine-tuning (0 disables).
  float group_lasso_lambda = 0.0F;
  std::int64_t lasso_blocks = 4;
  std::uint64_t seed = 31;
};

/// Copies parameter values between two structurally identical modules
/// (matched by name); used to clone models for the UB baseline.
void copy_parameters(Module& dst, const Module& src);

/// Pre-trains / fine-tunes a TransformerLm on the corpus.  Honours any
/// masks installed on the model (masked weights receive no gradient).
/// Returns final validation next-word accuracy.
double train_lm(TransformerLm& model, const Corpus& corpus,
                const TrainConfig& config);

/// Evaluates validation next-word accuracy.
double eval_lm(const TransformerLm& model, const Corpus& corpus,
               std::int64_t batch = 8, std::int64_t seq_len = 16,
               std::int64_t max_batches = 8);

/// Pre-trains / fine-tunes a DistilBertLike on a GLUE-analog task.
/// Returns the final dev metric.
double train_glue(DistilBertLike& model, const GlueDataset& data,
                  const TrainConfig& config);

/// Fig. 2 joint training: for each step, every pattern set is applied in
/// turn, its sub-loss computed on the SAME minibatch, and the weighted sum
/// back-propagated through the shared backbone.  Afterwards the model's
/// masks are left on the LAST set; callers re-apply per-level masks before
/// evaluating.  Returns per-set accuracies measured after training.
struct JointTrainResult {
  std::vector<double> per_set_accuracy;
};

JointTrainResult joint_train_lm(TransformerLm& model, ModelPruner& pruner,
                                const std::vector<PatternSet>& sets,
                                const Corpus& corpus,
                                const TrainConfig& config,
                                const std::vector<double>& set_weights = {});

JointTrainResult joint_train_glue(DistilBertLike& model, ModelPruner& pruner,
                                  const std::vector<PatternSet>& sets,
                                  const GlueDataset& data,
                                  const TrainConfig& config,
                                  const std::vector<double>& set_weights = {});

}  // namespace rt3
