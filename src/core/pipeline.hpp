// The end-to-end RT3 pipeline (paper Fig. 1):
//
//   Level 1:  block-structured pruning of the pre-trained model -> fixed
//             backbone C, brief masked fine-tune.
//   Level 2:  build the shrunken pattern search space from C, run the RL
//             controller for a number of episodes — each episode samples
//             one pattern set per V/F level, checks the timing constraint
//             with the calibrated latency model, jointly trains the shared
//             backbone (Fig. 2) when feasible, and feeds the Eq. (1)
//             reward back — then fine-tunes the best solution and emits a
//             DeploymentPackage plus the exploration history (Fig. 3).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/pareto.hpp"
#include "data/corpus.hpp"
#include "data/glue.hpp"
#include "dvfs/dvfs.hpp"
#include "nn/distilbert.hpp"
#include "nn/transformer_lm.hpp"
#include "perf/latency_model.hpp"
#include "pruning/model_pruner.hpp"
#include "rl/controller.hpp"
#include "runtime/package.hpp"
#include "search/space.hpp"
#include "train/trainer.hpp"

namespace rt3 {

/// Everything configurable about one RT3 run.
struct Rt3Options {
  double timing_constraint_ms = 110.0;
  /// VfTable indices, fast -> slow (paper: {l6, l4, l3} = {5, 3, 2}).
  std::vector<std::int64_t> level_indices = {5, 3, 2};
  std::int64_t episodes = 10;
  double energy_budget_mj = 5e5;
  double min_accuracy = 0.0;  // Am; 0 = auto (0.5 * backbone accuracy)
  double penalty = 0.25;      // pen of Eq. (1)

  BpConfig bp;
  SearchSpaceConfig space;
  ControllerConfig controller;
  /// Short fine-tune inside each feasible episode.
  TrainConfig episode_train;
  /// Longer fine-tune of the selected solution.
  TrainConfig final_train;
  /// Level-1 recovery fine-tune after BP.
  TrainConfig backbone_train;

  std::uint64_t seed = 99;
};

/// Per-level outcome of the selected solution.
struct SubModelResult {
  std::string level_name;
  double freq_mhz = 0.0;
  double pattern_sparsity = 0.0;
  double overall_sparsity = 0.0;
  double latency_ms = 0.0;
  double accuracy = 0.0;
  double runs = 0.0;
};

/// One explored episode (Fig. 3(a) scatter).
struct ExploredPoint {
  double weighted_accuracy = 0.0;
  double total_runs = 0.0;
  double reward = 0.0;
  bool feasible = false;
};

/// Full result of an RT3 run.
struct Rt3Result {
  double original_accuracy = 0.0;   // dense pre-trained model
  double backbone_accuracy = 0.0;   // after Level 1 (Ao)
  double backbone_sparsity = 0.0;
  std::vector<SubModelResult> levels;
  std::vector<ExploredPoint> explored;
  double total_runs = 0.0;
  double weighted_accuracy = 0.0;
  /// Switch costs (paper Table III "Interrupt" row).
  double model_switch_ms = 0.0;         // UB: full model reload
  double pattern_switch_ms = 0.0;       // RT3, device model
  double pattern_switch_wall_ms = 0.0;  // RT3, measured on this host
  std::vector<PatternSet> chosen_sets;
};

/// RT3 on the Transformer / WikiText-2-analog workload.
class Rt3LmPipeline {
 public:
  /// `model` must already be pre-trained on `corpus`.
  Rt3LmPipeline(TransformerLm& model, const Corpus& corpus,
                const Rt3Options& options, ModelSpec paper_spec);

  Rt3Result run();

  /// Builds the deployable artifact from a finished run.
  DeploymentPackage package(const Rt3Result& result) const;

  const LatencyModel& latency_model() const { return latency_; }

 private:
  TransformerLm& model_;
  const Corpus& corpus_;
  Rt3Options options_;
  ModelSpec spec_;
  LatencyModel latency_;
  ModelPruner pruner_;
};

/// RT3 on the DistilBERT / GLUE-analog workload.
class Rt3GluePipeline {
 public:
  Rt3GluePipeline(DistilBertLike& model, const GlueDataset& data,
                  const Rt3Options& options, ModelSpec paper_spec);

  Rt3Result run();
  DeploymentPackage package(const Rt3Result& result) const;

  const LatencyModel& latency_model() const { return latency_; }

 private:
  DistilBertLike& model_;
  const GlueDataset& data_;
  Rt3Options options_;
  ModelSpec spec_;
  LatencyModel latency_;
  ModelPruner pruner_;
};

/// Shared search core used by both pipelines (exposed for tests).
/// `joint_train` runs Fig.-2 training over the given sets and returns
/// per-set accuracies; `measure_sparsity` returns the composed overall
/// sparsity for a set.
struct SearchHooks {
  std::function<std::vector<double>(const std::vector<PatternSet>&,
                                    const TrainConfig&)>
      joint_train;
  std::function<double(const PatternSet&)> measure_sparsity;
};

Rt3Result run_rt3_search(const Rt3Options& options, const ModelSpec& spec,
                         const LatencyModel& latency,
                         const PatternSearchSpace& space,
                         const SearchHooks& hooks, double original_accuracy,
                         double backbone_accuracy, double backbone_sparsity);

}  // namespace rt3
