// Calibrator: drives the measured kernels across execution modes and
// batch sizes, then fits the analytic LatencyModelConfig to the observed
// wall times (src/perf/calibration.hpp does the numeric fit).
#pragma once

#include <cstdint>
#include <vector>

#include "exec/measured_backend.hpp"
#include "nn/linear.hpp"
#include "perf/calibration.hpp"
#include "sparse/pattern.hpp"
#include "tensor/tensor.hpp"

namespace rt3 {

struct CalibratorConfig {
  /// Batch sizes sampled per mode (dense needs >= 2 distinct sizes).
  std::vector<std::int64_t> batch_sizes = {1, 2, 4, 8};
  /// Median-of-`repeats` wall time per (mode, batch) point.
  std::int64_t repeats = 3;
  /// Frequency at which host wall time is converted to cycles for the
  /// fit; any positive value works, it cancels out of latency ratios.
  double host_freq_mhz = 2000.0;
  /// Modes to measure; kPattern is skipped when no pattern set is given.
  /// kIrregular runs the SAME nonzeros as kPattern (the level's
  /// pattern-pruned weights as COO triples) so the fitted
  /// irregular_overhead isolates pure indexing cost — the paper's
  /// Challenge 1, measured instead of assumed.
  std::vector<ExecMode> modes = {ExecMode::kDense, ExecMode::kBlock,
                                 ExecMode::kPattern, ExecMode::kIrregular};
};

struct CalibrationResult {
  std::vector<LatencyObservation> observations;
  LatencyModelConfig fitted;
  /// Mean |measured - predicted| / measured after the fit.
  double mean_abs_rel_error = 0.0;
  /// The spec the observations were MAC-accounted against.
  ModelSpec spec;
};

class Calibrator {
 public:
  explicit Calibrator(CalibratorConfig config = {});

  /// Measures `layers` under each configured mode's kernels (one
  /// single-level MeasuredBackend per mode, pattern plans from `sets[0]`)
  /// and fits a LatencyModelConfig.  `base` carries kernel sizing
  /// (threads, cols_per_request, ...); its mode/scaling are ignored.
  CalibrationResult run(const MeasuredBackendConfig& base,
                        const std::vector<Linear*>& layers,
                        const std::vector<Tensor>& backbone_masks,
                        const std::vector<PatternSet>& sets) const;

  const CalibratorConfig& config() const { return config_; }

 private:
  CalibratorConfig config_;
};

}  // namespace rt3
