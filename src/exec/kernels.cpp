#include "exec/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/check.hpp"

namespace rt3 {
namespace {

/// Splits [0, total) into per-worker row ranges (chunk boundaries rounded
/// to `align` rows) and runs `body(begin, end)` on the pool; serial when
/// the pool is absent or the matrix is too small to amortize dispatch.
void parallel_rows(ThreadPool* pool, std::int64_t total, std::int64_t grain,
                   std::int64_t align,
                   const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (pool == nullptr || pool->num_threads() <= 1 || total < 2 * grain) {
    body(0, total);
    return;
  }
  const std::int64_t workers = pool->num_threads();
  std::int64_t chunk = (total + workers - 1) / workers;
  chunk = std::max(chunk, grain);
  chunk = ((chunk + align - 1) / align) * align;
  for (std::int64_t begin = 0; begin < total; begin += chunk) {
    const std::int64_t end = std::min(begin + chunk, total);
    pool->submit([&body, begin, end] { body(begin, end); });
  }
  pool->wait_idle();
}

void check_matmul_shapes(std::int64_t w_cols, const Tensor& x) {
  check(x.dim() == 2 && x.size(0) == w_cols,
        "exec kernel: activation shape mismatch");
}

}  // namespace

Tensor naive_dense_matmul(const Tensor& w, const Tensor& x) {
  check(w.dim() == 2, "naive_dense_matmul: need a 2-D weight");
  check_matmul_shapes(w.size(1), x);
  const std::int64_t rows = w.size(0);
  const std::int64_t cols = w.size(1);
  const std::int64_t n = x.size(1);
  Tensor out({rows, n});
  const float* wd = w.data();
  const float* xd = x.data();
  float* od = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0F;
      for (std::int64_t k = 0; k < cols; ++k) {
        acc = std::fma(wd[r * cols + k], xd[k * n + j], acc);
      }
      od[r * n + j] = acc;
    }
  }
  return out;
}

Tensor dense_gemm(const Tensor& w, const Tensor& x, ThreadPool* pool,
                  const KernelOptions& options) {
  check(w.dim() == 2, "dense_gemm: need a 2-D weight");
  check_matmul_shapes(w.size(1), x);
  check(options.k_tile >= 1 && options.row_grain >= 1,
        "dense_gemm: bad kernel options");
  const std::int64_t rows = w.size(0);
  const std::int64_t cols = w.size(1);
  const std::int64_t n = x.size(1);
  Tensor out({rows, n});
  const float* wd = w.data();
  const float* xd = x.data();
  float* od = out.data();
  const std::int64_t kt = options.k_tile;
  parallel_rows(pool, rows, options.row_grain, 1,
                [&](std::int64_t r0, std::int64_t r1) {
    // k-tiled ikj order: the kt rows of X stay hot across the row sweep;
    // each out element still sees k ascending, so results match the naive
    // reference bitwise.
    for (std::int64_t kk = 0; kk < cols; kk += kt) {
      const std::int64_t kend = std::min(kk + kt, cols);
      for (std::int64_t r = r0; r < r1; ++r) {
        const float* wrow = wd + r * cols;
        float* orow = od + r * n;
        for (std::int64_t k = kk; k < kend; ++k) {
          const float v = wrow[k];
          const float* xrow = xd + k * n;
          for (std::int64_t j = 0; j < n; ++j) {
            orow[j] = std::fma(v, xrow[j], orow[j]);
          }
        }
      }
    }
  });
  return out;
}

Tensor block_gemm(const BlockPrunedMatrix& w, const Tensor& x,
                  ThreadPool* pool, const KernelOptions& options) {
  check_matmul_shapes(w.cols(), x);
  const std::int64_t rows = w.rows();
  const std::int64_t n = x.size(1);
  const std::int64_t block_rows = w.block_rows();
  Tensor out({rows, n});
  const float* xd = x.data();
  float* od = out.data();
  parallel_rows(pool, rows, options.row_grain, 1,
                [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const std::int64_t b = r / block_rows;
      const std::int64_t lr = r - b * block_rows;
      const auto& kept = w.kept_cols(b);
      const auto& vals = w.block_values(b);
      const std::int64_t k = static_cast<std::int64_t>(kept.size());
      float* orow = od + r * n;
      for (std::int64_t ci = 0; ci < k; ++ci) {
        const float v = vals[static_cast<std::size_t>(lr * k + ci)];
        const float* xrow = xd + kept[static_cast<std::size_t>(ci)] * n;
        for (std::int64_t j = 0; j < n; ++j) {
          orow[j] = std::fma(v, xrow[j], orow[j]);
        }
      }
    }
  });
  return out;
}

Tensor pattern_gemm(const PatternPlan& plan, const Tensor& x,
                    ThreadPool* pool, const KernelOptions& options) {
  check_matmul_shapes(plan.cols, x);
  const std::int64_t n = x.size(1);
  const std::int64_t p = plan.psize;
  Tensor out({plan.rows, n});
  const float* xd = x.data();
  float* od = out.data();
  // Partition aligned to tile rows: each worker owns whole tile-rows.
  parallel_rows(pool, plan.rows, options.row_grain, p,
                [&](std::int64_t row0, std::int64_t row1) {
    const std::int64_t tr0 = row0 / p;
    const std::int64_t tr1 = (row1 + p - 1) / p;
    for (std::int64_t tr = tr0; tr < tr1; ++tr) {
      const std::int64_t rmax = std::min(p, plan.rows - tr * p);
      for (std::int64_t r = 0; r < rmax; ++r) {
        float* orow = od + (tr * p + r) * n;
        // Tiles ascending => contributions per out element arrive in
        // ascending global-column order, matching the naive reference.
        for (std::int64_t tc = 0; tc < plan.tiles_c; ++tc) {
          const PatternTile& tile =
              plan.tiles[static_cast<std::size_t>(tr * plan.tiles_c + tc)];
          const std::int32_t* row_ptr = plan.tile_row_ptr(tile);
          const std::int32_t* tcols = plan.tile_cols(tile);
          const float* vals = plan.values.data() + tile.value_offset;
          const float* xbase = xd + tc * p * n;
          for (std::int32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
            const float v = vals[i];
            const float* xrow = xbase + tcols[i] * n;
            for (std::int64_t j = 0; j < n; ++j) {
              orow[j] = std::fma(v, xrow[j], orow[j]);
            }
          }
        }
      }
    }
  });
  return out;
}

Tensor plan_gemm(const LayerPlan& plan, const Tensor& x, ThreadPool* pool,
                 const KernelOptions& options) {
  switch (plan.mode) {
    case ExecMode::kDense:
      return dense_gemm(plan.dense_weight, x, pool, options);
    case ExecMode::kBlock:
      return block_gemm(*plan.block, x, pool, options);
    case ExecMode::kPattern:
      return pattern_gemm(*plan.pattern, x, pool, options);
    case ExecMode::kIrregular:
      break;
  }
  throw CheckError("plan_gemm: unsupported mode");
}

}  // namespace rt3
