#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace rt3 {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  check(lo <= hi, "uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t n) {
  check(n > 0, "uniform_int: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t un = static_cast<std::uint64_t>(n);
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  std::uint64_t x = next_u64();
  while (x >= limit) {
    x = next_u64();
  }
  return static_cast<std::int64_t>(x % un);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] so log is finite.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::int64_t Rng::zipf(std::int64_t n, double s) {
  check(n > 0, "zipf: n must be positive");
  // Cumulative scan; adequate for the corpus sizes used in data synthesis.
  double total = 0.0;
  for (std::int64_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s);
  }
  const double target = uniform() * total;
  double acc = 0.0;
  for (std::int64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (acc >= target) {
      return k - 1;
    }
  }
  return n - 1;
}

std::int64_t Rng::categorical(const std::vector<double>& weights) {
  check(!weights.empty(), "categorical: empty weights");
  double total = 0.0;
  for (double w : weights) {
    check(w >= 0.0, "categorical: negative weight");
    total += w;
  }
  check(total > 0.0, "categorical: all-zero weights");
  const double target = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (acc >= target) {
      return static_cast<std::int64_t>(i);
    }
  }
  return static_cast<std::int64_t>(weights.size()) - 1;
}

std::vector<std::int64_t> Rng::sample_without_replacement(std::int64_t n,
                                                          std::int64_t k) {
  check(0 <= k && k <= n, "sample_without_replacement: need 0 <= k <= n");
  std::vector<std::int64_t> all(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    all[static_cast<std::size_t>(i)] = i;
  }
  shuffle(all);
  all.resize(static_cast<std::size_t>(k));
  return all;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace rt3
