#include "pruning/pattern_prune.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace rt3 {

std::int64_t kept_for_sparsity(std::int64_t psize, double sparsity) {
  check(sparsity >= 0.0 && sparsity <= 1.0,
        "kept_for_sparsity: sparsity out of range");
  const std::int64_t total = psize * psize;
  // Round kept DOWN (with an epsilon for exact ratios) so the realized
  // pattern sparsity never undershoots the requested one — undershooting
  // would break latency guarantees derived from the request.
  const auto kept = static_cast<std::int64_t>(
      std::floor((1.0 - sparsity) * static_cast<double>(total) + 1e-9));
  return std::clamp<std::int64_t>(kept, 1, total);
}

Tensor pattern_importance_map(const Tensor& backbone, std::int64_t psize,
                              std::int64_t sample_tiles, Rng& rng) {
  check(backbone.dim() == 2, "pattern_importance_map: need 2-D backbone");
  const std::int64_t rows = backbone.size(0);
  const std::int64_t cols = backbone.size(1);
  check(rows % psize == 0 && cols % psize == 0,
        "pattern_importance_map: dims must be multiples of psize");
  const std::int64_t tiles_r = rows / psize;
  const std::int64_t tiles_c = cols / psize;
  const std::int64_t total_tiles = tiles_r * tiles_c;
  check(sample_tiles > 0, "pattern_importance_map: need positive samples");
  const std::int64_t n_sample = std::min(sample_tiles, total_tiles);

  const auto chosen = rng.sample_without_replacement(total_tiles, n_sample);
  Tensor importance({psize, psize});
  for (std::int64_t t : chosen) {
    const std::int64_t tr = t / tiles_c;
    const std::int64_t tc = t % tiles_c;
    for (std::int64_t r = 0; r < psize; ++r) {
      for (std::int64_t c = 0; c < psize; ++c) {
        importance[r * psize + c] += std::abs(
            backbone[(tr * psize + r) * cols + tc * psize + c]);
      }
    }
  }
  return importance;
}

PatternSet build_pattern_set(const Tensor& backbone, std::int64_t psize,
                             double sparsity, std::int64_t m, Rng& rng) {
  check(m >= 1, "build_pattern_set: need at least one pattern");
  const std::int64_t rows = backbone.size(0);
  const std::int64_t cols = backbone.size(1);
  const std::int64_t total_tiles = (rows / psize) * (cols / psize);
  // Paper: sample n/2 of the n blocks per constructed pattern.
  const std::int64_t sample_tiles = std::max<std::int64_t>(1, total_tiles / 2);
  const std::int64_t kept = kept_for_sparsity(psize, sparsity);

  PatternSet set;
  set.patterns.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    const Tensor imp =
        pattern_importance_map(backbone, psize, sample_tiles, rng);
    Pattern p = Pattern::from_importance(imp, kept);
    // Distinct tile samples usually give distinct patterns; if a duplicate
    // appears (tiny matrices), nudge by re-sampling once.
    if (std::find(set.patterns.begin(), set.patterns.end(), p) !=
        set.patterns.end()) {
      const Tensor imp2 =
          pattern_importance_map(backbone, psize, sample_tiles, rng);
      p = Pattern::from_importance(imp2, kept);
    }
    set.patterns.push_back(std::move(p));
  }
  return set;
}

PatternSet random_pattern_set(std::int64_t psize, double sparsity,
                              std::int64_t m, Rng& rng) {
  check(m >= 1, "random_pattern_set: need at least one pattern");
  const std::int64_t total = psize * psize;
  const std::int64_t kept = kept_for_sparsity(psize, sparsity);
  PatternSet set;
  set.patterns.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    const auto keep_idx = rng.sample_without_replacement(total, kept);
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(total), 0);
    for (std::int64_t k : keep_idx) {
      bits[static_cast<std::size_t>(k)] = 1;
    }
    set.patterns.emplace_back(psize, std::move(bits));
  }
  return set;
}

Tensor pattern_mask_for_weight(const Tensor& weight, const PatternSet& set) {
  check(weight.dim() == 2, "pattern_mask_for_weight: need 2-D weight");
  check(!set.patterns.empty(), "pattern_mask_for_weight: empty set");
  const std::int64_t psize = set.psize();
  const std::int64_t rows = weight.size(0);
  const std::int64_t cols = weight.size(1);
  check(rows % psize == 0 && cols % psize == 0,
        "pattern_mask_for_weight: dims must be multiples of psize");

  Tensor mask(weight.shape());
  const std::int64_t tiles_r = rows / psize;
  const std::int64_t tiles_c = cols / psize;
  Tensor tile({psize, psize});
  for (std::int64_t tr = 0; tr < tiles_r; ++tr) {
    for (std::int64_t tc = 0; tc < tiles_c; ++tc) {
      for (std::int64_t r = 0; r < psize; ++r) {
        for (std::int64_t c = 0; c < psize; ++c) {
          tile[r * psize + c] =
              weight[(tr * psize + r) * cols + tc * psize + c];
        }
      }
      std::size_t best = 0;
      double best_l2 = -1.0;
      for (std::size_t p = 0; p < set.patterns.size(); ++p) {
        const double l2 = set.patterns[p].retained_l2(tile);
        if (l2 > best_l2) {
          best_l2 = l2;
          best = p;
        }
      }
      const Pattern& pat = set.patterns[best];
      for (std::int64_t r = 0; r < psize; ++r) {
        for (std::int64_t c = 0; c < psize; ++c) {
          mask[(tr * psize + r) * cols + tc * psize + c] =
              pat.kept(r, c) ? 1.0F : 0.0F;
        }
      }
    }
  }
  return mask;
}

}  // namespace rt3
