// Portable scalar kernel table: the lane-wise reference implementation
// every SIMD table must match bitwise, and the fallback on hosts without
// a compiled vector ISA.
#include "exec/kernels_dispatch.hpp"
#include "exec/kernels_inner.hpp"

namespace rt3 {

const KernelTable* scalar_kernel_table() {
  static const KernelTable table =
      inner::make_kernel_table<inner::VecScalar>("scalar");
  return &table;
}

}  // namespace rt3
