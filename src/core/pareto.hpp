// Pareto-front bookkeeping for the search-space exploration plots
// (paper Fig. 3(a): weighted accuracy vs number of runs).
#pragma once

#include <cstdint>
#include <vector>

namespace rt3 {

/// One explored solution.
struct ParetoPoint {
  double accuracy = 0.0;  // weighted accuracy (higher better)
  double runs = 0.0;      // number of runs (higher better)
  std::int64_t tag = -1;  // caller-defined payload (e.g. episode index)
};

/// True if `a` dominates `b` (>= in both objectives, > in at least one).
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Maintains the set of non-dominated points among all inserted ones.
class ParetoFront {
 public:
  /// Inserts a point; returns true if it joined the front (i.e. it is not
  /// dominated by an existing member).
  bool insert(const ParetoPoint& p);

  /// Current front, sorted by accuracy ascending.
  std::vector<ParetoPoint> front() const;

  /// Every point ever inserted (for scatter plots).
  const std::vector<ParetoPoint>& all() const { return all_; }

  /// The front member with the highest accuracy (paper's selection rule for
  /// P_T / P_L).  Requires a non-empty front.
  ParetoPoint best_accuracy() const;

 private:
  std::vector<ParetoPoint> front_;
  std::vector<ParetoPoint> all_;
};

}  // namespace rt3
