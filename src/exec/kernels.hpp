// Multi-threaded, cache-tiled, SIMD-dispatched CPU kernels for the
// measured backend.
//
// All kernels compute out[R,N] = W[R,C] x X[C,N] and accumulate every
// output element in ascending-k order through a single fused-multiply-add
// chain.  Vectorization happens across the activation (j) dimension only:
// a width-W kernel advances W independent per-lane chains per
// instruction, and hardware FMA rounds once per step exactly like
// std::fma — so kernel outputs are BITWISE equal to the naive reference
// lane by lane, regardless of ISA (exec/simd.hpp), tiling, unroll factor,
// thread count, or the compiler's FP-contraction choice.  Sparse kernels
// only skip terms whose stored weight is zero, which under fma
// contributes exactly nothing for finite activations.
//
// Parallelism partitions output rows across at most num_threads() chunks
// (each element is written by exactly one thread), so results are also
// independent of the thread count.  Cache tiling blocks the k-dimension
// so the active slice of X stays resident; k_tile = 0 auto-sizes it to
// the per-core L1/L2 budget.
#pragma once

#include <cstdint>

#include "exec/plan.hpp"
#include "serve/thread_pool.hpp"
#include "tensor/tensor.hpp"

namespace rt3 {

/// Textbook triple loop (r, j, then k ascending), fma-accumulated: the
/// correctness reference every kernel must match bitwise.
Tensor naive_dense_matmul(const Tensor& w, const Tensor& x);

/// Resolves k_tile = 0 to a cache-sized tile: the largest k span whose
/// X slice (k_tile x n floats) fits the per-core L1/L2 budget.
std::int64_t resolve_k_tile(const KernelOptions& options, std::int64_t cols,
                            std::int64_t n);

/// Dense GEMM, k-tiled, rows parallelized over `pool` (nullptr = serial).
Tensor dense_gemm(const Tensor& w, const Tensor& x, ThreadPool* pool,
                  const KernelOptions& options);

/// Kept-column GEMM over a block-pruned matrix: dense inner loops over
/// each block's kept columns (the paper's hardware-friendly layout).
Tensor block_gemm(const BlockPrunedMatrix& w, const Tensor& x,
                  ThreadPool* pool, const KernelOptions& options);

/// Pattern-masked GEMM driven by a precompiled PatternPlan: per-tile CSR
/// kept-index lists, no per-cell mask tests at execution time.
Tensor pattern_gemm(const PatternPlan& plan, const Tensor& x,
                    ThreadPool* pool, const KernelOptions& options);

/// Irregular COO GEMM: every nonzero pays per-element row/col index loads
/// and an output-row round trip (deliberately never vectorized or
/// accumulator-cached) — the measured form of the paper's Challenge-1
/// overhead argument.  Triples are row-major sorted, so per-lane
/// contributions still arrive in ascending-k order and the output is
/// bitwise equal to the dense reference.
Tensor coo_gemm(const IrregularPlan& plan, const Tensor& x, ThreadPool* pool,
                const KernelOptions& options);

/// Dispatches on the plan's ExecMode using exactly `options`; callers
/// that want the plan's autotuned options merge them in first (the
/// MeasuredBackend does), which lets the autotuner measure candidate
/// options against an already-tuned plan.
Tensor plan_gemm(const LayerPlan& plan, const Tensor& x, ThreadPool* pool,
                 const KernelOptions& options);

}  // namespace rt3
