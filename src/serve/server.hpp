// Battery-aware inference server with deadline-aware dynamic batching:
// ONE model's serving machinery (batcher, scheduler, engine, backend).
//
// The Server turns the per-inference ReconfigEngine + battery/governor
// machinery into a system under load: requests arrive open-loop (see
// traffic.hpp), a Batcher forms batches under a max-size/max-wait policy,
// and each batch executes at the V/F level the governor picks for the
// current battery fraction.  When the governor steps the ladder down the
// server DRAINS the in-flight batch first, then performs the pattern-set
// switch — never mid-batch, and never dropping queued requests — and
// accounts the switch latency and energy against the session.
//
// Time is virtual (ms since session start): batch latency comes from the
// calibrated LatencyModel with the fixed per-inference runtime cost
// amortized across the batch, energy from the PowerModel, so a session is
// bit-reproducible and runs in milliseconds of host time.  Ingestion may
// still be genuinely concurrent: serve_queue() accepts requests from any
// number of producer threads through the MPMC RequestQueue.
//
// OWNERSHIP.  A Server OWNS its ReconfigEngine and ExecutionBackend when
// they are handed over via adopt_engine()/adopt_backend() — which is how
// a ModelDeployment (serve/node.hpp) wires a shard — so one object owns
// one model's full serving machinery.
//
// GOVERNOR.  The level decision at every decision point goes through a
// GovernorPolicy (serve/governor_policy.hpp), passed in as a
// GovernorHandle.  A plain Governor converts implicitly to the default
// LadderPolicy, which reproduces the historical threshold behaviour
// bit-for-bit; adaptive and learned policies plug in through the same
// handle.
//
// Several backbone-resident models on one device share one battery and
// one governor through the multi-model ServeNode front-end (node.hpp),
// which drives per-model Server shards on a single clock; this class
// remains the single-model session loop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dvfs/dvfs.hpp"
#include "exec/analytic_backend.hpp"
#include "exec/backend.hpp"
#include "perf/latency_model.hpp"
#include "perf/model_spec.hpp"
#include "runtime/engine.hpp"
#include "serve/batcher.hpp"
#include "serve/governor_policy.hpp"
#include "serve/request.hpp"
#include "serve/stats.hpp"

namespace rt3 {

class TraceRecorder;
class MetricsRegistry;
class TelemetrySampler;
class SloMonitor;

struct ServerConfig {
  double battery_capacity_mj = 5e4;
  BatchPolicy batch;
  /// Batch-composition order: FIFO (the historical behaviour, default),
  /// EDF, or EDF with priority classes + aging (see serve/policy.hpp).
  SchedulerConfig scheduler;
  /// When false, only the V/F level changes with the battery (the paper's
  /// E2 baseline): the level-0 sub-model runs everywhere and no switch
  /// cost is paid.
  bool software_reconfig = true;
  /// Energy cost of one pattern-set switch (mJ).
  double switch_energy_mj = 0.5;
  /// Switch latency when no ReconfigEngine is attached; with an engine
  /// the modeled pattern-set switch time is used instead.
  double switch_latency_ms = 5.0;
  ExecMode exec_mode = ExecMode::kPattern;
  /// Load shedding: drop a request once its deadline is already blown,
  /// before it occupies a batch slot (counted in ServerStats::shed).
  bool shed_expired = false;
  /// Feasibility-based admission: reject a request at ingress when its
  /// deadline lies inside now + batch_latency(1, level) — not even an
  /// immediate solo launch could meet it, so admitting it can only blow
  /// other deadlines too (the EDF domino under sustained overload).
  /// Counted in ServerStats::rejected, separately from shed.
  bool admit_feasible = false;
  /// Governor-aware batching: while the battery fraction sits within this
  /// margin above the governor's next step-down threshold, batches are
  /// capped at governor_shrink_batch so the in-flight work drains — and
  /// the drain-then-switch point arrives — sooner.  0 disables.
  double governor_margin = 0.0;
  /// Batch cap applied inside the governor margin (clamped to
  /// [1, batch.max_batch_size]).
  std::int64_t governor_shrink_batch = 1;
};

/// Called after every executed batch: the batch, the governor-level
/// position it ran at, and its virtual start/end times.
using BatchObserver = std::function<void(
    const std::vector<Request>&, std::int64_t, double, double)>;

class Server {
 public:
  /// `sparsities[i]` is the overall model sparsity of the sub-model for
  /// governor-level position i (fast -> slow, one per governor level).
  /// `governor` accepts a plain Governor (wrapped in the default
  /// LadderPolicy) or any shared GovernorPolicy.
  Server(ServerConfig config, VfTable table, GovernorHandle governor,
         PowerModel power, LatencyModel latency, ModelSpec spec,
         std::vector<double> sparsities);

  /// Takes ownership of a live ReconfigEngine (the deployment path):
  /// level switches then re-compose real masks and use the engine's
  /// modeled switch latency.  One pattern set per governor level required.
  void adopt_engine(std::unique_ptr<ReconfigEngine> engine);

  /// Takes ownership of an execution backend (the deployment path);
  /// nullptr restores the built-in AnalyticBackend.  The backend's
  /// run_batch drives batch latency and its activate_level is called at
  /// every drain-then-switch point (and once at session start).
  void adopt_backend(std::unique_ptr<ExecutionBackend> backend);

  const ExecutionBackend& backend() const { return *backend_; }
  /// Mutable backend access for drivers that execute batches themselves
  /// (the ServeNode loop).
  ExecutionBackend& exec_backend() { return *backend_; }
  /// The engine switched at drain-then-switch points (nullptr when the
  /// session runs without one).
  ReconfigEngine* reconfig_engine() { return engine_; }

  void set_batch_observer(BatchObserver observer);
  /// The installed observer (empty when none); drivers that execute
  /// batches themselves (the ServeNode loop) invoke it per batch.
  const BatchObserver& batch_observer() const { return observer_; }

  /// Attaches a trace recorder (nullptr detaches): the serve loop then
  /// emits request-lifecycle spans, batch/switch spans, and governor
  /// instants, and forwards the recorder to the engine, backend, and
  /// batcher.  Every instrumentation site is a single `if (trace_)`
  /// branch, so trace-off sessions are bitwise-identical to untraced ones.
  void set_trace(TraceRecorder* trace);
  TraceRecorder* trace() const { return trace_; }

  /// Directs the session's metric counters into an external registry
  /// (nullptr restores the internal throwaway one): serve() mirrors every
  /// ServerStats countable into it under labeled names via
  /// ServerStats::publish.
  void set_metrics(MetricsRegistry* metrics);

  /// Attaches a continuous-telemetry sampler (nullptr detaches): serve()
  /// then reports every batch boundary, shed/reject count, and switch to
  /// it.  Same single-null-check overhead contract as set_trace —
  /// telemetry-off sessions are bitwise-identical to unattached ones.
  void set_telemetry(TelemetrySampler* telemetry);
  TelemetrySampler* telemetry() const { return telemetry_; }

  /// Attaches an SLO monitor (nullptr detaches): serve() then feeds it
  /// every batch boundary, forwards the trace recorder to it for
  /// breach/recover events, and publishes its breach counts into the
  /// metrics registry (when one is attached) at session end.
  void set_slo(SloMonitor* slo);
  SloMonitor* slo() const { return slo_; }

  /// Runs one full session over a pre-generated arrival schedule
  /// (sorted by arrival time).  Deterministic.
  ServerStats serve(const std::vector<Request>& schedule);

  /// Pops requests from the queue until it is closed and drained, orders
  /// them by arrival timestamp, and runs serve().  Producers may push
  /// from any number of threads.
  ServerStats serve_queue(RequestQueue& queue);

  /// ANALYTIC latency of one batch at a governor-level position: the fixed
  /// per-inference runtime cost is paid once, the MAC cost per request.
  /// This is the built-in AnalyticBackend's formula regardless of which
  /// backend is attached (kept as the modeled reference).
  double batch_latency_ms(std::int64_t batch_size,
                          std::int64_t level_pos) const;

  const ServerConfig& config() const { return config_; }
  /// The level ladder behind the active policy (level list + thresholds).
  const Governor& governor() const { return governor_.ladder(); }
  /// The policy deciding levels for this server's sessions.
  GovernorPolicy& governor_policy() { return governor_.policy(); }
  const GovernorHandle& governor_handle() const { return governor_; }
  const Battery& battery() const { return battery_; }
  const VfTable& vf_table() const { return table_; }
  const PowerModel& power() const { return power_; }

 private:
  double sparsity_for(std::int64_t level_pos) const;
  void set_engine(ReconfigEngine* engine);
  void set_backend(ExecutionBackend* backend);

  ServerConfig config_;
  VfTable table_;
  GovernorHandle governor_;
  PowerModel power_;
  LatencyModel latency_;
  ModelSpec spec_;
  std::vector<double> sparsities_;
  Battery battery_;
  /// Engine/backend storage for the owned-deployment path.
  std::unique_ptr<ReconfigEngine> owned_engine_;
  std::unique_ptr<ExecutionBackend> owned_backend_;
  ReconfigEngine* engine_ = nullptr;
  /// Built-in analytic path; backend_ points here unless one is attached.
  std::unique_ptr<AnalyticBackend> analytic_;
  ExecutionBackend* backend_ = nullptr;
  BatchObserver observer_;
  TraceRecorder* trace_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  TelemetrySampler* telemetry_ = nullptr;
  SloMonitor* slo_ = nullptr;
};

/// Pushes `schedule` through a RequestQueue from `producers` pool threads
/// (round-robin slices) while the server consumes — the real MPMC
/// ingestion path.  Stats are identical to server.serve(schedule): races
/// in ingestion order are erased by arrival-timestamp ordering.
ServerStats serve_concurrent(Server& server,
                             const std::vector<Request>& schedule,
                             std::int64_t producers);

}  // namespace rt3
