// Fully-connected layer with optional pruning mask.
//
// The mask is the central hook for RT3: block-structured pruning (Level 1)
// installs a fixed backbone mask; pattern pruning (Level 2) composes a
// per-V/F-level pattern mask on top.  Masked entries are forced to zero in
// the forward pass and receive no gradient, so fine-tuning never resurrects
// a pruned weight.
#pragma once

#include <optional>
#include <string>

#include "common/rng.hpp"
#include "nn/module.hpp"
#include "tensor/var.hpp"

namespace rt3 {

/// y = x @ W + b with W: [in_features, out_features].
/// Accepts inputs of shape [..., in_features]; leading dims are flattened
/// and restored.
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true);

  Var forward(const Var& x) const;

  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) const override;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

  Var& weight() { return weight_; }
  const Var& weight() const { return weight_; }
  Var& bias() { return bias_; }

  /// Installs (replaces) the pruning mask; shape must equal the weight's.
  /// Masking is forward-time only: weight values stay resident so another
  /// pattern set can re-expose them (the RT3 switch semantics).
  void set_mask(Tensor mask);

  /// Removes the mask (dense layer again).
  void clear_mask();

  bool has_mask() const { return mask_.has_value(); }
  const Tensor& mask() const;

  /// Fraction of weight entries currently masked to zero (0 when dense).
  double mask_sparsity() const;

  /// Re-applies the mask to the weight values (used after optimizer steps
  /// in contexts that bypass forward-mask semantics, e.g. export).
  void apply_mask_to_weights();

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  Var weight_;
  Var bias_;
  bool has_bias_;
  std::optional<Tensor> mask_;
};

}  // namespace rt3
