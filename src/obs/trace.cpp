#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/check.hpp"

namespace rt3 {

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::string trace_json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string trace_json_num(double value) {
  // %.17g is the repo-wide float wire format (see tuner/governor
  // artifacts): 17 significant digits round-trip every double exactly,
  // where the former precision(15) rendering silently lost the low bits.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

TraceEvent& TraceEvent::arg(const std::string& key, double value) {
  args.emplace_back(key, trace_json_num(value));
  return *this;
}

TraceEvent& TraceEvent::arg(const std::string& key, std::int64_t value) {
  args.emplace_back(key, std::to_string(value));
  return *this;
}

TraceEvent& TraceEvent::arg(const std::string& key,
                            const std::string& value) {
  args.emplace_back(key, "\"" + trace_json_escape(value) + "\"");
  return *this;
}

TraceRecorder::TraceRecorder(bool record_wall)
    : TraceRecorder(TraceConfig{record_wall, 0}) {}

TraceRecorder::TraceRecorder(const TraceConfig& config)
    : recorder_id_(next_recorder_id()), t0_(wall_now()), config_(config) {}

TraceRecorder::Buffer* TraceRecorder::local_buffer() {
  // Cache keyed by a unique recorder id, not the address: a recorder
  // constructed at a dead one's address must not inherit its buffer.
  // Lookup-only map: never iterated, so hash order cannot leak into any
  // output.
  // rt3-lint: allow(raw-parallel, hash-order) per-thread lookup-only cache
  thread_local std::unordered_map<std::uint64_t, Buffer*> cache;
  const auto it = cache.find(recorder_id_);
  if (it != cache.end()) {
    return it->second;
  }
  MutexLock lock(mu_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer* buffer = buffers_.back().get();
  cache[recorder_id_] = buffer;
  return buffer;
}

void TraceRecorder::record(TraceEvent event) {
  if (config_.max_events > 0 &&
      admitted_.fetch_add(1, std::memory_order_relaxed) >=
          config_.max_events) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  local_buffer()->events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::merged() const {
  struct Keyed {
    const TraceEvent* event;
    std::size_t seq;  // per-thread append order, the last tie-break
  };
  std::vector<Keyed> keyed;
  {
    MutexLock lock(mu_);
    for (const auto& buffer : buffers_) {
      for (std::size_t i = 0; i < buffer->events.size(); ++i) {
        keyed.push_back({&buffer->events[i], i});
      }
    }
  }
  // Canonical order: virtual time first, then stable content keys so the
  // merge is independent of which thread recorded what and of buffer
  // registration order.
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) {
                     const TraceEvent& x = *a.event;
                     const TraceEvent& y = *b.event;
                     if (x.ts_ms != y.ts_ms) {
                       return x.ts_ms < y.ts_ms;
                     }
                     if (x.tid != y.tid) {
                       return x.tid < y.tid;
                     }
                     if (x.cat != y.cat) {
                       return x.cat < y.cat;
                     }
                     if (x.name != y.name) {
                       return x.name < y.name;
                     }
                     if (x.id != y.id) {
                       return x.id < y.id;
                     }
                     return a.seq < b.seq;
                   });
  std::vector<TraceEvent> out;
  out.reserve(keyed.size());
  for (const Keyed& k : keyed) {
    out.push_back(*k.event);
  }
  return out;
}

std::int64_t TraceRecorder::num_events() const {
  MutexLock lock(mu_);
  std::int64_t n = 0;
  for (const auto& buffer : buffers_) {
    n += static_cast<std::int64_t>(buffer->events.size());
  }
  return n;
}

std::string TraceRecorder::to_chrome_json() const {
  const std::vector<TraceEvent> events = merged();
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  // Metadata: name every track so Perfetto shows lanes, not bare tids.
  std::vector<std::int64_t> tids;
  for (const TraceEvent& e : events) {
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  std::sort(tids.begin(), tids.end());
  for (const std::int64_t tid : tids) {
    const std::string lane =
        tid == 0 ? "node: governor + battery"
                 : "model " + std::to_string(tid - 1);
    os << (first ? "" : ",\n") << "  {\"name\": \"thread_name\", \"ph\": "
       << "\"M\", \"pid\": 1, \"tid\": " << tid
       << ", \"args\": {\"name\": \"" << lane << "\"}}";
    first = false;
  }
  for (const TraceEvent& e : events) {
    os << (first ? "" : ",\n") << "  {\"name\": \"" << trace_json_escape(e.name)
       << "\", \"cat\": \"" << trace_json_escape(e.cat) << "\", \"ph\": \""
       << e.ph << "\", \"ts\": " << trace_json_num(e.ts_ms * 1000.0)
       << ", \"pid\": 1, \"tid\": " << e.tid;
    if (e.ph == 'X') {
      os << ", \"dur\": " << trace_json_num(e.dur_ms * 1000.0);
    }
    if (e.ph == 'i') {
      os << ", \"s\": \"t\"";  // instant scope: thread
    }
    if (e.id >= 0 || !e.args.empty()) {
      os << ", \"args\": {";
      bool first_arg = true;
      if (e.id >= 0) {
        os << "\"id\": " << e.id;
        first_arg = false;
      }
      for (const auto& [key, value] : e.args) {
        os << (first_arg ? "" : ", ") << "\"" << trace_json_escape(key)
           << "\": " << value;
        first_arg = false;
      }
      os << "}";
    }
    os << "}";
    first = false;
  }
  // Footer: how complete this trace is.  Extra top-level keys are legal
  // in the JSON-object trace format and ignored by Perfetto.
  os << "\n], \"rt3\": {\"max_events\": " << config_.max_events
     << ", \"dropped_events\": " << dropped_events() << "}}\n";
  return os.str();
}

void TraceRecorder::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  check(out.good(), "TraceRecorder: cannot open " + path);
  out << to_chrome_json();
}

}  // namespace rt3
