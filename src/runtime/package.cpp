#include "runtime/package.hpp"

#include <fstream>

#include "common/check.hpp"

namespace rt3 {

namespace {

constexpr std::uint64_t kMagic = 0x525433504B473031ULL;  // "RT3PKG01"

void write_u64(std::ofstream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  check(is.good(), "package: truncated file (u64)");
  return v;
}

void write_f64(std::ofstream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

double read_f64(std::ifstream& is) {
  double v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  check(is.good(), "package: truncated file (f64)");
  return v;
}

void write_string(std::ofstream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::ifstream& is) {
  const std::uint64_t n = read_u64(is);
  check(n < (1ULL << 20), "package: absurd string length");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  check(is.good(), "package: truncated file (string)");
  return s;
}

void write_tensor(std::ofstream& os, const Tensor& t) {
  write_u64(os, static_cast<std::uint64_t>(t.dim()));
  for (std::int64_t d = 0; d < t.dim(); ++d) {
    write_u64(os, static_cast<std::uint64_t>(t.size(d)));
  }
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * 4));
}

Tensor read_tensor(std::ifstream& is) {
  const std::uint64_t dim = read_u64(is);
  check(dim <= 8, "package: absurd tensor rank");
  Shape shape;
  for (std::uint64_t d = 0; d < dim; ++d) {
    shape.push_back(static_cast<std::int64_t>(read_u64(is)));
  }
  Tensor t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * 4));
  check(is.good(), "package: truncated file (tensor)");
  return t;
}

void write_pattern_set(std::ofstream& os, const PatternSet& set) {
  write_u64(os, set.patterns.size());
  for (const auto& p : set.patterns) {
    write_u64(os, static_cast<std::uint64_t>(p.psize()));
    os.write(reinterpret_cast<const char*>(p.bits().data()),
             static_cast<std::streamsize>(p.bits().size()));
  }
}

PatternSet read_pattern_set(std::ifstream& is) {
  PatternSet set;
  const std::uint64_t n = read_u64(is);
  check(n < (1ULL << 16), "package: absurd pattern count");
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto psize = static_cast<std::int64_t>(read_u64(is));
    check(psize > 0 && psize <= 1024, "package: absurd psize");
    std::vector<std::uint8_t> bits(
        static_cast<std::size_t>(psize * psize));
    is.read(reinterpret_cast<char*>(bits.data()),
            static_cast<std::streamsize>(bits.size()));
    check(is.good(), "package: truncated file (pattern)");
    set.patterns.emplace_back(psize, std::move(bits));
  }
  return set;
}

}  // namespace

std::int64_t DeploymentPackage::resident_bytes() const {
  std::int64_t bytes = 0;
  for (const auto& t : params) {
    bytes += t.numel() * 4;
  }
  for (const auto& m : backbone_masks) {
    bytes += (m.numel() + 7) / 8;  // masks pack to bitmaps on device
  }
  return bytes;
}

std::int64_t DeploymentPackage::switch_bytes(std::int64_t level_index) const {
  check(level_index >= 0 &&
            level_index < static_cast<std::int64_t>(pattern_sets.size()),
        "DeploymentPackage: level index out of range");
  return pattern_sets[static_cast<std::size_t>(level_index)].storage_bytes();
}

void DeploymentPackage::save(const std::string& path) const {
  check(param_names.size() == params.size(),
        "DeploymentPackage: param name/tensor mismatch");
  check(prunable_names.size() == backbone_masks.size(),
        "DeploymentPackage: mask name/tensor mismatch");
  check(pattern_sets.size() == levels.size(),
        "DeploymentPackage: set/level mismatch");
  std::ofstream os(path, std::ios::binary);
  check(os.good(), "DeploymentPackage: cannot open " + path);
  write_u64(os, kMagic);
  write_u64(os, params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    write_string(os, param_names[i]);
    write_tensor(os, params[i]);
  }
  write_u64(os, backbone_masks.size());
  for (std::size_t i = 0; i < backbone_masks.size(); ++i) {
    write_string(os, prunable_names[i]);
    write_tensor(os, backbone_masks[i]);
  }
  write_u64(os, pattern_sets.size());
  for (std::size_t i = 0; i < pattern_sets.size(); ++i) {
    write_pattern_set(os, pattern_sets[i]);
    const LevelMeta& m = levels[i];
    write_string(os, m.level_name);
    write_f64(os, m.freq_mhz);
    write_f64(os, m.pattern_sparsity);
    write_f64(os, m.overall_sparsity);
    write_f64(os, m.latency_ms);
    write_f64(os, m.accuracy);
  }
  check(os.good(), "DeploymentPackage: write failed");
}

DeploymentPackage DeploymentPackage::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  check(is.good(), "DeploymentPackage: cannot open " + path);
  check(read_u64(is) == kMagic, "DeploymentPackage: bad magic");
  DeploymentPackage pkg;
  const std::uint64_t np = read_u64(is);
  check(np < (1ULL << 20), "package: absurd param count");
  for (std::uint64_t i = 0; i < np; ++i) {
    pkg.param_names.push_back(read_string(is));
    pkg.params.push_back(read_tensor(is));
  }
  const std::uint64_t nm = read_u64(is);
  check(nm < (1ULL << 20), "package: absurd mask count");
  for (std::uint64_t i = 0; i < nm; ++i) {
    pkg.prunable_names.push_back(read_string(is));
    pkg.backbone_masks.push_back(read_tensor(is));
  }
  const std::uint64_t ns = read_u64(is);
  check(ns < (1ULL << 10), "package: absurd set count");
  for (std::uint64_t i = 0; i < ns; ++i) {
    pkg.pattern_sets.push_back(read_pattern_set(is));
    LevelMeta m;
    m.level_name = read_string(is);
    m.freq_mhz = read_f64(is);
    m.pattern_sparsity = read_f64(is);
    m.overall_sparsity = read_f64(is);
    m.latency_ms = read_f64(is);
    m.accuracy = read_f64(is);
    pkg.levels.push_back(std::move(m));
  }
  return pkg;
}

}  // namespace rt3
