// Serving-under-traffic bench: one full battery-discharge serve session
// per traffic scenario (steady Poisson, bursty on/off, diurnal ramp),
// identical battery / ladder / batching policy, live ReconfigEngine.
//
// Emits a human table on stdout and machine-readable BENCH_serve.json
// ({scenario -> stats}) so later PRs have a perf trajectory to compare
// against: throughput, tail latency, deadline-miss rate, switch count.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"

int main(int argc, char** argv) {
  using namespace rt3;
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_serve.json");

  std::cout << "\n=== serve: battery-aware serving under traffic ===\n"
            << "One battery discharge per scenario; same ladder {l6,l4,l3},\n"
            << "same mean load, pattern-set switches between batches.\n\n";

  ServeSessionConfig scfg;  // defaults: 12 kmJ battery, T=115, batch<=2
  TrafficConfig tcfg;
  tcfg.rate_rps = 3.0;
  tcfg.duration_ms = 60'000.0;
  tcfg.deadline_slack_ms = 350.0;

  TablePrinter t({"scenario", "requests", "served", "dropped", "batches",
                  "thrpt (req/s)", "p50 (ms)", "p99 (ms)", "miss rate",
                  "switches"});
  std::string json = "{\n";
  bool first = true;
  for (TrafficScenario scenario :
       {TrafficScenario::kSteady, TrafficScenario::kBurst,
        TrafficScenario::kDiurnal}) {
    tcfg.scenario = scenario;
    const std::vector<Request> schedule = generate_traffic(tcfg);
    ServeSession session(scfg);
    const ServerStats stats = serve_concurrent(session.server(), schedule, 2);

    t.add_row({traffic_scenario_name(scenario),
               std::to_string(stats.submitted), std::to_string(stats.completed),
               std::to_string(stats.dropped), std::to_string(stats.batches),
               fmt_f(stats.throughput_rps(), 2),
               fmt_f(stats.latency_percentile(50.0), 1),
               fmt_f(stats.latency_percentile(99.0), 1),
               fmt_pct(stats.miss_rate()), std::to_string(stats.switches)});
    json += std::string(first ? "" : ",\n") + "  \"" +
            traffic_scenario_name(scenario) + "\": " + stats.to_json();
    first = false;
  }
  json += "\n}\n";
  std::cout << t.str();

  std::ofstream out(out_path);
  out << json;
  out.close();
  std::cout << "\nwrote " << out_path << "\n"
            << "Bursty arrivals fill batches faster (better amortization of\n"
            << "the fixed runtime cost) but queue deeper during bursts, which\n"
            << "shows up in the p99 tail; the diurnal peak behaves the same\n"
            << "way mid-session. Switch counts stay at 2: the governor walks\n"
            << "the three-level ladder once per discharge regardless of the\n"
            << "arrival process.\n";
  return 0;
}
