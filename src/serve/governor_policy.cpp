#include "serve/governor_policy.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rt3 {

double deadline_pressure(double now_ms, double release_at_ms,
                         double max_wait_ms) {
  if (!(release_at_ms < std::numeric_limits<double>::infinity())) {
    return 0.0;
  }
  if (max_wait_ms <= 0.0) {
    return 1.0;
  }
  return std::clamp(1.0 - (release_at_ms - now_ms) / max_wait_ms, 0.0, 1.0);
}

double GovernorPolicy::drain_lag_ms(std::int64_t active_pos,
                                    double frac_before, double frac_after,
                                    double lat_ms) const {
  // Historical drain-then-switch bookkeeping: if this batch's linear drain
  // carried the battery across the ladder threshold for `active_pos`, the
  // switch that fires at the batch boundary has been lagging since the
  // crossing instant — interpolate it inside the drain.
  if (!(frac_before > frac_after)) {
    return -1.0;
  }
  if (ladder_.level_position(frac_after) == active_pos) {
    return -1.0;
  }
  const double threshold = ladder_.next_step_down(frac_before);
  return lat_ms * (threshold - frac_after) / (frac_before - frac_after);
}

AdaptiveMarginPolicy::AdaptiveMarginPolicy(Governor ladder)
    : AdaptiveMarginPolicy(std::move(ladder), Config()) {}

AdaptiveMarginPolicy::AdaptiveMarginPolicy(Governor ladder, Config config)
    : GovernorPolicy(std::move(ladder)), config_(config) {}

double AdaptiveMarginPolicy::shrink_margin(double configured_margin) const {
  // Self-sizing window: "threshold within N batches of drain" in battery
  // fraction units.  Never narrower than the configured margin (the
  // operator's floor), never wider than the hard cap.
  const double adaptive =
      std::min(config_.batches_of_headroom * drain_ewma_, config_.max_margin);
  return std::max(adaptive, configured_margin);
}

void AdaptiveMarginPolicy::observe_batch(const BatchFeedback& feedback) {
  if (drain_ewma_ <= 0.0) {
    drain_ewma_ = feedback.drain_fraction;
    return;
  }
  drain_ewma_ += config_.drain_alpha * (feedback.drain_fraction - drain_ewma_);
}

GovernorHandle::GovernorHandle(std::shared_ptr<GovernorPolicy> policy)
    : policy_(std::move(policy)) {
  if (!policy_) {
    throw std::invalid_argument("GovernorHandle: policy must not be null");
  }
}

}  // namespace rt3
