// Measured-vs-analytic execution bench: per-level batch latency under
// both backends, PlanCache swap wall time, calibration fit quality, and
// one end-to-end measured burst serve session.
//
// Emits a human table on stdout and machine-readable BENCH_exec.json so
// the perf trajectory tracks the real execution path from this PR on.
//
//   bench_exec_backend [OUT.json] [REPEATS]
//
// REPEATS (default 5) sizes every median; CI smoke runs with REPEATS=1.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "exec/analytic_backend.hpp"
#include "exec/calibrator.hpp"
#include "exec/measured_backend.hpp"
#include "exec/simd.hpp"
#include "perf/latency_model.hpp"
#include "pruning/model_pruner.hpp"
#include "pruning/pattern_prune.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"

namespace {

using namespace rt3;

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// Min-of-many wall time for one (layer, level-0) plan under the CURRENT
// forced ISA.  Min, not median: contention only ever adds time.
double min_layer_ms(MeasuredBackend& backend, std::int64_t layer,
                    std::int64_t batch, std::int64_t iters) {
  const KernelOptions opts;  // backend defaults; tuning is ignored here
  double best = 1e300;
  for (std::int64_t i = 0; i < iters; ++i) {
    best = std::min(best, backend.time_layer_ms(layer, 0, batch, opts));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_exec.json");
  std::int64_t repeats = 5;
  if (argc > 2) {
    try {
      repeats = std::stoll(argv[2]);
    } catch (const std::exception&) {
      std::cerr << "bench_exec_backend: REPEATS must be an integer, got '"
                << argv[2] << "'\n";
      return 2;
    }
    if (repeats < 1) {
      std::cerr << "bench_exec_backend: REPEATS must be >= 1\n";
      return 2;
    }
  }

  std::cout << "\n=== exec: measured kernels vs analytic model ===\n"
            << "Pattern-mode kernels over a 3-layer 96x96 backbone, one\n"
            << "pattern set per {l6,l4,l3} ladder level, " << repeats
            << " repeat(s) per point.\n\n";

  // Backbone + per-level pattern sets (denser set at the faster level).
  Rng rng(31);
  std::vector<std::unique_ptr<Linear>> owned;
  std::vector<Linear*> layers;
  for (int i = 0; i < 3; ++i) {
    owned.push_back(std::make_unique<Linear>(96, 96, rng));
    layers.push_back(owned.back().get());
  }
  ModelPruner pruner(layers);
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.25;
  pruner.apply_bp(bp);
  std::vector<PatternSet> sets;
  for (double s : {0.25, 0.5, 0.75}) {
    sets.push_back(random_pattern_set(4, s, 2, rng));
  }

  const VfTable table = VfTable::odroid_xu3_a7();
  std::vector<double> freqs;
  for (std::int64_t li : paper_serve_ladder()) {
    freqs.push_back(table.level(li).freq_mhz);
  }
  MeasuredBackendConfig mcfg;
  mcfg.mode = ExecMode::kPattern;
  mcfg.threads = 2;
  MeasuredBackend measured(mcfg, layers, pruner.backbone_masks(), sets,
                           freqs);
  measured.auto_scale(0.8 * 115.0);

  const LatencyModel latency = paper_calibrated_latency();
  const AnalyticBackend analytic(latency, ModelSpec::paper_transformer(),
                                 ExecMode::kPattern, freqs,
                                 paper_ladder_sparsities(latency, 115.0));

  TablePrinter t({"level", "freq (MHz)", "analytic b2 (ms)",
                  "measured wall b2 (ms)", "measured virt b2 (ms)",
                  "plan swap (ms)"});
  std::string levels_json;
  for (std::int64_t pos = 0; pos < 3; ++pos) {
    // Swap wall time measured on a real transition (cycle away first).
    std::vector<double> swap_walls;
    for (std::int64_t rep = 0; rep < repeats; ++rep) {
      measured.activate_level((pos + 1) % 3);
      swap_walls.push_back(measured.activate_level(pos));
    }
    measured.run_batch(2, pos);  // warm
    std::vector<double> walls;
    std::vector<double> virts;
    for (std::int64_t rep = 0; rep < repeats; ++rep) {
      const BatchExecution exec = measured.run_batch(2, pos);
      walls.push_back(exec.kernel_wall_ms);
      virts.push_back(exec.latency_ms);
    }
    const double analytic_ms = analytic.batch_latency_ms(2, pos);
    const double wall = median(walls);
    const double virt = median(virts);
    const double swap = median(swap_walls);
    const std::string name =
        table.level(paper_serve_ladder()[static_cast<std::size_t>(pos)]).name;
    t.add_row({name, fmt_f(freqs[static_cast<std::size_t>(pos)], 0),
               fmt_f(analytic_ms, 2), fmt_f(wall, 4), fmt_f(virt, 2),
               fmt_f(swap, 5)});
    levels_json += std::string(pos == 0 ? "" : ",\n") +
                   "    {\"level\": \"" + name +
                   "\", \"freq_mhz\": " + std::to_string(freqs[static_cast<std::size_t>(pos)]) +
                   ", \"analytic_batch2_ms\": " + std::to_string(analytic_ms) +
                   ", \"measured_wall_batch2_ms\": " + std::to_string(wall) +
                   ", \"measured_virtual_batch2_ms\": " + std::to_string(virt) +
                   ", \"plan_swap_wall_ms\": " + std::to_string(swap) + "}";
  }
  std::cout << t.str() << "\n";

  // SIMD-vs-scalar kernel speedup per family at level 0: the same plan is
  // timed under a forced-scalar table and under the detected ISA, so the
  // ratio is pure vectorization win (outputs are bitwise identical either
  // way).  Median across the 3 layers of per-layer min-of-many ratios;
  // single worker thread so the ratio is not polluted by scheduling.
  const SimdIsa detected = detect_simd_isa();
  const std::int64_t speed_batch = 32;
  const std::int64_t speed_iters = std::max<std::int64_t>(12, repeats * 8);
  TablePrinter st({"family", "scalar (ms)", simd_isa_name(detected) +
                                                std::string(" (ms)"),
                   "speedup"});
  std::string speed_json;
  const ExecMode speed_modes[] = {ExecMode::kDense, ExecMode::kBlock,
                                  ExecMode::kPattern, ExecMode::kIrregular};
  for (ExecMode mode : speed_modes) {
    MeasuredBackendConfig kcfg;
    kcfg.mode = mode;
    kcfg.threads = 1;
    kcfg.max_batch = std::max<std::int64_t>(kcfg.max_batch, speed_batch);
    const bool wants_set =
        mode == ExecMode::kPattern || mode == ExecMode::kIrregular;
    const std::vector<PatternSet> level_sets =
        wants_set ? std::vector<PatternSet>{sets.front()}
                  : std::vector<PatternSet>{};
    MeasuredBackend kb(kcfg, layers, pruner.backbone_masks(), level_sets,
                       {1000.0});
    kb.run_batch(1, 0);  // warm caches + pool
    std::vector<double> ratios, scalars, simds;
    for (std::int64_t li = 0; li < 3; ++li) {
      set_simd_isa(SimdIsa::kScalar);
      const double scalar_ms = min_layer_ms(kb, li, speed_batch, speed_iters);
      set_simd_isa(detected);
      const double simd_ms = min_layer_ms(kb, li, speed_batch, speed_iters);
      scalars.push_back(scalar_ms);
      simds.push_back(simd_ms);
      ratios.push_back(scalar_ms / simd_ms);
    }
    const double scalar_med = median(scalars);
    const double simd_med = median(simds);
    const double speedup = median(ratios);
    const char* fam = exec_mode_name(mode);
    st.add_row({fam, fmt_f(scalar_med, 5), fmt_f(simd_med, 5),
                fmt_f(speedup, 2) + "x"});
    speed_json += std::string(speed_json.empty() ? "" : ",\n") +
                  "      \"" + fam + "\": {\"scalar_ms\": " +
                  std::to_string(scalar_med) +
                  ", \"simd_ms\": " + std::to_string(simd_med) +
                  ", \"speedup\": " + std::to_string(speedup) + "}";
  }
  std::cout << "kernel speedup vs forced-scalar ("
            << simd_isa_name(detected) << ", batch " << speed_batch
            << ", level 0, median of per-layer ratios):\n"
            << st.str() << "\n";

  // Calibration fit over the same layers.
  CalibratorConfig ccfg;
  ccfg.batch_sizes = {1, 2, 4, 8};
  ccfg.repeats = std::max<std::int64_t>(1, std::min<std::int64_t>(repeats, 3));
  const CalibrationResult cal =
      Calibrator(ccfg).run(mcfg, layers, pruner.backbone_masks(), sets);
  std::cout << "calibrated fit: macs/cycle " << fmt_f(cal.fitted.macs_per_cycle, 1)
            << ", fixed cycles " << fmt_f(cal.fitted.fixed_cycles, 0)
            << ", block overhead " << fmt_f(cal.fitted.block_overhead, 3)
            << ", pattern overhead " << fmt_f(cal.fitted.pattern_overhead, 3)
            << ", mean |rel err| " << fmt_pct(cal.mean_abs_rel_error) << "\n\n";

  // End-to-end burst serve session on the measured backend.
  ServeSessionConfig scfg;
  scfg.backend = ExecBackendKind::kMeasured;
  scfg.shed_expired = true;
  ServeSession session(scfg);
  TrafficConfig tcfg;
  tcfg.scenario = TrafficScenario::kBurst;
  tcfg.rate_rps = 3.0;
  tcfg.duration_ms = repeats > 1 ? 60'000.0 : 15'000.0;
  tcfg.deadline_slack_ms = 350.0;
  const ServerStats stats =
      serve_concurrent(session.server(), generate_traffic(tcfg), 2);
  std::cout << "measured burst session:\n" << stats.summary();

  std::string json = "{\n  \"levels\": [\n" + levels_json + "\n  ],\n";
  json += "  \"kernel_speedup\": {\n    \"isa\": \"" +
          std::string(simd_isa_name(detected)) +
          "\",\n    \"batch\": " + std::to_string(speed_batch) +
          ",\n    \"families\": {\n" + speed_json + "\n    }\n  },\n";
  json += "  \"plan_build_wall_ms\": " +
          std::to_string(measured.plans().build_wall_ms()) + ",\n";
  json += "  \"calibration\": {\"macs_per_cycle\": " +
          std::to_string(cal.fitted.macs_per_cycle) +
          ", \"fixed_cycles\": " + std::to_string(cal.fitted.fixed_cycles) +
          ", \"block_overhead\": " + std::to_string(cal.fitted.block_overhead) +
          ", \"pattern_overhead\": " +
          std::to_string(cal.fitted.pattern_overhead) +
          ", \"mean_abs_rel_error\": " +
          std::to_string(cal.mean_abs_rel_error) + "},\n";
  json += "  \"serve_measured_burst\": " + stats.to_json() + "\n}\n";
  std::ofstream out(out_path);
  out << json;
  out.close();
  std::cout << "\nwrote " << out_path << "\n"
            << "Plan swaps are pointer reassignments (microseconds) while\n"
            << "the per-level plans were compiled once up front — the\n"
            << "kernel-level analogue of the paper's ms-scale pattern-set\n"
            << "switch vs. minute-scale model reload.\n";
  return 0;
}
