// Reproduces paper Fig. 5: block-structured pruning alone on the nine GLUE
// tasks (DistilBERT analog) and WikiText-2 (Transformer analog).
//
// For each task: original score (white bar), BP score (black bar), and the
// compression rate annotation.  Paper's per-task rates range 1.2x-2.8x with
// an average accuracy loss of 1.74%.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "pruning/model_pruner.hpp"

namespace {

using namespace rt3;

// Per-task compression rates annotated in the paper's Fig. 5.
struct TaskPlan {
  GlueTask task;
  double paper_rate;  // e.g. 2.0 means 2x compression
};

constexpr TaskPlan kPlans[] = {
    {GlueTask::kMnli, 1.7}, {GlueTask::kQqp, 2.0},  {GlueTask::kQnli, 2.0},
    {GlueTask::kSst2, 1.7}, {GlueTask::kCola, 1.7}, {GlueTask::kStsB, 1.2},
    {GlueTask::kMrpc, 2.0}, {GlueTask::kRte, 1.2},  {GlueTask::kWnli, 2.8},
};

}  // namespace

int main() {
  using namespace rt3;
  bench::print_header("Fig. 5 - block-structured pruning across GLUE",
                      "paper Fig. 5: original vs BP score, rate annotations");

  TablePrinter t({"Task", "Metric", "Rate", "Original", "BP", "Loss"});
  double total_loss = 0.0;
  int count = 0;

  for (const TaskPlan& plan : kPlans) {
    bench::GlueWorkload w =
        bench::make_glue_workload(plan.task, 70 + count);
    ModelPruner pruner(w.model->prunable());
    BpConfig bp;
    bp.num_blocks = 4;
    bp.prune_fraction = 1.0 - 1.0 / plan.paper_rate;
    pruner.apply_bp(bp);
    TrainConfig ft;
    ft.steps = 80;
    ft.batch = 16;
    ft.lr = 5e-3F;
    const double bp_score = train_glue(*w.model, *w.data, ft);
    const double loss = w.dense_score - bp_score;
    total_loss += loss;
    ++count;
    t.add_row({GlueDataset::task_name(plan.task),
               GlueDataset::metric_name(w.data->metric()),
               fmt_x(plan.paper_rate, 1), fmt_pct(w.dense_score),
               fmt_pct(bp_score), fmt_pct(loss)});
  }

  // WikiText-2 analog (paper annotates 2x on WikiText-2).
  {
    bench::LmWorkload w = bench::make_lm_workload(80);
    ModelPruner pruner(w.model->prunable());
    BpConfig bp;
    bp.num_blocks = 4;
    bp.prune_fraction = 0.5;
    pruner.apply_bp(bp);
    TrainConfig ft;
    ft.steps = 80;
    ft.batch = 12;
    ft.seq_len = 16;
    ft.lr = 8e-3F;
    const double bp_acc = train_lm(*w.model, *w.corpus, ft);
    const double loss = w.dense_accuracy - bp_acc;
    total_loss += loss;
    ++count;
    t.add_row({"WikiText-2", "accuracy", "2.0x", fmt_pct(w.dense_accuracy),
               fmt_pct(bp_acc), fmt_pct(loss)});
  }

  std::cout << t.str();
  std::cout << "\nAverage loss across tasks: "
            << fmt_pct(total_loss / count)
            << "  (paper: up to 2x compression with 1.74% average loss)\n"
            << "Shape check: BP at the paper's per-task rates keeps scores "
               "close to the originals on every task.\n";
  return 0;
}
