// Templated inner-loop bodies shared by every ISA instantiation.
//
// A vector type V models W = V::kWidth adjacent activation lanes:
//   load/store  : W contiguous floats
//   broadcast   : one weight splat across lanes
//   fma(a,b,c)  : per-lane fused multiply-add, SINGLE rounding per step
// Each output element's accumulation is one per-lane fma chain over
// ascending k, identical to the scalar reference (std::fma is also a
// single-rounding fused op), so kernels built from these bodies are
// bitwise equal to naive_dense_matmul lane by lane — for any W, any
// unroll factor, any tiling, and any thread count.
//
// U > 1 keeps U independent j-vector accumulator chains in flight per
// row; chains never mix lanes, so the per-lane operation sequence is
// unchanged while the fma pipeline stays busy.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "exec/kernels_dispatch.hpp"

namespace rt3 {
namespace inner {

/// Portable reference lanes (width 1).  Also the tail implementation every
/// wider ISA falls back to for n % W lanes.
struct VecScalar {
  static constexpr std::int64_t kWidth = 1;
  using Reg = float;
  static Reg load(const float* p) { return *p; }
  static void store(float* p, Reg r) { *p = r; }
  static Reg broadcast(float v) { return v; }
  static Reg fma(Reg a, Reg b, Reg c) { return std::fma(a, b, c); }
};

template <class V, int U>
void dense_rows(const DenseRangeArgs& a, std::int64_t r0, std::int64_t r1) {
  constexpr std::int64_t w = V::kWidth;
  const std::int64_t cols = a.cols;
  const std::int64_t n = a.n;
  const std::int64_t kt = a.k_tile;
  for (std::int64_t kk = 0; kk < cols; kk += kt) {
    const std::int64_t kend = std::min(kk + kt, cols);
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* wrow = a.w + r * cols;
      float* orow = a.out + r * n;
      std::int64_t j = 0;
      for (; j + w * U <= n; j += w * U) {
        typename V::Reg acc[U];
        for (int u = 0; u < U; ++u) {
          acc[u] = V::load(orow + j + u * w);
        }
        for (std::int64_t k = kk; k < kend; ++k) {
          const auto v = V::broadcast(wrow[k]);
          const float* xp = a.x + k * n + j;
          for (int u = 0; u < U; ++u) {
            acc[u] = V::fma(v, V::load(xp + u * w), acc[u]);
          }
        }
        for (int u = 0; u < U; ++u) {
          V::store(orow + j + u * w, acc[u]);
        }
      }
      for (; j + w <= n; j += w) {  // single-vector tail
        auto acc = V::load(orow + j);
        for (std::int64_t k = kk; k < kend; ++k) {
          acc = V::fma(V::broadcast(wrow[k]), V::load(a.x + k * n + j), acc);
        }
        V::store(orow + j, acc);
      }
      for (; j < n; ++j) {  // scalar tail lanes, same ascending-k chain
        float acc = orow[j];
        for (std::int64_t k = kk; k < kend; ++k) {
          acc = std::fma(wrow[k], a.x[k * n + j], acc);
        }
        orow[j] = acc;
      }
    }
  }
}

template <class V, int U>
void block_rows(const BlockRangeArgs& a, std::int64_t r0, std::int64_t r1) {
  constexpr std::int64_t w = V::kWidth;
  const std::int64_t n = a.n;
  const std::int64_t rows_per_block = a.w->block_rows();
  for (std::int64_t r = r0; r < r1; ++r) {
    const std::int64_t b = r / rows_per_block;
    const std::int64_t lr = r - b * rows_per_block;
    const auto& kept = a.w->kept_cols(b);
    const auto& vals = a.w->block_values(b);
    const std::int64_t kc = static_cast<std::int64_t>(kept.size());
    const float* vrow = vals.data() + lr * kc;
    float* orow = a.out + r * n;
    std::int64_t j = 0;
    for (; j + w * U <= n; j += w * U) {
      typename V::Reg acc[U];
      for (int u = 0; u < U; ++u) {
        acc[u] = V::load(orow + j + u * w);
      }
      for (std::int64_t ci = 0; ci < kc; ++ci) {
        const auto v = V::broadcast(vrow[ci]);
        const float* xp =
            a.x + kept[static_cast<std::size_t>(ci)] * n + j;
        for (int u = 0; u < U; ++u) {
          acc[u] = V::fma(v, V::load(xp + u * w), acc[u]);
        }
      }
      for (int u = 0; u < U; ++u) {
        V::store(orow + j + u * w, acc[u]);
      }
    }
    for (; j + w <= n; j += w) {
      auto acc = V::load(orow + j);
      for (std::int64_t ci = 0; ci < kc; ++ci) {
        acc = V::fma(
            V::broadcast(vrow[ci]),
            V::load(a.x + kept[static_cast<std::size_t>(ci)] * n + j), acc);
      }
      V::store(orow + j, acc);
    }
    for (; j < n; ++j) {
      float acc = orow[j];
      for (std::int64_t ci = 0; ci < kc; ++ci) {
        acc = std::fma(vrow[ci],
                       a.x[kept[static_cast<std::size_t>(ci)] * n + j], acc);
      }
      orow[j] = acc;
    }
  }
}

/// One row's full tile sweep into U resident accumulators.  Tiles ascend
/// in tc and kept columns ascend within each tile row, so contributions
/// per lane arrive in ascending global-column order (the reference order).
template <class V, int U>
void pattern_rows(const PatternRangeArgs& a, std::int64_t row0,
                  std::int64_t row1) {
  constexpr std::int64_t w = V::kWidth;
  const PatternPlan& plan = *a.plan;
  const std::int64_t p = plan.psize;
  const std::int64_t n = a.n;
  const std::int64_t tr0 = row0 / p;
  const std::int64_t tr1 = (row1 + p - 1) / p;
  for (std::int64_t tr = tr0; tr < tr1; ++tr) {
    const std::int64_t rmax = std::min(p, plan.rows - tr * p);
    for (std::int64_t r = 0; r < rmax; ++r) {
      float* orow = a.out + (tr * p + r) * n;
      std::int64_t j = 0;
      for (; j + w * U <= n; j += w * U) {
        typename V::Reg acc[U];
        for (int u = 0; u < U; ++u) {
          acc[u] = V::load(orow + j + u * w);
        }
        for (std::int64_t tc = 0; tc < plan.tiles_c; ++tc) {
          const PatternTile& tile =
              plan.tiles[static_cast<std::size_t>(tr * plan.tiles_c + tc)];
          const std::int32_t* row_ptr = plan.tile_row_ptr(tile);
          const std::int32_t* tcols = plan.tile_cols(tile);
          const float* vals = plan.values.data() + tile.value_offset;
          const float* xbase = a.x + tc * p * n + j;
          for (std::int32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
            const auto v = V::broadcast(vals[i]);
            const float* xp = xbase + tcols[i] * n;
            for (int u = 0; u < U; ++u) {
              acc[u] = V::fma(v, V::load(xp + u * w), acc[u]);
            }
          }
        }
        for (int u = 0; u < U; ++u) {
          V::store(orow + j + u * w, acc[u]);
        }
      }
      for (; j + w <= n; j += w) {
        auto acc = V::load(orow + j);
        for (std::int64_t tc = 0; tc < plan.tiles_c; ++tc) {
          const PatternTile& tile =
              plan.tiles[static_cast<std::size_t>(tr * plan.tiles_c + tc)];
          const std::int32_t* row_ptr = plan.tile_row_ptr(tile);
          const std::int32_t* tcols = plan.tile_cols(tile);
          const float* vals = plan.values.data() + tile.value_offset;
          const float* xbase = a.x + tc * p * n + j;
          for (std::int32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
            acc = V::fma(V::broadcast(vals[i]), V::load(xbase + tcols[i] * n),
                         acc);
          }
        }
        V::store(orow + j, acc);
      }
      for (; j < n; ++j) {
        float acc = orow[j];
        for (std::int64_t tc = 0; tc < plan.tiles_c; ++tc) {
          const PatternTile& tile =
              plan.tiles[static_cast<std::size_t>(tr * plan.tiles_c + tc)];
          const std::int32_t* row_ptr = plan.tile_row_ptr(tile);
          const std::int32_t* tcols = plan.tile_cols(tile);
          const float* vals = plan.values.data() + tile.value_offset;
          const float* xbase = a.x + tc * p * n + j;
          for (std::int32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
            acc = std::fma(vals[i], xbase[tcols[i] * n], acc);
          }
        }
        orow[j] = acc;
      }
    }
  }
}

/// Clamps a requested unroll factor to the compiled {1, 2, 4} ladder.
inline int clamp_unroll(std::int64_t unroll) {
  if (unroll >= 4) {
    return 4;
  }
  return unroll >= 2 ? 2 : 1;
}

template <class V>
void dense_entry(const DenseRangeArgs& a, std::int64_t r0, std::int64_t r1) {
  switch (clamp_unroll(a.unroll)) {
    case 4:
      dense_rows<V, 4>(a, r0, r1);
      return;
    case 2:
      dense_rows<V, 2>(a, r0, r1);
      return;
    default:
      dense_rows<V, 1>(a, r0, r1);
  }
}

template <class V>
void block_entry(const BlockRangeArgs& a, std::int64_t r0, std::int64_t r1) {
  switch (clamp_unroll(a.unroll)) {
    case 4:
      block_rows<V, 4>(a, r0, r1);
      return;
    case 2:
      block_rows<V, 2>(a, r0, r1);
      return;
    default:
      block_rows<V, 1>(a, r0, r1);
  }
}

template <class V>
void pattern_entry(const PatternRangeArgs& a, std::int64_t r0,
                   std::int64_t r1) {
  switch (clamp_unroll(a.unroll)) {
    case 4:
      pattern_rows<V, 4>(a, r0, r1);
      return;
    case 2:
      pattern_rows<V, 2>(a, r0, r1);
      return;
    default:
      pattern_rows<V, 1>(a, r0, r1);
  }
}

template <class V>
KernelTable make_kernel_table(const char* name) {
  KernelTable t;
  t.name = name;
  t.width = V::kWidth;
  t.dense_range = &dense_entry<V>;
  t.block_range = &block_entry<V>;
  t.pattern_range = &pattern_entry<V>;
  return t;
}

}  // namespace inner
}  // namespace rt3
