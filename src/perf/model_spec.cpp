#include "perf/model_spec.hpp"

namespace rt3 {

std::int64_t ModelSpec::total_weights() const {
  std::int64_t n = 0;
  for (const auto& l : layers) {
    n += l.rows * l.cols;
  }
  return n;
}

double ModelSpec::dense_macs() const {
  double macs = 0.0;
  for (const auto& l : layers) {
    macs += 2.0 * static_cast<double>(l.rows) * static_cast<double>(l.cols) *
            static_cast<double>(l.uses_per_token * tokens_per_inference);
  }
  return macs;
}

std::int64_t ModelSpec::num_tiles(std::int64_t psize) const {
  std::int64_t tiles = 0;
  for (const auto& l : layers) {
    const std::int64_t tr = (l.rows + psize - 1) / psize;
    const std::int64_t tc = (l.cols + psize - 1) / psize;
    tiles += tr * tc;
  }
  return tiles;
}

namespace {

void add_attention_block(ModelSpec& spec, const std::string& prefix,
                         std::int64_t d) {
  spec.layers.push_back({prefix + ".wq", d, d, 1});
  spec.layers.push_back({prefix + ".wk", d, d, 1});
  spec.layers.push_back({prefix + ".wv", d, d, 1});
  spec.layers.push_back({prefix + ".wo", d, d, 1});
}

void add_ffn_block(ModelSpec& spec, const std::string& prefix, std::int64_t d,
                   std::int64_t hidden) {
  spec.layers.push_back({prefix + ".fc1", d, hidden, 1});
  spec.layers.push_back({prefix + ".fc2", hidden, d, 1});
}

}  // namespace

ModelSpec ModelSpec::paper_transformer() {
  ModelSpec spec;
  spec.name = "Transformer(WikiText-2)";
  spec.tokens_per_inference = 35;  // standard bptt window for WikiText-2
  const std::int64_t d = 800;
  const std::int64_t ffn = 3200;
  for (int i = 0; i < 2; ++i) {
    const std::string p = "encoder." + std::to_string(i);
    add_attention_block(spec, p + ".attn", d);
    add_ffn_block(spec, p + ".ffn", d, ffn);
  }
  add_attention_block(spec, "decoder.0.self_attn", d);
  add_attention_block(spec, "decoder.0.cross_attn", d);
  add_ffn_block(spec, "decoder.0.ffn", d, ffn);
  // The vocab projection the paper quotes as 28785 x 800.
  spec.layers.push_back({"lm_head", d, 28785, 1});
  return spec;
}

ModelSpec ModelSpec::paper_distilbert() {
  ModelSpec spec;
  spec.name = "DistilBERT";
  spec.tokens_per_inference = 128;  // GLUE sequence length
  const std::int64_t d = 768;
  const std::int64_t ffn = 3072;
  for (int i = 0; i < 6; ++i) {
    const std::string p = "layer." + std::to_string(i);
    add_attention_block(spec, p + ".attn", d);
    add_ffn_block(spec, p + ".ffn", d, ffn);
  }
  spec.layers.push_back({"pre_classifier", d, d, 1});
  return spec;
}

}  // namespace rt3
