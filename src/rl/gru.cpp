#include "rl/gru.hpp"

namespace rt3 {

GruCell::GruCell(std::int64_t input_dim, std::int64_t hidden_dim, Rng& rng)
    : hidden_dim_(hidden_dim) {
  wz_ = std::make_unique<Linear>(input_dim, hidden_dim, rng);
  uz_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng, /*bias=*/false);
  wr_ = std::make_unique<Linear>(input_dim, hidden_dim, rng);
  ur_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng, /*bias=*/false);
  wn_ = std::make_unique<Linear>(input_dim, hidden_dim, rng);
  un_ = std::make_unique<Linear>(hidden_dim, hidden_dim, rng, /*bias=*/false);
}

Var GruCell::forward(const Var& x, const Var& h) const {
  Var z = sigmoid(add(wz_->forward(x), uz_->forward(h)));
  Var r = sigmoid(add(wr_->forward(x), ur_->forward(h)));
  Var n = tanh_v(add(wn_->forward(x), un_->forward(mul(r, h))));
  // h' = (1 - z) * h + z * n
  Var one_minus_z = add_scalar(neg(z), 1.0F);
  return add(mul(one_minus_z, h), mul(z, n));
}

Var GruCell::initial_state(std::int64_t batch) const {
  return Var(Tensor::zeros({batch, hidden_dim_}));
}

void GruCell::collect_params(const std::string& prefix,
                             std::vector<NamedParam>& out) const {
  wz_->collect_params(prefix + "wz.", out);
  uz_->collect_params(prefix + "uz.", out);
  wr_->collect_params(prefix + "wr.", out);
  ur_->collect_params(prefix + "ur.", out);
  wn_->collect_params(prefix + "wn.", out);
  un_->collect_params(prefix + "un.", out);
}

}  // namespace rt3
