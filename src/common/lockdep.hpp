// Lockdep-lite: a capability-annotated mutex wrapper with an optional
// debug-build runtime lock-ORDER checker, plus the matching RAII guards
// and condition variable the serving stack uses instead of the raw
// std:: primitives (tools/rt3_lint.py bans raw std::mutex in src/).
//
// Two enforcement layers share this header:
//
//  * Compile time (any build, clang only): rt3::Mutex carries clang
//    thread-safety capability attributes (common/thread_annotations.hpp),
//    so `-Wthread-safety -Werror=thread-safety-analysis` proves every
//    RT3_GUARDED_BY member is only touched under its lock.
//
//  * Run time (RT3_LOCKDEP=1 builds only): every lock/unlock updates a
//    per-thread held-lock stack and a global acquired-before graph keyed
//    by the mutex NAME (its lock class, in kernel-lockdep terms).  The
//    first acquisition that would close a cycle — thread 1 took A then B,
//    thread 2 takes B then A — is reported immediately with both lock
//    names and both sides' held stacks, even if the interleaving never
//    actually deadlocks in this run.  Detection is deterministic at first
//    occurrence: a deterministic execution reports the same inversion at
//    the same acquisition site every run.  TSan cannot do this — it only
//    sees orders that actually raced.
//
// With RT3_LOCKDEP=0 (the default, and all release builds) the wrapper
// compiles to inline forwarding around a plain std::mutex — no atomics,
// no branches, no extra state — so the serving-path results stay
// byte-identical to an uninstrumented build (checked by the bench
// byte-identity cell).  Build the checker with
//     cmake -B build-lockdep -S . -DRT3_LOCKDEP=ON -DCMAKE_BUILD_TYPE=Debug
#pragma once

#ifndef RT3_LOCKDEP
#define RT3_LOCKDEP 0
#endif

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace rt3 {

#if RT3_LOCKDEP

namespace lockdep {

/// Interns `name` as a lock class, returning its stable id.  Mutexes
/// constructed with the same name share one node in the ordering graph
/// (instances of a class are interchangeable for ordering purposes, and
/// short-lived instances must not leak graph nodes).
int register_class(const char* name);

/// Records an acquisition of lock class `cls` on this thread: checks the
/// acquired-before graph for an inversion against every currently held
/// class, reports the first cycle found, then pushes `cls` onto the
/// held stack.
void on_lock(int cls);

/// Records a successful try_lock: pushes onto the held stack WITHOUT
/// edge recording or cycle checking — a non-blocking acquire cannot
/// participate in a deadlock cycle.
void on_try_lock(int cls);

/// Pops (the most recent occurrence of) `cls` off this thread's stack.
void on_unlock(int cls);

/// Inversion report hook.  The default handler prints the report to
/// stderr and aborts; tests install a throwing handler instead.  Pass
/// nullptr to restore the default.  The handler runs with no lockdep
/// bookkeeping lock held.
using Handler = void (*)(const char* report);
void set_handler(Handler handler);

/// Drops every recorded class, edge, and the CALLING thread's held
/// stack.  Test isolation only — never call while other threads hold
/// instrumented locks.
void reset();

/// Number of distinct acquired-before edges recorded so far (test hook).
int num_edges();

}  // namespace lockdep

#endif  // RT3_LOCKDEP

/// Capability-annotated mutex.  `name` is the lockdep lock class
/// ("RequestQueue::mu_"); unnamed instances share the "(anonymous)"
/// class, so give every long-lived mutex a distinct name.
class RT3_CAPABILITY("mutex") Mutex {
 public:
#if RT3_LOCKDEP
  Mutex() : cls_(lockdep::register_class("(anonymous)")) {}
  explicit Mutex(const char* name) : cls_(lockdep::register_class(name)) {}

  void lock() RT3_ACQUIRE() {
    lockdep::on_lock(cls_);
    mu_.lock();
  }
  bool try_lock() RT3_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
    if (ok) {
      lockdep::on_try_lock(cls_);
    }
    return ok;
  }
  void unlock() RT3_RELEASE() {
    mu_.unlock();
    lockdep::on_unlock(cls_);
  }
#else
  Mutex() = default;
  explicit Mutex(const char* /*name*/) {}

  void lock() RT3_ACQUIRE() { mu_.lock(); }
  bool try_lock() RT3_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() RT3_RELEASE() { mu_.unlock(); }
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// The wrapped std::mutex, for interop that needs the native type
  /// (CondVar's release-build fast path).  Lock/unlock through it
  /// bypasses lockdep — only adopt/release around an already-held lock.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
#if RT3_LOCKDEP
  const int cls_;
#endif
};

/// std::lock_guard equivalent over rt3::Mutex.
class RT3_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RT3_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RT3_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock equivalent over rt3::Mutex: supports early unlock()
/// (release the lock before notifying a condition variable) and is the
/// lock type rt3::CondVar waits on.
class RT3_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) RT3_ACQUIRE(mu) : mu_(&mu), owns_(true) {
    mu_->lock();
  }
  ~UniqueLock() RT3_RELEASE() {
    if (owns_) {
      mu_->unlock();
    }
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() RT3_ACQUIRE() {
    mu_->lock();
    owns_ = true;
  }
  void unlock() RT3_RELEASE() {
    mu_->unlock();
    owns_ = false;
  }

  bool owns_lock() const { return owns_; }
  Mutex* mutex() const { return mu_; }

 private:
  Mutex* mu_;
  bool owns_;
};

/// Condition variable waiting on UniqueLock<rt3::Mutex>.
///
/// Release builds forward to a plain std::condition_variable by adopting
/// the wrapped std::mutex around the wait — byte-for-byte the historical
/// primitive, no condition_variable_any indirection.  Lockdep builds use
/// condition_variable_any so the re-acquire after a wake goes back
/// through the instrumented Mutex::lock and is ORDER-CHECKED like any
/// other acquisition.
///
/// Waits deliberately take no predicate: clang's analysis cannot see
/// into a predicate lambda, so callers write the `while (!cond) wait;`
/// loop in the locked scope where guarded reads are provably protected.
class CondVar {
 public:
  /// Caller holds `lock`; on return the lock is held again.  The
  /// analysis treats the call as opaque (lock held throughout), which
  /// matches the caller-visible contract.
  void wait(UniqueLock& lock) {
#if RT3_LOCKDEP
    cv_.wait(lock);
#else
    std::unique_lock<std::mutex> raw(lock.mutex()->native_handle(),
                                     std::adopt_lock);
    cv_.wait(raw);
    raw.release();  // ownership stays with `lock`
#endif
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
#if RT3_LOCKDEP
  std::condition_variable_any cv_;
#else
  std::condition_variable cv_;
#endif
};

}  // namespace rt3
