// Deadline-tagged inference requests and the MPMC queue that carries them
// from producers (traffic sources, RPC front-ends) to the serving loop.
//
// Time in the serving subsystem is VIRTUAL and measured in milliseconds
// from session start: requests carry their arrival and absolute deadline
// timestamps, and the Server advances a simulated clock as batches
// execute.  This keeps every serve session bit-reproducible from a seed
// while the queue and thread pool remain real concurrency primitives.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

namespace rt3 {

/// One inference request flowing through the serving subsystem.
struct Request {
  std::int64_t id = 0;
  /// Virtual arrival timestamp (ms since session start).
  double arrival_ms = 0.0;
  /// Absolute virtual deadline; a request completing after this counts as
  /// a deadline miss (the paper's timing constraint T, per request).
  double deadline_ms = 0.0;
};

/// Blocking multi-producer/multi-consumer queue of requests.
///
/// Producers push concurrently; consumers pop concurrently.  close()
/// wakes everyone: pushes are rejected afterwards, pops drain what is
/// left and then return false.  capacity 0 means unbounded; a bounded
/// queue blocks producers when full (back-pressure).
class RequestQueue {
 public:
  explicit RequestQueue(std::int64_t capacity = 0);

  /// Blocks while a bounded queue is full; returns false iff closed.
  bool push(Request r);

  /// Blocks until an item arrives or the queue is closed and drained;
  /// returns false only in the latter case.
  bool pop(Request& out);

  /// Non-blocking pop; false if nothing is immediately available.
  bool try_pop(Request& out);

  void close();
  bool closed() const;
  std::int64_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Request> items_;
  std::int64_t capacity_;
  bool closed_ = false;
};

}  // namespace rt3
