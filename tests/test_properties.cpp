// Cross-module property tests: BP pruning-dimension variants, the
// unstructured baseline, latency-model orderings, search-space response to
// the timing constraint, package corruption handling, and discharge
// accounting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "common/check.hpp"
#include "dvfs/dvfs.hpp"
#include "perf/latency_model.hpp"
#include "pruning/block_prune.hpp"
#include "pruning/pattern_prune.hpp"
#include "runtime/engine.hpp"
#include "runtime/package.hpp"
#include "rl/reward.hpp"
#include "search/space.hpp"
#include "sparse/block_format.hpp"
#include "sparse/formats.hpp"

namespace rt3 {
namespace {

// ---------------------------------------------------------------------------
// BP pruning-dimension variants (paper: "can be generalized to apply row
// pruning or both row and column pruning").
// ---------------------------------------------------------------------------

TEST(BpDims, RowModeIsTransposeOfColumnMode) {
  Rng rng(1);
  const Tensor w = Tensor::randn({8, 12}, rng);
  BpConfig col_cfg;
  col_cfg.num_blocks = 4;
  col_cfg.prune_fraction = 0.5;
  col_cfg.dim = BpConfig::Dim::kColumns;
  BpConfig row_cfg = col_cfg;
  row_cfg.dim = BpConfig::Dim::kRows;
  // Row pruning on W == column pruning on W^T, transposed back.
  const Tensor row_mask = bp_mask(w, row_cfg);
  const Tensor expected = transpose2d(bp_mask(transpose2d(w), col_cfg));
  EXPECT_TRUE(row_mask.allclose(expected));
}

TEST(BpDims, RowModePrunesWholeRowSegments) {
  Rng rng(2);
  const Tensor w = Tensor::randn({8, 12}, rng);
  BpConfig cfg;
  cfg.num_blocks = 4;  // 12 cols -> 4 column-wise blocks of width 3
  cfg.prune_fraction = 0.5;
  cfg.dim = BpConfig::Dim::kRows;
  const Tensor mask = bp_mask(w, cfg);
  // Within each column block, a pruned row segment must be all-zero.
  const std::int64_t block_cols = 3;
  for (std::int64_t b = 0; b < 4; ++b) {
    for (std::int64_t r = 0; r < 8; ++r) {
      const float first = mask[r * 12 + b * block_cols];
      for (std::int64_t c = 1; c < block_cols; ++c) {
        EXPECT_FLOAT_EQ(mask[r * 12 + b * block_cols + c], first);
      }
    }
  }
  EXPECT_NEAR(mask.sparsity(), 0.5, 1e-9);
}

TEST(BpDims, BothModeIsIntersection) {
  Rng rng(3);
  const Tensor w = Tensor::randn({8, 8}, rng);
  BpConfig cfg;
  cfg.num_blocks = 2;
  cfg.prune_fraction = 0.25;
  BpConfig col_cfg = cfg;
  col_cfg.dim = BpConfig::Dim::kColumns;
  BpConfig row_cfg = cfg;
  row_cfg.dim = BpConfig::Dim::kRows;
  BpConfig both_cfg = cfg;
  both_cfg.dim = BpConfig::Dim::kBoth;
  const Tensor both = bp_mask(w, both_cfg);
  const Tensor expected = mul(bp_mask(w, col_cfg), bp_mask(w, row_cfg));
  EXPECT_TRUE(both.allclose(expected));
  // Both prunes at least as much as either alone.
  EXPECT_GE(both.sparsity(), bp_mask(w, col_cfg).sparsity() - 1e-9);
}

TEST(BpDims, RandomBaselineMatchesSparsityPerDim) {
  Rng rng(4);
  const Tensor w = Tensor::randn({8, 12}, rng);
  for (auto dim : {BpConfig::Dim::kColumns, BpConfig::Dim::kRows}) {
    BpConfig cfg;
    cfg.num_blocks = 4;
    cfg.prune_fraction = 0.5;
    cfg.dim = dim;
    Rng r2(5);
    EXPECT_NEAR(bp_mask(w, cfg).sparsity(), rbp_mask(w, cfg, r2).sparsity(),
                1e-9);
  }
}

// ---------------------------------------------------------------------------
// Unstructured (irregular) pruning baseline — Challenge 1.
// ---------------------------------------------------------------------------

TEST(Unstructured, ExactSparsityAndMagnitudeOrder) {
  Rng rng(6);
  const Tensor w = Tensor::randn({10, 10}, rng);
  const Tensor mask = unstructured_mask(w, 0.7);
  EXPECT_NEAR(mask.sparsity(), 0.7, 1e-9);
  // Every kept weight must be at least as large (in magnitude) as every
  // pruned weight.
  float min_kept = 1e9F;
  float max_pruned = 0.0F;
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    if (mask[i] == 1.0F) {
      min_kept = std::min(min_kept, std::abs(w[i]));
    } else {
      max_pruned = std::max(max_pruned, std::abs(w[i]));
    }
  }
  EXPECT_GE(min_kept, max_pruned);
}

TEST(Unstructured, RetainsMoreEnergyThanBlockAtEqualSparsity) {
  // The accuracy side of Challenge 1: irregular pruning keeps the largest
  // weights wherever they are, so it retains at least as much energy as
  // the structured cut...
  Rng rng(7);
  const Tensor w = Tensor::randn({16, 16}, rng);
  BpConfig cfg;
  cfg.num_blocks = 4;
  cfg.prune_fraction = 0.5;
  const Tensor block = mul(w, bp_mask(w, cfg));
  const Tensor irregular = mul(w, unstructured_mask(w, 0.5));
  EXPECT_GE(irregular.l2_norm(), block.l2_norm());
}

TEST(Unstructured, PaysIndexOverheadInStorageAndLatency) {
  // ...and the efficiency side: per-element COO indices and the
  // kIrregular execution overhead are what it costs.
  Rng rng(8);
  const Tensor w = Tensor::randn({40, 40}, rng);
  const Tensor irregular = mul(w, unstructured_mask(w, 0.5));
  BpConfig cfg;
  cfg.num_blocks = 4;
  cfg.prune_fraction = 0.5;
  const Tensor block = mul(w, bp_mask(w, cfg));
  const auto coo_bytes = CooMatrix::from_dense(irregular).storage_bytes();
  const auto block_bytes =
      BlockPrunedMatrix::from_dense(block, 4).storage_bytes();
  EXPECT_GT(coo_bytes, block_bytes);

  const ModelSpec spec = ModelSpec::paper_transformer();
  const LatencyModel latency;
  EXPECT_GT(latency.latency_ms(spec, 0.5, ExecMode::kIrregular, 1000.0),
            latency.latency_ms(spec, 0.5, ExecMode::kPattern, 1000.0));
  EXPECT_GT(latency.latency_ms(spec, 0.5, ExecMode::kPattern, 1000.0),
            latency.latency_ms(spec, 0.5, ExecMode::kBlock, 1000.0));
}

// ---------------------------------------------------------------------------
// Reward property sweeps
// ---------------------------------------------------------------------------

class RewardLevels : public ::testing::TestWithParam<int> {};

TEST_P(RewardLevels, FeasibleBeatsInfeasibleAtAnyWidth) {
  const int n = GetParam();
  RewardInputs feasible;
  RewardInputs infeasible;
  for (int i = 0; i < n; ++i) {
    feasible.latencies_ms.push_back(50.0);
    feasible.accuracies.push_back(0.9 - 0.01 * i);
    feasible.runs.push_back(1e5);
    infeasible.latencies_ms.push_back(i == 0 ? 500.0 : 50.0);
    infeasible.runs.push_back(1e5);
  }
  feasible.timing_constraint_ms = 100.0;
  infeasible.timing_constraint_ms = 100.0;
  feasible.backbone_accuracy = 0.95;
  infeasible.backbone_accuracy = 0.95;
  feasible.min_accuracy = 0.5;
  infeasible.min_accuracy = 0.5;
  feasible.runs_reference = 1e6;
  infeasible.runs_reference = 1e6;
  EXPECT_GT(compute_reward(feasible).value,
            compute_reward(infeasible).value);
}

INSTANTIATE_TEST_SUITE_P(Widths, RewardLevels, ::testing::Values(1, 2, 3, 5));

// ---------------------------------------------------------------------------
// Search space responds to the timing constraint
// ---------------------------------------------------------------------------

class SpaceConstraint : public ::testing::TestWithParam<double> {};

TEST_P(SpaceConstraint, TighterConstraintNeedsSparserGrid) {
  Rng rng(9);
  std::vector<std::unique_ptr<Linear>> layers;
  std::vector<Linear*> raw;
  for (int i = 0; i < 2; ++i) {
    layers.push_back(std::make_unique<Linear>(16, 16, rng));
    raw.push_back(layers.back().get());
  }
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel latency;
  latency.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);
  const VfTable table = VfTable::odroid_xu3_a7();
  std::vector<VfLevel> levels;
  for (std::int64_t i : {5, 3, 2}) {
    levels.push_back(table.level(i));
  }
  SearchSpaceConfig cfg;
  cfg.psize = 4;
  cfg.patterns_per_set = 2;
  cfg.num_variants = 1;
  cfg.theta = 2;

  cfg.timing_constraint_ms = GetParam();
  const auto tight =
      PatternSearchSpace::build(cfg, levels, spec, latency, raw, 0.4);
  cfg.timing_constraint_ms = GetParam() * 2.0;
  const auto loose =
      PatternSearchSpace::build(cfg, levels, spec, latency, raw, 0.4);
  // Max required sparsity under the tighter constraint >= under the looser.
  EXPECT_GE(tight.sparsity_grid().back() + 1e-9,
            loose.sparsity_grid().back());
}

INSTANTIATE_TEST_SUITE_P(Constraints, SpaceConstraint,
                         ::testing::Values(80.0, 104.0, 150.0, 250.0));

// ---------------------------------------------------------------------------
// Package corruption fuzz
// ---------------------------------------------------------------------------

TEST(PackageFuzz, TruncatedFilesThrowNotCrash) {
  DeploymentPackage pkg;
  Rng rng(10);
  pkg.param_names = {"a"};
  pkg.params = {Tensor::randn({6, 6}, rng)};
  pkg.prunable_names = {"a"};
  pkg.backbone_masks = {Tensor::ones({6, 6})};
  PatternSet set;
  set.patterns.push_back(Pattern::dense(4));
  pkg.pattern_sets = {set};
  pkg.levels = {LevelMeta{"l6", 1400.0, 0.5, 0.6, 90.0, 0.9}};
  const std::string path = "/tmp/rt3_fuzz_pkg.bin";
  pkg.save(path);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const std::string cut = "/tmp/rt3_fuzz_cut.bin";
    std::ofstream out(cut, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(
                  static_cast<double>(bytes.size()) * frac));
    out.close();
    EXPECT_THROW(DeploymentPackage::load(cut), CheckError)
        << "truncated at " << frac;
    std::remove(cut.c_str());
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Discharge accounting details
// ---------------------------------------------------------------------------

TEST(DischargeDetail, SwitchEnergyIsAccounted) {
  const VfTable table = VfTable::odroid_xu3_a7();
  const Governor governor = Governor::equal_tranches({5, 3, 2});
  const PowerModel power;
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel latency;
  latency.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);
  DischargeConfig cfg;
  cfg.battery_capacity_mj = 1e4;
  cfg.software_reconfig = true;
  cfg.switch_energy_mj = 0.0;
  const auto free_switches = simulate_discharge(
      cfg, table, governor, power, latency, spec, {0.65, 0.75, 0.85},
      ExecMode::kPattern);
  cfg.switch_energy_mj = 500.0;  // absurdly expensive switches
  const auto costly_switches = simulate_discharge(
      cfg, table, governor, power, latency, spec, {0.65, 0.75, 0.85},
      ExecMode::kPattern);
  EXPECT_GT(free_switches.total_runs, costly_switches.total_runs);
}

TEST(DischargeDetail, FullLadderGovernorVisitsLevelsInOrder) {
  const Governor gov =
      Governor::equal_tranches({5, 4, 3, 2, 1, 0});  // whole Table I
  std::int64_t prev = 6;
  for (double f : {0.99, 0.8, 0.65, 0.45, 0.3, 0.1}) {
    const std::int64_t level = gov.level_for(f);
    EXPECT_LE(level, prev);
    prev = level;
  }
  EXPECT_EQ(gov.level_for(0.01), 0);
}

// ---------------------------------------------------------------------------
// Pattern edge cases
// ---------------------------------------------------------------------------

TEST(PatternEdge, TiesBrokenDeterministically) {
  const Tensor flat = Tensor::full({3, 3}, 1.0F);
  const Pattern a = Pattern::from_importance(flat, 4);
  const Pattern b = Pattern::from_importance(flat, 4);
  EXPECT_EQ(a.bits(), b.bits());
  EXPECT_EQ(a.count_kept(), 4);
}

TEST(PatternEdge, SingleElementPattern) {
  const Pattern p = Pattern::from_importance(Tensor::full({1, 1}, 2.0F), 1);
  EXPECT_EQ(p.psize(), 1);
  EXPECT_TRUE(p.kept(0, 0));
  EXPECT_DOUBLE_EQ(p.sparsity(), 0.0);
}

TEST(PatternEdge, MaskForWeightWithDensePattern) {
  Rng rng(11);
  const Tensor w = Tensor::randn({8, 8}, rng);
  PatternSet set;
  set.patterns.push_back(Pattern::dense(4));
  const Tensor mask = pattern_mask_for_weight(w, set);
  EXPECT_DOUBLE_EQ(mask.sparsity(), 0.0);
}

}  // namespace
}  // namespace rt3
