#include "runtime/engine.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/wall_time.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace rt3 {

ReconfigEngine::ReconfigEngine(ModelPruner& pruner,
                               std::vector<PatternSet> sets,
                               SwitchCostModel cost_model, ModelSpec spec,
                               std::int64_t psize)
    : pruner_(pruner),
      sets_(std::move(sets)),
      cost_model_(cost_model),
      spec_(std::move(spec)),
      psize_(psize) {
  check(!sets_.empty(), "ReconfigEngine: no pattern sets");
  check(pruner_.has_backbone(), "ReconfigEngine: backbone not frozen");
}

SwitchReport ReconfigEngine::switch_to(std::int64_t to) {
  check(to >= 0 && to < num_levels(), "ReconfigEngine: level out of range");
  SwitchReport report;
  report.from_level = current_;
  report.to_level = to;
  if (to == current_) {
    return report;
  }
  const auto& set = sets_[static_cast<std::size_t>(to)];
  const std::int64_t tiles = spec_.num_tiles(psize_);
  report.modeled_ms = cost_model_.pattern_set_switch_ms(
      set.storage_bytes() + tiles * 2, tiles);

  const auto t0 = wall_now();
  pruner_.apply_pattern_set(set);
  report.wall_ms = wall_ms_since(t0);
  if (plan_swap_hook_) {
    report.plan_swap_wall_ms = plan_swap_hook_(to);
  }
  current_ = to;
  if (telemetry_ != nullptr) {
    telemetry_->record_swap_bytes(static_cast<double>(set.storage_bytes()));
  }
  if (trace_ != nullptr) {
    TraceEvent ev("pattern.swap", "switch", trace_->now_ms(), 0);
    ev.arg("from_level", report.from_level)
        .arg("to_level", report.to_level)
        .arg("modeled_ms", report.modeled_ms);
    if (trace_->record_wall()) {
      ev.arg("wall_ms", report.wall_ms)
          .arg("plan_swap_wall_ms", report.plan_swap_wall_ms);
    }
    trace_->record(std::move(ev));
  }
  return report;
}

void ReconfigEngine::set_plan_swap_hook(PlanSwapHook hook) {
  plan_swap_hook_ = std::move(hook);
}

double ReconfigEngine::sparsity_at(std::int64_t level) {
  switch_to(level);
  return pruner_.overall_sparsity();
}

const PatternSet& ReconfigEngine::set_at(std::int64_t level) const {
  check(level >= 0 && level < num_levels(),
        "ReconfigEngine: level out of range");
  return sets_[static_cast<std::size_t>(level)];
}

DischargeStats simulate_discharge(const DischargeConfig& config,
                                  const VfTable& table,
                                  const Governor& governor,
                                  const PowerModel& power,
                                  const LatencyModel& latency,
                                  const ModelSpec& spec,
                                  const std::vector<double>& sparsities,
                                  ExecMode mode) {
  check(sparsities.size() == governor.levels().size(),
        "simulate_discharge: one sparsity per governor level required");
  Battery battery(config.battery_capacity_mj);
  DischargeStats stats;
  stats.runs_per_level.assign(governor.levels().size(), 0.0);

  std::int64_t active = -1;  // position within governor.levels()
  constexpr std::int64_t kMaxIterations = 50'000'000;
  for (std::int64_t iter = 0; iter < kMaxIterations && !battery.empty();
       ++iter) {
    const std::int64_t table_level = governor.level_for(battery.fraction());
    // Find position of this level in the governor's list.
    std::int64_t pos = 0;
    for (std::size_t i = 0; i < governor.levels().size(); ++i) {
      if (governor.levels()[i] == table_level) {
        pos = static_cast<std::int64_t>(i);
        break;
      }
    }
    if (pos != active) {
      if (active >= 0) {
        ++stats.switches;
        if (config.software_reconfig) {
          battery.drain(config.switch_energy_mj);
        }
      }
      active = pos;
    }
    const double sparsity = config.software_reconfig
                                ? sparsities[static_cast<std::size_t>(pos)]
                                : sparsities.front();
    const VfLevel& level = table.level(table_level);
    const double lat = latency.latency_ms(spec, sparsity, mode, level.freq_mhz);
    const double energy = power.energy_mj(level, lat);
    if (!battery.drain(energy)) {
      break;  // not enough charge for a full inference
    }
    stats.total_runs += 1.0;
    stats.runs_per_level[static_cast<std::size_t>(pos)] += 1.0;
    stats.simulated_seconds += lat / 1000.0;
    if (lat > config.timing_constraint_ms) {
      stats.deadline_misses += 1.0;
    }
  }
  return stats;
}

}  // namespace rt3
