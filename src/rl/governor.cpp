#include "rl/governor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace rt3 {

namespace {

/// 17 significant digits: float -> text -> float round-trips bit-exactly,
/// so re-serializing a parsed artifact is byte-identical.
std::string fmt_float(float v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", static_cast<double>(v));
  return buf;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::int64_t parse_i64(const std::string& text) {
  std::size_t pos = 0;
  const long long v = std::stoll(text, &pos);
  check(pos == text.size(), "rt3-governor: bad integer: " + text);
  return static_cast<std::int64_t>(v);
}

double parse_f64(const std::string& text) {
  std::size_t pos = 0;
  const double v = std::stod(text, &pos);
  check(pos == text.size(), "rt3-governor: bad number: " + text);
  return v;
}

/// Consumes one "key=value" token.
std::string take_kv(std::istringstream& in, const std::string& key) {
  std::string token;
  check(static_cast<bool>(in >> token) && token.rfind(key + "=", 0) == 0,
        "rt3-governor: expected " + key + "=...");
  return token.substr(key.size() + 1);
}

std::string take_field(std::istringstream& in, const std::string& name) {
  std::string label;
  std::string value;
  check(static_cast<bool>(in >> label >> value) && label == name,
        "rt3-governor: expected '" + name + " <value>'");
  return value;
}

}  // namespace

double governor_reward(const GovernorRewardConfig& config,
                       const ServerStats& stats) {
  const double submitted =
      stats.submitted > 0 ? static_cast<double>(stats.submitted) : 1.0;
  const double served = static_cast<double>(stats.completed) / submitted;
  const double dropped = static_cast<double>(stats.dropped) / submitted;
  const double lifetime =
      config.reference_lifetime_ms > 0.0
          ? std::min(1.0, stats.sim_end_ms / config.reference_lifetime_ms)
          : 0.0;
  return config.serve_weight * served - config.miss_weight * stats.miss_rate() -
         config.drop_weight * dropped + config.lifetime_weight * lifetime;
}

RlGovernorPolicy::RlGovernorPolicy(Governor ladder, RlGovernorConfig config)
    : GovernorPolicy(std::move(ladder)), config_(config) {
  check(config_.hidden_dim >= 1, "RlGovernorPolicy: hidden_dim must be >= 1");
  check(config_.queue_depth_scale > 0.0,
        "RlGovernorPolicy: queue_depth_scale must be positive");
  check(config_.miss_alpha > 0.0 && config_.miss_alpha <= 1.0,
        "RlGovernorPolicy: miss_alpha out of (0, 1]");
  Rng rng(config_.seed);
  gru_ = std::make_unique<GruCell>(kObsDim, config_.hidden_dim, rng);
  head_ = std::make_unique<Linear>(config_.hidden_dim, num_levels(), rng);
  optimizer_ = std::make_unique<Adam>(parameters(), config_.learning_rate);
  reset();
}

void RlGovernorPolicy::reset() {
  hidden_ = gru_->initial_state(1);
  log_prob_sum_ = Var(Tensor::scalar(0.0F));
  has_cached_ = false;
  cached_pos_ = 0;
  miss_ewma_ = 0.0;
  decisions_ = 0;
}

std::int64_t RlGovernorPolicy::decide(const GovernorObservation& obs) {
  if (has_cached_) {
    return cached_pos_;
  }
  const double queue = std::min(
      1.0, static_cast<double>(obs.queue_depth) / config_.queue_depth_scale);
  Tensor x({1, kObsDim},
           {static_cast<float>(obs.battery_fraction),
            static_cast<float>(queue),
            static_cast<float>(obs.deadline_pressure),
            static_cast<float>(miss_ewma_)});
  const Var h = gru_->forward(Var(std::move(x)), hidden_);
  const Var logits = head_->forward(h);
  const Var logp = log_softmax_lastdim(logits);
  const std::int64_t k = logits.shape()[1];

  std::int64_t choice = 0;
  if (sample_rng_ != nullptr) {
    std::vector<double> probs(static_cast<std::size_t>(k));
    for (std::int64_t i = 0; i < k; ++i) {
      probs[static_cast<std::size_t>(i)] =
          std::exp(static_cast<double>(logp.value()[i]));
    }
    choice = sample_rng_->categorical(probs);
    Tensor onehot({1, k});
    onehot[choice] = 1.0F;
    log_prob_sum_ = add(log_prob_sum_, sum_all(mul_const(logp, onehot)));
  } else {
    for (std::int64_t i = 1; i < k; ++i) {
      if (logp.value()[i] > logp.value()[choice]) {
        choice = i;
      }
    }
  }
  // Truncated BPTT-1: carry the value, drop the graph, so each decision's
  // tape stays one step deep inside the serving loop.
  hidden_ = Var(h.value());
  cached_pos_ = choice;
  has_cached_ = true;
  ++decisions_;
  return choice;
}

void RlGovernorPolicy::observe_batch(const BatchFeedback& feedback) {
  const double miss_frac =
      feedback.batch_size > 0
          ? static_cast<double>(feedback.misses) /
                static_cast<double>(feedback.batch_size)
          : 0.0;
  miss_ewma_ += config_.miss_alpha * (miss_frac - miss_ewma_);
  has_cached_ = false;  // next boundary gets a fresh decision
}

double RlGovernorPolicy::drain_lag_ms(std::int64_t active_pos,
                                      double frac_before, double frac_after,
                                      double lat_ms) const {
  (void)active_pos;
  (void)frac_before;
  (void)frac_after;
  (void)lat_ms;
  return -1.0;
}

double RlGovernorPolicy::update(double reward) {
  check(decisions_ > 0, "RlGovernorPolicy::update: no decisions this episode");
  if (!baseline_initialized_) {
    baseline_ = reward;
    baseline_initialized_ = true;
  }
  const double advantage = reward - baseline_;
  baseline_ = config_.baseline_decay * baseline_ +
              (1.0 - config_.baseline_decay) * reward;

  optimizer_->zero_grad();
  Var loss = scale(log_prob_sum_, static_cast<float>(-advantage));
  loss.backward();
  auto params = parameters();
  clip_grad_norm(params, 5.0F);
  optimizer_->step();
  return advantage;
}

void RlGovernorPolicy::collect_params(const std::string& prefix,
                                      std::vector<NamedParam>& out) const {
  gru_->collect_params(prefix + "gru.", out);
  head_->collect_params(prefix + "head.", out);
}

std::string RlGovernorPolicy::serialize() const {
  std::ostringstream out;
  out << "rt3-governor v1\n";
  out << "obs_dim " << kObsDim << "\n";
  out << "hidden_dim " << config_.hidden_dim << "\n";
  out << "num_levels " << num_levels() << "\n";
  out << "queue_depth_scale " << fmt_double(config_.queue_depth_scale) << "\n";
  out << "miss_alpha " << fmt_double(config_.miss_alpha) << "\n";
  const std::vector<NamedParam> named = named_parameters();
  out << "params " << named.size() << "\n";
  for (const NamedParam& np : named) {
    out << "param name=" << np.name << " numel=" << np.param.numel() << "\n";
    const Tensor& value = np.param.value();
    for (std::int64_t i = 0; i < value.numel(); ++i) {
      out << (i > 0 ? " " : "") << fmt_float(value[i]);
    }
    out << "\n";
  }
  return out.str();
}

std::shared_ptr<RlGovernorPolicy> RlGovernorPolicy::parse(
    const std::string& text, Governor ladder) {
  std::istringstream in(text);
  std::string magic;
  std::string version;
  check(static_cast<bool>(in >> magic >> version) && magic == "rt3-governor" &&
            version == "v1",
        "rt3-governor: not an rt3-governor v1 file");
  const std::int64_t obs_dim = parse_i64(take_field(in, "obs_dim"));
  check(obs_dim == kObsDim, "rt3-governor: artifact obs_dim " +
                                std::to_string(obs_dim) + " != " +
                                std::to_string(kObsDim));
  RlGovernorConfig config;
  config.hidden_dim = parse_i64(take_field(in, "hidden_dim"));
  const std::int64_t levels = parse_i64(take_field(in, "num_levels"));
  check(levels == static_cast<std::int64_t>(ladder.levels().size()),
        "rt3-governor: artifact has " + std::to_string(levels) +
            " levels but the ladder has " +
            std::to_string(ladder.levels().size()));
  config.queue_depth_scale = parse_f64(take_field(in, "queue_depth_scale"));
  config.miss_alpha = parse_f64(take_field(in, "miss_alpha"));
  auto policy = std::make_shared<RlGovernorPolicy>(std::move(ladder), config);

  const std::int64_t count = parse_i64(take_field(in, "params"));
  const std::vector<NamedParam> named = policy->named_parameters();
  check(count == static_cast<std::int64_t>(named.size()),
        "rt3-governor: artifact has " + std::to_string(count) +
            " params, expected " + std::to_string(named.size()));
  for (const NamedParam& np : named) {
    std::string label;
    check(static_cast<bool>(in >> label) && label == "param",
          "rt3-governor: expected a param line");
    const std::string name = take_kv(in, "name");
    check(name == np.name, "rt3-governor: expected param " + np.name +
                               ", found " + name);
    const std::int64_t numel = parse_i64(take_kv(in, "numel"));
    check(numel == np.param.numel(),
          "rt3-governor: param " + name + " has numel " +
              std::to_string(numel) + ", expected " +
              std::to_string(np.param.numel()));
    Var param = np.param;  // shared handle: writes hit the live weight
    Tensor& value = param.mutable_value();
    for (std::int64_t i = 0; i < numel; ++i) {
      std::string token;
      check(static_cast<bool>(in >> token),
            "rt3-governor: truncated values for param " + name);
      value[i] = static_cast<float>(parse_f64(token));
    }
  }
  return policy;
}

void RlGovernorPolicy::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  check(out.good(), "rt3-governor: cannot write " + path);
  out << serialize();
  check(out.good(), "rt3-governor: write failed: " + path);
}

std::shared_ptr<RlGovernorPolicy> RlGovernorPolicy::load(
    const std::string& path, Governor ladder) {
  std::ifstream in(path, std::ios::binary);
  check(in.good(), "rt3-governor: cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str(), std::move(ladder));
}

GovernorTrainResult train_governor(const GovernorTrainConfig& config) {
  check(config.episodes >= 1, "train_governor: episodes must be >= 1");
  check(!config.scenarios.empty(), "train_governor: no scenarios");

  auto policy = std::make_shared<RlGovernorPolicy>(
      Governor::equal_tranches(paper_serve_ladder()), config.policy);
  ServeSessionConfig session_config = config.session;
  session_config.governor = GovernorKind::kRl;
  session_config.governor_policy = policy;
  ServeSession session(session_config);

  Rng sample_rng(config.sample_seed);
  GovernorTrainResult result;
  result.policy = policy;
  for (std::int64_t episode = 0; episode < config.episodes; ++episode) {
    TrafficConfig traffic = config.traffic;
    traffic.scenario = config.scenarios[static_cast<std::size_t>(
        episode % static_cast<std::int64_t>(config.scenarios.size()))];
    traffic.seed = config.traffic_seed + static_cast<std::uint64_t>(episode);
    const std::vector<Request> schedule = generate_traffic(traffic);

    policy->set_sample_rng(&sample_rng);
    const ServerStats stats = session.server().serve(schedule);
    const double reward = governor_reward(config.reward, stats);
    result.rewards.push_back(reward);
    result.miss_rates.push_back(stats.miss_rate());
    result.advantages.push_back(
        policy->decisions_this_episode() > 0 ? policy->update(reward) : 0.0);
  }
  // Hand the policy back in serving shape: greedy decisions, clean episode
  // state.
  policy->set_sample_rng(nullptr);
  policy->reset();
  return result;
}

}  // namespace rt3
