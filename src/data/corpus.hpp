// Synthetic language-modeling corpus standing in for WikiText-2.
//
// The generator plants learnable structure: token frequencies follow a
// Zipf law (like natural text) and, with probability `rule_strength`, the
// next token is a deterministic function of the current one (a planted
// bigram grammar).  A model that learns the bigram table reaches
// next-word accuracy ~= rule_strength, mirroring the high next-word
// accuracies the paper reports on WikiText-2; an untrained model sits at
// the Zipf base rate.  Pruning damages the learned table gradually, which
// is exactly the accuracy-vs-sparsity response the paper's experiments
// measure.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace rt3 {

/// Configuration for the synthetic corpus.
struct CorpusConfig {
  std::int64_t vocab_size = 512;
  std::int64_t num_tokens = 60000;
  double zipf_exponent = 1.1;
  /// Probability that the planted bigram rule fires (ceiling for next-word
  /// accuracy).
  double rule_strength = 0.97;
  std::uint64_t seed = 1;
};

/// A tokenized corpus with train/validation splits.
class Corpus {
 public:
  explicit Corpus(const CorpusConfig& config);

  const std::vector<std::int64_t>& train() const { return train_; }
  const std::vector<std::int64_t>& valid() const { return valid_; }
  std::int64_t vocab_size() const { return config_.vocab_size; }
  const CorpusConfig& config() const { return config_; }

  /// The planted successor table (token -> most likely next token).
  /// Exposed so tests can verify the generator and compute the oracle
  /// accuracy ceiling.
  const std::vector<std::int64_t>& successor_table() const {
    return successor_;
  }

  /// Accuracy of the bigram oracle on the validation split — the ceiling
  /// any model can reach.
  double oracle_accuracy() const;

 private:
  CorpusConfig config_;
  std::vector<std::int64_t> successor_;
  std::vector<std::int64_t> train_;
  std::vector<std::int64_t> valid_;
};

/// One LM minibatch: flattened [batch, seq_len] inputs and next-token
/// targets.
struct LmBatch {
  std::int64_t batch = 0;
  std::int64_t seq_len = 0;
  std::vector<std::int64_t> inputs;   // batch * seq_len ids
  std::vector<std::int64_t> targets;  // batch * seq_len ids
};

/// Cuts a token stream into contiguous (input, next-token) windows.
class LmBatcher {
 public:
  LmBatcher(const std::vector<std::int64_t>& tokens, std::int64_t batch,
            std::int64_t seq_len, std::uint64_t seed = 9);

  /// Number of distinct windows available.
  std::int64_t num_windows() const;

  /// Samples a random minibatch of windows.
  LmBatch next(Rng& rng) const;

  /// Deterministic batch covering windows [start, start+batch).
  LmBatch at(std::int64_t start) const;

 private:
  const std::vector<std::int64_t>& tokens_;
  std::int64_t batch_;
  std::int64_t seq_len_;
};

}  // namespace rt3
