// Deterministic tracing for the serving stack: structured spans for every
// request's lifecycle (arrive, admit/reject, enqueue, batch-form, exec,
// complete/miss/shed/drop) and every governor action (step-down decision,
// drain-then-switch, plan swap), exported as Chrome trace-event JSON that
// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Determinism contract: event timestamps come from the VIRTUAL serving
// clock (the driver loop publishes it via set_now_ms), so two runs of the
// same seeded session emit byte-identical traces.  Host wall-clock stamps
// are genuinely useful for kernel work but nondeterministic, so they are
// recorded only when `record_wall` is on (the CLI default; tests leave it
// off when they compare traces byte-for-byte).
//
// Threading: record() appends to a per-thread buffer (registered lazily,
// one mutex acquisition per thread lifetime, lock-free appends after
// that), and export merges all buffers in a canonical order keyed by
// (virtual ts, track, name, id) — so even events recorded from racing
// producer threads serialize identically run to run.
//
// Overhead contract: every instrumentation site in the serving path is
// guarded by a single `if (trace_ != nullptr)` branch — perfectly
// predicted when tracing is off — and the trace-off serving results are
// bitwise-identical to an uninstrumented build (proven by the
// observability cell in bench_serve_traffic).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/lockdep.hpp"
#include "common/thread_annotations.hpp"
#include "common/wall_time.hpp"

namespace rt3 {

/// One Chrome trace-event.  `args` values are pre-rendered JSON fragments
/// (use TraceEvent::arg overloads), so export is a flat string walk.
struct TraceEvent {
  std::string name;
  /// Event category ("request", "batch", "governor", "kernel", ...).
  std::string cat;
  /// Chrome phase: 'X' complete span, 'i' instant, 'C' counter.
  char ph = 'i';
  /// Virtual timestamp (ms since session start) and span duration.
  double ts_ms = 0.0;
  double dur_ms = 0.0;
  /// Logical track: 0 = node/governor lane, model id + 1 = a model's lane.
  std::int64_t tid = 0;
  /// Request id for lifecycle events (-1 when not request-scoped).
  std::int64_t id = -1;
  /// (key, rendered-JSON-value) pairs, emitted in insertion order.
  std::vector<std::pair<std::string, std::string>> args;

  TraceEvent() = default;
  /// Instant at `ts_ms` on track `tid`; set ph/dur_ms after construction
  /// to turn it into a span.
  TraceEvent(std::string name, std::string cat, double ts_ms,
             std::int64_t tid)
      : name(std::move(name)), cat(std::move(cat)), ts_ms(ts_ms), tid(tid) {}

  TraceEvent& arg(const std::string& key, double value);
  TraceEvent& arg(const std::string& key, std::int64_t value);
  TraceEvent& arg(const std::string& key, const std::string& value);
};

/// Renders a double as a JSON number with round-trip precision.
std::string trace_json_num(double value);
/// JSON string-escapes `s` (quotes, backslashes, newlines, tabs) — shared
/// by the trace and metrics exporters.
std::string trace_json_escape(const std::string& s);

struct TraceConfig {
  /// Record nondeterministic host wall-clock args on events.
  bool record_wall = false;
  /// Hard cap on stored events (0 = unbounded).  Once `max_events` have
  /// been accepted, further record() calls are dropped and counted —
  /// long diurnal runs stay O(max_events) instead of growing without
  /// bound.  Admission order is the arrival order at the recorder (a
  /// deterministic serving session admits the same prefix every run).
  std::int64_t max_events = 0;
};

/// Collects TraceEvents into per-thread buffers and exports them merged
/// in canonical order as Chrome trace-event JSON.
class TraceRecorder {
 public:
  explicit TraceRecorder(bool record_wall = false);
  explicit TraceRecorder(const TraceConfig& config);

  /// Appends an event to the calling thread's buffer; drops it (and
  /// counts the drop) once the max_events cap is reached.
  void record(TraceEvent event);

  std::int64_t max_events() const { return config_.max_events; }
  /// Events dropped at the max_events cap so far.
  std::int64_t dropped_events() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Publishes the driver loop's virtual clock; components without clock
  /// access (batcher, router, engine, backend) stamp events with this.
  void set_now_ms(double now_ms) { now_ms_ = now_ms; }
  double now_ms() const { return now_ms_; }

  /// True when events should carry host wall-clock args (nondeterministic
  /// but informative; off for byte-identical trace comparisons).
  bool record_wall() const { return config_.record_wall; }
  /// Host wall ms since recorder construction (only meaningful when
  /// record_wall() is true).
  double wall_since_start_ms() const { return wall_ms_since(t0_); }

  /// All events merged across thread buffers in canonical order:
  /// (ts, tid, cat, name, id, per-thread sequence).
  std::vector<TraceEvent> merged() const RT3_EXCLUDES(mu_);
  std::int64_t num_events() const RT3_EXCLUDES(mu_);

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} with one metadata
  /// thread_name event per track, loadable in Perfetto.
  std::string to_chrome_json() const;
  void write_chrome_json(const std::string& path) const;

 private:
  struct Buffer {
    std::vector<TraceEvent> events;
  };
  Buffer* local_buffer() RT3_EXCLUDES(mu_);

  /// Distinguishes recorders in the thread-local buffer cache (a new
  /// recorder at a recycled address must not alias a dead one's cache
  /// entry).
  const std::uint64_t recorder_id_;
  mutable Mutex mu_{"TraceRecorder::mu_"};
  /// Registration (growing the vector) requires mu_; each Buffer's
  /// events are appended lock-free by exactly the owning thread, and
  /// readers (merged/num_events) take mu_ and rely on the caller's
  /// happens-before with all recording threads (session teardown).
  std::vector<std::unique_ptr<Buffer>> buffers_ RT3_GUARDED_BY(mu_);
  double now_ms_ = 0.0;
  WallTimePoint t0_;
  TraceConfig config_;
  /// record() attempts admitted against the cap (only counted up while a
  /// cap is set); drops past it.
  std::atomic<std::int64_t> admitted_{0};
  std::atomic<std::int64_t> dropped_{0};
};

}  // namespace rt3
