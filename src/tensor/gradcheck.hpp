// Finite-difference gradient checking, used by the property-test suite to
// validate every autodiff op against numeric derivatives.
#pragma once

#include <functional>
#include <vector>

#include "tensor/var.hpp"

namespace rt3 {

/// Result of a gradient check: max absolute and max relative error across
/// all checked entries.
struct GradCheckResult {
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  bool ok(double tol = 1e-2) const {
    return max_abs_err < tol || max_rel_err < tol;
  }
};

/// Checks d(loss)/d(param) for every entry of every parameter against a
/// central finite difference.  `loss_fn` must rebuild the graph from the
/// current parameter values on each call (parameters are perturbed
/// in-place between calls).
GradCheckResult grad_check(std::vector<Var> params,
                           const std::function<Var()>& loss_fn,
                           float epsilon = 1e-3F);

}  // namespace rt3
