// Lockdep-lite checker tests (src/common/lockdep.*).
//
// The functional surface (Mutex, MutexLock, UniqueLock, CondVar) is
// tested in every build.  The order-checker tests are compiled only
// under -DRT3_LOCKDEP=ON (the CI static-analysis job builds that
// configuration and runs this binary); a default build additionally
// proves the wrapper compiles out to the plain std primitives.

#include "common/lockdep.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

namespace rt3 {
namespace {

// ---------------------------------------------------------------------
// Functional surface, every build.
// ---------------------------------------------------------------------

TEST(LockdepMutex, LockUnlockTryLock) {
  Mutex mu("test.basic");
  mu.lock();
  EXPECT_FALSE(mu.try_lock());  // non-recursive
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(LockdepMutex, GuardsRelease) {
  Mutex mu("test.guards");
  {
    MutexLock lock(mu);
  }
  {
    UniqueLock lock(mu);
    EXPECT_TRUE(lock.owns_lock());
    lock.unlock();
    EXPECT_FALSE(lock.owns_lock());
    EXPECT_TRUE(mu.try_lock());  // really released early
    mu.unlock();
    lock.lock();
    EXPECT_TRUE(lock.owns_lock());
  }
  EXPECT_TRUE(mu.try_lock());  // and released again at scope exit
  mu.unlock();
}

TEST(LockdepCondVar, SignalsAcrossThreads) {
  Mutex mu("test.condvar");
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    UniqueLock lock(mu);
    while (!ready) {
      cv.wait(lock);
    }
    EXPECT_TRUE(ready);
  }
  producer.join();
}

#if !RT3_LOCKDEP

// With the checker off the wrapper must be a plain std::mutex in a
// trench coat: no extra state, so the serving path is byte-identical to
// an uninstrumented build (the bench byte-identity cell relies on this).
TEST(LockdepDisabled, CompilesToPlainPrimitives) {
  EXPECT_EQ(sizeof(Mutex), sizeof(std::mutex));
  EXPECT_EQ(sizeof(CondVar), sizeof(std::condition_variable));
}

#else  // RT3_LOCKDEP

// ---------------------------------------------------------------------
// Order checker, lockdep builds only.
// ---------------------------------------------------------------------

/// Test handler: surfaces the report as an exception instead of
/// aborting, so EXPECT_THROW can assert on it.
[[noreturn]] void throwing_handler(const char* report) {
  throw std::runtime_error(report);
}

/// Runs `fn` and returns the lockdep report it triggers ("" if none).
template <typename Fn>
std::string report_from(Fn&& fn) {
  try {
    fn();
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

class LockdepChecker : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::reset();
    lockdep::set_handler(&throwing_handler);
  }
  void TearDown() override {
    lockdep::set_handler(nullptr);
    lockdep::reset();
  }
};

TEST_F(LockdepChecker, ConsistentOrderPasses) {
  Mutex a("order.A");
  Mutex b("order.B");
  auto take_both = [&] {
    MutexLock la(a);
    MutexLock lb(b);
  };
  take_both();  // records A -> B
  std::thread other(take_both);  // same order from another thread
  other.join();
  take_both();
  EXPECT_EQ(lockdep::num_edges(), 1);  // one A -> B edge, deduplicated
}

TEST_F(LockdepChecker, DirectInversionReported) {
  Mutex a("inv.A");
  Mutex b("inv.B");
  {
    MutexLock la(a);
    MutexLock lb(b);  // establishes inv.A -> inv.B
  }
  const std::string report = report_from([&] {
    MutexLock lb(b);
    MutexLock la(a);  // inversion: acquiring A while holding B
  });
  EXPECT_NE(report.find("lock-order inversion"), std::string::npos) << report;
  EXPECT_NE(report.find("inv.A"), std::string::npos) << report;
  EXPECT_NE(report.find("inv.B"), std::string::npos) << report;
}

TEST_F(LockdepChecker, InversionReportedWithoutActualDeadlock) {
  // The sequences never overlap in time — a real deadlock is impossible
  // in this run — but the ORDER contract is still violated, and that is
  // what the graph detects (and TSan structurally cannot).
  Mutex a("nodeadlock.A");
  Mutex b("nodeadlock.B");
  std::thread first([&] {
    MutexLock la(a);
    MutexLock lb(b);
  });
  first.join();  // fully done before the reverse order runs
  const std::string report = report_from([&] {
    MutexLock lb(b);
    MutexLock la(a);
  });
  EXPECT_NE(report.find("lock-order inversion"), std::string::npos) << report;
}

TEST_F(LockdepChecker, FirstOccurrenceIsDeterministic) {
  // Same program order twice -> byte-identical report both times.
  auto scenario = [&] {
    Mutex a("det.A");
    Mutex b("det.B");
    {
      MutexLock la(a);
      MutexLock lb(b);
    }
    return report_from([&] {
      MutexLock lb(b);
      MutexLock la(a);
    });
  };
  const std::string run1 = scenario();
  lockdep::reset();
  const std::string run2 = scenario();
  EXPECT_FALSE(run1.empty());
  EXPECT_EQ(run1, run2);
}

TEST_F(LockdepChecker, TransitiveCycleReported) {
  Mutex a("chain.A");
  Mutex b("chain.B");
  Mutex c("chain.C");
  {
    MutexLock la(a);
    MutexLock lb(b);  // chain.A -> chain.B
  }
  {
    MutexLock lb(b);
    MutexLock lc(c);  // chain.B -> chain.C
  }
  const std::string report = report_from([&] {
    MutexLock lc(c);
    MutexLock la(a);  // A reaches C through B: cycle via the chain
  });
  EXPECT_NE(report.find("lock-order inversion"), std::string::npos) << report;
  EXPECT_NE(report.find("chain.A -> chain.B"), std::string::npos) << report;
  EXPECT_NE(report.find("chain.B -> chain.C"), std::string::npos) << report;
}

TEST_F(LockdepChecker, SameClassRecursionReported) {
  // Two instances sharing one name are one lock class: nesting them is
  // an unordered peer pair (and nesting one instance is self-deadlock).
  Mutex first("peer.same");
  Mutex second("peer.same");
  const std::string report = report_from([&] {
    MutexLock l1(first);
    MutexLock l2(second);
  });
  EXPECT_NE(report.find("recursive acquisition"), std::string::npos)
      << report;
  EXPECT_NE(report.find("peer.same"), std::string::npos) << report;
}

TEST_F(LockdepChecker, TryLockRecordsNoEdges) {
  Mutex a("try.A");
  Mutex b("try.B");
  {
    MutexLock la(a);
    ASSERT_TRUE(b.try_lock());  // non-blocking: cannot deadlock, no edge
    b.unlock();
  }
  EXPECT_EQ(lockdep::num_edges(), 0);
  // ...so the reverse blocking order later is NOT an inversion.
  const std::string report = report_from([&] {
    MutexLock lb(b);
    MutexLock la(a);
  });
  EXPECT_EQ(report, "");
  EXPECT_EQ(lockdep::num_edges(), 1);  // try.B -> try.A, the real order
}

TEST_F(LockdepChecker, ResetClearsEdges) {
  Mutex a("reset.A");
  Mutex b("reset.B");
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_EQ(lockdep::num_edges(), 1);
  lockdep::reset();
  EXPECT_EQ(lockdep::num_edges(), 0);
}

#endif  // RT3_LOCKDEP

}  // namespace
}  // namespace rt3
