// Shared MPMC ingestion harness behind serve_concurrent (single-model
// Server) and serve_node_concurrent (multi-model ServeNode): fan the
// schedule out over producer pool threads in round-robin slices, close
// the queue once every producer drained its slice, and run the caller's
// consumer on this thread — with exceptions from either side re-thrown
// after the closer joins (consumer errors first, and the queue is closed
// on a consumer throw so no producer stays blocked on a bounded queue).
#pragma once

#include <cstdint>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "serve/request.hpp"
#include "serve/thread_pool.hpp"

namespace rt3 {

/// `consume(RequestQueue&)` runs on the calling thread and returns the
/// session stats; its result is returned once ingestion has wound down.
template <typename Consume>
auto consume_schedule_concurrently(const std::vector<Request>& schedule,
                                   std::int64_t producers,
                                   Consume&& consume) {
  check(producers >= 1, "serve_concurrent: need at least one producer");
  RequestQueue queue;
  ThreadPool pool(producers);
  for (std::int64_t p = 0; p < producers; ++p) {
    pool.submit([&, p] {
      // Round-robin slice: producer p pushes requests p, p+P, p+2P, ...
      for (std::size_t i = static_cast<std::size_t>(p); i < schedule.size();
           i += static_cast<std::size_t>(producers)) {
        queue.push(schedule[i]);
      }
    });
  }
  // Close the queue once every producer has drained its slice, so the
  // consumer (below, on this thread) unblocks after the last request.
  std::exception_ptr producer_error;
  std::thread closer([&] {
    try {
      pool.wait_idle();
    } catch (...) {
      producer_error = std::current_exception();
    }
    queue.close();
  });
  decltype(consume(queue)) stats{};
  std::exception_ptr consumer_error;
  try {
    stats = consume(queue);
  } catch (...) {
    consumer_error = std::current_exception();
    queue.close();  // unblock any producer stuck on a bounded queue
  }
  closer.join();
  if (consumer_error != nullptr) {
    std::rethrow_exception(consumer_error);
  }
  if (producer_error != nullptr) {
    std::rethrow_exception(producer_error);
  }
  return stats;
}

}  // namespace rt3
