#include "exec/measured_backend.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/wall_time.hpp"
#include "obs/trace.hpp"

namespace rt3 {
namespace {

/// Validated before pool_ construction (member-init order): a
/// non-positive thread count is a caller bug, not something to clamp
/// silently to 1.
std::int64_t checked_threads(std::int64_t threads) {
  check(threads >= 1, "MeasuredBackend: threads must be >= 1");
  return threads;
}

}  // namespace

MeasuredBackend::MeasuredBackend(MeasuredBackendConfig config,
                                 std::vector<Linear*> layers,
                                 const std::vector<Tensor>& backbone_masks,
                                 const std::vector<PatternSet>& sets,
                                 std::vector<double> level_freqs_mhz)
    : config_(config),
      layers_(std::move(layers)),
      freqs_(std::move(level_freqs_mhz)),
      plans_(config.mode, layers_, backbone_masks, sets,
             static_cast<std::int64_t>(freqs_.size()), config.bp_blocks),
      pool_(checked_threads(config.threads), config.pin_threads) {
  check(!freqs_.empty(), "MeasuredBackend: no levels");
  check(plans_.num_levels() == static_cast<std::int64_t>(freqs_.size()),
        "MeasuredBackend: one frequency per plan level required");
  check(config_.cols_per_request >= 1 && config_.max_batch >= 1,
        "MeasuredBackend: bad activation sizing");
  check(config_.latency_scale > 0.0, "MeasuredBackend: bad latency scale");
  for (double f : freqs_) {
    check(f > 0.0, "MeasuredBackend: bad level frequency");
  }
  Rng rng(config_.input_seed);
  const std::int64_t max_n = config_.max_batch * config_.cols_per_request;
  inputs_.reserve(layers_.size());
  for (const Linear* layer : layers_) {
    inputs_.push_back(
        Tensor::randn({layer->weight().value().size(1), max_n}, rng));
  }
}

Tensor MeasuredBackend::batch_input(std::int64_t li, std::int64_t n) const {
  const Tensor& master = inputs_[static_cast<std::size_t>(li)];
  const std::int64_t rows = master.size(0);
  const std::int64_t max_n = master.size(1);
  Tensor x({rows, n});
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* src = master.data() + r * max_n;
    std::copy(src, src + n, x.data() + r * n);
  }
  return x;
}

double MeasuredBackend::run_layers_wall_ms(std::int64_t n) {
  // Activation slices are prepared OUTSIDE the timed region: the kernel
  // measurement covers GEMM work, not buffer bookkeeping.
  std::vector<Tensor> xs;
  xs.reserve(layers_.size());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    xs.push_back(batch_input(static_cast<std::int64_t>(li), n));
  }
  const auto t0 = wall_now();
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const LayerPlan& plan = plans_.active_plan(static_cast<std::int64_t>(li));
    const Tensor out =
        plan_gemm(plan, xs[li], &pool_,
                  plan.tuned ? *plan.tuned : config_.kernel);
    sink_ += out[0];
  }
  return wall_ms_since(t0);
}

BatchExecution MeasuredBackend::run_batch(std::int64_t batch_size,
                                          std::int64_t level_pos) {
  check(batch_size >= 1 && batch_size <= config_.max_batch,
        "MeasuredBackend: batch size outside the activation buffer");
  check(level_pos >= 0 && level_pos < num_levels(),
        "MeasuredBackend: level position out of range");
  if (plans_.active_level() != level_pos) {
    plans_.swap_to(level_pos);  // defensive; the Server activates first
  }
  const double wall =
      run_layers_wall_ms(batch_size * config_.cols_per_request);
  total_kernel_wall_ms_ += wall;
  // A scheduler hiccup can inflate one sample 10-50x; that is host noise,
  // not device work, so virtual time uses the clamped sample.
  double accounted = wall;
  if (config_.outlier_clamp > 0.0 && baseline_item_wall_ms_ > 0.0) {
    accounted = std::min(accounted,
                         config_.outlier_clamp * baseline_item_wall_ms_ *
                             static_cast<double>(batch_size));
  }
  double latency = accounted * config_.latency_scale;
  if (config_.scale_with_freq) {
    latency *= freqs_.front() / freqs_[static_cast<std::size_t>(level_pos)];
  }
  if (trace_ != nullptr) {
    // Virtual ts/dur keep the trace deterministic; the raw host wall time
    // rides along only when the recorder opted into wall stamps.
    TraceEvent ev("kernel", "kernel", trace_->now_ms(), trace_lane_);
    ev.ph = 'X';
    ev.dur_ms = latency;
    ev.arg("batch_size", batch_size).arg("level", level_pos);
    if (trace_->record_wall()) {
      ev.arg("kernel_wall_ms", wall);
    }
    trace_->record(std::move(ev));
  }
  return {latency, wall};
}

double MeasuredBackend::activate_level(std::int64_t level_pos) {
  check(level_pos >= 0 && level_pos < num_levels(),
        "MeasuredBackend: level position out of range");
  return plans_.swap_to(level_pos);
}

Tensor MeasuredBackend::run_layer(std::int64_t layer, const Tensor& x) {
  const LayerPlan& plan = plans_.active_plan(layer);
  return plan_gemm(plan, x, &pool_,
                   plan.tuned ? *plan.tuned : config_.kernel);
}

double MeasuredBackend::time_layer_ms(std::int64_t layer, std::int64_t level,
                                      std::int64_t batch,
                                      const KernelOptions& options) {
  check(batch >= 1 && batch <= config_.max_batch,
        "MeasuredBackend: batch size outside the activation buffer");
  const Tensor x = batch_input(layer, batch * config_.cols_per_request);
  const LayerPlan& plan = plans_.plan(layer, level);
  const auto t0 = wall_now();
  const Tensor out = plan_gemm(plan, x, &pool_, options);
  sink_ += out[0];
  return wall_ms_since(t0);
}

void MeasuredBackend::auto_scale(double target_ms) {
  check(target_ms > 0.0, "MeasuredBackend: bad auto-scale target");
  const std::int64_t restore = plans_.active_level();
  plans_.swap_to(0);
  run_layers_wall_ms(config_.cols_per_request);  // warm caches and pool
  std::vector<double> walls;
  for (int rep = 0; rep < 5; ++rep) {
    walls.push_back(run_layers_wall_ms(config_.cols_per_request));
  }
  std::sort(walls.begin(), walls.end());
  const double median = std::max(walls[walls.size() / 2], 1e-6);
  config_.latency_scale = target_ms / median;
  baseline_item_wall_ms_ = median;
  if (restore >= 0) {
    plans_.swap_to(restore);
  }
}

}  // namespace rt3
