// Ablation of RT3's design choices (not a paper exhibit; backs the design
// discussion in Sections II-B and III-C):
//
//   1. pattern size psize — "a small pattern will lead to computation
//      overhead, while a large pattern suffers from the low accuracy";
//      the paper picks 100x100.  We sweep psize and report the trade-off:
//      retained weight energy (accuracy proxy) vs per-switch payload and
//      tile count (overhead proxy), plus the raw pattern-space size that
//      makes unshrunken search infeasible.
//   2. theta (search-space widening) — grid size and sparsity coverage.
//   3. m (patterns per set) — retained energy of per-tile best-of-m
//      assignment; why a SET of patterns beats a single pattern.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "pruning/model_pruner.hpp"
#include "search/space.hpp"

namespace {

using namespace rt3;

double retained_energy_fraction(const std::vector<Linear*>& layers,
                                const PatternSet& set) {
  double kept = 0.0;
  double total = 0.0;
  for (Linear* layer : layers) {
    const Tensor& w = layer->weight().value();
    const Tensor masked = mul(w, pattern_mask_for_weight(w, set));
    kept += static_cast<double>(masked.l2_norm()) * masked.l2_norm();
    total += static_cast<double>(w.l2_norm()) * w.l2_norm();
  }
  return kept / total;
}

// log10 of C(n, k) via lgamma.
double log10_binomial(double n, double k) {
  return (std::lgamma(n + 1) - std::lgamma(k + 1) - std::lgamma(n - k + 1)) /
         std::log(10.0);
}

}  // namespace

int main() {
  using namespace rt3;
  bench::print_header("Design ablations - psize / theta / m",
                      "paper Sections II-B, III-C design discussion");

  bench::LmWorkload w = bench::make_lm_workload(91);
  ModelPruner pruner(w.model->prunable());
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.35;
  pruner.apply_bp(bp);
  const ModelSpec spec = ModelSpec::paper_transformer();
  const SwitchCostModel cost;

  // --- 1. pattern size --------------------------------------------------
  std::cout << "(1) Pattern size trade-off at 50% pattern sparsity:\n";
  TablePrinter t1({"psize", "retained energy", "paper-scale tiles",
                   "switch (ms)", "log10 |patterns|"});
  for (std::int64_t psize : {4, 8, 16}) {
    Rng rng(92);
    const PatternSet set =
        pattern_set_from_layers(pruner.layers(), psize, 0.5, 4, rng);
    const double energy = retained_energy_fraction(pruner.layers(), set);
    // Overhead at paper scale: tile count and switch payload if the paper's
    // matrices were tiled at this psize.
    const std::int64_t tiles = spec.num_tiles(psize * 12);  // scaled psize
    const double switch_ms =
        cost.pattern_set_switch_ms(set.storage_bytes() + tiles * 2, tiles);
    const double space = log10_binomial(
        static_cast<double>(psize * psize),
        static_cast<double>(kept_for_sparsity(psize, 0.5)));
    t1.add_row({std::to_string(psize), fmt_pct(energy),
                std::to_string(tiles), fmt_f(switch_ms, 2),
                fmt_f(space, 1)});
  }
  std::cout << t1.str();
  std::cout << "Small psize -> more tiles (switch/indexing overhead); large "
               "psize -> per-tile choice is coarser, so retained energy "
               "falls, and the raw pattern space explodes (the paper quotes "
               "C(100,50) ~ 1e286) — hence the importance-guided shrinking.\n";

  // --- 2. theta ----------------------------------------------------------
  std::cout << "\n(2) Search-space widening factor theta (T = 104 ms):\n";
  LatencyModel latency;
  latency.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);
  const VfTable table = VfTable::odroid_xu3_a7();
  std::vector<VfLevel> levels;
  for (std::int64_t i : {5, 3, 2}) {
    levels.push_back(table.level(i));
  }
  TablePrinter t2({"theta", "grid size", "min sparsity", "max sparsity"});
  for (std::int64_t theta : {1, 2, 3, 4}) {
    SearchSpaceConfig cfg;
    cfg.timing_constraint_ms = 104.0;
    cfg.theta = theta;
    cfg.psize = 8;
    cfg.patterns_per_set = 2;
    cfg.num_variants = 1;
    const auto space = PatternSearchSpace::build(
        cfg, levels, spec, latency, pruner.layers(), 0.35);
    t2.add_row({std::to_string(theta), std::to_string(space.grid_size()),
                fmt_pct(space.sparsity_grid().front()),
                fmt_pct(space.sparsity_grid().back())});
  }
  std::cout << t2.str();
  std::cout << "Larger theta widens the grid toward sparser candidates "
               "(tighter virtual constraints), giving the RL controller "
               "room to trade accuracy for runs.\n";

  // --- 3. patterns per set (m) -------------------------------------------
  std::cout << "\n(3) Patterns per set (m), 50% sparsity, psize 8:\n";
  TablePrinter t3({"m", "retained energy", "switch payload (B)"});
  for (std::int64_t m : {1, 2, 4, 8}) {
    Rng rng(93);
    const PatternSet set =
        pattern_set_from_layers(pruner.layers(), 8, 0.5, m, rng);
    t3.add_row({std::to_string(m),
                fmt_pct(retained_energy_fraction(pruner.layers(), set)),
                std::to_string(set.storage_bytes())});
  }
  std::cout << t3.str();
  std::cout << "More patterns per set let each tile pick a better-fitting "
               "mask (higher retained energy) at a linear cost in switch "
               "payload — the paper's m is the knob balancing the two.\n";
  return 0;
}
