// Runtime SIMD dispatch and per-core cache topology for the kernel engine.
//
// The measured kernels vectorize the activation (j) dimension only: every
// output element still accumulates its k-terms in ascending order through
// a single fused-multiply-add chain, so a width-W vector kernel computes
// W independent scalar chains side by side.  Hardware FMA (AVX2 vfmadd /
// NEON vfma) and std::fma both round once per step, which is what keeps
// the vector kernels BITWISE equal to the scalar reference lane-wise.
//
// Dispatch is resolved at runtime: x86 hosts probe AVX2+FMA via CPUID,
// aarch64 always has NEON, and everything else (or a forced override, see
// set_simd_isa) falls back to the portable scalar table.  The AVX2 table
// lives in a translation unit compiled with -mavx2 -mfma; when the
// toolchain cannot produce it the table is absent and detection skips it.
#pragma once

#include <cstdint>
#include <string>

namespace rt3 {

/// Instruction sets the kernel engine can dispatch to.
enum class SimdIsa : std::uint8_t {
  kScalar,  // portable std::fma loops (always available)
  kNeon,    // aarch64 NEON, width 4
  kAvx2,    // x86 AVX2 + FMA, width 8
};

const char* simd_isa_name(SimdIsa isa);
/// Parses "scalar" / "neon" / "avx2"; throws CheckError otherwise.
SimdIsa simd_isa_from_name(const std::string& name);

/// Widest ISA this host can actually execute (CPUID-probed once).
SimdIsa detect_simd_isa();

/// The ISA kernels currently dispatch to.  Defaults to detect_simd_isa();
/// set_simd_isa() overrides it (tests and the scalar-vs-SIMD bench force
/// kScalar) and throws CheckError if the host cannot execute `isa`.
SimdIsa active_simd_isa();
void set_simd_isa(SimdIsa isa);
/// Vector width (floats per register) of an ISA.
std::int64_t simd_isa_width(SimdIsa isa);

/// Per-core data-cache sizes, probed via sysconf on Linux with
/// conservative mobile-class fallbacks (32 KiB L1d, 512 KiB L2).  These
/// size the default k-tiles so the hot activation slice stays resident.
std::int64_t cpu_l1d_bytes();
std::int64_t cpu_l2_bytes();
/// Hardware threads available for pinning (>= 1).
std::int64_t cpu_cores();

}  // namespace rt3
