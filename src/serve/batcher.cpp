#include "serve/batcher.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace rt3 {

Batcher::Batcher(BatchPolicy policy) : policy_(policy) {
  check(policy_.max_batch_size >= 1, "Batcher: max_batch_size must be >= 1");
  check(policy_.max_wait_ms >= 0.0, "Batcher: negative max_wait_ms");
}

void Batcher::push(const Request& r) {
  check(pending_.empty() || pending_.back().arrival_ms <= r.arrival_ms,
        "Batcher: requests must arrive in timestamp order");
  pending_.push_back(r);
}

bool Batcher::ready(double now_ms) const {
  if (pending_.empty()) {
    return false;
  }
  if (static_cast<std::int64_t>(pending_.size()) >= policy_.max_batch_size) {
    return true;
  }
  return now_ms >= release_at_ms();
}

double Batcher::release_at_ms() const {
  if (pending_.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  return pending_.front().arrival_ms + policy_.max_wait_ms;
}

std::vector<Request> Batcher::shed_expired(double now_ms) {
  std::vector<Request> shed;
  // Arrival order does not imply deadline order (slacks may differ), so
  // scan the whole queue, not just its head.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->deadline_ms <= now_ms) {
      shed.push_back(*it);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return shed;
}

std::vector<Request> Batcher::pop_batch(double now_ms, bool force) {
  check(force || ready(now_ms), "Batcher: pop_batch before ready");
  std::vector<Request> batch;
  const auto take = static_cast<std::size_t>(
      std::min<std::int64_t>(policy_.max_batch_size, pending()));
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(pending_.front());
    pending_.pop_front();
  }
  return batch;
}

}  // namespace rt3
