// Reproduces paper Table III: AutoML results for Transformer (WikiText-2
// analog, T = 94 ms and T = 104 ms) and DistilBERT (RTE analog T = 200 ms,
// STS-B analog T = 330 ms).
//
// For each workload RT3 searches three sub-models {M1, M2, M3} for V/F
// levels {l6, l4, l3}; the accuracy upper bound ("UB") trains one model per
// pattern set individually.  The "Interrupt" row contrasts the UB's
// full-model reload (tens of seconds) with RT3's pattern-set switch
// (milliseconds) — the paper's ">1000x switch speedup".
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace rt3;

struct WorkloadRow {
  std::string name;
  double timing_ms = 0.0;
  Rt3Result result;
  std::vector<double> ub_accuracy;
  double model_switch_s = 0.0;
  double pattern_switch_ms = 0.0;
};

void print_workload(const WorkloadRow& row) {
  std::cout << "\n--- " << row.name << " (T: " << fmt_f(row.timing_ms, 0)
            << "ms) ---\n";
  TablePrinter t({"", "M1", "M2", "M3"});
  const auto cells = [&](auto getter) {
    std::vector<std::string> out;
    for (const auto& sub : row.result.levels) {
      out.push_back(getter(sub));
    }
    while (out.size() < 3) {
      out.emplace_back("-");
    }
    return out;
  };
  auto sp = cells([](const SubModelResult& s) {
    return fmt_pct(s.overall_sparsity);
  });
  t.add_row({"Sparsity", sp[0], sp[1], sp[2]});
  auto lat = cells([](const SubModelResult& s) {
    return fmt_f(s.latency_ms, 2);
  });
  t.add_row({"Latency (ms)", lat[0], lat[1], lat[2]});
  std::vector<std::string> ub;
  for (double a : row.ub_accuracy) {
    ub.push_back(fmt_pct(a));
  }
  while (ub.size() < 3) {
    ub.emplace_back("-");
  }
  t.add_row({"UB Accuracy", ub[0], ub[1], ub[2]});
  t.add_row({"UB Interrupt", fmt_f(row.model_switch_s, 2) + " s", "", ""});
  auto acc = cells([](const SubModelResult& s) { return fmt_pct(s.accuracy); });
  t.add_row({"RT3 Accuracy", acc[0], acc[1], acc[2]});
  t.add_row({"RT3 Interrupt", fmt_f(row.pattern_switch_ms, 2) + " ms", "", ""});
  std::vector<std::string> gap;
  for (std::size_t i = 0; i < row.result.levels.size(); ++i) {
    const double g = row.ub_accuracy[i] - row.result.levels[i].accuracy;
    gap.push_back(fmt_pct(g));
  }
  while (gap.size() < 3) {
    gap.emplace_back("-");
  }
  t.add_row({"Accuracy gap", gap[0], gap[1], gap[2]});
  std::cout << t.str();
  std::cout << "Switch speedup (UB/RT3): "
            << fmt_x(row.model_switch_s * 1000.0 / row.pattern_switch_ms, 0)
            << "\n";
}

WorkloadRow run_lm_workload(double timing_ms, std::uint64_t seed) {
  WorkloadRow row;
  row.name = "WikiText-2 analog / Transformer";
  row.timing_ms = timing_ms;
  bench::LmWorkload w = bench::make_lm_workload(seed);
  Rt3Options options = bench::bench_options(timing_ms, /*episodes=*/3);
  Rt3LmPipeline pipeline(*w.model, *w.corpus, options,
                         ModelSpec::paper_transformer());
  row.result = pipeline.run();
  TrainConfig ub_cfg = options.final_train;
  row.ub_accuracy = bench::ub_accuracies_lm(*w.model, *w.corpus, options.bp,
                                            row.result.chosen_sets, ub_cfg);
  row.model_switch_s = row.result.model_switch_ms / 1000.0;
  row.pattern_switch_ms = row.result.pattern_switch_ms;
  return row;
}

WorkloadRow run_glue_workload(GlueTask task, double timing_ms,
                              std::uint64_t seed) {
  WorkloadRow row;
  row.name = GlueDataset::task_name(task) + " analog / DistilBERT";
  row.timing_ms = timing_ms;
  bench::GlueWorkload w = bench::make_glue_workload(task, seed);
  Rt3Options options = bench::bench_options(timing_ms, /*episodes=*/3);
  Rt3GluePipeline pipeline(*w.model, *w.data, options,
                           ModelSpec::paper_distilbert());
  row.result = pipeline.run();
  TrainConfig ub_cfg = options.final_train;
  row.ub_accuracy = bench::ub_scores_glue(*w.model, *w.data, options.bp,
                                          row.result.chosen_sets, ub_cfg);
  row.model_switch_s = row.result.model_switch_ms / 1000.0;
  row.pattern_switch_ms = row.result.pattern_switch_ms;
  return row;
}

}  // namespace

int main() {
  using namespace rt3;
  bench::print_header(
      "Table III - AutoML results (RT3 vs accuracy upper bound)",
      "paper Table III: WikiText-2 (94/104 ms), RTE (200 ms), STS-B (330 ms)");

  print_workload(run_lm_workload(94.0, 11));
  print_workload(run_lm_workload(104.0, 12));
  print_workload(run_glue_workload(GlueTask::kRte, 200.0, 13));
  print_workload(run_glue_workload(GlueTask::kStsB, 330.0, 14));

  std::cout
      << "\nPaper Table III shape checks:\n"
      << "  * every sub-model latency <= its T (real-time satisfied);\n"
      << "  * RT3 accuracy within a few points of UB (paper: <= 2.99%);\n"
      << "  * UB interrupt in SECONDS (51.8-66.9 s) vs RT3 in MILLISECONDS\n"
      << "    (8.75-45 ms) -> >1000x lighter reconfiguration.\n";
  return 0;
}
