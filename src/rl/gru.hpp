// Minimal GRU cell on the rt3 autodiff stack — the recurrent core of the
// RL controller (the paper's controller is "implemented based on an RNN,
// similar to [Zoph & Le 2016]").
#pragma once

#include <memory>

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace rt3 {

/// Single-layer GRU cell:
///   z = sigmoid(Wz x + Uz h)
///   r = sigmoid(Wr x + Ur h)
///   n = tanh(Wn x + Un (r * h))
///   h' = (1 - z) * h + z * n
class GruCell : public Module {
 public:
  GruCell(std::int64_t input_dim, std::int64_t hidden_dim, Rng& rng);

  /// x: [B, input_dim], h: [B, hidden_dim] -> new hidden [B, hidden_dim].
  Var forward(const Var& x, const Var& h) const;

  /// Zero initial state.
  Var initial_state(std::int64_t batch) const;

  std::int64_t hidden_dim() const { return hidden_dim_; }

  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) const override;

 private:
  std::int64_t hidden_dim_;
  std::unique_ptr<Linear> wz_;
  std::unique_ptr<Linear> uz_;
  std::unique_ptr<Linear> wr_;
  std::unique_ptr<Linear> ur_;
  std::unique_ptr<Linear> wn_;
  std::unique_ptr<Linear> un_;
};

}  // namespace rt3
