#include "dvfs/dvfs.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"

namespace rt3 {

VfTable VfTable::odroid_xu3_a7() {
  // Paper Table I, verbatim.
  return VfTable({
      {"l1", 400.0, 916.25},
      {"l2", 600.0, 917.5},
      {"l3", 800.0, 992.5},
      {"l4", 1000.0, 1066.25},
      {"l5", 1200.0, 1141.25},
      {"l6", 1400.0, 1240.0},
  });
}

VfTable::VfTable(std::vector<VfLevel> levels) : levels_(std::move(levels)) {
  check(!levels_.empty(), "VfTable: empty ladder");
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    check(levels_[i].freq_mhz > levels_[i - 1].freq_mhz,
          "VfTable: levels must be sorted by frequency");
  }
}

const VfLevel& VfTable::level(std::int64_t index) const {
  check(index >= 0 && index < size(), "VfTable: level out of range");
  return levels_[static_cast<std::size_t>(index)];
}

PowerModel::PowerModel(double ceff_mw_per_mhz_v2, double static_mw)
    : ceff_mw_per_mhz_v2_(ceff_mw_per_mhz_v2), static_mw_(static_mw) {
  check(ceff_mw_per_mhz_v2 > 0.0 && static_mw >= 0.0,
        "PowerModel: bad constants");
}

double PowerModel::power_mw(const VfLevel& level) const {
  const double volts = level.volt_mv / 1000.0;
  return ceff_mw_per_mhz_v2_ * volts * volts * level.freq_mhz + static_mw_;
}

double PowerModel::energy_mj(const VfLevel& level, double duration_ms) const {
  check(duration_ms >= 0.0, "PowerModel: negative duration");
  // mW * ms = microjoules; convert to millijoules.
  return power_mw(level) * duration_ms / 1000.0;
}

double number_of_runs(double energy_budget_mj, double power_mw,
                      double latency_ms) {
  check(energy_budget_mj >= 0.0, "number_of_runs: negative budget");
  check(power_mw > 0.0 && latency_ms > 0.0, "number_of_runs: bad operating point");
  const double energy_per_run_mj = power_mw * latency_ms / 1000.0;
  return energy_budget_mj / energy_per_run_mj;
}

Battery::Battery(double capacity_mj)
    : capacity_mj_(capacity_mj), remaining_mj_(capacity_mj) {
  check(capacity_mj > 0.0, "Battery: capacity must be positive");
}

bool Battery::drain(double energy_mj) {
  check(energy_mj >= 0.0, "Battery: negative drain");
  if (energy_mj > remaining_mj_) {
    remaining_mj_ = 0.0;
    return false;
  }
  remaining_mj_ -= energy_mj;
  return true;
}

Governor::Governor(std::vector<std::int64_t> levels,
                   std::vector<double> thresholds)
    : levels_(std::move(levels)), thresholds_(std::move(thresholds)) {
  check(!levels_.empty(), "Governor: no levels");
  check(thresholds_.size() + 1 == levels_.size(),
        "Governor: " + std::to_string(levels_.size()) + " levels need " +
            std::to_string(levels_.size() - 1) + " thresholds, got " +
            std::to_string(thresholds_.size()));
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    // NaN fails both comparisons, so a NaN threshold is rejected here too.
    check(thresholds_[i] > 0.0 && thresholds_[i] < 1.0,
          "Governor: threshold[" + std::to_string(i) + "] = " +
              std::to_string(thresholds_[i]) + " out of (0, 1)");
    if (i > 0) {
      check(thresholds_[i] < thresholds_[i - 1],
            "Governor: thresholds must be strictly descending, but "
            "threshold[" +
                std::to_string(i - 1) + "] = " +
                std::to_string(thresholds_[i - 1]) + " <= threshold[" +
                std::to_string(i) + "] = " + std::to_string(thresholds_[i]));
    }
  }
}

Governor Governor::equal_tranches(std::vector<std::int64_t> levels) {
  const std::size_t n = levels.size();
  check(n >= 1, "Governor: no levels");
  std::vector<double> thresholds;
  for (std::size_t i = 1; i < n; ++i) {
    thresholds.push_back(1.0 - static_cast<double>(i) / static_cast<double>(n));
  }
  return Governor(std::move(levels), std::move(thresholds));
}

std::int64_t Governor::level_for(double battery_fraction) const {
  check(battery_fraction >= 0.0 && battery_fraction <= 1.0,
        "Governor: fraction out of range");
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    if (battery_fraction > thresholds_[i]) {
      return levels_[i];
    }
  }
  return levels_.back();
}

std::int64_t Governor::level_position(double battery_fraction) const {
  check(battery_fraction >= 0.0 && battery_fraction <= 1.0,
        "Governor: fraction out of range");
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    if (battery_fraction > thresholds_[i]) {
      return static_cast<std::int64_t>(i);
    }
  }
  return static_cast<std::int64_t>(levels_.size()) - 1;
}

double Governor::next_step_down(double battery_fraction) const {
  check(battery_fraction >= 0.0 && battery_fraction <= 1.0,
        "Governor: fraction out of range");
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    if (battery_fraction > thresholds_[i]) {
      return thresholds_[i];
    }
  }
  return 0.0;
}

}  // namespace rt3
