// Deterministic (simulated-clock) tests for the serving subsystem:
// batch formation, traffic generation, deadline accounting, and
// drain-then-switch correctness across battery-driven level changes.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "nn/linear.hpp"
#include "pruning/model_pruner.hpp"
#include "pruning/pattern_prune.hpp"
#include "runtime/engine.hpp"
#include "serve/batcher.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"

namespace rt3 {
namespace {

Request make_request(std::int64_t id, double arrival_ms,
                     double deadline_ms = 1e12) {
  Request r;
  r.id = id;
  r.arrival_ms = arrival_ms;
  r.deadline_ms = deadline_ms;
  return r;
}

/// Server over the paper's {l6, l4, l3} ladder with per-level sparsities
/// tuned to just meet T = 115 ms, exactly like the simulate CLI path.
Server make_paper_server(double capacity_mj, BatchPolicy policy) {
  const LatencyModel latency = paper_calibrated_latency();
  ServerConfig cfg;
  cfg.battery_capacity_mj = capacity_mj;
  cfg.batch = policy;
  return Server(cfg, VfTable::odroid_xu3_a7(),
                Governor::equal_tranches(paper_serve_ladder()), PowerModel(),
                latency, ModelSpec::paper_transformer(),
                paper_ladder_sparsities(latency, 115.0));
}

TEST(Percentile, LinearInterpolation) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) {
    xs.push_back(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 50.5);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
  EXPECT_THROW(percentile(xs, 101.0), CheckError);
}

TEST(Batcher, EmptyIsNeverReady) {
  Batcher batcher(BatchPolicy{4, 25.0});
  EXPECT_FALSE(batcher.ready(1e9));
  EXPECT_TRUE(std::isinf(batcher.release_at_ms()));
}

TEST(Batcher, MaxWaitReleasesPartialBatch) {
  Batcher batcher(BatchPolicy{4, 25.0});
  batcher.push(make_request(0, 0.0));
  batcher.push(make_request(1, 5.0));
  batcher.push(make_request(2, 10.0));
  EXPECT_DOUBLE_EQ(batcher.release_at_ms(), 25.0);  // oldest + max_wait
  EXPECT_FALSE(batcher.ready(24.9));
  EXPECT_TRUE(batcher.ready(25.0));
  const auto batch = batcher.pop_batch(25.0);
  ASSERT_EQ(batch.size(), 3U);
  EXPECT_EQ(batch[0].id, 0);  // FIFO
  EXPECT_EQ(batch[2].id, 2);
  EXPECT_EQ(batcher.pending(), 0);
}

TEST(Batcher, MaxSizeReleasesImmediately) {
  Batcher batcher(BatchPolicy{4, 1e9});  // wait never triggers
  for (std::int64_t i = 0; i < 6; ++i) {
    batcher.push(make_request(i, static_cast<double>(i)));
  }
  EXPECT_TRUE(batcher.ready(5.0));  // size trigger, no waiting
  const auto batch = batcher.pop_batch(5.0);
  ASSERT_EQ(batch.size(), 4U);  // capped at max_batch_size
  EXPECT_EQ(batch[0].id, 0);
  EXPECT_EQ(batcher.pending(), 2);
}

TEST(Batcher, RejectsOutOfOrderAndEarlyPop) {
  Batcher batcher(BatchPolicy{4, 25.0});
  batcher.push(make_request(0, 10.0));
  EXPECT_THROW(batcher.push(make_request(1, 5.0)), CheckError);
  EXPECT_THROW(batcher.pop_batch(10.0), CheckError);  // not ready yet
  const auto forced = batcher.pop_batch(10.0, /*force=*/true);
  EXPECT_EQ(forced.size(), 1U);
}

TEST(Traffic, DeterministicSortedAndDeadlineTagged) {
  TrafficConfig cfg;
  cfg.scenario = TrafficScenario::kBurst;
  cfg.duration_ms = 20'000.0;
  cfg.rate_rps = 30.0;
  cfg.deadline_slack_ms = 200.0;
  const auto a = generate_traffic(cfg);
  const auto b = generate_traffic(cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_ms, b[i].arrival_ms);
    EXPECT_EQ(a[i].id, static_cast<std::int64_t>(i));
    EXPECT_DOUBLE_EQ(a[i].deadline_ms, a[i].arrival_ms + 200.0);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_ms, a[i - 1].arrival_ms);
    }
    EXPECT_LT(a[i].arrival_ms, cfg.duration_ms);
  }
}

TEST(Traffic, ScenariosShareTheMeanRate) {
  // rate_rps is normalized to the session mean in every scenario, so the
  // request counts must agree within Poisson noise.
  TrafficConfig cfg;
  cfg.duration_ms = 60'000.0;
  cfg.rate_rps = 20.0;
  const double expected = cfg.rate_rps * cfg.duration_ms / 1000.0;
  for (TrafficScenario s : {TrafficScenario::kSteady, TrafficScenario::kBurst,
                            TrafficScenario::kDiurnal}) {
    cfg.scenario = s;
    const double n = static_cast<double>(generate_traffic(cfg).size());
    EXPECT_NEAR(n, expected, 5.0 * std::sqrt(expected))
        << traffic_scenario_name(s);
  }
}

TEST(Traffic, BurstIsBurstier) {
  TrafficConfig cfg;
  cfg.duration_ms = 60'000.0;
  cfg.rate_rps = 20.0;
  const auto count_in = [](const std::vector<Request>& reqs, double lo,
                           double hi) {
    std::int64_t n = 0;
    for (const auto& r : reqs) {
      n += (r.arrival_ms >= lo && r.arrival_ms < hi) ? 1 : 0;
    }
    return n;
  };
  cfg.scenario = TrafficScenario::kBurst;
  const auto burst = generate_traffic(cfg);
  // First on-period (0-2 s) vs first off-period (2-5 s): the on rate is
  // 40x the off rate, so even with Poisson noise the on window dominates.
  EXPECT_GT(count_in(burst, 0.0, 2'000.0),
            2 * count_in(burst, 2'000.0, 5'000.0));
  cfg.scenario = TrafficScenario::kDiurnal;
  const auto diurnal = generate_traffic(cfg);
  // Mid-session peak beats the trough at the start.
  EXPECT_GT(count_in(diurnal, 25'000.0, 35'000.0),
            2 * count_in(diurnal, 0.0, 10'000.0));
}

TEST(Traffic, NamesRoundTrip) {
  for (TrafficScenario s : {TrafficScenario::kSteady, TrafficScenario::kBurst,
                            TrafficScenario::kDiurnal}) {
    EXPECT_EQ(traffic_scenario_from_name(traffic_scenario_name(s)), s);
  }
  EXPECT_THROW(traffic_scenario_from_name("tsunami"), CheckError);
}

TEST(Batcher, ShedExpiredDropsOnlyBlownDeadlines) {
  Batcher batcher(BatchPolicy{8, 1e9});
  batcher.push(make_request(0, 0.0, 50.0));
  batcher.push(make_request(1, 0.0, 500.0));
  batcher.push(make_request(2, 5.0, 60.0));
  const auto shed = batcher.shed_expired(60.0);  // deadlines 50 and 60 blown
  ASSERT_EQ(shed.size(), 2U);
  EXPECT_EQ(shed[0].id, 0);
  EXPECT_EQ(shed[1].id, 2);
  EXPECT_EQ(batcher.pending(), 1);
  EXPECT_TRUE(batcher.shed_expired(60.0).empty());  // idempotent
}

TEST(Server, ShedsHopelessRequestsBeforeTheyOccupyASlot) {
  const LatencyModel latency = paper_calibrated_latency();
  ServerConfig cfg;
  cfg.battery_capacity_mj = 1e9;
  cfg.batch = BatchPolicy{1, 0.0};  // immediate single-request batches
  cfg.shed_expired = true;
  Server server(cfg, VfTable::odroid_xu3_a7(),
                Governor::equal_tranches(paper_serve_ladder()), PowerModel(),
                latency, ModelSpec::paper_transformer(),
                paper_ladder_sparsities(latency, 115.0));
  const double lat = server.batch_latency_ms(1, 0);
  // Request 1's deadline passes while request 0 executes: without
  // shedding it would occupy a batch slot only to miss; with shedding it
  // is dropped before launch and counted as shed.
  const ServerStats stats = server.serve({
      make_request(0, 0.0, 1e12),
      make_request(1, 0.0, lat * 0.5),
      make_request(2, 0.0, 1e12),
  });
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.deadline_misses, 0);
  EXPECT_EQ(stats.completed + stats.shed, stats.submitted);
}

TEST(Server, SheddingKeepsAccountingExactUnderOverload) {
  const LatencyModel latency = paper_calibrated_latency();
  ServerConfig cfg;
  cfg.battery_capacity_mj = 4'000.0;  // dies mid-session
  cfg.batch = BatchPolicy{2, 20.0};
  cfg.shed_expired = true;
  Server server(cfg, VfTable::odroid_xu3_a7(),
                Governor::equal_tranches(paper_serve_ladder()), PowerModel(),
                latency, ModelSpec::paper_transformer(),
                paper_ladder_sparsities(latency, 115.0));
  TrafficConfig tcfg;
  tcfg.scenario = TrafficScenario::kBurst;
  tcfg.duration_ms = 60'000.0;
  tcfg.rate_rps = 12.0;  // heavy overload: shedding must engage
  tcfg.deadline_slack_ms = 200.0;
  const ServerStats stats = server.serve(generate_traffic(tcfg));
  EXPECT_GT(stats.shed, 0);
  EXPECT_EQ(stats.completed + stats.dropped + stats.shed, stats.submitted);
  // Shed requests never execute, so they are not deadline misses.
  EXPECT_LE(stats.deadline_misses, stats.completed);
}

TEST(Server, DeadlineMissAccountingIsExact) {
  Server server = make_paper_server(1e9, BatchPolicy{2, 10.0});
  const double lat = server.batch_latency_ms(2, 0);
  // Both arrive at t=0 -> batch of 2 released immediately, ends at `lat`.
  const std::vector<Request> schedule = {
      make_request(0, 0.0, lat - 1.0),  // misses by 1 ms
      make_request(1, 0.0, lat + 1.0),  // meets with 1 ms to spare
  };
  const ServerStats stats = server.serve(schedule);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.deadline_misses, 1);
  ASSERT_EQ(stats.latency_ms.size(), 2U);
  EXPECT_NEAR(stats.latency_ms[0], lat, 1e-9);
  EXPECT_NEAR(stats.latency_ms[1], lat, 1e-9);
}

TEST(Server, MaxWaitDelayCountsTowardLatency) {
  Server server = make_paper_server(1e9, BatchPolicy{8, 40.0});
  const double lat1 = server.batch_latency_ms(1, 0);
  const ServerStats stats = server.serve({make_request(0, 0.0)});
  // A lone request sits out the full max-wait before its batch launches.
  ASSERT_EQ(stats.latency_ms.size(), 1U);
  EXPECT_NEAR(stats.latency_ms[0], 40.0 + lat1, 1e-9);
  EXPECT_NEAR(stats.sim_end_ms, 40.0 + lat1, 1e-9);
}

TEST(Server, BatchingAmortizesFixedCost) {
  Server server = make_paper_server(1e9, BatchPolicy{8, 25.0});
  const double lat1 = server.batch_latency_ms(1, 0);
  const double lat8 = server.batch_latency_ms(8, 0);
  EXPECT_LT(lat8, 8.0 * lat1);  // strictly better than 8 singles
  EXPECT_GT(lat8, 7.0 * lat1);  // but MAC work still scales with size
}

TEST(Server, DrainThenSwitchLosesNoRequests) {
  // Battery sized so the governor steps down twice while traffic is live.
  Server server = make_paper_server(18'000.0, BatchPolicy{4, 30.0});
  TrafficConfig tcfg;
  tcfg.scenario = TrafficScenario::kSteady;
  tcfg.duration_ms = 60'000.0;
  tcfg.rate_rps = 5.0;
  tcfg.deadline_slack_ms = 300.0;
  const auto schedule = generate_traffic(tcfg);

  std::multiset<std::int64_t> executed;
  std::vector<std::int64_t> level_trace;
  server.set_batch_observer([&](const std::vector<Request>& batch,
                                std::int64_t pos, double start, double end) {
    EXPECT_LT(start, end);
    for (const auto& r : batch) {
      executed.insert(r.id);
    }
    level_trace.push_back(pos);
  });

  const ServerStats stats = server.serve(schedule);
  EXPECT_GE(stats.switches, 2);
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(stats.completed, stats.submitted);
  // Every request executed exactly once: nothing lost, nothing duplicated.
  EXPECT_EQ(executed.size(), static_cast<std::size_t>(stats.submitted));
  for (const auto& r : schedule) {
    EXPECT_EQ(executed.count(r.id), 1U) << "request " << r.id;
  }
  // The governor only ever steps DOWN as the battery drains, and switches
  // happen strictly between batches, so the level trace is monotone.
  for (std::size_t i = 1; i < level_trace.size(); ++i) {
    EXPECT_LE(level_trace[i - 1], level_trace[i]);
  }
  // All three levels actually served traffic.
  for (double runs : stats.runs_per_level) {
    EXPECT_GT(runs, 0.0);
  }
}

TEST(Server, BatteryDeathAccountsEveryRequest) {
  Server server = make_paper_server(1'500.0, BatchPolicy{4, 30.0});
  TrafficConfig tcfg;
  tcfg.duration_ms = 60'000.0;
  tcfg.rate_rps = 5.0;
  const auto schedule = generate_traffic(tcfg);
  const ServerStats stats = server.serve(schedule);
  EXPECT_GT(stats.dropped, 0);  // battery dies mid-session
  EXPECT_GT(stats.completed, 0);
  EXPECT_EQ(stats.completed + stats.dropped, stats.submitted);
  EXPECT_TRUE(server.battery().empty());
}

TEST(Server, ServeIsDeterministic) {
  Server server = make_paper_server(18'000.0, BatchPolicy{4, 30.0});
  TrafficConfig tcfg;
  tcfg.scenario = TrafficScenario::kDiurnal;
  tcfg.duration_ms = 30'000.0;
  tcfg.rate_rps = 8.0;
  const auto schedule = generate_traffic(tcfg);
  const ServerStats a = server.serve(schedule);
  const ServerStats b = server.serve(schedule);  // serve() recharges
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_DOUBLE_EQ(a.sim_end_ms, b.sim_end_ms);
  EXPECT_DOUBLE_EQ(a.energy_used_mj, b.energy_used_mj);
}

TEST(Server, LiveEngineSwitchesPatternSetsUnderTraffic) {
  // Real masks: a ReconfigEngine over actual Linear layers, one pattern
  // set per governor level, sparsest set at the slowest level.  The
  // engine is handed over via adopt_engine (the owned-deployment path).
  Rng rng(11);
  std::vector<std::unique_ptr<Linear>> owned;
  std::vector<Linear*> layers;
  for (int i = 0; i < 2; ++i) {
    owned.push_back(std::make_unique<Linear>(16, 16, rng));
    layers.push_back(owned.back().get());
  }
  ModelPruner pruner(layers);
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.25;
  pruner.apply_bp(bp);
  std::vector<PatternSet> sets;
  sets.push_back(random_pattern_set(4, 0.25, 2, rng));
  sets.push_back(random_pattern_set(4, 0.5, 2, rng));
  sets.push_back(random_pattern_set(4, 0.75, 2, rng));

  Server server = make_paper_server(18'000.0, BatchPolicy{4, 30.0});
  server.adopt_engine(std::make_unique<ReconfigEngine>(
      pruner, sets, SwitchCostModel(), ModelSpec::paper_transformer(), 100));
  const ReconfigEngine& engine = *server.reconfig_engine();
  TrafficConfig tcfg;
  tcfg.duration_ms = 60'000.0;
  tcfg.rate_rps = 5.0;
  const ServerStats stats = server.serve(generate_traffic(tcfg));
  EXPECT_GE(stats.switches, 2);
  EXPECT_GT(stats.switch_ms_total, 0.0);  // engine-modeled, not the default
  EXPECT_EQ(engine.current_level(), 2);   // ended on the slowest level
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(stats.completed, stats.submitted);
}

TEST(Server, HardwareOnlyBaselinePaysNoSwitchCost) {
  const VfTable table = VfTable::odroid_xu3_a7();
  const ModelSpec spec = ModelSpec::paper_transformer();
  const LatencyModel latency = paper_calibrated_latency();
  ServerConfig cfg;
  cfg.battery_capacity_mj = 18'000.0;
  cfg.batch = BatchPolicy{4, 30.0};
  cfg.software_reconfig = false;
  cfg.exec_mode = ExecMode::kBlock;
  Server server(cfg, table, Governor::equal_tranches({5, 3, 2}), PowerModel(),
                latency, spec, {0.6426, 0.6426, 0.6426});
  TrafficConfig tcfg;
  tcfg.duration_ms = 60'000.0;
  tcfg.rate_rps = 5.0;
  tcfg.deadline_slack_ms = 160.0;
  const ServerStats stats = server.serve(generate_traffic(tcfg));
  EXPECT_EQ(stats.switches, 0);
  EXPECT_DOUBLE_EQ(stats.switch_ms_total, 0.0);
  // The fixed sub-model breaks the deadline at the slower levels (the
  // paper's E2 pathology).
  EXPECT_GT(stats.miss_rate(), 0.1);
}

}  // namespace
}  // namespace rt3
