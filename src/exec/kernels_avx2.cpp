// AVX2 + FMA kernel table (width 8).  This translation unit is compiled
// with -mavx2 -mfma (see CMakeLists); when the toolchain or target cannot
// do that the guard below compiles the table away and dispatch falls back
// to scalar.  _mm256_fmadd_ps rounds once per lane per step, exactly like
// std::fma, which is what keeps this table bitwise equal to the scalar
// reference lane-wise.
#include "exec/kernels_dispatch.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "exec/kernels_inner.hpp"

namespace rt3 {
namespace {

struct VecAvx2 {
  static constexpr std::int64_t kWidth = 8;
  using Reg = __m256;
  static Reg load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, Reg r) { _mm256_storeu_ps(p, r); }
  static Reg broadcast(float v) { return _mm256_set1_ps(v); }
  static Reg fma(Reg a, Reg b, Reg c) { return _mm256_fmadd_ps(a, b, c); }
};

}  // namespace

const KernelTable* avx2_kernel_table() {
  static const KernelTable table =
      inner::make_kernel_table<VecAvx2>("avx2");
  return &table;
}

}  // namespace rt3

#else  // toolchain cannot emit AVX2+FMA for this file

namespace rt3 {

const KernelTable* avx2_kernel_table() { return nullptr; }

}  // namespace rt3

#endif
