#include "serve/request.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.hpp"

namespace rt3 {

double policy_key(const Request& r, const SchedulerConfig& config) {
  switch (config.policy) {
    case SchedulingPolicy::kFifo:
      // Constant key: the sequence tie-break alone yields push order.
      return 0.0;
    case SchedulingPolicy::kEdf:
      return r.deadline_ms;
    case SchedulingPolicy::kEdfPriority:
      return r.deadline_ms +
             config.prio_weight_ms * static_cast<double>(r.priority) +
             config.aging_ms_per_ms * r.arrival_ms;
  }
  return 0.0;
}

RequestHeap::RequestHeap(SchedulerConfig config) : config_(config) {
  check(config_.prio_weight_ms >= 0.0, "RequestHeap: negative prio weight");
  check(config_.aging_ms_per_ms >= 0.0, "RequestHeap: negative aging rate");
}

bool RequestHeap::later(const Entry& a, const Entry& b) {
  // True when a schedules AFTER b, i.e. a is "less" in pop priority —
  // std::*_heap then keep the policy-minimal entry at the front.
  return a.key != b.key ? a.key > b.key : a.seq > b.seq;
}

void RequestHeap::push(const Request& r) {
  Entry e;
  e.key = policy_key(r, config_);
  e.seq = next_seq_++;
  e.req = r;
  entries_.push_back(std::move(e));
  std::push_heap(entries_.begin(), entries_.end(), later);
}

const Request& RequestHeap::peek() const {
  check(!entries_.empty(), "RequestHeap: peek on empty heap");
  return entries_.front().req;
}

Request RequestHeap::pop() {
  check(!entries_.empty(), "RequestHeap: pop on empty heap");
  std::pop_heap(entries_.begin(), entries_.end(), later);
  Request out = std::move(entries_.back().req);
  entries_.pop_back();
  return out;
}

void RequestHeap::clear() { entries_.clear(); }

double RequestHeap::min_arrival_ms() const {
  double earliest = std::numeric_limits<double>::infinity();
  for (const Entry& e : entries_) {
    earliest = std::min(earliest, e.req.arrival_ms);
  }
  return earliest;
}

std::vector<Request> RequestHeap::extract_expired(double now_ms) {
  std::vector<Entry> expired;
  std::vector<Entry> kept;
  kept.reserve(entries_.size());
  for (Entry& e : entries_) {
    (e.req.deadline_ms <= now_ms ? expired : kept).push_back(std::move(e));
  }
  entries_ = std::move(kept);
  // Rebuild: the survivors sit in arbitrary array order, not heap order.
  std::make_heap(entries_.begin(), entries_.end(), later);
  std::sort(expired.begin(), expired.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  std::vector<Request> out;
  out.reserve(expired.size());
  for (Entry& e : expired) {
    out.push_back(std::move(e.req));
  }
  return out;
}

RequestQueue::RequestQueue(std::int64_t capacity, SchedulerConfig scheduler)
    : scheduler_(scheduler), items_(scheduler), capacity_(capacity) {
  check(capacity >= 0, "RequestQueue: negative capacity");
}

bool RequestQueue::push(Request r) {
  UniqueLock lock(mu_);
  // Explicit wait loops (not wait(lock, pred)): the thread-safety
  // analysis cannot look inside a predicate lambda, but it proves these
  // guarded reads are under mu_ in the loop form.
  while (!(closed_ || capacity_ == 0 || items_.size() < capacity_)) {
    not_full_.wait(lock);
  }
  if (closed_) {
    return false;
  }
  items_.push(r);
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::pop(Request& out) {
  UniqueLock lock(mu_);
  while (!(closed_ || !items_.empty())) {
    not_empty_.wait(lock);
  }
  if (items_.empty()) {
    return false;  // closed and drained
  }
  out = items_.pop();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

bool RequestQueue::try_pop(Request& out) {
  UniqueLock lock(mu_);
  if (items_.empty()) {
    return false;
  }
  out = items_.pop();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

void RequestQueue::close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

std::int64_t RequestQueue::size() const {
  MutexLock lock(mu_);
  return items_.size();
}

}  // namespace rt3
