// Dynamic batching under a max-size / max-wait policy, on a virtual clock.
//
// The batcher holds admitted requests in arrival order and releases a
// batch when either (a) max_batch_size requests are pending, or (b) the
// oldest pending request has waited max_wait_ms.  It is deliberately
// clock-agnostic: callers pass `now_ms` explicitly, which makes batch
// formation deterministic in tests and lets the Server drive it from the
// simulated discharge clock.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/request.hpp"

namespace rt3 {

struct BatchPolicy {
  /// Upper bound on requests per batch (>= 1).
  std::int64_t max_batch_size = 8;
  /// Longest a request may sit in the batcher before forcing release.
  double max_wait_ms = 25.0;
};

class Batcher {
 public:
  explicit Batcher(BatchPolicy policy);

  /// Admits a request (requests must be pushed in arrival order).
  void push(const Request& r);

  /// True when a batch should be released at virtual time `now_ms`.
  bool ready(double now_ms) const;

  /// Virtual time at which the oldest pending request forces a release
  /// (its arrival + max_wait); +infinity when nothing is pending.  The
  /// server uses this to decide how far to advance the clock while idle.
  double release_at_ms() const;

  /// Removes and returns the oldest up-to-max_batch_size requests.
  /// Requires ready(now_ms) or force; the returned batch is never empty
  /// unless nothing was pending.
  std::vector<Request> pop_batch(double now_ms, bool force = false);

  /// Load shedding: removes every pending request whose deadline is
  /// already blown at `now_ms` (it could not possibly be served in time),
  /// so it never occupies a batch slot.  Returns the shed requests.
  std::vector<Request> shed_expired(double now_ms);

  std::int64_t pending() const {
    return static_cast<std::int64_t>(pending_.size());
  }

  const BatchPolicy& policy() const { return policy_; }

 private:
  BatchPolicy policy_;
  std::deque<Request> pending_;
};

}  // namespace rt3
