#include "tensor/var.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"

namespace rt3 {

namespace detail {

struct Node {
  Tensor value;
  Tensor grad;  // allocated lazily on first accumulation
  bool grad_allocated = false;
  bool requires_grad = false;
  std::vector<Var> parents;
  std::function<void(const Tensor& grad, std::vector<Var>& parents)>
      backward_fn;
};

}  // namespace detail

Var::Var(Tensor value, bool requires_grad) {
  node_ = std::make_shared<detail::Node>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Var::value() const {
  check(defined(), "Var: use of null handle");
  return node_->value;
}

Tensor& Var::mutable_value() {
  check(defined(), "Var: use of null handle");
  return node_->value;
}

const Tensor& Var::grad() const {
  check(defined(), "Var: use of null handle");
  check(node_->grad_allocated, "Var::grad: no gradient accumulated yet");
  return node_->grad;
}

bool Var::requires_grad() const {
  check(defined(), "Var: use of null handle");
  return node_->requires_grad;
}

void Var::zero_grad() {
  check(defined(), "Var: use of null handle");
  if (node_->grad_allocated) {
    node_->grad.fill(0.0F);
  }
}

float Var::item() const {
  check(value().numel() == 1, "Var::item: not a scalar");
  return value()[0];
}

void Var::accumulate_grad(const Tensor& g) {
  check(defined(), "Var: use of null handle");
  check(g.shape() == node_->value.shape(),
        "accumulate_grad: gradient shape mismatch");
  if (!node_->grad_allocated) {
    node_->grad = Tensor(node_->value.shape());
    node_->grad_allocated = true;
  }
  node_->grad.add_(g);
}

Var Var::make_op(Tensor value, std::vector<Var> parents,
                 std::function<void(const Tensor& grad,
                                    std::vector<Var>& parents)>
                     backward_fn) {
  Var out(std::move(value), false);
  bool any_grad = false;
  for (const auto& p : parents) {
    check(p.defined(), "make_op: null parent");
    any_grad = any_grad || p.node()->requires_grad || !p.node()->parents.empty();
  }
  if (any_grad) {
    out.node_->parents = std::move(parents);
    out.node_->backward_fn = std::move(backward_fn);
  }
  return out;
}

void Var::backward() {
  check(defined(), "Var::backward: null handle");
  check(value().numel() == 1, "Var::backward: root must be scalar");

  // Topological order via iterative post-order DFS over parents.  The
  // visit ORDER comes from the deterministic parents vectors; the hash
  // set only answers membership, so hash/pointer order never reaches
  // `order`.
  std::vector<detail::Node*> order;
  // rt3-lint: allow(hash-order) membership-only set, never iterated
  std::unordered_set<detail::Node*> visited;
  std::vector<std::pair<detail::Node*, std::size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      detail::Node* child = node->parents[next_child].node();
      ++next_child;
      if (visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // order is post-order: parents before children; reverse for root-first.
  std::reverse(order.begin(), order.end());

  accumulate_grad(Tensor::scalar(1.0F));
  for (detail::Node* node : order) {
    if (!node->backward_fn || !node->grad_allocated) {
      continue;
    }
    node->backward_fn(node->grad, node->parents);
  }
}

}  // namespace rt3
