// First-order optimizers over collections of leaf Vars.
//
// Used for model training (Adam), backbone fine-tuning under masks, and
// the REINFORCE controller updates (SGD).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/var.hpp"

namespace rt3 {

/// Interface: one optimization step over registered parameters.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently accumulated on the
  /// parameters, then leaves gradients untouched (call zero_grad next).
  virtual void step() = 0;

  /// Zeroes all parameter gradients.
  void zero_grad();

  const std::vector<Var>& params() const { return params_; }

 protected:
  std::vector<Var> params_;
};

/// SGD with optional momentum and weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.0F,
      float weight_decay = 0.0F);

  void step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr, float beta1 = 0.9F,
       float beta2 = 0.999F, float eps = 1e-8F, float weight_decay = 0.0F);

  void step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  std::int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Global gradient-norm clipping across all parameters; returns the norm
/// before clipping.
float clip_grad_norm(std::vector<Var>& params, float max_norm);

}  // namespace rt3
