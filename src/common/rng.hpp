// Deterministic random number generation.
//
// All stochastic components of rt3 (data synthesis, weight init, RL action
// sampling, random-pruning baselines) draw from rt3::Rng so that every
// experiment in the paper-reproduction benches is bit-reproducible from a
// single seed.  The generator is xoshiro256** seeded via splitmix64.
#pragma once

#include <cstdint>
#include <vector>

namespace rt3 {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with convenience distributions.
///
/// Deliberately not std::mt19937: we want identical streams across
/// platforms/libstdc++ versions, and the distributions in <random> are not
/// specified bit-exactly.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::int64_t uniform_int(std::int64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Zipf-distributed integer in [0, n) with exponent s (inverse-CDF over a
  /// precomputed table is the caller's job for hot paths; this is the simple
  /// rejection-free cumulative scan, fine for corpus synthesis).
  std::int64_t zipf(std::int64_t n, double s);

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  std::int64_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::int64_t i = static_cast<std::int64_t>(v.size()) - 1; i > 0; --i) {
      const std::int64_t j = uniform_int(i + 1);
      std::swap(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)]);
    }
  }

  /// Returns k distinct indices drawn uniformly from [0, n).
  std::vector<std::int64_t> sample_without_replacement(std::int64_t n,
                                                       std::int64_t k);

  /// Deterministically derives an independent child stream (for giving each
  /// module its own generator from one experiment seed).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace rt3
