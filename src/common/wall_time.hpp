// Host wall-clock helpers for the handful of places that time real work
// (kernel execution, plan swaps, mask re-composition).  Virtual serving
// time never comes from here — only measured host-side costs do.
#pragma once

#include <chrono>

namespace rt3 {

/// Host-clock timestamp for measured wall time.  Store this alias, not a
/// chrono clock type: tools/rt3_lint.py bans direct clock primitives
/// outside this header so every wall-time read is greppable here.
using WallTimePoint = std::chrono::steady_clock::time_point;

inline WallTimePoint wall_now() { return std::chrono::steady_clock::now(); }

/// Milliseconds elapsed since `t0` on the steady clock.
inline double wall_ms_since(WallTimePoint t0) {
  return std::chrono::duration<double, std::milli>(wall_now() - t0).count();
}

}  // namespace rt3
