#include "rl/reward.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace rt3 {

RewardResult compute_reward(const RewardInputs& inputs) {
  check(!inputs.latencies_ms.empty(), "compute_reward: no levels");
  check(inputs.runs.size() == inputs.latencies_ms.size(),
        "compute_reward: runs arity mismatch");
  check(inputs.runs_reference > 0.0, "compute_reward: bad runs reference");

  RewardResult result;
  for (double r : inputs.runs) {
    result.total_runs += r;
  }
  result.runs_reward =
      std::clamp(result.total_runs / inputs.runs_reference, 0.0, 1.0);

  result.feasible = true;
  for (double lat : inputs.latencies_ms) {
    if (lat > inputs.timing_constraint_ms) {
      result.feasible = false;
      break;
    }
  }
  if (!result.feasible) {
    // Case 1: timing violated somewhere -> no fine-tuning, flat penalty.
    result.value = -1.0 + result.runs_reward;
    return result;
  }

  check(inputs.accuracies.size() == inputs.latencies_ms.size(),
        "compute_reward: feasible episode needs accuracies");
  std::vector<double> weights = inputs.level_weights;
  if (weights.empty()) {
    weights.assign(inputs.accuracies.size(),
                   1.0 / static_cast<double>(inputs.accuracies.size()));
  }
  check(weights.size() == inputs.accuracies.size(),
        "compute_reward: weight arity mismatch");

  for (std::size_t i = 0; i < inputs.accuracies.size(); ++i) {
    result.weighted_accuracy += weights[i] * inputs.accuracies[i];
  }

  // cond: accuracies strictly ordered with the fastest level most accurate.
  result.ordering_ok = true;
  for (std::size_t i = 0; i + 1 < inputs.accuracies.size(); ++i) {
    if (inputs.accuracies[i] <= inputs.accuracies[i + 1]) {
      result.ordering_ok = false;
      break;
    }
  }

  const double denom =
      std::max(inputs.backbone_accuracy - inputs.min_accuracy, 1e-9);
  const double acc_term =
      (result.weighted_accuracy - inputs.min_accuracy) / denom;
  result.value = acc_term + result.runs_reward -
                 (result.ordering_ok ? 0.0 : inputs.penalty);
  return result;
}

}  // namespace rt3
