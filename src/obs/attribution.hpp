// Per-request latency decomposition and deadline-miss attribution.
//
// A request's queue-to-completion latency splits EXACTLY into four parts:
//
//   latency = queue_wait + batch_wait + switch_stall + exec
//
//   queue_wait   — time OTHER batches were executing while it waited
//                  (head-of-line queueing on the single core)
//   switch_stall — time spent inside pattern-set switches while it waited
//                  (the reconfiguration overhead of the paper's
//                  Challenge 1, now visible per request)
//   batch_wait   — the remaining wait: the batcher holding the request
//                  for more arrivals / its max-wait release (the batching
//                  delay proper, including idle gaps)
//   exec         — its own batch's execution latency
//
// The serving loops record every switch and every batch execution as a
// virtual-time interval in an IntervalAccount; at completion the overlap
// of [arrival, start) with each account yields the decomposition in two
// O(log n) queries.  Deadline misses are then classified into exactly one
// of three causes, so miss_queued + miss_switch + miss_exec always equals
// deadline_misses:
//
//   miss_exec   — arrival + exec > deadline: even a zero-wait solo launch
//                 at this level would have missed (the level is too slow
//                 for the deadline, an execution-side miss)
//   miss_switch — end - switch_stall <= deadline: without the switch
//                 stalls it would have finished in time — the
//                 drain-then-switch overhead is the marginal killer
//   miss_queued — everything else: queueing/batching delay did it
#pragma once

#include <cstdint>
#include <vector>

namespace rt3 {

/// Append-only union of non-overlapping, time-ascending [start, end)
/// intervals with O(log n) total-overlap queries — the virtual-clock
/// record of "when switches ran" / "when batches ran".
class IntervalAccount {
 public:
  /// Appends an interval; `start` must be >= the previous interval's end
  /// (the virtual clock is monotone).  Zero-length intervals are ignored.
  void add(double start, double end);

  /// Total length of [a, b) ∩ (union of recorded intervals).
  double overlap(double a, double b) const;

  std::int64_t size() const {
    return static_cast<std::int64_t>(starts_.size());
  }
  /// Sum of all recorded interval lengths.
  double total() const { return cum_.empty() ? 0.0 : cum_.back(); }

 private:
  std::vector<double> starts_;
  std::vector<double> ends_;
  /// cum_[i] = total length of intervals [0, i); size starts_.size() + 1.
  std::vector<double> cum_ = {0.0};
};

/// One request's latency decomposition (all virtual ms, all >= 0).
struct WaitBreakdown {
  double queue_wait_ms = 0.0;
  double batch_wait_ms = 0.0;
  double switch_stall_ms = 0.0;
  double exec_ms = 0.0;
};

/// Decomposes the wait [arrival, start) against the recorded switch and
/// exec intervals; `end - start` becomes exec_ms.  Exact by construction:
/// the four parts sum to end - arrival (up to FP rounding).
WaitBreakdown attribute_wait(const IntervalAccount& switches,
                             const IntervalAccount& execs, double arrival_ms,
                             double start_ms, double end_ms);

/// Which stage killed a missed request (kNone when the deadline was met).
enum class MissClass : std::uint8_t { kNone, kQueued, kSwitch, kExec };

MissClass classify_miss(const WaitBreakdown& breakdown, double arrival_ms,
                        double end_ms, double deadline_ms);

const char* miss_class_name(MissClass c);

}  // namespace rt3
