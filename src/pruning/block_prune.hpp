// Level-1 block-structured pruning (paper Algorithm 1) and its random
// baseline rBP (Table IV), plus the reweighted group-lasso regularizer the
// paper uses to orchestrate BP during training.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"
#include "tensor/var.hpp"

namespace rt3 {

/// Configuration for Algorithm 1.
struct BpConfig {
  /// Block count k: row-wise blocks for column pruning, column-wise blocks
  /// for row pruning (and both for kBoth).
  std::int64_t num_blocks = 4;

  enum class Mode : std::uint8_t {
    /// Prune groups whose l2 norm is below `threshold` (Algorithm 1).
    kThreshold,
    /// Prune the lowest `prune_fraction` of groups per block ("pre-set
    /// percentile, decided by lots of experiments").
    kPercentile,
  };
  Mode mode = Mode::kPercentile;

  /// Which structures are pruned inside blocks.  The paper's example uses
  /// column pruning and notes it "can be generalized to apply row pruning
  /// or both row and column pruning".
  enum class Dim : std::uint8_t {
    kColumns,  // row-wise blocks, prune columns (paper's Fig. 1 example)
    kRows,     // column-wise blocks, prune rows
    kBoth,     // apply both; masks intersect
  };
  Dim dim = Dim::kColumns;

  double threshold = 0.05;
  double prune_fraction = 0.5;
};

/// Binary mask implementing Algorithm 1 on one weight matrix: rows are
/// divided into `num_blocks` blocks; within each block, columns whose l2
/// norm falls below the cut are zeroed.
Tensor bp_mask(const Tensor& weight, const BpConfig& config);

/// Random baseline (rBP): prunes the SAME number of columns per block as
/// bp_mask would, but chooses them uniformly at random.
Tensor rbp_mask(const Tensor& weight, const BpConfig& config, Rng& rng);

/// Number of columns Algorithm 1 would prune in each block (exposed so
/// rbp_mask can match counts and tests can verify them).
std::vector<std::int64_t> bp_pruned_counts(const Tensor& weight,
                                           const BpConfig& config);

/// Reweighted group-lasso penalty over within-block columns:
///   sum_blocks sum_cols  w_g * ||W[block, col]||_2,
/// where the reweighting w_g = 1 / (||group||_2 + eps) is refreshed by the
/// caller between epochs (pass empty weights for uniform).  Differentiable
/// via a custom backward; drives small column groups toward zero so
/// Algorithm 1's threshold cut loses less accuracy.
Var group_lasso_penalty(const Var& weight, std::int64_t num_blocks,
                        const std::vector<float>& group_weights = {},
                        float eps = 1e-4F);

/// The reweighting coefficients 1/(||group||+eps) for the current weight
/// values, in block-major column order.
std::vector<float> reweighting_coefficients(const Tensor& weight,
                                            std::int64_t num_blocks,
                                            float eps = 1e-4F);

/// Magnitude-based unstructured pruning at the given sparsity — the
/// irregular-sparsity baseline of the paper's Challenge 1.  Executable only
/// via per-element-indexed formats (COO/CSR), hence its ExecMode::kIrregular
/// latency overhead.
Tensor unstructured_mask(const Tensor& weight, double sparsity);

}  // namespace rt3
