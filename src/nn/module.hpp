// Parameter registry shared by all neural modules.
//
// Modules expose their leaf parameters as (name, Var) pairs so optimizers,
// the pruning passes and the serializer can address weights by stable
// hierarchical names ("encoder.0.attn.wq.weight", ...).
#pragma once

#include <string>
#include <vector>

#include "tensor/var.hpp"

namespace rt3 {

/// A named leaf parameter.
struct NamedParam {
  std::string name;
  Var param;
};

/// Base for modules that own parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// Appends all leaf parameters, names prefixed with `prefix`.
  virtual void collect_params(const std::string& prefix,
                              std::vector<NamedParam>& out) const = 0;

  /// Convenience: all parameters as a flat Var list (for optimizers).
  std::vector<Var> parameters() const {
    std::vector<NamedParam> named;
    collect_params("", named);
    std::vector<Var> out;
    out.reserve(named.size());
    for (auto& np : named) {
      out.push_back(np.param);
    }
    return out;
  }

  /// Convenience: named parameters rooted at `prefix`.
  std::vector<NamedParam> named_parameters(const std::string& prefix = "") const {
    std::vector<NamedParam> out;
    collect_params(prefix, out);
    return out;
  }

  /// Total scalar parameter count.
  std::int64_t num_params() const {
    std::int64_t n = 0;
    for (const auto& p : parameters()) {
      n += p.numel();
    }
    return n;
  }
};

}  // namespace rt3
