#!/usr/bin/env python3
"""rt3-lint: mechanized determinism & concurrency contract for this repo.

The ROADMAP's standing rule — "everything is bit-deterministic by
construction; new sources of nondeterminism must be seeded or quarantined
behind flags" — is enforced here as grep-grade static checks over the C++
tree (src/, tests/, bench/, tools/*.{cpp,hpp}).  Stdlib-only, like
bench_compare.py and check_trace.py.

Rules (run with --list-rules for the one-liners):

  wall-clock    Direct clock primitives (steady_clock/system_clock/
                high_resolution_clock, time(), clock(), gettimeofday,
                clock_gettime) anywhere but src/common/wall_time.hpp.
                Virtual serving time never comes from the host clock.
  wall-timing   wall_now()/wall_ms_since()/WallTimePoint outside the
                measured-timing whitelist (kernel timing, plan swaps,
                tuner, calibration, opt-in trace wall stamps).  Wall time
                is for measuring real work, not for logic.
  rng           rand()/srand()/std::random_device/std::mt19937/... outside
                src/common/rng.*.  All randomness flows through rt3::Rng
                (xoshiro256**), which is bit-stable across platforms;
                <random> distributions are not.
  missing-seed  Default-constructed rt3::Rng in src/ (`Rng r;`, `Rng()`).
                Every generator takes an explicit seed expression, so the
                seed path is auditable; members seeded in a constructor
                initializer list carry an inline allow saying so.
  hash-order    std::unordered_{map,set,...} anywhere.  Iteration order is
                hash/pointer order — nondeterministic across runs and
                libstdc++ versions — so every use must assert (via allow)
                that the container is lookup-only and never iterated into
                output, serialization, or scheduling.
  float-format  In serializer TUs (to_json/to_chrome_json/to_prometheus/
                serialize): any printf float conversion that is not
                %.17g, or stream precision set to anything but 17.
                17 significant digits round-trip a double exactly; less
                silently truncates artifacts that must byte-round-trip.
  raw-parallel  #pragma omp anywhere; thread_local anywhere without an
                inline allow; std::thread construction in src/ outside
                the ThreadPool/concurrent-harness files.  Parallelism in
                the serving stack goes through rt3::ThreadPool so pinning,
                poisoned-drain, and lockdep coverage apply.
  raw-mutex     std::mutex / condition_variable / lock_guard / unique_lock
                in src/ outside common/lockdep.*.  Raw std primitives
                carry no thread-safety capability annotations and no
                lockdep instrumentation; use rt3::Mutex, rt3::MutexLock,
                rt3::UniqueLock, rt3::CondVar (common/lockdep.hpp).
  bare-allow    An rt3-lint allow annotation with no reason text.
  stale-allow   An allow annotation that suppresses nothing (the finding
                it silenced was fixed, or the rule name is misspelled).

Suppression: append `// rt3-lint: allow(<rule>) <reason>` to the
offending line, or put it on a comment line directly above.  Several
rules can share one annotation: allow(rule-a, rule-b) <reason>.

Usage:
    rt3_lint.py [--root DIR] [--json] [--rule NAME] [--list-rules]

Exit codes: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------------------
# Rule table.  `scope` limits which top-level directories are scanned;
# `exempt` paths (repo-relative, POSIX) never produce findings for the
# rule; files in `exempt_dirs` likewise.
# --------------------------------------------------------------------------

# Measured-timing whitelist: the files whose *job* is timing real work.
# wall_time.hpp's docstring names the categories; keep this list short
# and intentional — a new entry is a review decision, not a convenience.
WALL_TIMING_FILES = (
    "src/common/wall_time.hpp",    # the helpers themselves
    "src/exec/measured_backend.cpp",  # kernel batch timing
    "src/exec/plan.cpp",           # plan build / pointer-swap timing
    "src/exec/tuner.cpp",          # autotuner candidate measurement
    "src/runtime/engine.cpp",      # reconfiguration wall cost
    "src/core/pipeline.cpp",       # Table III mask-recomposition timing
    "src/obs/trace.hpp",           # opt-in wall stamps (record_wall)
    "src/obs/trace.cpp",
    "tests/test_exec_backend.cpp",  # pinned-pool jitter sanity bound
    "bench/bench_serve_traffic.cpp",  # trace-overhead wall comparison
)

RULES = {
    "wall-clock": {
        "pattern": re.compile(
            r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
            r"|\bgettimeofday\s*\("
            r"|\bclock_gettime\s*\("
            r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
            r"|\bclock\s*\(\s*\)"),
        "scope": ("src", "tests", "bench", "tools"),
        "exempt": ("src/common/wall_time.hpp",),
        "message": "direct wall-clock primitive; go through "
                   "src/common/wall_time.hpp (wall_now / wall_ms_since)",
    },
    "wall-timing": {
        "pattern": re.compile(
            r"\bwall_now\s*\(|\bwall_ms_since\s*\(|\bWallTimePoint\b"),
        "scope": ("src", "tests", "bench", "tools"),
        "exempt": WALL_TIMING_FILES,
        "message": "wall-time measurement outside the measured-timing "
                   "whitelist (WALL_TIMING_FILES in tools/rt3_lint.py); "
                   "serving logic runs on the virtual clock",
    },
    "rng": {
        "pattern": re.compile(
            r"\brand\s*\(|\bsrand\s*\(|\brandom_device\b|\bmt19937(?:_64)?\b"
            r"|\bdefault_random_engine\b|\bminstd_rand0?\b"
            r"|\branlux(?:24|48)\b|\bknuth_b\b"),
        "scope": ("src", "tests", "bench", "tools"),
        "exempt": ("src/common/rng.hpp", "src/common/rng.cpp"),
        "message": "non-reproducible RNG source; all randomness flows "
                   "through rt3::Rng (src/common/rng.hpp) from an explicit "
                   "seed",
    },
    "missing-seed": {
        "pattern": re.compile(
            r"\bRng\s+\w+\s*;|\bRng\s+\w+\s*\{\s*\}|\bRng\s*\(\s*\)"),
        "scope": ("src",),
        "exempt": ("src/common/rng.hpp", "src/common/rng.cpp"),
        "message": "default-constructed Rng relies on the implicit seed; "
                   "pass an explicit seed expression (or allow with the "
                   "constructor that seeds it)",
    },
    "hash-order": {
        "pattern": re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
        "scope": ("src", "tests", "bench", "tools"),
        "exempt": (),
        "skip_includes": True,
        "message": "hash containers iterate in nondeterministic order; "
                   "allow only with a reason asserting the container is "
                   "lookup-only (never iterated into output/scheduling)",
    },
    "float-format": {
        # Handled specially: scans string literals for printf float
        # conversions and the stripped text for precision() calls, only
        # in serializer TUs.
        "pattern": None,
        "scope": ("src", "tests", "bench", "tools"),
        "exempt": (),
        "message": "float formatting in a serializer TU must be %.17g "
                   "(exact double round-trip)",
    },
    "raw-parallel": {
        # thread_local and omp matched everywhere; std::thread handled
        # with its own exempt list below.
        "pattern": re.compile(r"#\s*pragma\s+omp\b|\bthread_local\b"),
        "scope": ("src", "tests", "bench", "tools"),
        "exempt": (),
        "message": "raw parallelism primitive; use rt3::ThreadPool (or "
                   "allow with the reason the per-thread state is safe)",
    },
    "raw-mutex": {
        "pattern": re.compile(
            r"\bstd\s*::\s*(?:mutex|timed_mutex|recursive_mutex|"
            r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
            r"condition_variable|condition_variable_any|lock_guard|"
            r"unique_lock|scoped_lock|shared_lock)\b"),
        "scope": ("src",),
        "exempt": ("src/common/lockdep.hpp", "src/common/lockdep.cpp"),
        "message": "raw std synchronization primitive carries no "
                   "thread-safety annotations and no lockdep coverage; "
                   "use rt3::Mutex / MutexLock / UniqueLock / CondVar "
                   "(src/common/lockdep.hpp)",
    },
}

# std::thread construction is part of raw-parallel but has its own
# whitelist: the pool itself and the MPMC ingestion harness.
STD_THREAD_PATTERN = re.compile(r"\bstd\s*::\s*thread\b(?!\s*::)")
STD_THREAD_EXEMPT = (
    "src/serve/thread_pool.hpp",
    "src/serve/thread_pool.cpp",
    "src/serve/concurrent.hpp",
)

SERIALIZER_MARKERS = re.compile(
    r"\bto_json\b|\bto_chrome_json\b|\bto_prometheus\b|\bserialize\b")
PRINTF_FLOAT = re.compile(r"%[-+ #0-9.*]*[aAeEfFgG]")
PRECISION_CALL = re.compile(
    r"(?:\.\s*precision|\bsetprecision)\s*\(\s*(\d+)\s*\)")

ALLOW_RE = re.compile(
    r"rt3-lint:\s*allow\(\s*([a-zA-Z-]+(?:\s*,\s*[a-zA-Z-]+)*)\s*\)\s*(.*)")

EXTENSIONS = (".cpp", ".hpp")


def strip_comments_and_strings(text):
    """Returns `text` with comments and string/char literal CONTENTS
    replaced by spaces, preserving every line break and column so
    (line, column) positions in the result map 1:1 onto the original.
    Handles //, /* */, "...", '...', and R"delim(...)delim"."""
    out = list(text)
    i, n = 0, len(text)

    def blank(a, b):
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            blank(i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            blank(i, j + 2)
            i = j + 2
        elif c == "R" and text[i:i + 2] == 'R"':
            m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
            if m is None:
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n - len(close) if j == -1 else j
            blank(i + m.end(), j)
            i = j + len(close)
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            blank(i + 1, min(j, n))
            i = min(j, n) + 1
        else:
            i += 1
    return "".join(out)


def parse_allows(lines):
    """Returns ({line: {rule: reason}}, [bare allow lines], annotations).

    An annotation suppresses findings on its own line; a comment-only
    annotation line also covers the line directly below it.  `annotations`
    is [(physical_line, rule, covered_lines)] for stale detection."""
    allows = {}
    bare = []
    annotations = []
    for ln, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if m is None:
            continue
        rules = [r.strip() for r in m.group(1).split(",")]
        reason = m.group(2).strip()
        if not reason:
            bare.append(ln)
        targets = [ln]
        if line.lstrip().startswith("//"):
            targets.append(ln + 1)
        for rule in rules:
            annotations.append((ln, rule, tuple(targets)))
        for target in targets:
            entry = allows.setdefault(target, {})
            for rule in rules:
                entry[rule] = reason
    return allows, bare, annotations


def find_string_literals(line):
    """Yields the contents of ordinary "..." literals on a raw line,
    skipping escaped quotes (good enough for format strings)."""
    for m in re.finditer(r'"((?:[^"\\]|\\.)*)"', line):
        yield m.group(1)


class Finding:
    def __init__(self, path, line, rule, message, snippet):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.snippet = snippet

    def as_dict(self):
        return {
            "file": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self):
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message}\n"
                f"    {self.snippet.strip()}\n"
                f"    (intentional? append: // rt3-lint: allow({self.rule}) "
                f"<reason>)")


def scan_file(root, rel_path, only_rule=None):
    """Returns (findings, suppressed_count, used_allow_keys, annotations)."""
    with open(os.path.join(root, rel_path), encoding="utf-8") as f:
        text = f.read()
    raw_lines = text.split("\n")
    stripped_lines = strip_comments_and_strings(text).split("\n")
    allows, bare, annotations = parse_allows(raw_lines)

    top = rel_path.split("/", 1)[0]
    findings = []
    suppressed = 0
    used = set()  # (line, rule) annotation keys that earned their keep

    def emit(ln, rule, message, snippet):
        nonlocal suppressed
        reason = allows.get(ln, {}).get(rule)
        if reason is not None:
            suppressed += 1
            used.add((ln, rule))
            return
        findings.append(Finding(rel_path, ln, rule, message, snippet))

    is_serializer = SERIALIZER_MARKERS.search(
        "\n".join(stripped_lines)) is not None

    for name, rule in RULES.items():
        if only_rule is not None and name != only_rule:
            continue
        if top not in rule["scope"]:
            continue
        if rel_path in rule["exempt"]:
            continue
        if name == "float-format":
            if not is_serializer:
                continue
            for ln, raw in enumerate(raw_lines, start=1):
                for literal in find_string_literals(raw):
                    for spec in PRINTF_FLOAT.findall(literal):
                        if spec != "%.17g":
                            emit(ln, name,
                                 rule["message"] + f" (found {spec})", raw)
                for m in PRECISION_CALL.finditer(stripped_lines[ln - 1]):
                    if m.group(1) != "17":
                        emit(ln, name,
                             rule["message"] +
                             f" (found precision {m.group(1)})", raw)
            continue
        pattern = rule["pattern"]
        for ln, line in enumerate(stripped_lines, start=1):
            if rule.get("skip_includes") and raw_lines[ln - 1].lstrip() \
                    .startswith("#include"):
                continue
            if pattern.search(line):
                emit(ln, name, rule["message"], raw_lines[ln - 1])
        if name == "raw-parallel" and top == "src" \
                and rel_path not in STD_THREAD_EXEMPT:
            for ln, line in enumerate(stripped_lines, start=1):
                if STD_THREAD_PATTERN.search(line):
                    emit(ln, name,
                         "std::thread outside the pool/harness whitelist; "
                         "use rt3::ThreadPool", raw_lines[ln - 1])

    if only_rule in (None, "bare-allow"):
        for ln in bare:
            findings.append(Finding(
                rel_path, ln, "bare-allow",
                "allow annotation without a reason; say WHY the use is "
                "intentional", raw_lines[ln - 1]))
    return findings, suppressed, used, (annotations, raw_lines)


def discover(root):
    """Repo-relative POSIX paths of every scanned file, sorted."""
    paths = []
    for top in ("src", "tests", "bench", "tools"):
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for fname in sorted(names):
                if fname.endswith(EXTENSIONS):
                    rel = os.path.relpath(os.path.join(dirpath, fname), root)
                    paths.append(rel.replace(os.sep, "/"))
    return sorted(paths)


def run(root, only_rule=None, as_json=False, out=sys.stdout):
    files = discover(root)
    all_findings = []
    total_suppressed = 0
    for rel in files:
        findings, suppressed, used, (annotations, raw_lines) = scan_file(
            root, rel, only_rule)
        all_findings.extend(findings)
        total_suppressed += suppressed
        if only_rule in (None, "stale-allow"):
            for ln, rule, covered in annotations:
                # An annotation earns its keep if a finding on ANY line it
                # covers (its own, plus the next for comment-line allows)
                # was suppressed by it.
                if any((target, rule) in used for target in covered):
                    continue
                if rule not in RULES:
                    message = f"allow() names unknown rule '{rule}'"
                else:
                    message = (f"stale allow({rule}): nothing it covers "
                               "triggers the rule; delete the annotation")
                all_findings.append(Finding(
                    rel, ln, "stale-allow", message, raw_lines[ln - 1]))
    all_findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if as_json:
        json.dump({
            "version": 1,
            "root": os.path.abspath(root),
            "files_scanned": len(files),
            "suppressed": total_suppressed,
            "findings": [f.as_dict() for f in all_findings],
        }, out, indent=2)
        out.write("\n")
    else:
        for finding in all_findings:
            out.write(finding.render() + "\n")
        out.write(f"rt3-lint: {len(files)} files, {len(all_findings)} "
                  f"finding(s), {total_suppressed} suppressed\n")
    return 1 if all_findings else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="repo-specific determinism/concurrency lint")
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    parser.add_argument("--rule", default=None,
                        help="run a single rule")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, rule in RULES.items():
            print(f"{name:14s} {rule['message']}")
        print(f"{'bare-allow':14s} allow annotation missing its reason")
        print(f"{'stale-allow':14s} allow annotation that suppresses nothing")
        return 0
    if args.rule is not None and args.rule not in RULES and \
            args.rule not in ("bare-allow", "stale-allow"):
        print(f"rt3-lint: unknown rule '{args.rule}' (see --list-rules)",
              file=sys.stderr)
        return 2
    root = args.root
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"rt3-lint: {root} does not look like the repo root "
              "(no src/)", file=sys.stderr)
        return 2
    return run(root, args.rule, args.json)


if __name__ == "__main__":
    sys.exit(main())
