// Scheduling-policy tests: EDF ordering and tie-break determinism in the
// RequestHeap / RequestQueue / Batcher, the priority-class starvation
// bound under sustained high-priority load, governor-aware batch
// shrinking, and bitwise-FIFO equivalence of the heap path with the
// historical arrival-order behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "serve/batcher.hpp"
#include "serve/policy.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"

namespace rt3 {
namespace {

Request make_request(std::int64_t id, double arrival_ms,
                     double deadline_ms = 1e12, std::int64_t priority = 0) {
  Request r;
  r.id = id;
  r.arrival_ms = arrival_ms;
  r.deadline_ms = deadline_ms;
  r.priority = priority;
  return r;
}

SchedulerConfig edf() {
  SchedulerConfig cfg;
  cfg.policy = SchedulingPolicy::kEdf;
  return cfg;
}

SchedulerConfig edf_prio(double weight = 400.0, double aging = 0.5) {
  SchedulerConfig cfg;
  cfg.policy = SchedulingPolicy::kEdfPriority;
  cfg.prio_weight_ms = weight;
  cfg.aging_ms_per_ms = aging;
  return cfg;
}

TEST(Policy, NamesRoundTrip) {
  for (SchedulingPolicy p :
       {SchedulingPolicy::kFifo, SchedulingPolicy::kEdf,
        SchedulingPolicy::kEdfPriority}) {
    EXPECT_EQ(scheduling_policy_from_name(scheduling_policy_name(p)), p);
  }
  EXPECT_THROW(scheduling_policy_from_name("lifo"), CheckError);
}

TEST(RequestHeap, EdfPopsEarliestDeadlineFirst) {
  RequestHeap heap(edf());
  heap.push(make_request(0, 0.0, 300.0));
  heap.push(make_request(1, 1.0, 100.0));
  heap.push(make_request(2, 2.0, 200.0));
  heap.push(make_request(3, 3.0, 50.0));
  EXPECT_EQ(heap.pop().id, 3);
  EXPECT_EQ(heap.pop().id, 1);
  EXPECT_EQ(heap.pop().id, 2);
  EXPECT_EQ(heap.pop().id, 0);
  EXPECT_TRUE(heap.empty());
  EXPECT_THROW(heap.pop(), CheckError);
}

TEST(RequestHeap, EqualDeadlinesBreakTiesByPushOrder) {
  // Deterministic tie-break: equal keys pop in push order, regardless of
  // the heap's internal array shuffling.
  RequestHeap heap(edf());
  for (std::int64_t id = 0; id < 16; ++id) {
    heap.push(make_request(id, static_cast<double>(id), 500.0));
  }
  for (std::int64_t id = 0; id < 16; ++id) {
    EXPECT_EQ(heap.pop().id, id);
  }
}

TEST(RequestHeap, FifoPolicyPopsInExactPushOrder) {
  // Push deliberately deadline-shuffled requests: FIFO must ignore them.
  RequestHeap heap;  // default SchedulerConfig = kFifo
  heap.push(make_request(7, 0.0, 900.0));
  heap.push(make_request(3, 1.0, 100.0));
  heap.push(make_request(5, 2.0, 500.0));
  EXPECT_EQ(heap.pop().id, 7);
  EXPECT_EQ(heap.pop().id, 3);
  EXPECT_EQ(heap.pop().id, 5);
}

TEST(RequestHeap, MinArrivalAndExpiryScanTheWholeHeap) {
  RequestHeap heap(edf());
  EXPECT_TRUE(std::isinf(heap.min_arrival_ms()));
  heap.push(make_request(0, 10.0, 800.0));
  heap.push(make_request(1, 5.0, 900.0));   // oldest but latest deadline
  heap.push(make_request(2, 20.0, 100.0));  // heap head
  EXPECT_DOUBLE_EQ(heap.min_arrival_ms(), 5.0);
  EXPECT_EQ(heap.peek().id, 2);
  const auto expired = heap.extract_expired(150.0);
  ASSERT_EQ(expired.size(), 1U);
  EXPECT_EQ(expired[0].id, 2);
  EXPECT_EQ(heap.size(), 2);
  EXPECT_EQ(heap.peek().id, 0);  // heap property restored after removal
}

TEST(RequestHeap, PriorityClassesOutrankLaterDeadlines) {
  // Class 0 with a later deadline beats class 1 with an earlier one as
  // long as the deadline gap is inside prio_weight_ms.
  RequestHeap heap(edf_prio(/*weight=*/400.0, /*aging=*/0.0));
  heap.push(make_request(0, 0.0, 300.0, /*priority=*/1));
  heap.push(make_request(1, 0.0, 500.0, /*priority=*/0));
  EXPECT_EQ(heap.pop().id, 1);  // 500 + 0 < 300 + 400
  RequestHeap wide_gap(edf_prio(/*weight=*/400.0, /*aging=*/0.0));
  wide_gap.push(make_request(2, 0.0, 300.0, /*priority=*/1));
  wide_gap.push(make_request(3, 0.0, 800.0, /*priority=*/0));
  EXPECT_EQ(wide_gap.pop().id, 2);  // 800 + 0 > 300 + 400: gap too large
}

TEST(RequestQueue, EdfPopOrderIsDeadlineDriven) {
  RequestQueue queue(0, edf());
  queue.push(make_request(0, 0.0, 300.0));
  queue.push(make_request(1, 1.0, 100.0));
  queue.push(make_request(2, 2.0, 200.0));
  Request out;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.id, 1);
  queue.close();
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.id, 2);
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.id, 0);
  EXPECT_FALSE(queue.pop(out));
}

TEST(Batcher, EdfComposesBatchFromDeadlineHead) {
  Batcher batcher(BatchPolicy{2, 1e9}, edf());
  batcher.push(make_request(0, 0.0, 900.0));
  batcher.push(make_request(1, 1.0, 100.0));
  batcher.push(make_request(2, 2.0, 500.0));
  // max-wait still keys off the OLDEST pending arrival, not the EDF head.
  EXPECT_DOUBLE_EQ(batcher.release_at_ms(), 0.0 + 1e9);
  ASSERT_TRUE(batcher.ready(2.0));  // size trigger
  const auto batch = batcher.pop_batch(2.0);
  ASSERT_EQ(batch.size(), 2U);
  EXPECT_EQ(batch[0].id, 1);
  EXPECT_EQ(batch[1].id, 2);
  EXPECT_EQ(batcher.pending(), 1);
}

TEST(Batcher, FifoPathIsBitwiseIdenticalToArrivalOrder) {
  // The heap-backed FIFO batcher must reproduce the historical deque
  // behaviour exactly: pop order, release times, shed order.
  Batcher batcher(BatchPolicy{4, 25.0});
  batcher.push(make_request(0, 0.0, 50.0));
  batcher.push(make_request(1, 5.0, 20.0));  // earlier deadline, later pop
  batcher.push(make_request(2, 10.0, 90.0));
  EXPECT_DOUBLE_EQ(batcher.release_at_ms(), 25.0);
  EXPECT_FALSE(batcher.ready(24.9));
  EXPECT_TRUE(batcher.ready(25.0));
  const auto batch = batcher.pop_batch(25.0);
  ASSERT_EQ(batch.size(), 3U);
  EXPECT_EQ(batch[0].id, 0);
  EXPECT_EQ(batch[1].id, 1);
  EXPECT_EQ(batch[2].id, 2);
}

TEST(Batcher, BatchCapShrinksAndRestores) {
  Batcher batcher(BatchPolicy{4, 1e9});
  for (std::int64_t i = 0; i < 4; ++i) {
    batcher.push(make_request(i, static_cast<double>(i)));
  }
  batcher.set_batch_cap(1);
  EXPECT_EQ(batcher.batch_cap(), 1);
  EXPECT_TRUE(batcher.ready(3.0));  // one pending >= cap of 1
  EXPECT_EQ(batcher.pop_batch(3.0).size(), 1U);
  batcher.set_batch_cap(99);  // clamped to max_batch_size
  EXPECT_EQ(batcher.batch_cap(), 4);
  EXPECT_EQ(batcher.pop_batch(3.0, /*force=*/true).size(), 3U);
}

TEST(Server, FifoPolicyReproducesPrePolicyBehaviourBitwise) {
  // The policy seam must be invisible under --policy=fifo: identical
  // stats, bit for bit, to the same server run (which exercised the
  // historical path before this PR; values asserted via determinism).
  const LatencyModel latency = paper_calibrated_latency();
  const auto run = [&](SchedulerConfig scheduler) {
    ServerConfig cfg;
    cfg.battery_capacity_mj = 18'000.0;
    cfg.batch = BatchPolicy{4, 30.0};
    cfg.scheduler = scheduler;
    Server server(cfg, VfTable::odroid_xu3_a7(),
                  Governor::equal_tranches(paper_serve_ladder()), PowerModel(),
                  latency, ModelSpec::paper_transformer(),
                  paper_ladder_sparsities(latency, 115.0));
    TrafficConfig tcfg;
    tcfg.scenario = TrafficScenario::kBurst;
    tcfg.duration_ms = 30'000.0;
    tcfg.rate_rps = 6.0;
    return server.serve(generate_traffic(tcfg));
  };
  const ServerStats fifo = run(SchedulerConfig{});
  EXPECT_EQ(fifo.policy, "fifo");
  // All requests with one deadline slack arriving in order: EDF pop order
  // equals FIFO pop order here, so the two policies must agree exactly —
  // a strong check that the heap machinery itself adds no perturbation.
  const ServerStats as_edf = run(edf());
  EXPECT_EQ(as_edf.completed, fifo.completed);
  EXPECT_EQ(as_edf.batches, fifo.batches);
  EXPECT_EQ(as_edf.deadline_misses, fifo.deadline_misses);
  EXPECT_DOUBLE_EQ(as_edf.sim_end_ms, fifo.sim_end_ms);
  EXPECT_DOUBLE_EQ(as_edf.energy_used_mj, fifo.energy_used_mj);
}

TEST(Server, EdfBeatsFifoOnBurstMissRate) {
  // The tentpole claim: under burst traffic with a mixed interactive /
  // background workload (tight/loose deadline mix — with one uniform
  // slack, deadline order IS arrival order and the policies coincide),
  // EDF reduces the deadline-miss rate versus FIFO on an otherwise
  // identical session: background requests absorb the burst queueing
  // delay that would blow the interactive deadlines.
  const auto run = [&](SchedulingPolicy policy) {
    ServeSessionConfig scfg;
    scfg.scheduler.policy = policy;
    TrafficConfig tcfg;
    tcfg.scenario = TrafficScenario::kBurst;
    tcfg.rate_rps = 3.0;
    tcfg.duration_ms = 60'000.0;
    tcfg.deadline_slack_ms = 1'000.0;
    tcfg.tight_fraction = 0.3;
    tcfg.tight_slack_ms = 350.0;
    ServeSession session(scfg);
    return session.server().serve(generate_traffic(tcfg));
  };
  const ServerStats fifo = run(SchedulingPolicy::kFifo);
  const ServerStats edf_stats = run(SchedulingPolicy::kEdf);
  EXPECT_EQ(edf_stats.submitted, fifo.submitted);
  EXPECT_LT(edf_stats.miss_rate(), fifo.miss_rate());
}

TEST(Server, PriorityClassesShiftMissesToLowClasses) {
  ServeSessionConfig scfg;
  scfg.scheduler = edf_prio();
  TrafficConfig tcfg;
  tcfg.scenario = TrafficScenario::kBurst;
  tcfg.rate_rps = 3.0;
  tcfg.duration_ms = 60'000.0;
  tcfg.deadline_slack_ms = 350.0;
  tcfg.priority_classes = 2;
  ServeSession session(scfg);
  const ServerStats stats = session.server().serve(generate_traffic(tcfg));
  ASSERT_EQ(stats.completed_per_class.size(), 2U);
  EXPECT_GT(stats.completed_per_class[0], 0);
  EXPECT_GT(stats.completed_per_class[1], 0);
  // Urgent class misses no more often than the background class.
  EXPECT_LE(stats.class_miss_rate(0), stats.class_miss_rate(1));
}

TEST(RequestHeap, AgingBoundsStarvationUnderSustainedHighPriorityLoad) {
  // A single class-1 request is pushed at t = 0 with deadline slack D,
  // then class-0 requests keep arriving forever with the same slack.
  // Static keys: old = D + weight + 0; a class-0 arrival at time t keys at
  // t + D + aging * t.  The old request outranks every class-0 arrival
  // with t * (1 + aging) > weight, so its delay behind fresh urgent work
  // is bounded by weight / (1 + aging) — the anti-starvation guarantee.
  const double weight = 400.0;
  const double aging = 0.5;
  const double slack = 300.0;
  const double bound = weight / (1.0 + aging);
  RequestHeap heap(edf_prio(weight, aging));
  heap.push(make_request(0, 0.0, slack, /*priority=*/1));
  // High-priority arrivals every 10 ms, well past the bound.
  std::int64_t id = 1;
  double popped_at = -1.0;
  for (double t = 0.0; t <= 2.0 * bound; t += 10.0) {
    heap.push(make_request(id++, t, t + slack, /*priority=*/0));
    // Serve one request per tick (sustained load, server keeps up).
    if (heap.pop().id == 0) {
      popped_at = t;
      break;
    }
  }
  ASSERT_GE(popped_at, 0.0) << "class-1 request starved past twice the bound";
  EXPECT_LE(popped_at, bound + 10.0);
  // Control: with an enormous weight and no aging the same request IS
  // starved across the whole window.
  RequestHeap starving(edf_prio(1e9, 0.0));
  starving.push(make_request(0, 0.0, slack, /*priority=*/1));
  id = 1;
  for (double t = 0.0; t <= 2.0 * bound; t += 10.0) {
    starving.push(make_request(id++, t, t + slack, /*priority=*/0));
    EXPECT_NE(starving.pop().id, 0);
  }
}

TEST(Server, GovernorMarginShrinksBatchesNearSwitch) {
  // Same overloaded session with and without governor-aware batching: the
  // margin caps batches at 1 near each threshold, so batches formed just
  // before a switch are smaller and strictly more batches run overall.
  const auto run = [&](double margin) {
    ServeSessionConfig scfg;
    scfg.governor_margin = margin;
    TrafficConfig tcfg;
    tcfg.scenario = TrafficScenario::kSteady;
    tcfg.rate_rps = 5.0;
    tcfg.duration_ms = 60'000.0;
    tcfg.deadline_slack_ms = 350.0;
    ServeSession session(scfg);
    return session.server().serve(generate_traffic(tcfg));
  };
  const ServerStats off = run(0.0);
  const ServerStats on = run(0.10);
  EXPECT_EQ(on.completed, off.completed);  // nothing lost either way
  EXPECT_GT(on.batches, off.batches);      // shrunken batches near switches
  EXPECT_LT(on.mean_batch_size(), off.mean_batch_size());
  // Every batch launched inside the margin obeyed the shrunken cap, which
  // is visible as runs of size-1 batches; outside the margin batching is
  // unchanged, so SOME batch still hits the full cap.
  std::int64_t full = 0;
  for (std::int64_t b : on.batch_sizes) {
    full += (b == 2) ? 1 : 0;
  }
  EXPECT_GT(full, 0);
}

TEST(Server, GovernorMarginCutsDrainThenSwitchLag) {
  // At a rate where batches run full, the margin makes the batch that
  // crosses a governor threshold a shrunken one, so the interpolated
  // drain-then-switch lag (threshold crossing -> batch boundary) falls.
  const auto run = [&](double margin) {
    ServeSessionConfig scfg;
    scfg.governor_margin = margin;
    TrafficConfig tcfg;
    tcfg.scenario = TrafficScenario::kSteady;
    tcfg.rate_rps = 12.0;
    tcfg.duration_ms = 60'000.0;
    tcfg.deadline_slack_ms = 350.0;
    ServeSession session(scfg);
    return session.server().serve(generate_traffic(tcfg));
  };
  const ServerStats off = run(0.0);
  const ServerStats on = run(0.10);
  ASSERT_GE(off.switches, 2);
  ASSERT_EQ(off.switch_lag_ms.size(),
            static_cast<std::size_t>(off.switches));
  EXPECT_GT(off.switch_lag_percentile(99.0), 0.0);
  EXPECT_LT(on.switch_lag_percentile(99.0),
            off.switch_lag_percentile(99.0));
  // The modeled switch duration itself is timing-invariant: the margin
  // must not change WHAT is switched, only WHEN.
  EXPECT_DOUBLE_EQ(on.switch_percentile(99.0), off.switch_percentile(99.0));
}

TEST(Governor, NextStepDownMatchesLevelBoundaries) {
  const Governor governor = Governor::equal_tranches({5, 3, 2});
  // Thresholds at 2/3 and 1/3.
  EXPECT_NEAR(governor.next_step_down(1.0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(governor.next_step_down(0.7), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(governor.next_step_down(0.5), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(governor.next_step_down(0.2), 0.0);  // last level
  EXPECT_THROW(governor.next_step_down(1.5), CheckError);
}

TEST(Traffic, PriorityClassesAreDeterministicAndLeaveArrivalsUntouched) {
  TrafficConfig cfg;
  cfg.scenario = TrafficScenario::kBurst;
  cfg.duration_ms = 20'000.0;
  cfg.rate_rps = 30.0;
  const auto base = generate_traffic(cfg);
  cfg.priority_classes = 3;
  const auto tagged = generate_traffic(cfg);
  const auto tagged2 = generate_traffic(cfg);
  ASSERT_EQ(base.size(), tagged.size());
  bool saw_nonzero = false;
  for (std::size_t i = 0; i < base.size(); ++i) {
    // Same arrival process bit for bit; only the class tag differs.
    EXPECT_DOUBLE_EQ(base[i].arrival_ms, tagged[i].arrival_ms);
    EXPECT_EQ(base[i].priority, 0);
    EXPECT_EQ(tagged[i].priority, tagged2[i].priority);
    EXPECT_GE(tagged[i].priority, 0);
    EXPECT_LT(tagged[i].priority, 3);
    saw_nonzero = saw_nonzero || tagged[i].priority != 0;
  }
  EXPECT_TRUE(saw_nonzero);
}

}  // namespace
}  // namespace rt3
