// NN-specific ops on Var: softmax, cross-entropy, layer norm, embedding,
// dropout.  These are the building blocks of the Transformer models and
// the RL controller.
#include <cmath>

#include "common/check.hpp"
#include "tensor/var.hpp"

namespace rt3 {

namespace {

// Softmax over the last dimension on a raw tensor.
Tensor softmax_raw(const Tensor& a) {
  check(a.dim() >= 1, "softmax: need at least 1-D");
  const std::int64_t last = a.size(-1);
  const std::int64_t rows = a.numel() / last;
  Tensor out = a;
  for (std::int64_t r = 0; r < rows; ++r) {
    float* row = out.data() + r * last;
    float mx = row[0];
    for (std::int64_t j = 1; j < last; ++j) {
      mx = std::max(mx, row[j]);
    }
    float denom = 0.0F;
    for (std::int64_t j = 0; j < last; ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    const float inv = 1.0F / denom;
    for (std::int64_t j = 0; j < last; ++j) {
      row[j] *= inv;
    }
  }
  return out;
}

}  // namespace

Var softmax_lastdim(const Var& a) {
  Tensor out = softmax_raw(a.value());
  const Tensor s = out;
  return Var::make_op(
      std::move(out), {a},
      [s](const Tensor& g, std::vector<Var>& ps) {
        // dx = s * (g - sum(g * s)) per row.
        const std::int64_t last = s.size(-1);
        const std::int64_t rows = s.numel() / last;
        Tensor ga(s.shape());
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* gr = g.data() + r * last;
          const float* sr = s.data() + r * last;
          float dot = 0.0F;
          for (std::int64_t j = 0; j < last; ++j) {
            dot += gr[j] * sr[j];
          }
          float* out_row = ga.data() + r * last;
          for (std::int64_t j = 0; j < last; ++j) {
            out_row[j] = sr[j] * (gr[j] - dot);
          }
        }
        ps[0].accumulate_grad(ga);
      });
}

Var log_softmax_lastdim(const Var& a) {
  const Tensor s = softmax_raw(a.value());
  Tensor out = s;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] = std::log(out[i] + 1e-12F);
  }
  return Var::make_op(
      std::move(out), {a},
      [s](const Tensor& g, std::vector<Var>& ps) {
        // dx = g - softmax * sum(g) per row.
        const std::int64_t last = s.size(-1);
        const std::int64_t rows = s.numel() / last;
        Tensor ga(s.shape());
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* gr = g.data() + r * last;
          const float* sr = s.data() + r * last;
          float total = 0.0F;
          for (std::int64_t j = 0; j < last; ++j) {
            total += gr[j];
          }
          float* out_row = ga.data() + r * last;
          for (std::int64_t j = 0; j < last; ++j) {
            out_row[j] = gr[j] - sr[j] * total;
          }
        }
        ps[0].accumulate_grad(ga);
      });
}

Var cross_entropy(const Var& logits,
                  const std::vector<std::int64_t>& targets) {
  check(logits.shape().size() == 2, "cross_entropy: logits must be [N,C]");
  const std::int64_t n = logits.shape()[0];
  const std::int64_t c = logits.shape()[1];
  check(static_cast<std::int64_t>(targets.size()) == n,
        "cross_entropy: target count mismatch");

  const Tensor probs = softmax_raw(logits.value());
  double loss = 0.0;
  std::int64_t counted = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t t = targets[static_cast<std::size_t>(i)];
    if (t < 0) {
      continue;  // padding
    }
    check(t < c, "cross_entropy: target out of range");
    loss -= std::log(static_cast<double>(probs[i * c + t]) + 1e-12);
    ++counted;
  }
  check(counted > 0, "cross_entropy: all targets are padding");
  const float inv_n = 1.0F / static_cast<float>(counted);
  Tensor out = Tensor::scalar(static_cast<float>(loss) * inv_n);
  const std::vector<std::int64_t> tgt = targets;
  return Var::make_op(
      std::move(out), {logits},
      [probs, tgt, inv_n, n, c](const Tensor& g, std::vector<Var>& ps) {
        Tensor ga(probs.shape());
        for (std::int64_t i = 0; i < n; ++i) {
          const std::int64_t t = tgt[static_cast<std::size_t>(i)];
          if (t < 0) {
            continue;
          }
          for (std::int64_t j = 0; j < c; ++j) {
            ga[i * c + j] = probs[i * c + j] * inv_n * g[0];
          }
          ga[i * c + t] -= inv_n * g[0];
        }
        ps[0].accumulate_grad(ga);
      });
}

Var mse_loss(const Var& pred, const Tensor& target) {
  check(pred.shape() == target.shape(), "mse_loss: shape mismatch");
  const Tensor diff = sub(pred.value(), target);
  double acc = 0.0;
  for (std::int64_t i = 0; i < diff.numel(); ++i) {
    acc += static_cast<double>(diff[i]) * diff[i];
  }
  const float inv_n = 1.0F / static_cast<float>(diff.numel());
  Tensor out = Tensor::scalar(static_cast<float>(acc) * inv_n);
  return Var::make_op(std::move(out), {pred},
                      [diff, inv_n](const Tensor& g, std::vector<Var>& ps) {
                        Tensor ga = diff;
                        ga.scale_(2.0F * inv_n * g[0]);
                        ps[0].accumulate_grad(ga);
                      });
}

Var layer_norm(const Var& x, const Var& gamma, const Var& beta, float eps) {
  const std::int64_t last = x.value().size(-1);
  check(gamma.shape() == Shape{last} && beta.shape() == Shape{last},
        "layer_norm: gamma/beta must be 1-D of the last dimension");
  const std::int64_t rows = x.numel() / last;

  const Tensor& xv = x.value();
  Tensor xhat(xv.shape());
  Tensor inv_std({rows});
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = xv.data() + r * last;
    float mu = 0.0F;
    for (std::int64_t j = 0; j < last; ++j) {
      mu += xr[j];
    }
    mu /= static_cast<float>(last);
    float var = 0.0F;
    for (std::int64_t j = 0; j < last; ++j) {
      var += (xr[j] - mu) * (xr[j] - mu);
    }
    var /= static_cast<float>(last);
    const float istd = 1.0F / std::sqrt(var + eps);
    inv_std[r] = istd;
    float* hr = xhat.data() + r * last;
    for (std::int64_t j = 0; j < last; ++j) {
      hr[j] = (xr[j] - mu) * istd;
    }
  }

  Tensor out(xv.shape());
  const Tensor& gv = gamma.value();
  const Tensor& bv = beta.value();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t j = 0; j < last; ++j) {
      out[r * last + j] = xhat[r * last + j] * gv[j] + bv[j];
    }
  }

  const Tensor xhat_c = xhat;
  const Tensor inv_std_c = inv_std;
  const Tensor gamma_c = gv;
  return Var::make_op(
      std::move(out), {x, gamma, beta},
      [xhat_c, inv_std_c, gamma_c, rows, last](const Tensor& g,
                                               std::vector<Var>& ps) {
        Tensor gx(xhat_c.shape());
        Tensor ggamma({last});
        Tensor gbeta({last});
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* gr = g.data() + r * last;
          const float* hr = xhat_c.data() + r * last;
          float mean_gy = 0.0F;
          float mean_gyh = 0.0F;
          for (std::int64_t j = 0; j < last; ++j) {
            const float gy = gr[j] * gamma_c[j];
            mean_gy += gy;
            mean_gyh += gy * hr[j];
            ggamma[j] += gr[j] * hr[j];
            gbeta[j] += gr[j];
          }
          mean_gy /= static_cast<float>(last);
          mean_gyh /= static_cast<float>(last);
          float* gxr = gx.data() + r * last;
          for (std::int64_t j = 0; j < last; ++j) {
            const float gy = gr[j] * gamma_c[j];
            gxr[j] = (gy - mean_gy - hr[j] * mean_gyh) * inv_std_c[r];
          }
        }
        ps[0].accumulate_grad(gx);
        ps[1].accumulate_grad(ggamma);
        ps[2].accumulate_grad(gbeta);
      });
}

Var embedding(const Var& weight, const std::vector<std::int64_t>& ids) {
  check(weight.shape().size() == 2, "embedding: weight must be [V,D]");
  const std::int64_t v = weight.shape()[0];
  const std::int64_t d = weight.shape()[1];
  const std::int64_t n = static_cast<std::int64_t>(ids.size());
  Tensor out({n, d});
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t id = ids[static_cast<std::size_t>(i)];
    check(id >= 0 && id < v, "embedding: id out of range");
    for (std::int64_t j = 0; j < d; ++j) {
      out[i * d + j] = weight.value()[id * d + j];
    }
  }
  const std::vector<std::int64_t> ids_c = ids;
  const Shape w_shape = weight.shape();
  return Var::make_op(
      std::move(out), {weight},
      [ids_c, w_shape, d](const Tensor& g, std::vector<Var>& ps) {
        Tensor gw(w_shape);
        for (std::size_t i = 0; i < ids_c.size(); ++i) {
          const std::int64_t id = ids_c[i];
          for (std::int64_t j = 0; j < d; ++j) {
            gw[id * d + j] += g[static_cast<std::int64_t>(i) * d + j];
          }
        }
        ps[0].accumulate_grad(gw);
      });
}

Var dropout(const Var& a, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0F) {
    return a;
  }
  check(p < 1.0F, "dropout: p must be < 1");
  const float keep = 1.0F - p;
  Tensor mask(a.shape());
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask[i] = rng.bernoulli(keep) ? (1.0F / keep) : 0.0F;
  }
  return mul_const(a, mask);
}

}  // namespace rt3
