// Multi-threaded smoke tests for the serving subsystem: the MPMC
// RequestQueue, the ThreadPool, and the concurrent ingestion path.
// Assertions are about conservation (no lost or duplicated requests),
// never about timing, so these are stable on any core count.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/thread_pool.hpp"
#include "serve/traffic.hpp"

namespace rt3 {
namespace {

TEST(RequestQueue, FifoAndCloseSemantics) {
  RequestQueue queue;
  for (std::int64_t i = 0; i < 3; ++i) {
    Request r;
    r.id = i;
    EXPECT_TRUE(queue.push(r));
  }
  EXPECT_EQ(queue.size(), 3);
  Request out;
  EXPECT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.id, 0);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.push(Request{}));  // rejected after close
  EXPECT_TRUE(queue.pop(out));          // drains the remainder...
  EXPECT_EQ(out.id, 1);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_FALSE(queue.pop(out));  // ...then reports exhaustion
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(RequestQueue, BoundedQueueAppliesBackpressure) {
  RequestQueue queue(2);
  EXPECT_TRUE(queue.push(Request{}));
  EXPECT_TRUE(queue.push(Request{}));
  // A third push must block until a consumer makes room.
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    queue.push(Request{});
    pushed.store(true);
  });
  Request out;
  EXPECT_TRUE(queue.pop(out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.size(), 2);
  queue.close();
}

TEST(RequestQueue, ManyProducersManyConsumersConserveRequests) {
  constexpr std::int64_t kProducers = 4;
  constexpr std::int64_t kPerProducer = 500;
  RequestQueue queue(64);  // bounded: exercises the back-pressure path too

  std::mutex collect_mu;
  std::multiset<std::int64_t> collected;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      Request r;
      std::vector<std::int64_t> local;
      while (queue.pop(r)) {
        local.push_back(r.id);
      }
      std::lock_guard<std::mutex> lock(collect_mu);
      collected.insert(local.begin(), local.end());
    });
  }
  {
    ThreadPool pool(kProducers);
    for (std::int64_t p = 0; p < kProducers; ++p) {
      pool.submit([&, p] {
        for (std::int64_t i = 0; i < kPerProducer; ++i) {
          Request r;
          r.id = p * kPerProducer + i;
          ASSERT_TRUE(queue.push(r));
        }
      });
    }
    pool.wait_idle();
  }
  queue.close();
  for (auto& t : consumers) {
    t.join();
  }
  ASSERT_EQ(collected.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  for (std::int64_t id = 0; id < kProducers * kPerProducer; ++id) {
    EXPECT_EQ(collected.count(id), 1U) << "request " << id;
  }
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  std::atomic<std::int64_t> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 200);
    EXPECT_EQ(pool.num_threads(), 4);
  }  // destructor joins cleanly
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, TaskExceptionIsRethrownFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw CheckError("boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([] {});  // queued behind the throw; drained, not run
  }
  EXPECT_THROW(pool.wait_idle(), CheckError);
  pool.submit([] {});
  pool.wait_idle();  // error was consumed; pool is reusable
}

TEST(ThreadPool, PoisonedQueueDrainsWithoutRunningTaskBodies) {
  // Regression: after a task throws, the backlog must be popped-and-
  // dropped so wait_idle rethrows promptly — not executed task by task.
  // One worker guarantees strict queue order, so every counter task sits
  // behind the throwing task and none may run.
  ThreadPool pool(1);
  std::atomic<std::int64_t> ran{0};
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load()) {
      std::this_thread::yield();  // hold the worker so the queue builds up
    }
    throw CheckError("poison");
  });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  release.store(true);
  EXPECT_THROW(pool.wait_idle(), CheckError);
  EXPECT_EQ(ran.load(), 0);
  // The rethrow cleared the poison: new work runs again.
  pool.submit([&] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, PinFlagIsBestEffortAndHarmless) {
  ThreadPool unpinned(2);
  EXPECT_FALSE(unpinned.pinned());
  ThreadPool pinned(2, /*pin_to_cores=*/true);
#if defined(__linux__)
  EXPECT_TRUE(pinned.pinned());
#endif
  std::atomic<std::int64_t> counter{0};
  for (int i = 0; i < 100; ++i) {
    pinned.submit([&] { counter.fetch_add(1); });
  }
  pinned.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ServeSession, HardwareOnlySessionHasNoEngine) {
  ServeSessionConfig cfg;
  cfg.software_reconfig = false;
  ServeSession session(cfg);
  EXPECT_FALSE(session.has_engine());
  EXPECT_THROW(session.engine(), CheckError);
}

TEST(ThreadPool, RejectsWorkAfterShutdownBegan) {
  auto pool = std::make_unique<ThreadPool>(1);
  pool->submit([] {});
  pool->wait_idle();
  pool.reset();  // full shutdown; submit-after-stop is covered by ctor/dtor
  SUCCEED();
}

TEST(ServeConcurrent, MatchesDeterministicServe) {
  // N racing producers push the schedule through the MPMC queue while the
  // server consumes; arrival-timestamp ordering erases the race, so the
  // session must be identical to the in-order serve() of the same
  // schedule — and in particular no request may be lost or duplicated.
  const LatencyModel latency = paper_calibrated_latency();
  ServerConfig cfg;
  cfg.battery_capacity_mj = 18'000.0;
  cfg.batch = BatchPolicy{4, 30.0};
  Server server(cfg, VfTable::odroid_xu3_a7(),
                Governor::equal_tranches(paper_serve_ladder()), PowerModel(),
                latency, ModelSpec::paper_transformer(),
                paper_ladder_sparsities(latency, 115.0));

  TrafficConfig tcfg;
  tcfg.scenario = TrafficScenario::kBurst;
  tcfg.duration_ms = 30'000.0;
  tcfg.rate_rps = 6.0;
  const auto schedule = generate_traffic(tcfg);

  const ServerStats direct = server.serve(schedule);
  const ServerStats via_queue = serve_concurrent(server, schedule, 4);
  EXPECT_EQ(via_queue.submitted, direct.submitted);
  EXPECT_EQ(via_queue.completed, direct.completed);
  EXPECT_EQ(via_queue.dropped, direct.dropped);
  EXPECT_EQ(via_queue.batches, direct.batches);
  EXPECT_EQ(via_queue.switches, direct.switches);
  EXPECT_EQ(via_queue.deadline_misses, direct.deadline_misses);
  EXPECT_DOUBLE_EQ(via_queue.sim_end_ms, direct.sim_end_ms);
  EXPECT_DOUBLE_EQ(via_queue.energy_used_mj, direct.energy_used_mj);
}

}  // namespace
}  // namespace rt3
