// Lightweight precondition / invariant checking used across all rt3 modules.
//
// rt3 is a research library: violated preconditions are programming errors,
// so they throw (they are recoverable in tests and benches, and we never
// want silent corruption in a numerical pipeline).
#pragma once

#include <cstdint>
#include <limits>
#include <source_location>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace rt3 {

/// Error thrown when a precondition or internal invariant fails.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Throws CheckError with file:line context when `cond` is false.
inline void check(bool cond, const std::string& msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw CheckError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": " + msg);
  }
}

/// Checked narrowing conversion (Core Guidelines ES.46 / GSL narrow).
/// Throws CheckError if the value does not survive a round trip or the sign
/// changes.
template <typename To, typename From>
To narrow(From value,
          std::source_location loc = std::source_location::current()) {
  static_assert(std::is_arithmetic_v<To> && std::is_arithmetic_v<From>);
  const To result = static_cast<To>(value);
  if (static_cast<From>(result) != value) {
    throw CheckError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": narrowing lost value");
  }
  if constexpr (std::is_signed_v<From> != std::is_signed_v<To>) {
    if ((value < From{}) != (result < To{})) {
      throw CheckError(std::string(loc.file_name()) + ":" +
                       std::to_string(loc.line()) + ": narrowing changed sign");
    }
  }
  return result;
}

/// Signed size of a container (Core Guidelines ES.107: avoid unsigned
/// arithmetic in indexing logic).
template <typename Container>
std::int64_t ssize_of(const Container& c) {
  return static_cast<std::int64_t>(c.size());
}

}  // namespace rt3
