// Tiny shared command-line parsing for the rt3 CLI and the bench
// executables: "--flag value" and "--flag=value" are both accepted, and
// positional operands pass through untouched.  Deliberately dependency-free
// — just enough for tools that want one consistent flag style.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rt3 {

/// Normalizes argv[begin..argc): every "--flag=value" token splits into
/// "--flag", "value"; everything else is kept verbatim, in order.
std::vector<std::string> split_flag_args(int argc, char** argv,
                                         int begin = 1);

/// Value of `flag` as a double; `fallback` when absent.  Throws
/// CheckError unless the WHOLE value parses as a number (trailing
/// garbage like "3.5x" is rejected, not truncated).
double arg_double(const std::vector<std::string>& args,
                  const std::string& flag, double fallback);

/// Value of `flag` as an integer; `fallback` when absent.  Throws
/// CheckError on trailing garbage ("3x") that stoll would truncate.
std::int64_t arg_int(const std::vector<std::string>& args,
                     const std::string& flag, std::int64_t fallback);

/// Value of `flag` as a string; `fallback` when absent.
std::string arg_string(const std::vector<std::string>& args,
                       const std::string& flag, const std::string& fallback);

/// True when `flag` appears (with or without a value).
bool arg_present(const std::vector<std::string>& args,
                 const std::string& flag);

/// The positional (non-flag) operands: tokens not starting with "--" that
/// are not consumed as some preceding flag's value.  CONTRACT: a token
/// right after a "--flag" is treated as that flag's value UNLESS the flag
/// is listed in `presence_flags` (flags that take no value, e.g.
/// "--shed") — callers with presence-only flags must pass them here or a
/// following positional is mis-read as the flag's value.
std::vector<std::string> positional_args(
    const std::vector<std::string>& args,
    const std::vector<std::string>& presence_flags = {});

}  // namespace rt3
