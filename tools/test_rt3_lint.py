#!/usr/bin/env python3
"""Self-test for rt3_lint.py: every rule fires on a seeded fixture,
every suppression works, stale/bare allows are themselves findings.
Stdlib-only (unittest); run directly or via ctest (rt3_lint_selftest).
"""

import json
import io
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import rt3_lint  # noqa: E402


class LintFixture(unittest.TestCase):
    """Builds a throwaway repo root per test: write_file() then lint()."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name
        os.makedirs(os.path.join(self.root, "src"))

    def tearDown(self):
        self._tmp.cleanup()

    def write_file(self, rel, text):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)

    def lint(self, only_rule=None):
        """Returns (exit_code, findings list-of-dicts, report dict)."""
        out = io.StringIO()
        code = rt3_lint.run(self.root, only_rule=only_rule, as_json=True,
                            out=out)
        report = json.loads(out.getvalue())
        return code, report["findings"], report

    def assert_fires(self, rule, rel, text, only_rule=None):
        self.write_file(rel, text)
        code, findings, _ = self.lint(only_rule)
        self.assertEqual(code, 1, f"{rule}: expected a finding\n{text}")
        self.assertTrue(any(f["rule"] == rule and f["file"] == rel
                            for f in findings),
                        f"{rule}: not among {findings}")
        return [f for f in findings if f["rule"] == rule]

    def assert_clean(self, rel, text, only_rule=None):
        self.write_file(rel, text)
        code, findings, _ = self.lint(only_rule)
        self.assertEqual(code, 0, f"expected clean, got {findings}")


class TestWallClock(LintFixture):
    def test_steady_clock_fires(self):
        self.assert_fires(
            "wall-clock", "src/a.cpp",
            "auto t = std::chrono::steady_clock::now();\n")

    def test_time_call_fires(self):
        self.assert_fires("wall-clock", "src/a.cpp",
                          "srand_seed = time(nullptr);\n")

    def test_wall_time_hpp_exempt(self):
        self.assert_clean(
            "src/common/wall_time.hpp",
            "inline auto wall_now() { return std::chrono::steady_clock::"
            "now(); }\n", only_rule="wall-clock")

    def test_comment_mention_clean(self):
        self.assert_clean("src/a.cpp",
                          "// steady_clock is banned here\nint x = 0;\n")

    def test_string_mention_clean(self):
        self.assert_clean(
            "src/a.cpp",
            'const char* msg = "no steady_clock allowed";\n')

    def test_allow_suppresses(self):
        self.assert_clean(
            "src/a.cpp",
            "auto t = std::chrono::steady_clock::now();"
            "  // rt3-lint: allow(wall-clock) calibration one-off\n")


class TestWallTiming(LintFixture):
    def test_wall_now_outside_whitelist_fires(self):
        self.assert_fires("wall-timing", "src/serve/server.cpp",
                          "double t = wall_ms_since(wall_now());\n",
                          only_rule="wall-timing")

    def test_whitelisted_file_clean(self):
        self.assert_clean("src/exec/tuner.cpp",
                          "const auto t0 = wall_now();\n",
                          only_rule="wall-timing")


class TestRng(LintFixture):
    def test_mt19937_fires(self):
        self.assert_fires("rng", "src/a.cpp", "std::mt19937 gen(42);\n")

    def test_random_device_fires(self):
        self.assert_fires("rng", "tests/t.cpp", "std::random_device rd;\n")

    def test_rand_fires(self):
        self.assert_fires("rng", "bench/b.cpp", "int r = rand() % 6;\n")

    def test_rng_header_exempt(self):
        self.assert_clean("src/common/rng.hpp",
                          "// xoshiro256**, not mt19937\nclass Rng {};\n")


class TestMissingSeed(LintFixture):
    def test_default_ctor_fires(self):
        self.assert_fires("missing-seed", "src/a.cpp", "Rng rng;\n")

    def test_brace_ctor_fires(self):
        self.assert_fires("missing-seed", "src/a.cpp", "Rng rng{};\n")

    def test_seeded_clean(self):
        self.assert_clean("src/a.cpp", "Rng rng(config.seed);\n")

    def test_tests_out_of_scope(self):
        # Member declarations in tests are seeded ad hoc; src-only rule.
        self.assert_clean("tests/t.cpp", "Rng rng;\n",
                          only_rule="missing-seed")

    def test_comment_line_allow_covers_next_line(self):
        self.assert_clean(
            "src/a.cpp",
            "// rt3-lint: allow(missing-seed) seeded in the init list\n"
            "Rng rng;\n")


class TestHashOrder(LintFixture):
    def test_unordered_map_fires(self):
        self.assert_fires("hash-order", "src/a.cpp",
                          "std::unordered_map<int, int> m;\n")

    def test_include_line_skipped(self):
        self.assert_clean("src/a.cpp", "#include <unordered_map>\n")

    def test_allow_suppresses(self):
        self.assert_clean(
            "src/a.cpp",
            "std::unordered_set<int> seen;"
            "  // rt3-lint: allow(hash-order) membership only\n")


class TestFloatFormat(LintFixture):
    def test_low_precision_printf_in_serializer_fires(self):
        found = self.assert_fires(
            "float-format", "src/a.cpp",
            'std::string to_json() { char b[32]; '
            'snprintf(b, 32, "%.6f", x); return b; }\n')
        self.assertIn("%.6f", found[0]["message"])

    def test_17g_clean(self):
        self.assert_clean(
            "src/a.cpp",
            'std::string to_json() { char b[32]; '
            'snprintf(b, 32, "%.17g", x); return b; }\n')

    def test_non_serializer_tu_ignored(self):
        self.assert_clean("src/a.cpp",
                          'printf("%.3f\\n", progress);\n',
                          only_rule="float-format")

    def test_precision_15_fires(self):
        self.assert_fires(
            "float-format", "src/a.cpp",
            "std::string to_json() { os.precision(15); return os.str(); }\n")

    def test_setprecision_17_clean(self):
        self.assert_clean(
            "src/a.cpp",
            "std::string to_json() { os << std::setprecision(17) << x; "
            "return os.str(); }\n")

    def test_int_format_clean(self):
        self.assert_clean(
            "src/a.cpp",
            'std::string to_json() { snprintf(b, 32, "%d %s", i, s); '
            "return b; }\n")


class TestRawParallel(LintFixture):
    def test_omp_fires(self):
        self.assert_fires("raw-parallel", "src/a.cpp",
                          "#pragma omp parallel for\n")

    def test_thread_local_fires(self):
        self.assert_fires("raw-parallel", "src/a.cpp",
                          "thread_local int depth = 0;\n")

    def test_std_thread_in_src_fires(self):
        self.assert_fires("raw-parallel", "src/a.cpp",
                          "std::thread t([] {});\n")

    def test_std_thread_in_pool_clean(self):
        self.assert_clean("src/serve/thread_pool.cpp",
                          "workers_.emplace_back(std::thread([] {}));\n",
                          only_rule="raw-parallel")

    def test_hardware_concurrency_clean(self):
        self.assert_clean(
            "src/a.cpp",
            "auto n = std::thread::hardware_concurrency();\n",
            only_rule="raw-parallel")

    def test_std_thread_in_tests_clean(self):
        # Tests may spin raw threads to attack the pool from outside.
        self.assert_clean("tests/t.cpp", "std::thread t([] {});\n",
                          only_rule="raw-parallel")


class TestRawMutex(LintFixture):
    def test_std_mutex_fires(self):
        self.assert_fires("raw-mutex", "src/a.cpp", "std::mutex mu;\n")

    def test_condition_variable_fires(self):
        self.assert_fires("raw-mutex", "src/a.cpp",
                          "std::condition_variable cv;\n")

    def test_lockdep_files_exempt(self):
        self.assert_clean("src/common/lockdep.hpp", "std::mutex mu_;\n",
                          only_rule="raw-mutex")

    def test_tests_out_of_scope(self):
        self.assert_clean("tests/t.cpp", "std::mutex mu;\n",
                          only_rule="raw-mutex")


class TestAllows(LintFixture):
    def test_bare_allow_is_a_finding(self):
        self.assert_fires("bare-allow", "src/a.cpp",
                          "std::mutex mu;  // rt3-lint: allow(raw-mutex)\n")

    def test_stale_allow_is_a_finding(self):
        found = self.assert_fires(
            "stale-allow", "src/a.cpp",
            "int x = 0;  // rt3-lint: allow(raw-mutex) leftover\n")
        self.assertIn("stale", found[0]["message"])

    def test_unknown_rule_in_allow_is_a_finding(self):
        found = self.assert_fires(
            "stale-allow", "src/a.cpp",
            "std::mutex mu;  // rt3-lint: allow(raw-mutx) typo\n")
        self.assertIn("unknown rule", found[0]["message"])

    def test_multi_rule_allow(self):
        self.assert_clean(
            "src/a.cpp",
            "// rt3-lint: allow(raw-parallel, hash-order) per-thread cache\n"
            "thread_local std::unordered_map<int, int> cache;\n")

    def test_allow_does_not_leak_to_other_lines(self):
        self.write_file(
            "src/a.cpp",
            "std::mutex a;  // rt3-lint: allow(raw-mutex) intentional\n"
            "std::mutex b;\n")
        code, findings, _ = self.lint()
        self.assertEqual(code, 1)
        self.assertEqual([f["line"] for f in findings
                          if f["rule"] == "raw-mutex"], [2])


class TestReport(LintFixture):
    def test_json_shape_and_exit_codes(self):
        self.write_file("src/a.cpp", "std::mutex mu;\nRng r;\n")
        code, findings, report = self.lint()
        self.assertEqual(code, 1)
        self.assertEqual(report["version"], 1)
        self.assertEqual(report["files_scanned"], 1)
        for f in findings:
            self.assertEqual(sorted(f.keys()),
                             ["file", "line", "message", "rule", "snippet"])
        rules = sorted(f["rule"] for f in findings)
        self.assertEqual(rules, ["missing-seed", "raw-mutex"])

    def test_clean_repo_exits_zero(self):
        self.write_file("src/a.cpp", "int main() { return 0; }\n")
        code, findings, report = self.lint()
        self.assertEqual(code, 0)
        self.assertEqual(findings, [])
        self.assertEqual(report["suppressed"], 0)

    def test_suppression_counted(self):
        self.write_file(
            "src/a.cpp",
            "std::mutex mu;  // rt3-lint: allow(raw-mutex) ffi boundary\n")
        code, _, report = self.lint()
        self.assertEqual(code, 0)
        self.assertEqual(report["suppressed"], 1)


class TestStripper(unittest.TestCase):
    def test_block_comment_blanked(self):
        out = rt3_lint.strip_comments_and_strings(
            "a /* std::mutex */ b\nc\n")
        self.assertNotIn("mutex", out)
        self.assertEqual(out.count("\n"), 2)

    def test_raw_string_blanked(self):
        out = rt3_lint.strip_comments_and_strings(
            'auto s = R"(std::mutex inside)";\nnext\n')
        self.assertNotIn("mutex", out)
        self.assertIn("next", out)

    def test_escaped_quote(self):
        out = rt3_lint.strip_comments_and_strings(
            '"a\\"b" std::mutex\n')
        self.assertIn("std::mutex", out)

    def test_positions_preserved(self):
        src = "x; // comment\ny;\n"
        out = rt3_lint.strip_comments_and_strings(src)
        self.assertEqual(len(out), len(src))
        self.assertEqual(out.index("y"), src.index("y"))


if __name__ == "__main__":
    unittest.main(verbosity=2)
