#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace rt3 {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  check(!header_.empty(), "TablePrinter: empty header");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  check(cells.size() == header_.size(),
        "TablePrinter: row arity does not match header");
  rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::add_separator() { rows_.push_back(Row{true, {}}); }

std::int64_t TablePrinter::row_count() const {
  std::int64_t n = 0;
  for (const auto& r : rows_) {
    n += r.separator ? 0 : 1;
  }
  return n;
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) {
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto render_line = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
      if (c + 1 < cells.size()) {
        os << "  ";
      }
    }
    return os.str();
  };

  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }

  std::ostringstream os;
  os << render_line(header_) << '\n' << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    if (row.separator) {
      os << std::string(total, '-') << '\n';
    } else {
      os << render_line(row.cells) << '\n';
    }
  }
  return os.str();
}

std::string fmt_f(double v, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

std::string fmt_pct(double fraction, int decimals) {
  return fmt_f(fraction * 100.0, decimals) + "%";
}

std::string fmt_x(double factor, int decimals) {
  return fmt_f(factor, decimals) + "x";
}

std::string fmt_millions(double count, int decimals) {
  return fmt_f(count / 1e6, decimals);
}

}  // namespace rt3
