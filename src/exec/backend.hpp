// Execution backends: how the Server turns a batch into latency.
//
// The paper's claim that patterned sparsity "executes with near-dense
// regularity" was modeled analytically until now (LatencyModel).  This
// interface makes the execution path swappable: AnalyticBackend keeps the
// modeled path bit-for-bit, MeasuredBackend actually runs the pruned
// linear layers as multi-threaded cache-tiled kernels and reports wall
// time.  The Server calls activate_level() at every drain-then-switch
// point so a backend with precompiled per-level plans (PlanCache) only
// swaps plan pointers — mirroring the paper's ms-scale pattern-set switch.
#pragma once

#include <cstdint>
#include <string>

namespace rt3 {

class TraceRecorder;

/// What executing one batch cost.
struct BatchExecution {
  /// Virtual-time batch latency the Server accounts (device-scale ms).
  double latency_ms = 0.0;
  /// Host wall time actually spent inside kernels (0 for analytic).
  double kernel_wall_ms = 0.0;
};

/// One execution path under the Server.  Implementations must tolerate
/// activate_level() being called repeatedly with the same level (no-op).
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend();

  virtual const char* name() const = 0;

  /// Executes (or models) one batch at a governor-level position.
  virtual BatchExecution run_batch(std::int64_t batch_size,
                                   std::int64_t level_pos) = 0;

  /// Makes `level_pos` the active execution configuration (e.g. swaps the
  /// PlanCache's active plan set).  Returns the host wall ms the swap took.
  virtual double activate_level(std::int64_t level_pos) = 0;

  /// Attaches a trace recorder (nullptr detaches); `lane` is the trace
  /// track (tid) the backend's spans belong to — the owning model's lane.
  /// Default is a no-op: the analytic path has no kernel-level events
  /// worth a span; the measured backend overrides this to emit them.
  virtual void set_trace(TraceRecorder* trace, std::int64_t lane) {
    (void)trace;
    (void)lane;
  }
};

/// Which backend a serve session should execute with.
enum class ExecBackendKind : std::uint8_t {
  kAnalytic,  // LatencyModel-modeled batch latency (the historical path)
  kMeasured,  // kernel-measured wall time drives the virtual clock
};

const char* exec_backend_name(ExecBackendKind kind);
/// Parses "analytic" / "measured"; throws CheckError otherwise.
ExecBackendKind exec_backend_from_name(const std::string& name);

}  // namespace rt3
