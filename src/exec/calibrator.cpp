#include "exec/calibrator.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace rt3 {

Calibrator::Calibrator(CalibratorConfig config) : config_(std::move(config)) {
  check(!config_.batch_sizes.empty(), "Calibrator: no batch sizes");
  check(config_.repeats >= 1, "Calibrator: need at least one repeat");
  check(config_.host_freq_mhz > 0.0, "Calibrator: bad host frequency");
}

CalibrationResult Calibrator::run(const MeasuredBackendConfig& base,
                                  const std::vector<Linear*>& layers,
                                  const std::vector<Tensor>& backbone_masks,
                                  const std::vector<PatternSet>& sets) const {
  CalibrationResult result;
  result.spec =
      spec_from_layers("calibration", layers, base.cols_per_request);
  const std::int64_t max_batch =
      *std::max_element(config_.batch_sizes.begin(),
                        config_.batch_sizes.end());

  for (ExecMode mode : config_.modes) {
    if (mode == ExecMode::kPattern && sets.empty()) {
      continue;  // nothing to compile pattern plans from
    }
    MeasuredBackendConfig cfg = base;
    cfg.mode = mode;
    cfg.max_batch = std::max(cfg.max_batch, max_batch);
    cfg.latency_scale = 1.0;
    // kIrregular gets the same pattern set as kPattern so its plans hold
    // identical nonzeros and the measured gap is pure indexing overhead.
    const bool prune_to_set =
        (mode == ExecMode::kPattern || mode == ExecMode::kIrregular) &&
        !sets.empty();
    const std::vector<PatternSet> level_sets =
        prune_to_set ? std::vector<PatternSet>{sets.front()}
                     : std::vector<PatternSet>{};
    MeasuredBackend backend(cfg, layers, backbone_masks, level_sets,
                            {1000.0});
    backend.activate_level(0);
    const double sparsity = backend.plans().level_sparsity(0);
    backend.run_batch(1, 0);  // warm caches and the worker pool
    for (std::int64_t batch : config_.batch_sizes) {
      std::vector<double> walls;
      walls.reserve(static_cast<std::size_t>(config_.repeats));
      for (std::int64_t rep = 0; rep < config_.repeats; ++rep) {
        walls.push_back(backend.run_batch(batch, 0).kernel_wall_ms);
      }
      LatencyObservation obs;
      obs.mode = mode;
      obs.sparsity = sparsity;
      obs.batch_size = batch;
      // Min, not median: CPU contention only ever ADDS time, so the
      // fastest repeat is the least-noisy estimate of true kernel cost.
      obs.wall_ms =
          std::max(*std::min_element(walls.begin(), walls.end()), 1e-6);
      result.observations.push_back(obs);
    }
  }

  result.fitted = fit_latency_config(result.spec, result.observations,
                                     config_.host_freq_mhz);
  result.mean_abs_rel_error = calibration_error(
      result.spec, result.observations, result.fitted, config_.host_freq_mhz);
  return result;
}

}  // namespace rt3
