// Aggregated statistics for one serve session, built on common/stats.
//
// ServerStats is the SNAPSHOT VIEW of a session's accounting: the serving
// loops bump counters inline (mirrored 1:1 into a MetricsRegistry via
// publish(), where the same numbers carry stable labeled names), keep the
// raw per-request series here so percentiles stay exact, and carry the
// obs-layer miss attribution — every deadline miss is classified into
// exactly one of miss_queued / miss_switch / miss_exec, which sum to
// deadline_misses by construction (see obs/attribution.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rt3 {

class MetricsRegistry;
class MetricLabels;

/// Everything the serving loop records about one session.  Raw per-request
/// latencies are kept so percentiles are exact, not sketched; at this
/// repo's session sizes (tens of thousands of requests) that is cheap.
struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  /// Requests still queued when the battery died (accounted, never silent).
  std::int64_t dropped = 0;
  /// Requests shed because their deadline was already blown before they
  /// occupied a batch slot (only with ServerConfig::shed_expired).
  std::int64_t shed = 0;
  /// Requests rejected at ingress by feasibility-based admission: their
  /// deadline lay inside now + batch_latency(1, level) when they arrived,
  /// so not even an immediate solo launch could have met it (only with
  /// ServerConfig::admit_feasible).  Counted separately from `shed`, which
  /// drops requests whose deadline has ALREADY passed at pop time.
  std::int64_t rejected = 0;
  std::int64_t batches = 0;
  /// Pattern-set switches performed between batches.
  std::int64_t switches = 0;
  std::int64_t deadline_misses = 0;
  /// Miss attribution (obs/attribution.hpp): every deadline miss is
  /// classified into exactly one cause, so the three always sum to
  /// deadline_misses.  miss_queued = queueing/batching delay killed it;
  /// miss_switch = drain-then-switch stalls were the marginal cause;
  /// miss_exec = even a zero-wait solo launch at this level would have
  /// missed (execution latency alone blows the deadline).
  std::int64_t miss_queued = 0;
  std::int64_t miss_switch = 0;
  std::int64_t miss_exec = 0;

  /// Execution backend the session ran on ("analytic" / "measured").
  std::string backend;
  /// Scheduling policy the session ran under ("fifo" / "edf" / "edf-prio").
  std::string policy;

  /// Virtual time when the last batch finished.
  double sim_end_ms = 0.0;
  /// Virtual time spent executing batches.
  double busy_ms = 0.0;
  /// Virtual time spent inside pattern-set switches.
  double switch_ms_total = 0.0;
  /// Per-switch modeled latency (virtual ms), one entry per pattern-set
  /// switch.  NOTE: this is the reconfiguration duration itself, set by
  /// the pattern-set storage size — it does not respond to scheduling or
  /// batching; switch_lag_ms is the governor-sensitive tail.
  std::vector<double> switch_ms;
  /// Drain-then-switch lag (virtual ms): for each switch, the time from
  /// the battery crossing the governor threshold (interpolated inside the
  /// batch that crossed it) to the batch boundary where the switch could
  /// actually run.  THIS is the tail governor-aware batching shrinks —
  /// smaller batches near the threshold mean the boundary lands sooner.
  std::vector<double> switch_lag_ms;
  double energy_used_mj = 0.0;
  /// Host wall time spent inside backend kernels (0 on the analytic path).
  double kernel_wall_ms_total = 0.0;
  /// Host wall time of each per-switch execution-plan swap (PlanCache
  /// pointer swaps; one entry per level activation, including the first).
  std::vector<double> plan_swap_ms;
  double plan_swap_ms_total = 0.0;

  /// Queue-to-completion latency per completed request (ms).
  std::vector<double> latency_ms;
  /// Per-request latency decomposition, parallel to latency_ms: for every
  /// completed request, latency_ms[i] == queue_wait_ms[i] +
  /// batch_wait_ms[i] + switch_stall_req_ms[i] + exec_req_ms[i] (exact up
  /// to FP rounding; see obs/attribution.hpp for the definitions).
  std::vector<double> queue_wait_ms;
  std::vector<double> batch_wait_ms;
  std::vector<double> switch_stall_req_ms;
  std::vector<double> exec_req_ms;
  /// Completed requests per governor-level position (fast -> slow).
  std::vector<double> runs_per_level;
  std::vector<std::int64_t> batch_sizes;
  /// Per-priority-class accounting (index = class, 0 = most urgent); sized
  /// lazily to cover every class seen, so single-class sessions carry one
  /// entry and the summary stays uncluttered.
  std::vector<std::int64_t> completed_per_class;
  std::vector<std::int64_t> misses_per_class;

  /// Grows the per-class vectors to cover `priority_class`.
  void ensure_class(std::int64_t priority_class);

  /// Completed requests per virtual second of session time.
  double throughput_rps() const;
  /// Deadline misses over completed requests (0 when none completed).
  double miss_rate() const;
  /// Deadline misses over completed requests within one priority class.
  double class_miss_rate(std::int64_t priority_class) const;
  double mean_batch_size() const;
  /// p-th latency percentile over completed requests.
  double latency_percentile(double p) const;
  /// p-th percentile of per-switch modeled latency (0 when no switches).
  double switch_percentile(double p) const;
  /// p-th percentile of drain-then-switch lag (0 when no switches).
  double switch_lag_percentile(double p) const;
  /// Sums over the per-request wait decomposition vectors.
  double queue_wait_total_ms() const;
  double batch_wait_total_ms() const;
  double switch_stall_total_ms() const;

  /// Mirrors every countable total into `registry` under stable labeled
  /// names (serve.completed{model=...}, serve.miss_switch{...}, ...) and
  /// fills the latency / wait-decomposition histograms — the scrapeable
  /// snapshot of this stats view.
  void publish(MetricsRegistry& registry, const MetricLabels& labels) const;

  /// Multi-line human-readable summary.
  std::string summary() const;
  /// One flat JSON object (machine-readable bench output).
  std::string to_json() const;
};

/// Aggregated statistics for one multi-model ServeNode session: the full
/// per-model ServerStats (keyed by model id, ascending) plus node totals.
/// Every countable total is the exact sum of its per-model counterparts —
/// the node loop writes only into per-model stats and aggregate() derives
/// the rest — so per-model and node-level accounting can never drift.
struct NodeStats {
  /// Per-model session stats, sorted by model id.
  std::vector<std::pair<std::int64_t, ServerStats>> per_model;

  /// Requests whose model_id matched no registered model (counted at the
  /// Router, attributable to no shard).
  std::int64_t unroutable = 0;
  /// Virtual time when the node's last batch (or switch) finished.
  double sim_end_ms = 0.0;

  // Node totals, all derived by aggregate() as sums over per_model.
  std::int64_t submitted = 0;  // + unroutable
  std::int64_t completed = 0;
  std::int64_t dropped = 0;
  std::int64_t shed = 0;
  std::int64_t rejected = 0;
  std::int64_t batches = 0;
  std::int64_t switches = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t miss_queued = 0;
  std::int64_t miss_switch = 0;
  std::int64_t miss_exec = 0;
  double busy_ms = 0.0;
  double energy_used_mj = 0.0;
  double switch_ms_total = 0.0;

  /// Stats of one model (throws CheckError when the id is not present).
  const ServerStats& model(std::int64_t model_id) const;
  bool has_model(std::int64_t model_id) const;

  /// Recomputes every node total from per_model (+ unroutable).
  void aggregate();

  /// Deadline misses over completed requests across all models.
  double miss_rate() const;
  /// Completed requests per virtual second of node session time.
  double throughput_rps() const;
  /// p-th latency percentile over ALL completed requests (merged models).
  double latency_percentile(double p) const;
  /// p-th percentile of drain-then-switch lag over ALL models' switches
  /// (0 when no switches happened).
  double switch_lag_percentile(double p) const;

  /// Publishes per-model stats (labeled model=<id>) plus node-level
  /// gauges into `registry`.
  void publish(MetricsRegistry& registry) const;

  /// Multi-line human-readable summary: node totals + one row per model.
  std::string summary() const;
  /// JSON: node totals plus a "models" object of per-model ServerStats.
  std::string to_json() const;
};

}  // namespace rt3
