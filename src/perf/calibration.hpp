// Fitting the analytic LatencyModel to measured kernel wall times.
//
// The paper calibrates its compiler-side performance model against device
// measurements (Table II anchor); this module does the same against the
// MeasuredBackend: dense observations at several batch sizes fix
// macs_per_cycle and fixed_cycles by linear regression, and each sparse
// mode's overhead multiplier is the mean ratio of its measured compute
// cycles to the dense prediction — so the analytic model "stays honest"
// as kernels evolve.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/linear.hpp"
#include "perf/latency_model.hpp"
#include "perf/model_spec.hpp"

namespace rt3 {

/// One measured batch execution.
struct LatencyObservation {
  ExecMode mode = ExecMode::kDense;
  /// Effective weight sparsity of the plans that ran (0 for dense).
  double sparsity = 0.0;
  std::int64_t batch_size = 1;
  /// Measured host wall time of the batch's kernels.
  double wall_ms = 0.0;
};

/// ModelSpec describing a set of live layers (one LayerSpec per Linear,
/// `tokens_per_inference` activation columns per request) so analytic
/// predictions and kernel measurements count the same MACs.
ModelSpec spec_from_layers(const std::string& name,
                           const std::vector<Linear*>& layers,
                           std::int64_t tokens_per_inference);

/// Fits macs_per_cycle, fixed_cycles, and per-mode overheads to the
/// observations, cycle-accounted at `host_freq_mhz`.  Requires at least
/// two dense observations at distinct batch sizes (they anchor the fit;
/// throws CheckError otherwise); modes without observations keep `base`'s
/// overhead.  When timing noise makes the dense regression degenerate
/// (non-positive slope) the fit degrades to the through-origin ratio
/// estimator with zero fixed cost instead of failing.
LatencyModelConfig fit_latency_config(
    const ModelSpec& spec, const std::vector<LatencyObservation>& observations,
    double host_freq_mhz, LatencyModelConfig base = {});

/// Mean |measured - predicted| / measured over the observations under a
/// fitted config (prediction = batch-amortized analytic latency at
/// `host_freq_mhz`).  The Calibrator reports this as fit quality.
double calibration_error(const ModelSpec& spec,
                         const std::vector<LatencyObservation>& observations,
                         const LatencyModelConfig& config,
                         double host_freq_mhz);

}  // namespace rt3
