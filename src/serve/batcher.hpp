// Dynamic batching under a max-size / max-wait policy, on a virtual clock,
// with policy-driven batch composition.
//
// The batcher holds admitted requests in a RequestHeap and releases a
// batch when either (a) the effective batch cap is reached, or (b) the
// oldest pending request has waited max_wait_ms.  Batches are composed by
// popping the head of the scheduling order (FIFO / EDF / EDF+priority),
// not arrival order.  It is deliberately clock-agnostic: callers pass
// `now_ms` explicitly, which makes batch formation deterministic in tests
// and lets the Server drive it from the simulated discharge clock.
//
// The effective cap (set_batch_cap) is how governor-aware batching plugs
// in: near a battery switch threshold the Server shrinks the cap below
// max_batch_size so batches — and therefore the drain-then-switch point —
// come sooner.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/policy.hpp"
#include "serve/request.hpp"

namespace rt3 {

class TraceRecorder;

struct BatchPolicy {
  /// Upper bound on requests per batch (>= 1).
  std::int64_t max_batch_size = 8;
  /// Longest a request may sit in the batcher before forcing release.
  double max_wait_ms = 25.0;
};

class Batcher {
 public:
  explicit Batcher(BatchPolicy policy, SchedulerConfig scheduler = {});

  /// Admits a request (requests must be pushed in arrival order).
  void push(const Request& r);

  /// True when a batch should be released at virtual time `now_ms`.
  bool ready(double now_ms) const;

  /// Virtual time at which the oldest pending request forces a release
  /// (its arrival + max_wait); +infinity when nothing is pending.  The
  /// server uses this to decide how far to advance the clock while idle.
  double release_at_ms() const;

  /// Removes and returns the up-to-batch_cap() policy-first requests.
  /// Requires ready(now_ms) or force; the returned batch is never empty
  /// unless nothing was pending.
  std::vector<Request> pop_batch(double now_ms, bool force = false);

  /// Load shedding: removes every pending request whose deadline is
  /// already blown at `now_ms` (it could not possibly be served in time),
  /// so it never occupies a batch slot.  Returns the shed requests.
  std::vector<Request> shed_expired(double now_ms);

  /// Governor-aware batching: caps the next batches at `cap` (clamped to
  /// [1, max_batch_size]); pass max_batch_size to restore the full cap.
  void set_batch_cap(std::int64_t cap);
  std::int64_t batch_cap() const { return cap_; }

  std::int64_t pending() const { return pending_.size(); }

  /// Attaches a trace recorder (nullptr detaches); enqueue / batch-form /
  /// shed instants go to track `lane`.  Every emit site is one branch, so
  /// an untraced batcher is bitwise-identical to the historical one.
  void set_trace(TraceRecorder* trace, std::int64_t lane);

  const BatchPolicy& policy() const { return policy_; }
  const SchedulerConfig& scheduler() const { return pending_.config(); }

 private:
  BatchPolicy policy_;
  std::int64_t cap_;
  RequestHeap pending_;
  TraceRecorder* trace_ = nullptr;
  std::int64_t trace_lane_ = 0;
  /// Arrival of the most recent push, for the in-order admission check.
  /// Never reset: push() short-circuits the check while the heap is
  /// empty, which is what makes an earlier-arrival push legal again
  /// after a drain (matching the historical deque path, whose back()
  /// comparison vanished along with its contents).
  double last_arrival_ms_ = 0.0;
};

}  // namespace rt3
