// Battery-aware serving demo: the same bursty traffic served twice over
// identical batteries —
//   A. hardware-only reconfiguration (DVFS steps down, same sub-model):
//      every request at the slower levels blows the deadline;
//   B. RT3 (DVFS + pattern-set switching between batches): the engine
//      swaps to a sparser sub-model when the governor steps down, so the
//      deadline holds across the whole discharge and nothing is lost.
// This is the serving-system version of the battery_sim example.
//
// Usage: server_demo [analytic|measured] [fifo|edf|edf-prio]
//   analytic (default) models batch latency with the calibrated
//   LatencyModel; measured actually runs the pruned layers as kernels and
//   lets wall time drive the virtual clock.  The second argument picks the
//   RT3 session's scheduling policy (default fifo).
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "exec/backend.hpp"
#include "serve/policy.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"

int main(int argc, char** argv) {
  using namespace rt3;
  const ExecBackendKind backend =
      exec_backend_from_name(argc > 1 ? argv[1] : "analytic");
  const SchedulingPolicy policy =
      scheduling_policy_from_name(argc > 2 ? argv[2] : "fifo");
  std::cout << "RT3 serving demo: bursty traffic along a draining battery\n"
            << "========================================================="
            << "\nexecution backend: " << exec_backend_name(backend)
            << ", scheduling policy: " << scheduling_policy_name(policy)
            << "\n\n";

  TrafficConfig tcfg;
  tcfg.scenario = TrafficScenario::kBurst;
  tcfg.rate_rps = 3.0;
  tcfg.duration_ms = 60'000.0;
  // Mixed interactive/background deadlines (the bench's workload): with
  // one uniform slack, deadline order degenerates to arrival order and
  // the policy argument would be invisible.
  tcfg.deadline_slack_ms = 1'000.0;
  tcfg.tight_fraction = 0.3;
  tcfg.tight_slack_ms = 350.0;
  const std::vector<Request> schedule = generate_traffic(tcfg);
  std::cout << schedule.size() << " requests over "
            << fmt_f(tcfg.duration_ms / 1000.0, 0)
            << " s; 30% interactive (deadline = arrival + "
            << fmt_f(tcfg.tight_slack_ms, 0) << " ms), the rest background ("
            << fmt_f(tcfg.deadline_slack_ms, 0) << " ms slack)\n\n";

  ServeSessionConfig hw_only;
  hw_only.software_reconfig = false;
  hw_only.backend = backend;
  ServeSession a(hw_only);
  const ServerStats sa = a.server().serve(schedule);

  ServeSessionConfig rt3_cfg;  // software_reconfig = true
  rt3_cfg.backend = backend;
  rt3_cfg.scheduler.policy = policy;
  ServeSession b(rt3_cfg);
  const ServerStats sb = serve_concurrent(b.server(), schedule, 2);

  TablePrinter t({"strategy", "served", "dropped", "p99 (ms)", "miss rate",
                  "switches", "energy (mJ)"});
  t.add_row({"A: DVFS only", std::to_string(sa.completed),
             std::to_string(sa.dropped), fmt_f(sa.latency_percentile(99.0), 1),
             fmt_pct(sa.miss_rate()), std::to_string(sa.switches),
             fmt_f(sa.energy_used_mj, 0)});
  t.add_row({"B: DVFS + RT3", std::to_string(sb.completed),
             std::to_string(sb.dropped), fmt_f(sb.latency_percentile(99.0), 1),
             fmt_pct(sb.miss_rate()), std::to_string(sb.switches),
             fmt_f(sb.energy_used_mj, 0)});
  std::cout << t.str() << "\nRT3 session detail:\n" << sb.summary();

  std::cout << "\nWith hardware-only reconfiguration the fixed sub-model "
               "breaks the per-\ninference deadline as soon as the governor "
               "leaves F-mode; RT3 drains the\nin-flight batch, swaps the "
               "pattern set in milliseconds, and keeps the\nsub-model inside "
               "T at every level, so only burst-queueing tails miss\n(paper "
               "Tables II/III, now under concurrent load).\n";
  return 0;
}
