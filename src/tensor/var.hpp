// Tape-based reverse-mode automatic differentiation over rt3::Tensor.
//
// A Var is a shared handle to a graph node holding a value tensor, an
// accumulated gradient, and a backward closure.  Graphs are built
// dynamically by the free-function ops below; Var::backward() runs a
// topological sweep.  This is the engine under the Transformer models, the
// joint pattern-set trainer (paper Fig. 2) and the RNN RL controller.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace rt3 {

namespace detail {
struct Node;
}  // namespace detail

/// Differentiable variable: shared handle to an autodiff graph node.
class Var {
 public:
  /// Null handle; most ops reject it.
  Var() = default;

  /// Leaf node. If requires_grad, gradients accumulate into grad().
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }

  const Tensor& value() const;
  /// Mutable access for optimizers and pruning-mask application.  Only
  /// meaningful on leaves between backward passes.
  Tensor& mutable_value();

  const Tensor& grad() const;
  bool requires_grad() const;

  /// Clears this node's accumulated gradient.
  void zero_grad();

  /// Runs reverse-mode accumulation from this scalar (numel()==1) node.
  void backward();

  const Shape& shape() const { return value().shape(); }
  std::int64_t numel() const { return value().numel(); }

  /// Scalar convenience: value of a 1-element Var.
  float item() const;

  /// Identity of the underlying node (for parameter registries).
  const void* id() const { return node_.get(); }

  // Internal: used by op implementations.
  static Var make_op(Tensor value, std::vector<Var> parents,
                     std::function<void(const Tensor& grad,
                                        std::vector<Var>& parents)>
                         backward_fn);
  detail::Node* node() const { return node_.get(); }
  /// Accumulates `g` into this node's gradient (used by op backward fns).
  void accumulate_grad(const Tensor& g);

 private:
  std::shared_ptr<detail::Node> node_;
};

/// --- basic arithmetic ----------------------------------------------------
/// add/sub/mul support: equal shapes; b scalar (numel 1); or b 1-D matching
/// the last dimension of a (bias broadcast).
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var neg(const Var& a);
Var scale(const Var& a, float factor);
Var add_scalar(const Var& a, float constant);
/// Elementwise multiply by a constant tensor (e.g. a pruning mask); no
/// gradient flows into the mask.
Var mul_const(const Var& a, const Tensor& mask);
/// Elementwise add of a constant tensor (e.g. an attention mask of -1e9).
Var add_const(const Var& a, const Tensor& bias);

/// --- matrix ops ------------------------------------------------------ ---
/// [M,K] x [K,N] -> [M,N].
Var matmul(const Var& a, const Var& b);
/// Batched [B,M,K] x [B,K,N] -> [B,M,N].
Var bmm(const Var& a, const Var& b);
/// Swap the last two axes of a 2-D or 3-D tensor.
Var transpose_last2(const Var& a);
/// Arbitrary axis permutation.
Var permute(const Var& a, const std::vector<std::int64_t>& axes);
Var reshape(const Var& a, Shape new_shape);
/// Concatenate along axis 0 (equal trailing shapes).
Var concat_rows(const std::vector<Var>& parts);

/// --- pointwise nonlinearities ---------------------------------------- ---
Var relu(const Var& a);
/// Exact GELU (erf form), matching the Transformer FFN in the paper's stack.
Var gelu(const Var& a);
Var tanh_v(const Var& a);
Var sigmoid(const Var& a);
Var exp_v(const Var& a);
Var log_v(const Var& a);

/// --- reductions ------------------------------------------------------ ---
Var sum_all(const Var& a);
Var mean_all(const Var& a);

/// --- NN building blocks ----------------------------------------------- --
/// Softmax over the last dimension.
Var softmax_lastdim(const Var& a);
Var log_softmax_lastdim(const Var& a);
/// Mean cross-entropy of logits [N,C] against integer targets (size N).
/// Targets of -1 are ignored (padding).
Var cross_entropy(const Var& logits, const std::vector<std::int64_t>& targets);
/// Mean squared error against a constant target tensor.
Var mse_loss(const Var& pred, const Tensor& target);
/// LayerNorm over the last dimension with learnable gamma/beta.
Var layer_norm(const Var& x, const Var& gamma, const Var& beta,
               float eps = 1e-5F);
/// Row-gather: weight [V,D], ids (size N) -> [N,D].
Var embedding(const Var& weight, const std::vector<std::int64_t>& ids);
/// Inverted dropout; identity when !training or p == 0.
Var dropout(const Var& a, float p, Rng& rng, bool training);

}  // namespace rt3
