#!/usr/bin/env python3
"""Renders an rt3 serve/node session report: telemetry series, SLO breach
episodes, and miss attribution in one place.

Inputs are the observability artifacts a session writes (any subset):

  --telemetry FILE   JSON from `rt3 serve|node --telemetry FILE`
                     ({"telemetry": {series...}, "slo": [episodes...]})
  --metrics FILE     JSON from `--metrics FILE` (counters/gauges/histograms)
  --trace FILE       Chrome trace JSON from `--trace FILE` (used for
                     SLO breach events and the dropped-events footer
                     when no telemetry file is given)
  --out FILE.html    also write a self-contained HTML report (inline SVG
                     charts, no external assets)
  --title TITLE      report title

With no --out the report prints to the terminal (unicode sparklines).
`rt3 report` shells out to this script, so both spellings work:

  rt3 report --telemetry tel.json --metrics m.json --out report.html
  python3 tools/report.py --telemetry tel.json

Exit codes: 0 ok, 2 usage/IO error.
"""

import argparse
import html
import json
import sys

SPARK = "▁▂▃▄▅▆▇█"

# Series drawn first, in this order, when present; the rest follow
# alphabetically.
KEY_SERIES = [
    "node.battery_fraction",
    "node.level",
    "node.queue_depth",
    "node.switch_ms",
]


def load_json(path, what):
    if not path:
        return None
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"report: cannot read {what} {path}: {e}", file=sys.stderr)
        sys.exit(2)


def sparkline(values, width=48):
    """Downsamples `values` to `width` buckets of unicode blocks."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if len(values) > width:
        # bucket means, deterministic
        out = []
        for b in range(width):
            i0 = b * len(values) // width
            i1 = max(i0 + 1, (b + 1) * len(values) // width)
            chunk = values[i0:i1]
            out.append(sum(chunk) / len(chunk))
        values = out
    if span <= 0:
        return SPARK[0] * len(values)
    return "".join(
        SPARK[min(len(SPARK) - 1,
                  int((v - lo) / span * (len(SPARK) - 1)))]
        for v in values)


def ordered_series(series):
    names = [n for n in KEY_SERIES if n in series]
    names += sorted(n for n in series if n not in KEY_SERIES)
    return names


def strip_labels(key):
    return key.split("{", 1)[0]


def sum_counters(metrics, base_name):
    """Sums a counter family across label sets (None when absent)."""
    if not metrics:
        return None
    found = False
    total = 0
    for key, value in metrics.get("counters", {}).items():
        if strip_labels(key) == base_name:
            total += value
            found = True
    return total if found else None


def miss_attribution(metrics):
    """(misses, {cause: count}) from the published counters."""
    misses = sum_counters(metrics, "serve.deadline_misses")
    if misses is None:
        return None
    causes = {}
    for cause in ("queued", "switch", "exec"):
        n = sum_counters(metrics, f"serve.miss_{cause}")
        if n is not None:
            causes[cause] = n
    return misses, causes


def slo_episodes(telemetry_doc, trace_doc):
    """Breach episodes from the telemetry dump, else from trace events."""
    if telemetry_doc and isinstance(telemetry_doc.get("slo"), list):
        return telemetry_doc["slo"]
    if not trace_doc:
        return []
    episodes = []
    open_by_rule = {}
    for e in trace_doc.get("traceEvents", []):
        if e.get("name") not in ("slo.breach", "slo.recover"):
            continue
        args = e.get("args") or {}
        rule = args.get("rule", "?")
        ts_ms = e.get("ts", 0) / 1000.0  # trace ts is in us
        if e["name"] == "slo.breach":
            ep = {"rule": rule, "start_ms": ts_ms, "end_ms": -1,
                  "trigger_value": args.get("value", 0)}
            open_by_rule[rule] = ep
            episodes.append(ep)
        elif rule in open_by_rule:
            open_by_rule.pop(rule)["end_ms"] = ts_ms
    return episodes


def fmt_ms(v):
    return "session end" if v is None or v < 0 else f"{v:.0f} ms"


def print_terminal(title, telemetry_doc, metrics, trace_doc):
    print(f"== {title} ==")
    completed = sum_counters(metrics, "serve.completed")
    if completed is not None:
        parts = [f"completed {completed}"]
        for base in ("serve.deadline_misses", "serve.shed",
                     "serve.rejected", "serve.dropped", "serve.switches"):
            n = sum_counters(metrics, base)
            if n:
                parts.append(f"{base.split('.', 1)[1]} {n}")
        unroutable = sum_counters(metrics, "node.unroutable")
        if unroutable:
            parts.append(f"unroutable {unroutable}")
        print("session: " + ", ".join(parts))
    attribution = miss_attribution(metrics)
    if attribution and attribution[0]:
        misses, causes = attribution
        detail = ", ".join(f"{k} {v} ({v / misses:.0%})"
                           for k, v in causes.items())
        print(f"miss attribution: {misses} misses = {detail}")
    episodes = slo_episodes(telemetry_doc, trace_doc)
    print(f"slo: {len(episodes)} breach episode(s)")
    for ep in episodes:
        print(f"  [{ep.get('rule', '?')}] {fmt_ms(ep.get('start_ms'))}"
              f" -> {fmt_ms(ep.get('end_ms'))}"
              f" (trigger {ep.get('trigger_value', 0):.3g})")
    series = ((telemetry_doc or {}).get("telemetry") or {}).get("series", {})
    if series:
        print(f"series ({len(series)}):")
        width = max(len(n) for n in series)
        for name in ordered_series(series):
            s = series[name]
            values = s.get("v", [])
            if not values:
                continue
            lo, hi = min(values), max(values)
            print(f"  {name:<{width}}  {sparkline(values)}"
                  f"  [{lo:.3g}, {hi:.3g}] x{s.get('offered', len(values))}")
    if trace_doc:
        footer = trace_doc.get("rt3", {})
        if footer.get("dropped_events"):
            print(f"trace: {footer['dropped_events']} events dropped at the "
                  f"max_events cap ({footer.get('max_events')})")


def svg_chart(name, times, values, episodes, width=640, height=120):
    """One series as an inline SVG polyline with breach-interval shading."""
    pad = 4
    t_lo, t_hi = times[0], times[-1]
    v_lo, v_hi = min(values), max(values)
    t_span = (t_hi - t_lo) or 1.0
    v_span = (v_hi - v_lo) or 1.0

    def x(t):
        return pad + (t - t_lo) / t_span * (width - 2 * pad)

    def y(v):
        return height - pad - (v - v_lo) / v_span * (height - 2 * pad)

    parts = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
             f'height="{height}" role="img">']
    parts.append(f'<rect width="{width}" height="{height}" fill="#fafafa" '
                 f'stroke="#ddd"/>')
    for ep in episodes:
        s = max(t_lo, ep.get("start_ms", t_lo))
        e = ep.get("end_ms", -1)
        e = t_hi if e is None or e < 0 else min(t_hi, e)
        if e > s:
            parts.append(f'<rect x="{x(s):.1f}" y="0" '
                         f'width="{max(1.0, x(e) - x(s)):.1f}" '
                         f'height="{height}" fill="#c0392b" opacity="0.12"/>')
    points = " ".join(f"{x(t):.1f},{y(v):.1f}"
                      for t, v in zip(times, values))
    parts.append(f'<polyline points="{points}" fill="none" '
                 f'stroke="#2c6fbb" stroke-width="1.5"/>')
    parts.append(f'<text x="{pad + 2}" y="12" font-size="11" '
                 f'fill="#555">{html.escape(name)} '
                 f'[{v_lo:.3g}, {v_hi:.3g}]</text>')
    parts.append("</svg>")
    return "".join(parts)


def write_html(path, title, telemetry_doc, metrics, trace_doc):
    episodes = slo_episodes(telemetry_doc, trace_doc)
    series = ((telemetry_doc or {}).get("telemetry") or {}).get("series", {})
    out = ["<!doctype html><html><head><meta charset='utf-8'>",
           f"<title>{html.escape(title)}</title>",
           "<style>body{font:14px/1.5 system-ui,sans-serif;max-width:720px;"
           "margin:2em auto;color:#222}h1{font-size:1.3em}h2{font-size:1.1em;"
           "margin-top:1.5em}table{border-collapse:collapse}td,th{border:1px "
           "solid #ddd;padding:4px 10px;text-align:left}svg{display:block;"
           "margin:6px 0}.bar{display:inline-block;height:12px;"
           "background:#2c6fbb}.miss .bar{background:#c0392b}</style>",
           f"</head><body><h1>{html.escape(title)}</h1>"]

    completed = sum_counters(metrics, "serve.completed")
    if completed is not None:
        out.append("<h2>Session</h2><table><tr>")
        cells = {"completed": completed}
        for base in ("serve.deadline_misses", "serve.shed", "serve.rejected",
                     "serve.dropped", "serve.switches"):
            n = sum_counters(metrics, base)
            if n is not None:
                cells[base.split(".", 1)[1]] = n
        out.append("".join(f"<th>{html.escape(k)}</th>" for k in cells))
        out.append("</tr><tr>")
        out.append("".join(f"<td>{v}</td>" for v in cells.values()))
        out.append("</tr></table>")

    attribution = miss_attribution(metrics)
    if attribution and attribution[0]:
        misses, causes = attribution
        out.append(f"<h2>Miss attribution</h2><p>{misses} deadline "
                   f"misses</p><table class='miss'>")
        for cause, n in causes.items():
            w = int(200 * n / misses)
            out.append(f"<tr><td>{html.escape(cause)}</td><td>{n}</td>"
                       f"<td style='border:none'><span class='bar' "
                       f"style='width:{w}px'></span></td></tr>")
        out.append("</table>")

    out.append(f"<h2>SLO breaches</h2><p>{len(episodes)} episode(s)</p>")
    if episodes:
        out.append("<table><tr><th>rule</th><th>start</th><th>end</th>"
                   "<th>trigger</th></tr>")
        for ep in episodes:
            out.append(
                f"<tr><td>{html.escape(str(ep.get('rule', '?')))}</td>"
                f"<td>{fmt_ms(ep.get('start_ms'))}</td>"
                f"<td>{fmt_ms(ep.get('end_ms'))}</td>"
                f"<td>{ep.get('trigger_value', 0):.3g}</td></tr>")
        out.append("</table>")

    if series:
        out.append("<h2>Telemetry series</h2>"
                   "<p>Shaded bands are SLO breach intervals.</p>")
        for name in ordered_series(series):
            s = series[name]
            times, values = s.get("t", []), s.get("v", [])
            if len(values) >= 2:
                out.append(svg_chart(name, times, values, episodes))

    if trace_doc:
        footer = trace_doc.get("rt3", {})
        if footer.get("dropped_events"):
            out.append(f"<p>trace: {footer['dropped_events']} events "
                       f"dropped at the max_events cap "
                       f"({footer.get('max_events')})</p>")
    out.append("</body></html>")
    try:
        with open(path, "w") as f:
            f.write("".join(out))
    except OSError as e:
        print(f"report: cannot write {path}: {e}", file=sys.stderr)
        sys.exit(2)
    print(f"report: wrote {path}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--telemetry", help="telemetry JSON from --telemetry")
    parser.add_argument("--metrics", help="metrics JSON from --metrics")
    parser.add_argument("--trace", help="Chrome trace JSON from --trace")
    parser.add_argument("--out", help="write a self-contained HTML report")
    parser.add_argument("--title", default="rt3 session report")
    args = parser.parse_args()
    if not (args.telemetry or args.metrics or args.trace):
        parser.error("need at least one of --telemetry/--metrics/--trace")

    telemetry_doc = load_json(args.telemetry, "telemetry")
    metrics = load_json(args.metrics, "metrics")
    trace_doc = load_json(args.trace, "trace")
    print_terminal(args.title, telemetry_doc, metrics, trace_doc)
    if args.out:
        write_html(args.out, args.title, telemetry_doc, metrics, trace_doc)


if __name__ == "__main__":
    main()
