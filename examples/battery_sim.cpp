// Battery discharge simulation: a full battery drains while a governor
// steps the V/F ladder down and RT3 swaps pattern sets to keep meeting the
// deadline (the paper's Table II scenario as an interactive run).
//
// Compares three strategies over identical batteries:
//   A. no reconfiguration (F-mode until empty),
//   B. DVFS only (misses deadlines at low frequencies),
//   C. DVFS + pattern-set switching (RT3).
#include <iostream>

#include "common/table.hpp"
#include "dvfs/dvfs.hpp"
#include "perf/latency_model.hpp"
#include "runtime/engine.hpp"

int main() {
  using namespace rt3;
  std::cout << "RT3 battery discharge simulation\n"
            << "================================\n";

  const VfTable table = VfTable::odroid_xu3_a7();
  const PowerModel power;
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel latency;
  latency.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);

  const double kT = 115.0;
  const double capacity = 5e4;  // mJ; scaled battery for a fast run

  // Sub-model sparsities per mode for strategy C: just meet T.
  std::vector<double> adaptive;
  for (std::int64_t li : {5, 3, 2}) {
    adaptive.push_back(std::max(
        0.6426, latency.sparsity_for_latency(spec, ExecMode::kPattern,
                                             table.level(li).freq_mhz, kT)));
  }

  DischargeConfig cfg;
  cfg.battery_capacity_mj = capacity;
  cfg.timing_constraint_ms = kT;

  // A: single level, single model.
  cfg.software_reconfig = false;
  const DischargeStats a =
      simulate_discharge(cfg, table, Governor::equal_tranches({5}), power,
                         latency, spec, {0.6426}, ExecMode::kBlock);

  // B: DVFS only.
  const DischargeStats b = simulate_discharge(
      cfg, table, Governor::equal_tranches({5, 3, 2}), power, latency, spec,
      {0.6426, 0.6426, 0.6426}, ExecMode::kBlock);

  // C: DVFS + software reconfiguration.
  cfg.software_reconfig = true;
  const DischargeStats c = simulate_discharge(
      cfg, table, Governor::equal_tranches({5, 3, 2}), power, latency, spec,
      adaptive, ExecMode::kPattern);

  TablePrinter t({"strategy", "runs", "deadline misses", "switches",
                  "active time (s)", "runs vs A"});
  t.add_row({"A: no reconfig", fmt_f(a.total_runs, 0),
             fmt_f(a.deadline_misses, 0), "0",
             fmt_f(a.simulated_seconds, 1), "-"});
  t.add_row({"B: DVFS only", fmt_f(b.total_runs, 0),
             fmt_f(b.deadline_misses, 0), std::to_string(b.switches),
             fmt_f(b.simulated_seconds, 1), fmt_x(b.total_runs / a.total_runs)});
  t.add_row({"C: DVFS + RT3", fmt_f(c.total_runs, 0),
             fmt_f(c.deadline_misses, 0), std::to_string(c.switches),
             fmt_f(c.simulated_seconds, 1), fmt_x(c.total_runs / a.total_runs)});
  std::cout << "\n" << t.str();

  std::cout << "\nPer-level runs with RT3 (F/N/E): ";
  for (double runs : c.runs_per_level) {
    std::cout << fmt_f(runs, 0) << " ";
  }
  std::cout << "\n\nDVFS alone stretches the battery but breaks the "
            << fmt_f(kT, 0)
            << " ms deadline at low frequency; adding RT3's pattern-set "
               "switch keeps every inference on time while running the "
               "battery even longer (paper Table II).\n";
  return 0;
}
