// Multi-model serving front-end: several backbone-resident models behind
// ONE battery and ONE governor on one device — the phone hosting multiple
// NLP services the paper targets.
//
// Three pieces compose the node:
//
//   ModelDeployment — fluent builder for one model's serving machinery:
//       ModelDeployment()
//           .config(server_cfg)            // batching / scheduler / admission
//           .spec(model_spec)
//           .latency(latency_model)
//           .sparsities({s0, s1, s2})      // one per governor level
//           .scheduler(sched_cfg)
//           .engine(std::move(engine))     // OWNED by the built shard
//           .backend(std::move(backend))   // OWNED by the built shard
//       Building yields a per-model Server shard that owns its engine and
//       backend; the shared GovernorHandle passed to build() decides the
//       shard's levels (see serve/governor_policy.hpp).
//
//   ModelRegistry — model id -> owned Server shard, ids kept ascending so
//       every per-shard iteration order (switching, stats) is
//       deterministic.
//
//   Router — dispatches each Request by Request::model_id and performs
//       FEASIBILITY-BASED ADMISSION at ingress: a request whose deadline
//       lies inside now + batch_latency(1, level) for its target model is
//       rejected (ServerStats::rejected) instead of being queued to miss
//       and domino other deadlines under overload.
//
// ServeNode drives all shards on a single virtual clock against the
// shared battery: batches from different models serialize (one mobile
// core), and when the governor steps the ladder down the node drains the
// in-flight work then switches EVERY resident model's pattern set at that
// one batch boundary, so no model is ever left running a sub-model the
// current V/F level cannot afford.  A node with one registered model
// reproduces Server::serve bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dvfs/dvfs.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"

namespace rt3 {

/// Builder for one model's deployment onto a node (or a standalone
/// Server).  Engine and backend handed to the builder are OWNED by the
/// Server it builds.
class ModelDeployment {
 public:
  ModelDeployment() = default;

  /// Full per-model server configuration (batching, shedding, admission,
  /// governor-aware batching, switch costs).
  ModelDeployment& config(const ServerConfig& config);
  ModelDeployment& spec(const ModelSpec& spec);
  ModelDeployment& latency(const LatencyModel& latency);
  /// One overall-model sparsity per governor level (fast -> slow).
  ModelDeployment& sparsities(std::vector<double> sparsities);
  /// Batch-composition order (shorthand for mutating config().scheduler).
  ModelDeployment& scheduler(const SchedulerConfig& scheduler);
  ModelDeployment& batch(const BatchPolicy& batch);
  /// Reject ingress requests that cannot meet their deadline even with an
  /// immediate solo launch (shorthand for config().admit_feasible).
  ModelDeployment& admit_feasible(bool admit);
  /// Live ReconfigEngine for this model; ownership transfers to the shard.
  ModelDeployment& engine(std::unique_ptr<ReconfigEngine> engine);
  /// Execution backend for this model; ownership transfers to the shard.
  ModelDeployment& backend(std::unique_ptr<ExecutionBackend> backend);

  /// Builds the per-model Server shard over the (shared) table, governor
  /// policy and power model, adopting the deployment's engine and backend.
  /// Consumes the deployment (rvalue-only: ownership moves out).  A plain
  /// Governor converts to the default LadderPolicy; shards built from the
  /// same handle SHARE one policy instance.
  std::unique_ptr<Server> build(const VfTable& table,
                                const GovernorHandle& governor,
                                const PowerModel& power) &&;

 private:
  ServerConfig config_;
  ModelSpec spec_ = ModelSpec::paper_transformer();
  LatencyModel latency_;
  std::vector<double> sparsities_;
  std::unique_ptr<ReconfigEngine> engine_;
  std::unique_ptr<ExecutionBackend> backend_;
};

/// Model id -> owned per-model Server shard, ids ascending.
class ModelRegistry {
 public:
  /// Registers a shard (throws CheckError on a duplicate id).
  Server& add(std::int64_t model_id, std::unique_ptr<Server> shard);

  /// The shard serving `model_id`, or nullptr when unknown.
  Server* find(std::int64_t model_id) const;

  /// Registered ids, ascending — the canonical per-shard iteration order.
  const std::vector<std::int64_t>& ids() const { return ids_; }
  std::int64_t size() const { return static_cast<std::int64_t>(ids_.size()); }

 private:
  std::vector<std::int64_t> ids_;
  std::vector<std::unique_ptr<Server>> shards_;  // parallel to ids_
};

/// Dispatches requests to shards by model id and decides admission.
class Router {
 public:
  explicit Router(const ModelRegistry& registry) : registry_(registry) {}

  struct Decision {
    /// Target shard; nullptr when the model id matches no registered
    /// model (NodeStats::unroutable).
    Server* shard = nullptr;
    /// False when the target model's feasibility admission rejected the
    /// request at ingress (ServerStats::rejected).
    bool admitted = false;
  };

  /// Routing decision for one request at virtual time `now_ms` with the
  /// shared governor at level position `level_pos`.
  Decision route(const Request& r, double now_ms,
                 std::int64_t level_pos) const;

  /// Attaches a trace recorder (nullptr detaches): route() then emits a
  /// routed/reject/unroutable instant per request on the target model's
  /// lane (model id + 1; lane 0 for unroutable ids).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Attaches a telemetry sampler (nullptr detaches): route() then counts
  /// ingress rejections per model and unroutable requests into it.
  void set_telemetry(TelemetrySampler* telemetry) { telemetry_ = telemetry; }

 private:
  const ModelRegistry& registry_;
  TraceRecorder* trace_ = nullptr;
  TelemetrySampler* telemetry_ = nullptr;
};

struct NodeConfig {
  /// The ONE battery budget every resident model draws from.
  double battery_capacity_mj = 12'000.0;
};

/// Multi-model serving node: per-model Server shards behind one shared
/// battery/governor, driven on one virtual clock.
class ServeNode {
 public:
  /// `governor` accepts a plain Governor (default LadderPolicy) or any
  /// shared GovernorPolicy; every shard added to this node shares it.
  ServeNode(NodeConfig config, VfTable table, GovernorHandle governor,
            PowerModel power);

  /// Builds the deployment into a shard and registers it under
  /// `model_id`.  Every deployment's sparsities must match the shared
  /// governor's ladder.  Returns the built shard.
  Server& add_model(std::int64_t model_id, ModelDeployment deployment);

  const ModelRegistry& registry() const { return registry_; }
  /// The shard serving `model_id` (throws CheckError when unknown).
  Server& model(std::int64_t model_id);
  std::int64_t num_models() const { return registry_.size(); }

  /// Runs one full node session over a pre-generated arrival schedule
  /// (sorted by arrival time; requests carry model ids).  Deterministic.
  NodeStats serve(const std::vector<Request>& schedule);

  /// Pops requests from the queue until it is closed and drained, orders
  /// them by (arrival timestamp, id), and runs serve().  Producers may
  /// push from any number of threads; routing is deterministic because
  /// ingestion races are erased by the timestamp ordering.
  NodeStats serve_queue(RequestQueue& queue);

  const Battery& battery() const { return battery_; }
  /// The level ladder behind the shared policy.
  const Governor& governor() const { return governor_.ladder(); }
  /// The ONE policy deciding levels for every shard on this node.
  GovernorPolicy& governor_policy() { return governor_.policy(); }

  /// Attaches a trace recorder (nullptr detaches): serve() then emits the
  /// full request/batch/switch lifecycle on per-model lanes (model id + 1)
  /// with governor/battery events on lane 0, and forwards the recorder to
  /// the Router and every shard's engine, backend, and batcher.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }
  TraceRecorder* trace() const { return trace_; }

  /// Directs session counters into an external registry (nullptr resets):
  /// serve() then mirrors the final NodeStats via NodeStats::publish.
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Attaches a continuous-telemetry sampler (nullptr detaches): serve()
  /// then reports every batch boundary (on the executing model's lane),
  /// shed/reject/unroutable counts, and switch epochs to it.  Same
  /// single-null-check overhead contract as set_trace.
  void set_telemetry(TelemetrySampler* telemetry) { telemetry_ = telemetry; }
  TelemetrySampler* telemetry() const { return telemetry_; }

  /// Attaches an SLO monitor (nullptr detaches): serve() then feeds it
  /// node-level batch observations and publishes its breach counts into
  /// the metrics registry (when one is attached) at session end.
  void set_slo(SloMonitor* slo) { slo_ = slo; }
  SloMonitor* slo() const { return slo_; }

 private:
  NodeConfig config_;
  VfTable table_;
  GovernorHandle governor_;
  PowerModel power_;
  Battery battery_;
  ModelRegistry registry_;
  Router router_;
  TraceRecorder* trace_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  TelemetrySampler* telemetry_ = nullptr;
  SloMonitor* slo_ = nullptr;
};

/// Pushes `schedule` through a RequestQueue from `producers` pool threads
/// (round-robin slices) while the node consumes — the MPMC ingestion path
/// across models.  Stats are identical to node.serve(schedule).
NodeStats serve_node_concurrent(ServeNode& node,
                                const std::vector<Request>& schedule,
                                std::int64_t producers);

}  // namespace rt3
