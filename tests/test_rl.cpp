// Tests for the RL layer: GRU, Eq. (1) reward, controller sampling and
// REINFORCE learning on a bandit-style synthetic objective.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "rl/controller.hpp"
#include "rl/gru.hpp"
#include "rl/reward.hpp"
#include "tensor/gradcheck.hpp"

namespace rt3 {
namespace {

TEST(Gru, OutputShapeAndRange) {
  Rng rng(1);
  GruCell cell(4, 6, rng);
  Var x(Tensor::randn({2, 4}, rng));
  Var h = cell.initial_state(2);
  const Var h2 = cell.forward(x, h);
  EXPECT_EQ(h2.shape(), (Shape{2, 6}));
  // Convex combination of h (= 0) and tanh output: all values in (-1, 1).
  for (std::int64_t i = 0; i < h2.numel(); ++i) {
    EXPECT_LT(std::abs(h2.value()[i]), 1.0F);
  }
}

TEST(Gru, StatePropagatesInformation) {
  Rng rng(2);
  GruCell cell(3, 5, rng);
  Var x1(Tensor::randn({1, 3}, rng));
  Var x2(Tensor::randn({1, 3}, rng));
  Var h0 = cell.initial_state(1);
  const Var ha = cell.forward(x2, cell.forward(x1, h0));
  const Var hb = cell.forward(x2, h0);
  // History must matter: h after (x1, x2) differs from h after just x2.
  EXPECT_FALSE(ha.value().allclose(hb.value(), 1e-6F));
}

TEST(Gru, GradientsFlowThroughTime) {
  Rng rng(3);
  GruCell cell(2, 3, rng);
  Var x(Tensor::randn({1, 2}, rng), true);
  Var h = cell.initial_state(1);
  Var h1 = cell.forward(x, h);
  Var h2 = cell.forward(x, h1);
  sum_all(h2).backward();
  // Input used at both steps accumulates a nonzero gradient.
  float total = 0.0F;
  for (std::int64_t i = 0; i < x.grad().numel(); ++i) {
    total += std::abs(x.grad()[i]);
  }
  EXPECT_GT(total, 0.0F);
}

// ---------------------------------------------------------------------------
// Reward function: the three cases of Eq. (1).
// ---------------------------------------------------------------------------

RewardInputs feasible_inputs() {
  RewardInputs in;
  in.latencies_ms = {90.0, 95.0, 100.0};
  in.accuracies = {0.95, 0.93, 0.90};
  in.runs = {1e5, 2e5, 3e5};
  in.timing_constraint_ms = 110.0;
  in.backbone_accuracy = 0.96;
  in.min_accuracy = 0.5;
  in.runs_reference = 1e6;
  return in;
}

TEST(Reward, TimingViolationCase) {
  RewardInputs in = feasible_inputs();
  in.latencies_ms[2] = 200.0;  // violates T
  in.accuracies.clear();       // paper: no fine-tuning on violation
  const RewardResult r = compute_reward(in);
  EXPECT_FALSE(r.feasible);
  EXPECT_NEAR(r.value, -1.0 + 0.6, 1e-9);  // -1 + Rruns, Rruns = 6e5/1e6
}

TEST(Reward, FeasibleOrderedCase) {
  const RewardResult r = compute_reward(feasible_inputs());
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.ordering_ok);
  const double aw = (0.95 + 0.93 + 0.90) / 3.0;
  EXPECT_NEAR(r.weighted_accuracy, aw, 1e-12);
  EXPECT_NEAR(r.value, (aw - 0.5) / (0.96 - 0.5) + 0.6, 1e-9);
}

TEST(Reward, OrderingPenaltyCase) {
  RewardInputs in = feasible_inputs();
  in.accuracies = {0.90, 0.93, 0.95};  // slow level MORE accurate: cond=false
  in.penalty = 0.3;
  const RewardResult r = compute_reward(in);
  EXPECT_TRUE(r.feasible);
  EXPECT_FALSE(r.ordering_ok);
  const RewardInputs ordered = feasible_inputs();
  // Same weighted accuracy but penalized.
  EXPECT_NEAR(compute_reward(ordered).value - r.value, 0.3, 1e-9);
}

TEST(Reward, RunsRewardClampedToOne) {
  RewardInputs in = feasible_inputs();
  in.runs = {1e7, 1e7, 1e7};
  const RewardResult r = compute_reward(in);
  EXPECT_DOUBLE_EQ(r.runs_reward, 1.0);
}

TEST(Reward, CustomLevelWeights) {
  RewardInputs in = feasible_inputs();
  in.level_weights = {1.0, 0.0, 0.0};
  const RewardResult r = compute_reward(in);
  EXPECT_NEAR(r.weighted_accuracy, 0.95, 1e-12);
}

TEST(Reward, HigherAccuracyHigherReward) {
  RewardInputs lo = feasible_inputs();
  RewardInputs hi = feasible_inputs();
  hi.accuracies = {0.96, 0.94, 0.92};
  EXPECT_GT(compute_reward(hi).value, compute_reward(lo).value);
}

TEST(Reward, RejectsMalformedInputs) {
  RewardInputs in = feasible_inputs();
  in.runs.pop_back();
  EXPECT_THROW(compute_reward(in), CheckError);
  RewardInputs in2 = feasible_inputs();
  in2.accuracies.pop_back();  // feasible but wrong arity
  EXPECT_THROW(compute_reward(in2), CheckError);
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

TEST(Controller, SampleShapesAndRanges) {
  ControllerConfig cfg;
  cfg.num_levels = 3;
  cfg.num_sparsity_choices = 5;
  cfg.num_variants = 2;
  RlController controller(cfg);
  Rng rng(4);
  const EpisodeSample ep = controller.sample(rng);
  ASSERT_EQ(ep.sparsity_choice.size(), 3U);
  ASSERT_EQ(ep.variant_choice.size(), 3U);
  for (auto c : ep.sparsity_choice) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 5);
  }
  for (auto c : ep.variant_choice) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 2);
  }
  EXPECT_TRUE(ep.log_prob_sum.defined());
  EXPECT_LT(ep.log_prob_sum.item(), 0.0F);  // log-probs are negative
}

TEST(Controller, GreedyIsDeterministic) {
  ControllerConfig cfg;
  cfg.num_levels = 2;
  cfg.num_sparsity_choices = 4;
  cfg.num_variants = 3;
  RlController controller(cfg);
  const EpisodeSample a = controller.sample_greedy();
  const EpisodeSample b = controller.sample_greedy();
  EXPECT_EQ(a.sparsity_choice, b.sparsity_choice);
  EXPECT_EQ(a.variant_choice, b.variant_choice);
}

TEST(Controller, LearnsBanditObjective) {
  // Reward 1 when every level picks sparsity index 2 and variant 1,
  // partial credit otherwise.  REINFORCE must concentrate on the optimum.
  ControllerConfig cfg;
  cfg.num_levels = 2;
  cfg.num_sparsity_choices = 4;
  cfg.num_variants = 2;
  cfg.learning_rate = 0.05F;
  cfg.seed = 5;
  RlController controller(cfg);
  Rng rng(6);
  for (int episode = 0; episode < 150; ++episode) {
    const EpisodeSample ep = controller.sample(rng);
    double reward = 0.0;
    for (std::size_t i = 0; i < 2; ++i) {
      reward += (ep.sparsity_choice[i] == 2 ? 0.35 : 0.0);
      reward += (ep.variant_choice[i] == 1 ? 0.15 : 0.0);
    }
    controller.update(ep, reward);
  }
  const EpisodeSample greedy = controller.sample_greedy();
  EXPECT_EQ(greedy.sparsity_choice, (std::vector<std::int64_t>{2, 2}));
  EXPECT_EQ(greedy.variant_choice, (std::vector<std::int64_t>{1, 1}));
}

TEST(Controller, BaselineTracksRewards) {
  ControllerConfig cfg;
  cfg.num_levels = 1;
  cfg.num_sparsity_choices = 2;
  cfg.num_variants = 2;
  cfg.baseline_decay = 0.5F;
  RlController controller(cfg);
  Rng rng(7);
  controller.update(controller.sample(rng), 1.0);
  EXPECT_NEAR(controller.baseline(), 1.0, 1e-12);  // initialized to first
  controller.update(controller.sample(rng), 0.0);
  EXPECT_NEAR(controller.baseline(), 0.5, 1e-12);
}

TEST(Controller, ParamsRegistered) {
  ControllerConfig cfg;
  RlController controller(cfg);
  // embeddings + 6 GRU mats (3 with bias) + 2 heads with bias.
  EXPECT_GT(controller.parameters().size(), 10U);
}

}  // namespace
}  // namespace rt3
