// End-to-end RT3 search demo: runs the full two-level pipeline (Fig. 1)
// on the WikiText-2 analog, prints each explored episode, the selected
// sub-models, and saves/loads the deployment package.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace rt3;
  std::cout << "RT3 end-to-end search demo\n==========================\n";

  CorpusConfig corpus_cfg;
  corpus_cfg.vocab_size = 64;
  corpus_cfg.num_tokens = 8000;
  corpus_cfg.rule_strength = 0.96;
  const Corpus corpus(corpus_cfg);

  TransformerLmConfig model_cfg;
  model_cfg.vocab_size = 64;
  model_cfg.d_model = 32;
  model_cfg.num_heads = 4;
  model_cfg.ffn_hidden = 64;
  TransformerLm model(model_cfg);

  TrainConfig pre;
  pre.steps = 200;
  pre.batch = 12;
  pre.seq_len = 16;
  pre.lr = 8e-3F;
  train_lm(model, corpus, pre);

  Rt3Options options;
  options.timing_constraint_ms = 104.0;
  options.episodes = 5;
  options.bp.num_blocks = 4;
  options.bp.prune_fraction = 0.35;
  options.space.psize = 8;
  options.space.patterns_per_set = 4;
  options.space.num_variants = 2;
  options.episode_train.steps = 14;
  options.episode_train.batch = 8;
  options.episode_train.seq_len = 16;
  options.final_train.steps = 80;
  options.final_train.batch = 8;
  options.final_train.seq_len = 16;
  options.backbone_train.steps = 50;
  options.backbone_train.batch = 8;
  options.backbone_train.seq_len = 16;

  Rt3LmPipeline pipeline(model, corpus, options,
                         ModelSpec::paper_transformer());
  const Rt3Result result = pipeline.run();

  std::cout << "\noriginal accuracy : " << fmt_pct(result.original_accuracy)
            << "\nbackbone accuracy : " << fmt_pct(result.backbone_accuracy)
            << " at " << fmt_pct(result.backbone_sparsity) << " sparsity\n";

  std::cout << "\nexplored episodes:\n";
  for (std::size_t i = 0; i < result.explored.size(); ++i) {
    const auto& p = result.explored[i];
    std::cout << "  episode " << i << ": reward=" << fmt_f(p.reward, 3)
              << " weighted_acc=" << fmt_pct(p.weighted_accuracy)
              << " runs=" << fmt_millions(p.total_runs) << "M"
              << (p.feasible ? "" : " [infeasible]") << "\n";
  }

  std::cout << "\nselected deployment (T = "
            << fmt_f(options.timing_constraint_ms, 0) << " ms):\n";
  TablePrinter t({"level", "freq", "sparsity", "latency", "accuracy",
                  "runs(1e6)"});
  for (const auto& sub : result.levels) {
    t.add_row({sub.level_name, fmt_f(sub.freq_mhz, 0) + " MHz",
               fmt_pct(sub.overall_sparsity), fmt_f(sub.latency_ms, 2) + " ms",
               fmt_pct(sub.accuracy), fmt_millions(sub.runs)});
  }
  std::cout << t.str();

  std::cout << "\nswitch costs: full model reload "
            << fmt_f(result.model_switch_ms / 1000.0, 1) << " s vs pattern set "
            << fmt_f(result.pattern_switch_ms, 2) << " ms (modeled), "
            << fmt_f(result.pattern_switch_wall_ms, 2)
            << " ms (measured mask recomposition on this host)\n";

  // Package, save, reload.
  const DeploymentPackage pkg = pipeline.package(result);
  const std::string path = "/tmp/rt3_demo_package.bin";
  pkg.save(path);
  const DeploymentPackage loaded = DeploymentPackage::load(path);
  std::cout << "\ndeployment package: " << loaded.params.size()
            << " tensors, " << loaded.pattern_sets.size()
            << " pattern sets, resident "
            << loaded.resident_bytes() / 1024 << " KiB, largest switch "
            << loaded.switch_bytes(0) << " B -> saved and reloaded OK\n";
  std::remove(path.c_str());
  return 0;
}
