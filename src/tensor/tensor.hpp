// Dense row-major float tensor.
//
// rt3's training stack (Transformer models, joint pattern-set training,
// the RNN RL controller) is built on this value type plus the tape
// autodiff in var.hpp.  Everything is float32 and contiguous; shapes are
// signed per Core Guidelines ES.107.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace rt3 {

/// Shape of a tensor: sizes per dimension, outermost first.
using Shape = std::vector<std::int64_t>;

/// Contiguous row-major float32 tensor with value semantics.
class Tensor {
 public:
  /// Empty 0-d tensor (numel 0).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor with explicit contents; data.size() must equal the shape volume.
  Tensor(Shape shape, std::vector<float> data);

  /// --- factories -------------------------------------------------------
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// i.i.d. N(0, stddev^2).
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0F);
  /// Uniform in [lo, hi).
  static Tensor rand_uniform(Shape shape, Rng& rng, float lo, float hi);
  /// 1-D tensor from values.
  static Tensor from_vector(const std::vector<float>& values);
  /// Scalar (shape {1}).
  static Tensor scalar(float value);

  /// --- structure -------------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::int64_t dim() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t size(std::int64_t axis) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }

  /// Returns a copy with a new shape of identical volume.
  Tensor reshaped(Shape new_shape) const;

  /// --- element access --------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](std::int64_t flat_index);
  float operator[](std::int64_t flat_index) const;

  /// Multi-dimensional access (bounds-checked).
  float& at(const std::vector<std::int64_t>& index);
  float at(const std::vector<std::int64_t>& index) const;

  /// Row-major flat offset of a multi-index.
  std::int64_t flat_index(const std::vector<std::int64_t>& index) const;

  /// --- in-place --------------------------------------------------------
  void fill(float value);
  void add_(const Tensor& other);             // this += other
  void scale_(float factor);                  // this *= factor
  void add_scaled_(const Tensor& other, float factor);  // this += f * other

  /// --- reductions / norms ----------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  float l2_norm() const;
  /// Fraction of exactly-zero entries.
  double sparsity() const;
  std::int64_t count_nonzero() const;

  /// True if shapes are equal and all entries differ by at most `tol`.
  bool allclose(const Tensor& other, float tol = 1e-5F) const;

  /// Debug rendering ("Tensor[2,3] {…}"), truncated for large tensors.
  std::string to_string() const;

  /// Volume of a shape (product of dims; 1 for the empty shape => scalar-ish
  /// semantics are NOT used: empty shape means 0 elements).
  static std::int64_t volume(const Shape& shape);

 private:
  Shape shape_;
  std::vector<float> data_;
};

/// --- free-function arithmetic on raw tensors (no autodiff) --------------
/// Elementwise with equal shapes.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

/// 2-D matrix product: [M,K] x [K,N] -> [M,N].
Tensor matmul2d(const Tensor& a, const Tensor& b);

/// Transpose of a 2-D tensor.
Tensor transpose2d(const Tensor& a);

}  // namespace rt3
