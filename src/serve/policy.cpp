#include "serve/policy.hpp"

#include "common/check.hpp"

namespace rt3 {

SchedulingPolicy scheduling_policy_from_name(const std::string& name) {
  if (name == "fifo") {
    return SchedulingPolicy::kFifo;
  }
  if (name == "edf") {
    return SchedulingPolicy::kEdf;
  }
  if (name == "edf-prio") {
    return SchedulingPolicy::kEdfPriority;
  }
  throw CheckError("unknown scheduling policy: " + name);
}

std::string scheduling_policy_name(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kEdf:
      return "edf";
    case SchedulingPolicy::kEdfPriority:
      return "edf-prio";
  }
  return "?";
}

}  // namespace rt3
