// rt3 — command-line front end for the RT3 pipeline and runtime.
//
//   rt3 search [--t MS] [--episodes N] [--out FILE]   run the two-level
//       AutoML search on the built-in WikiText-2 analog and write a
//       deployment package
//   rt3 info FILE                                     inspect a package
//   rt3 simulate [--capacity MJ] [--t MS]             battery discharge
//       simulation across the paper's {l6,l4,l3} ladder
//   rt3 serve [--scenario NAME] ...                   battery-aware serve
//       session: open-loop traffic through the MPMC queue, dynamic
//       batching, pattern-set switches between batches as the governor
//       steps the ladder down.  Flags:
//         --scenario NAME    steady | burst | diurnal        (burst)
//         --backend NAME     analytic | measured             (analytic)
//         --policy NAME      fifo | edf | edf-prio           (fifo)
//         --capacity MJ      battery budget                  (12000)
//         --t MS             timing constraint / per-level
//                            sparsity target                 (115)
//         --rate RPS         mean request rate               (3)
//         --duration MS      arrival-process length          (60000)
//         --slack MS         per-request deadline slack      (350)
//         --jitter F         slack jitter fraction: per-request slack
//                            uniform in slack*(1 +- F)       (0)
//         --tight-frac F     fraction of interactive requests whose base
//                            slack is --tight-slack instead   (0)
//         --tight-slack MS   interactive deadline slack      (150)
//         --batch N          max batch size                  (2)
//         --wait MS          max batch wait                  (20)
//         --classes N        traffic priority classes        (1)
//         --prio-weight MS   edf-prio key penalty per class  (400)
//         --aging R          edf-prio anti-starvation rate   (0.5)
//         --governor NAME    level-decision policy           (ladder)
//                            ladder   static battery thresholds (paper)
//                            adaptive ladder + self-sizing batch margin
//                            rl       learned GRU governor; requires a
//                                     trained --governor-policy artifact
//         --governor-policy FILE  rt3-governor artifact from
//                            `rt3 train-governor` (implies --governor rl)
//         --governor-margin F  battery-fraction margin above the next
//                            step-down threshold inside which batches
//                            shrink to --governor-batch      (0 = off)
//         --governor-batch N batch cap inside the margin     (1)
//         --threads N        measured-backend kernel threads (2; >= 1)
//         --tuning FILE      apply an `rt3 tune` record to the measured
//                            backend's plan cache before serving
//         --shed             drop requests whose deadline is
//                            already blown (load shedding)
//         --admit            feasibility-based admission: reject requests
//                            whose deadline no immediate solo launch
//                            could meet (counted separately from shed)
//         --producers N      concurrent producer threads     (2)
//         --seed S           traffic seed                    (7)
//         --trace FILE       write the session's request/batch/switch
//                            lifecycle as Chrome trace-event JSON
//                            (load in ui.perfetto.dev)
//         --max-trace-events N  cap stored trace events; overflow is
//                            dropped + counted in the trace footer (0 =
//                            unbounded)
//         --metrics FILE     write the session's metrics registry
//                            (counters/gauges/histograms)
//         --metrics-format F json | prom (Prometheus text exposition)
//         --telemetry FILE   continuous telemetry: record per-batch time
//                            series (queue depth, battery, EWMAs, ...)
//                            and write them as JSON; with --trace the
//                            series also merge into the trace as counter
//                            tracks
//         --sample-every N   telemetry cadence: record series points at
//                            every Nth batch boundary  (1)
//         --slo              evaluate the default SLO rules (miss
//                            burn-rate, latency EWMA, battery slope);
//                            breach/recover events land on trace lane 0
//                            and episodes print + export with --telemetry
//       Flags also accept --flag=value form (common/args.hpp, shared with
//       the bench executables).
//   rt3 node [--models N] ...                         multi-model serving
//       node: N backbone-resident models behind ONE battery/governor,
//       requests routed by model id with optional feasibility admission.
//       Takes every `rt3 serve` flag (applied per model) plus:
//         --models N         resident models on the node     (3)
//   rt3 tune [--out FILE] ...                         offline kernel
//       autotuner: searches (k_tile, unroll, threads) per (layer, level)
//       of the measured backend's plan cache — seeded random sample,
//       fitted latency model, re-measured finalists — and writes the
//       winners as a tuning record for `rt3 serve --tuning`.  Flags:
//         --out FILE         tuning record destination  (rt3_tuning.txt)
//         --load FILE        skip the search: load FILE, apply it, and
//                            re-serialize to --out (format round-trip)
//         --samples N        grid points measured for the model fit (24)
//         --finalists N      top predicted configs re-measured      (4)
//         --repeats N        measurements per candidate, median     (3)
//         --tune-batch N     batch size tuned at                    (1)
//         --tune-seed S      candidate-sampling seed                (42)
//       plus the `rt3 serve` session flags (--t, --threads, ...).
//   rt3 train-governor [--episodes N] [--out FILE] ...  offline REINFORCE
//       training of the learned runtime governor (rl/governor.hpp): each
//       episode is one full seeded virtual-clock serving session, the
//       reward trades served fraction and battery lifetime against
//       deadline misses, and the trained policy is written as an
//       "rt3-governor v1" text artifact for `rt3 serve --governor rl
//       --governor-policy FILE`.  Flags:
//         --out FILE         artifact destination   (rt3_governor.txt)
//         --load FILE        skip training: load FILE and re-serialize to
//                            --out (format round-trip, like `rt3 tune`)
//         --episodes N       training episodes                (30)
//         --hidden N         GRU hidden width                 (16)
//         --lr F             Adam learning rate               (0.005)
//         --governor-seed S  weight-init seed                 (11)
//         --sample-seed S    action-sampling seed             (1234)
//       plus the `rt3 serve` session + traffic flags (--capacity, --t,
//       --rate, --duration, --seed, ...), which define the episodes.
//   rt3 report [ARGS...]                              render a session
//       report (series + SLO breaches + miss attribution) via
//       tools/report.py; see `rt3 report --help`
//   rt3 levels                                        print the V/F ladder
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/check.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "exec/backend.hpp"
#include "exec/simd.hpp"
#include "exec/tuner.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "rl/governor.hpp"
#include "runtime/engine.hpp"
#include "serve/node.hpp"
#include "serve/policy.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"

namespace {

using namespace rt3;

int cmd_levels() {
  const VfTable table = VfTable::odroid_xu3_a7();
  const PowerModel power;
  TablePrinter t({"level", "freq (MHz)", "volt (mV)", "power (mW)"});
  for (std::int64_t i = 0; i < table.size(); ++i) {
    const auto& l = table.level(i);
    t.add_row({l.name, fmt_f(l.freq_mhz, 0), fmt_f(l.volt_mv, 2),
               fmt_f(power.power_mw(l), 1)});
  }
  std::cout << t.str();
  return 0;
}

int cmd_info(const std::string& path) {
  const DeploymentPackage pkg = DeploymentPackage::load(path);
  std::cout << "package: " << path << "\n"
            << "  parameters   : " << pkg.params.size() << " tensors, "
            << pkg.resident_bytes() / 1024 << " KiB resident\n"
            << "  backbone masks: " << pkg.backbone_masks.size() << "\n"
            << "  pattern sets : " << pkg.pattern_sets.size() << "\n\n";
  TablePrinter t({"level", "freq", "pattern spars.", "overall spars.",
                  "latency (ms)", "accuracy", "switch bytes"});
  for (std::size_t i = 0; i < pkg.levels.size(); ++i) {
    const auto& m = pkg.levels[i];
    t.add_row({m.level_name, fmt_f(m.freq_mhz, 0),
               fmt_pct(m.pattern_sparsity), fmt_pct(m.overall_sparsity),
               fmt_f(m.latency_ms, 2), fmt_pct(m.accuracy),
               std::to_string(pkg.switch_bytes(static_cast<std::int64_t>(i)))});
  }
  std::cout << t.str();
  return 0;
}

int cmd_search(const std::vector<std::string>& args) {
  const double t_ms = arg_double(args, "--t", 104.0);
  const auto episodes =
      static_cast<std::int64_t>(arg_double(args, "--episodes", 4));
  const std::string out = arg_string(args, "--out", "rt3_package.bin");

  std::cout << "training workload and running RT3 search (T = " << t_ms
            << " ms, " << episodes << " episodes)...\n";
  CorpusConfig ccfg;
  ccfg.vocab_size = 64;
  ccfg.num_tokens = 8000;
  const Corpus corpus(ccfg);
  TransformerLmConfig mcfg;
  mcfg.vocab_size = 64;
  mcfg.d_model = 32;
  mcfg.num_heads = 4;
  mcfg.ffn_hidden = 64;
  TransformerLm model(mcfg);
  TrainConfig pre;
  pre.steps = 200;
  pre.batch = 12;
  pre.seq_len = 16;
  pre.lr = 8e-3F;
  train_lm(model, corpus, pre);

  Rt3Options options;
  options.timing_constraint_ms = t_ms;
  options.episodes = episodes;
  options.bp.num_blocks = 4;
  options.bp.prune_fraction = 0.35;
  options.space.psize = 8;
  options.episode_train.steps = 16;
  options.final_train.steps = 80;
  options.backbone_train.steps = 50;
  Rt3LmPipeline pipeline(model, corpus, options,
                         ModelSpec::paper_transformer());
  const Rt3Result result = pipeline.run();

  TablePrinter t({"level", "sparsity", "latency", "accuracy"});
  for (const auto& sub : result.levels) {
    t.add_row({sub.level_name, fmt_pct(sub.overall_sparsity),
               fmt_f(sub.latency_ms, 2) + " ms", fmt_pct(sub.accuracy)});
  }
  std::cout << t.str();
  pipeline.package(result).save(out);
  std::cout << "wrote " << out << "\n";
  return 0;
}

int cmd_simulate(const std::vector<std::string>& args) {
  const double capacity = arg_double(args, "--capacity", 5e4);
  const double t_ms = arg_double(args, "--t", 115.0);
  const VfTable table = VfTable::odroid_xu3_a7();
  const PowerModel power;
  const ModelSpec spec = ModelSpec::paper_transformer();
  const LatencyModel latency = paper_calibrated_latency();
  const std::vector<double> sparsities = paper_ladder_sparsities(latency, t_ms);
  DischargeConfig cfg;
  cfg.battery_capacity_mj = capacity;
  cfg.timing_constraint_ms = t_ms;
  cfg.software_reconfig = true;
  const DischargeStats stats = simulate_discharge(
      cfg, table, Governor::equal_tranches(paper_serve_ladder()), power,
      latency, spec, sparsities, ExecMode::kPattern);
  std::cout << "battery " << capacity << " mJ, T = " << t_ms << " ms\n"
            << "  runs            : " << stats.total_runs << "\n"
            << "  deadline misses : " << stats.deadline_misses << "\n"
            << "  level switches  : " << stats.switches << "\n"
            << "  active time     : " << fmt_f(stats.simulated_seconds, 1)
            << " s\n";
  return 0;
}

/// The observability sinks a serve/node session may write at exit.
/// Null pointers mean "not enabled"; paths pair with their pointers.
struct ObsOutputs {
  const TraceRecorder* trace = nullptr;
  std::string trace_path;
  const MetricsRegistry* metrics = nullptr;
  std::string metrics_path;
  std::string metrics_format = "json";  // json | prom
  const TelemetrySampler* telemetry = nullptr;
  std::string telemetry_path;
  const SloMonitor* slo = nullptr;
};

/// Writes every enabled observability artifact and prints the epilogue.
/// Telemetry series merge into the trace as counter tracks first, so the
/// exported Chrome JSON carries them.
void report_observability(const ObsOutputs& obs, TraceRecorder* trace_mut) {
  if (obs.telemetry != nullptr && trace_mut != nullptr) {
    obs.telemetry->export_counters(*trace_mut);
  }
  if (obs.trace != nullptr) {
    obs.trace->write_chrome_json(obs.trace_path);
    std::cout << "\ntrace: " << obs.trace->num_events() << " events -> "
              << obs.trace_path
              << " (Chrome trace-event JSON; load in ui.perfetto.dev)\n";
    if (obs.trace->dropped_events() > 0) {
      std::cout << "trace: " << obs.trace->dropped_events()
                << " events dropped at the --max-trace-events cap ("
                << obs.trace->max_events() << ")\n";
    }
  }
  if (obs.metrics != nullptr) {
    std::ofstream out(obs.metrics_path);
    check(out.good(), "cannot open metrics output file: " + obs.metrics_path);
    if (obs.metrics_format == "prom") {
      out << obs.metrics->to_prometheus();
    } else {
      out << obs.metrics->to_json() << "\n";
    }
    std::cout << "metrics: " << obs.metrics->size() << " series -> "
              << obs.metrics_path << " (" << obs.metrics_format << ")\n";
  }
  if (obs.telemetry != nullptr) {
    std::ofstream out(obs.telemetry_path);
    check(out.good(),
          "cannot open telemetry output file: " + obs.telemetry_path);
    out << "{\"telemetry\": " << obs.telemetry->to_json() << ", \"slo\": "
        << (obs.slo != nullptr ? obs.slo->to_json() : "[]") << "}\n";
    std::cout << "telemetry: " << obs.telemetry->num_series()
              << " series, " << obs.telemetry->num_points() << " points ("
              << obs.telemetry->batches_seen() << " batches) -> "
              << obs.telemetry_path << "\n";
  }
  if (obs.slo != nullptr) {
    std::cout << "slo: " << obs.slo->breaches() << " breach episode(s)";
    if (obs.slo->active_breaches() > 0) {
      std::cout << ", " << obs.slo->active_breaches()
                << " still open at session end";
    }
    std::cout << "\n";
    for (const SloEpisode& e : obs.slo->episodes()) {
      std::cout << "  [" << e.rule << "] " << fmt_f(e.start_ms, 0)
                << " ms -> "
                << (e.end_ms < 0 ? "end" : fmt_f(e.end_ms, 0) + " ms")
                << " (trigger " << fmt_f(e.trigger_value, 2) << ")\n";
    }
  }
}

/// The observability flags shared by `rt3 serve` and `rt3 node`.
struct ObsFlags {
  std::string trace_path;
  std::string metrics_path;
  std::string metrics_format;
  std::string telemetry_path;
  bool slo = false;
  std::int64_t sample_every = 1;
  std::int64_t max_trace_events = 0;
};

ObsFlags parse_obs_flags(const std::vector<std::string>& args) {
  ObsFlags f;
  f.trace_path = arg_string(args, "--trace", "");
  f.metrics_path = arg_string(args, "--metrics", "");
  f.metrics_format = arg_string(args, "--metrics-format", "json");
  check(f.metrics_format == "json" || f.metrics_format == "prom",
        "--metrics-format must be json or prom");
  f.telemetry_path = arg_string(args, "--telemetry", "");
  f.slo = arg_present(args, "--slo");
  f.sample_every = arg_int(args, "--sample-every", 1);
  f.max_trace_events = arg_int(args, "--max-trace-events", 0);
  return f;
}

/// The per-model session flags shared by `rt3 serve` and `rt3 node`.
ServeSessionConfig parse_session_config(const std::vector<std::string>& args) {
  ServeSessionConfig scfg;
  scfg.battery_capacity_mj = arg_double(args, "--capacity", 12'000.0);
  scfg.timing_constraint_ms = arg_double(args, "--t", 115.0);
  scfg.batch.max_batch_size = arg_int(args, "--batch", 2);
  scfg.batch.max_wait_ms = arg_double(args, "--wait", 20.0);
  scfg.backend =
      exec_backend_from_name(arg_string(args, "--backend", "analytic"));
  scfg.scheduler.policy =
      scheduling_policy_from_name(arg_string(args, "--policy", "fifo"));
  scfg.scheduler.prio_weight_ms = arg_double(args, "--prio-weight", 400.0);
  scfg.scheduler.aging_ms_per_ms = arg_double(args, "--aging", 0.5);
  scfg.governor =
      governor_kind_from_name(arg_string(args, "--governor", "ladder"));
  const std::string policy_path = arg_string(args, "--governor-policy", "");
  if (!policy_path.empty()) {
    scfg.governor = GovernorKind::kRl;
    scfg.governor_policy = RlGovernorPolicy::load(
        policy_path, Governor::equal_tranches(paper_serve_ladder()));
  } else {
    check(scfg.governor != GovernorKind::kRl,
          "--governor rl needs a trained artifact: rt3 train-governor, "
          "then --governor-policy FILE");
  }
  scfg.governor_margin = arg_double(args, "--governor-margin", 0.0);
  scfg.governor_shrink_batch = arg_int(args, "--governor-batch", 1);
  scfg.measured_threads = arg_int(args, "--threads", 2);
  check(scfg.measured_threads >= 1, "--threads must be >= 1");
  scfg.shed_expired = arg_present(args, "--shed");
  scfg.admit_feasible = arg_present(args, "--admit");
  return scfg;
}

/// The traffic flags shared by `rt3 serve` and `rt3 node`.
TrafficConfig parse_traffic_config(const std::vector<std::string>& args) {
  TrafficConfig tcfg;
  tcfg.priority_classes = arg_int(args, "--classes", 1);
  tcfg.deadline_slack_jitter = arg_double(args, "--jitter", 0.0);
  tcfg.tight_fraction = arg_double(args, "--tight-frac", 0.0);
  tcfg.tight_slack_ms = arg_double(args, "--tight-slack", 150.0);
  tcfg.scenario =
      traffic_scenario_from_name(arg_string(args, "--scenario", "burst"));
  tcfg.rate_rps = arg_double(args, "--rate", 3.0);
  tcfg.duration_ms = arg_double(args, "--duration", 60'000.0);
  tcfg.deadline_slack_ms = arg_double(args, "--slack", 350.0);
  tcfg.seed = static_cast<std::uint64_t>(arg_int(args, "--seed", 7));
  return tcfg;
}

int cmd_serve(const std::vector<std::string>& args) {
  ServeSessionConfig scfg = parse_session_config(args);
  TrafficConfig tcfg = parse_traffic_config(args);
  const std::int64_t producers = arg_int(args, "--producers", 2);
  const std::string tuning_path = arg_string(args, "--tuning", "");
  const ObsFlags obs_flags = parse_obs_flags(args);

  const std::vector<Request> schedule = generate_traffic(tcfg);
  ServeSession session(scfg);
  if (!tuning_path.empty()) {
    check(session.has_measured_backend(),
          "--tuning requires --backend measured");
    const TuningRecord record = TuningRecord::load(tuning_path);
    const std::int64_t applied =
        session.measured_backend().apply_tuning(record);
    std::cout << "tuning: applied " << applied << "/"
              << record.entries.size() << " entries from " << tuning_path
              << " (tuned under " << record.isa << ")\n";
  }
  // Wall stamps are fine here: the CLI is for humans, not byte-compare
  // tests (which construct their own recorder with record_wall off).
  TraceRecorder trace(
      TraceConfig{/*record_wall=*/true, obs_flags.max_trace_events});
  MetricsRegistry metrics;
  TelemetryConfig telemetry_cfg;
  telemetry_cfg.sample_every_batches = obs_flags.sample_every;
  TelemetrySampler telemetry(telemetry_cfg);
  SloMonitor slo(SloMonitor::default_rules());
  if (!obs_flags.trace_path.empty()) {
    session.server().set_trace(&trace);
  }
  if (!obs_flags.metrics_path.empty()) {
    session.server().set_metrics(&metrics);
  }
  if (!obs_flags.telemetry_path.empty()) {
    session.server().set_telemetry(&telemetry);
  }
  if (obs_flags.slo) {
    session.server().set_slo(&slo);
  }
  std::cout << "serving " << schedule.size() << " requests ("
            << traffic_scenario_name(tcfg.scenario) << ", "
            << fmt_f(tcfg.rate_rps, 1) << " req/s mean, "
            << fmt_f(tcfg.duration_ms / 1000.0, 0) << " s) over a "
            << fmt_f(scfg.battery_capacity_mj, 0) << " mJ battery, T = "
            << fmt_f(scfg.timing_constraint_ms, 0) << " ms, batch <= "
            << scfg.batch.max_batch_size << ", wait <= "
            << fmt_f(scfg.batch.max_wait_ms, 0) << " ms, " << producers
            << " producer threads, " << exec_backend_name(scfg.backend)
            << " backend, " << scheduling_policy_name(scfg.scheduler.policy)
            << " policy"
            << (scfg.governor != GovernorKind::kLadder
                    ? ", " + governor_kind_name(scfg.governor) + " governor"
                    : "")
            << (tcfg.priority_classes > 1
                                 ? ", " + std::to_string(tcfg.priority_classes) +
                                       " priority classes"
                                 : "")
            << (scfg.governor_margin > 0.0
                    ? ", governor margin " + fmt_pct(scfg.governor_margin)
                    : "")
            << (scfg.shed_expired ? ", shedding" : "")
            << (scfg.admit_feasible ? ", feasibility admission" : "")
            << "\n\n";
  const ServerStats stats =
      serve_concurrent(session.server(), schedule, producers);
  std::cout << stats.summary();
  std::cout << "  final engine lvl : " << session.engine().current_level()
            << " (0 = fastest)\n";
  if (session.has_measured_backend()) {
    std::cout << "  plan cache       : "
              << session.measured_backend().plans().num_levels()
              << " levels x "
              << session.measured_backend().plans().num_layers()
              << " layers pre-built in "
              << fmt_f(session.measured_backend().plans().build_wall_ms(), 2)
              << " ms; per-switch swap wall:";
    for (double ms : stats.plan_swap_ms) {
      std::cout << " " << fmt_f(ms, 4);
    }
    std::cout << " ms\n";
  }
  if (stats.completed == stats.submitted) {
    std::cout << "\nall " << stats.submitted << " requests served across "
              << stats.switches << " pattern-set switches — none lost.\n";
  } else if (stats.shed + stats.rejected > 0 &&
             stats.completed + stats.shed + stats.rejected ==
                 stats.submitted) {
    std::cout << "\n" << stats.shed << " hopeless requests shed and "
              << stats.rejected
              << " rejected at ingress (infeasible deadlines); the rest "
              << "served.\n";
  } else {
    std::cout << "\nbattery died mid-session: " << stats.dropped
              << " requests dropped (accounted above).\n";
  }
  ObsOutputs obs;
  obs.trace = obs_flags.trace_path.empty() ? nullptr : &trace;
  obs.trace_path = obs_flags.trace_path;
  obs.metrics = obs_flags.metrics_path.empty() ? nullptr : &metrics;
  obs.metrics_path = obs_flags.metrics_path;
  obs.metrics_format = obs_flags.metrics_format;
  obs.telemetry = obs_flags.telemetry_path.empty() ? nullptr : &telemetry;
  obs.telemetry_path = obs_flags.telemetry_path;
  obs.slo = obs_flags.slo ? &slo : nullptr;
  report_observability(obs, obs.trace != nullptr ? &trace : nullptr);
  return 0;
}

int cmd_node(const std::vector<std::string>& args) {
  ServeSessionConfig scfg = parse_session_config(args);
  TrafficConfig tcfg = parse_traffic_config(args);
  tcfg.num_models = arg_int(args, "--models", 3);
  const std::int64_t producers = arg_int(args, "--producers", 2);
  const ObsFlags obs_flags = parse_obs_flags(args);

  const std::vector<Request> schedule = generate_traffic(tcfg);
  NodeSession session(scfg, tcfg.num_models);
  TraceRecorder trace(
      TraceConfig{/*record_wall=*/true, obs_flags.max_trace_events});
  MetricsRegistry metrics;
  TelemetryConfig telemetry_cfg;
  telemetry_cfg.sample_every_batches = obs_flags.sample_every;
  TelemetrySampler telemetry(telemetry_cfg);
  SloMonitor slo(SloMonitor::default_rules());
  if (!obs_flags.trace_path.empty()) {
    session.node().set_trace(&trace);
  }
  if (!obs_flags.metrics_path.empty()) {
    session.node().set_metrics(&metrics);
  }
  if (!obs_flags.telemetry_path.empty()) {
    session.node().set_telemetry(&telemetry);
  }
  if (obs_flags.slo) {
    session.node().set_slo(&slo);
  }
  std::cout << "node: " << tcfg.num_models
            << " backbone-resident models behind ONE "
            << fmt_f(scfg.battery_capacity_mj, 0)
            << " mJ battery and governor; " << schedule.size()
            << " requests (" << traffic_scenario_name(tcfg.scenario) << ", "
            << fmt_f(tcfg.rate_rps, 1) << " req/s mean across models, "
            << fmt_f(tcfg.duration_ms / 1000.0, 0) << " s), T = "
            << fmt_f(scfg.timing_constraint_ms, 0) << " ms, batch <= "
            << scfg.batch.max_batch_size << " per model, "
            << scheduling_policy_name(scfg.scheduler.policy) << " policy, "
            << producers << " producer threads"
            << (scfg.shed_expired ? ", shedding" : "")
            << (scfg.admit_feasible ? ", feasibility admission" : "")
            << "\n\n";
  const NodeStats stats =
      serve_node_concurrent(session.node(), schedule, producers);
  std::cout << stats.summary();
  if (stats.completed + stats.shed + stats.rejected == stats.submitted &&
      stats.dropped == 0) {
    std::cout << "\nevery routed request was served"
              << (stats.shed + stats.rejected > 0 ? " or consciously "
                                                    "shed/rejected"
                                                  : "")
              << "; one battery step-down reconfigured all "
              << tcfg.num_models << " models at the same batch boundary.\n";
  } else {
    std::cout << "\nbattery died mid-session: " << stats.dropped
              << " requests dropped (accounted per model above).\n";
  }
  ObsOutputs obs;
  obs.trace = obs_flags.trace_path.empty() ? nullptr : &trace;
  obs.trace_path = obs_flags.trace_path;
  obs.metrics = obs_flags.metrics_path.empty() ? nullptr : &metrics;
  obs.metrics_path = obs_flags.metrics_path;
  obs.metrics_format = obs_flags.metrics_format;
  obs.telemetry = obs_flags.telemetry_path.empty() ? nullptr : &telemetry;
  obs.telemetry_path = obs_flags.telemetry_path;
  obs.slo = obs_flags.slo ? &slo : nullptr;
  report_observability(obs, obs.trace != nullptr ? &trace : nullptr);
  return 0;
}

/// Offline kernel autotuning over the canonical serve session's measured
/// backend: search winners are written as a TuningRecord text file that
/// `rt3 serve --tuning` bakes back into the plan cache.  With --load the
/// search is skipped and an existing record is applied + re-serialized,
/// which doubles as the format round-trip check in CI.
int cmd_tune(const std::vector<std::string>& args) {
  ServeSessionConfig scfg = parse_session_config(args);
  scfg.backend = ExecBackendKind::kMeasured;
  const std::string out = arg_string(args, "--out", "rt3_tuning.txt");
  const std::string load = arg_string(args, "--load", "");

  ServeSession session(scfg);
  MeasuredBackend& backend = session.measured_backend();

  if (!load.empty()) {
    const TuningRecord record = TuningRecord::load(load);
    const std::int64_t applied = backend.apply_tuning(record);
    record.save(out);
    std::cout << "loaded " << load << ": " << record.entries.size()
              << " entries (" << exec_mode_name(record.mode) << ", tuned "
              << "under " << record.isa << "), " << applied
              << " applied, re-serialized -> " << out << "\n";
    return 0;
  }

  TunerConfig tcfg;
  tcfg.samples = arg_int(args, "--samples", 24);
  tcfg.finalists = arg_int(args, "--finalists", 4);
  tcfg.repeats = arg_int(args, "--repeats", 3);
  tcfg.batch = arg_int(args, "--tune-batch", 1);
  tcfg.seed = static_cast<std::uint64_t>(arg_int(args, "--tune-seed", 42));
  const PlanCache& plans = backend.plans();
  std::cout << "tuning " << plans.num_layers() << " layers x "
            << plans.num_levels() << " levels ("
            << exec_mode_name(plans.mode()) << " kernels, "
            << simd_isa_name(active_simd_isa()) << " ISA): " << tcfg.samples
            << " samples + " << tcfg.finalists << " finalists per cell, "
            << "median of " << tcfg.repeats << "\n\n";
  Autotuner tuner(tcfg, backend);
  const TuningRecord record = tuner.tune();
  record.save(out);

  TablePrinter t({"layer", "level", "k_tile", "unroll", "threads",
                  "predicted (ms)", "measured (ms)"});
  for (const TuningEntry& e : record.entries) {
    t.add_row({std::to_string(e.layer), std::to_string(e.level),
               e.options.k_tile == 0 ? "auto"
                                     : std::to_string(e.options.k_tile),
               std::to_string(e.options.unroll),
               e.options.threads == 0 ? "all"
                                      : std::to_string(e.options.threads),
               fmt_f(e.predicted_ms, 4), fmt_f(e.measured_ms, 4)});
  }
  std::cout << t.str() << "\nwrote " << record.entries.size()
            << " entries -> " << out << "\n";
  return 0;
}

/// Offline training of the learned runtime governor: REINFORCE episodes
/// over full seeded serving sessions, trained weights written as an
/// "rt3-governor v1" text artifact for `rt3 serve --governor-policy`.
/// With --load the training is skipped and an existing artifact is
/// re-serialized, which doubles as the format round-trip check in CI.
int cmd_train_governor(const std::vector<std::string>& args) {
  const std::string out = arg_string(args, "--out", "rt3_governor.txt");
  const std::string load = arg_string(args, "--load", "");

  if (!load.empty()) {
    const std::shared_ptr<RlGovernorPolicy> policy = RlGovernorPolicy::load(
        load, Governor::equal_tranches(paper_serve_ladder()));
    policy->save(out);
    std::cout << "loaded " << load << ": hidden "
              << policy->config().hidden_dim << ", "
              << policy->num_levels()
              << " ladder rungs, re-serialized -> " << out << "\n";
    return 0;
  }

  GovernorTrainConfig tcfg;
  tcfg.episodes = arg_int(args, "--episodes", 30);
  tcfg.policy.hidden_dim = arg_int(args, "--hidden", 16);
  tcfg.policy.learning_rate =
      static_cast<float>(arg_double(args, "--lr", 5e-3));
  tcfg.policy.seed =
      static_cast<std::uint64_t>(arg_int(args, "--governor-seed", 11));
  tcfg.sample_seed =
      static_cast<std::uint64_t>(arg_int(args, "--sample-seed", 1234));
  tcfg.session = parse_session_config(args);
  tcfg.traffic = parse_traffic_config(args);
  tcfg.traffic_seed = tcfg.traffic.seed;
  // Surviving the whole arrival process earns full lifetime credit.
  tcfg.reward.reference_lifetime_ms = tcfg.traffic.duration_ms;

  std::cout << "training the rl governor: " << tcfg.episodes
            << " episodes over " << fmt_f(tcfg.session.battery_capacity_mj, 0)
            << " mJ / " << fmt_f(tcfg.traffic.duration_ms / 1000.0, 0)
            << " s sessions (steady/burst/diurnal round-robin, "
            << fmt_f(tcfg.traffic.rate_rps, 1) << " req/s), hidden "
            << tcfg.policy.hidden_dim << ", lr "
            << tcfg.policy.learning_rate << "\n\n";
  const GovernorTrainResult result = train_governor(tcfg);

  TablePrinter t({"episode", "reward", "advantage", "miss rate"});
  for (std::size_t e = 0; e < result.rewards.size(); ++e) {
    t.add_row({std::to_string(e), fmt_f(result.rewards[e], 4),
               fmt_f(result.advantages[e], 4),
               fmt_pct(result.miss_rates[e])});
  }
  std::cout << t.str();
  result.policy->save(out);
  std::cout << "\nwrote trained governor -> " << out
            << "  (serve with: rt3 serve --governor-policy " << out << ")\n";
  return 0;
}

/// Thin wrapper shelling out to tools/report.py: renders a session's
/// telemetry series + SLO breaches + miss attribution into a terminal
/// summary and/or a self-contained HTML report.
int cmd_report(const std::vector<std::string>& args) {
  std::string script;
  for (const char* candidate : {"tools/report.py", "../tools/report.py"}) {
    if (std::ifstream(candidate).good()) {
      script = candidate;
      break;
    }
  }
  if (script.empty()) {
    std::cerr << "rt3 report: cannot find tools/report.py (run from the "
                 "repo root or the build directory)\n";
    return 2;
  }
  std::string cmd = "python3 " + script;
  for (const std::string& a : args) {
    // POSIX single-quote escaping so paths with spaces survive.
    std::string quoted = "'";
    for (const char c : a) {
      if (c == '\'') {
        quoted += "'\\''";
      } else {
        quoted += c;
      }
    }
    quoted += "'";
    cmd += " " + quoted;
  }
  const int rc = std::system(cmd.c_str());
  return rc == 0 ? 0 : 1;
}

int usage() {
  std::cout <<
      "usage: rt3 <command> [options]\n"
      "  search   [--t MS] [--episodes N] [--out FILE]  run the AutoML search\n"
      "  info     FILE                                  inspect a package\n"
      "  simulate [--capacity MJ] [--t MS]              discharge simulation\n"
      "  serve    [--scenario steady|burst|diurnal] [--backend analytic|measured]\n"
      "           [--policy fifo|edf|edf-prio] [--classes N] [--prio-weight MS]\n"
      "           [--aging R] [--governor ladder|adaptive|rl]\n"
      "           [--governor-policy FILE] [--governor-margin F]\n"
      "           [--governor-batch N]\n"
      "           [--capacity MJ] [--t MS] [--rate RPS] [--duration MS]\n"
      "           [--slack MS] [--batch N] [--wait MS] [--threads N] [--shed]\n"
      "           [--admit] [--producers N] [--seed S] [--trace FILE]\n"
      "           [--max-trace-events N] [--metrics FILE]\n"
      "           [--metrics-format json|prom] [--telemetry FILE]\n"
      "           [--sample-every N] [--slo]\n"
      "                                 (flags accept --flag=value too)\n"
      "                                                 battery-aware serving\n"
      "  node     [--models N] + every serve flag       multi-model node:\n"
      "                                 N models, ONE battery/governor,\n"
      "                                 model-id routing + admission\n"
      "  tune     [--out FILE] [--load FILE] [--samples N] [--finalists N]\n"
      "           [--repeats N] [--tune-batch N] [--tune-seed S] + session\n"
      "           flags                                 autotune kernels and\n"
      "                                 write a tuning record for --tuning\n"
      "  train-governor [--episodes N] [--hidden N] [--lr F] [--out FILE]\n"
      "           [--load FILE] [--governor-seed S] [--sample-seed S] +\n"
      "           session/traffic flags          train the learned runtime\n"
      "                                 governor; serve it with --governor rl\n"
      "                                 --governor-policy FILE\n"
      "  report   [--trace F] [--telemetry F] [--metrics F] [--out F.html]\n"
      "                                                 render a session report\n"
      "  levels                                         print the V/F ladder\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string cmd = argv[1];
  // Accept both "--flag value" and "--flag=value" (shared helper, also
  // used by the bench executables).
  const std::vector<std::string> args = split_flag_args(argc, argv, 2);
  try {
    if (cmd == "levels") {
      return cmd_levels();
    }
    if (cmd == "info") {
      if (args.empty()) {
        return usage();
      }
      return cmd_info(args[0]);
    }
    if (cmd == "search") {
      return cmd_search(args);
    }
    if (cmd == "simulate") {
      return cmd_simulate(args);
    }
    if (cmd == "serve") {
      return cmd_serve(args);
    }
    if (cmd == "node") {
      return cmd_node(args);
    }
    if (cmd == "tune") {
      return cmd_tune(args);
    }
    if (cmd == "train-governor") {
      return cmd_train_governor(args);
    }
    if (cmd == "report") {
      return cmd_report(args);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
