#include "exec/plan.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/wall_time.hpp"

namespace rt3 {
namespace {

/// Backbone-masked weight values of a layer (dense copy).
Tensor masked_weight_of(const Linear& layer, const Tensor* mask) {
  const Tensor& w = layer.weight().value();
  if (mask == nullptr) {
    return w;
  }
  check(mask->shape() == w.shape(), "PlanCache: mask/weight shape mismatch");
  return mul(w, *mask);
}

}  // namespace

CompiledPattern CompiledPattern::compile(const Pattern& pattern) {
  CompiledPattern out;
  out.psize = pattern.psize();
  out.row_ptr.reserve(static_cast<std::size_t>(out.psize) + 1);
  out.row_ptr.push_back(0);
  // The ascending flat kept-index list splits into per-row CSR runs.
  const std::vector<std::int64_t> kept = pattern.kept_indices();
  std::size_t i = 0;
  for (std::int64_t r = 0; r < out.psize; ++r) {
    while (i < kept.size() && kept[i] < (r + 1) * out.psize) {
      out.cols.push_back(static_cast<std::int32_t>(kept[i] % out.psize));
      ++i;
    }
    out.row_ptr.push_back(static_cast<std::int32_t>(out.cols.size()));
  }
  return out;
}

PatternPlan PatternPlan::build(const Tensor& masked_weight,
                               const PatternSet& set) {
  check(masked_weight.dim() == 2, "PatternPlan: need a 2-D weight");
  check(!set.patterns.empty(), "PatternPlan: empty pattern set");
  PatternPlan plan;
  plan.rows = masked_weight.size(0);
  plan.cols = masked_weight.size(1);
  plan.psize = set.psize();
  const std::int64_t p = plan.psize;
  plan.tiles_r = (plan.rows + p - 1) / p;
  plan.tiles_c = (plan.cols + p - 1) / p;
  plan.compiled.reserve(set.patterns.size());
  for (const Pattern& pat : set.patterns) {
    plan.compiled.push_back(CompiledPattern::compile(pat));
  }
  plan.tiles.reserve(static_cast<std::size_t>(plan.tiles_r * plan.tiles_c));

  Tensor tile({p, p});
  const float* w = masked_weight.data();
  for (std::int64_t tr = 0; tr < plan.tiles_r; ++tr) {
    for (std::int64_t tc = 0; tc < plan.tiles_c; ++tc) {
      const std::int64_t rmax = std::min(p, plan.rows - tr * p);
      const std::int64_t cmax = std::min(p, plan.cols - tc * p);
      // Zero-padded tile extraction: out-of-bounds cells contribute nothing
      // to retained L2, so edge assignment follows the same rule.
      tile.fill(0.0F);
      for (std::int64_t r = 0; r < rmax; ++r) {
        for (std::int64_t c = 0; c < cmax; ++c) {
          tile[r * p + c] = w[(tr * p + r) * plan.cols + tc * p + c];
        }
      }
      std::size_t best = 0;
      double best_l2 = -1.0;
      for (std::size_t pi = 0; pi < set.patterns.size(); ++pi) {
        const double l2 = set.patterns[pi].retained_l2(tile);
        if (l2 > best_l2) {
          best_l2 = l2;
          best = pi;
        }
      }

      PatternTile t;
      t.value_offset = static_cast<std::int64_t>(plan.values.size());
      const CompiledPattern& cp = plan.compiled[best];
      if (rmax == p && cmax == p) {
        t.pattern_id = static_cast<std::int32_t>(best);
        for (std::int64_t r = 0; r < p; ++r) {
          for (std::int32_t i = cp.row_ptr[static_cast<std::size_t>(r)];
               i < cp.row_ptr[static_cast<std::size_t>(r) + 1]; ++i) {
            plan.values.push_back(
                tile[r * p + cp.cols[static_cast<std::size_t>(i)]]);
          }
        }
      } else {
        // Clipped edge tile: private CSR over the in-bounds kept cells.
        t.row_ptr.push_back(0);
        for (std::int64_t r = 0; r < rmax; ++r) {
          for (std::int32_t i = cp.row_ptr[static_cast<std::size_t>(r)];
               i < cp.row_ptr[static_cast<std::size_t>(r) + 1]; ++i) {
            const std::int32_t c = cp.cols[static_cast<std::size_t>(i)];
            if (c < cmax) {
              t.cols.push_back(c);
              plan.values.push_back(tile[r * p + c]);
            }
          }
          t.row_ptr.push_back(static_cast<std::int32_t>(t.cols.size()));
        }
      }
      plan.tiles.push_back(std::move(t));
    }
  }
  return plan;
}

IrregularPlan IrregularPlan::build(const Tensor& masked_weight) {
  check(masked_weight.dim() == 2, "IrregularPlan: need a 2-D weight");
  IrregularPlan plan;
  plan.rows = masked_weight.size(0);
  plan.cols = masked_weight.size(1);
  plan.row_start.reserve(static_cast<std::size_t>(plan.rows) + 1);
  const float* w = masked_weight.data();
  for (std::int64_t r = 0; r < plan.rows; ++r) {
    plan.row_start.push_back(static_cast<std::int64_t>(plan.values.size()));
    for (std::int64_t c = 0; c < plan.cols; ++c) {
      const float v = w[r * plan.cols + c];
      if (v != 0.0F) {
        plan.row_idx.push_back(static_cast<std::int32_t>(r));
        plan.col_idx.push_back(static_cast<std::int32_t>(c));
        plan.values.push_back(v);
      }
    }
  }
  plan.row_start.push_back(static_cast<std::int64_t>(plan.values.size()));
  return plan;
}

Tensor IrregularPlan::to_dense() const {
  Tensor out({rows, cols});
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[static_cast<std::int64_t>(row_idx[i]) * cols + col_idx[i]] =
        values[i];
  }
  return out;
}

double IrregularPlan::sparsity() const {
  return 1.0 - static_cast<double>(values.size()) /
                   static_cast<double>(rows * cols);
}

const std::int32_t* PatternPlan::tile_row_ptr(const PatternTile& tile) const {
  return tile.pattern_id >= 0
             ? compiled[static_cast<std::size_t>(tile.pattern_id)]
                   .row_ptr.data()
             : tile.row_ptr.data();
}

const std::int32_t* PatternPlan::tile_cols(const PatternTile& tile) const {
  return tile.pattern_id >= 0
             ? compiled[static_cast<std::size_t>(tile.pattern_id)].cols.data()
             : tile.cols.data();
}

Tensor PatternPlan::to_dense() const {
  Tensor out({rows, cols});
  for (std::int64_t tr = 0; tr < tiles_r; ++tr) {
    for (std::int64_t tc = 0; tc < tiles_c; ++tc) {
      const PatternTile& tile =
          tiles[static_cast<std::size_t>(tr * tiles_c + tc)];
      const std::int32_t* row_ptr = tile_row_ptr(tile);
      const std::int32_t* tcols = tile_cols(tile);
      const std::int64_t rmax = std::min(psize, rows - tr * psize);
      std::int64_t vi = tile.value_offset;
      for (std::int64_t r = 0; r < rmax; ++r) {
        for (std::int32_t i = row_ptr[r]; i < row_ptr[r + 1]; ++i) {
          out[(tr * psize + r) * cols + tc * psize + tcols[i]] =
              values[static_cast<std::size_t>(vi++)];
        }
      }
    }
  }
  return out;
}

double PatternPlan::sparsity() const {
  return 1.0 - static_cast<double>(values.size()) /
                   static_cast<double>(rows * cols);
}

Tensor LayerPlan::dense_equivalent() const {
  switch (mode) {
    case ExecMode::kDense:
      return dense_weight;
    case ExecMode::kBlock:
      return block->to_dense();
    case ExecMode::kPattern:
      return pattern->to_dense();
    case ExecMode::kIrregular:
      return irregular->to_dense();
  }
  throw CheckError("LayerPlan: unsupported mode");
}

double LayerPlan::sparsity() const {
  switch (mode) {
    case ExecMode::kDense:
      return dense_weight.sparsity();
    case ExecMode::kBlock:
      return block->sparsity();
    case ExecMode::kPattern:
      return pattern->sparsity();
    case ExecMode::kIrregular:
      return irregular->sparsity();
  }
  throw CheckError("LayerPlan: unsupported mode");
}

PlanCache::PlanCache(ExecMode mode, const std::vector<Linear*>& layers,
                     const std::vector<Tensor>& backbone_masks,
                     const std::vector<PatternSet>& sets,
                     std::int64_t num_levels, std::int64_t bp_blocks)
    : mode_(mode) {
  check(!layers.empty(), "PlanCache: no layers");
  check(backbone_masks.empty() || backbone_masks.size() == layers.size(),
        "PlanCache: one backbone mask per layer (or none)");
  if (mode == ExecMode::kPattern) {
    check(!sets.empty(), "PlanCache: pattern mode needs pattern sets");
    num_levels = static_cast<std::int64_t>(sets.size());
  }
  if (mode == ExecMode::kIrregular && !sets.empty()) {
    num_levels = static_cast<std::int64_t>(sets.size());
  }
  check(num_levels >= 1, "PlanCache: need at least one level");
  check(bp_blocks >= 1, "PlanCache: need at least one row block");

  const auto t0 = wall_now();
  plans_.resize(static_cast<std::size_t>(num_levels));
  for (std::int64_t level = 0; level < num_levels; ++level) {
    auto& level_plans = plans_[static_cast<std::size_t>(level)];
    level_plans.reserve(layers.size());
    for (std::size_t li = 0; li < layers.size(); ++li) {
      const Tensor* mask =
          backbone_masks.empty() ? nullptr : &backbone_masks[li];
      LayerPlan plan;
      plan.mode = mode;
      plan.rows = layers[li]->weight().value().size(0);
      plan.cols = layers[li]->weight().value().size(1);
      switch (mode) {
        case ExecMode::kDense:
          // Dense executes the raw weights: no pruning, no mask.
          plan.dense_weight = layers[li]->weight().value();
          break;
        case ExecMode::kBlock: {
          const Tensor wb = masked_weight_of(*layers[li], mask);
          const std::int64_t nb =
              plan.rows % bp_blocks == 0 ? bp_blocks : 1;
          plan.block = BlockPrunedMatrix::from_dense(wb, nb);
          break;
        }
        case ExecMode::kPattern: {
          const Tensor wb = masked_weight_of(*layers[li], mask);
          plan.pattern = PatternPlan::build(
              wb, sets[static_cast<std::size_t>(level)]);
          break;
        }
        case ExecMode::kIrregular: {
          // With pattern sets: the level's pattern-pruned nonzeros as COO
          // triples (regular-vs-irregular execution of identical weights).
          // Without: the backbone-masked weight, identical per level.
          const Tensor wb = masked_weight_of(*layers[li], mask);
          plan.irregular = IrregularPlan::build(
              sets.empty()
                  ? wb
                  : PatternPlan::build(
                        wb, sets[static_cast<std::size_t>(level)])
                        .to_dense());
          break;
        }
      }
      level_plans.push_back(std::move(plan));
    }
  }
  build_wall_ms_ = wall_ms_since(t0);
  active_.assign(layers.size(), nullptr);
}

double PlanCache::swap_to(std::int64_t level) {
  check(level >= 0 && level < num_levels(), "PlanCache: level out of range");
  if (level == active_level_) {
    return 0.0;
  }
  const auto t0 = wall_now();
  const auto& level_plans = plans_[static_cast<std::size_t>(level)];
  for (std::size_t li = 0; li < level_plans.size(); ++li) {
    active_[li] = &level_plans[li];
  }
  active_level_ = level;
  return wall_ms_since(t0);
}

const LayerPlan& PlanCache::active_plan(std::int64_t layer) const {
  check(layer >= 0 && layer < num_layers(), "PlanCache: layer out of range");
  const LayerPlan* plan = active_[static_cast<std::size_t>(layer)];
  check(plan != nullptr, "PlanCache: no active level (call swap_to first)");
  return *plan;
}

const LayerPlan& PlanCache::plan(std::int64_t layer, std::int64_t level) const {
  check(layer >= 0 && layer < num_layers(), "PlanCache: layer out of range");
  check(level >= 0 && level < num_levels(), "PlanCache: level out of range");
  return plans_[static_cast<std::size_t>(level)]
               [static_cast<std::size_t>(layer)];
}

void PlanCache::set_tuned(std::int64_t layer, std::int64_t level,
                          const KernelOptions& options) {
  check(layer >= 0 && layer < num_layers(), "PlanCache: layer out of range");
  check(level >= 0 && level < num_levels(), "PlanCache: level out of range");
  check(options.k_tile >= 0 && options.row_grain >= 1 &&
            options.unroll >= 1 && options.threads >= 0,
        "PlanCache: bad tuned kernel options");
  plans_[static_cast<std::size_t>(level)][static_cast<std::size_t>(layer)]
      .tuned = options;
}

double PlanCache::level_sparsity(std::int64_t level) const {
  check(level >= 0 && level < num_levels(), "PlanCache: level out of range");
  double zero_weighted = 0.0;
  double total = 0.0;
  for (const LayerPlan& plan : plans_[static_cast<std::size_t>(level)]) {
    const double n = static_cast<double>(plan.rows * plan.cols);
    zero_weighted += plan.sparsity() * n;
    total += n;
  }
  return total > 0.0 ? zero_weighted / total : 0.0;
}

}  // namespace rt3
