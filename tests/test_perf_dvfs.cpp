// Tests for the performance models (latency, switch cost) and the DVFS
// substrate (V/F table, power, battery, governor, number of runs).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "dvfs/dvfs.hpp"
#include "perf/latency_model.hpp"
#include "perf/model_spec.hpp"

namespace rt3 {
namespace {

TEST(ModelSpec, PaperTransformerShapes) {
  const ModelSpec spec = ModelSpec::paper_transformer();
  EXPECT_GT(spec.total_weights(), 40'000'000);  // dominated by 28785x800 head
  EXPECT_GT(spec.dense_macs(), 1e9);
  bool has_head = false;
  for (const auto& l : spec.layers) {
    if (l.name == "lm_head") {
      has_head = true;
      EXPECT_EQ(l.rows * l.cols, 800 * 28785);
    }
  }
  EXPECT_TRUE(has_head);
}

TEST(ModelSpec, PaperDistilBertShapes) {
  const ModelSpec spec = ModelSpec::paper_distilbert();
  // 6 layers x (4 attn + 2 ffn) + pre-classifier.
  EXPECT_EQ(spec.layers.size(), 37U);
  EXPECT_EQ(spec.tokens_per_inference, 128);
}

TEST(ModelSpec, TileCount) {
  ModelSpec spec;
  spec.layers.push_back({"a", 100, 100, 1});
  spec.layers.push_back({"b", 150, 100, 1});  // rounds up to 2x1 tiles
  EXPECT_EQ(spec.num_tiles(100), 1 + 2);
}

TEST(LatencyModel, InverseFrequencyScaling) {
  // The paper's Table II shows exact 1/f scaling (114.59 -> 160.43 ->
  // 200.54 ms across 1400/1000/800 MHz).
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel model;
  const double l14 = model.latency_ms(spec, 0.5, ExecMode::kBlock, 1400.0);
  const double l10 = model.latency_ms(spec, 0.5, ExecMode::kBlock, 1000.0);
  const double l08 = model.latency_ms(spec, 0.5, ExecMode::kBlock, 800.0);
  EXPECT_NEAR(l10 / l14, 1.4, 1e-9);
  EXPECT_NEAR(l08 / l14, 1.75, 1e-9);
}

TEST(LatencyModel, MonotoneInSparsity) {
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel model;
  double prev = model.latency_ms(spec, 0.0, ExecMode::kPattern, 1000.0);
  for (double s : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    const double cur = model.latency_ms(spec, s, ExecMode::kPattern, 1000.0);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(LatencyModel, ExecModeOverheadOrdering) {
  EXPECT_LT(exec_mode_overhead(ExecMode::kDense),
            exec_mode_overhead(ExecMode::kBlock));
  EXPECT_LT(exec_mode_overhead(ExecMode::kBlock),
            exec_mode_overhead(ExecMode::kPattern));
  EXPECT_LT(exec_mode_overhead(ExecMode::kPattern),
            exec_mode_overhead(ExecMode::kIrregular));
}

TEST(LatencyModel, CalibrationHitsAnchor) {
  // Calibrate against the Table II anchor: BP-only model (64.26% sparsity)
  // at F-mode (1400 MHz) = 114.59 ms.
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel model;
  model.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);
  EXPECT_NEAR(model.latency_ms(spec, 0.6426, ExecMode::kBlock, 1400.0),
              114.59, 1e-6);
  // And the N/E-mode latencies then match Table II's 160.43 / 200.54.
  EXPECT_NEAR(model.latency_ms(spec, 0.6426, ExecMode::kBlock, 1000.0),
              160.43, 0.05);
  EXPECT_NEAR(model.latency_ms(spec, 0.6426, ExecMode::kBlock, 800.0),
              200.54, 0.05);
}

TEST(LatencyModel, SparsityForLatencyInvertsLatency) {
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel model;
  model.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);
  const double target = 100.0;
  const double s =
      model.sparsity_for_latency(spec, ExecMode::kPattern, 1000.0, target);
  EXPECT_NEAR(model.latency_ms(spec, s, ExecMode::kPattern, 1000.0), target,
              0.01);
}

TEST(LatencyModel, SparsityForLatencyEdgeCases) {
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel model;
  // Huge budget -> dense suffices.
  EXPECT_DOUBLE_EQ(
      model.sparsity_for_latency(spec, ExecMode::kDense, 1400.0, 1e9), 0.0);
  // Impossible budget -> capped at 0.99.
  EXPECT_DOUBLE_EQ(
      model.sparsity_for_latency(spec, ExecMode::kDense, 1400.0, 1e-9), 0.99);
}

TEST(SwitchCost, PatternSwitchOrdersOfMagnitudeFaster) {
  const ModelSpec spec = ModelSpec::paper_transformer();
  SwitchCostModel model;
  const double full = model.full_model_switch_ms(spec.dense_bytes());
  const double pattern =
      model.pattern_set_switch_ms(4 * 1250 + spec.num_tiles(100) * 2,
                                  spec.num_tiles(100));
  EXPECT_GT(full / pattern, 1000.0);  // the paper's ">1000x speedup" claim
  EXPECT_GT(full, 10'000.0);          // tens of seconds
  EXPECT_LT(pattern, 100.0);          // milliseconds
}

TEST(VfTable, MatchesPaperTableI) {
  const VfTable table = VfTable::odroid_xu3_a7();
  ASSERT_EQ(table.size(), 6);
  EXPECT_EQ(table.level(0).freq_mhz, 400.0);
  EXPECT_EQ(table.level(0).volt_mv, 916.25);
  EXPECT_EQ(table.level(5).freq_mhz, 1400.0);
  EXPECT_EQ(table.level(5).volt_mv, 1240.0);
  EXPECT_THROW(table.level(6), CheckError);
}

TEST(VfTable, PaperEvalLevels) {
  const auto levels = VfTable::paper_eval_levels();
  const VfTable table = VfTable::odroid_xu3_a7();
  ASSERT_EQ(levels.size(), 3U);
  EXPECT_EQ(table.level(levels[0]).name, "l3");
  EXPECT_EQ(table.level(levels[2]).name, "l6");
}

TEST(PowerModel, MonotoneInLevel) {
  const VfTable table = VfTable::odroid_xu3_a7();
  PowerModel power;
  double prev = 0.0;
  for (std::int64_t i = 0; i < table.size(); ++i) {
    const double p = power.power_mw(table.level(i));
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerModel, EnergyScalesWithDuration) {
  const VfTable table = VfTable::odroid_xu3_a7();
  PowerModel power;
  const auto& l6 = table.level(5);
  EXPECT_NEAR(power.energy_mj(l6, 200.0), 2.0 * power.energy_mj(l6, 100.0),
              1e-9);
}

TEST(PowerModel, RealisticA7ClusterPower) {
  // ~400-800 mW at 1.4 GHz for the A7 cluster.
  PowerModel power;
  const double p = power.power_mw(VfTable::odroid_xu3_a7().level(5));
  EXPECT_GT(p, 300.0);
  EXPECT_LT(p, 1000.0);
}

TEST(NumberOfRuns, InverseInPowerAndLatency) {
  const double runs = number_of_runs(1000.0, 500.0, 100.0);
  EXPECT_NEAR(runs, 1000.0 / (500.0 * 100.0 / 1000.0), 1e-9);
  EXPECT_NEAR(number_of_runs(1000.0, 250.0, 100.0), 2.0 * runs, 1e-9);
  EXPECT_NEAR(number_of_runs(1000.0, 500.0, 50.0), 2.0 * runs, 1e-9);
}

TEST(NumberOfRuns, LowerVfLevelYieldsMoreRunsOnPaperLevels) {
  // The point of DVFS: the SAME cycle count costs less energy at a lower
  // V/F level (latency grows 1/f but dynamic power falls faster, ~V^2 f).
  // This holds across the paper's evaluation levels {l3, l4, l6}; at the
  // very bottom of the ladder (l1/l2, nearly equal voltage) static power
  // dominates and the trend legitimately flattens, so we assert only the
  // levels the paper uses.
  const VfTable table = VfTable::odroid_xu3_a7();
  PowerModel power;
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel lat;
  lat.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);
  const double budget = 1e6;
  double prev_runs = 0.0;
  for (std::int64_t i : {5, 3, 2}) {  // l6 -> l4 -> l3
    const auto& level = table.level(i);
    const double ms =
        lat.latency_ms(spec, 0.6426, ExecMode::kBlock, level.freq_mhz);
    const double runs = number_of_runs(budget, power.power_mw(level), ms);
    EXPECT_GT(runs, prev_runs) << "level " << level.name;
    prev_runs = runs;
  }
}

TEST(Battery, DrainAndEmpty) {
  Battery battery(100.0);
  EXPECT_TRUE(battery.drain(60.0));
  EXPECT_NEAR(battery.fraction(), 0.4, 1e-12);
  EXPECT_FALSE(battery.drain(50.0));  // not enough left
  EXPECT_TRUE(battery.empty());
  battery.recharge();
  EXPECT_NEAR(battery.fraction(), 1.0, 1e-12);
}

TEST(Governor, EqualTranchesSteps) {
  const Governor gov = Governor::equal_tranches({5, 3, 2});
  EXPECT_EQ(gov.level_for(1.0), 5);
  EXPECT_EQ(gov.level_for(0.8), 5);
  EXPECT_EQ(gov.level_for(0.5), 3);
  EXPECT_EQ(gov.level_for(0.2), 2);
  EXPECT_EQ(gov.level_for(0.0), 2);
}

TEST(Governor, SingleLevelAlways) {
  const Governor gov = Governor::equal_tranches({4});
  EXPECT_EQ(gov.level_for(1.0), 4);
  EXPECT_EQ(gov.level_for(0.01), 4);
}

TEST(Governor, RejectsNonDescendingThresholds) {
  EXPECT_THROW(Governor({1, 2, 3}, {0.3, 0.6}), CheckError);
  EXPECT_THROW(Governor({1, 2}, {0.5, 0.2}), CheckError);
}

// Table II reproduction logic at unit scale: with a fixed energy budget
// split into three tranches, HW+SW reconfiguration beats HW-only beats
// none.
TEST(Integration, ReconfigurationOrderingMatchesTableII) {
  const VfTable table = VfTable::odroid_xu3_a7();
  PowerModel power;
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel lat;
  lat.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);
  const double budget = 1e6;  // mJ

  const auto level = [&](std::int64_t i) -> const VfLevel& {
    return table.level(i);
  };

  // E1: all energy at F-mode with M1 (64.26% sparsity).
  const double e1_runs =
      number_of_runs(budget, power.power_mw(level(5)),
                     lat.latency_ms(spec, 0.6426, ExecMode::kBlock, 1400.0));

  // E2: thirds of the budget at F/N/E modes, same model.
  double e2_runs = 0.0;
  for (std::int64_t li : {5, 3, 2}) {
    e2_runs += number_of_runs(
        budget / 3.0, power.power_mw(level(li)),
        lat.latency_ms(spec, 0.6426, ExecMode::kBlock, level(li).freq_mhz));
  }

  // E3: thirds of the budget, each mode running a model re-pruned to just
  // meet T=115 ms at that mode's frequency.
  double e3_runs = 0.0;
  for (std::int64_t li : {5, 3, 2}) {
    const double s = std::max(
        0.6426, lat.sparsity_for_latency(spec, ExecMode::kPattern,
                                         level(li).freq_mhz, 115.0));
    e3_runs += number_of_runs(
        budget / 3.0, power.power_mw(level(li)),
        lat.latency_ms(spec, s, ExecMode::kPattern, level(li).freq_mhz));
  }

  EXPECT_GT(e2_runs, e1_runs);          // DVFS helps (Table II: +17.3%)
  EXPECT_GT(e3_runs, e2_runs);          // SW reconfig helps more
  EXPECT_GT(e3_runs / e1_runs, 1.4);    // headline factor (paper: 1.78x)
  // But E2's N/E modes MISS the deadline, E3 meets it everywhere.
  EXPECT_GT(lat.latency_ms(spec, 0.6426, ExecMode::kBlock, 1000.0), 115.0);
  EXPECT_GT(lat.latency_ms(spec, 0.6426, ExecMode::kBlock, 800.0), 115.0);
}

}  // namespace
}  // namespace rt3
