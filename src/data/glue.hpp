// Synthetic analogs of the nine GLUE tasks used in the paper's DistilBERT
// experiments (Fig. 5, Tables III & IV).
//
// Each task generates token sequences with a planted class/score signal and
// is scored with the same metric type GLUE uses for the real task (accuracy,
// F1, Matthews correlation, Spearman correlation).  Per-task signal/noise
// levels are tuned so an un-pruned model's score lands near the DistilBERT
// scores the paper plots, giving the pruning experiments a comparable
// dynamic range.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace rt3 {

/// The nine GLUE tasks, in the order of the paper's Fig. 5.
enum class GlueTask : std::uint8_t {
  kMnli,
  kQqp,
  kQnli,
  kSst2,
  kCola,
  kStsB,
  kMrpc,
  kRte,
  kWnli,
};

/// GLUE scoring convention for a task (matching paper Section IV-A).
enum class MetricType : std::uint8_t {
  kAccuracy,  // SST-2, QNLI, RTE, WNLI, MNLI
  kF1,        // QQP, MRPC
  kMcc,       // CoLA
  kSpearman,  // STS-B
};

/// One classification/regression example (single packed token sequence; the
/// two-sentence tasks are packed as "a .. a SEP b .. b").
struct GlueExample {
  std::vector<std::int64_t> tokens;
  std::int64_t label = 0;  // classification target
  float score = 0.0F;      // regression target (STS-B), in [0, 5]
};

/// Generation parameters for one task.
struct GlueTaskConfig {
  GlueTask task = GlueTask::kRte;
  std::int64_t vocab_size = 256;
  std::int64_t seq_len = 24;
  std::int64_t train_size = 1600;
  std::int64_t dev_size = 400;
  std::uint64_t seed = 2;
};

/// A generated dataset for a single task.
class GlueDataset {
 public:
  explicit GlueDataset(const GlueTaskConfig& config);

  GlueTask task() const { return config_.task; }
  MetricType metric() const;
  /// 1 for regression (STS-B), otherwise the number of classes.
  std::int64_t num_classes() const;
  bool is_regression() const { return config_.task == GlueTask::kStsB; }

  const std::vector<GlueExample>& train() const { return train_; }
  const std::vector<GlueExample>& dev() const { return dev_; }
  const GlueTaskConfig& config() const { return config_; }

  /// Scores predictions on the dev set with the task's GLUE metric.
  /// For classification pass predicted labels; for regression pass scores
  /// through `score_predictions`.
  double evaluate(const std::vector<std::int64_t>& predicted_labels) const;
  double evaluate_regression(const std::vector<double>& predicted_scores) const;

  static std::string task_name(GlueTask task);
  static std::string metric_name(MetricType metric);

 private:
  GlueExample generate_example(Rng& rng) const;

  GlueTaskConfig config_;
  std::vector<GlueExample> train_;
  std::vector<GlueExample> dev_;
};

/// Per-task difficulty profile (label-noise rate, signal density, classes).
/// Exposed for tests: noisier tasks (RTE, WNLI, CoLA) must stay noisier.
struct GlueTaskProfile {
  std::int64_t num_classes = 2;
  double label_noise = 0.1;     // probability the planted label is flipped
  double signal_density = 0.3;  // fraction of tokens carrying class signal
};

GlueTaskProfile glue_task_profile(GlueTask task);

}  // namespace rt3
