#include "nn/linear.hpp"

#include <cmath>

#include "common/check.hpp"

namespace rt3 {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  check(in_features > 0 && out_features > 0, "Linear: bad dimensions");
  // Xavier/Glorot init.
  const float bound =
      std::sqrt(6.0F / static_cast<float>(in_features + out_features));
  weight_ = Var(
      Tensor::rand_uniform({in_features, out_features}, rng, -bound, bound),
      /*requires_grad=*/true);
  bias_ = Var(Tensor::zeros({out_features}), /*requires_grad=*/true);
}

Var Linear::forward(const Var& x) const {
  const Shape in_shape = x.shape();
  check(!in_shape.empty() && in_shape.back() == in_features_,
        "Linear: input feature dimension mismatch");

  Var w = weight_;
  if (mask_.has_value()) {
    w = mul_const(weight_, *mask_);
  }

  Var x2 = x;
  const bool need_flatten = in_shape.size() != 2;
  std::int64_t rows = 1;
  for (std::size_t d = 0; d + 1 < in_shape.size(); ++d) {
    rows *= in_shape[d];
  }
  if (need_flatten) {
    x2 = reshape(x, {rows, in_features_});
  }
  Var y = matmul(x2, w);
  if (has_bias_) {
    y = add(y, bias_);
  }
  if (need_flatten) {
    Shape out_shape = in_shape;
    out_shape.back() = out_features_;
    y = reshape(y, std::move(out_shape));
  }
  return y;
}

void Linear::collect_params(const std::string& prefix,
                            std::vector<NamedParam>& out) const {
  out.push_back({prefix + "weight", weight_});
  if (has_bias_) {
    out.push_back({prefix + "bias", bias_});
  }
}

void Linear::set_mask(Tensor mask) {
  check(mask.shape() == weight_.shape(), "Linear::set_mask: shape mismatch");
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    check(mask[i] == 0.0F || mask[i] == 1.0F,
          "Linear::set_mask: mask must be binary");
  }
  // Forward-time masking only: the underlying weight values stay resident
  // so a different pattern set can re-expose them (RT3's lightweight
  // switch).  Call apply_mask_to_weights() explicitly to hard-zero, e.g.
  // when exporting a backbone.
  mask_ = std::move(mask);
}

void Linear::clear_mask() { mask_.reset(); }

const Tensor& Linear::mask() const {
  check(mask_.has_value(), "Linear::mask: no mask installed");
  return *mask_;
}

double Linear::mask_sparsity() const {
  if (!mask_.has_value()) {
    return 0.0;
  }
  return mask_->sparsity();
}

void Linear::apply_mask_to_weights() {
  if (!mask_.has_value()) {
    return;
  }
  Tensor& w = weight_.mutable_value();
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    w[i] *= (*mask_)[i];
  }
}

}  // namespace rt3
