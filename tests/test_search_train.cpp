// Tests for search-space generation and the Fig.-2 joint trainer.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "data/corpus.hpp"
#include "nn/transformer_lm.hpp"
#include "pruning/model_pruner.hpp"
#include "search/space.hpp"
#include "train/trainer.hpp"

namespace rt3 {
namespace {

class SpaceFixture : public ::testing::Test {
 protected:
  SpaceFixture() : rng_(1) {
    for (int i = 0; i < 4; ++i) {
      layers_.push_back(std::make_unique<Linear>(32, 32, rng_));
      raw_.push_back(layers_.back().get());
    }
    spec_ = ModelSpec::paper_transformer();
    latency_.calibrate(spec_, 0.6426, ExecMode::kBlock, 1400.0, 114.59);
    const VfTable table = VfTable::odroid_xu3_a7();
    for (std::int64_t i : {5, 3, 2}) {
      levels_.push_back(table.level(i));
    }
  }
  Rng rng_;
  std::vector<std::unique_ptr<Linear>> layers_;
  std::vector<Linear*> raw_;
  ModelSpec spec_;
  LatencyModel latency_;
  std::vector<VfLevel> levels_;
};

TEST_F(SpaceFixture, ImportanceReflectsMaskedWeights) {
  // Mask one layer entirely; importance must come from the others only.
  raw_[0]->set_mask(Tensor::zeros({32, 32}));
  Rng rng(2);
  const Tensor imp = importance_from_layers(raw_, 8, rng);
  EXPECT_EQ(imp.shape(), (Shape{8, 8}));
  EXPECT_GT(imp.sum(), 0.0F);
}

TEST_F(SpaceFixture, PatternSetFromLayersHasRequestedShape) {
  Rng rng(3);
  const PatternSet set = pattern_set_from_layers(raw_, 8, 0.5, 4, rng);
  EXPECT_EQ(set.patterns.size(), 4U);
  EXPECT_EQ(set.psize(), 8);
  EXPECT_NEAR(set.sparsity(), 0.5, 0.02);
}

TEST_F(SpaceFixture, BuildGridIsSortedAndDeduped) {
  SearchSpaceConfig cfg;
  cfg.timing_constraint_ms = 110.0;
  cfg.theta = 3;
  cfg.psize = 8;
  cfg.patterns_per_set = 3;
  cfg.num_variants = 2;
  const PatternSearchSpace space = PatternSearchSpace::build(
      cfg, levels_, spec_, latency_, raw_, 0.5);
  ASSERT_GE(space.grid_size(), 2);
  for (std::int64_t g = 1; g < space.grid_size(); ++g) {
    EXPECT_GT(space.sparsity_at(g), space.sparsity_at(g - 1) + 0.009);
  }
  EXPECT_EQ(space.num_variants(), 2);
  // Every grid point has usable variants of the right sparsity.
  for (std::int64_t g = 0; g < space.grid_size(); ++g) {
    for (std::int64_t v = 0; v < space.num_variants(); ++v) {
      EXPECT_NEAR(space.variant(g, v).sparsity(), space.sparsity_at(g), 0.05);
    }
  }
}

TEST_F(SpaceFixture, SlowerLevelsNeedSparserCandidates) {
  // The lowest frequency must map to the highest required sparsity: the
  // largest grid entry must exceed what the fastest level needs.
  SearchSpaceConfig cfg;
  cfg.timing_constraint_ms = 110.0;
  cfg.theta = 1;  // exactly one candidate per level
  cfg.psize = 8;
  cfg.num_variants = 1;
  const PatternSearchSpace space = PatternSearchSpace::build(
      cfg, levels_, spec_, latency_, raw_, 0.5);
  // With theta=1 and 3 distinct frequencies the grid has distinct needs.
  EXPECT_GE(space.grid_size(), 2);
}

TEST_F(SpaceFixture, HeuristicChoiceSatisfiesConstraint) {
  SearchSpaceConfig cfg;
  cfg.timing_constraint_ms = 110.0;
  cfg.theta = 3;
  cfg.psize = 8;
  cfg.num_variants = 1;
  const double backbone_sparsity = 0.5;
  const PatternSearchSpace space = PatternSearchSpace::build(
      cfg, levels_, spec_, latency_, raw_, backbone_sparsity);
  for (const auto& level : levels_) {
    const std::int64_t g = space.heuristic_choice_for_level(
        level, spec_, latency_, ExecMode::kPattern, 110.0, backbone_sparsity);
    EXPECT_GE(g, 0);
    EXPECT_LT(g, space.grid_size());
    // Composed sparsity is bounded below by the grid sparsity (pattern
    // kept positions align with the backbone), so the conservative bound
    // must already satisfy T under the same latency model.
    const double composed_lower_bound =
        std::max(backbone_sparsity, space.sparsity_at(g));
    EXPECT_LE(latency_.latency_ms(spec_, composed_lower_bound,
                                  ExecMode::kPattern, level.freq_mhz),
              110.0 * 1.05);
  }
}

// ---------------------------------------------------------------------------
// Joint trainer
// ---------------------------------------------------------------------------

class JointFixture : public ::testing::Test {
 protected:
  JointFixture() {
    CorpusConfig ccfg;
    ccfg.vocab_size = 32;
    ccfg.num_tokens = 3000;
    ccfg.rule_strength = 0.95;
    corpus_ = std::make_unique<Corpus>(ccfg);

    TransformerLmConfig cfg;
    cfg.vocab_size = 32;
    cfg.d_model = 16;
    cfg.num_heads = 2;
    cfg.ffn_hidden = 32;
    cfg.max_seq_len = 16;
    model_ = std::make_unique<TransformerLm>(cfg);
  }
  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<TransformerLm> model_;
};

TEST_F(JointFixture, CopyParametersClones) {
  TransformerLm clone(model_->config());
  copy_parameters(clone, *model_);
  const auto a = model_->named_parameters();
  const auto b = clone.named_parameters();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].param.value().allclose(b[i].param.value()));
  }
}

TEST_F(JointFixture, TrainLmImproves) {
  TrainConfig cfg;
  cfg.steps = 80;
  cfg.batch = 8;
  cfg.seq_len = 12;
  cfg.lr = 8e-3F;
  const double before = eval_lm(*model_, *corpus_);
  const double after = train_lm(*model_, *corpus_, cfg);
  EXPECT_GT(after, before);
}

TEST_F(JointFixture, GroupLassoShrinksColumnNorms) {
  TrainConfig cfg;
  cfg.steps = 40;
  cfg.batch = 4;
  cfg.seq_len = 8;
  cfg.lr = 5e-3F;
  cfg.group_lasso_lambda = 5e-3F;
  cfg.lasso_blocks = 4;
  // Norm of the weakest half of columns before/after lasso training: the
  // regularizer should push weak groups down relative to total.
  const Tensor before = model_->prunable()[0]->weight().value();
  train_lm(*model_, *corpus_, cfg);
  const Tensor after = model_->prunable()[0]->weight().value();
  EXPECT_LT(after.l2_norm(), before.l2_norm() * 1.5F);  // no blow-up
}

TEST_F(JointFixture, JointTrainingReturnsPerSetAccuracy) {
  ModelPruner pruner(model_->prunable());
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.25;
  pruner.apply_bp(bp);

  Rng rng(4);
  std::vector<PatternSet> sets;
  sets.push_back(random_pattern_set(4, 0.25, 3, rng));
  sets.push_back(random_pattern_set(4, 0.5, 3, rng));

  TrainConfig cfg;
  cfg.steps = 30;
  cfg.batch = 8;
  cfg.seq_len = 12;
  cfg.lr = 8e-3F;
  const JointTrainResult result =
      joint_train_lm(*model_, pruner, sets, *corpus_, cfg);
  ASSERT_EQ(result.per_set_accuracy.size(), 2U);
  for (double acc : result.per_set_accuracy) {
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
  }
}

TEST_F(JointFixture, JointTrainingTrainsAllSets) {
  // After joint training, BOTH pattern-set configurations must beat an
  // untrained model by a wide margin (the shared-backbone property).
  ModelPruner pruner(model_->prunable());
  pruner.freeze_backbone();

  Rng rng(5);
  std::vector<PatternSet> sets;
  sets.push_back(random_pattern_set(4, 0.2, 3, rng));
  sets.push_back(random_pattern_set(4, 0.4, 3, rng));

  TrainConfig cfg;
  cfg.steps = 150;
  cfg.batch = 8;
  cfg.seq_len = 12;
  cfg.lr = 8e-3F;
  const JointTrainResult result =
      joint_train_lm(*model_, pruner, sets, *corpus_, cfg);
  EXPECT_GT(result.per_set_accuracy[0], 0.4);
  EXPECT_GT(result.per_set_accuracy[1], 0.3);
  // Larger-capacity (less sparse) set should not be much worse.
  EXPECT_GT(result.per_set_accuracy[0] + 0.1, result.per_set_accuracy[1]);
}

TEST_F(JointFixture, WeightedLossRespectsAlphas) {
  ModelPruner pruner(model_->prunable());
  pruner.freeze_backbone();
  Rng rng(6);
  std::vector<PatternSet> sets;
  sets.push_back(random_pattern_set(4, 0.3, 2, rng));
  sets.push_back(random_pattern_set(4, 0.9, 2, rng));
  TrainConfig cfg;
  cfg.steps = 60;
  cfg.batch = 8;
  cfg.seq_len = 12;
  cfg.lr = 8e-3F;
  // All weight on set 0: its accuracy should come out at least as good as
  // the heavily-sparse set's.
  const JointTrainResult result =
      joint_train_lm(*model_, pruner, sets, *corpus_, cfg, {1.0, 0.0});
  EXPECT_GE(result.per_set_accuracy[0] + 0.05, result.per_set_accuracy[1]);
}

TEST_F(JointFixture, RejectsEmptySets) {
  ModelPruner pruner(model_->prunable());
  pruner.freeze_backbone();
  TrainConfig cfg;
  EXPECT_THROW(joint_train_lm(*model_, pruner, {}, *corpus_, cfg),
               CheckError);
}

}  // namespace
}  // namespace rt3
