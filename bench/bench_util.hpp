// Shared workload setup for the paper-reproduction bench binaries.
//
// Every bench builds the same reduced-scale workloads (WikiText-2 analog
// LM, GLUE-analog classification/regression) with deterministic seeds, so
// rows are comparable across benches.  Paper values are printed alongside
// measured values; the claim being reproduced is the SHAPE (who wins, by
// what rough factor), not absolute numbers — see EXPERIMENTS.md.
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "core/pipeline.hpp"
#include "data/corpus.hpp"
#include "data/glue.hpp"
#include "nn/distilbert.hpp"
#include "nn/transformer_lm.hpp"
#include "train/trainer.hpp"

namespace rt3::bench {

/// Pre-trained WikiText-analog workload.
struct LmWorkload {
  std::unique_ptr<Corpus> corpus;
  std::unique_ptr<TransformerLm> model;
  double dense_accuracy = 0.0;
};

inline LmWorkload make_lm_workload(std::uint64_t seed = 1,
                                   std::int64_t train_steps = 200) {
  LmWorkload w;
  CorpusConfig ccfg;
  ccfg.vocab_size = 64;
  ccfg.num_tokens = 10000;
  ccfg.rule_strength = 0.97;
  ccfg.seed = seed;
  w.corpus = std::make_unique<Corpus>(ccfg);

  TransformerLmConfig mcfg;
  mcfg.vocab_size = 64;
  mcfg.d_model = 32;
  mcfg.num_heads = 4;
  mcfg.ffn_hidden = 64;
  mcfg.max_seq_len = 24;
  mcfg.num_encoder_layers = 2;
  mcfg.num_decoder_layers = 1;
  mcfg.seed = seed + 1;
  w.model = std::make_unique<TransformerLm>(mcfg);

  TrainConfig pre;
  pre.steps = train_steps;
  pre.batch = 12;
  pre.seq_len = 16;
  pre.lr = 8e-3F;
  pre.seed = seed + 2;
  w.dense_accuracy = train_lm(*w.model, *w.corpus, pre);
  return w;
}

/// Pre-trained GLUE-analog workload.
struct GlueWorkload {
  std::unique_ptr<GlueDataset> data;
  std::unique_ptr<DistilBertLike> model;
  double dense_score = 0.0;
};

inline GlueWorkload make_glue_workload(GlueTask task, std::uint64_t seed = 2,
                                       std::int64_t train_steps = 320) {
  GlueWorkload w;
  GlueTaskConfig gcfg;
  gcfg.task = task;
  gcfg.vocab_size = 160;
  gcfg.seq_len = 16;
  gcfg.train_size = 900;
  gcfg.dev_size = 300;
  gcfg.seed = seed;
  w.data = std::make_unique<GlueDataset>(gcfg);

  DistilBertConfig mcfg;
  mcfg.vocab_size = 160;
  mcfg.d_model = 32;
  mcfg.num_heads = 4;
  mcfg.ffn_hidden = 64;
  mcfg.num_layers = 2;
  mcfg.max_seq_len = 32;
  mcfg.num_outputs = w.data->is_regression() ? 1 : w.data->num_classes();
  mcfg.seed = seed + 1;
  w.model = std::make_unique<DistilBertLike>(mcfg);

  TrainConfig pre;
  pre.steps = train_steps;
  pre.batch = 16;
  pre.lr = 5e-3F;
  pre.seed = seed + 2;
  w.dense_score = train_glue(*w.model, *w.data, pre);
  return w;
}

/// Default RT3 options sized for bench runtimes (a few seconds per run).
inline Rt3Options bench_options(double timing_constraint_ms,
                                std::int64_t episodes = 4) {
  Rt3Options o;
  o.timing_constraint_ms = timing_constraint_ms;
  o.episodes = episodes;
  o.energy_budget_mj = 1.135e8;  // paper-scale budget (Table II anchor)
  o.bp.num_blocks = 4;
  o.bp.prune_fraction = 0.35;
  o.space.psize = 8;
  o.space.patterns_per_set = 4;
  o.space.num_variants = 2;
  o.episode_train.steps = 16;
  o.episode_train.batch = 8;
  o.episode_train.seq_len = 16;
  o.episode_train.lr = 5e-3F;
  o.final_train.steps = 80;
  o.final_train.batch = 8;
  o.final_train.seq_len = 16;
  o.final_train.lr = 5e-3F;
  o.backbone_train.steps = 60;
  o.backbone_train.batch = 8;
  o.backbone_train.seq_len = 16;
  o.backbone_train.lr = 5e-3F;
  return o;
}

/// Accuracy upper bound (Table III "UB"): train one model copy per pattern
/// set individually, instead of the shared joint backbone.
inline std::vector<double> ub_accuracies_lm(const TransformerLm& trained,
                                            const Corpus& corpus,
                                            const BpConfig& bp,
                                            const std::vector<PatternSet>& sets,
                                            const TrainConfig& cfg) {
  std::vector<double> accs;
  for (const auto& set : sets) {
    TransformerLm clone(trained.config());
    copy_parameters(clone, trained);
    ModelPruner pruner(clone.prunable());
    pruner.apply_bp(bp);
    pruner.apply_pattern_set(set);
    accs.push_back(train_lm(clone, corpus, cfg));
  }
  return accs;
}

inline std::vector<double> ub_scores_glue(const DistilBertLike& trained,
                                          const GlueDataset& data,
                                          const BpConfig& bp,
                                          const std::vector<PatternSet>& sets,
                                          const TrainConfig& cfg) {
  std::vector<double> scores;
  for (const auto& set : sets) {
    DistilBertLike clone(trained.config());
    copy_parameters(clone, trained);
    ModelPruner pruner(clone.prunable());
    pruner.apply_bp(bp);
    pruner.apply_pattern_set(set);
    scores.push_back(train_glue(clone, data, cfg));
  }
  return scores;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "Reproduces: " << paper_ref << "\n"
            << "(accuracy cells: reduced-scale trained models; latency/energy"
               " cells: calibrated analytic models at paper scale)\n\n";
}

}  // namespace rt3::bench
