// Metric and statistics helpers shared by the data tasks (GLUE-analog
// metrics) and the bench harnesses.
#pragma once

#include <cstdint>
#include <vector>

namespace rt3 {

/// Arithmetic mean; returns 0 for an empty vector.
double mean(const std::vector<double>& xs);

/// Population variance; returns 0 for fewer than 2 elements.
double variance(const std::vector<double>& xs);

/// Pearson correlation of two equal-length vectors (0 if degenerate).
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Spearman rank correlation (average ranks for ties). Used by the STS-B
/// analog task, matching the GLUE convention in the paper.
double spearman(const std::vector<double>& x, const std::vector<double>& y);

/// Classification accuracy over {0,1,...} labels.
double accuracy(const std::vector<std::int64_t>& pred,
                const std::vector<std::int64_t>& truth);

/// Binary F1 score (positive class = 1). Used by QQP / MRPC analogs.
double f1_score(const std::vector<std::int64_t>& pred,
                const std::vector<std::int64_t>& truth);

/// Matthews correlation coefficient for binary labels. Used by CoLA analog.
double matthews_corr(const std::vector<std::int64_t>& pred,
                     const std::vector<std::int64_t>& truth);

/// Ranks with ties averaged, as used by spearman(); exposed for tests.
std::vector<double> average_ranks(const std::vector<double>& xs);

/// p-th percentile (p in [0, 100]) with linear interpolation between
/// closest ranks; returns 0 for an empty vector.  Used by the serving
/// latency aggregator (p50/p95/p99).
double percentile(std::vector<double> xs, double p);

}  // namespace rt3
