#include "core/pareto.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace rt3 {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  return a.accuracy >= b.accuracy && a.runs >= b.runs &&
         (a.accuracy > b.accuracy || a.runs > b.runs);
}

bool ParetoFront::insert(const ParetoPoint& p) {
  all_.push_back(p);
  for (const auto& member : front_) {
    if (dominates(member, p)) {
      return false;
    }
  }
  // Remove members the new point dominates.
  front_.erase(std::remove_if(front_.begin(), front_.end(),
                              [&](const ParetoPoint& member) {
                                return dominates(p, member);
                              }),
               front_.end());
  front_.push_back(p);
  return true;
}

std::vector<ParetoPoint> ParetoFront::front() const {
  std::vector<ParetoPoint> sorted = front_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.accuracy < b.accuracy;
            });
  return sorted;
}

ParetoPoint ParetoFront::best_accuracy() const {
  check(!front_.empty(), "ParetoFront: empty front");
  return *std::max_element(front_.begin(), front_.end(),
                           [](const ParetoPoint& a, const ParetoPoint& b) {
                             return a.accuracy < b.accuracy;
                           });
}

}  // namespace rt3
