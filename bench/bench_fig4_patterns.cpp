// Reproduces paper Fig. 4: visualization of the patterns identified for
// the three V/F levels (sparsities ~75% / 50% / 37% in the paper), plus
// the cross-sparsity structural-similarity observation (the paper's blue
// box / circled regions: patterns at different sparsities share important
// positions because all are derived from the same backbone importance).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "pruning/model_pruner.hpp"
#include "search/space.hpp"

int main() {
  using namespace rt3;
  bench::print_header("Fig. 4 - identified pattern visualization",
                      "paper Fig. 4: patterns at 3 V/F levels share structure");

  // Build a trained backbone, as the search would.
  bench::LmWorkload w = bench::make_lm_workload(61);
  ModelPruner pruner(w.model->prunable());
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.35;
  pruner.apply_bp(bp);

  const std::vector<double> sparsities = {0.75, 0.50, 0.37};
  const std::int64_t psize = 8;
  std::vector<PatternSet> sets;
  for (double s : sparsities) {
    // Same seed per sparsity: each set's i-th pattern samples the same
    // backbone tiles, so different sparsity levels carve nested top-k
    // positions out of one importance landscape (the paper's shared
    // "column characteristic" across Fig. 4(a)-(c)).
    Rng rng(62);
    sets.push_back(
        pattern_set_from_layers(pruner.layers(), psize, s, 4, rng));
  }

  for (std::size_t i = 0; i < sets.size(); ++i) {
    std::cout << "(" << static_cast<char>('a' + i) << ") Sparsity = "
              << fmt_pct(sparsities[i], 0) << "  ('#' = kept, '.' = pruned)\n";
    std::cout << sets[i].patterns.front().to_ascii() << "\n";
  }

  // Cross-sparsity structure: kept positions of a SPARSER pattern should
  // be largely contained in the kept positions of a DENSER pattern from
  // the same backbone (paper's "exactly the same shape" observation).
  std::cout << "Containment of kept positions (sparser in denser):\n";
  TablePrinter t({"pair", "containment", "random expectation"});
  for (std::size_t a = 0; a < sets.size(); ++a) {
    for (std::size_t b = 0; b < sets.size(); ++b) {
      if (sparsities[a] <= sparsities[b]) {
        continue;  // a must be the sparser one
      }
      const Pattern& pa = sets[a].patterns.front();
      const Pattern& pb = sets[b].patterns.front();
      std::int64_t contained = 0;
      for (std::int64_t r = 0; r < psize; ++r) {
        for (std::int64_t c = 0; c < psize; ++c) {
          if (pa.kept(r, c) && pb.kept(r, c)) {
            ++contained;
          }
        }
      }
      const double frac =
          static_cast<double>(contained) / static_cast<double>(pa.count_kept());
      // If patterns were independent, containment would be ~density(b).
      t.add_row({fmt_pct(sparsities[a], 0) + " in " + fmt_pct(sparsities[b], 0),
                 fmt_pct(frac), fmt_pct(1.0 - sparsities[b])});
    }
  }
  std::cout << t.str();

  std::cout << "\nShape check: containment far above the random expectation "
               "shows the search-space generation (component #3) reuses the "
               "backbone's important positions across V/F levels, as the "
               "paper observes in Fig. 4.\n";

  // Intra-set diversity: members of one set are distinct patterns.
  double avg_overlap = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < sets[1].patterns.size(); ++i) {
    for (std::size_t j = i + 1; j < sets[1].patterns.size(); ++j) {
      avg_overlap += sets[1].patterns[i].overlap(sets[1].patterns[j]);
      ++pairs;
    }
  }
  std::cout << "Average intra-set overlap at 50% sparsity: "
            << fmt_pct(avg_overlap / pairs)
            << " (< 100% -> the set offers per-tile choice).\n";
  return 0;
}
