#include "exec/tuner.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "exec/simd.hpp"

namespace rt3 {
namespace {

// Search ladders.  k_tile 0 means auto (cache-sized, exec/kernels.hpp);
// threads 0 means every pool worker.
constexpr std::array<std::int64_t, 6> kKTiles = {0, 16, 32, 64, 128, 256};
constexpr std::array<std::int64_t, 3> kUnrolls = {1, 2, 4};
constexpr std::array<std::int64_t, 4> kThreads = {0, 1, 2, 4};

constexpr int kFeatures = 7;

/// Quadratic feature map over the (log-scaled) knobs: enough curvature to
/// place the minimum of each knob's latency bowl, small enough to fit
/// from a couple dozen samples.
std::array<double, kFeatures> features(const KernelOptions& o) {
  const double kt = std::log2(
      static_cast<double>(o.k_tile == 0 ? 64 : std::max<std::int64_t>(
                                                   8, o.k_tile)));
  const double u = static_cast<double>(o.unroll);
  const double t = static_cast<double>(
      o.threads == 0 ? kThreads.back() : o.threads);
  return {1.0, kt, kt * kt, u, u * u, t, t * t};
}

/// Least-squares fit via the normal equations (kFeatures x kFeatures,
/// Gaussian elimination with partial pivoting, small ridge for rank
/// safety).  Fully deterministic.
std::array<double, kFeatures> fit_model(
    const std::vector<std::array<double, kFeatures>>& phi,
    const std::vector<double>& y) {
  double a[kFeatures][kFeatures] = {};
  std::array<double, kFeatures> b = {};
  for (std::size_t s = 0; s < phi.size(); ++s) {
    for (int i = 0; i < kFeatures; ++i) {
      b[i] += phi[s][i] * y[s];
      for (int j = 0; j < kFeatures; ++j) {
        a[i][j] += phi[s][i] * phi[s][j];
      }
    }
  }
  for (int i = 0; i < kFeatures; ++i) {
    a[i][i] += 1e-9;
  }
  for (int col = 0; col < kFeatures; ++col) {
    int pivot = col;
    for (int r = col + 1; r < kFeatures; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) {
        pivot = r;
      }
    }
    for (int j = 0; j < kFeatures; ++j) {
      std::swap(a[col][j], a[pivot][j]);
    }
    std::swap(b[col], b[pivot]);
    for (int r = col + 1; r < kFeatures; ++r) {
      const double f = a[r][col] / a[col][col];
      for (int j = col; j < kFeatures; ++j) {
        a[r][j] -= f * a[col][j];
      }
      b[r] -= f * b[col];
    }
  }
  std::array<double, kFeatures> w = {};
  for (int i = kFeatures - 1; i >= 0; --i) {
    double acc = b[i];
    for (int j = i + 1; j < kFeatures; ++j) {
      acc -= a[i][j] * w[j];
    }
    w[i] = acc / a[i][i];
  }
  return w;
}

double predict(const std::array<double, kFeatures>& w,
               const KernelOptions& o) {
  const auto phi = features(o);
  double acc = 0.0;
  for (int i = 0; i < kFeatures; ++i) {
    acc += w[i] * phi[i];
  }
  return acc;
}

/// 17 significant digits: value -> text -> value round-trips bit-exactly,
/// so re-serializing a parsed record is byte-identical.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::int64_t parse_i64(const std::string& text) {
  std::size_t pos = 0;
  const long long v = std::stoll(text, &pos);
  check(pos == text.size(), "TuningRecord: bad integer: " + text);
  return static_cast<std::int64_t>(v);
}

double parse_f64(const std::string& text) {
  std::size_t pos = 0;
  const double v = std::stod(text, &pos);
  check(pos == text.size(), "TuningRecord: bad number: " + text);
  return v;
}

/// Consumes one "key=value" token.
std::string take_kv(std::istringstream& in, const std::string& key) {
  std::string token;
  check(static_cast<bool>(in >> token) &&
            token.rfind(key + "=", 0) == 0,
        "TuningRecord: expected " + key + "=...");
  return token.substr(key.size() + 1);
}

std::string take_field(std::istringstream& in, const std::string& name) {
  std::string label;
  std::string value;
  check(static_cast<bool>(in >> label >> value) && label == name,
        "TuningRecord: expected '" + name + " <value>'");
  return value;
}

}  // namespace

std::string TuningRecord::serialize() const {
  std::ostringstream out;
  out << "rt3-tuning v1\n";
  out << "mode " << exec_mode_name(mode) << "\n";
  out << "isa " << isa << "\n";
  out << "batch " << batch << "\n";
  out << "entries " << entries.size() << "\n";
  for (const TuningEntry& e : entries) {
    out << "entry layer=" << e.layer << " level=" << e.level
        << " k_tile=" << e.options.k_tile
        << " row_grain=" << e.options.row_grain
        << " unroll=" << e.options.unroll
        << " threads=" << e.options.threads
        << " predicted_ms=" << fmt_double(e.predicted_ms)
        << " measured_ms=" << fmt_double(e.measured_ms) << "\n";
  }
  return out.str();
}

TuningRecord TuningRecord::parse(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  std::string version;
  check(static_cast<bool>(in >> magic >> version) &&
            magic == "rt3-tuning" && version == "v1",
        "TuningRecord: not an rt3-tuning v1 file");
  TuningRecord record;
  record.mode = exec_mode_from_name(take_field(in, "mode"));
  record.isa = take_field(in, "isa");
  record.batch = parse_i64(take_field(in, "batch"));
  const std::int64_t count = parse_i64(take_field(in, "entries"));
  check(count >= 0, "TuningRecord: bad entry count");
  record.entries.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    std::string label;
    check(static_cast<bool>(in >> label) && label == "entry",
          "TuningRecord: expected an entry line");
    TuningEntry e;
    e.layer = parse_i64(take_kv(in, "layer"));
    e.level = parse_i64(take_kv(in, "level"));
    e.options.k_tile = parse_i64(take_kv(in, "k_tile"));
    e.options.row_grain = parse_i64(take_kv(in, "row_grain"));
    e.options.unroll = parse_i64(take_kv(in, "unroll"));
    e.options.threads = parse_i64(take_kv(in, "threads"));
    e.predicted_ms = parse_f64(take_kv(in, "predicted_ms"));
    e.measured_ms = parse_f64(take_kv(in, "measured_ms"));
    record.entries.push_back(e);
  }
  return record;
}

void TuningRecord::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  check(out.good(), "TuningRecord: cannot write " + path);
  out << serialize();
  check(out.good(), "TuningRecord: write failed: " + path);
}

TuningRecord TuningRecord::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  check(in.good(), "TuningRecord: cannot read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

std::int64_t PlanCache::apply_tuning(const TuningRecord& record) {
  // Knobs tuned for one kernel family do not transfer to another; a
  // record for a different mode is a caller mix-up, not data.
  check(record.mode == mode_,
        std::string("PlanCache::apply_tuning: record is for mode ") +
            exec_mode_name(record.mode));
  std::int64_t applied = 0;
  for (const TuningEntry& e : record.entries) {
    if (e.layer < 0 || e.layer >= num_layers() || e.level < 0 ||
        e.level >= num_levels()) {
      continue;  // record from a larger deployment; apply what fits
    }
    set_tuned(e.layer, e.level, e.options);
    ++applied;
  }
  return applied;
}

std::vector<KernelOptions> Autotuner::candidate_grid() {
  std::vector<KernelOptions> grid;
  grid.reserve(kKTiles.size() * kUnrolls.size() * kThreads.size());
  for (const std::int64_t kt : kKTiles) {
    for (const std::int64_t u : kUnrolls) {
      for (const std::int64_t t : kThreads) {
        KernelOptions o;
        o.k_tile = kt;
        o.unroll = u;
        o.threads = t;
        grid.push_back(o);
      }
    }
  }
  return grid;
}

Autotuner::Autotuner(TunerConfig config, MeasuredBackend& backend)
    : config_(config),
      mode_(backend.plans().mode()),
      layers_(backend.plans().num_layers()),
      levels_(backend.plans().num_levels()) {
  check(config_.batch >= 1 && config_.batch <= backend.config().max_batch,
        "Autotuner: batch outside the backend's activation buffer");
  MeasuredBackend* b = &backend;
  const std::int64_t batch = config_.batch;
  cost_ = [b, batch](std::int64_t layer, std::int64_t level,
                     const KernelOptions& options) {
    return b->time_layer_ms(layer, level, batch, options);
  };
}

Autotuner::Autotuner(TunerConfig config, ExecMode mode, std::int64_t layers,
                     std::int64_t levels, CostFn cost)
    : config_(config),
      mode_(mode),
      layers_(layers),
      levels_(levels),
      cost_(std::move(cost)) {}

double Autotuner::median_cost(std::int64_t layer, std::int64_t level,
                              const KernelOptions& options) {
  check(config_.repeats >= 1, "Autotuner: repeats must be >= 1");
  cost_(layer, level, options);  // warm-up, discarded
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(config_.repeats));
  for (std::int64_t r = 0; r < config_.repeats; ++r) {
    samples.push_back(cost_(layer, level, options));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

TuningEntry Autotuner::tune_one(std::int64_t layer, std::int64_t level,
                                Rng& rng) {
  const std::vector<KernelOptions> grid = candidate_grid();
  const auto grid_n = static_cast<std::int64_t>(grid.size());
  const std::int64_t sample_n =
      std::min(std::max<std::int64_t>(kFeatures, config_.samples), grid_n);

  // 1. Measure a seeded random subset of the grid.
  const std::vector<std::int64_t> picks =
      rng.sample_without_replacement(grid_n, sample_n);
  std::vector<std::array<double, kFeatures>> phi;
  std::vector<double> y;
  std::int64_t best_sampled = picks[0];
  double best_sampled_ms = 0.0;
  bool have_best_sampled = false;
  for (const std::int64_t g : picks) {
    const double ms =
        median_cost(layer, level, grid[static_cast<std::size_t>(g)]);
    phi.push_back(features(grid[static_cast<std::size_t>(g)]));
    y.push_back(ms);
    if (!have_best_sampled || ms < best_sampled_ms) {
      best_sampled = g;
      best_sampled_ms = ms;
      have_best_sampled = true;
    }
  }

  // 2. Fit the latency model and rank the FULL grid by prediction (ties
  //    broken by grid index, keeping the search deterministic).
  const auto w = fit_model(phi, y);
  std::vector<std::int64_t> order(static_cast<std::size_t>(grid_n));
  for (std::int64_t g = 0; g < grid_n; ++g) {
    order[static_cast<std::size_t>(g)] = g;
  }
  std::vector<double> predicted(static_cast<std::size_t>(grid_n));
  for (std::int64_t g = 0; g < grid_n; ++g) {
    predicted[static_cast<std::size_t>(g)] =
        predict(w, grid[static_cast<std::size_t>(g)]);
  }
  std::sort(order.begin(), order.end(),
            [&](std::int64_t a, std::int64_t b) {
              const double pa = predicted[static_cast<std::size_t>(a)];
              const double pb = predicted[static_cast<std::size_t>(b)];
              return pa != pb ? pa < pb : a < b;
            });

  // 3. Re-measure the top predicted finalists plus the best sampled
  //    point; the fastest measurement wins (model proposes, measurement
  //    disposes).
  std::vector<std::int64_t> finalists(
      order.begin(),
      order.begin() + static_cast<std::size_t>(std::min<std::int64_t>(
                          std::max<std::int64_t>(1, config_.finalists),
                          grid_n)));
  if (std::find(finalists.begin(), finalists.end(), best_sampled) ==
      finalists.end()) {
    finalists.push_back(best_sampled);
  }
  std::int64_t winner = finalists[0];
  double winner_ms = 0.0;
  bool have_winner = false;
  for (const std::int64_t g : finalists) {
    const double ms =
        median_cost(layer, level, grid[static_cast<std::size_t>(g)]);
    if (!have_winner || ms < winner_ms ||
        (ms == winner_ms && g < winner)) {
      winner = g;
      winner_ms = ms;
      have_winner = true;
    }
  }

  TuningEntry entry;
  entry.layer = layer;
  entry.level = level;
  entry.options = grid[static_cast<std::size_t>(winner)];
  entry.predicted_ms = predicted[static_cast<std::size_t>(winner)];
  entry.measured_ms = winner_ms;
  return entry;
}

TuningRecord Autotuner::tune() {
  check(layers_ >= 1 && levels_ >= 1, "Autotuner: nothing to tune");
  check(static_cast<bool>(cost_), "Autotuner: no cost function");
  TuningRecord record;
  record.mode = mode_;
  record.batch = config_.batch;
  record.isa = simd_isa_name(active_simd_isa());
  Rng rng(config_.seed);
  for (std::int64_t level = 0; level < levels_; ++level) {
    for (std::int64_t layer = 0; layer < layers_; ++layer) {
      record.entries.push_back(tune_one(layer, level, rng));
    }
  }
  return record;
}

}  // namespace rt3
