#include "serve/request.hpp"

#include "common/check.hpp"

namespace rt3 {

RequestQueue::RequestQueue(std::int64_t capacity) : capacity_(capacity) {
  check(capacity >= 0, "RequestQueue: negative capacity");
}

bool RequestQueue::push(Request r) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] {
    return closed_ || capacity_ == 0 ||
           static_cast<std::int64_t>(items_.size()) < capacity_;
  });
  if (closed_) {
    return false;
  }
  items_.push_back(r);
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::pop(Request& out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) {
    return false;  // closed and drained
  }
  out = items_.front();
  items_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

bool RequestQueue::try_pop(Request& out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (items_.empty()) {
    return false;
  }
  out = items_.front();
  items_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return true;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::int64_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(items_.size());
}

}  // namespace rt3
