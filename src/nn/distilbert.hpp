// DistilBERT-analog encoder classifier/regressor for the GLUE-analog tasks.
//
// The paper's DistilBERT has 6 encoder layers with H=768; this reduced-scale
// stand-in keeps the same architecture family (embeddings + positional
// encoding + pre-norm encoder stack + pooled head) at laptop-trainable size.
// Scale substitution is documented in DESIGN.md.
#pragma once

#include <memory>
#include <vector>

#include "data/glue.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace rt3 {

struct DistilBertConfig {
  std::int64_t vocab_size = 256;
  std::int64_t d_model = 64;
  std::int64_t num_heads = 4;
  std::int64_t ffn_hidden = 128;
  std::int64_t num_layers = 2;
  std::int64_t max_seq_len = 64;
  /// Classifier classes, or 1 for regression (STS-B analog).
  std::int64_t num_outputs = 2;
  std::uint64_t seed = 4;
};

/// Encoder-only model with mean pooling and a task head.
class DistilBertLike : public Module {
 public:
  explicit DistilBertLike(const DistilBertConfig& config);

  /// ids: batch*seq_len token ids -> head output [batch, num_outputs].
  Var forward(const std::vector<std::int64_t>& ids, std::int64_t batch,
              std::int64_t seq_len) const;

  /// Classification loss (cross-entropy) on a set of examples.
  Var classification_loss(const std::vector<GlueExample>& examples) const;

  /// Regression loss (MSE on score/5) for the STS-B analog.
  Var regression_loss(const std::vector<GlueExample>& examples) const;

  /// Task-appropriate loss dispatch.
  Var loss(const GlueDataset& data, const std::vector<GlueExample>& batch) const;

  /// Predicted labels for classification tasks on the dev set.
  std::vector<std::int64_t> predict_labels(
      const std::vector<GlueExample>& examples) const;

  /// Predicted scores for the regression task on the dev set.
  std::vector<double> predict_scores(
      const std::vector<GlueExample>& examples) const;

  /// Scores the dev split with the dataset's GLUE metric.
  double evaluate(const GlueDataset& data) const;

  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) const override;

  std::vector<Linear*> prunable();

  const DistilBertConfig& config() const { return config_; }

 private:
  DistilBertConfig config_;
  Var token_embedding_;
  std::unique_ptr<PositionalEncoding> pos_;
  std::vector<std::unique_ptr<EncoderLayer>> layers_;
  std::unique_ptr<LayerNormLayer> final_norm_;
  std::unique_ptr<Linear> pooler_;
  std::unique_ptr<Linear> head_;
};

}  // namespace rt3
