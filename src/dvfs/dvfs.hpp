// DVFS substrate: the Odroid-XU3 Cortex-A7 voltage/frequency ladder
// (paper Table I), an analytic power model, a battery with an energy
// budget, the number-of-runs metric, and a threshold governor that steps
// the ladder down as the battery drains (the paper's "iPhone enters
// energy-saving mode below 20%" behaviour).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rt3 {

/// One voltage/frequency operating point.
struct VfLevel {
  std::string name;
  double freq_mhz = 0.0;
  double volt_mv = 0.0;
};

/// The paper's Table I ladder for the ARM Cortex-A7 core in Odroid-XU3.
class VfTable {
 public:
  static VfTable odroid_xu3_a7();

  explicit VfTable(std::vector<VfLevel> levels);

  std::int64_t size() const { return static_cast<std::int64_t>(levels_.size()); }
  const VfLevel& level(std::int64_t index) const;
  const std::vector<VfLevel>& levels() const { return levels_; }

  /// The paper's evaluation subset {l3, l4, l6} (0-based {2, 3, 5}),
  /// ordered low -> high frequency (E-mode, N-mode, F-mode).
  static std::vector<std::int64_t> paper_eval_levels() { return {2, 3, 5}; }

 private:
  std::vector<VfLevel> levels_;
};

/// Dynamic-plus-static CMOS power: P = Ceff * V^2 * f + P_static.
class PowerModel {
 public:
  PowerModel() = default;
  PowerModel(double ceff_mw_per_mhz_v2, double static_mw);

  /// Power draw in milliwatts at a V/F level.
  double power_mw(const VfLevel& level) const;

  /// Energy in millijoules for running `duration_ms` at a level.
  double energy_mj(const VfLevel& level, double duration_ms) const;

 private:
  // Defaults put the A7 cluster near 600 mW at 1.4 GHz / 1.24 V, matching
  // published Odroid-XU3 measurements.
  double ceff_mw_per_mhz_v2_ = 0.28;
  double static_mw_ = 45.0;
};

/// Inferences achievable within an energy budget at fixed power/latency —
/// the paper's hardware-efficiency metric ("number of runs").
double number_of_runs(double energy_budget_mj, double power_mw,
                      double latency_ms);

/// Battery with a fixed budget in millijoules.
class Battery {
 public:
  explicit Battery(double capacity_mj);

  double capacity_mj() const { return capacity_mj_; }
  double remaining_mj() const { return remaining_mj_; }
  double fraction() const { return remaining_mj_ / capacity_mj_; }
  bool empty() const { return remaining_mj_ <= 0.0; }

  /// Draws energy; returns false (and drains to 0) if not enough remains.
  bool drain(double energy_mj);

  void recharge() { remaining_mj_ = capacity_mj_; }

 private:
  double capacity_mj_;
  double remaining_mj_;
};

/// Steps down the V/F ladder as the battery drains: level i of
/// `levels` is used while battery fraction is above thresholds[i+1]
/// (thresholds sorted descending, implicit 0 at the end).
class Governor {
 public:
  /// levels: indices into a VfTable ordered high->low frequency;
  /// thresholds: battery fractions at which to step DOWN to the next
  /// level; must have levels.size() - 1 entries, strictly descending.
  Governor(std::vector<std::int64_t> levels, std::vector<double> thresholds);

  /// Equal battery-fraction tranches over the given levels (the paper's
  /// Table II experiment splits the budget across F/N/E modes).
  static Governor equal_tranches(std::vector<std::int64_t> levels);

  std::int64_t level_for(double battery_fraction) const;

  /// POSITION of the chosen level within this governor's level list
  /// (0 = fastest rung), the index serving loops use for per-level
  /// sparsities, plans, and stats.
  std::int64_t level_position(double battery_fraction) const;

  /// Battery fraction at which the level selected for `battery_fraction`
  /// steps down to the next rung (0 when already on the last level —
  /// there is nothing below).  Governor-aware batching shrinks batches
  /// when `battery_fraction - next_step_down(...)` falls inside a margin,
  /// so the drain-then-switch point arrives sooner.
  double next_step_down(double battery_fraction) const;

  const std::vector<std::int64_t>& levels() const { return levels_; }

 private:
  std::vector<std::int64_t> levels_;
  std::vector<double> thresholds_;
};

}  // namespace rt3
