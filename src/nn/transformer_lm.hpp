// The paper's "Transformer" workload: a small encoder-decoder language
// model (2 encoder layers + 1 decoder layer, matching Section IV-A)
// trained for next-word prediction on the WikiText-2 analog corpus.
#pragma once

#include <memory>
#include <vector>

#include "data/corpus.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace rt3 {

struct TransformerLmConfig {
  std::int64_t vocab_size = 512;
  std::int64_t d_model = 64;
  std::int64_t num_heads = 4;
  std::int64_t ffn_hidden = 128;
  std::int64_t num_encoder_layers = 2;
  std::int64_t num_decoder_layers = 1;
  std::int64_t max_seq_len = 64;
  std::uint64_t seed = 3;
};

/// Encoder-decoder LM.  All attention/FFN projections plus the LM head are
/// prunable (the LM head is the analog of the paper's giant vocab-projection
/// matrix).
class TransformerLm : public Module {
 public:
  explicit TransformerLm(const TransformerLmConfig& config);

  /// ids: batch*seq_len token ids -> logits [batch*seq_len, vocab].
  Var forward(const std::vector<std::int64_t>& ids, std::int64_t batch,
              std::int64_t seq_len) const;

  /// Mean cross-entropy of next-token prediction on one batch.
  Var loss(const LmBatch& batch) const;

  /// Top-1 next-word accuracy over `max_batches` deterministic batches.
  double evaluate(const LmBatcher& batcher, std::int64_t max_batches) const;

  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) const override;

  /// Layers subject to BP/PP (attention + FFN + LM head).
  std::vector<Linear*> prunable();

  const TransformerLmConfig& config() const { return config_; }

 private:
  TransformerLmConfig config_;
  Var token_embedding_;  // [V, D]
  std::unique_ptr<PositionalEncoding> pos_;
  std::vector<std::unique_ptr<EncoderLayer>> encoders_;
  std::vector<std::unique_ptr<DecoderLayer>> decoders_;
  std::unique_ptr<LayerNormLayer> final_norm_;
  std::unique_ptr<Linear> lm_head_;  // [D, V]
};

}  // namespace rt3
