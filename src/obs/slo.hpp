// SLO burn-rate monitoring over the continuous telemetry stream.
//
// An SloMonitor evaluates declarative rules at every batch boundary of a
// serving session and maintains a per-rule breach/recover state machine:
//
//   * kMissBurn   — multi-window burn-rate alerting (the Google SRE
//     pattern): breach when the deadline-miss rate over a SHORT window
//     AND a LONG window both exceed their thresholds, with an absolute
//     minimum-miss floor so a single miss in a quiet second cannot page.
//     The short window makes the alert fast; the long window makes it
//     sticky enough to matter.
//   * kLatencyEwma — p99 proxy: breach while the per-batch mean-latency
//     EWMA exceeds a threshold.
//   * kBatterySlope — projection: fit the battery drain slope over a
//     window and breach when the projected time-to-empty falls below a
//     floor (the "will not survive the flight" alarm).
//
// State transitions emit deterministic `slo.breach` / `slo.recover`
// instant events on trace lane 0 (the node/governor lane) and accumulate
// SloEpisode records; `publish` counts breaches into the MetricsRegistry.
// Everything is driven by the virtual clock — no wall time, no threads —
// so two runs of the same seeded session produce identical episodes.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace rt3 {

class MetricsRegistry;
class TraceRecorder;

enum class SloRuleKind : std::uint8_t {
  kMissBurn,
  kLatencyEwma,
  kBatterySlope,
};

const char* slo_rule_kind_name(SloRuleKind kind);

/// One declarative rule; only the fields for its `kind` are read.
struct SloRule {
  std::string name;
  SloRuleKind kind = SloRuleKind::kMissBurn;

  // kMissBurn: breach when miss-rate(short) >= short_threshold AND
  // miss-rate(long) >= long_threshold AND misses(short) >= min_misses.
  double short_window_ms = 5'000.0;
  double long_window_ms = 30'000.0;
  double short_threshold = 0.5;
  double long_threshold = 0.2;
  std::int64_t min_misses = 3;

  // kLatencyEwma: breach while ewma(mean batch latency) > threshold.
  double latency_threshold_ms = 800.0;
  double ewma_alpha = 0.2;

  // kBatterySlope: breach when projected time-to-empty at the observed
  // drain slope over `slope_window_ms` drops below `min_projected_ms`.
  // Only evaluated once the window spans at least half its width.
  double slope_window_ms = 10'000.0;
  double min_projected_ms = 60'000.0;
};

/// One contiguous breach interval of one rule.
struct SloEpisode {
  std::string rule;
  double start_ms = 0.0;
  /// -1 while still in breach when the session ended.
  double end_ms = -1.0;
  /// The rule expression's value when the breach opened (miss rate,
  /// latency EWMA ms, or projected time-to-empty ms).
  double trigger_value = 0.0;
  /// Misses inside the short window when the breach opened (kMissBurn).
  std::int64_t trigger_misses = 0;
};

/// One batch boundary, as reported by the serving loops.
struct SloObservation {
  double end_ms = 0.0;
  std::int64_t completed = 0;
  std::int64_t missed = 0;
  double battery_fraction = 0.0;
  double mean_latency_ms = 0.0;
};

class SloMonitor {
 public:
  explicit SloMonitor(std::vector<SloRule> rules);

  /// The stock rule set the CLI's --slo flag enables: a miss burn-rate
  /// rule, a latency-EWMA rule, and a battery-slope projection.
  static std::vector<SloRule> default_rules();

  /// Breach/recover transition events are recorded here on lane 0 when
  /// attached (same sticky-pointer convention as the serving loops).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Evaluates every rule at one batch boundary; `obs.end_ms` must be
  /// non-decreasing across calls.
  void observe(const SloObservation& obs);

  const std::vector<SloRule>& rules() const { return rules_; }
  /// Episodes in breach-start order; an open episode has end_ms == -1.
  const std::vector<SloEpisode>& episodes() const { return episodes_; }
  /// Breach episodes begun (open + closed).
  std::int64_t breaches() const {
    return static_cast<std::int64_t>(episodes_.size());
  }
  std::int64_t active_breaches() const;

  /// Counts episodes into `slo.breaches{rule=...}` (+ an unlabeled
  /// total) and sets `slo.in_breach{rule=...}` gauges.
  void publish(MetricsRegistry& registry) const;

  /// [{"rule": ..., "start_ms": ..., "end_ms": ..., "trigger_value": ...,
  ///   "trigger_misses": ...}, ...]
  std::string to_json() const;

 private:
  struct RuleState {
    bool in_breach = false;
    /// Index into episodes_ of the open episode (-1 when not in breach).
    std::int64_t open_episode = -1;
    /// kMissBurn: observations inside the long window, front = oldest.
    std::deque<SloObservation> window;
    std::int64_t long_completed = 0;
    std::int64_t long_missed = 0;
    /// kLatencyEwma.
    double ewma = 0.0;
    bool ewma_init = false;
    /// kBatterySlope: (end_ms, battery_fraction) inside the slope window.
    std::deque<std::pair<double, double>> slope;
  };

  /// Applies one rule's breach decision, opening/closing episodes and
  /// emitting transition events.
  void transition(std::size_t rule_idx, bool breach, double now_ms,
                  double value, std::int64_t misses);

  std::vector<SloRule> rules_;
  std::vector<RuleState> states_;
  std::vector<SloEpisode> episodes_;
  TraceRecorder* trace_ = nullptr;
};

}  // namespace rt3
