#include "nn/transformer_lm.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace rt3 {

TransformerLm::TransformerLm(const TransformerLmConfig& config)
    : config_(config) {
  Rng rng(config.seed);
  token_embedding_ =
      Var(Tensor::randn({config.vocab_size, config.d_model}, rng, 0.05F),
          /*requires_grad=*/true);
  pos_ = std::make_unique<PositionalEncoding>(config.max_seq_len,
                                              config.d_model);
  for (std::int64_t i = 0; i < config.num_encoder_layers; ++i) {
    encoders_.push_back(std::make_unique<EncoderLayer>(
        config.d_model, config.num_heads, config.ffn_hidden, rng));
  }
  for (std::int64_t i = 0; i < config.num_decoder_layers; ++i) {
    decoders_.push_back(std::make_unique<DecoderLayer>(
        config.d_model, config.num_heads, config.ffn_hidden, rng));
  }
  final_norm_ = std::make_unique<LayerNormLayer>(config.d_model);
  lm_head_ = std::make_unique<Linear>(config.d_model, config.vocab_size, rng);
}

Var TransformerLm::forward(const std::vector<std::int64_t>& ids,
                           std::int64_t batch, std::int64_t seq_len) const {
  check(static_cast<std::int64_t>(ids.size()) == batch * seq_len,
        "TransformerLm::forward: id count mismatch");
  Var x = embedding(token_embedding_, ids);  // [B*T, D]
  x = reshape(x, {batch, seq_len, config_.d_model});
  x = pos_->forward(x);

  // Encoder runs causally so the LM never peeks at future tokens.
  Var memory = x;
  for (const auto& layer : encoders_) {
    memory = layer->forward(memory, /*causal=*/true);
  }
  Var y = memory;
  for (const auto& layer : decoders_) {
    y = layer->forward(y, memory);
  }
  y = final_norm_->forward(y);
  y = reshape(y, {batch * seq_len, config_.d_model});
  return lm_head_->forward(y);  // [B*T, V]
}

Var TransformerLm::loss(const LmBatch& batch) const {
  Var logits = forward(batch.inputs, batch.batch, batch.seq_len);
  return cross_entropy(logits, batch.targets);
}

double TransformerLm::evaluate(const LmBatcher& batcher,
                               std::int64_t max_batches) const {
  std::int64_t hits = 0;
  std::int64_t total = 0;
  for (std::int64_t bi = 0; bi < max_batches; ++bi) {
    const LmBatch batch =
        batcher.at(bi * batcher.num_windows() / std::max<std::int64_t>(max_batches, 1));
    Var logits = forward(batch.inputs, batch.batch, batch.seq_len);
    const Tensor& lv = logits.value();
    const std::int64_t v = config_.vocab_size;
    for (std::int64_t r = 0; r < batch.batch * batch.seq_len; ++r) {
      const float* row = lv.data() + r * v;
      std::int64_t best = 0;
      for (std::int64_t c = 1; c < v; ++c) {
        if (row[c] > row[best]) {
          best = c;
        }
      }
      hits += (best == batch.targets[static_cast<std::size_t>(r)]) ? 1 : 0;
      ++total;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

void TransformerLm::collect_params(const std::string& prefix,
                                   std::vector<NamedParam>& out) const {
  out.push_back({prefix + "token_embedding", token_embedding_});
  for (std::size_t i = 0; i < encoders_.size(); ++i) {
    encoders_[i]->collect_params(
        prefix + "encoder." + std::to_string(i) + ".", out);
  }
  for (std::size_t i = 0; i < decoders_.size(); ++i) {
    decoders_[i]->collect_params(
        prefix + "decoder." + std::to_string(i) + ".", out);
  }
  final_norm_->collect_params(prefix + "final_norm.", out);
  lm_head_->collect_params(prefix + "lm_head.", out);
}

std::vector<Linear*> TransformerLm::prunable() {
  std::vector<Linear*> out;
  for (auto& enc : encoders_) {
    for (Linear* l : enc->prunable()) {
      out.push_back(l);
    }
  }
  for (auto& dec : decoders_) {
    for (Linear* l : dec->prunable()) {
      out.push_back(l);
    }
  }
  out.push_back(lm_head_.get());
  return out;
}

}  // namespace rt3
