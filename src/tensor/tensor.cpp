#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace rt3 {

std::int64_t Tensor::volume(const Shape& shape) {
  std::int64_t v = 1;
  for (std::int64_t d : shape) {
    check(d >= 0, "Tensor: negative dimension");
    v *= d;
  }
  return shape.empty() ? 0 : v;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(volume(shape_)), 0.0F) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  check(volume(shape_) == static_cast<std::int64_t>(data_.size()),
        "Tensor: data size does not match shape volume");
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0F); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) {
    x = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& x : t.data_) {
    x = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::from_vector(const std::vector<float>& values) {
  return Tensor({static_cast<std::int64_t>(values.size())}, values);
}

Tensor Tensor::scalar(float value) { return Tensor({1}, {value}); }

std::int64_t Tensor::size(std::int64_t axis) const {
  if (axis < 0) {
    axis += dim();
  }
  check(axis >= 0 && axis < dim(), "Tensor::size: axis out of range");
  return shape_[static_cast<std::size_t>(axis)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  check(volume(new_shape) == numel(),
        "Tensor::reshaped: volume mismatch");
  return Tensor(std::move(new_shape), data_);
}

float& Tensor::operator[](std::int64_t flat) {
  check(flat >= 0 && flat < numel(), "Tensor: flat index out of range");
  return data_[static_cast<std::size_t>(flat)];
}

float Tensor::operator[](std::int64_t flat) const {
  check(flat >= 0 && flat < numel(), "Tensor: flat index out of range");
  return data_[static_cast<std::size_t>(flat)];
}

std::int64_t Tensor::flat_index(const std::vector<std::int64_t>& index) const {
  check(static_cast<std::int64_t>(index.size()) == dim(),
        "Tensor: index arity mismatch");
  std::int64_t flat = 0;
  for (std::size_t d = 0; d < index.size(); ++d) {
    check(index[d] >= 0 && index[d] < shape_[d],
          "Tensor: index out of range");
    flat = flat * shape_[d] + index[d];
  }
  return flat;
}

float& Tensor::at(const std::vector<std::int64_t>& index) {
  return data_[static_cast<std::size_t>(flat_index(index))];
}

float Tensor::at(const std::vector<std::int64_t>& index) const {
  return data_[static_cast<std::size_t>(flat_index(index))];
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_(const Tensor& other) {
  check(shape_ == other.shape_, "Tensor::add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Tensor::scale_(float factor) {
  for (auto& x : data_) {
    x *= factor;
  }
}

void Tensor::add_scaled_(const Tensor& other, float factor) {
  check(shape_ == other.shape_, "Tensor::add_scaled_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += factor * other.data_[i];
  }
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float x : data_) {
    acc += x;
  }
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  check(numel() > 0, "Tensor::mean of empty tensor");
  return sum() / static_cast<float>(numel());
}

float Tensor::min() const {
  check(numel() > 0, "Tensor::min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  check(numel() > 0, "Tensor::max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::l2_norm() const {
  double acc = 0.0;
  for (float x : data_) {
    acc += static_cast<double>(x) * static_cast<double>(x);
  }
  return static_cast<float>(std::sqrt(acc));
}

double Tensor::sparsity() const {
  if (numel() == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(count_nonzero()) /
                   static_cast<double>(numel());
}

std::int64_t Tensor::count_nonzero() const {
  std::int64_t n = 0;
  for (float x : data_) {
    n += (x != 0.0F) ? 1 : 0;
  }
  return n;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) {
      return false;
    }
  }
  return true;
}

std::string Tensor::to_string() const {
  std::ostringstream os;
  os << "Tensor[";
  for (std::size_t d = 0; d < shape_.size(); ++d) {
    os << shape_[d] << (d + 1 < shape_.size() ? "," : "");
  }
  os << "] {";
  const std::int64_t show = std::min<std::int64_t>(numel(), 8);
  for (std::int64_t i = 0; i < show; ++i) {
    os << data_[static_cast<std::size_t>(i)] << (i + 1 < show ? ", " : "");
  }
  if (numel() > show) {
    os << ", ...";
  }
  os << "}";
  return os.str();
}

Tensor add(const Tensor& a, const Tensor& b) {
  check(a.shape() == b.shape(), "add: shape mismatch");
  Tensor out = a;
  out.add_(b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check(a.shape() == b.shape(), "sub: shape mismatch");
  Tensor out = a;
  out.add_scaled_(b, -1.0F);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check(a.shape() == b.shape(), "mul: shape mismatch");
  Tensor out = a;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] *= b[i];
  }
  return out;
}

Tensor matmul2d(const Tensor& a, const Tensor& b) {
  check(a.dim() == 2 && b.dim() == 2, "matmul2d: need 2-D operands");
  const std::int64_t m = a.size(0);
  const std::int64_t k = a.size(1);
  const std::int64_t n = b.size(1);
  check(b.size(0) == k, "matmul2d: inner dimension mismatch");
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // i-k-j loop order: streams through b row-wise, cache-friendly.
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0F) {
        continue;  // pruned weights cost nothing, mirroring sparse execution
      }
      const float* brow = pb + kk * n;
      float* orow = po + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

Tensor transpose2d(const Tensor& a) {
  check(a.dim() == 2, "transpose2d: need 2-D operand");
  const std::int64_t m = a.size(0);
  const std::int64_t n = a.size(1);
  Tensor out({n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      out[j * m + i] = a[i * n + j];
    }
  }
  return out;
}

}  // namespace rt3
