// Block-structured sparse format produced by Level-1 pruning.
//
// The weight matrix is divided into `num_blocks` row-wise blocks; within
// each block whole columns are pruned.  Storage per block is a dense
// payload of the kept columns plus one index per kept column — the
// hardware-friendly layout the paper contrasts with COO (Section III-B).
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/pattern.hpp"
#include "tensor/tensor.hpp"

namespace rt3 {

/// Row-wise-blocked, column-pruned matrix.
class BlockPrunedMatrix {
 public:
  /// Builds from a dense matrix whose pruned columns (within each block)
  /// are exactly zero.  A column of a block is kept iff it has any nonzero.
  static BlockPrunedMatrix from_dense(const Tensor& dense,
                                      std::int64_t num_blocks);

  Tensor to_dense() const;

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t num_blocks() const {
    return static_cast<std::int64_t>(kept_cols_.size());
  }
  /// Rows per block (kernel-facing: rows() / num_blocks()).
  std::int64_t block_rows() const { return block_rows_; }
  const std::vector<std::int64_t>& kept_cols(std::int64_t block) const;
  /// Dense payload of one block, [block_rows x kept_cols(block).size()]
  /// row-major — the array the kept-column GEMM kernel streams.
  const std::vector<float>& block_values(std::int64_t block) const;

  /// this [R,C] x dense [C,N] -> [R,N], touching only kept columns.
  Tensor multiply(const Tensor& dense) const;

  std::int64_t nnz_values() const;
  double sparsity() const;

  /// 4 B per stored value + 4 B per kept-column index per block.
  std::int64_t storage_bytes() const;

 private:
  BlockPrunedMatrix(std::int64_t rows, std::int64_t cols) noexcept
      : rows_(rows), cols_(cols) {}

  std::int64_t rows_;
  std::int64_t cols_;
  std::int64_t block_rows_ = 0;
  std::vector<std::vector<std::int64_t>> kept_cols_;  // per block
  std::vector<std::vector<float>> values_;  // per block, [block_rows x kept]
};

/// Pattern-masked matrix: every psize x psize tile carries a pattern id
/// into a shared PatternSet.  This is the Level-2 execution format.
class PatternMaskedMatrix {
 public:
  /// Assigns each tile the set's pattern with maximal retained L2 (the
  /// paper's selection rule) and stores only the masked values.
  static PatternMaskedMatrix from_dense(const Tensor& dense,
                                        const PatternSet& set);

  Tensor to_dense() const;

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t psize() const { return psize_; }
  const std::vector<std::int64_t>& assignments() const { return assignment_; }
  /// Tile-major kept values and the shared pattern library (kernel-facing).
  const std::vector<float>& values() const { return values_; }
  const PatternSet& pattern_set() const { return set_; }

  Tensor multiply(const Tensor& dense) const;

  double sparsity() const;

  /// Stored values (4 B each) + per-tile pattern id (2 B) + the pattern
  /// set bitmaps.  The PATTERN SET portion (set bitmaps + ids) is what a
  /// run-time switch must transfer; values stay in place because all sets
  /// mask the same backbone.
  std::int64_t storage_bytes() const;
  std::int64_t switch_payload_bytes() const;

 private:
  PatternMaskedMatrix(std::int64_t rows, std::int64_t cols,
                      std::int64_t psize) noexcept
      : rows_(rows), cols_(cols), psize_(psize) {}

  std::int64_t rows_;
  std::int64_t cols_;
  std::int64_t psize_;
  PatternSet set_;
  std::vector<std::int64_t> assignment_;  // tile-major pattern ids
  std::vector<float> values_;             // kept values, tile-major
};

}  // namespace rt3
