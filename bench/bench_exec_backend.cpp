// Measured-vs-analytic execution bench: per-level batch latency under
// both backends, PlanCache swap wall time, calibration fit quality, and
// one end-to-end measured burst serve session.
//
// Emits a human table on stdout and machine-readable BENCH_exec.json so
// the perf trajectory tracks the real execution path from this PR on.
//
//   bench_exec_backend [OUT.json] [REPEATS]
//
// REPEATS (default 5) sizes every median; CI smoke runs with REPEATS=1.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "exec/analytic_backend.hpp"
#include "exec/calibrator.hpp"
#include "exec/measured_backend.hpp"
#include "pruning/model_pruner.hpp"
#include "pruning/pattern_prune.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"

namespace {

using namespace rt3;

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_exec.json");
  std::int64_t repeats = 5;
  if (argc > 2) {
    try {
      repeats = std::stoll(argv[2]);
    } catch (const std::exception&) {
      std::cerr << "bench_exec_backend: REPEATS must be an integer, got '"
                << argv[2] << "'\n";
      return 2;
    }
    if (repeats < 1) {
      std::cerr << "bench_exec_backend: REPEATS must be >= 1\n";
      return 2;
    }
  }

  std::cout << "\n=== exec: measured kernels vs analytic model ===\n"
            << "Pattern-mode kernels over a 3-layer 96x96 backbone, one\n"
            << "pattern set per {l6,l4,l3} ladder level, " << repeats
            << " repeat(s) per point.\n\n";

  // Backbone + per-level pattern sets (denser set at the faster level).
  Rng rng(31);
  std::vector<std::unique_ptr<Linear>> owned;
  std::vector<Linear*> layers;
  for (int i = 0; i < 3; ++i) {
    owned.push_back(std::make_unique<Linear>(96, 96, rng));
    layers.push_back(owned.back().get());
  }
  ModelPruner pruner(layers);
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.25;
  pruner.apply_bp(bp);
  std::vector<PatternSet> sets;
  for (double s : {0.25, 0.5, 0.75}) {
    sets.push_back(random_pattern_set(4, s, 2, rng));
  }

  const VfTable table = VfTable::odroid_xu3_a7();
  std::vector<double> freqs;
  for (std::int64_t li : paper_serve_ladder()) {
    freqs.push_back(table.level(li).freq_mhz);
  }
  MeasuredBackendConfig mcfg;
  mcfg.mode = ExecMode::kPattern;
  mcfg.threads = 2;
  MeasuredBackend measured(mcfg, layers, pruner.backbone_masks(), sets,
                           freqs);
  measured.auto_scale(0.8 * 115.0);

  const LatencyModel latency = paper_calibrated_latency();
  const AnalyticBackend analytic(latency, ModelSpec::paper_transformer(),
                                 ExecMode::kPattern, freqs,
                                 paper_ladder_sparsities(latency, 115.0));

  TablePrinter t({"level", "freq (MHz)", "analytic b2 (ms)",
                  "measured wall b2 (ms)", "measured virt b2 (ms)",
                  "plan swap (ms)"});
  std::string levels_json;
  for (std::int64_t pos = 0; pos < 3; ++pos) {
    // Swap wall time measured on a real transition (cycle away first).
    std::vector<double> swap_walls;
    for (std::int64_t rep = 0; rep < repeats; ++rep) {
      measured.activate_level((pos + 1) % 3);
      swap_walls.push_back(measured.activate_level(pos));
    }
    measured.run_batch(2, pos);  // warm
    std::vector<double> walls;
    std::vector<double> virts;
    for (std::int64_t rep = 0; rep < repeats; ++rep) {
      const BatchExecution exec = measured.run_batch(2, pos);
      walls.push_back(exec.kernel_wall_ms);
      virts.push_back(exec.latency_ms);
    }
    const double analytic_ms = analytic.batch_latency_ms(2, pos);
    const double wall = median(walls);
    const double virt = median(virts);
    const double swap = median(swap_walls);
    const std::string name =
        table.level(paper_serve_ladder()[static_cast<std::size_t>(pos)]).name;
    t.add_row({name, fmt_f(freqs[static_cast<std::size_t>(pos)], 0),
               fmt_f(analytic_ms, 2), fmt_f(wall, 4), fmt_f(virt, 2),
               fmt_f(swap, 5)});
    levels_json += std::string(pos == 0 ? "" : ",\n") +
                   "    {\"level\": \"" + name +
                   "\", \"freq_mhz\": " + std::to_string(freqs[static_cast<std::size_t>(pos)]) +
                   ", \"analytic_batch2_ms\": " + std::to_string(analytic_ms) +
                   ", \"measured_wall_batch2_ms\": " + std::to_string(wall) +
                   ", \"measured_virtual_batch2_ms\": " + std::to_string(virt) +
                   ", \"plan_swap_wall_ms\": " + std::to_string(swap) + "}";
  }
  std::cout << t.str() << "\n";

  // Calibration fit over the same layers.
  CalibratorConfig ccfg;
  ccfg.batch_sizes = {1, 2, 4, 8};
  ccfg.repeats = std::max<std::int64_t>(1, std::min<std::int64_t>(repeats, 3));
  const CalibrationResult cal =
      Calibrator(ccfg).run(mcfg, layers, pruner.backbone_masks(), sets);
  std::cout << "calibrated fit: macs/cycle " << fmt_f(cal.fitted.macs_per_cycle, 1)
            << ", fixed cycles " << fmt_f(cal.fitted.fixed_cycles, 0)
            << ", block overhead " << fmt_f(cal.fitted.block_overhead, 3)
            << ", pattern overhead " << fmt_f(cal.fitted.pattern_overhead, 3)
            << ", mean |rel err| " << fmt_pct(cal.mean_abs_rel_error) << "\n\n";

  // End-to-end burst serve session on the measured backend.
  ServeSessionConfig scfg;
  scfg.backend = ExecBackendKind::kMeasured;
  scfg.shed_expired = true;
  ServeSession session(scfg);
  TrafficConfig tcfg;
  tcfg.scenario = TrafficScenario::kBurst;
  tcfg.rate_rps = 3.0;
  tcfg.duration_ms = repeats > 1 ? 60'000.0 : 15'000.0;
  tcfg.deadline_slack_ms = 350.0;
  const ServerStats stats =
      serve_concurrent(session.server(), generate_traffic(tcfg), 2);
  std::cout << "measured burst session:\n" << stats.summary();

  std::string json = "{\n  \"levels\": [\n" + levels_json + "\n  ],\n";
  json += "  \"plan_build_wall_ms\": " +
          std::to_string(measured.plans().build_wall_ms()) + ",\n";
  json += "  \"calibration\": {\"macs_per_cycle\": " +
          std::to_string(cal.fitted.macs_per_cycle) +
          ", \"fixed_cycles\": " + std::to_string(cal.fitted.fixed_cycles) +
          ", \"block_overhead\": " + std::to_string(cal.fitted.block_overhead) +
          ", \"pattern_overhead\": " +
          std::to_string(cal.fitted.pattern_overhead) +
          ", \"mean_abs_rel_error\": " +
          std::to_string(cal.mean_abs_rel_error) + "},\n";
  json += "  \"serve_measured_burst\": " + stats.to_json() + "\n}\n";
  std::ofstream out(out_path);
  out << json;
  out.close();
  std::cout << "\nwrote " << out_path << "\n"
            << "Plan swaps are pointer reassignments (microseconds) while\n"
            << "the per-level plans were compiled once up front — the\n"
            << "kernel-level analogue of the paper's ms-scale pattern-set\n"
            << "switch vs. minute-scale model reload.\n";
  return 0;
}
