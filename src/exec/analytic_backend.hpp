// Analytic execution backend: the historical LatencyModel path behind the
// ExecutionBackend interface.  The Server owns one of these by default,
// so attaching an explicit AnalyticBackend is bit-identical to attaching
// nothing — which is exactly the compatibility test in test_exec_backend.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/backend.hpp"
#include "perf/latency_model.hpp"
#include "perf/model_spec.hpp"

namespace rt3 {

class AnalyticBackend : public ExecutionBackend {
 public:
  /// `freqs_mhz[i]` / `sparsities[i]` describe governor-level position i
  /// (fast -> slow).  `sparsities` must already reflect the serving policy
  /// (e.g. a hardware-only baseline repeats the level-0 sparsity).
  AnalyticBackend(LatencyModel latency, ModelSpec spec, ExecMode mode,
                  std::vector<double> freqs_mhz,
                  std::vector<double> sparsities);

  const char* name() const override { return "analytic"; }

  /// One runtime setup per batch, MAC work per request (the Server's
  /// amortization rule).
  double batch_latency_ms(std::int64_t batch_size,
                          std::int64_t level_pos) const;

  BatchExecution run_batch(std::int64_t batch_size,
                           std::int64_t level_pos) override;
  double activate_level(std::int64_t level_pos) override;

  std::int64_t num_levels() const {
    return static_cast<std::int64_t>(freqs_mhz_.size());
  }

 private:
  LatencyModel latency_;
  ModelSpec spec_;
  ExecMode mode_;
  std::vector<double> freqs_mhz_;
  std::vector<double> sparsities_;
};

}  // namespace rt3
