// Tests for the nn module: Linear masking semantics, attention causality,
// layer shapes, model training smoke tests, parameter registries.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "data/corpus.hpp"
#include "data/glue.hpp"
#include "nn/distilbert.hpp"
#include "nn/layers.hpp"
#include "nn/linear.hpp"
#include "nn/transformer_lm.hpp"
#include "tensor/optim.hpp"

namespace rt3 {
namespace {

TEST(Linear, ForwardShape2dAnd3d) {
  Rng rng(1);
  Linear layer(8, 5, rng);
  Var x2(Tensor::randn({3, 8}, rng));
  EXPECT_EQ(layer.forward(x2).shape(), (Shape{3, 5}));
  Var x3(Tensor::randn({2, 4, 8}, rng));
  EXPECT_EQ(layer.forward(x3).shape(), (Shape{2, 4, 5}));
}

TEST(Linear, RejectsWrongInputDim) {
  Rng rng(2);
  Linear layer(8, 5, rng);
  Var x(Tensor::randn({3, 7}, rng));
  EXPECT_THROW(layer.forward(x), CheckError);
}

TEST(Linear, MaskZeroesWeightsAndOutputContribution) {
  Rng rng(3);
  Linear layer(4, 4, rng, /*bias=*/false);
  Tensor mask = Tensor::zeros({4, 4});  // prune everything
  layer.set_mask(mask);
  Var x(Tensor::randn({2, 4}, rng));
  const Var y = layer.forward(x);
  EXPECT_TRUE(y.value().allclose(Tensor::zeros({2, 4})));
  EXPECT_DOUBLE_EQ(layer.mask_sparsity(), 1.0);
}

TEST(Linear, MaskedWeightsGetNoGradient) {
  Rng rng(4);
  Linear layer(3, 3, rng, /*bias=*/false);
  Tensor mask = Tensor::ones({3, 3});
  mask[0] = 0.0F;  // prune one entry
  layer.set_mask(mask);
  Var x(Tensor::ones({1, 3}));
  Var loss = sum_all(layer.forward(x));
  loss.backward();
  EXPECT_FLOAT_EQ(layer.weight().grad()[0], 0.0F);
  EXPECT_NE(layer.weight().grad()[1], 0.0F);
}

TEST(Linear, MaskMustBeBinaryAndShaped) {
  Rng rng(5);
  Linear layer(3, 3, rng);
  EXPECT_THROW(layer.set_mask(Tensor::full({3, 3}, 0.5F)), CheckError);
  EXPECT_THROW(layer.set_mask(Tensor::ones({2, 3})), CheckError);
}

TEST(Linear, ClearMaskRestoresDense) {
  Rng rng(6);
  Linear layer(3, 3, rng);
  layer.set_mask(Tensor::zeros({3, 3}));
  EXPECT_TRUE(layer.has_mask());
  layer.clear_mask();
  EXPECT_FALSE(layer.has_mask());
  EXPECT_DOUBLE_EQ(layer.mask_sparsity(), 0.0);
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(7);
  LayerNormLayer ln(8);
  Var x(Tensor::randn({4, 8}, rng, 5.0F));
  const Var y = ln.forward(x);
  for (int r = 0; r < 4; ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (int c = 0; c < 8; ++c) {
      mean += y.value()[r * 8 + c];
    }
    mean /= 8.0;
    for (int c = 0; c < 8; ++c) {
      const double d = y.value()[r * 8 + c] - mean;
      var += d * d;
    }
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(PositionalEncoding, DistinctPositionsAndBounded) {
  PositionalEncoding pos(16, 8);
  Var x(Tensor::zeros({1, 16, 8}));
  const Var y = pos.forward(x);
  // Values bounded by 1 in magnitude; rows differ.
  bool any_diff = false;
  for (int t = 0; t < 16; ++t) {
    for (int d = 0; d < 8; ++d) {
      EXPECT_LE(std::abs(y.value()[(t)*8 + d]), 1.0F + 1e-6F);
    }
  }
  for (int d = 0; d < 8; ++d) {
    any_diff = any_diff || (y.value()[0 * 8 + d] != y.value()[5 * 8 + d]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Attention, OutputShape) {
  Rng rng(8);
  MultiHeadAttention mha(16, 4, rng);
  Var x(Tensor::randn({2, 6, 16}, rng));
  EXPECT_EQ(mha.forward(x, x, x, false).shape(), (Shape{2, 6, 16}));
  EXPECT_EQ(mha.forward(x, x, x, true).shape(), (Shape{2, 6, 16}));
}

TEST(Attention, CausalMaskBlocksFuture) {
  // With causal masking, changing a FUTURE token must not change the
  // output at an earlier position.
  Rng rng(9);
  MultiHeadAttention mha(8, 2, rng);
  Tensor base = Tensor::randn({1, 4, 8}, rng);
  Tensor perturbed = base;
  for (int d = 0; d < 8; ++d) {
    perturbed[3 * 8 + d] += 10.0F;  // change last position only
  }
  const Var ya = mha.forward(Var(base), Var(base), Var(base), true);
  const Var yb =
      mha.forward(Var(perturbed), Var(perturbed), Var(perturbed), true);
  for (int t = 0; t < 3; ++t) {
    for (int d = 0; d < 8; ++d) {
      EXPECT_NEAR(ya.value()[t * 8 + d], yb.value()[t * 8 + d], 1e-4F)
          << "position " << t << " leaked future information";
    }
  }
}

TEST(Attention, NonCausalAttendsEverywhere) {
  Rng rng(10);
  MultiHeadAttention mha(8, 2, rng);
  Tensor base = Tensor::randn({1, 4, 8}, rng);
  Tensor perturbed = base;
  for (int d = 0; d < 8; ++d) {
    perturbed[3 * 8 + d] += 10.0F;
  }
  const Var ya = mha.forward(Var(base), Var(base), Var(base), false);
  const Var yb =
      mha.forward(Var(perturbed), Var(perturbed), Var(perturbed), false);
  // Early positions SHOULD change without the causal mask.
  float diff = 0.0F;
  for (int d = 0; d < 8; ++d) {
    diff += std::abs(ya.value()[d] - yb.value()[d]);
  }
  EXPECT_GT(diff, 1e-3F);
}

TEST(Attention, CrossAttentionUsesMemoryLength) {
  Rng rng(11);
  MultiHeadAttention mha(8, 2, rng);
  Var q(Tensor::randn({1, 3, 8}, rng));
  Var kv(Tensor::randn({1, 7, 8}, rng));
  EXPECT_EQ(mha.forward(q, kv, kv, false).shape(), (Shape{1, 3, 8}));
}

TEST(Encoder, PrunableLayerCount) {
  Rng rng(12);
  EncoderLayer enc(16, 4, 32, rng);
  EXPECT_EQ(enc.prunable().size(), 6U);  // 4 attention + 2 ffn
  DecoderLayer dec(16, 4, 32, rng);
  EXPECT_EQ(dec.prunable().size(), 10U);  // self 4 + cross 4 + ffn 2
}

TEST(TransformerLm, ForwardShapeAndParams) {
  TransformerLmConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 32;
  cfg.max_seq_len = 16;
  TransformerLm lm(cfg);
  std::vector<std::int64_t> ids(2 * 8, 1);
  const Var logits = lm.forward(ids, 2, 8);
  EXPECT_EQ(logits.shape(), (Shape{16, 64}));
  EXPECT_GT(lm.num_params(), 0);
  // 2 encoders x 6 + 1 decoder x 10 + lm_head.
  EXPECT_EQ(lm.prunable().size(), 23U);
}

TEST(TransformerLm, NamedParamsAreUnique) {
  TransformerLmConfig cfg;
  cfg.vocab_size = 32;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 16;
  TransformerLm lm(cfg);
  auto named = lm.named_parameters("lm.");
  std::set<std::string> names;
  for (const auto& np : named) {
    EXPECT_TRUE(names.insert(np.name).second) << "duplicate " << np.name;
    EXPECT_EQ(np.name.rfind("lm.", 0), 0U);
  }
}

TEST(TransformerLm, LearnsPlantedBigram) {
  // End-to-end sanity: a few dozen Adam steps on a strongly-ruled corpus
  // must lift next-word accuracy far above chance.
  CorpusConfig ccfg;
  ccfg.vocab_size = 32;
  ccfg.num_tokens = 4000;
  ccfg.rule_strength = 0.95;
  Corpus corpus(ccfg);

  TransformerLmConfig cfg;
  cfg.vocab_size = 32;
  cfg.d_model = 24;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 48;
  cfg.max_seq_len = 16;
  TransformerLm lm(cfg);

  LmBatcher train_batcher(corpus.train(), 8, 12);
  LmBatcher valid_batcher(corpus.valid(), 8, 12);
  Adam opt(lm.parameters(), 8e-3F);
  Rng rng(13);
  const double before = lm.evaluate(valid_batcher, 4);
  for (int step = 0; step < 180; ++step) {
    opt.zero_grad();
    Var loss = lm.loss(train_batcher.next(rng));
    loss.backward();
    opt.step();
  }
  const double after = lm.evaluate(valid_batcher, 4);
  EXPECT_GT(after, before + 0.3);
  EXPECT_GT(after, 0.5);
}

TEST(DistilBert, ForwardShapes) {
  DistilBertConfig cfg;
  cfg.vocab_size = 64;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 32;
  cfg.num_layers = 2;
  cfg.num_outputs = 3;
  DistilBertLike model(cfg);
  std::vector<std::int64_t> ids(4 * 10, 2);
  EXPECT_EQ(model.forward(ids, 4, 10).shape(), (Shape{4, 3}));
  // 2 layers x 6 prunable + pooler.
  EXPECT_EQ(model.prunable().size(), 13U);
}

TEST(DistilBert, LearnsEasyClassificationTask) {
  GlueTaskConfig gcfg;
  gcfg.task = GlueTask::kSst2;
  gcfg.vocab_size = 128;
  gcfg.seq_len = 16;
  gcfg.train_size = 256;
  gcfg.dev_size = 128;
  GlueDataset data(gcfg);

  DistilBertConfig cfg;
  cfg.vocab_size = 128;
  cfg.d_model = 24;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 48;
  cfg.num_layers = 1;
  cfg.max_seq_len = 32;
  cfg.num_outputs = 2;
  DistilBertLike model(cfg);

  Adam opt(model.parameters(), 4e-3F);
  Rng rng(14);
  for (int step = 0; step < 50; ++step) {
    std::vector<GlueExample> batch;
    for (int i = 0; i < 16; ++i) {
      batch.push_back(
          data.train()[static_cast<std::size_t>(rng.uniform_int(
              static_cast<std::int64_t>(data.train().size())))]);
    }
    opt.zero_grad();
    Var loss = model.loss(data, batch);
    loss.backward();
    opt.step();
  }
  EXPECT_GT(model.evaluate(data), 0.7);
}

TEST(DistilBert, RegressionHeadPredictsScores) {
  GlueTaskConfig gcfg;
  gcfg.task = GlueTask::kStsB;
  gcfg.vocab_size = 128;
  gcfg.seq_len = 16;
  gcfg.train_size = 64;
  gcfg.dev_size = 32;
  GlueDataset data(gcfg);

  DistilBertConfig cfg;
  cfg.vocab_size = 128;
  cfg.d_model = 16;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 32;
  cfg.num_layers = 1;
  cfg.num_outputs = 1;
  DistilBertLike model(cfg);
  const auto scores = model.predict_scores(data.dev());
  EXPECT_EQ(scores.size(), 32U);
  // Metric computes without throwing and is a valid correlation.
  const double rho = data.evaluate_regression(scores);
  EXPECT_GE(rho, -1.0);
  EXPECT_LE(rho, 1.0);
}

}  // namespace
}  // namespace rt3
