// Reproduces paper Table IV: ablation of the two RT3 levels on the
// WikiText-2, RTE and STS-B analogs.
//
// Columns: No-Opt (dense), rBP only (random block pruning), rBP+rPP
// (random blocks + random patterns), rBP+PP (random blocks + guided
// patterns), BP only (Algorithm 1), RT3 (BP + RL-searched pattern sets).
// Paper shape: BP matches rBP's runs with far less accuracy loss; PP beats
// rPP; RT3 reaches ~4.96x runs on WikiText-2 with <1% accuracy loss.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "dvfs/dvfs.hpp"
#include "search/space.hpp"

namespace {

using namespace rt3;

struct MethodResult {
  std::string name;
  double avg_sparsity = 0.0;
  double runs = 0.0;
  double avg_accuracy = 0.0;
};

constexpr double kBudgetMj = 1.135e8;  // same budget scale as Table II
const std::vector<std::int64_t> kLevels = {5, 3, 2};

// Runs across the three equal energy tranches for per-level sparsities.
double runs_for(const ModelSpec& spec, const LatencyModel& latency,
                const std::vector<double>& sparsities, ExecMode mode) {
  const VfTable table = VfTable::odroid_xu3_a7();
  const PowerModel power;
  double total = 0.0;
  for (std::size_t i = 0; i < kLevels.size(); ++i) {
    const double s =
        sparsities.size() == 1 ? sparsities[0] : sparsities[i];
    const double lat = latency.latency_ms(
        spec, s, mode, table.level(kLevels[i]).freq_mhz);
    total += number_of_runs(kBudgetMj / 3.0,
                            power.power_mw(table.level(kLevels[i])), lat);
  }
  return total;
}

// Per-level target overall sparsities that just meet T.
std::vector<double> level_targets(const ModelSpec& spec,
                                  const LatencyModel& latency, double t_ms,
                                  double floor_sparsity) {
  const VfTable table = VfTable::odroid_xu3_a7();
  std::vector<double> out;
  for (std::int64_t li : kLevels) {
    out.push_back(std::max(
        floor_sparsity,
        latency.sparsity_for_latency(spec, ExecMode::kPattern,
                                     table.level(li).freq_mhz, t_ms)));
  }
  return out;
}

void print_block(const std::string& workload, double dense_score,
                 const std::vector<MethodResult>& methods) {
  std::cout << "\n--- " << workload << " ---\n";
  TablePrinter t({"Methods", "Avg. Spar.", "# runs(1e6)", "Impr.",
                  "Avg. Acc", "Acc. loss"});
  const double base_runs = methods.front().runs;
  for (const auto& m : methods) {
    t.add_row({m.name, fmt_pct(m.avg_sparsity), fmt_millions(m.runs),
               m.name == "No-Opt" ? "-" : fmt_x(m.runs / base_runs),
               fmt_pct(m.avg_accuracy),
               m.name == "No-Opt" ? "-"
                                  : fmt_pct(dense_score - m.avg_accuracy)});
  }
  std::cout << t.str();
}

// ---------------------------------------------------------------------------
// LM workload ablation
// ---------------------------------------------------------------------------

std::vector<MethodResult> ablate_lm(double t_ms) {
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel latency;
  latency.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);

  bench::LmWorkload base = bench::make_lm_workload(21);
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.35;

  TrainConfig ft;
  ft.steps = 60;
  ft.batch = 8;
  ft.seq_len = 16;
  ft.lr = 5e-3F;

  std::vector<MethodResult> rows;

  // No-Opt.
  rows.push_back({"No-Opt", 0.0, runs_for(spec, latency, {0.0}, ExecMode::kDense),
                  base.dense_accuracy});

  const auto clone_base = [&]() {
    auto clone = std::make_unique<TransformerLm>(base.model->config());
    copy_parameters(*clone, *base.model);
    return clone;
  };

  // rBP only.
  {
    auto model = clone_base();
    ModelPruner pruner(model->prunable());
    Rng rng(22);
    pruner.apply_random_bp(bp, rng);
    const double acc = train_lm(*model, *base.corpus, ft);
    const double s = pruner.overall_sparsity();
    rows.push_back({"rBP only", s, runs_for(spec, latency, {s}, ExecMode::kBlock),
                    acc});
  }

  const auto pp_row = [&](const std::string& name, bool random_backbone,
                          bool random_patterns, std::uint64_t seed) {
    auto model = clone_base();
    ModelPruner pruner(model->prunable());
    Rng rng(seed);
    if (random_backbone) {
      pruner.apply_random_bp(bp, rng);
    } else {
      pruner.apply_bp(bp);
    }
    train_lm(*model, *base.corpus, ft);  // recover the backbone
    const double backbone_sparsity = pruner.overall_sparsity();
    const auto targets = level_targets(spec, latency, t_ms, backbone_sparsity);
    std::vector<PatternSet> sets;
    std::vector<double> sigmas;
    for (double target : targets) {
      PatternSet set =
          random_patterns
              ? random_pattern_set(8, target, 4, rng)
              : pattern_set_from_layers(pruner.layers(), 8, target, 4, rng);
      sigmas.push_back(pruner.apply_pattern_set(set));
      pruner.restore_backbone();
      sets.push_back(std::move(set));
    }
    const JointTrainResult joint =
        joint_train_lm(*model, pruner, sets, *base.corpus, ft);
    double avg_acc = 0.0;
    double avg_sparsity = 0.0;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      avg_acc += joint.per_set_accuracy[i] / static_cast<double>(sets.size());
      avg_sparsity += sigmas[i] / static_cast<double>(sets.size());
    }
    rows.push_back({name, avg_sparsity,
                    runs_for(spec, latency, sigmas, ExecMode::kPattern),
                    avg_acc});
  };

  pp_row("rBP+rPP", true, true, 23);
  pp_row("rBP+PP", true, false, 24);

  // BP only.
  {
    auto model = clone_base();
    ModelPruner pruner(model->prunable());
    pruner.apply_bp(bp);
    const double acc = train_lm(*model, *base.corpus, ft);
    const double s = pruner.overall_sparsity();
    rows.push_back({"BP only", s, runs_for(spec, latency, {s}, ExecMode::kBlock),
                    acc});
  }

  // RT3: full pipeline.
  {
    auto model = clone_base();
    Rt3Options options = bench::bench_options(t_ms, /*episodes=*/3);
    options.bp = bp;
    Rt3LmPipeline pipeline(*model, *base.corpus, options, spec);
    const Rt3Result result = pipeline.run();
    double avg_acc = 0.0;
    double avg_sparsity = 0.0;
    std::vector<double> sigmas;
    for (const auto& sub : result.levels) {
      avg_acc += sub.accuracy / static_cast<double>(result.levels.size());
      avg_sparsity +=
          sub.overall_sparsity / static_cast<double>(result.levels.size());
      sigmas.push_back(sub.overall_sparsity);
    }
    rows.push_back({"RT3", avg_sparsity,
                    runs_for(spec, latency, sigmas, ExecMode::kPattern),
                    avg_acc});
  }

  return rows;
}

// ---------------------------------------------------------------------------
// GLUE workload ablation
// ---------------------------------------------------------------------------

std::vector<MethodResult> ablate_glue(GlueTask task, double t_ms,
                                      std::uint64_t seed) {
  const ModelSpec spec = ModelSpec::paper_distilbert();
  LatencyModel latency;
  latency.calibrate(spec, 0.5178, ExecMode::kPattern, 1400.0, 199.94);

  bench::GlueWorkload base = bench::make_glue_workload(task, seed);
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.35;

  TrainConfig ft;
  ft.steps = 50;
  ft.batch = 16;
  ft.lr = 5e-3F;

  std::vector<MethodResult> rows;
  rows.push_back({"No-Opt", 0.0, runs_for(spec, latency, {0.0}, ExecMode::kDense),
                  base.dense_score});

  const auto clone_base = [&]() {
    auto clone = std::make_unique<DistilBertLike>(base.model->config());
    copy_parameters(*clone, *base.model);
    return clone;
  };

  {
    auto model = clone_base();
    ModelPruner pruner(model->prunable());
    Rng rng(seed + 1);
    pruner.apply_random_bp(bp, rng);
    const double acc = train_glue(*model, *base.data, ft);
    const double s = pruner.overall_sparsity();
    rows.push_back({"rBP only", s, runs_for(spec, latency, {s}, ExecMode::kBlock),
                    acc});
  }

  const auto pp_row = [&](const std::string& name, bool random_backbone,
                          bool random_patterns, std::uint64_t s2) {
    auto model = clone_base();
    ModelPruner pruner(model->prunable());
    Rng rng(s2);
    if (random_backbone) {
      pruner.apply_random_bp(bp, rng);
    } else {
      pruner.apply_bp(bp);
    }
    train_glue(*model, *base.data, ft);
    const double backbone_sparsity = pruner.overall_sparsity();
    const auto targets = level_targets(spec, latency, t_ms, backbone_sparsity);
    std::vector<PatternSet> sets;
    std::vector<double> sigmas;
    for (double target : targets) {
      PatternSet set =
          random_patterns
              ? random_pattern_set(8, target, 4, rng)
              : pattern_set_from_layers(pruner.layers(), 8, target, 4, rng);
      sigmas.push_back(pruner.apply_pattern_set(set));
      pruner.restore_backbone();
      sets.push_back(std::move(set));
    }
    const JointTrainResult joint =
        joint_train_glue(*model, pruner, sets, *base.data, ft);
    double avg_acc = 0.0;
    double avg_sparsity = 0.0;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      avg_acc += joint.per_set_accuracy[i] / static_cast<double>(sets.size());
      avg_sparsity += sigmas[i] / static_cast<double>(sets.size());
    }
    rows.push_back({name, avg_sparsity,
                    runs_for(spec, latency, sigmas, ExecMode::kPattern),
                    avg_acc});
  };

  pp_row("rBP+rPP", true, true, seed + 2);
  pp_row("rBP+PP", true, false, seed + 3);

  {
    auto model = clone_base();
    ModelPruner pruner(model->prunable());
    pruner.apply_bp(bp);
    const double acc = train_glue(*model, *base.data, ft);
    const double s = pruner.overall_sparsity();
    rows.push_back({"BP only", s, runs_for(spec, latency, {s}, ExecMode::kBlock),
                    acc});
  }

  {
    auto model = clone_base();
    Rt3Options options = bench::bench_options(t_ms, /*episodes=*/3);
    options.bp = bp;
    Rt3GluePipeline pipeline(*model, *base.data, options, spec);
    const Rt3Result result = pipeline.run();
    double avg_acc = 0.0;
    double avg_sparsity = 0.0;
    std::vector<double> sigmas;
    for (const auto& sub : result.levels) {
      avg_acc += sub.accuracy / static_cast<double>(result.levels.size());
      avg_sparsity +=
          sub.overall_sparsity / static_cast<double>(result.levels.size());
      sigmas.push_back(sub.overall_sparsity);
    }
    rows.push_back({"RT3", avg_sparsity,
                    runs_for(spec, latency, sigmas, ExecMode::kPattern),
                    avg_acc});
  }

  return rows;
}

}  // namespace

int main() {
  using namespace rt3;
  bench::print_header("Table IV - two-level ablation",
                      "paper Table IV: No-Opt / rBP / rBP+rPP / rBP+PP / BP / RT3");

  const auto lm_rows = ablate_lm(104.0);
  print_block("WikiText-2 analog (T: 104 ms)", lm_rows.front().avg_accuracy,
              lm_rows);
  const auto rte_rows = ablate_glue(GlueTask::kRte, 200.0, 31);
  print_block("RTE analog (T: 200 ms)", rte_rows.front().avg_accuracy,
              rte_rows);
  const auto stsb_rows = ablate_glue(GlueTask::kStsB, 330.0, 41);
  print_block("STS-B analog (T: 330 ms)", stsb_rows.front().avg_accuracy,
              stsb_rows);

  std::cout << "\nPaper Table IV shape checks:\n"
            << "  * BP matches rBP on runs but loses LESS accuracy "
               "(paper: 0.64% vs 2.03% on WikiText-2);\n"
            << "  * guided PP loses less accuracy than random rPP at equal "
               "sparsity (paper: 4.88% vs 11.07%);\n"
            << "  * RT3 reaches the largest runs improvement with small "
               "accuracy loss (paper: 4.96x, 0.95%).\n";
  return 0;
}
