// Reproduces paper Table II: three deployment strategies under a 115 ms
// timing constraint and a fixed energy budget —
//   E1: one model, F-mode only (no reconfiguration),
//   E2: one model, DVFS across F/N/E modes (hardware-only),
//   E3: per-mode sub-models sized to meet T (hardware + software).
// Paper numbers: E2 = +17.30% runs over E1 but misses deadlines at N/E;
// E3 = 1.78x runs over E1 with all deadlines met.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "dvfs/dvfs.hpp"
#include "perf/latency_model.hpp"
#include "runtime/engine.hpp"

int main() {
  using namespace rt3;
  bench::print_header("Table II - HW vs HW+SW reconfiguration",
                      "paper Table II (T = 115 ms)");

  const VfTable table = VfTable::odroid_xu3_a7();
  const PowerModel power;
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel latency;
  // Anchor: the BP-only model M1 (64.26% sparsity) at F-mode = 114.59 ms.
  const double m1_sparsity = 0.6426;
  latency.calibrate(spec, m1_sparsity, ExecMode::kBlock, 1400.0, 114.59);

  const double kT = 115.0;
  const double budget_mj = 1.135e8;  // sized so E1 lands near the paper's 1.53e6 runs
  const std::vector<std::int64_t> modes = {5, 3, 2};  // F, N, E
  const std::vector<std::string> mode_names = {"F-Mode", "N-Mode", "E-Mode"};

  // Per-mode sub-model sparsities for E3: just meet T at each frequency.
  std::vector<double> e3_sparsity;
  for (std::int64_t li : modes) {
    e3_sparsity.push_back(std::max(
        m1_sparsity, latency.sparsity_for_latency(
                         spec, ExecMode::kPattern, table.level(li).freq_mhz,
                         kT)));
  }

  const auto runs_at = [&](std::int64_t li, double sparsity, ExecMode mode,
                           double energy) {
    const double lat =
        latency.latency_ms(spec, sparsity, mode, table.level(li).freq_mhz);
    return number_of_runs(energy, power.power_mw(table.level(li)), lat);
  };

  // E1: everything at F-mode.
  const double e1_runs = runs_at(5, m1_sparsity, ExecMode::kBlock, budget_mj);

  // E2/E3: budget in three equal tranches (the governor's equal tranches).
  double e2_runs = 0.0;
  double e3_runs = 0.0;
  for (std::size_t i = 0; i < modes.size(); ++i) {
    e2_runs += runs_at(modes[i], m1_sparsity, ExecMode::kBlock,
                       budget_mj / 3.0);
    e3_runs += runs_at(modes[i], e3_sparsity[i], ExecMode::kPattern,
                       budget_mj / 3.0);
  }

  TablePrinter t({"App.", "Model", "DVFS", "Lat. (ms)", "Sat.", "# runs(1e6)",
                  "Imp"});
  t.add_row({"E1", "M1", "F-Mode",
             fmt_f(latency.latency_ms(spec, m1_sparsity, ExecMode::kBlock,
                                      1400.0),
                   2),
             "Y", fmt_millions(e1_runs), "-"});
  t.add_separator();
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const double lat = latency.latency_ms(spec, m1_sparsity, ExecMode::kBlock,
                                          table.level(modes[i]).freq_mhz);
    t.add_row({i == 0 ? "E2" : "", "M1", mode_names[i], fmt_f(lat, 2),
               lat <= kT ? "Y" : "N",
               i == 0 ? fmt_millions(e2_runs) : "",
               i == 0 ? fmt_pct(e2_runs / e1_runs - 1.0) : ""});
  }
  t.add_separator();
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const double lat =
        latency.latency_ms(spec, e3_sparsity[i], ExecMode::kPattern,
                           table.level(modes[i]).freq_mhz);
    t.add_row({i == 0 ? "E3" : "", "M" + std::to_string(i + 1),
               mode_names[i], fmt_f(lat, 2), lat <= kT ? "Y" : "N",
               i == 0 ? fmt_millions(e3_runs) : "",
               i == 0 ? fmt_x(e3_runs / e1_runs) : ""});
  }
  std::cout << t.str();

  // Cross-check with the event-driven discharge simulator.
  const Governor governor = Governor::equal_tranches({5, 3, 2});
  DischargeConfig dcfg;
  dcfg.battery_capacity_mj = 2e4;  // scaled down: same ratios, faster sim
  dcfg.timing_constraint_ms = kT;
  dcfg.software_reconfig = false;
  const DischargeStats hw = simulate_discharge(
      dcfg, table, governor, power, latency, spec,
      {m1_sparsity, m1_sparsity, m1_sparsity}, ExecMode::kBlock);
  dcfg.software_reconfig = true;
  const DischargeStats hwsw = simulate_discharge(
      dcfg, table, governor, power, latency, spec, e3_sparsity,
      ExecMode::kPattern);

  std::cout << "\nDischarge-simulator cross-check (scaled battery):\n"
            << "  HW-only : " << hw.total_runs << " runs, "
            << hw.deadline_misses << " deadline misses\n"
            << "  HW+SW   : " << hwsw.total_runs << " runs, "
            << hwsw.deadline_misses << " deadline misses, "
            << hwsw.switches << " pattern-set switches\n";

  std::cout << "\nPaper Table II: E2 = +17.30% (misses T at N/E modes); "
               "E3 = 1.78x with all modes satisfying T = 115 ms.\n"
            << "Shape check: E2 > E1 with misses; E3 > E2 with zero misses.\n";
  return 0;
}
