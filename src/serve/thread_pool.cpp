#include "serve/thread_pool.hpp"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/check.hpp"

namespace rt3 {

ThreadPool::ThreadPool(std::int64_t num_threads, bool pin_to_cores) {
  check(num_threads >= 1, "ThreadPool: need at least one thread");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  const unsigned cores = std::max(1U, std::thread::hardware_concurrency());
  pinned_ = pin_to_cores;
  for (std::int64_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
    if (pin_to_cores) {
#if defined(__linux__)
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET(static_cast<unsigned>(i) % cores, &set);
      if (pthread_setaffinity_np(workers_.back().native_handle(),
                                 sizeof(set), &set) != 0) {
        pinned_ = false;  // best-effort: a restricted cgroup may refuse
      }
#else
      pinned_ = false;
#endif
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  has_work_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    check(!stopping_, "ThreadPool: submit after shutdown");
    tasks_.push_back(std::move(task));
  }
  has_work_.notify_one();
}

void ThreadPool::wait_idle() {
  UniqueLock lock(mu_);
  while (!(tasks_.empty() && active_ == 0)) {
    idle_.wait(lock);
  }
  if (first_error_ != nullptr) {
    const std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    bool poisoned = false;
    {
      UniqueLock lock(mu_);
      while (!(stopping_ || !tasks_.empty())) {
        has_work_.wait(lock);
      }
      if (tasks_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
      // After a failure the queue is poison: pop-and-drop the backlog so
      // wait_idle can rethrow promptly instead of waiting out every
      // queued task body.
      poisoned = first_error_ != nullptr;
    }
    if (!poisoned) {
      try {
        task();
      } catch (...) {
        MutexLock lock(mu_);
        if (first_error_ == nullptr) {
          first_error_ = std::current_exception();
        }
      }
    }
    {
      MutexLock lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) {
        idle_.notify_all();
      }
    }
  }
}

}  // namespace rt3
