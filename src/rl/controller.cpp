#include "rl/controller.hpp"

#include <cmath>

#include "common/check.hpp"

namespace rt3 {

RlController::RlController(const ControllerConfig& config) : config_(config) {
  check(config_.num_levels >= 1, "RlController: need at least one level");
  check(config_.num_sparsity_choices >= 1 && config_.num_variants >= 1,
        "RlController: empty action space");
  Rng rng(config_.seed);
  gru_ = std::make_unique<GruCell>(config_.hidden_dim, config_.hidden_dim, rng);
  step_embeddings_ =
      Var(Tensor::randn({2 * config_.num_levels, config_.hidden_dim}, rng,
                        0.2F),
          /*requires_grad=*/true);
  sparsity_head_ = std::make_unique<Linear>(config_.hidden_dim,
                                            config_.num_sparsity_choices, rng);
  variant_head_ =
      std::make_unique<Linear>(config_.hidden_dim, config_.num_variants, rng);
  optimizer_ = std::make_unique<Adam>(parameters(), config_.learning_rate);
}

EpisodeSample RlController::sample(Rng& rng) const { return roll(&rng); }

EpisodeSample RlController::sample_greedy() const { return roll(nullptr); }

EpisodeSample RlController::roll(Rng* rng) const {
  EpisodeSample episode;
  episode.log_prob_sum = Var(Tensor::scalar(0.0F));
  Var h = gru_->initial_state(1);

  const auto act = [&](const Linear& head, std::int64_t step) {
    Var x = embedding(step_embeddings_, {step});  // [1, hidden]
    h = gru_->forward(x, h);
    Var logits = head.forward(h);  // [1, K]
    Var logp = log_softmax_lastdim(logits);
    const std::int64_t k = logits.shape()[1];

    std::int64_t choice = 0;
    if (rng != nullptr) {
      std::vector<double> probs(static_cast<std::size_t>(k));
      for (std::int64_t i = 0; i < k; ++i) {
        probs[static_cast<std::size_t>(i)] =
            std::exp(static_cast<double>(logp.value()[i]));
      }
      choice = rng->categorical(probs);
    } else {
      for (std::int64_t i = 1; i < k; ++i) {
        if (logp.value()[i] > logp.value()[choice]) {
          choice = i;
        }
      }
    }
    Tensor onehot({1, k});
    onehot[choice] = 1.0F;
    episode.log_prob_sum =
        add(episode.log_prob_sum, sum_all(mul_const(logp, onehot)));
    return choice;
  };

  for (std::int64_t level = 0; level < config_.num_levels; ++level) {
    episode.sparsity_choice.push_back(act(*sparsity_head_, 2 * level));
    episode.variant_choice.push_back(act(*variant_head_, 2 * level + 1));
  }
  return episode;
}

double RlController::update(const EpisodeSample& episode, double reward) {
  if (!baseline_initialized_) {
    baseline_ = reward;
    baseline_initialized_ = true;
  }
  const double advantage = reward - baseline_;
  baseline_ = config_.baseline_decay * baseline_ +
              (1.0 - config_.baseline_decay) * reward;

  optimizer_->zero_grad();
  Var loss = scale(episode.log_prob_sum, static_cast<float>(-advantage));
  loss.backward();
  auto params = parameters();
  clip_grad_norm(params, 5.0F);
  optimizer_->step();
  return advantage;
}

void RlController::collect_params(const std::string& prefix,
                                  std::vector<NamedParam>& out) const {
  out.push_back({prefix + "step_embeddings", step_embeddings_});
  gru_->collect_params(prefix + "gru.", out);
  sparsity_head_->collect_params(prefix + "sparsity_head.", out);
  variant_head_->collect_params(prefix + "variant_head.", out);
}

}  // namespace rt3
