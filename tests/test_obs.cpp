// Observability layer (src/obs/): IntervalAccount overlap accounting,
// deadline-miss classification, attribution invariants on real serve and
// node sessions, trace determinism + Chrome-JSON validity, the metrics
// registry, and stats JSON round-trips.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/node.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/stats.hpp"
#include "serve/traffic.hpp"

namespace rt3 {
namespace {

// ---------------------------------------------------------------------
// Minimal strict JSON syntax checker (objects, arrays, strings, numbers,
// literals).  The repo emits JSON by hand, so tests validate the full
// grammar rather than trusting substring checks alone.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    i_ = 0;
    skip_ws();
    if (!value()) {
      return false;
    }
    skip_ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    if (i_ >= s_.size()) {
      return false;
    }
    switch (s_[i_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++i_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) {
        return false;
      }
      skip_ws();
      if (peek() != ':') {
        return false;
      }
      ++i_;
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      if (peek() == '}') {
        ++i_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++i_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++i_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      if (peek() == ']') {
        ++i_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') {
      return false;
    }
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) {
          return false;
        }
      }
      ++i_;
    }
    if (i_ >= s_.size()) {
      return false;
    }
    ++i_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') {
      ++i_;
    }
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    return i_ > start;
  }

  bool literal(const std::string& word) {
    if (s_.compare(i_, word.size(), word) != 0) {
      return false;
    }
    i_ += word.size();
    return true;
  }

  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t' ||
            s_[i_] == '\r')) {
      ++i_;
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

/// Extracts the number following `"key": ` in flat hand-rolled JSON.
double json_num_field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = json.find(needle);
  check(at != std::string::npos, "json_num_field: no key " + key);
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

/// Server over the paper ladder, exactly like the simulate CLI path.
Server make_paper_server(double capacity_mj, BatchPolicy policy) {
  const LatencyModel latency = paper_calibrated_latency();
  ServerConfig cfg;
  cfg.battery_capacity_mj = capacity_mj;
  cfg.batch = policy;
  return Server(cfg, VfTable::odroid_xu3_a7(),
                Governor::equal_tranches(paper_serve_ladder()), PowerModel(),
                latency, ModelSpec::paper_transformer(),
                paper_ladder_sparsities(latency, 115.0));
}

/// Bursty traffic with a tight-deadline fraction, so sessions produce
/// misses of more than one class.
std::vector<Request> tight_traffic(double rate_rps, std::int64_t num_models,
                                   double duration_ms = 60'000.0) {
  TrafficConfig tcfg;
  tcfg.scenario = TrafficScenario::kBurst;
  tcfg.duration_ms = duration_ms;
  tcfg.rate_rps = rate_rps;
  tcfg.deadline_slack_ms = 1'000.0;
  tcfg.tight_fraction = 0.4;
  tcfg.tight_slack_ms = 250.0;
  tcfg.num_models = num_models;
  return generate_traffic(tcfg);
}

ModelDeployment paper_deployment(ServerConfig cfg) {
  const LatencyModel latency = paper_calibrated_latency();
  ModelDeployment dep;
  dep.config(cfg)
      .spec(ModelSpec::paper_transformer())
      .latency(latency)
      .sparsities(paper_ladder_sparsities(latency, 115.0));
  return dep;
}

// ---------------------------------------------------------------------
// IntervalAccount

TEST(IntervalAccount, EmptyHasNoOverlap) {
  IntervalAccount acc;
  EXPECT_EQ(acc.size(), 0);
  EXPECT_DOUBLE_EQ(acc.total(), 0.0);
  EXPECT_DOUBLE_EQ(acc.overlap(0.0, 1e9), 0.0);
}

TEST(IntervalAccount, OverlapClipsAtBothEnds) {
  IntervalAccount acc;
  acc.add(10.0, 20.0);
  acc.add(30.0, 40.0);
  EXPECT_EQ(acc.size(), 2);
  EXPECT_DOUBLE_EQ(acc.total(), 20.0);
  EXPECT_DOUBLE_EQ(acc.overlap(0.0, 100.0), 20.0);  // covers everything
  EXPECT_DOUBLE_EQ(acc.overlap(0.0, 15.0), 5.0);    // clips head
  EXPECT_DOUBLE_EQ(acc.overlap(15.0, 35.0), 10.0);  // spans the gap
  EXPECT_DOUBLE_EQ(acc.overlap(12.0, 18.0), 6.0);   // inside one interval
  EXPECT_DOUBLE_EQ(acc.overlap(20.0, 30.0), 0.0);   // exactly the gap
  EXPECT_DOUBLE_EQ(acc.overlap(40.0, 50.0), 0.0);   // past the end
  EXPECT_DOUBLE_EQ(acc.overlap(35.0, 35.0), 0.0);   // empty query window
}

TEST(IntervalAccount, IgnoresZeroLengthAndRejectsOutOfOrder) {
  IntervalAccount acc;
  acc.add(5.0, 5.0);  // zero-length: ignored
  EXPECT_EQ(acc.size(), 0);
  acc.add(10.0, 20.0);
  acc.add(20.0, 25.0);  // abutting is fine (start == previous end)
  EXPECT_EQ(acc.size(), 2);
  EXPECT_THROW(acc.add(15.0, 30.0), CheckError);  // overlaps the past
}

// ---------------------------------------------------------------------
// attribute_wait / classify_miss

TEST(Attribution, FourPartsSumToLatency) {
  IntervalAccount switches;
  IntervalAccount execs;
  execs.add(0.0, 50.0);      // another batch runs while we wait
  switches.add(50.0, 60.0);  // then a pattern-set switch stalls us
  // Request: arrives at 10, starts at 80, ends at 120.
  const WaitBreakdown w = attribute_wait(switches, execs, 10.0, 80.0, 120.0);
  EXPECT_DOUBLE_EQ(w.queue_wait_ms, 40.0);    // [10, 50) of exec
  EXPECT_DOUBLE_EQ(w.switch_stall_ms, 10.0);  // [50, 60) of switch
  EXPECT_DOUBLE_EQ(w.batch_wait_ms, 20.0);    // [60, 80) idle hold
  EXPECT_DOUBLE_EQ(w.exec_ms, 40.0);          // [80, 120) own batch
  EXPECT_DOUBLE_EQ(
      w.queue_wait_ms + w.batch_wait_ms + w.switch_stall_ms + w.exec_ms,
      120.0 - 10.0);
}

TEST(Attribution, ClassifiesEachMissCauseExactlyOnce) {
  WaitBreakdown w;
  w.exec_ms = 40.0;
  w.switch_stall_ms = 10.0;
  // Met: end before deadline.
  EXPECT_EQ(classify_miss(w, 0.0, 90.0, 100.0), MissClass::kNone);
  // Exec: even a zero-wait solo launch (arrival + exec) blows it.
  EXPECT_EQ(classify_miss(w, 0.0, 120.0, 30.0), MissClass::kExec);
  // Switch: without the 10 ms stall it would have met the deadline.
  EXPECT_EQ(classify_miss(w, 0.0, 105.0, 100.0), MissClass::kSwitch);
  // Queued: stall removal is not enough, but the level was fast enough.
  EXPECT_EQ(classify_miss(w, 0.0, 130.0, 100.0), MissClass::kQueued);
  EXPECT_STREQ(miss_class_name(MissClass::kNone), "none");
  EXPECT_STREQ(miss_class_name(MissClass::kQueued), "queued");
  EXPECT_STREQ(miss_class_name(MissClass::kSwitch), "switch");
  EXPECT_STREQ(miss_class_name(MissClass::kExec), "exec");
}

TEST(Attribution, SessionInvariantsHoldOnRealTraffic) {
  Server server = make_paper_server(9'000.0, {4, 30.0});
  const ServerStats stats = server.serve(tight_traffic(12.0, 1));
  ASSERT_GT(stats.completed, 0);
  ASSERT_GT(stats.deadline_misses, 0);  // traffic is tight enough to miss
  // Every miss lands in exactly one class.
  EXPECT_EQ(stats.miss_queued + stats.miss_switch + stats.miss_exec,
            stats.deadline_misses);
  // The decomposition vectors are parallel to latency_ms and each
  // request's four parts sum to its latency.
  const std::size_t n = stats.latency_ms.size();
  ASSERT_EQ(stats.queue_wait_ms.size(), n);
  ASSERT_EQ(stats.batch_wait_ms.size(), n);
  ASSERT_EQ(stats.switch_stall_req_ms.size(), n);
  ASSERT_EQ(stats.exec_req_ms.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const double parts = stats.queue_wait_ms[i] + stats.batch_wait_ms[i] +
                         stats.switch_stall_req_ms[i] + stats.exec_req_ms[i];
    EXPECT_NEAR(parts, stats.latency_ms[i], 1e-6);
  }
  // The totals are the sums of the same vectors, so the summed
  // decomposition also closes against total latency.
  double latency_total = 0.0;
  for (double x : stats.latency_ms) {
    latency_total += x;
  }
  double exec_total = 0.0;
  for (double x : stats.exec_req_ms) {
    exec_total += x;
  }
  EXPECT_NEAR(stats.queue_wait_total_ms() + stats.batch_wait_total_ms() +
                  stats.switch_stall_total_ms() + exec_total,
              latency_total, 1e-6 * static_cast<double>(n + 1));
}

// ---------------------------------------------------------------------
// Tracing: overhead contract, determinism, Chrome JSON validity

TEST(Trace, OffPathIsBitwiseIdenticalToUntraced) {
  const std::vector<Request> schedule = tight_traffic(10.0, 1);
  Server plain = make_paper_server(9'000.0, {4, 30.0});
  const ServerStats untraced = plain.serve(schedule);

  Server traced_server = make_paper_server(9'000.0, {4, 30.0});
  TraceRecorder trace(/*record_wall=*/false);
  traced_server.set_trace(&trace);
  const ServerStats traced = traced_server.serve(schedule);

  EXPECT_GT(trace.num_events(), 0);
  EXPECT_EQ(untraced.to_json(), traced.to_json());
}

TEST(Trace, SameSeedSameTraceBytes) {
  const std::vector<Request> schedule = tight_traffic(10.0, 1);
  std::vector<std::string> dumps;
  for (int run = 0; run < 2; ++run) {
    Server server = make_paper_server(9'000.0, {4, 30.0});
    TraceRecorder trace(/*record_wall=*/false);
    server.set_trace(&trace);
    server.serve(schedule);
    dumps.push_back(trace.to_chrome_json());
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(Trace, ChromeJsonIsValidAndCarriesLifecycle) {
  Server server = make_paper_server(9'000.0, {4, 30.0});
  TraceRecorder trace(/*record_wall=*/false);
  server.set_trace(&trace);
  const ServerStats stats = server.serve(tight_traffic(10.0, 1));

  const std::string json = trace.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  // One complete request span per completed request.
  std::int64_t request_spans = 0;
  std::int64_t miss_instants = 0;
  for (const TraceEvent& e : trace.merged()) {
    if (e.name == "request" && e.ph == 'X') {
      ++request_spans;
    }
    if (e.name == "miss") {
      ++miss_instants;
    }
    EXPECT_GE(e.ts_ms, 0.0);
  }
  EXPECT_EQ(request_spans, stats.completed);
  EXPECT_EQ(miss_instants, stats.deadline_misses);
  // Track metadata names the governor lane.
  EXPECT_NE(json.find("node: governor + battery"), std::string::npos);
}

TEST(Trace, AttachIsStickyUntilExplicitDetach) {
  Server server = make_paper_server(9'000.0, {4, 30.0});
  TraceRecorder trace(/*record_wall=*/false);
  server.set_trace(&trace);
  const std::vector<Request> schedule = tight_traffic(10.0, 1);
  server.serve(schedule);
  const std::int64_t events_after_first = trace.num_events();
  EXPECT_GT(events_after_first, 0);
  // The recorder stays attached across sessions...
  server.serve(schedule);
  const std::int64_t events_after_second = trace.num_events();
  EXPECT_GT(events_after_second, events_after_first);
  // ...until explicitly detached; then a session records nothing.
  server.set_trace(nullptr);
  server.serve(schedule);
  EXPECT_EQ(trace.num_events(), events_after_second);
}

// ---------------------------------------------------------------------
// Metrics registry

TEST(Metrics, LabelsAreOrderIndependent) {
  MetricLabels ab;
  ab.add("policy", "edf").add("backend", "analytic");
  MetricLabels ba;
  ba.add("backend", "analytic").add("policy", "edf");
  EXPECT_EQ(ab.suffix(), ba.suffix());
  EXPECT_EQ(ab.suffix(), "{backend=\"analytic\",policy=\"edf\"}");
  EXPECT_EQ(MetricLabels{}.suffix(), "");
}

TEST(Metrics, CountersAndGaugesRoundTrip) {
  MetricsRegistry registry;
  registry.counter("serve.completed").inc(3);
  registry.counter("serve.completed").inc();
  EXPECT_EQ(registry.counter_value("serve.completed"), 4);
  MetricLabels labels;
  labels.add("model", std::int64_t{7});
  registry.counter("serve.completed", labels).inc(10);
  EXPECT_EQ(registry.counter_value("serve.completed", labels), 10);
  EXPECT_EQ(registry.counter_value("serve.completed"), 4);  // unlabeled
  EXPECT_EQ(registry.counter_value("serve.missing"), 0);
  registry.gauge("battery.fraction").set(0.25);
  EXPECT_EQ(registry.size(), 3);
}

TEST(Metrics, HistogramBucketsAreLogScale) {
  Histogram h(/*lo=*/1.0, /*num_buckets=*/4);  // edges 1,2,4,8,16 + rails
  h.observe(0.5);   // underflow rail
  h.observe(1.0);   // [1, 2)
  h.observe(3.9);   // [2, 4)
  h.observe(100.0); // overflow rail
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 105.4);
  const std::vector<std::int64_t>& buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 6U);
  EXPECT_EQ(buckets.front(), 1);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 1);
  EXPECT_EQ(buckets.back(), 1);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 4.0);
}

TEST(Metrics, RegistryJsonIsValidWithLabeledKeys) {
  MetricsRegistry registry;
  MetricLabels labels;
  labels.add("policy", "edf-prio");
  registry.counter("serve.completed", labels).inc(5);
  registry.histogram("serve.latency_ms", labels).observe(12.0);
  const std::string json = registry.to_json();
  // Label suffixes embed quotes; they must arrive escaped, still valid.
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("serve.completed{policy=\\\"edf-prio\\\"}"),
            std::string::npos);
}

TEST(Metrics, ServeSessionPublishesMirrorOfStats) {
  Server server = make_paper_server(9'000.0, {4, 30.0});
  MetricsRegistry registry;
  server.set_metrics(&registry);
  const ServerStats stats = server.serve(tight_traffic(10.0, 1));
  MetricLabels labels;
  labels.add("policy", stats.policy).add("backend", stats.backend);
  EXPECT_EQ(registry.counter_value("serve.completed", labels),
            stats.completed);
  EXPECT_EQ(registry.counter_value("serve.deadline_misses", labels),
            stats.deadline_misses);
  EXPECT_EQ(registry.counter_value("serve.miss_queued", labels) +
                registry.counter_value("serve.miss_switch", labels) +
                registry.counter_value("serve.miss_exec", labels),
            stats.deadline_misses);
  EXPECT_TRUE(JsonChecker(registry.to_json()).valid());
}

// ---------------------------------------------------------------------
// Stats JSON round-trips and node aggregation

TEST(ServerStatsJson, RoundTripsThroughParser) {
  Server server = make_paper_server(9'000.0, {4, 30.0});
  const ServerStats stats = server.serve(tight_traffic(10.0, 1));
  const std::string json = stats.to_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_EQ(static_cast<std::int64_t>(json_num_field(json, "completed")),
            stats.completed);
  EXPECT_EQ(
      static_cast<std::int64_t>(json_num_field(json, "deadline_misses")),
      stats.deadline_misses);
  EXPECT_EQ(static_cast<std::int64_t>(json_num_field(json, "miss_queued")),
            stats.miss_queued);
  EXPECT_EQ(static_cast<std::int64_t>(json_num_field(json, "miss_switch")),
            stats.miss_switch);
  EXPECT_EQ(static_cast<std::int64_t>(json_num_field(json, "miss_exec")),
            stats.miss_exec);
  // to_json renders doubles at ostream default precision (6 sig figs).
  EXPECT_NEAR(json_num_field(json, "miss_rate"), stats.miss_rate(), 1e-5);
  // summary() surfaces the attribution line too.
  EXPECT_NE(stats.summary().find("miss attribution"), std::string::npos);
}

TEST(NodeStats, AggregateTotalsEqualPerModelSums) {
  NodeConfig ncfg;
  ncfg.battery_capacity_mj = 16'000.0;
  ServeNode node(ncfg, VfTable::odroid_xu3_a7(),
                 Governor::equal_tranches(paper_serve_ladder()),
                 PowerModel());
  ServerConfig cfg;
  cfg.battery_capacity_mj = ncfg.battery_capacity_mj;
  cfg.batch = {4, 30.0};
  node.add_model(0, paper_deployment(cfg));
  node.add_model(1, paper_deployment(cfg));
  NodeStats stats = node.serve(tight_traffic(10.0, 2));
  ASSERT_EQ(stats.per_model.size(), 2U);
  ASSERT_GT(stats.completed, 0);

  std::int64_t submitted = stats.unroutable;
  std::int64_t completed = 0;
  std::int64_t misses = 0;
  std::int64_t queued = 0;
  std::int64_t switched = 0;
  std::int64_t exec = 0;
  double energy = 0.0;
  for (const auto& [id, s] : stats.per_model) {
    submitted += s.submitted;
    completed += s.completed;
    misses += s.deadline_misses;
    queued += s.miss_queued;
    switched += s.miss_switch;
    exec += s.miss_exec;
    energy += s.energy_used_mj;
    // Per-shard attribution closes as well.
    EXPECT_EQ(s.miss_queued + s.miss_switch + s.miss_exec,
              s.deadline_misses);
  }
  EXPECT_EQ(stats.submitted, submitted);
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.deadline_misses, misses);
  EXPECT_EQ(stats.miss_queued, queued);
  EXPECT_EQ(stats.miss_switch, switched);
  EXPECT_EQ(stats.miss_exec, exec);
  EXPECT_NEAR(stats.energy_used_mj, energy, 1e-9);
  EXPECT_EQ(stats.miss_queued + stats.miss_switch + stats.miss_exec,
            stats.deadline_misses);
  EXPECT_TRUE(JsonChecker(stats.to_json()).valid());
}

TEST(NodeStats, TracedNodeSessionStaysBitwiseIdentical) {
  const std::vector<Request> schedule = tight_traffic(10.0, 2);
  const auto build = [] {
    NodeConfig ncfg;
    ncfg.battery_capacity_mj = 16'000.0;
    auto node = std::make_unique<ServeNode>(
        ncfg, VfTable::odroid_xu3_a7(),
        Governor::equal_tranches(paper_serve_ladder()), PowerModel());
    ServerConfig cfg;
    cfg.battery_capacity_mj = ncfg.battery_capacity_mj;
    cfg.batch = BatchPolicy{4, 30.0};
    node->add_model(0, paper_deployment(cfg));
    node->add_model(1, paper_deployment(cfg));
    return node;
  };
  auto plain = build();
  const NodeStats untraced = plain->serve(schedule);

  auto traced_node = build();
  TraceRecorder trace(/*record_wall=*/false);
  traced_node->set_trace(&trace);
  const NodeStats traced = traced_node->serve(schedule);

  EXPECT_GT(trace.num_events(), 0);
  EXPECT_EQ(untraced.to_json(), traced.to_json());
  EXPECT_TRUE(JsonChecker(trace.to_chrome_json()).valid());
  // Per-model lanes show up as named tracks.
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"model 0\""), std::string::npos);
  EXPECT_NE(json.find("\"model 1\""), std::string::npos);
}

// ---------------------------------------------------------------------
// TimeSeries: fixed-capacity buffer with stride-doubling downsampling

TEST(TimeSeries, StoresEveryPointBelowCapacity) {
  TimeSeries ts(8);
  for (int i = 0; i < 5; ++i) {
    ts.record(static_cast<double>(i * 10), static_cast<double>(i));
  }
  EXPECT_EQ(ts.size(), 5);
  EXPECT_EQ(ts.offered(), 5);
  EXPECT_EQ(ts.stride(), 1);
  EXPECT_DOUBLE_EQ(ts.times().front(), 0.0);
  EXPECT_DOUBLE_EQ(ts.times().back(), 40.0);
  EXPECT_DOUBLE_EQ(ts.last_value(), 4.0);
}

TEST(TimeSeries, DownsamplesByStrideDoublingAtCapacity) {
  TimeSeries ts(4);
  const int offered = 25;
  for (int i = 0; i < offered; ++i) {
    ts.record(static_cast<double>(i), static_cast<double>(i));
  }
  EXPECT_EQ(ts.offered(), offered);
  EXPECT_LE(ts.size(), 4);
  EXPECT_GT(ts.stride(), 1);
  // Stored points are exactly the offered indices {0, s, 2s, ...}: a pure
  // function of the offered sequence, independent of compaction timing.
  for (std::int64_t i = 0; i < ts.size(); ++i) {
    EXPECT_DOUBLE_EQ(ts.values()[static_cast<std::size_t>(i)],
                     static_cast<double>(i * ts.stride()));
  }
  // last_value tracks the last OFFERED point even when downsampled away.
  EXPECT_DOUBLE_EQ(ts.last_value(), static_cast<double>(offered - 1));
  // The full time span is preserved at halved resolution: the first
  // stored point is still t=0.
  EXPECT_DOUBLE_EQ(ts.times().front(), 0.0);
}

TEST(TimeSeries, LongSessionStaysWithinCapacity) {
  TimeSeries ts(16);
  for (int i = 0; i < 10'000; ++i) {
    ts.record(static_cast<double>(i), 1.0);
  }
  EXPECT_LE(ts.size(), 16);
  EXPECT_EQ(ts.offered(), 10'000);
  EXPECT_EQ(ts.stride() % 2, 0);  // power-of-two stride after compactions
}

// ---------------------------------------------------------------------
// TelemetrySampler

BatchSample batch_at(double end_ms, std::int64_t misses,
                     double latency_sum_ms, std::int64_t size = 2) {
  BatchSample s;
  s.model_id = 0;
  s.start_ms = end_ms - 10.0;
  s.end_ms = end_ms;
  s.batch_size = size;
  s.energy_mj = 5.0;
  s.battery_fraction = 0.9;
  s.misses = misses;
  s.latency_sum_ms = latency_sum_ms;
  return s;
}

TEST(Telemetry, EwmaUpdatesEveryBatchWhileCadenceThinsStorage) {
  TelemetryConfig cfg;
  cfg.sample_every_batches = 2;
  cfg.ewma_alpha = 0.5;
  TelemetrySampler sampler(cfg);
  // 4 batches: miss fractions 1, 0, 1, 0 — EWMA seeded from the first
  // observation, then halved toward each next one.
  sampler.on_batch(batch_at(100.0, 2, 200.0));  // miss frac 1.0 -> ewma 1.0
  sampler.on_batch(batch_at(200.0, 0, 100.0));  // -> 0.5
  sampler.on_batch(batch_at(300.0, 2, 200.0));  // -> 0.75
  sampler.on_batch(batch_at(400.0, 0, 100.0));  // -> 0.375
  EXPECT_EQ(sampler.batches_seen(), 4);
  EXPECT_DOUBLE_EQ(sampler.miss_ewma(0), 0.375);
  EXPECT_DOUBLE_EQ(sampler.miss_ewma(99), 0.0);  // unseen model
  // Cadence 2 stores only batches 0 and 2.
  const TimeSeries* series = sampler.series("m0.miss_ewma");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), 2);
  EXPECT_DOUBLE_EQ(series->times()[0], 100.0);
  EXPECT_DOUBLE_EQ(series->times()[1], 300.0);
  EXPECT_EQ(sampler.series("m0.nonexistent"), nullptr);
}

TEST(Telemetry, SessionDumpIsDeterministicAndPureObservation) {
  const std::vector<Request> schedule = tight_traffic(12.0, 1);
  Server plain = make_paper_server(9'000.0, {4, 30.0});
  const ServerStats bare = plain.serve(schedule);

  std::vector<std::string> dumps;
  for (int run = 0; run < 2; ++run) {
    Server server = make_paper_server(9'000.0, {4, 30.0});
    TelemetrySampler sampler;
    server.set_telemetry(&sampler);
    const ServerStats stats = server.serve(schedule);
    // Telemetry attachment is pure observation.
    EXPECT_EQ(stats.to_json(), bare.to_json());
    EXPECT_GT(sampler.batches_seen(), 0);
    EXPECT_GT(sampler.num_points(), 0);
    dumps.push_back(sampler.to_json());
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_TRUE(JsonChecker(dumps[0]).valid());
  EXPECT_NE(dumps[0].find("\"node.battery_fraction\""), std::string::npos);
  EXPECT_NE(dumps[0].find("\"m0.queue_depth\""), std::string::npos);
}

TEST(Telemetry, ExportCountersEmitsValidCounterEvents) {
  Server server = make_paper_server(9'000.0, {4, 30.0});
  TelemetrySampler sampler;
  server.set_telemetry(&sampler);
  server.serve(tight_traffic(12.0, 1));

  TraceRecorder trace(/*record_wall=*/false);
  sampler.export_counters(trace);
  std::int64_t counter_events = 0;
  for (const TraceEvent& e : trace.merged()) {
    if (e.ph == 'C') {
      ++counter_events;
      EXPECT_GE(e.ts_ms, 0.0);
    }
  }
  // One counter event per stored point.
  EXPECT_EQ(counter_events, sampler.num_points());
  EXPECT_TRUE(JsonChecker(trace.to_chrome_json()).valid());
}

// ---------------------------------------------------------------------
// SloMonitor rule state machines

SloObservation slo_obs(double end_ms, std::int64_t completed,
                       std::int64_t missed, double battery = 0.9,
                       double mean_latency_ms = 100.0) {
  SloObservation o;
  o.end_ms = end_ms;
  o.completed = completed;
  o.missed = missed;
  o.battery_fraction = battery;
  o.mean_latency_ms = mean_latency_ms;
  return o;
}

SloRule miss_burn_rule() {
  SloRule rule;
  rule.name = "burn";
  rule.kind = SloRuleKind::kMissBurn;
  rule.short_window_ms = 1'000.0;
  rule.long_window_ms = 4'000.0;
  rule.short_threshold = 0.5;
  rule.long_threshold = 0.2;
  rule.min_misses = 2;
  return rule;
}

TEST(Slo, MissBurnBreachesOnBothWindowsAndRecovers) {
  SloMonitor monitor({miss_burn_rule()});
  // All-missed batches: short and long rates hit 1.0 once 2 misses land.
  monitor.observe(slo_obs(100.0, 2, 2));
  ASSERT_EQ(monitor.breaches(), 1);
  EXPECT_EQ(monitor.active_breaches(), 1);
  const SloEpisode& open = monitor.episodes().front();
  EXPECT_EQ(open.rule, "burn");
  EXPECT_DOUBLE_EQ(open.start_ms, 100.0);
  EXPECT_DOUBLE_EQ(open.end_ms, -1.0);
  EXPECT_GE(open.trigger_misses, 2);
  EXPECT_DOUBLE_EQ(open.trigger_value, 1.0);
  // Clean batches push the short-window rate to zero: recover.
  monitor.observe(slo_obs(1'600.0, 4, 0));
  EXPECT_EQ(monitor.active_breaches(), 0);
  EXPECT_DOUBLE_EQ(monitor.episodes().front().end_ms, 1'600.0);
  EXPECT_EQ(monitor.breaches(), 1);  // one closed episode, not two
}

TEST(Slo, MissBurnFloorSuppressesSingleMissPages) {
  SloMonitor monitor({miss_burn_rule()});  // min_misses = 2
  // One missed request out of one: 100% rate but below the floor.
  monitor.observe(slo_obs(100.0, 1, 1));
  EXPECT_EQ(monitor.breaches(), 0);
  // A second miss inside the short window crosses the floor.
  monitor.observe(slo_obs(200.0, 1, 1));
  EXPECT_EQ(monitor.breaches(), 1);
}

TEST(Slo, LatencyEwmaBreachesAboveThreshold) {
  SloRule rule;
  rule.name = "lat";
  rule.kind = SloRuleKind::kLatencyEwma;
  rule.latency_threshold_ms = 100.0;
  rule.ewma_alpha = 1.0;  // ewma == latest observation
  SloMonitor monitor({rule});
  monitor.observe(slo_obs(100.0, 2, 0, 0.9, 50.0));
  EXPECT_EQ(monitor.breaches(), 0);
  monitor.observe(slo_obs(200.0, 2, 0, 0.9, 150.0));
  EXPECT_EQ(monitor.active_breaches(), 1);
  EXPECT_DOUBLE_EQ(monitor.episodes().front().trigger_value, 150.0);
  monitor.observe(slo_obs(300.0, 2, 0, 0.9, 50.0));
  EXPECT_EQ(monitor.active_breaches(), 0);
}

TEST(Slo, BatterySlopeProjectsTimeToEmpty) {
  SloRule rule;
  rule.name = "batt";
  rule.kind = SloRuleKind::kBatterySlope;
  rule.slope_window_ms = 10'000.0;
  rule.min_projected_ms = 60'000.0;
  SloMonitor monitor({rule});
  // Window spans less than half its width: rule holds (no breach).
  monitor.observe(slo_obs(0.0, 1, 0, 1.0));
  monitor.observe(slo_obs(2'000.0, 1, 0, 0.9));
  EXPECT_EQ(monitor.breaches(), 0);
  // Fast drain: 0.5 fraction over 6 s projects 6 s to empty — breach.
  monitor.observe(slo_obs(6'000.0, 1, 0, 0.5));
  ASSERT_EQ(monitor.active_breaches(), 1);
  EXPECT_NEAR(monitor.episodes().front().trigger_value, 6'000.0, 1.0);
}

TEST(Slo, TransitionsEmitRuleTaggedTraceEvents) {
  SloMonitor monitor({miss_burn_rule()});
  TraceRecorder trace(/*record_wall=*/false);
  monitor.set_trace(&trace);
  monitor.observe(slo_obs(100.0, 2, 2));
  monitor.observe(slo_obs(1'600.0, 4, 0));
  std::int64_t breach_events = 0;
  std::int64_t recover_events = 0;
  for (const TraceEvent& e : trace.merged()) {
    if (e.name == "slo.breach") {
      ++breach_events;
    }
    if (e.name == "slo.recover") {
      ++recover_events;
    }
    EXPECT_EQ(e.tid, 0);  // transitions live on the node/governor lane
  }
  EXPECT_EQ(breach_events, 1);
  EXPECT_EQ(recover_events, 1);
  const std::string json = trace.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"rule\": \"burn\""), std::string::npos);
  EXPECT_TRUE(JsonChecker(monitor.to_json()).valid());
  // Metrics publication counts the episode.
  MetricsRegistry registry;
  monitor.publish(registry);
  EXPECT_EQ(registry.counter_value("slo.breaches"), 1);
}

// The ISSUE acceptance criterion: breach decisions must agree with the
// post-hoc per-request attribution — every flagged miss-burn window
// contains at least the rule's min_misses classified misses.
TEST(Slo, BreachEpisodesAgreeWithMissAttribution) {
  const std::vector<Request> schedule = tight_traffic(12.0, 1);
  Server server = make_paper_server(9'000.0, {4, 30.0});
  TraceRecorder trace(/*record_wall=*/false);
  TelemetrySampler sampler;
  SloMonitor monitor(SloMonitor::default_rules());
  server.set_trace(&trace);
  server.set_telemetry(&sampler);
  server.set_slo(&monitor);
  const ServerStats stats = server.serve(schedule);
  ASSERT_GT(stats.deadline_misses, 0);
  ASSERT_GT(monitor.breaches(), 0);  // the tight traffic must page

  const SloRule* burn = nullptr;
  for (const SloRule& rule : monitor.rules()) {
    if (rule.kind == SloRuleKind::kMissBurn) {
      burn = &rule;
    }
  }
  ASSERT_NE(burn, nullptr);
  std::int64_t burn_episodes = 0;
  for (const SloEpisode& ep : monitor.episodes()) {
    if (ep.rule != burn->name) {
      continue;
    }
    ++burn_episodes;
    EXPECT_GE(ep.trigger_misses, burn->min_misses);
    // Post-hoc check against the trace: the classified "miss" instants
    // inside [start - short_window, start] must cover the floor.
    std::int64_t misses_in_window = 0;
    for (const TraceEvent& e : trace.merged()) {
      if (e.name == "miss" && e.ts_ms >= ep.start_ms - burn->short_window_ms &&
          e.ts_ms <= ep.start_ms) {
        ++misses_in_window;
      }
    }
    EXPECT_GE(misses_in_window, burn->min_misses)
        << "episode at " << ep.start_ms;
  }
  EXPECT_GT(burn_episodes, 0);
}

// ---------------------------------------------------------------------
// TraceRecorder event cap

TEST(Trace, MaxEventsCapDropsAndCounts) {
  TraceConfig cfg;
  cfg.max_events = 5;
  TraceRecorder trace(cfg);
  for (int i = 0; i < 8; ++i) {
    TraceEvent ev("tick", "test", static_cast<double>(i), 0);
    ev.ph = 'i';
    trace.record(std::move(ev));
  }
  EXPECT_EQ(trace.num_events(), 5);
  EXPECT_EQ(trace.dropped_events(), 3);
  EXPECT_EQ(trace.max_events(), 5);
  const std::string json = trace.to_chrome_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  // The footer surfaces the drop count for tooling.
  EXPECT_NE(json.find("\"dropped_events\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"max_events\": 5"), std::string::npos);
}

TEST(Trace, ZeroMaxEventsMeansUnlimited) {
  TraceRecorder trace(/*record_wall=*/false);
  for (int i = 0; i < 100; ++i) {
    TraceEvent ev("tick", "test", static_cast<double>(i), 0);
    ev.ph = 'i';
    trace.record(std::move(ev));
  }
  EXPECT_EQ(trace.num_events(), 100);
  EXPECT_EQ(trace.dropped_events(), 0);
  EXPECT_NE(trace.to_chrome_json().find("\"dropped_events\": 0"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Prometheus text exposition

TEST(Prometheus, SanitizesNamesAndEscapesLabelValues) {
  MetricsRegistry registry;
  MetricLabels labels;
  labels.add("path", "a\\b\"c\nd");  // every escape class at once
  registry.counter("serve.completed", labels).inc(7);
  registry.gauge("battery.fraction").set(0.25);
  const std::string text = registry.to_prometheus();
  // Dots sanitize to underscores; the family gets one TYPE line.
  EXPECT_NE(text.find("# TYPE serve_completed counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE battery_fraction gauge"), std::string::npos);
  // Label values escape backslash, quote, and newline per the 0.0.4
  // text-exposition rules.
  EXPECT_NE(text.find("serve_completed{path=\"a\\\\b\\\"c\\nd\"} 7"),
            std::string::npos);
  EXPECT_EQ(text.find("serve.completed"), std::string::npos);
}

TEST(Prometheus, HistogramRendersCumulativeBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("serve.latency_ms");
  h = Histogram(/*lo=*/1.0, /*num_buckets=*/3);  // edges 1, 2, 4, 8
  h.observe(0.5);  // underflow
  h.observe(1.5);  // [1, 2)
  h.observe(3.0);  // [2, 4)
  h.observe(9.0);  // overflow
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE serve_latency_ms histogram"),
            std::string::npos);
  // Cumulative counts at the upper edges: le="1" holds the underflow
  // rail, each next bucket adds its own count.
  EXPECT_NE(text.find("serve_latency_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_bucket{le=\"2\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_bucket{le=\"4\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_count 4"), std::string::npos);
}

// ---------------------------------------------------------------------
// Histogram bucket boundaries (log2 buckets, lo = 1): 0 is underflow,
// exact powers of two open their own bucket, the top rail saturates.

TEST(Metrics, HistogramBucketBoundariesAtPowersOfTwo) {
  Histogram h(/*lo=*/1.0, /*num_buckets=*/4);  // buckets [1,2) [2,4) [4,8) [8,16)
  EXPECT_DOUBLE_EQ(h.lo(), 1.0);
  h.observe(0.0);   // below lo: underflow rail
  h.observe(1.0);   // exactly lo: first bucket, not underflow
  h.observe(2.0);   // exact power of two: lower-inclusive -> [2, 4)
  h.observe(4.0);   // -> [4, 8)
  h.observe(8.0);   // -> [8, 16)
  h.observe(16.0);  // exactly the top edge: overflow rail
  const std::vector<std::int64_t>& buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 6U);
  EXPECT_EQ(buckets[0], 1);  // underflow: 0.0
  EXPECT_EQ(buckets[1], 1);  // 1.0
  EXPECT_EQ(buckets[2], 1);  // 2.0
  EXPECT_EQ(buckets[3], 1);  // 4.0
  EXPECT_EQ(buckets[4], 1);  // 8.0
  EXPECT_EQ(buckets[5], 1);  // overflow: 16.0
  EXPECT_EQ(h.count(), 6);
}

TEST(Metrics, HistogramTopBucketSaturates) {
  Histogram h(/*lo=*/1.0, /*num_buckets=*/4);
  h.observe(16.0);
  h.observe(1e18);  // astronomically large still lands in the top rail
  h.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.buckets().back(), 3);
  EXPECT_EQ(h.count(), 3);
}

}  // namespace
}  // namespace rt3
