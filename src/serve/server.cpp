#include "serve/server.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/concurrent.hpp"
#include "serve/policy.hpp"

namespace rt3 {

Server::Server(ServerConfig config, VfTable table, GovernorHandle governor,
               PowerModel power, LatencyModel latency, ModelSpec spec,
               std::vector<double> sparsities)
    : config_(config),
      table_(std::move(table)),
      governor_(std::move(governor)),
      power_(power),
      latency_(latency),
      spec_(std::move(spec)),
      sparsities_(std::move(sparsities)),
      battery_(config.battery_capacity_mj) {
  const Governor& ladder = governor_.ladder();
  check(sparsities_.size() == ladder.levels().size(),
        "Server: one sparsity per governor level required");
  check(config_.governor_margin >= 0.0 && config_.governor_margin < 1.0,
        "Server: governor_margin out of [0, 1)");
  check(config_.governor_shrink_batch >= 1,
        "Server: governor_shrink_batch must be >= 1");
  Batcher policy_probe(config_.batch,
                       config_.scheduler);  // reject a bad policy up front
  std::vector<double> freqs;
  std::vector<double> effective_sparsities;
  for (std::size_t i = 0; i < ladder.levels().size(); ++i) {
    const std::int64_t li = ladder.levels()[i];
    check(li >= 0 && li < table_.size(), "Server: governor level not in table");
    freqs.push_back(table_.level(li).freq_mhz);
    effective_sparsities.push_back(
        sparsity_for(static_cast<std::int64_t>(i)));
  }
  analytic_ = std::make_unique<AnalyticBackend>(
      latency_, spec_, config_.exec_mode, std::move(freqs),
      std::move(effective_sparsities));
  backend_ = analytic_.get();
}

void Server::set_engine(ReconfigEngine* engine) {
  if (engine != nullptr) {
    check(engine->num_levels() == governor_.policy().num_levels(),
          "Server: engine must have one pattern set per governor level");
  }
  engine_ = engine;
}

void Server::set_backend(ExecutionBackend* backend) {
  backend_ = backend != nullptr ? backend : analytic_.get();
}

void Server::adopt_engine(std::unique_ptr<ReconfigEngine> engine) {
  set_engine(engine.get());
  owned_engine_ = std::move(engine);
}

void Server::adopt_backend(std::unique_ptr<ExecutionBackend> backend) {
  set_backend(backend.get());
  owned_backend_ = std::move(backend);
}

void Server::set_batch_observer(BatchObserver observer) {
  observer_ = std::move(observer);
}

void Server::set_trace(TraceRecorder* trace) { trace_ = trace; }

void Server::set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

void Server::set_telemetry(TelemetrySampler* telemetry) {
  telemetry_ = telemetry;
}

void Server::set_slo(SloMonitor* slo) { slo_ = slo; }

double Server::sparsity_for(std::int64_t level_pos) const {
  return config_.software_reconfig
             ? sparsities_[static_cast<std::size_t>(level_pos)]
             : sparsities_.front();
}

double Server::batch_latency_ms(std::int64_t batch_size,
                                std::int64_t level_pos) const {
  return analytic_->batch_latency_ms(batch_size, level_pos);
}

ServerStats Server::serve(const std::vector<Request>& schedule) {
  GovernorPolicy& gov = governor_.policy();
  const Governor& ladder = governor_.ladder();
  gov.reset();  // fresh episode: EWMAs / recurrent state, never weights
  ServerStats stats;
  stats.submitted = static_cast<std::int64_t>(schedule.size());
  stats.backend = backend_->name();
  stats.policy = scheduling_policy_name(config_.scheduler.policy);
  stats.runs_per_level.assign(ladder.levels().size(), 0.0);
  battery_.recharge();
  Batcher batcher(config_.batch, config_.scheduler);
  // Virtual-time records of when switches / batch executions ran; the
  // miss-attribution decomposition (obs/attribution.hpp) queries the
  // overlap of each request's wait against them.
  IntervalAccount switch_ivals;
  IntervalAccount exec_ivals;
  // Single lane for the one model's request/batch spans; lane 0 carries
  // governor/battery events (see TraceRecorder's track naming).
  constexpr std::int64_t kLane = 1;
  if (trace_ != nullptr) {
    if (engine_ != nullptr) {
      engine_->set_trace(trace_);
    }
    backend_->set_trace(trace_, kLane);
    batcher.set_trace(trace_, kLane);
    trace_->set_now_ms(0.0);
  }
  if (slo_ != nullptr) {
    slo_->set_trace(trace_);
  }
  if (telemetry_ != nullptr) {
    telemetry_->set_now_ms(0.0);
    if (engine_ != nullptr) {
      engine_->set_telemetry(telemetry_);
    }
  }

  const std::int64_t n = stats.submitted;
  std::int64_t next = 0;   // next schedule index to admit
  std::int64_t active = -1;  // current governor-level position
  // Drain-then-switch lag of the next switch: set when a batch's energy
  // drain crosses a governor threshold (interpolated inside the batch),
  // consumed when the switch fires at the following batch boundary.
  double pending_switch_lag = 0.0;
  double now = 0.0;

  while (next < n || batcher.pending() > 0) {
    if (battery_.empty()) {
      break;
    }
    // Governor decision at the batch boundary only: in-flight work has
    // drained by construction, queued requests survive the switch.
    GovernorObservation gobs;
    gobs.now_ms = now;
    gobs.battery_fraction = battery_.fraction();
    gobs.queue_depth = batcher.pending();
    gobs.deadline_pressure =
        deadline_pressure(now, batcher.release_at_ms(),
                          batcher.policy().max_wait_ms);
    const std::int64_t pos = gov.decide(gobs);
    if (pos != active) {
      // An engine with a plan-swap hook swaps plans inside switch_to;
      // the hook's wall cost is folded into this switch's swap entry so
      // the subsequent (then no-op) activate_level is not double-counted
      // as zero.
      double engine_swap_ms = 0.0;
      if (config_.software_reconfig && active >= 0) {
        if (!battery_.drain(config_.switch_energy_mj)) {
          break;  // no charge left to pay for the switch; session ends
        }
        if (trace_ != nullptr) {
          trace_->set_now_ms(now);
          trace_->record(TraceEvent("governor.step", "governor", now, 0)
                             .arg("from_level", active)
                             .arg("to_level", pos)
                             .arg("battery_fraction", battery_.fraction()));
        }
        stats.energy_used_mj += config_.switch_energy_mj;
        if (telemetry_ != nullptr) {
          telemetry_->set_now_ms(now);
        }
        double switch_ms = config_.switch_latency_ms;
        if (engine_ != nullptr) {
          const SwitchReport report = engine_->switch_to(pos);
          switch_ms = report.modeled_ms;
          engine_swap_ms = report.plan_swap_wall_ms;
        }
        ++stats.switches;
        switch_ivals.add(now, now + switch_ms);
        if (trace_ != nullptr) {
          TraceEvent ev("switch", "switch", now, 0);
          ev.ph = 'X';
          ev.dur_ms = switch_ms;
          ev.arg("to_level", pos).arg("drain_lag_ms", pending_switch_lag);
          trace_->record(std::move(ev));
        }
        now += switch_ms;
        stats.switch_ms_total += switch_ms;
        stats.switch_ms.push_back(switch_ms);
        stats.switch_lag_ms.push_back(pending_switch_lag);
        if (telemetry_ != nullptr) {
          telemetry_->record_switch(switch_ms);
        }
        pending_switch_lag = 0.0;
      } else if (config_.software_reconfig && engine_ != nullptr) {
        // Initial activation: free at t = 0.
        engine_swap_ms = engine_->switch_to(pos).plan_swap_wall_ms;
      }
      // Swap the active execution-plan set along with the pattern set
      // (virtual-time free: precompiled plans make this a pointer swap,
      // but the wall cost is reported per switch).
      const double swap_ms = engine_swap_ms + backend_->activate_level(pos);
      stats.plan_swap_ms.push_back(swap_ms);
      stats.plan_swap_ms_total += swap_ms;
      active = pos;
      continue;  // re-read the fraction in case the switch drained it dry
    }

    // Governor-aware batching: close enough to the next step-down
    // threshold, shrink the batch cap so in-flight work — and therefore
    // the drain-then-switch point — comes sooner.  On the last ladder
    // level there is no switch left to hasten (next_step_down is 0), so
    // the full cap stays and batch amortization is preserved exactly
    // when charge is scarcest.
    const double margin = gov.shrink_margin(config_.governor_margin);
    if (margin > 0.0) {
      const double fraction = battery_.fraction();
      const double threshold = gov.next_step_down(fraction);
      const bool near_switch =
          threshold > 0.0 && fraction - threshold <= margin;
      batcher.set_batch_cap(near_switch ? config_.governor_shrink_batch
                                        : config_.batch.max_batch_size);
    }

    // Admit everything that has arrived by now.  Feasibility-based
    // admission rejects a request whose deadline lies inside the fastest
    // possible completion (an immediate solo launch at the current level):
    // admitting it could only miss AND queue-delay feasible work behind it
    // — the EDF domino under sustained overload.
    while (next < n &&
           schedule[static_cast<std::size_t>(next)].arrival_ms <= now) {
      const Request& r = schedule[static_cast<std::size_t>(next)];
      if (config_.admit_feasible &&
          r.deadline_ms < now + batch_latency_ms(1, pos)) {
        ++stats.rejected;
        if (telemetry_ != nullptr) {
          telemetry_->count_reject(0);
        }
        if (trace_ != nullptr) {
          TraceEvent ev("reject", "request", r.arrival_ms, kLane);
          ev.id = r.id;
          ev.arg("deadline_ms", r.deadline_ms)
              .arg("fastest_finish_ms", now + batch_latency_ms(1, pos));
          trace_->record(std::move(ev));
        }
      } else {
        if (trace_ != nullptr) {
          TraceEvent ev("arrive", "request", r.arrival_ms, kLane);
          ev.id = r.id;
          ev.arg("deadline_ms", r.deadline_ms).arg("priority", r.priority);
          trace_->record(std::move(ev));
        }
        batcher.push(r);
      }
      ++next;
    }
    if (config_.admit_feasible && batcher.pending() == 0 && next >= n) {
      continue;  // everything left was rejected; the loop condition ends it
    }

    // Load shedding: a request whose deadline has already passed cannot
    // be served in time, so drop it before it occupies a batch slot.
    if (config_.shed_expired) {
      const std::int64_t n_shed =
          static_cast<std::int64_t>(batcher.shed_expired(now).size());
      stats.shed += n_shed;
      if (telemetry_ != nullptr && n_shed > 0) {
        telemetry_->count_shed(0, n_shed);
      }
      if (batcher.pending() == 0 && next >= n) {
        continue;  // everything left was shed; the loop condition ends it
      }
    }

    if (!batcher.ready(now)) {
      // Nothing to do yet: jump to the earliest actionable instant —
      // the max-wait release of the oldest pending request or the next
      // arrival, whichever comes first.
      const double next_arrival =
          next < n ? schedule[static_cast<std::size_t>(next)].arrival_ms
                   : std::numeric_limits<double>::infinity();
      const double wake = std::min(batcher.release_at_ms(), next_arrival);
      check(wake < std::numeric_limits<double>::infinity(),
            "Server: idle with nothing pending");  // loop condition bars this
      now = std::max(now, wake);
      continue;
    }

    const std::vector<Request> batch = batcher.pop_batch(now);
    if (trace_ != nullptr) {
      trace_->set_now_ms(now);
    }
    const BatchExecution exec =
        backend_->run_batch(static_cast<std::int64_t>(batch.size()), pos);
    const double lat_ms = exec.latency_ms;
    stats.kernel_wall_ms_total += exec.kernel_wall_ms;
    const VfLevel& level =
        table_.level(ladder.levels()[static_cast<std::size_t>(pos)]);
    const double energy = power_.energy_mj(level, lat_ms);
    const double frac_before = battery_.fraction();
    if (!battery_.drain(energy)) {
      // Not enough charge for this batch: the session ends here and the
      // unserved remainder is accounted as dropped.
      stats.dropped += static_cast<std::int64_t>(batch.size()) +
                       batcher.pending() + (n - next);
      if (trace_ != nullptr) {
        trace_->record(TraceEvent("battery.dead", "governor", now, 0)
                           .arg("dropped", stats.dropped));
      }
      break;
    }
    // Did this batch's drain cross the policy's decision boundary?  If so
    // the switch can only fire at the batch boundary: the policy
    // interpolates the crossing inside the (linear) drain — this is the
    // drain-then-switch delay governor-aware batching shrinks.  Negative
    // means no boundary was crossed.
    const double frac_after = battery_.fraction();
    const double drain_lag =
        gov.drain_lag_ms(pos, frac_before, frac_after, lat_ms);
    if (drain_lag >= 0.0) {
      pending_switch_lag = drain_lag;
    }
    const double end = now + lat_ms;
    std::int64_t batch_misses = 0;
    double batch_latency_sum = 0.0;
    for (const Request& r : batch) {
      stats.latency_ms.push_back(end - r.arrival_ms);
      batch_latency_sum += end - r.arrival_ms;
      // Decompose the wait against the recorded switch / exec intervals
      // BEFORE this batch joins exec_ivals, so its own execution counts
      // as exec_ms and not as queueing.
      const WaitBreakdown w =
          attribute_wait(switch_ivals, exec_ivals, r.arrival_ms, now, end);
      stats.queue_wait_ms.push_back(w.queue_wait_ms);
      stats.batch_wait_ms.push_back(w.batch_wait_ms);
      stats.switch_stall_req_ms.push_back(w.switch_stall_ms);
      stats.exec_req_ms.push_back(w.exec_ms);
      stats.ensure_class(r.priority);
      ++stats.completed_per_class[static_cast<std::size_t>(r.priority)];
      MissClass miss = MissClass::kNone;
      if (end > r.deadline_ms) {
        ++stats.deadline_misses;
        ++batch_misses;
        ++stats.misses_per_class[static_cast<std::size_t>(r.priority)];
        miss = classify_miss(w, r.arrival_ms, end, r.deadline_ms);
        switch (miss) {
          case MissClass::kQueued: ++stats.miss_queued; break;
          case MissClass::kSwitch: ++stats.miss_switch; break;
          case MissClass::kExec: ++stats.miss_exec; break;
          case MissClass::kNone: break;  // unreachable: end > deadline
        }
      }
      if (trace_ != nullptr) {
        TraceEvent span("request", "request", r.arrival_ms, kLane);
        span.ph = 'X';
        span.dur_ms = end - r.arrival_ms;
        span.id = r.id;
        span.arg("queue_wait_ms", w.queue_wait_ms)
            .arg("batch_wait_ms", w.batch_wait_ms)
            .arg("switch_stall_ms", w.switch_stall_ms)
            .arg("exec_ms", w.exec_ms)
            .arg("deadline_ms", r.deadline_ms);
        trace_->record(std::move(span));
        if (miss != MissClass::kNone) {
          TraceEvent ev("miss", "request", end, kLane);
          ev.id = r.id;
          ev.arg("cause", std::string(miss_class_name(miss)))
              .arg("over_by_ms", end - r.deadline_ms);
          trace_->record(std::move(ev));
        }
      }
    }
    exec_ivals.add(now, end);
    {
      // The policy's only outcome channel: per-batch energy draw and
      // misses.  Stateless policies ignore it; for stateful ones this also
      // closes the decision epoch opened at the batch boundary.
      BatchFeedback feedback;
      feedback.start_ms = now;
      feedback.end_ms = end;
      feedback.batch_size = static_cast<std::int64_t>(batch.size());
      feedback.level_pos = pos;
      feedback.energy_mj = energy;
      feedback.battery_fraction = frac_after;
      feedback.drain_fraction = frac_before - frac_after;
      feedback.misses = batch_misses;
      gov.observe_batch(feedback);
    }
    if (trace_ != nullptr) {
      TraceEvent ev("batch", "batch", now, kLane);
      ev.ph = 'X';
      ev.dur_ms = lat_ms;
      ev.arg("size", static_cast<std::int64_t>(batch.size()))
          .arg("level", pos)
          .arg("energy_mj", energy);
      trace_->record(std::move(ev));
    }
    stats.energy_used_mj += energy;
    stats.completed += static_cast<std::int64_t>(batch.size());
    stats.runs_per_level[static_cast<std::size_t>(pos)] +=
        static_cast<double>(batch.size());
    ++stats.batches;
    stats.batch_sizes.push_back(static_cast<std::int64_t>(batch.size()));
    stats.busy_ms += lat_ms;
    if (telemetry_ != nullptr) {
      BatchSample sample;
      sample.model_id = 0;
      sample.start_ms = now;
      sample.end_ms = end;
      sample.batch_size = static_cast<std::int64_t>(batch.size());
      sample.level_pos = pos;
      sample.energy_mj = energy;
      sample.battery_fraction = battery_.fraction();
      sample.queue_depth = batcher.pending();
      sample.node_queue_depth = batcher.pending();
      sample.misses = batch_misses;
      sample.latency_sum_ms = batch_latency_sum;
      telemetry_->on_batch(sample);
    }
    if (slo_ != nullptr) {
      SloObservation obs;
      obs.end_ms = end;
      obs.completed = static_cast<std::int64_t>(batch.size());
      obs.missed = batch_misses;
      obs.battery_fraction = battery_.fraction();
      obs.mean_latency_ms =
          batch_latency_sum / static_cast<double>(batch.size());
      slo_->observe(obs);
    }
    if (observer_) {
      observer_(batch, pos, now, end);
    }
    now = end;
  }

  if (battery_.empty() && stats.dropped == 0) {
    stats.dropped = batcher.pending() + (n - next);
    if (trace_ != nullptr && stats.dropped > 0) {
      trace_->record(TraceEvent("battery.dead", "governor", now, 0)
                         .arg("dropped", stats.dropped));
    }
  }
  stats.sim_end_ms = now;
  if (trace_ != nullptr) {
    // Detach so a later un-traced serve() on the same wiring stays clean.
    if (engine_ != nullptr) {
      engine_->set_trace(nullptr);
    }
    backend_->set_trace(nullptr, 0);
  }
  if (slo_ != nullptr) {
    slo_->set_trace(nullptr);
  }
  if (telemetry_ != nullptr && engine_ != nullptr) {
    engine_->set_telemetry(nullptr);
  }
  if (metrics_ != nullptr) {
    stats.publish(*metrics_, MetricLabels{{"policy", stats.policy},
                                          {"backend", stats.backend}});
    if (slo_ != nullptr) {
      slo_->publish(*metrics_);
    }
    if (trace_ != nullptr) {
      metrics_->gauge("trace.dropped_events")
          .set(static_cast<double>(trace_->dropped_events()));
    }
  }
  return stats;
}

ServerStats Server::serve_queue(RequestQueue& queue) {
  std::vector<Request> collected;
  Request r;
  while (queue.pop(r)) {
    collected.push_back(r);
  }
  std::sort(collected.begin(), collected.end(),
            [](const Request& a, const Request& b) {
              return a.arrival_ms != b.arrival_ms ? a.arrival_ms < b.arrival_ms
                                                  : a.id < b.id;
            });
  return serve(collected);
}

ServerStats serve_concurrent(Server& server,
                             const std::vector<Request>& schedule,
                             std::int64_t producers) {
  return consume_schedule_concurrently(
      schedule, producers,
      [&server](RequestQueue& queue) { return server.serve_queue(queue); });
}

}  // namespace rt3
