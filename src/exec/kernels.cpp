#include "exec/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/check.hpp"
#include "exec/kernels_dispatch.hpp"
#include "exec/simd.hpp"

namespace rt3 {
namespace {

/// Splits [0, total) into at most min(pool workers, options.threads) row
/// chunks — never more chunks than can run concurrently, so no worker
/// queues behind another while its siblings idle.  Chunk boundaries are
/// multiples of `align` rows; the remainder is spread one align-unit at a
/// time across the leading chunks so sizes differ by at most one unit.
/// Serial when the pool is absent, capped to one thread, or the matrix is
/// too small to amortize dispatch.
void parallel_rows(ThreadPool* pool, std::int64_t total,
                   const KernelOptions& options, std::int64_t align,
                   const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (total <= 0) {
    return;
  }
  std::int64_t max_chunks = pool == nullptr ? 1 : pool->num_threads();
  if (options.threads > 0) {
    max_chunks = std::min(max_chunks, options.threads);
  }
  if (max_chunks <= 1 || total < 2 * options.row_grain) {
    body(0, total);
    return;
  }
  const std::int64_t units = (total + align - 1) / align;
  const std::int64_t grain_units =
      std::max<std::int64_t>(1, options.row_grain / align);
  std::int64_t chunks = std::min(max_chunks, units / grain_units);
  if (chunks <= 1) {
    body(0, total);
    return;
  }
  const std::int64_t base = units / chunks;
  const std::int64_t rem = units % chunks;
  std::int64_t begin = 0;
  for (std::int64_t c = 0; c < chunks && begin < total; ++c) {
    const std::int64_t take = (base + (c < rem ? 1 : 0)) * align;
    const std::int64_t end = std::min(begin + take, total);
    pool->submit([&body, begin, end] { body(begin, end); });
    begin = end;
  }
  pool->wait_idle();
}

void check_matmul_shapes(std::int64_t w_cols, const Tensor& x) {
  check(x.dim() == 2 && x.size(0) == w_cols,
        "exec kernel: activation shape mismatch");
}

void check_options(const KernelOptions& options) {
  check(options.k_tile >= 0 && options.row_grain >= 1 &&
            options.unroll >= 1 && options.threads >= 0,
        "exec kernel: bad kernel options");
}

}  // namespace

const KernelTable& kernel_table_for(SimdIsa isa) {
  const KernelTable* table = nullptr;
  switch (isa) {
    case SimdIsa::kScalar:
      table = scalar_kernel_table();
      break;
    case SimdIsa::kAvx2:
      table = avx2_kernel_table();
      break;
    case SimdIsa::kNeon:
      table = neon_kernel_table();
      break;
  }
  check(table != nullptr, "kernel_table_for: ISA not available in this build");
  return *table;
}

Tensor naive_dense_matmul(const Tensor& w, const Tensor& x) {
  check(w.dim() == 2, "naive_dense_matmul: need a 2-D weight");
  check_matmul_shapes(w.size(1), x);
  const std::int64_t rows = w.size(0);
  const std::int64_t cols = w.size(1);
  const std::int64_t n = x.size(1);
  Tensor out({rows, n});
  const float* wd = w.data();
  const float* xd = x.data();
  float* od = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0F;
      for (std::int64_t k = 0; k < cols; ++k) {
        acc = std::fma(wd[r * cols + k], xd[k * n + j], acc);
      }
      od[r * n + j] = acc;
    }
  }
  return out;
}

std::int64_t resolve_k_tile(const KernelOptions& options, std::int64_t cols,
                            std::int64_t n) {
  if (options.k_tile > 0) {
    return options.k_tile;
  }
  // Auto: keep the active X slice (k_tile rows of n floats) within half
  // the per-core L1d so it survives the row sweep; the floor of 16 keeps
  // tiles from degenerating when n alone overflows L1 (the slice then
  // lives in L2, which the probe also sizes).
  const std::int64_t budget =
      std::max<std::int64_t>(cpu_l1d_bytes() / 2, 8 * 1024);
  const std::int64_t kt =
      budget / std::max<std::int64_t>(1, n * static_cast<std::int64_t>(
                                              sizeof(float)));
  return std::max<std::int64_t>(16, std::min(kt, cols));
}

Tensor dense_gemm(const Tensor& w, const Tensor& x, ThreadPool* pool,
                  const KernelOptions& options) {
  check(w.dim() == 2, "dense_gemm: need a 2-D weight");
  check_matmul_shapes(w.size(1), x);
  check_options(options);
  const std::int64_t rows = w.size(0);
  const std::int64_t cols = w.size(1);
  const std::int64_t n = x.size(1);
  Tensor out({rows, n});
  const KernelTable& table = kernel_table_for(active_simd_isa());
  DenseRangeArgs args;
  args.w = w.data();
  args.x = x.data();
  args.out = out.data();
  args.cols = cols;
  args.n = n;
  args.k_tile = resolve_k_tile(options, cols, n);
  args.unroll = options.unroll;
  parallel_rows(pool, rows, options, 1,
                [&](std::int64_t r0, std::int64_t r1) {
                  table.dense_range(args, r0, r1);
                });
  return out;
}

Tensor block_gemm(const BlockPrunedMatrix& w, const Tensor& x,
                  ThreadPool* pool, const KernelOptions& options) {
  check_matmul_shapes(w.cols(), x);
  check_options(options);
  const std::int64_t rows = w.rows();
  const std::int64_t n = x.size(1);
  Tensor out({rows, n});
  const KernelTable& table = kernel_table_for(active_simd_isa());
  BlockRangeArgs args;
  args.w = &w;
  args.x = x.data();
  args.out = out.data();
  args.n = n;
  args.unroll = options.unroll;
  parallel_rows(pool, rows, options, 1,
                [&](std::int64_t r0, std::int64_t r1) {
                  table.block_range(args, r0, r1);
                });
  return out;
}

Tensor pattern_gemm(const PatternPlan& plan, const Tensor& x,
                    ThreadPool* pool, const KernelOptions& options) {
  check_matmul_shapes(plan.cols, x);
  check_options(options);
  const std::int64_t n = x.size(1);
  Tensor out({plan.rows, n});
  const KernelTable& table = kernel_table_for(active_simd_isa());
  PatternRangeArgs args;
  args.plan = &plan;
  args.x = x.data();
  args.out = out.data();
  args.n = n;
  args.unroll = options.unroll;
  // Partition aligned to tile rows: each worker owns whole tile-rows.
  parallel_rows(pool, plan.rows, options, plan.psize,
                [&](std::int64_t r0, std::int64_t r1) {
                  table.pattern_range(args, r0, r1);
                });
  return out;
}

Tensor coo_gemm(const IrregularPlan& plan, const Tensor& x, ThreadPool* pool,
                const KernelOptions& options) {
  check_matmul_shapes(plan.cols, x);
  check_options(options);
  check(plan.row_start.size() ==
            static_cast<std::size_t>(plan.rows) + 1,
        "coo_gemm: plan missing row_start partition");
  const std::int64_t n = x.size(1);
  Tensor out({plan.rows, n});
  const float* xd = x.data();
  float* od = out.data();
  // Deliberately element-at-a-time: every triple re-loads its row/col
  // indices and round-trips the output row through memory, with no
  // vectorization and no accumulator reuse across triples.  Triples are
  // row-major sorted, so each output lane still sees ascending-k fma
  // order and the result is bitwise equal to the dense reference.
  parallel_rows(pool, plan.rows, options, 1,
                [&](std::int64_t r0, std::int64_t r1) {
    const std::int64_t e0 = plan.row_start[static_cast<std::size_t>(r0)];
    const std::int64_t e1 = plan.row_start[static_cast<std::size_t>(r1)];
    for (std::int64_t e = e0; e < e1; ++e) {
      const auto ei = static_cast<std::size_t>(e);
      const float v = plan.values[ei];
      const float* xrow = xd + plan.col_idx[ei] * n;
      float* orow = od + plan.row_idx[ei] * n;
      for (std::int64_t j = 0; j < n; ++j) {
        orow[j] = std::fma(v, xrow[j], orow[j]);
      }
    }
  });
  return out;
}

Tensor plan_gemm(const LayerPlan& plan, const Tensor& x, ThreadPool* pool,
                 const KernelOptions& options) {
  switch (plan.mode) {
    case ExecMode::kDense:
      return dense_gemm(plan.dense_weight, x, pool, options);
    case ExecMode::kBlock:
      return block_gemm(*plan.block, x, pool, options);
    case ExecMode::kPattern:
      return pattern_gemm(*plan.pattern, x, pool, options);
    case ExecMode::kIrregular:
      return coo_gemm(*plan.irregular, x, pool, options);
  }
  throw CheckError("plan_gemm: unsupported mode");
}

}  // namespace rt3
