// Transformer building blocks: layer norm, multi-head attention,
// position-wise FFN, encoder/decoder layers, sinusoidal positions.
#pragma once

#include <memory>
#include <vector>

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace rt3 {

/// LayerNorm over the last dimension with learnable gamma/beta.
class LayerNormLayer : public Module {
 public:
  explicit LayerNormLayer(std::int64_t dim);

  Var forward(const Var& x) const;
  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) const override;

 private:
  Var gamma_;
  Var beta_;
};

/// Sinusoidal positional encoding added to embeddings (no parameters).
class PositionalEncoding {
 public:
  PositionalEncoding(std::int64_t max_len, std::int64_t dim);

  /// x: [B, T, D]; adds the first T position rows.
  Var forward(const Var& x) const;

 private:
  Tensor table_;  // [max_len, dim]
};

/// Multi-head scaled-dot-product attention.
///
/// All four projection matrices (Q, K, V, O) are maskable Linears — these
/// are the self-attention weights the paper prunes (its Fig. 4 visualizes
/// patterns on "the self-attention layer of the first encoder").
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(std::int64_t dim, std::int64_t num_heads, Rng& rng);

  /// query: [B, Tq, D], key/value: [B, Tk, D].
  /// If causal, position i may only attend to keys <= i (requires Tq == Tk).
  Var forward(const Var& query, const Var& key, const Var& value,
              bool causal) const;

  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) const override;

  /// The four prunable projection layers.
  std::vector<Linear*> prunable();

 private:
  std::int64_t dim_;
  std::int64_t num_heads_;
  std::int64_t head_dim_;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
};

/// Position-wise feed-forward: Linear -> GELU -> Linear.
class FeedForward : public Module {
 public:
  FeedForward(std::int64_t dim, std::int64_t hidden, Rng& rng);

  Var forward(const Var& x) const;
  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) const override;
  std::vector<Linear*> prunable();

 private:
  std::unique_ptr<Linear> fc1_;
  std::unique_ptr<Linear> fc2_;
};

/// Pre-norm Transformer encoder layer.
class EncoderLayer : public Module {
 public:
  EncoderLayer(std::int64_t dim, std::int64_t num_heads, std::int64_t ffn_hidden,
               Rng& rng);

  /// x: [B, T, D]. `causal` lets a decoder-less LM stay autoregressive.
  Var forward(const Var& x, bool causal) const;

  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) const override;
  std::vector<Linear*> prunable();

 private:
  std::unique_ptr<MultiHeadAttention> attn_;
  std::unique_ptr<FeedForward> ffn_;
  std::unique_ptr<LayerNormLayer> norm1_;
  std::unique_ptr<LayerNormLayer> norm2_;
};

/// Pre-norm Transformer decoder layer (causal self-attn + cross-attn).
class DecoderLayer : public Module {
 public:
  DecoderLayer(std::int64_t dim, std::int64_t num_heads, std::int64_t ffn_hidden,
               Rng& rng);

  /// x: [B, T, D] decoder stream; memory: [B, Tm, D] encoder output.
  Var forward(const Var& x, const Var& memory) const;

  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) const override;
  std::vector<Linear*> prunable();

 private:
  std::unique_ptr<MultiHeadAttention> self_attn_;
  std::unique_ptr<MultiHeadAttention> cross_attn_;
  std::unique_ptr<FeedForward> ffn_;
  std::unique_ptr<LayerNormLayer> norm1_;
  std::unique_ptr<LayerNormLayer> norm2_;
  std::unique_ptr<LayerNormLayer> norm3_;
};

}  // namespace rt3
