// Multi-model ServeNode front-end: deployment ownership, model-id
// routing determinism under concurrent ingestion, feasibility-based
// admission, per-model -> node stats aggregation, and the
// shared-governor drain-then-switch across every resident model.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/check.hpp"
#include "exec/analytic_backend.hpp"
#include "nn/linear.hpp"
#include "pruning/model_pruner.hpp"
#include "pruning/pattern_prune.hpp"
#include "runtime/engine.hpp"
#include "serve/node.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"

namespace rt3 {
namespace {

Request make_request(std::int64_t id, double arrival_ms, double deadline_ms,
                     std::int64_t model_id = 0) {
  Request r;
  r.id = id;
  r.arrival_ms = arrival_ms;
  r.deadline_ms = deadline_ms;
  r.model_id = model_id;
  return r;
}

/// A minimal analytic deployment over the paper ladder (no engine).
ModelDeployment paper_deployment(ServerConfig cfg) {
  const LatencyModel latency = paper_calibrated_latency();
  ModelDeployment dep;
  dep.config(cfg)
      .spec(ModelSpec::paper_transformer())
      .latency(latency)
      .sparsities(paper_ladder_sparsities(latency, 115.0));
  return dep;
}

ServerConfig paper_server_config(double capacity_mj, BatchPolicy batch) {
  ServerConfig cfg;
  cfg.battery_capacity_mj = capacity_mj;
  cfg.batch = batch;
  return cfg;
}

std::vector<Request> generate_node_traffic(std::int64_t num_models,
                                           double rate_rps,
                                           double duration_ms = 60'000.0) {
  TrafficConfig tcfg;
  tcfg.scenario = TrafficScenario::kBurst;
  tcfg.duration_ms = duration_ms;
  tcfg.rate_rps = rate_rps;
  tcfg.deadline_slack_ms = 1'000.0;
  tcfg.tight_fraction = 0.3;
  tcfg.tight_slack_ms = 350.0;
  tcfg.num_models = num_models;
  return generate_traffic(tcfg);
}

TEST(ModelDeployment, BuildRequiresSparsities) {
  ModelDeployment dep;
  EXPECT_THROW(std::move(dep).build(
                   VfTable::odroid_xu3_a7(),
                   Governor::equal_tranches(paper_serve_ladder()),
                   PowerModel()),
               CheckError);
}

TEST(ModelRegistry, RejectsDuplicateIdsAndFindsShards) {
  ModelRegistry registry;
  registry.add(
      1, std::move(paper_deployment(paper_server_config(1e4, {2, 20.0})))
             .build(VfTable::odroid_xu3_a7(),
                    Governor::equal_tranches(paper_serve_ladder()),
                    PowerModel()));
  EXPECT_NE(registry.find(1), nullptr);
  EXPECT_EQ(registry.find(2), nullptr);
  EXPECT_THROW(
      registry.add(
          1, std::move(paper_deployment(paper_server_config(1e4, {2, 20.0})))
                 .build(VfTable::odroid_xu3_a7(),
                        Governor::equal_tranches(paper_serve_ladder()),
                        PowerModel())),
      CheckError);
}

// A node with ONE registered model must reproduce the single-model
// Server loop exactly — the facade adds routing, not behavior.
TEST(ServeNode, SingleModelNodeMatchesServerBitwise) {
  ServeSessionConfig config;
  config.battery_capacity_mj = 18'000.0;
  config.batch = BatchPolicy{4, 30.0};
  ServeSession single(config);
  NodeSession node_session(config, 1);

  TrafficConfig tcfg;
  tcfg.scenario = TrafficScenario::kSteady;
  tcfg.duration_ms = 60'000.0;
  tcfg.rate_rps = 5.0;
  const std::vector<Request> schedule = generate_traffic(tcfg);

  const ServerStats server_stats = single.server().serve(schedule);
  const NodeStats node_stats = node_session.node().serve(schedule);
  const ServerStats& shard_stats = node_stats.model(0);

  EXPECT_EQ(server_stats.submitted, shard_stats.submitted);
  EXPECT_EQ(server_stats.completed, shard_stats.completed);
  EXPECT_EQ(server_stats.batches, shard_stats.batches);
  EXPECT_EQ(server_stats.switches, shard_stats.switches);
  EXPECT_EQ(server_stats.deadline_misses, shard_stats.deadline_misses);
  EXPECT_DOUBLE_EQ(server_stats.sim_end_ms, shard_stats.sim_end_ms);
  EXPECT_DOUBLE_EQ(server_stats.energy_used_mj, shard_stats.energy_used_mj);
  EXPECT_DOUBLE_EQ(server_stats.switch_ms_total,
                   shard_stats.switch_ms_total);
  ASSERT_EQ(server_stats.latency_ms.size(), shard_stats.latency_ms.size());
  for (std::size_t i = 0; i < server_stats.latency_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(server_stats.latency_ms[i], shard_stats.latency_ms[i]);
  }
  ASSERT_EQ(server_stats.batch_sizes.size(), shard_stats.batch_sizes.size());
  for (std::size_t i = 0; i < server_stats.batch_sizes.size(); ++i) {
    EXPECT_EQ(server_stats.batch_sizes[i], shard_stats.batch_sizes[i]);
  }
}

// Routing must be deterministic under genuinely concurrent multi-producer
// ingestion: races in push order are erased by (arrival, id) ordering, so
// per-model results are identical to the direct serve() path.
TEST(ServeNode, RoutingIsDeterministicUnderMultiProducerQueue) {
  ServeSessionConfig config;
  NodeSession session(config, 3);
  const std::vector<Request> schedule = generate_node_traffic(3, 3.0);

  const NodeStats direct = session.node().serve(schedule);
  for (const std::int64_t producers : {2, 5}) {
    const NodeStats queued =
        serve_node_concurrent(session.node(), schedule, producers);
    ASSERT_EQ(direct.per_model.size(), queued.per_model.size());
    for (std::size_t m = 0; m < direct.per_model.size(); ++m) {
      const ServerStats& a = direct.per_model[m].second;
      const ServerStats& b = queued.per_model[m].second;
      EXPECT_EQ(direct.per_model[m].first, queued.per_model[m].first);
      EXPECT_EQ(a.submitted, b.submitted);
      EXPECT_EQ(a.completed, b.completed);
      EXPECT_EQ(a.batches, b.batches);
      EXPECT_EQ(a.deadline_misses, b.deadline_misses);
      ASSERT_EQ(a.latency_ms.size(), b.latency_ms.size());
      for (std::size_t i = 0; i < a.latency_ms.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.latency_ms[i], b.latency_ms[i]);
      }
    }
    EXPECT_DOUBLE_EQ(direct.sim_end_ms, queued.sim_end_ms);
    EXPECT_DOUBLE_EQ(direct.energy_used_mj, queued.energy_used_mj);
  }
}

// Per-model stats must sum exactly to the node totals, and every
// submitted request must be accounted somewhere.
TEST(ServeNode, PerModelStatsSumToNodeTotals) {
  ServeSessionConfig config;
  config.shed_expired = true;
  config.admit_feasible = true;
  NodeSession session(config, 3);
  const std::vector<Request> schedule = generate_node_traffic(3, 6.0);
  const NodeStats stats = session.node().serve(schedule);

  std::int64_t submitted = 0, completed = 0, dropped = 0, shed = 0,
               rejected = 0, batches = 0, switches = 0, misses = 0;
  double energy = 0.0;
  for (const auto& [id, s] : stats.per_model) {
    submitted += s.submitted;
    completed += s.completed;
    dropped += s.dropped;
    shed += s.shed;
    rejected += s.rejected;
    batches += s.batches;
    switches += s.switches;
    misses += s.deadline_misses;
    energy += s.energy_used_mj;
    // Per-model conservation: everything submitted to a shard is served,
    // dropped, shed, or rejected.
    EXPECT_EQ(s.completed + s.dropped + s.shed + s.rejected, s.submitted);
  }
  EXPECT_EQ(stats.submitted, submitted + stats.unroutable);
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.dropped, dropped);
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.batches, batches);
  EXPECT_EQ(stats.switches, switches);
  EXPECT_EQ(stats.deadline_misses, misses);
  EXPECT_DOUBLE_EQ(stats.energy_used_mj, energy);
  EXPECT_EQ(stats.submitted, static_cast<std::int64_t>(schedule.size()));
  EXPECT_EQ(stats.unroutable, 0);
}

// Feasibility admission must reject EXACTLY the requests whose deadline
// lies inside now + batch_latency(1, level) at ingress — no more, no
// less — and attribute them to their target model.
TEST(ServeNode, AdmissionRejectsExactlyTheInfeasibleSet) {
  NodeConfig ncfg;
  ncfg.battery_capacity_mj = 1e9;  // never dies
  ServeNode node(ncfg, VfTable::odroid_xu3_a7(),
                 Governor::equal_tranches(paper_serve_ladder()),
                 PowerModel());
  ServerConfig cfg = paper_server_config(1e9, BatchPolicy{1, 0.0});
  cfg.admit_feasible = true;
  node.add_model(0, paper_deployment(cfg));
  node.add_model(1, paper_deployment(cfg));
  const double lat1 = node.model(0).batch_latency_ms(1, 0);

  const std::vector<Request> schedule = {
      make_request(0, 0.0, 1e12, 0),        // feasible
      make_request(1, 0.0, lat1 * 0.5, 0),  // INFEASIBLE at ingress
      make_request(2, 0.0, lat1, 1),        // boundary: exactly feasible
      make_request(3, 0.0, lat1 * 0.9, 1),  // INFEASIBLE at ingress
      make_request(4, 0.0, 1e12, 1),        // feasible
  };
  const NodeStats stats = node.serve(schedule);

  EXPECT_EQ(stats.model(0).rejected, 1);
  EXPECT_EQ(stats.model(1).rejected, 1);
  EXPECT_EQ(stats.model(0).completed, 1);
  EXPECT_EQ(stats.model(1).completed, 2);
  EXPECT_EQ(stats.rejected, 2);
  EXPECT_EQ(stats.completed + stats.rejected, stats.submitted);
  // The boundary request (deadline == now + lat1) was ADMITTED — the
  // feasibility test is >= — but then queued behind model 0's batch and
  // missed: ingress admission is a necessary-condition filter, not a
  // completion guarantee.
  EXPECT_EQ(stats.model(1).deadline_misses, 1);

  // The same schedule with admission off: nothing rejected, the
  // infeasible requests occupy batch slots and miss instead.
  ServeNode no_admit(ncfg, VfTable::odroid_xu3_a7(),
                     Governor::equal_tranches(paper_serve_ladder()),
                     PowerModel());
  ServerConfig cfg_off = cfg;
  cfg_off.admit_feasible = false;
  no_admit.add_model(0, paper_deployment(cfg_off));
  no_admit.add_model(1, paper_deployment(cfg_off));
  const NodeStats off = no_admit.serve(schedule);
  EXPECT_EQ(off.rejected, 0);
  EXPECT_EQ(off.completed, off.submitted);
  EXPECT_GE(off.deadline_misses, 2);  // the two infeasible ones now miss
}

// Requests targeting an unregistered model are counted, not crashed on.
TEST(ServeNode, UnroutableRequestsAreCounted) {
  NodeConfig ncfg;
  ServeNode node(ncfg, VfTable::odroid_xu3_a7(),
                 Governor::equal_tranches(paper_serve_ladder()),
                 PowerModel());
  node.add_model(7, paper_deployment(paper_server_config(1e9, {2, 10.0})));
  const std::vector<Request> schedule = {
      make_request(0, 0.0, 1e12, 7),
      make_request(1, 1.0, 1e12, 99),  // no such model
      make_request(2, 2.0, 1e12, 7),
  };
  const NodeStats stats = node.serve(schedule);
  EXPECT_EQ(stats.unroutable, 1);
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_TRUE(stats.has_model(7));
  EXPECT_FALSE(stats.has_model(99));
}

// One battery step-down must drain-then-switch EVERY resident model at
// the same boundary: equal switch counts everywhere, every engine on the
// final ladder level, and all levels actually serving per model.
TEST(ServeNode, SharedGovernorSwitchDrainsAllShards) {
  ServeSessionConfig config;
  config.battery_capacity_mj = 18'000.0;
  config.batch = BatchPolicy{4, 30.0};
  NodeSession session(config, 3);
  const std::vector<Request> schedule = generate_node_traffic(3, 5.0);
  // Per-shard batch observers fire from the node loop too: every batch a
  // shard runs is reported with a monotone non-decreasing level position.
  std::vector<std::int64_t> observed_batches(3, 0);
  std::vector<std::int64_t> last_level(3, 0);
  for (std::int64_t m = 0; m < 3; ++m) {
    session.node().model(m).set_batch_observer(
        [&observed_batches, &last_level, m](const std::vector<Request>& batch,
                                            std::int64_t pos, double start,
                                            double end) {
          EXPECT_LT(start, end);
          EXPECT_FALSE(batch.empty());
          EXPECT_GE(pos, last_level[static_cast<std::size_t>(m)]);
          last_level[static_cast<std::size_t>(m)] = pos;
          ++observed_batches[static_cast<std::size_t>(m)];
        });
  }
  const NodeStats stats = session.node().serve(schedule);
  for (std::int64_t m = 0; m < 3; ++m) {
    EXPECT_EQ(observed_batches[static_cast<std::size_t>(m)],
              stats.model(m).batches);
  }

  // Two step-downs on the {l6, l4, l3} ladder with this battery.
  ASSERT_EQ(stats.per_model.size(), 3U);
  for (const auto& [id, s] : stats.per_model) {
    EXPECT_EQ(s.switches, 2) << "model " << id;
    ASSERT_EQ(s.runs_per_level.size(), 3U);
    for (double runs : s.runs_per_level) {
      EXPECT_GT(runs, 0.0) << "model " << id;
    }
    EXPECT_EQ(s.completed, s.submitted) << "model " << id;
  }
  EXPECT_EQ(stats.switches, 6);
  EXPECT_EQ(stats.dropped, 0);
  // Every resident engine ended on the slowest level — no shard was left
  // behind on a sub-model the final V/F level cannot afford.
  for (std::int64_t m = 0; m < 3; ++m) {
    ReconfigEngine* engine = session.node().model(m).reconfig_engine();
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->current_level(), 2) << "model " << m;
  }
}

// Multi-model traffic: the single-model path is bitwise-stable, the
// multi-model merge is deterministic, sorted, and respects weights.
TEST(Traffic, MultiModelMixIsDeterministicAndWeighted) {
  TrafficConfig base;
  base.scenario = TrafficScenario::kBurst;
  base.duration_ms = 60'000.0;
  base.rate_rps = 20.0;

  // num_models = 1 must not perturb the historical stream.
  const std::vector<Request> single = generate_traffic(base);
  TrafficConfig one = base;
  one.num_models = 1;
  const std::vector<Request> still_single = generate_traffic(one);
  ASSERT_EQ(single.size(), still_single.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_DOUBLE_EQ(single[i].arrival_ms, still_single[i].arrival_ms);
    EXPECT_DOUBLE_EQ(single[i].deadline_ms, still_single[i].deadline_ms);
    EXPECT_EQ(still_single[i].model_id, 0);
  }

  TrafficConfig multi = base;
  multi.num_models = 3;
  const std::vector<Request> a = generate_traffic(multi);
  const std::vector<Request> b = generate_traffic(multi);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  std::vector<std::int64_t> per_model(3, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival_ms, b[i].arrival_ms);
    EXPECT_EQ(a[i].model_id, b[i].model_id);
    EXPECT_EQ(a[i].id, static_cast<std::int64_t>(i));
    ASSERT_GE(a[i].model_id, 0);
    ASSERT_LT(a[i].model_id, 3);
    ++per_model[static_cast<std::size_t>(a[i].model_id)];
    if (i > 0) {
      EXPECT_GE(a[i].arrival_ms, a[i - 1].arrival_ms);
    }
  }
  // Uniform weights: each model carries roughly a third of the load.
  for (const std::int64_t count : per_model) {
    EXPECT_GT(count, static_cast<std::int64_t>(a.size()) / 6);
  }

  // A 10:1:1 weighting skews the mix decisively toward model 0.
  TrafficConfig weighted = multi;
  weighted.model_weights = {10.0, 1.0, 1.0};
  std::vector<std::int64_t> skewed(3, 0);
  for (const Request& r : generate_traffic(weighted)) {
    ++skewed[static_cast<std::size_t>(r.model_id)];
  }
  EXPECT_GT(skewed[0], 3 * skewed[1]);
  EXPECT_GT(skewed[0], 3 * skewed[2]);
}

}  // namespace
}  // namespace rt3
