#include "data/corpus.hpp"

#include "common/check.hpp"

namespace rt3 {

Corpus::Corpus(const CorpusConfig& config) : config_(config) {
  check(config_.vocab_size >= 4, "Corpus: vocab too small");
  check(config_.num_tokens >= 100, "Corpus: corpus too small");
  check(config_.rule_strength >= 0.0 && config_.rule_strength <= 1.0,
        "Corpus: rule_strength must be in [0,1]");

  Rng rng(config_.seed);

  // Planted bigram grammar: a random permutation-ish successor table.  A
  // permutation (rather than arbitrary map) keeps every token reachable so
  // the validation split exercises the whole table.
  successor_.resize(static_cast<std::size_t>(config_.vocab_size));
  std::vector<std::int64_t> perm(static_cast<std::size_t>(config_.vocab_size));
  for (std::int64_t i = 0; i < config_.vocab_size; ++i) {
    perm[static_cast<std::size_t>(i)] = i;
  }
  rng.shuffle(perm);
  for (std::int64_t i = 0; i < config_.vocab_size; ++i) {
    successor_[static_cast<std::size_t>(i)] = perm[static_cast<std::size_t>(i)];
  }

  std::vector<std::int64_t> tokens;
  tokens.reserve(static_cast<std::size_t>(config_.num_tokens));
  std::int64_t current = rng.zipf(config_.vocab_size, config_.zipf_exponent);
  tokens.push_back(current);
  for (std::int64_t i = 1; i < config_.num_tokens; ++i) {
    if (rng.bernoulli(config_.rule_strength)) {
      current = successor_[static_cast<std::size_t>(current)];
    } else {
      current = rng.zipf(config_.vocab_size, config_.zipf_exponent);
    }
    tokens.push_back(current);
  }

  // 90/10 train/valid split.
  const std::int64_t split = config_.num_tokens * 9 / 10;
  train_.assign(tokens.begin(), tokens.begin() + split);
  valid_.assign(tokens.begin() + split, tokens.end());
}

double Corpus::oracle_accuracy() const {
  std::int64_t hits = 0;
  for (std::size_t i = 0; i + 1 < valid_.size(); ++i) {
    hits += (successor_[static_cast<std::size_t>(valid_[i])] == valid_[i + 1])
                ? 1
                : 0;
  }
  if (valid_.size() < 2) {
    return 0.0;
  }
  return static_cast<double>(hits) / static_cast<double>(valid_.size() - 1);
}

LmBatcher::LmBatcher(const std::vector<std::int64_t>& tokens,
                     std::int64_t batch, std::int64_t seq_len,
                     std::uint64_t /*seed*/)
    : tokens_(tokens), batch_(batch), seq_len_(seq_len) {
  check(batch >= 1 && seq_len >= 1, "LmBatcher: bad batch/seq_len");
  check(static_cast<std::int64_t>(tokens.size()) > seq_len + 1,
        "LmBatcher: token stream too short");
}

std::int64_t LmBatcher::num_windows() const {
  return static_cast<std::int64_t>(tokens_.size()) - seq_len_ - 1;
}

LmBatch LmBatcher::next(Rng& rng) const {
  LmBatch out;
  out.batch = batch_;
  out.seq_len = seq_len_;
  out.inputs.reserve(static_cast<std::size_t>(batch_ * seq_len_));
  out.targets.reserve(static_cast<std::size_t>(batch_ * seq_len_));
  for (std::int64_t b = 0; b < batch_; ++b) {
    const std::int64_t start = rng.uniform_int(num_windows());
    for (std::int64_t t = 0; t < seq_len_; ++t) {
      out.inputs.push_back(tokens_[static_cast<std::size_t>(start + t)]);
      out.targets.push_back(tokens_[static_cast<std::size_t>(start + t + 1)]);
    }
  }
  return out;
}

LmBatch LmBatcher::at(std::int64_t start) const {
  LmBatch out;
  out.batch = batch_;
  out.seq_len = seq_len_;
  for (std::int64_t b = 0; b < batch_; ++b) {
    // Stride windows so a small number of deterministic batches covers the
    // split; wrap around if needed.
    const std::int64_t s = (start + b * seq_len_) % num_windows();
    for (std::int64_t t = 0; t < seq_len_; ++t) {
      out.inputs.push_back(tokens_[static_cast<std::size_t>(s + t)]);
      out.targets.push_back(tokens_[static_cast<std::size_t>(s + t + 1)]);
    }
  }
  return out;
}

}  // namespace rt3
