#include "serve/node.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/concurrent.hpp"
#include "serve/policy.hpp"

namespace rt3 {

ModelDeployment& ModelDeployment::config(const ServerConfig& config) {
  config_ = config;
  return *this;
}

ModelDeployment& ModelDeployment::spec(const ModelSpec& spec) {
  spec_ = spec;
  return *this;
}

ModelDeployment& ModelDeployment::latency(const LatencyModel& latency) {
  latency_ = latency;
  return *this;
}

ModelDeployment& ModelDeployment::sparsities(std::vector<double> sparsities) {
  sparsities_ = std::move(sparsities);
  return *this;
}

ModelDeployment& ModelDeployment::scheduler(const SchedulerConfig& scheduler) {
  config_.scheduler = scheduler;
  return *this;
}

ModelDeployment& ModelDeployment::batch(const BatchPolicy& batch) {
  config_.batch = batch;
  return *this;
}

ModelDeployment& ModelDeployment::admit_feasible(bool admit) {
  config_.admit_feasible = admit;
  return *this;
}

ModelDeployment& ModelDeployment::engine(
    std::unique_ptr<ReconfigEngine> engine) {
  engine_ = std::move(engine);
  return *this;
}

ModelDeployment& ModelDeployment::backend(
    std::unique_ptr<ExecutionBackend> backend) {
  backend_ = std::move(backend);
  return *this;
}

std::unique_ptr<Server> ModelDeployment::build(const VfTable& table,
                                               const GovernorHandle& governor,
                                               const PowerModel& power) && {
  check(!sparsities_.empty(),
        "ModelDeployment: sparsities(...) required (one per governor level)");
  auto server = std::make_unique<Server>(config_, table, governor, power,
                                         latency_, spec_, sparsities_);
  if (backend_ != nullptr) {
    server->adopt_backend(std::move(backend_));
  }
  if (engine_ != nullptr) {
    server->adopt_engine(std::move(engine_));
  }
  return server;
}

Server& ModelRegistry::add(std::int64_t model_id,
                           std::unique_ptr<Server> shard) {
  check(shard != nullptr, "ModelRegistry: null shard");
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), model_id);
  check(it == ids_.end() || *it != model_id,
        "ModelRegistry: duplicate model id " + std::to_string(model_id));
  const auto pos = static_cast<std::size_t>(it - ids_.begin());
  ids_.insert(it, model_id);
  shards_.insert(shards_.begin() + static_cast<std::ptrdiff_t>(pos),
                 std::move(shard));
  return *shards_[pos];
}

Server* ModelRegistry::find(std::int64_t model_id) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), model_id);
  if (it == ids_.end() || *it != model_id) {
    return nullptr;
  }
  return shards_[static_cast<std::size_t>(it - ids_.begin())].get();
}

Router::Decision Router::route(const Request& r, double now_ms,
                               std::int64_t level_pos) const {
  Decision decision;
  decision.shard = registry_.find(r.model_id);
  if (decision.shard == nullptr) {
    if (telemetry_ != nullptr) {
      telemetry_->count_unroutable();
    }
    if (trace_ != nullptr) {
      TraceEvent ev("unroutable", "router", r.arrival_ms, 0);
      ev.id = r.id;
      ev.arg("model_id", r.model_id);
      trace_->record(std::move(ev));
    }
    return decision;
  }
  // Feasibility: could an immediate solo launch at the current level meet
  // the deadline?  If not, queueing the request can only produce a miss
  // and delay feasible work behind it.
  decision.admitted =
      !decision.shard->config().admit_feasible ||
      r.deadline_ms >= now_ms + decision.shard->batch_latency_ms(1, level_pos);
  if (telemetry_ != nullptr && !decision.admitted) {
    telemetry_->count_reject(r.model_id);
  }
  if (trace_ != nullptr) {
    TraceEvent ev(decision.admitted ? "arrive" : "reject", "request",
                  r.arrival_ms, r.model_id + 1);
    ev.id = r.id;
    ev.arg("deadline_ms", r.deadline_ms).arg("model_id", r.model_id);
    trace_->record(std::move(ev));
  }
  return decision;
}

ServeNode::ServeNode(NodeConfig config, VfTable table, GovernorHandle governor,
                     PowerModel power)
    : config_(config),
      table_(std::move(table)),
      governor_(std::move(governor)),
      power_(power),
      battery_(config.battery_capacity_mj),
      router_(registry_) {
  for (const std::int64_t li : governor_.ladder().levels()) {
    check(li >= 0 && li < table_.size(),
          "ServeNode: governor level not in table");
  }
}

Server& ServeNode::add_model(std::int64_t model_id,
                             ModelDeployment deployment) {
  std::unique_ptr<Server> shard =
      std::move(deployment).build(table_, governor_, power_);
  return registry_.add(model_id, std::move(shard));
}

Server& ServeNode::model(std::int64_t model_id) {
  Server* shard = registry_.find(model_id);
  check(shard != nullptr,
        "ServeNode: no model " + std::to_string(model_id));
  return *shard;
}

NodeStats ServeNode::serve(const std::vector<Request>& schedule) {
  check(registry_.size() >= 1, "ServeNode: no models registered");
  GovernorPolicy& gov = governor_.policy();
  const Governor& ladder = governor_.ladder();
  gov.reset();  // fresh episode: EWMAs / recurrent state, never weights

  /// One model's in-flight serving state inside the node loop.
  struct Shard {
    std::int64_t model_id = 0;
    Server* server = nullptr;
    Batcher batcher;
    ServerStats stats;
    Shard(std::int64_t id, Server* s)
        : model_id(id),
          server(s),
          batcher(s->config().batch, s->config().scheduler) {}
  };

  std::vector<Shard> shards;
  shards.reserve(static_cast<std::size_t>(registry_.size()));
  for (const std::int64_t id : registry_.ids()) {
    Server* server = registry_.find(id);
    shards.emplace_back(id, server);
    Shard& sh = shards.back();
    sh.stats.backend = server->backend().name();
    sh.stats.policy = scheduling_policy_name(server->config().scheduler.policy);
    sh.stats.runs_per_level.assign(ladder.levels().size(), 0.0);
  }
  const auto shard_of = [&](const Server* server) -> Shard& {
    for (Shard& sh : shards) {
      if (sh.server == server) {
        return sh;
      }
    }
    throw CheckError("ServeNode: router returned an unregistered shard");
  };

  NodeStats node;
  battery_.recharge();

  // Node-wide interval records for miss attribution: batches and switch
  // epochs from EVERY model serialize on the one core, so one shared pair
  // of accounts describes what any waiting request was stalled behind.
  IntervalAccount switch_ivals;
  IntervalAccount exec_ivals;
  if (trace_ != nullptr) {
    router_.set_trace(trace_);
    for (Shard& sh : shards) {
      const std::int64_t lane = sh.model_id + 1;
      if (sh.server->reconfig_engine() != nullptr) {
        sh.server->reconfig_engine()->set_trace(trace_);
      }
      sh.server->exec_backend().set_trace(trace_, lane);
      sh.batcher.set_trace(trace_, lane);
    }
    trace_->set_now_ms(0.0);
  }
  if (slo_ != nullptr) {
    slo_->set_trace(trace_);
  }
  if (telemetry_ != nullptr) {
    telemetry_->set_now_ms(0.0);
    router_.set_telemetry(telemetry_);
    for (Shard& sh : shards) {
      if (sh.server->reconfig_engine() != nullptr) {
        sh.server->reconfig_engine()->set_telemetry(telemetry_);
      }
    }
  }

  const auto n = static_cast<std::int64_t>(schedule.size());
  std::int64_t next = 0;     // next schedule index to route
  std::int64_t active = -1;  // current governor-level position (node-wide)
  // Drain-then-switch lag of the next switch epoch (see Server::serve);
  // within an epoch, shard k's switch can only fire after shards 0..k-1
  // have switched, so the recorded lag accumulates across the epoch.
  double pending_switch_lag = 0.0;
  double now = 0.0;

  const auto total_pending = [&] {
    std::int64_t pending = 0;
    for (const Shard& sh : shards) {
      pending += sh.batcher.pending();
    }
    return pending;
  };

  // Node-wide deadline pressure: the most urgent shard's consumed share
  // of its max-wait budget (shard order is deterministic).
  const auto max_pressure = [&](double at_ms) {
    double pressure = 0.0;
    for (const Shard& sh : shards) {
      pressure = std::max(
          pressure, deadline_pressure(at_ms, sh.batcher.release_at_ms(),
                                      sh.batcher.policy().max_wait_ms));
    }
    return pressure;
  };

  while (next < n || total_pending() > 0) {
    if (battery_.empty()) {
      break;
    }
    GovernorObservation gobs;
    gobs.now_ms = now;
    gobs.battery_fraction = battery_.fraction();
    gobs.queue_depth = total_pending();
    gobs.deadline_pressure = max_pressure(now);
    const std::int64_t pos = gov.decide(gobs);
    if (pos != active) {
      // Shared-governor switch: the battery crossing is one node-level
      // event, and EVERY resident model switches at this batch boundary —
      // in model-id order, serialized on the single core — so no shard
      // keeps serving a sub-model the new V/F level cannot afford.
      double lag = pending_switch_lag;
      bool battery_died = false;
      if (trace_ != nullptr && active >= 0) {
        trace_->set_now_ms(now);
        trace_->record(TraceEvent("governor.step", "governor", now, 0)
                           .arg("from_level", active)
                           .arg("to_level", pos)
                           .arg("battery_fraction", battery_.fraction()));
      }
      for (Shard& sh : shards) {
        const ServerConfig& cfg = sh.server->config();
        ReconfigEngine* engine = sh.server->reconfig_engine();
        double engine_swap_ms = 0.0;
        if (cfg.software_reconfig && active >= 0) {
          if (!battery_.drain(cfg.switch_energy_mj)) {
            battery_died = true;  // mid-epoch death: leftovers drop below
            break;
          }
          sh.stats.energy_used_mj += cfg.switch_energy_mj;
          double switch_ms = cfg.switch_latency_ms;
          if (trace_ != nullptr) {
            trace_->set_now_ms(now);
          }
          if (telemetry_ != nullptr) {
            telemetry_->set_now_ms(now);
          }
          if (engine != nullptr) {
            const SwitchReport report = engine->switch_to(pos);
            switch_ms = report.modeled_ms;
            engine_swap_ms = report.plan_swap_wall_ms;
          }
          ++sh.stats.switches;
          switch_ivals.add(now, now + switch_ms);
          if (trace_ != nullptr) {
            TraceEvent ev("switch", "switch", now, sh.model_id + 1);
            ev.ph = 'X';
            ev.dur_ms = switch_ms;
            ev.arg("to_level", pos).arg("drain_lag_ms", lag);
            trace_->record(std::move(ev));
          }
          now += switch_ms;
          sh.stats.switch_ms_total += switch_ms;
          sh.stats.switch_ms.push_back(switch_ms);
          sh.stats.switch_lag_ms.push_back(lag);
          if (telemetry_ != nullptr) {
            telemetry_->record_switch(switch_ms);
          }
          lag += switch_ms;
        } else if (cfg.software_reconfig && engine != nullptr) {
          // Initial activation: free at t = 0.
          engine_swap_ms = engine->switch_to(pos).plan_swap_wall_ms;
        }
        const double swap_ms =
            engine_swap_ms + sh.server->exec_backend().activate_level(pos);
        sh.stats.plan_swap_ms.push_back(swap_ms);
        sh.stats.plan_swap_ms_total += swap_ms;
      }
      pending_switch_lag = 0.0;
      if (battery_died) {
        break;
      }
      active = pos;
      continue;  // re-read the fraction in case the switches drained it dry
    }

    // Governor-aware batching, per shard (each deployment carries its own
    // margin/cap) against the one shared battery.
    for (Shard& sh : shards) {
      const ServerConfig& cfg = sh.server->config();
      const double margin = gov.shrink_margin(cfg.governor_margin);
      if (margin > 0.0) {
        const double fraction = battery_.fraction();
        const double threshold = gov.next_step_down(fraction);
        const bool near_switch =
            threshold > 0.0 && fraction - threshold <= margin;
        sh.batcher.set_batch_cap(near_switch ? cfg.governor_shrink_batch
                                             : cfg.batch.max_batch_size);
      }
    }

    // Route everything that has arrived by now; the Router decides the
    // target shard (model id) and feasibility admission at ingress.
    while (next < n &&
           schedule[static_cast<std::size_t>(next)].arrival_ms <= now) {
      const Request& r = schedule[static_cast<std::size_t>(next)];
      const Router::Decision decision = router_.route(r, now, pos);
      if (decision.shard == nullptr) {
        ++node.unroutable;
      } else {
        Shard& sh = shard_of(decision.shard);
        ++sh.stats.submitted;
        if (decision.admitted) {
          sh.batcher.push(r);
        } else {
          ++sh.stats.rejected;
        }
      }
      ++next;
    }

    // Load shedding per shard: a blown deadline cannot be served in time.
    for (Shard& sh : shards) {
      if (sh.server->config().shed_expired) {
        const std::int64_t n_shed =
            static_cast<std::int64_t>(sh.batcher.shed_expired(now).size());
        sh.stats.shed += n_shed;
        if (telemetry_ != nullptr && n_shed > 0) {
          telemetry_->count_shed(sh.model_id, n_shed);
        }
      }
    }
    if (next >= n && total_pending() == 0) {
      continue;  // everything left was shed/rejected; the loop ends it
    }

    // Pick the shard to run: batches serialize on the one core, so take
    // the ready shard whose forced-release point is earliest (the oldest
    // waiting work), ties to the lowest model id.  With one model this
    // degenerates to exactly Server::serve's order.
    Shard* run = nullptr;
    for (Shard& sh : shards) {
      if (!sh.batcher.ready(now)) {
        continue;
      }
      if (run == nullptr ||
          sh.batcher.release_at_ms() < run->batcher.release_at_ms()) {
        run = &sh;
      }
    }
    if (run == nullptr) {
      // Nothing to do yet: jump to the earliest actionable instant.
      double wake = next < n
                        ? schedule[static_cast<std::size_t>(next)].arrival_ms
                        : std::numeric_limits<double>::infinity();
      for (const Shard& sh : shards) {
        wake = std::min(wake, sh.batcher.release_at_ms());
      }
      check(wake < std::numeric_limits<double>::infinity(),
            "ServeNode: idle with nothing pending");  // loop condition bars it
      now = std::max(now, wake);
      continue;
    }

    const std::vector<Request> batch = run->batcher.pop_batch(now);
    if (trace_ != nullptr) {
      trace_->set_now_ms(now);
    }
    const BatchExecution exec = run->server->exec_backend().run_batch(
        static_cast<std::int64_t>(batch.size()), pos);
    const double lat_ms = exec.latency_ms;
    run->stats.kernel_wall_ms_total += exec.kernel_wall_ms;
    const VfLevel& level =
        table_.level(ladder.levels()[static_cast<std::size_t>(pos)]);
    const double energy = power_.energy_mj(level, lat_ms);
    const double frac_before = battery_.fraction();
    if (!battery_.drain(energy)) {
      // The popped batch is lost here; every other leftover is attributed
      // after the loop.
      run->stats.dropped += static_cast<std::int64_t>(batch.size());
      if (trace_ != nullptr) {
        trace_->record(TraceEvent("battery.dead", "governor", now, 0)
                           .arg("model_id", run->model_id));
      }
      break;
    }
    const double frac_after = battery_.fraction();
    const double drain_lag =
        gov.drain_lag_ms(pos, frac_before, frac_after, lat_ms);
    if (drain_lag >= 0.0) {
      pending_switch_lag = drain_lag;
    }
    const double end = now + lat_ms;
    std::int64_t batch_misses = 0;
    double batch_latency_sum = 0.0;
    for (const Request& r : batch) {
      run->stats.latency_ms.push_back(end - r.arrival_ms);
      batch_latency_sum += end - r.arrival_ms;
      // Decompose against the node-wide accounts BEFORE this batch joins
      // exec_ivals: waiting behind ANOTHER model's batch is queue_wait
      // here too — cross-model head-of-line blocking becomes visible.
      const WaitBreakdown w =
          attribute_wait(switch_ivals, exec_ivals, r.arrival_ms, now, end);
      run->stats.queue_wait_ms.push_back(w.queue_wait_ms);
      run->stats.batch_wait_ms.push_back(w.batch_wait_ms);
      run->stats.switch_stall_req_ms.push_back(w.switch_stall_ms);
      run->stats.exec_req_ms.push_back(w.exec_ms);
      run->stats.ensure_class(r.priority);
      ++run->stats
            .completed_per_class[static_cast<std::size_t>(r.priority)];
      MissClass miss = MissClass::kNone;
      if (end > r.deadline_ms) {
        ++run->stats.deadline_misses;
        ++batch_misses;
        ++run->stats.misses_per_class[static_cast<std::size_t>(r.priority)];
        miss = classify_miss(w, r.arrival_ms, end, r.deadline_ms);
        switch (miss) {
          case MissClass::kQueued: ++run->stats.miss_queued; break;
          case MissClass::kSwitch: ++run->stats.miss_switch; break;
          case MissClass::kExec: ++run->stats.miss_exec; break;
          case MissClass::kNone: break;  // unreachable: end > deadline
        }
      }
      if (trace_ != nullptr) {
        const std::int64_t lane = run->model_id + 1;
        TraceEvent span("request", "request", r.arrival_ms, lane);
        span.ph = 'X';
        span.dur_ms = end - r.arrival_ms;
        span.id = r.id;
        span.arg("queue_wait_ms", w.queue_wait_ms)
            .arg("batch_wait_ms", w.batch_wait_ms)
            .arg("switch_stall_ms", w.switch_stall_ms)
            .arg("exec_ms", w.exec_ms)
            .arg("deadline_ms", r.deadline_ms);
        trace_->record(std::move(span));
        if (miss != MissClass::kNone) {
          TraceEvent ev("miss", "request", end, lane);
          ev.id = r.id;
          ev.arg("cause", std::string(miss_class_name(miss)))
              .arg("over_by_ms", end - r.deadline_ms);
          trace_->record(std::move(ev));
        }
      }
    }
    exec_ivals.add(now, end);
    {
      BatchFeedback feedback;
      feedback.start_ms = now;
      feedback.end_ms = end;
      feedback.batch_size = static_cast<std::int64_t>(batch.size());
      feedback.level_pos = pos;
      feedback.energy_mj = energy;
      feedback.battery_fraction = frac_after;
      feedback.drain_fraction = frac_before - frac_after;
      feedback.misses = batch_misses;
      gov.observe_batch(feedback);
    }
    if (trace_ != nullptr) {
      TraceEvent ev("batch", "batch", now, run->model_id + 1);
      ev.ph = 'X';
      ev.dur_ms = lat_ms;
      ev.arg("size", static_cast<std::int64_t>(batch.size()))
          .arg("level", pos)
          .arg("energy_mj", energy);
      trace_->record(std::move(ev));
    }
    run->stats.energy_used_mj += energy;
    run->stats.completed += static_cast<std::int64_t>(batch.size());
    run->stats.runs_per_level[static_cast<std::size_t>(pos)] +=
        static_cast<double>(batch.size());
    ++run->stats.batches;
    run->stats.batch_sizes.push_back(static_cast<std::int64_t>(batch.size()));
    run->stats.busy_ms += lat_ms;
    if (telemetry_ != nullptr) {
      BatchSample sample;
      sample.model_id = run->model_id;
      sample.start_ms = now;
      sample.end_ms = end;
      sample.batch_size = static_cast<std::int64_t>(batch.size());
      sample.level_pos = pos;
      sample.energy_mj = energy;
      sample.battery_fraction = battery_.fraction();
      sample.queue_depth = run->batcher.pending();
      sample.node_queue_depth = total_pending();
      sample.misses = batch_misses;
      sample.latency_sum_ms = batch_latency_sum;
      telemetry_->on_batch(sample);
    }
    if (slo_ != nullptr) {
      // Node-level SLO: batches from every model feed one monitor, so a
      // breach means the NODE is burning its error budget regardless of
      // which resident model the misses came from.
      SloObservation obs;
      obs.end_ms = end;
      obs.completed = static_cast<std::int64_t>(batch.size());
      obs.missed = batch_misses;
      obs.battery_fraction = battery_.fraction();
      obs.mean_latency_ms =
          batch_latency_sum / static_cast<double>(batch.size());
      slo_->observe(obs);
    }
    if (run->server->batch_observer()) {
      run->server->batch_observer()(batch, pos, now, end);
    }
    now = end;
  }

  if (battery_.empty()) {
    // Battery died: queued requests drop where they sat, unrouted ones
    // still attribute to their target model (or unroutable), so per-model
    // submitted always sums to the schedule.
    for (Shard& sh : shards) {
      sh.stats.dropped += sh.batcher.pending();
    }
    for (; next < n; ++next) {
      Server* shard = registry_.find(
          schedule[static_cast<std::size_t>(next)].model_id);
      if (shard == nullptr) {
        ++node.unroutable;
      } else {
        Shard& sh = shard_of(shard);
        ++sh.stats.submitted;
        ++sh.stats.dropped;
      }
    }
  }

  node.sim_end_ms = now;
  for (Shard& sh : shards) {
    sh.stats.sim_end_ms = now;
    node.per_model.emplace_back(sh.model_id, std::move(sh.stats));
  }
  node.aggregate();
  if (trace_ != nullptr) {
    // Detach so a later un-traced serve() on the same wiring stays clean.
    router_.set_trace(nullptr);
    for (const std::int64_t id : registry_.ids()) {
      Server* server = registry_.find(id);
      if (server->reconfig_engine() != nullptr) {
        server->reconfig_engine()->set_trace(nullptr);
      }
      server->exec_backend().set_trace(nullptr, 0);
    }
  }
  if (slo_ != nullptr) {
    slo_->set_trace(nullptr);
  }
  if (telemetry_ != nullptr) {
    router_.set_telemetry(nullptr);
    for (const std::int64_t id : registry_.ids()) {
      Server* server = registry_.find(id);
      if (server->reconfig_engine() != nullptr) {
        server->reconfig_engine()->set_telemetry(nullptr);
      }
    }
  }
  if (metrics_ != nullptr) {
    node.publish(*metrics_);
    if (slo_ != nullptr) {
      slo_->publish(*metrics_);
    }
    if (trace_ != nullptr) {
      metrics_->gauge("trace.dropped_events")
          .set(static_cast<double>(trace_->dropped_events()));
    }
  }
  return node;
}

NodeStats ServeNode::serve_queue(RequestQueue& queue) {
  std::vector<Request> collected;
  Request r;
  while (queue.pop(r)) {
    collected.push_back(r);
  }
  std::sort(collected.begin(), collected.end(),
            [](const Request& a, const Request& b) {
              return a.arrival_ms != b.arrival_ms ? a.arrival_ms < b.arrival_ms
                                                  : a.id < b.id;
            });
  return serve(collected);
}

NodeStats serve_node_concurrent(ServeNode& node,
                                const std::vector<Request>& schedule,
                                std::int64_t producers) {
  return consume_schedule_concurrently(
      schedule, producers,
      [&node](RequestQueue& queue) { return node.serve_queue(queue); });
}

}  // namespace rt3
