// Model-level pruning orchestration: installs Level-1 backbone masks on a
// model's prunable layers and composes Level-2 pattern masks on top.
//
// This realizes the RT3 run-time contract: the backbone mask is fixed once
// (Level 1); switching a V/F level re-composes backbone AND pattern masks —
// weights themselves never move.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/linear.hpp"
#include "pruning/block_prune.hpp"
#include "pruning/pattern_prune.hpp"

namespace rt3 {

/// Manages pruning state for a set of prunable layers.
class ModelPruner {
 public:
  explicit ModelPruner(std::vector<Linear*> layers);

  /// Level 1: installs Algorithm-1 block masks on every layer and records
  /// them as the fixed backbone.
  void apply_bp(const BpConfig& config);

  /// Level-1 random baseline (rBP): same per-block prune counts, random
  /// column choices.
  void apply_random_bp(const BpConfig& config, Rng& rng);

  /// Marks the CURRENT masks (or dense, if none) as the backbone without
  /// further pruning — used by the "no BP" ablations.
  void freeze_backbone();

  /// Level 2: composes `backbone AND pattern` masks; the pattern for each
  /// tile is chosen on the backbone-masked weights.  Returns the resulting
  /// overall weight sparsity.
  double apply_pattern_set(const PatternSet& set);

  /// Drops the Level-2 masks, restoring backbone-only masks.
  void restore_backbone();

  /// True once apply_bp / apply_random_bp / freeze_backbone has run.
  bool has_backbone() const { return !backbone_masks_.empty(); }

  /// Overall fraction of masked (zero) weight entries across layers.
  double overall_sparsity() const;

  /// Total prunable parameter count.
  std::int64_t total_weights() const;

  /// Bytes of all prunable dense weights (for full-model switch costs).
  std::int64_t dense_weight_bytes() const { return total_weights() * 4; }

  const std::vector<Linear*>& layers() const { return layers_; }
  const std::vector<Tensor>& backbone_masks() const { return backbone_masks_; }

 private:
  std::vector<Linear*> layers_;
  std::vector<Tensor> backbone_masks_;
};

}  // namespace rt3
