// Tests for the synthetic corpus and GLUE-analog datasets.
#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "data/corpus.hpp"
#include "data/glue.hpp"

namespace rt3 {
namespace {

TEST(Corpus, GeneratesRequestedSize) {
  CorpusConfig cfg;
  cfg.num_tokens = 1000;
  cfg.vocab_size = 64;
  Corpus corpus(cfg);
  EXPECT_EQ(corpus.train().size() + corpus.valid().size(), 1000U);
  EXPECT_EQ(corpus.train().size(), 900U);
}

TEST(Corpus, TokensInRange) {
  CorpusConfig cfg;
  cfg.num_tokens = 2000;
  cfg.vocab_size = 32;
  Corpus corpus(cfg);
  for (auto t : corpus.train()) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 32);
  }
}

TEST(Corpus, DeterministicForSeed) {
  CorpusConfig cfg;
  cfg.num_tokens = 500;
  cfg.seed = 42;
  Corpus a(cfg);
  Corpus b(cfg);
  EXPECT_EQ(a.train(), b.train());
  EXPECT_EQ(a.successor_table(), b.successor_table());
}

TEST(Corpus, OracleAccuracyTracksRuleStrength) {
  CorpusConfig cfg;
  cfg.num_tokens = 30000;
  cfg.rule_strength = 0.9;
  Corpus corpus(cfg);
  // Oracle accuracy ~= rule strength (plus a tiny chance-level correction).
  EXPECT_NEAR(corpus.oracle_accuracy(), 0.9, 0.03);
}

TEST(Corpus, SuccessorTableIsPermutation) {
  CorpusConfig cfg;
  cfg.vocab_size = 50;
  cfg.num_tokens = 200;
  Corpus corpus(cfg);
  std::set<std::int64_t> targets(corpus.successor_table().begin(),
                                 corpus.successor_table().end());
  EXPECT_EQ(targets.size(), 50U);
}

// Property sweep: oracle ceiling follows rule strength across settings.
class CorpusRuleSweep : public ::testing::TestWithParam<double> {};

TEST_P(CorpusRuleSweep, OracleMatchesRuleStrength) {
  CorpusConfig cfg;
  cfg.num_tokens = 20000;
  cfg.rule_strength = GetParam();
  cfg.seed = 7;
  Corpus corpus(cfg);
  EXPECT_NEAR(corpus.oracle_accuracy(), GetParam(), 0.04);
}

INSTANTIATE_TEST_SUITE_P(Strengths, CorpusRuleSweep,
                         ::testing::Values(0.5, 0.7, 0.85, 0.95, 0.99));

TEST(LmBatcher, ShapesAndAlignment) {
  std::vector<std::int64_t> tokens;
  for (std::int64_t i = 0; i < 100; ++i) {
    tokens.push_back(i);
  }
  LmBatcher batcher(tokens, 2, 5);
  Rng rng(3);
  const LmBatch batch = batcher.next(rng);
  EXPECT_EQ(batch.inputs.size(), 10U);
  EXPECT_EQ(batch.targets.size(), 10U);
  // Target must be the successor of the input at every position.
  for (std::size_t i = 0; i < batch.inputs.size(); ++i) {
    EXPECT_EQ(batch.targets[i], batch.inputs[i] + 1);
  }
}

TEST(LmBatcher, DeterministicAt) {
  std::vector<std::int64_t> tokens(200);
  for (std::int64_t i = 0; i < 200; ++i) {
    tokens[static_cast<std::size_t>(i)] = i % 7;
  }
  LmBatcher batcher(tokens, 3, 8);
  const LmBatch a = batcher.at(5);
  const LmBatch b = batcher.at(5);
  EXPECT_EQ(a.inputs, b.inputs);
  EXPECT_EQ(a.targets, b.targets);
}

TEST(LmBatcher, RejectsShortStream) {
  std::vector<std::int64_t> tokens(5, 0);
  EXPECT_THROW(LmBatcher(tokens, 1, 10), CheckError);
}

TEST(Glue, AllTasksGenerate) {
  for (auto task :
       {GlueTask::kMnli, GlueTask::kQqp, GlueTask::kQnli, GlueTask::kSst2,
        GlueTask::kCola, GlueTask::kStsB, GlueTask::kMrpc, GlueTask::kRte,
        GlueTask::kWnli}) {
    GlueTaskConfig cfg;
    cfg.task = task;
    cfg.train_size = 50;
    cfg.dev_size = 20;
    GlueDataset data(cfg);
    EXPECT_EQ(data.train().size(), 50U) << GlueDataset::task_name(task);
    EXPECT_EQ(data.dev().size(), 20U);
    for (const auto& ex : data.train()) {
      EXPECT_EQ(ex.tokens.size(), static_cast<std::size_t>(cfg.seq_len));
      for (auto t : ex.tokens) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, cfg.vocab_size);
      }
      if (!data.is_regression()) {
        EXPECT_GE(ex.label, 0);
        EXPECT_LT(ex.label, data.num_classes());
      } else {
        EXPECT_GE(ex.score, 0.0F);
        EXPECT_LE(ex.score, 5.0F);
      }
    }
  }
}

TEST(Glue, MetricAssignmentsMatchGlueConventions) {
  const auto metric_of = [](GlueTask t) {
    GlueTaskConfig cfg;
    cfg.task = t;
    cfg.train_size = 4;
    cfg.dev_size = 4;
    return GlueDataset(cfg).metric();
  };
  EXPECT_EQ(metric_of(GlueTask::kSst2), MetricType::kAccuracy);
  EXPECT_EQ(metric_of(GlueTask::kQnli), MetricType::kAccuracy);
  EXPECT_EQ(metric_of(GlueTask::kRte), MetricType::kAccuracy);
  EXPECT_EQ(metric_of(GlueTask::kWnli), MetricType::kAccuracy);
  EXPECT_EQ(metric_of(GlueTask::kQqp), MetricType::kF1);
  EXPECT_EQ(metric_of(GlueTask::kMrpc), MetricType::kF1);
  EXPECT_EQ(metric_of(GlueTask::kCola), MetricType::kMcc);
  EXPECT_EQ(metric_of(GlueTask::kStsB), MetricType::kSpearman);
}

TEST(Glue, MnliHasThreeClasses) {
  GlueTaskConfig cfg;
  cfg.task = GlueTask::kMnli;
  cfg.train_size = 100;
  cfg.dev_size = 10;
  GlueDataset data(cfg);
  EXPECT_EQ(data.num_classes(), 3);
  std::set<std::int64_t> labels;
  for (const auto& ex : data.train()) {
    labels.insert(ex.label);
  }
  EXPECT_EQ(labels.size(), 3U);
}

TEST(Glue, SignalTokensPredictLabel) {
  // A trivial pool-counting classifier must beat chance by a wide margin on
  // an easy task — verifies the planted signal is actually present.
  GlueTaskConfig cfg;
  cfg.task = GlueTask::kSst2;
  cfg.train_size = 10;
  cfg.dev_size = 400;
  GlueDataset data(cfg);
  std::vector<std::int64_t> pred;
  for (const auto& ex : data.dev()) {
    std::int64_t votes0 = 0;
    std::int64_t votes1 = 0;
    for (auto t : ex.tokens) {
      if (t < 16) {
        ++votes0;
      } else if (t < 32) {
        ++votes1;
      }
    }
    pred.push_back(votes1 > votes0 ? 1 : 0);
  }
  EXPECT_GT(data.evaluate(pred), 0.8);
}

TEST(Glue, HardTasksAreNoisierThanEasyTasks) {
  const auto rte = glue_task_profile(GlueTask::kRte);
  const auto wnli = glue_task_profile(GlueTask::kWnli);
  const auto sst2 = glue_task_profile(GlueTask::kSst2);
  EXPECT_GT(rte.label_noise, sst2.label_noise);
  EXPECT_GT(wnli.label_noise, sst2.label_noise);
}

TEST(Glue, StsbOracleSpearmanHigh) {
  GlueTaskConfig cfg;
  cfg.task = GlueTask::kStsB;
  cfg.train_size = 10;
  cfg.dev_size = 300;
  GlueDataset data(cfg);
  // Oracle: count shared-topic tokens (ids < 16), exactly the generative
  // factor behind the similarity score.
  std::vector<double> pred;
  for (const auto& ex : data.dev()) {
    std::int64_t shared = 0;
    for (auto t : ex.tokens) {
      shared += (t < 16) ? 1 : 0;
    }
    pred.push_back(static_cast<double>(shared));
  }
  EXPECT_GT(data.evaluate_regression(pred), 0.75);
}

TEST(Glue, EvaluateRejectsWrongArity) {
  GlueTaskConfig cfg;
  cfg.task = GlueTask::kRte;
  cfg.train_size = 4;
  cfg.dev_size = 8;
  GlueDataset data(cfg);
  EXPECT_THROW(data.evaluate({1, 0}), CheckError);
  EXPECT_THROW(data.evaluate_regression({1.0}), CheckError);
}

TEST(Glue, TaskNames) {
  EXPECT_EQ(GlueDataset::task_name(GlueTask::kStsB), "STS-B");
  EXPECT_EQ(GlueDataset::task_name(GlueTask::kSst2), "SST-2");
  EXPECT_EQ(GlueDataset::metric_name(MetricType::kMcc), "MCC");
}

}  // namespace
}  // namespace rt3
