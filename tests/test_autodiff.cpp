// Autodiff tests: known-value gradients, finite-difference property checks
// across the op grid, optimizer behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/gradcheck.hpp"
#include "tensor/optim.hpp"
#include "tensor/var.hpp"

namespace rt3 {
namespace {

TEST(Var, LeafBasics) {
  Var v(Tensor::scalar(2.0F), true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.item(), 2.0F);
  EXPECT_THROW(v.grad(), CheckError);
}

TEST(Var, SimpleChainRule) {
  // y = (2x)^2 summed; dy/dx = 8x
  Var x(Tensor({3}, {1, 2, 3}), true);
  Var y = scale(x, 2.0F);
  Var z = mul(y, y);
  Var loss = sum_all(z);
  loss.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 8.0F);
  EXPECT_FLOAT_EQ(x.grad()[1], 16.0F);
  EXPECT_FLOAT_EQ(x.grad()[2], 24.0F);
}

TEST(Var, GradAccumulatesAcrossBackward) {
  Var x(Tensor::scalar(3.0F), true);
  Var l1 = mul(x, x);
  l1.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0F);
  Var l2 = mul(x, x);
  l2.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0F);  // accumulated
  x.zero_grad();
  Var l3 = mul(x, x);
  l3.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 6.0F);
}

TEST(Var, DiamondGraphAccumulates) {
  // z = x*x + x*x -> dz/dx = 4x
  Var x(Tensor::scalar(5.0F), true);
  Var a = mul(x, x);
  Var b = mul(x, x);
  Var z = add(a, b);
  z.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 20.0F);
}

TEST(Var, BackwardRequiresScalar) {
  Var x(Tensor({2}, {1, 2}), true);
  Var y = scale(x, 2.0F);
  EXPECT_THROW(y.backward(), CheckError);
}

TEST(Var, BiasBroadcastForward) {
  Var x(Tensor({2, 3}, {0, 0, 0, 0, 0, 0}), true);
  Var b(Tensor({3}, {1, 2, 3}), true);
  Var y = add(x, b);
  EXPECT_FLOAT_EQ(y.value().at({1, 2}), 3.0F);
  Var loss = sum_all(y);
  loss.backward();
  // Each bias entry feeds 2 rows.
  EXPECT_FLOAT_EQ(b.grad()[0], 2.0F);
}

TEST(Var, ScalarBroadcast) {
  Var x(Tensor({4}, {1, 2, 3, 4}), true);
  Var s(Tensor::scalar(10.0F), true);
  Var y = mul(x, s);
  sum_all(y).backward();
  EXPECT_FLOAT_EQ(s.grad()[0], 10.0F);  // sum of x
  EXPECT_FLOAT_EQ(x.grad()[2], 10.0F);
}

TEST(Var, MatmulKnownGrad) {
  Var a(Tensor({1, 2}, {1, 2}), true);
  Var b(Tensor({2, 1}, {3, 4}), true);
  Var y = matmul(a, b);  // scalar 11
  sum_all(y).backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 3.0F);
  EXPECT_FLOAT_EQ(a.grad()[1], 4.0F);
  EXPECT_FLOAT_EQ(b.grad()[0], 1.0F);
  EXPECT_FLOAT_EQ(b.grad()[1], 2.0F);
}

TEST(Var, MulConstMaskStopsGradient) {
  Var x(Tensor({4}, {1, 2, 3, 4}), true);
  Tensor mask({4}, {1, 0, 1, 0});
  Var y = mul_const(x, mask);
  sum_all(y).backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0F);
  EXPECT_FLOAT_EQ(x.grad()[1], 0.0F);  // masked entries get no gradient
  EXPECT_FLOAT_EQ(y.value()[1], 0.0F);
}

TEST(Var, CrossEntropyIgnoresPadding) {
  Var logits(Tensor({3, 2}, {10, -10, 10, -10, -10, 10}), true);
  const std::vector<std::int64_t> targets = {0, -1, 1};
  Var loss = cross_entropy(logits, targets);
  // Both counted rows are confidently correct -> near-zero loss.
  EXPECT_LT(loss.item(), 1e-3F);
  loss.backward();
  // Padding row receives zero gradient.
  EXPECT_FLOAT_EQ(logits.grad()[2], 0.0F);
  EXPECT_FLOAT_EQ(logits.grad()[3], 0.0F);
}

TEST(Var, SoftmaxRowsSumToOne) {
  Rng rng(3);
  Var x(Tensor::randn({5, 7}, rng), false);
  Var s = softmax_lastdim(x);
  for (int r = 0; r < 5; ++r) {
    float total = 0.0F;
    for (int c = 0; c < 7; ++c) {
      total += s.value()[r * 7 + c];
    }
    EXPECT_NEAR(total, 1.0F, 1e-5F);
  }
}

TEST(Var, EmbeddingGatherAndScatter) {
  Var w(Tensor({3, 2}, {0, 1, 10, 11, 20, 21}), true);
  Var e = embedding(w, {2, 0, 2});
  EXPECT_FLOAT_EQ(e.value()[0], 20.0F);
  EXPECT_FLOAT_EQ(e.value()[3], 1.0F);
  sum_all(e).backward();
  EXPECT_FLOAT_EQ(w.grad()[4], 2.0F);  // row 2 used twice
  EXPECT_FLOAT_EQ(w.grad()[2], 0.0F);  // row 1 unused
}

TEST(Var, DropoutTrainVsEval) {
  Rng rng(7);
  Var x(Tensor::ones({1000}), true);
  Var eval_out = dropout(x, 0.5F, rng, /*training=*/false);
  EXPECT_TRUE(eval_out.value().allclose(Tensor::ones({1000})));
  Var train_out = dropout(x, 0.5F, rng, /*training=*/true);
  const double zeros = train_out.value().sparsity();
  EXPECT_NEAR(zeros, 0.5, 0.08);
  // Inverted dropout preserves expectation.
  EXPECT_NEAR(train_out.value().mean(), 1.0F, 0.15F);
}

TEST(Var, PermuteRoundTrip) {
  Rng rng(11);
  Var x(Tensor::randn({2, 3, 4}, rng), true);
  Var p = permute(x, {2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  Var back = permute(p, {1, 2, 0});
  EXPECT_TRUE(back.value().allclose(x.value()));
  sum_all(p).backward();
  EXPECT_TRUE(x.grad().allclose(Tensor::ones({2, 3, 4})));
}

TEST(Var, ConcatRowsForwardBackward) {
  Var a(Tensor({1, 2}, {1, 2}), true);
  Var b(Tensor({2, 2}, {3, 4, 5, 6}), true);
  Var c = concat_rows({a, b});
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(c.value()[4], 5.0F);
  sum_all(c).backward();
  EXPECT_TRUE(a.grad().allclose(Tensor::ones({1, 2})));
  EXPECT_TRUE(b.grad().allclose(Tensor::ones({2, 2})));
}

// ---------------------------------------------------------------------------
// Finite-difference property checks across the op grid.
// ---------------------------------------------------------------------------

struct OpCase {
  std::string name;
  // Builds a scalar loss from a [3,4] parameter.
  std::function<Var(const Var&)> build;
};

class GradCheckOps : public ::testing::TestWithParam<OpCase> {};

TEST_P(GradCheckOps, MatchesFiniteDifference) {
  Rng rng(77);
  Var w(Tensor::rand_uniform({3, 4}, rng, 0.2F, 1.2F), true);
  const auto& build = GetParam().build;
  const auto result = grad_check({w}, [&] { return build(w); });
  EXPECT_TRUE(result.ok(2e-2)) << GetParam().name
                               << " abs=" << result.max_abs_err
                               << " rel=" << result.max_rel_err;
}

INSTANTIATE_TEST_SUITE_P(
    OpGrid, GradCheckOps,
    ::testing::Values(
        OpCase{"relu", [](const Var& w) { return sum_all(relu(w)); }},
        OpCase{"gelu", [](const Var& w) { return sum_all(gelu(w)); }},
        OpCase{"tanh", [](const Var& w) { return sum_all(tanh_v(w)); }},
        OpCase{"sigmoid", [](const Var& w) { return sum_all(sigmoid(w)); }},
        OpCase{"exp", [](const Var& w) { return sum_all(exp_v(w)); }},
        OpCase{"log", [](const Var& w) { return sum_all(log_v(w)); }},
        OpCase{"mean", [](const Var& w) { return mean_all(w); }},
        OpCase{"softmax",
               [](const Var& w) {
                 // weighted sum keeps softmax grad nontrivial
                 Tensor coef({3, 4});
                 for (std::int64_t i = 0; i < coef.numel(); ++i) {
                   coef[i] = static_cast<float>(i % 5) - 2.0F;
                 }
                 return sum_all(mul_const(softmax_lastdim(w), coef));
               }},
        OpCase{"log_softmax",
               [](const Var& w) {
                 Tensor coef({3, 4});
                 for (std::int64_t i = 0; i < coef.numel(); ++i) {
                   coef[i] = static_cast<float>((i * 7) % 3) - 1.0F;
                 }
                 return sum_all(mul_const(log_softmax_lastdim(w), coef));
               }},
        OpCase{"square_via_mul",
               [](const Var& w) { return sum_all(mul(w, w)); }},
        OpCase{"scale_add",
               [](const Var& w) {
                 return sum_all(add_scalar(scale(w, -1.7F), 0.3F));
               }},
        OpCase{"transpose",
               [](const Var& w) {
                 return sum_all(mul(transpose_last2(w), transpose_last2(w)));
               }},
        OpCase{"reshape",
               [](const Var& w) {
                 Var r = reshape(w, {4, 3});
                 return sum_all(mul(r, r));
               }},
        OpCase{"cross_entropy",
               [](const Var& w) {
                 return cross_entropy(w, {0, 3, 1});
               }},
        OpCase{"mse",
               [](const Var& w) {
                 return mse_loss(w, Tensor::full({3, 4}, 0.5F));
               }}),
    [](const ::testing::TestParamInfo<OpCase>& info) {
      return info.param.name;
    });

TEST(GradCheck, MatmulChain) {
  Rng rng(88);
  Var a(Tensor::randn({3, 5}, rng, 0.5F), true);
  Var b(Tensor::randn({5, 2}, rng, 0.5F), true);
  const auto result =
      grad_check({a, b}, [&] { return sum_all(mul(matmul(a, b), matmul(a, b))); });
  EXPECT_TRUE(result.ok(2e-2)) << "abs=" << result.max_abs_err;
}

TEST(GradCheck, BmmChain) {
  Rng rng(89);
  Var a(Tensor::randn({2, 3, 4}, rng, 0.5F), true);
  Var b(Tensor::randn({2, 4, 3}, rng, 0.5F), true);
  const auto result = grad_check({a, b}, [&] { return mean_all(bmm(a, b)); });
  EXPECT_TRUE(result.ok(2e-2));
}

TEST(GradCheck, LayerNorm) {
  Rng rng(90);
  Var x(Tensor::randn({4, 6}, rng), true);
  Var gamma(Tensor::ones({6}), true);
  Var beta(Tensor::zeros({6}), true);
  Tensor coef({4, 6});
  for (std::int64_t i = 0; i < coef.numel(); ++i) {
    coef[i] = static_cast<float>((i % 7)) * 0.3F - 1.0F;
  }
  const auto result = grad_check({x, gamma, beta}, [&] {
    return sum_all(mul_const(layer_norm(x, gamma, beta), coef));
  });
  EXPECT_TRUE(result.ok(3e-2)) << "abs=" << result.max_abs_err
                               << " rel=" << result.max_rel_err;
}

TEST(GradCheck, EmbeddingLookup) {
  Rng rng(91);
  Var w(Tensor::randn({5, 3}, rng), true);
  const auto result = grad_check({w}, [&] {
    Var e = embedding(w, {4, 1, 1, 0});
    return sum_all(mul(e, e));
  });
  EXPECT_TRUE(result.ok(2e-2));
}

// ---------------------------------------------------------------------------
// Optimizers
// ---------------------------------------------------------------------------

TEST(Optim, SgdConvergesOnQuadratic) {
  Var x(Tensor({2}, {5.0F, -3.0F}), true);
  Sgd opt({x}, 0.1F);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    Var loss = sum_all(mul(x, x));
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(x.value()[0], 0.0F, 1e-3F);
  EXPECT_NEAR(x.value()[1], 0.0F, 1e-3F);
}

TEST(Optim, MomentumAcceleratesDescent) {
  Var a(Tensor({1}, {10.0F}), true);
  Var b(Tensor({1}, {10.0F}), true);
  Sgd plain({a}, 0.01F);
  Sgd heavy({b}, 0.01F, 0.9F);
  for (int i = 0; i < 50; ++i) {
    plain.zero_grad();
    sum_all(mul(a, a)).backward();
    plain.step();
    heavy.zero_grad();
    sum_all(mul(b, b)).backward();
    heavy.step();
  }
  EXPECT_LT(std::abs(b.value()[0]), std::abs(a.value()[0]));
}

TEST(Optim, AdamConvergesOnIllConditionedQuadratic) {
  // f = x0^2 + 100 x1^2
  Var x(Tensor({2}, {3.0F, 3.0F}), true);
  Adam opt({x}, 0.05F);
  for (int i = 0; i < 500; ++i) {
    opt.zero_grad();
    Var x0 = mul_const(x, Tensor({2}, {1, 0}));
    Var x1 = mul_const(x, Tensor({2}, {0, 10}));
    Var loss = add(sum_all(mul(x0, x0)), sum_all(mul(x1, x1)));
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(x.value()[0], 0.0F, 5e-2F);
  EXPECT_NEAR(x.value()[1], 0.0F, 5e-2F);
}

TEST(Optim, WeightDecayShrinksUnusedDirection) {
  Var x(Tensor({1}, {1.0F}), true);
  Sgd opt({x}, 0.1F, 0.0F, 0.5F);
  for (int i = 0; i < 20; ++i) {
    opt.zero_grad();
    // Loss independent of x value: zero gradient, decay only.
    Var loss = sum_all(mul_const(x, Tensor({1}, {0.0F})));
    loss.backward();
    opt.step();
  }
  EXPECT_LT(x.value()[0], 0.5F);
}

TEST(Optim, ClipGradNorm) {
  Var x(Tensor({2}, {0.0F, 0.0F}), true);
  std::vector<Var> params = {x};
  x.accumulate_grad(Tensor({2}, {3.0F, 4.0F}));  // norm 5
  const float before = clip_grad_norm(params, 1.0F);
  EXPECT_FLOAT_EQ(before, 5.0F);
  EXPECT_NEAR(x.grad()[0], 0.6F, 1e-5F);
  EXPECT_NEAR(x.grad()[1], 0.8F, 1e-5F);
}

TEST(Optim, SkipsParamsWithoutGrad) {
  Var used(Tensor({1}, {1.0F}), true);
  Var unused(Tensor({1}, {9.0F}), true);
  Adam opt({used, unused}, 0.1F);
  opt.zero_grad();
  sum_all(mul(used, used)).backward();
  opt.step();
  EXPECT_FLOAT_EQ(unused.value()[0], 9.0F);
  EXPECT_LT(used.value()[0], 1.0F);
}

}  // namespace
}  // namespace rt3
