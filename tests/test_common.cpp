// Unit tests for rt3::common — RNG determinism, stats/metrics, table
// rendering, checked narrowing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/args.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace rt3 {
namespace {

TEST(Check, ThrowsOnFalse) {
  EXPECT_THROW(check(false, "boom"), CheckError);
  EXPECT_NO_THROW(check(true, "fine"));
}

TEST(Args, SplitsFlagEqualsValueAndKeepsPositionals) {
  const char* argv[] = {"tool", "out.json", "--repeats=3", "--seed", "9",
                        "--shed"};
  const std::vector<std::string> args =
      split_flag_args(6, const_cast<char**>(argv));
  ASSERT_EQ(args.size(), 6U);  // "--repeats=3" split into two tokens
  EXPECT_EQ(args[1], "--repeats");
  EXPECT_EQ(args[2], "3");
  EXPECT_EQ(arg_int(args, "--repeats", 1), 3);
  EXPECT_EQ(arg_int(args, "--seed", 7), 9);
  EXPECT_EQ(arg_int(args, "--missing", 42), 42);
  EXPECT_TRUE(arg_present(args, "--shed"));
  EXPECT_FALSE(arg_present(args, "--admit"));
  const std::vector<std::string> positionals = positional_args(args);
  ASSERT_EQ(positionals.size(), 1U);
  EXPECT_EQ(positionals[0], "out.json");
}

TEST(Args, RejectsTrailingGarbageAndNonNumbers) {
  const std::vector<std::string> args = {"--repeats", "3x", "--rate", "abc"};
  EXPECT_THROW(arg_int(args, "--repeats", 1), CheckError);
  EXPECT_THROW(arg_double(args, "--rate", 1.0), CheckError);
  EXPECT_EQ(arg_string(args, "--repeats", ""), "3x");  // strings pass through
}

TEST(Check, NarrowRoundTrip) {
  EXPECT_EQ(narrow<std::int32_t>(std::int64_t{42}), 42);
  EXPECT_THROW(narrow<std::int8_t>(std::int64_t{1000}), CheckError);
  EXPECT_THROW(narrow<std::uint32_t>(std::int64_t{-1}), CheckError);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  std::vector<double> xs(50000);
  for (auto& x : xs) {
    x = rng.normal();
  }
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(variance(xs), 1.0, 0.05);
}

TEST(Rng, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ZipfIsSkewedTowardSmallRanks) {
  Rng rng(19);
  std::int64_t low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    low += (rng.zipf(100, 1.2) < 10) ? 1 : 0;
  }
  // With s=1.2 the first 10 of 100 ranks carry well over a third of mass.
  EXPECT_GT(static_cast<double>(low) / n, 0.4);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 12000; ++i) {
    ++counts[static_cast<std::size_t>(rng.categorical(w))];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(Rng, CategoricalRejectsBadInput) {
  Rng rng(29);
  EXPECT_THROW(rng.categorical({}), CheckError);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), CheckError);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), CheckError);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  const auto s = rng.sample_without_replacement(50, 20);
  std::set<std::int64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20U);
  for (auto v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  // Forking from identical parents gives identical children...
  Rng p1(41);
  Rng p2(41);
  Rng c1 = p1.fork();
  Rng c2 = p2.fork();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(c1.next_u64(), c2.next_u64());
  }
  // ...and the child does not replay the parent's stream.
  Rng parent(43);
  Rng child = parent.fork();
  int same = 0;
  Rng replay(43);
  replay.fork();  // advance identically to parent
  for (int i = 0; i < 64; ++i) {
    same += (child.next_u64() == replay.next_u64()) ? 0 : 0;
  }
  // The child stream must differ from a fresh seed-43 stream.
  Rng fresh(43);
  Rng child2 = Rng(43).fork();
  int equal_to_fresh = 0;
  for (int i = 0; i < 64; ++i) {
    equal_to_fresh += (child2.next_u64() == fresh.next_u64()) ? 1 : 0;
  }
  EXPECT_LT(equal_to_fresh, 4);
}

TEST(Stats, MeanVariance) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(variance({1.0, 2.0, 3.0}), 2.0 / 3.0, 1e-12);
}

TEST(Stats, PearsonPerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerate) {
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 3, 4}), 0.0);
}

TEST(Stats, SpearmanMonotone) {
  // Any monotone transform gives rho == 1.
  EXPECT_NEAR(spearman({1, 2, 3, 4}, {10, 100, 1000, 10000}), 1.0, 1e-12);
}

TEST(Stats, SpearmanTies) {
  const auto r = average_ranks({3.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[0], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
}

TEST(Stats, Accuracy) {
  EXPECT_DOUBLE_EQ(accuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3.0);
}

TEST(Stats, F1KnownValue) {
  // tp=1, fp=1, fn=1 -> precision=0.5, recall=0.5, f1=0.5.
  EXPECT_DOUBLE_EQ(f1_score({1, 1, 0}, {1, 0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(f1_score({0, 0}, {1, 1}), 0.0);
}

TEST(Stats, MatthewsPerfectAndInverted) {
  EXPECT_DOUBLE_EQ(matthews_corr({1, 0, 1, 0}, {1, 0, 1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(matthews_corr({0, 1, 0, 1}, {1, 0, 1, 0}), -1.0);
}

TEST(Table, AlignsAndCounts) {
  TablePrinter t({"A", "LongHeader"});
  t.add_row({"x", "1"});
  t.add_separator();
  t.add_row({"yy", "22"});
  EXPECT_EQ(t.row_count(), 2);
  const std::string s = t.str();
  EXPECT_NE(s.find("LongHeader"), std::string::npos);
  EXPECT_NE(s.find("yy"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  TablePrinter t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_f(93.547, 2), "93.55");
  EXPECT_EQ(fmt_pct(0.708, 2), "70.80%");
  EXPECT_EQ(fmt_x(4.96), "4.96x");
  EXPECT_EQ(fmt_millions(2.71e6), "2.71");
}

}  // namespace
}  // namespace rt3
