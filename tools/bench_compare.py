#!/usr/bin/env python3
"""CI perf-regression gate over bench_serve_traffic output.

Compares a candidate BENCH_serve.json against the committed baseline and
fails (exit 1) when any cell present in both files regresses beyond the
tolerance on deadline-miss rate or p99 latency.  Three grids are gated,
each cell against ITS OWN baseline cell (so the gate never punishes one
column for another's latency profile — EDF trades background p99 for
interactive misses by design):

    scenarios          -> {scenario  x policy}  single-model Server cells
    node_scenarios     -> {scenario  x models}  multi-model ServeNode cells
    overload           -> {burst     x admission}  edf-shed vs edf-admit
    governor_scenarios -> {discharge x governor}  ladder/adaptive/rl cells

The governor grid also carries a WITHIN-candidate cross-column check: on
every discharge row the learned rl governor must not regress the
deadline-miss rate against the static ladder on the same traffic (the
whole point of training it), to the same miss tolerance.

With --exec the inputs are BENCH_exec files instead and the gate is the
kernel_speedup grid: for every family in the baseline, the candidate's
SIMD-vs-forced-scalar speedup ratio must be >= the baseline's
min_speedup floor.  Only the dimensionless ratio is gated — absolute
milliseconds differ across machines and are informational.  A candidate
that detected no SIMD ISA (isa == "scalar") passes with a warning, since
a 1.0x ratio there measures the host, not a regression.

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json
        [--miss-tolerance 0.02] [--p99-tolerance 0.10]
    bench_compare.py --exec BASELINE_exec.json CANDIDATE_exec.json

--miss-tolerance is absolute (rate points): candidate miss_rate may
exceed baseline by at most this much.  --p99-tolerance is relative:
candidate p99_ms may exceed baseline * (1 + tolerance).  Both default to
a small headroom over bit-deterministic equality so the gate survives a
deliberate seed or toolchain change without being noisy.

Exit codes: 0 ok, 1 perf regression, 2 usage/format error.
"""

import argparse
import json
import sys


# Gated grids: top-level key -> {row -> {column -> cell}}.  "scenarios"
# is mandatory (the PR-3 contract); the others are gated when present in
# the baseline, so an old baseline still compares cleanly.
SECTIONS = ("scenarios", "node_scenarios", "overload", "governor_scenarios")


def load_cells(path):
    """Returns {(section, row, column): {"miss_rate": x, "p99_ms": y}}.

    Format problems are collected across the WHOLE file and reported in
    one pass — one message per bad section/row/cell — so a mangled file
    surfaces every defect in a single CI run instead of one per rerun.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    errors = []
    if not isinstance(doc.get("scenarios"), dict) or not doc["scenarios"]:
        errors.append(f"{path} has no 'scenarios' object")
    cells = {}
    for section in SECTIONS:
        rows = doc.get(section)
        if rows is None:
            continue  # optional section absent
        if not isinstance(rows, dict):
            if section != "scenarios":  # scenarios already reported above
                errors.append(
                    f"section '{section}' in {path} is not an object")
            continue
        for row, columns in rows.items():
            if not isinstance(columns, dict):
                errors.append(
                    f"row '{section}/{row}' in {path} is not an object")
                continue
            for column, cell in columns.items():
                try:
                    cells[(section, row, column)] = {
                        "miss_rate": float(cell["miss_rate"]),
                        "p99_ms": float(cell["p99_ms"]),
                    }
                except (KeyError, TypeError, ValueError) as e:
                    errors.append(
                        f"bad cell {section}/{row}/{column} in {path}: "
                        f"{e!r}")
    if errors:
        for e in errors:
            print(f"bench_compare: {e}", file=sys.stderr)
        print(f"bench_compare: {len(errors)} format problem(s) in {path}",
              file=sys.stderr)
        sys.exit(2)
    return cells


def load_exec_families(path, want_floor):
    """Returns (isa, {family: cell}) from a BENCH_exec kernel_speedup grid.

    Baselines (want_floor=True) must carry min_speedup per family;
    candidates must carry the measured speedup.  As with serve cells,
    every format problem in the file is reported in one pass.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    errors = []
    grid = doc.get("kernel_speedup")
    if not isinstance(grid, dict):
        print(f"bench_compare: {path} has no 'kernel_speedup' object",
              file=sys.stderr)
        sys.exit(2)
    families = grid.get("families")
    if not isinstance(families, dict) or not families:
        print(f"bench_compare: {path} has no kernel_speedup families",
              file=sys.stderr)
        sys.exit(2)
    key = "min_speedup" if want_floor else "speedup"
    cells = {}
    for family, cell in families.items():
        try:
            cells[family] = float(cell[key])
        except (KeyError, TypeError, ValueError) as e:
            errors.append(f"bad family '{family}' in {path} "
                          f"(need numeric '{key}'): {e!r}")
    if errors:
        for e in errors:
            print(f"bench_compare: {e}", file=sys.stderr)
        sys.exit(2)
    return str(grid.get("isa", "?")), cells


def compare_exec(baseline_path, candidate_path):
    """Gates candidate kernel-family speedups against baseline floors."""
    _, floors = load_exec_families(baseline_path, want_floor=True)
    isa, speedups = load_exec_families(candidate_path, want_floor=False)

    missing = sorted(set(floors) - set(speedups))
    for family in missing:
        print(f"  [missing] {family:10s} in baseline but not candidate",
              file=sys.stderr)
    for family in sorted(set(speedups) - set(floors)):
        print(f"  [extra]   {family:10s} in candidate but not baseline "
              f"(not gated)")
    if missing:
        print(f"\nbench_compare: candidate is missing {len(missing)} "
              f"baseline kernel famil(ies)", file=sys.stderr)
        sys.exit(2)

    if isa == "scalar":
        print("bench_compare: candidate detected no SIMD ISA "
              "(isa == 'scalar'); speedup floors not applicable — skipped")
        return

    failures = 0
    for family in sorted(floors):
        floor, got = floors[family], speedups[family]
        status = "ok" if got >= floor else "FAIL"
        print(f"  [{status}] {family:10s} speedup {got:6.2f}x "
              f"(floor {floor:.2f}x, isa {isa})")
        failures += status == "FAIL"
    if failures:
        print(f"\nbench_compare: {failures} kernel famil(ies) below the "
              f"speedup floor", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_compare: all {len(floors)} kernel families at or "
          f"above their speedup floors")


def check_rl_vs_ladder(cells, miss_tolerance):
    """Within-candidate governor check: rl never regresses the miss rate
    against ladder on the same discharge row.  Returns failure count."""
    rows = sorted({row for (section, row, _c) in cells
                   if section == "governor_scenarios"})
    failures = 0
    for row in rows:
        ladder = cells.get(("governor_scenarios", row, "ladder"))
        rl = cells.get(("governor_scenarios", row, "rl"))
        if ladder is None or rl is None:
            continue  # the missing-cell pass already reports gate holes
        limit = ladder["miss_rate"] + miss_tolerance
        ok = rl["miss_rate"] <= limit
        status = "ok" if ok else "FAIL"
        print(f"  [{status}] governor rl-vs-ladder {row:8s} "
              f"rl miss {rl['miss_rate']:.4f} vs ladder "
              f"{ladder['miss_rate']:.4f} (limit {limit:.4f})")
        failures += not ok
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--miss-tolerance", type=float, default=0.02,
                        help="absolute miss-rate headroom (default 0.02)")
    parser.add_argument("--p99-tolerance", type=float, default=0.10,
                        help="relative p99 headroom (default 0.10)")
    parser.add_argument("--exec", dest="exec_mode", action="store_true",
                        help="gate BENCH_exec kernel_speedup floors "
                             "instead of serve cells")
    args = parser.parse_args()

    if args.exec_mode:
        compare_exec(args.baseline, args.candidate)
        return

    base = load_cells(args.baseline)
    cand = load_cells(args.candidate)

    shared = sorted(set(base) & set(cand))
    if not shared:
        print("bench_compare: no (scenario, policy) cells in common",
              file=sys.stderr)
        sys.exit(2)
    # Report EVERY missing and extra cell in one pass (one line each) so a
    # renamed grid surfaces completely in a single CI run.  Missing cells
    # are a gate hole — fatal.  Extra candidate-only cells are expected
    # when a PR adds a grid before regenerating the baseline, so they only
    # warn.
    missing = sorted(set(base) - set(cand))
    for section, row, column in missing:
        print(f"  [missing] {section:14s} {row:8s} {column:9s} "
              f"in baseline but not candidate", file=sys.stderr)
    extra = sorted(set(cand) - set(base))
    for section, row, column in extra:
        print(f"  [extra]   {section:14s} {row:8s} {column:9s} "
              f"in candidate but not baseline (not gated)")
    if missing:
        print(f"\nbench_compare: candidate is missing {len(missing)} "
              f"baseline cell(s)", file=sys.stderr)
        sys.exit(2)

    failures = []
    for key in shared:
        section, row, column = key
        b, c = base[key], cand[key]
        miss_limit = b["miss_rate"] + args.miss_tolerance
        p99_limit = b["p99_ms"] * (1.0 + args.p99_tolerance)
        verdicts = []
        if c["miss_rate"] > miss_limit:
            verdicts.append(
                f"miss_rate {c['miss_rate']:.4f} > limit {miss_limit:.4f} "
                f"(baseline {b['miss_rate']:.4f})")
        if c["p99_ms"] > p99_limit:
            verdicts.append(
                f"p99 {c['p99_ms']:.1f} ms > limit {p99_limit:.1f} ms "
                f"(baseline {b['p99_ms']:.1f} ms)")
        status = "FAIL" if verdicts else "ok"
        detail = "; ".join(verdicts) if verdicts else (
            f"miss {c['miss_rate']:.4f} (≤ {miss_limit:.4f}), "
            f"p99 {c['p99_ms']:.1f} ms (≤ {p99_limit:.1f} ms)")
        print(f"  [{status}] {section:14s} {row:8s} {column:9s} {detail}")
        if verdicts:
            failures.append((key, verdicts))

    rl_failures = check_rl_vs_ladder(cand, args.miss_tolerance)
    if failures or rl_failures:
        if failures:
            print(f"\nbench_compare: {len(failures)} cell(s) regressed "
                  f"beyond tolerance", file=sys.stderr)
        if rl_failures:
            print(f"\nbench_compare: rl governor regressed the miss rate "
                  f"vs ladder on {rl_failures} discharge row(s)",
                  file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_compare: all {len(shared)} cells within tolerance")


if __name__ == "__main__":
    main()
