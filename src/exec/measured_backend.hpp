// Measured execution backend: batches actually run through the pruned
// linear layers as multi-threaded cache-tiled kernels, and the measured
// host wall time — scaled to device time — drives the Server's virtual
// clock in place of the analytic LatencyModel (ROADMAP "Real execution
// backend").
//
// All per-level execution plans are pre-built in a PlanCache at
// construction; activate_level() at a drain-then-switch point only swaps
// plan pointers, mirroring the paper's ms-scale pattern-set switch.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/backend.hpp"
#include "exec/kernels.hpp"
#include "exec/plan.hpp"
#include "nn/linear.hpp"
#include "serve/thread_pool.hpp"
#include "sparse/pattern.hpp"

namespace rt3 {

struct MeasuredBackendConfig {
  /// Which kernel family executes the layers.
  ExecMode mode = ExecMode::kPattern;
  /// Kernel worker threads (the backend owns its pool).  Must be >= 1;
  /// non-positive values are rejected at construction rather than
  /// silently clamped.
  std::int64_t threads = 2;
  /// Pin worker i to core i % hardware_concurrency (Linux best-effort)
  /// so latency samples stop paying migration jitter.
  bool pin_threads = true;
  /// Backend-wide kernel launch defaults; a plan's autotuned options
  /// (PlanCache::apply_tuning) take precedence per (layer, level).
  KernelOptions kernel;
  /// Activation columns contributed by one request in a batch.
  std::int64_t cols_per_request = 4;
  /// Largest batch the pre-generated activation buffers support.
  std::int64_t max_batch = 64;
  /// Row-block count for kBlock plans (non-divisible layers fall back
  /// to one block).
  std::int64_t bp_blocks = 4;
  /// Host-wall-ms -> virtual-device-ms factor (see auto_scale()).
  double latency_scale = 1.0;
  /// Scheduling-noise guard: once auto_scale() has established a
  /// per-item baseline, a single batch's wall time is clamped to
  /// `outlier_clamp` x baseline x batch_size BEFORE it becomes virtual
  /// device time (a descheduled kernel thread is host noise, not device
  /// work).  kernel_wall_ms stays raw.  <= 0 disables the clamp.
  double outlier_clamp = 8.0;
  /// Additionally scale virtual latency by fastest_freq / level_freq so
  /// slower governor levels take proportionally longer, emulating DVFS
  /// that the host cannot perform.
  bool scale_with_freq = true;
  /// Seed for the deterministic activation buffers.
  std::uint64_t input_seed = 17;
};

class MeasuredBackend : public ExecutionBackend {
 public:
  /// `backbone_masks` as in PlanCache (empty = dense backbone).  `sets`
  /// holds one PatternSet per governor level for kPattern mode; for other
  /// modes it may be empty.  `level_freqs_mhz` are the ladder frequencies,
  /// fast -> slow, and determine the level count.
  MeasuredBackend(MeasuredBackendConfig config, std::vector<Linear*> layers,
                  const std::vector<Tensor>& backbone_masks,
                  const std::vector<PatternSet>& sets,
                  std::vector<double> level_freqs_mhz);

  const char* name() const override { return "measured"; }

  BatchExecution run_batch(std::int64_t batch_size,
                           std::int64_t level_pos) override;
  double activate_level(std::int64_t level_pos) override;
  /// Emits a kernel span per executed batch (virtual ts/dur; the raw host
  /// wall time rides along as an arg only when the recorder records wall).
  void set_trace(TraceRecorder* trace, std::int64_t lane) override {
    trace_ = trace;
    trace_lane_ = lane;
  }

  /// Runs one layer's ACTIVE plan on an explicit activation — the test
  /// hook for kernel-vs-reference bitwise checks.  Honors the plan's
  /// autotuned options when present.
  Tensor run_layer(std::int64_t layer, const Tensor& x);

  /// Wall ms of one (layer, level) plan at batch size `batch` under
  /// EXPLICIT kernel options (any baked tuning is ignored) — the
  /// autotuner's measurement hook.  Does not disturb the active level or
  /// the virtual clock.
  double time_layer_ms(std::int64_t layer, std::int64_t level,
                       std::int64_t batch, const KernelOptions& options);

  /// Installs a tuning record into the plan cache; returns entries applied.
  std::int64_t apply_tuning(const TuningRecord& record) {
    return plans_.apply_tuning(record);
  }

  /// Measures a batch of 1 at level 0 (median of a few repeats) and sets
  /// latency_scale so it maps to `target_ms` of virtual device time.
  void auto_scale(double target_ms);

  const PlanCache& plans() const { return plans_; }
  const MeasuredBackendConfig& config() const { return config_; }
  std::int64_t num_levels() const { return plans_.num_levels(); }
  /// Host wall ms spent inside kernels since construction.
  double total_kernel_wall_ms() const { return total_kernel_wall_ms_; }

 private:
  /// First `n` activation columns of layer `li`'s master input buffer.
  Tensor batch_input(std::int64_t li, std::int64_t n) const;
  /// Runs every layer once at activation width `n`; returns kernel wall ms.
  double run_layers_wall_ms(std::int64_t n);

  MeasuredBackendConfig config_;
  std::vector<Linear*> layers_;
  std::vector<double> freqs_;
  PlanCache plans_;
  ThreadPool pool_;
  std::vector<Tensor> inputs_;  // per layer, [cols x max_batch*cols_per_request]
  TraceRecorder* trace_ = nullptr;
  std::int64_t trace_lane_ = 0;
  double total_kernel_wall_ms_ = 0.0;
  /// Level-0 batch-of-1 wall-time baseline from auto_scale (0 = unset).
  double baseline_item_wall_ms_ = 0.0;
  float sink_ = 0.0F;  // keeps kernel outputs observable
};

}  // namespace rt3
