// Unit tests for rt3::Tensor — construction, access, arithmetic, matmul,
// reductions, sparsity accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace rt3 {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  EXPECT_EQ(t.size(-1), 3);
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], 0.0F);
  }
}

TEST(Tensor, DataShapeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0F, 2.0F}), CheckError);
}

TEST(Tensor, Factories) {
  EXPECT_EQ(Tensor::ones({3})[1], 1.0F);
  EXPECT_EQ(Tensor::full({2}, 7.0F)[0], 7.0F);
  EXPECT_EQ(Tensor::scalar(3.5F).numel(), 1);
  EXPECT_EQ(Tensor::from_vector({1, 2, 3}).size(0), 3);
}

TEST(Tensor, RandnStats) {
  Rng rng(5);
  Tensor t = Tensor::randn({10000}, rng, 2.0F);
  EXPECT_NEAR(t.mean(), 0.0F, 0.1F);
  // stddev ~ 2 -> l2^2/n ~ 4
  const float msq = t.l2_norm() * t.l2_norm() / 10000.0F;
  EXPECT_NEAR(msq, 4.0F, 0.3F);
}

TEST(Tensor, MultiIndexAccess) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at({0, 0}), 0.0F);
  EXPECT_EQ(t.at({1, 2}), 5.0F);
  EXPECT_EQ(t.flat_index({1, 0}), 3);
  EXPECT_THROW(t.at({2, 0}), CheckError);
  EXPECT_THROW(t.at({0}), CheckError);
}

TEST(Tensor, Reshape) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at({2, 1}), 5.0F);
  EXPECT_THROW(t.reshaped({4, 2}), CheckError);
}

TEST(Tensor, InPlaceOps) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.add_(b);
  EXPECT_EQ(a[2], 33.0F);
  a.scale_(0.5F);
  EXPECT_EQ(a[0], 5.5F);
  a.add_scaled_(b, -0.1F);
  EXPECT_NEAR(a[1], 11.0F - 2.0F, 1e-5F);
}

TEST(Tensor, Reductions) {
  Tensor t({4}, {1, -2, 3, -4});
  EXPECT_EQ(t.sum(), -2.0F);
  EXPECT_EQ(t.mean(), -0.5F);
  EXPECT_EQ(t.min(), -4.0F);
  EXPECT_EQ(t.max(), 3.0F);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(30.0F), 1e-5F);
}

TEST(Tensor, SparsityAccounting) {
  Tensor t({5}, {0, 1, 0, 2, 0});
  EXPECT_EQ(t.count_nonzero(), 2);
  EXPECT_DOUBLE_EQ(t.sparsity(), 0.6);
}

TEST(Tensor, Allclose) {
  Tensor a({2}, {1.0F, 2.0F});
  Tensor b({2}, {1.0F + 1e-6F, 2.0F});
  EXPECT_TRUE(a.allclose(b));
  EXPECT_FALSE(a.allclose(Tensor({2}, {1.1F, 2.0F})));
  EXPECT_FALSE(a.allclose(Tensor({1, 2}, {1.0F, 2.0F})));
}

TEST(Tensor, FreeArithmetic) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {3, 4});
  EXPECT_EQ(add(a, b)[1], 6.0F);
  EXPECT_EQ(sub(b, a)[0], 2.0F);
  EXPECT_EQ(mul(a, b)[1], 8.0F);
  EXPECT_THROW(add(a, Tensor({3})), CheckError);
}

TEST(Tensor, Matmul2dKnownValues) {
  // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = matmul2d(a, b);
  EXPECT_EQ(c[0], 19.0F);
  EXPECT_EQ(c[1], 22.0F);
  EXPECT_EQ(c[2], 43.0F);
  EXPECT_EQ(c[3], 50.0F);
}

TEST(Tensor, MatmulShapeChecks) {
  EXPECT_THROW(matmul2d(Tensor({2, 3}), Tensor({2, 3})), CheckError);
  EXPECT_THROW(matmul2d(Tensor({6}), Tensor({6})), CheckError);
}

TEST(Tensor, MatmulRectangular) {
  Tensor a({1, 3}, {1, 2, 3});
  Tensor b({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor c = matmul2d(a, b);
  EXPECT_EQ(c.size(0), 1);
  EXPECT_EQ(c.size(1), 2);
  EXPECT_EQ(c[0], 4.0F);
  EXPECT_EQ(c[1], 5.0F);
}

TEST(Tensor, Transpose2d) {
  Tensor a({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor t = transpose2d(a);
  EXPECT_EQ(t.size(0), 3);
  EXPECT_EQ(t.at({1, 1}), 4.0F);
  EXPECT_EQ(t.at({2, 0}), 2.0F);
}

// Property: transpose(transpose(A)) == A; (AB)^T == B^T A^T.
TEST(Tensor, TransposeProperties) {
  Rng rng(9);
  Tensor a = Tensor::randn({4, 6}, rng);
  Tensor b = Tensor::randn({6, 3}, rng);
  EXPECT_TRUE(transpose2d(transpose2d(a)).allclose(a));
  EXPECT_TRUE(transpose2d(matmul2d(a, b))
                  .allclose(matmul2d(transpose2d(b), transpose2d(a)), 1e-4F));
}

// Parameterized sweep over shapes: matmul against a naive reference.
class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapes, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(100 + m * 31 + k * 7 + n);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  const Tensor fast = matmul2d(a, b);
  Tensor ref({m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0F;
      for (int kk = 0; kk < k; ++kk) {
        acc += a[i * k + kk] * b[kk * n + j];
      }
      ref[i * n + j] = acc;
    }
  }
  EXPECT_TRUE(fast.allclose(ref, 1e-4F));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatmulShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 8, 1},
                      std::tuple{5, 3, 7}, std::tuple{16, 16, 16},
                      std::tuple{2, 33, 9}, std::tuple{31, 1, 31}));

}  // namespace
}  // namespace rt3
