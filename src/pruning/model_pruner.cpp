#include "pruning/model_pruner.hpp"

#include "common/check.hpp"

namespace rt3 {

ModelPruner::ModelPruner(std::vector<Linear*> layers)
    : layers_(std::move(layers)) {
  check(!layers_.empty(), "ModelPruner: no layers");
  for (Linear* l : layers_) {
    check(l != nullptr, "ModelPruner: null layer");
  }
}

void ModelPruner::apply_bp(const BpConfig& config) {
  backbone_masks_.clear();
  backbone_masks_.reserve(layers_.size());
  for (Linear* l : layers_) {
    Tensor mask = bp_mask(l->weight().value(), config);
    l->set_mask(mask);
    backbone_masks_.push_back(std::move(mask));
  }
}

void ModelPruner::apply_random_bp(const BpConfig& config, Rng& rng) {
  backbone_masks_.clear();
  backbone_masks_.reserve(layers_.size());
  for (Linear* l : layers_) {
    Tensor mask = rbp_mask(l->weight().value(), config, rng);
    l->set_mask(mask);
    backbone_masks_.push_back(std::move(mask));
  }
}

void ModelPruner::freeze_backbone() {
  backbone_masks_.clear();
  backbone_masks_.reserve(layers_.size());
  for (Linear* l : layers_) {
    backbone_masks_.push_back(l->has_mask()
                                  ? l->mask()
                                  : Tensor::ones(l->weight().shape()));
  }
}

double ModelPruner::apply_pattern_set(const PatternSet& set) {
  check(has_backbone(), "ModelPruner: backbone not frozen yet");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Linear* l = layers_[i];
    // Select patterns on the backbone-masked weights (paper chooses per
    // block on the fixed backbone C).
    Tensor masked_weight = mul(l->weight().value(), backbone_masks_[i]);
    Tensor pattern_mask = pattern_mask_for_weight(masked_weight, set);
    // Composed mask: entry survives only if both keep it.
    Tensor composed = mul(pattern_mask, backbone_masks_[i]);
    l->set_mask(std::move(composed));
  }
  return overall_sparsity();
}

void ModelPruner::restore_backbone() {
  check(has_backbone(), "ModelPruner: backbone not frozen yet");
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->set_mask(backbone_masks_[i]);
  }
}

double ModelPruner::overall_sparsity() const {
  std::int64_t zeros = 0;
  std::int64_t total = 0;
  for (const Linear* l : layers_) {
    const std::int64_t n = l->weight().numel();
    total += n;
    if (l->has_mask()) {
      zeros += n - l->mask().count_nonzero();
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(zeros) / static_cast<double>(total);
}

std::int64_t ModelPruner::total_weights() const {
  std::int64_t total = 0;
  for (const Linear* l : layers_) {
    total += l->weight().numel();
  }
  return total;
}

}  // namespace rt3
