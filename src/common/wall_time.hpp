// Host wall-clock helpers for the handful of places that time real work
// (kernel execution, plan swaps, mask re-composition).  Virtual serving
// time never comes from here — only measured host-side costs do.
#pragma once

#include <chrono>

namespace rt3 {

inline std::chrono::steady_clock::time_point wall_now() {
  return std::chrono::steady_clock::now();
}

/// Milliseconds elapsed since `t0` on the steady clock.
inline double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(wall_now() - t0).count();
}

}  // namespace rt3
