#include "nn/distilbert.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace rt3 {

DistilBertLike::DistilBertLike(const DistilBertConfig& config)
    : config_(config) {
  Rng rng(config.seed);
  token_embedding_ =
      Var(Tensor::randn({config.vocab_size, config.d_model}, rng, 0.05F),
          /*requires_grad=*/true);
  pos_ = std::make_unique<PositionalEncoding>(config.max_seq_len,
                                              config.d_model);
  for (std::int64_t i = 0; i < config.num_layers; ++i) {
    layers_.push_back(std::make_unique<EncoderLayer>(
        config.d_model, config.num_heads, config.ffn_hidden, rng));
  }
  final_norm_ = std::make_unique<LayerNormLayer>(config.d_model);
  pooler_ = std::make_unique<Linear>(config.d_model, config.d_model, rng);
  head_ = std::make_unique<Linear>(config.d_model, config.num_outputs, rng);
}

Var DistilBertLike::forward(const std::vector<std::int64_t>& ids,
                            std::int64_t batch, std::int64_t seq_len) const {
  check(static_cast<std::int64_t>(ids.size()) == batch * seq_len,
        "DistilBertLike::forward: id count mismatch");
  const std::int64_t d = config_.d_model;
  Var x = embedding(token_embedding_, ids);
  x = reshape(x, {batch, seq_len, d});
  x = pos_->forward(x);
  for (const auto& layer : layers_) {
    x = layer->forward(x, /*causal=*/false);
  }
  x = final_norm_->forward(x);

  // Mean-pool over time via a constant projection [T*D, D] so no dedicated
  // reduction op is needed: out[b, j] = mean_t x[b, t, j].
  Tensor pool({seq_len * d, d});
  const float inv_t = 1.0F / static_cast<float>(seq_len);
  for (std::int64_t t = 0; t < seq_len; ++t) {
    for (std::int64_t j = 0; j < d; ++j) {
      pool[(t * d + j) * d + j] = inv_t;
    }
  }
  Var flat = reshape(x, {batch, seq_len * d});
  Var pooled = matmul(flat, Var(pool, /*requires_grad=*/false));
  pooled = tanh_v(pooler_->forward(pooled));
  return head_->forward(pooled);  // [B, num_outputs]
}

Var DistilBertLike::classification_loss(
    const std::vector<GlueExample>& examples) const {
  check(!examples.empty(), "classification_loss: empty batch");
  const std::int64_t seq_len =
      static_cast<std::int64_t>(examples.front().tokens.size());
  std::vector<std::int64_t> ids;
  std::vector<std::int64_t> labels;
  ids.reserve(examples.size() * static_cast<std::size_t>(seq_len));
  for (const auto& ex : examples) {
    check(static_cast<std::int64_t>(ex.tokens.size()) == seq_len,
          "classification_loss: ragged batch");
    ids.insert(ids.end(), ex.tokens.begin(), ex.tokens.end());
    labels.push_back(ex.label);
  }
  Var logits =
      forward(ids, static_cast<std::int64_t>(examples.size()), seq_len);
  return cross_entropy(logits, labels);
}

Var DistilBertLike::regression_loss(
    const std::vector<GlueExample>& examples) const {
  check(!examples.empty(), "regression_loss: empty batch");
  check(config_.num_outputs == 1, "regression_loss: model has classes");
  const std::int64_t seq_len =
      static_cast<std::int64_t>(examples.front().tokens.size());
  std::vector<std::int64_t> ids;
  Tensor target({static_cast<std::int64_t>(examples.size()), 1});
  for (std::size_t i = 0; i < examples.size(); ++i) {
    ids.insert(ids.end(), examples[i].tokens.begin(),
               examples[i].tokens.end());
    target[static_cast<std::int64_t>(i)] = examples[i].score / 5.0F;
  }
  Var pred = forward(ids, static_cast<std::int64_t>(examples.size()), seq_len);
  return mse_loss(pred, target);
}

Var DistilBertLike::loss(const GlueDataset& data,
                         const std::vector<GlueExample>& batch) const {
  return data.is_regression() ? regression_loss(batch)
                              : classification_loss(batch);
}

std::vector<std::int64_t> DistilBertLike::predict_labels(
    const std::vector<GlueExample>& examples) const {
  std::vector<std::int64_t> out;
  out.reserve(examples.size());
  // Batched prediction in chunks to bound memory.
  const std::size_t chunk = 64;
  for (std::size_t start = 0; start < examples.size(); start += chunk) {
    const std::size_t end = std::min(examples.size(), start + chunk);
    const std::int64_t b = static_cast<std::int64_t>(end - start);
    const std::int64_t seq_len =
        static_cast<std::int64_t>(examples[start].tokens.size());
    std::vector<std::int64_t> ids;
    ids.reserve(static_cast<std::size_t>(b * seq_len));
    for (std::size_t i = start; i < end; ++i) {
      ids.insert(ids.end(), examples[i].tokens.begin(),
                 examples[i].tokens.end());
    }
    Var logits = forward(ids, b, seq_len);
    for (std::int64_t r = 0; r < b; ++r) {
      const float* row = logits.value().data() + r * config_.num_outputs;
      std::int64_t best = 0;
      for (std::int64_t c = 1; c < config_.num_outputs; ++c) {
        if (row[c] > row[best]) {
          best = c;
        }
      }
      out.push_back(best);
    }
  }
  return out;
}

std::vector<double> DistilBertLike::predict_scores(
    const std::vector<GlueExample>& examples) const {
  check(config_.num_outputs == 1, "predict_scores: model has classes");
  std::vector<double> out;
  out.reserve(examples.size());
  const std::size_t chunk = 64;
  for (std::size_t start = 0; start < examples.size(); start += chunk) {
    const std::size_t end = std::min(examples.size(), start + chunk);
    const std::int64_t b = static_cast<std::int64_t>(end - start);
    const std::int64_t seq_len =
        static_cast<std::int64_t>(examples[start].tokens.size());
    std::vector<std::int64_t> ids;
    for (std::size_t i = start; i < end; ++i) {
      ids.insert(ids.end(), examples[i].tokens.begin(),
                 examples[i].tokens.end());
    }
    Var pred = forward(ids, b, seq_len);
    for (std::int64_t r = 0; r < b; ++r) {
      out.push_back(5.0 * static_cast<double>(pred.value()[r]));
    }
  }
  return out;
}

double DistilBertLike::evaluate(const GlueDataset& data) const {
  if (data.is_regression()) {
    return data.evaluate_regression(predict_scores(data.dev()));
  }
  return data.evaluate(predict_labels(data.dev()));
}

void DistilBertLike::collect_params(const std::string& prefix,
                                    std::vector<NamedParam>& out) const {
  out.push_back({prefix + "token_embedding", token_embedding_});
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->collect_params(prefix + "layer." + std::to_string(i) + ".",
                               out);
  }
  final_norm_->collect_params(prefix + "final_norm.", out);
  pooler_->collect_params(prefix + "pooler.", out);
  head_->collect_params(prefix + "head.", out);
}

std::vector<Linear*> DistilBertLike::prunable() {
  std::vector<Linear*> out;
  for (auto& layer : layers_) {
    for (Linear* l : layer->prunable()) {
      out.push_back(l);
    }
  }
  out.push_back(pooler_.get());
  return out;
}

}  // namespace rt3
