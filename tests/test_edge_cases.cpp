// Edge-case and error-path tests across modules: null handles, broadcast
// rejections, arity checks, boundary configurations.
#include <gtest/gtest.h>

#include <memory>

#include "common/check.hpp"
#include "data/corpus.hpp"
#include "nn/transformer_lm.hpp"
#include "perf/model_spec.hpp"
#include "pruning/model_pruner.hpp"
#include "rl/reward.hpp"
#include "runtime/engine.hpp"
#include "search/space.hpp"
#include "tensor/var.hpp"

namespace rt3 {
namespace {

TEST(VarEdge, NullHandleRejected) {
  Var null_var;
  EXPECT_FALSE(null_var.defined());
  EXPECT_THROW(null_var.value(), CheckError);
  EXPECT_THROW(null_var.backward(), CheckError);
  Var ok(Tensor::scalar(1.0F));
  EXPECT_THROW(add(ok, null_var), CheckError);
}

TEST(VarEdge, UnsupportedBroadcastRejected) {
  Var a(Tensor::zeros({2, 3}));
  Var b(Tensor::zeros({2}));  // neither scalar nor last-dim
  EXPECT_THROW(add(a, b), CheckError);
  EXPECT_THROW(mul(a, Var(Tensor::zeros({3, 2}))), CheckError);
}

TEST(VarEdge, MulConstShapeMismatchRejected) {
  Var a(Tensor::zeros({2, 2}));
  EXPECT_THROW(mul_const(a, Tensor::zeros({4})), CheckError);
  EXPECT_THROW(add_const(a, Tensor::zeros({2, 3})), CheckError);
}

TEST(VarEdge, CrossEntropyValidation) {
  Var logits(Tensor::zeros({2, 3}));
  EXPECT_THROW(cross_entropy(logits, {0}), CheckError);        // arity
  EXPECT_THROW(cross_entropy(logits, {0, 5}), CheckError);     // range
  EXPECT_THROW(cross_entropy(logits, {-1, -1}), CheckError);   // all padded
}

TEST(VarEdge, DropoutBoundaryProbabilities) {
  Rng rng(1);
  Var x(Tensor::ones({10}));
  // p = 0 is identity even in training.
  EXPECT_TRUE(dropout(x, 0.0F, rng, true).value().allclose(x.value()));
  // p = 1 rejected (would divide by zero keep-rate).
  EXPECT_THROW(dropout(x, 1.0F, rng, true), CheckError);
}

TEST(VarEdge, EmbeddingRangeChecked) {
  Var w(Tensor::zeros({4, 2}));
  EXPECT_THROW(embedding(w, {4}), CheckError);
  EXPECT_THROW(embedding(w, {-1}), CheckError);
}

TEST(CorpusEdge, ZeroRuleStrengthIsPureZipf) {
  CorpusConfig cfg;
  cfg.vocab_size = 32;
  cfg.num_tokens = 5000;
  cfg.rule_strength = 0.0;
  Corpus corpus(cfg);
  // Oracle can't beat the base rate of Zipf collisions by much.
  EXPECT_LT(corpus.oracle_accuracy(), 0.15);
}

TEST(CorpusEdge, ConfigValidation) {
  CorpusConfig bad;
  bad.vocab_size = 2;
  EXPECT_THROW(Corpus{bad}, CheckError);
  CorpusConfig bad2;
  bad2.rule_strength = 1.5;
  EXPECT_THROW(Corpus{bad2}, CheckError);
}

TEST(ModelSpecEdge, MacArithmetic) {
  ModelSpec spec;
  spec.name = "toy";
  spec.tokens_per_inference = 10;
  spec.layers.push_back({"w", 100, 50, 2});  // used twice per token
  // 2 * r * c * uses * tokens = 2*100*50*2*10
  EXPECT_DOUBLE_EQ(spec.dense_macs(), 2.0 * 100 * 50 * 2 * 10);
  EXPECT_EQ(spec.total_weights(), 5000);
  EXPECT_EQ(spec.dense_bytes(), 20000);
}

TEST(PrunerEdge, RejectsEmptyAndNull) {
  EXPECT_THROW(ModelPruner({}), CheckError);
  std::vector<Linear*> with_null = {nullptr};
  EXPECT_THROW(ModelPruner{with_null}, CheckError);
}

TEST(RewardEdge, SingleLevelCondVacuouslyTrue) {
  RewardInputs in;
  in.latencies_ms = {50.0};
  in.accuracies = {0.8};
  in.runs = {1e5};
  in.timing_constraint_ms = 100.0;
  in.backbone_accuracy = 0.9;
  in.min_accuracy = 0.4;
  in.runs_reference = 1e6;
  const RewardResult r = compute_reward(in);
  EXPECT_TRUE(r.ordering_ok);  // no pair to violate
  EXPECT_TRUE(r.feasible);
}

TEST(RewardEdge, EqualAccuraciesViolateStrictOrdering) {
  RewardInputs in;
  in.latencies_ms = {50.0, 60.0};
  in.accuracies = {0.8, 0.8};  // equal, not strictly decreasing
  in.runs = {1e5, 1e5};
  in.timing_constraint_ms = 100.0;
  in.backbone_accuracy = 0.9;
  in.min_accuracy = 0.4;
  in.runs_reference = 1e6;
  EXPECT_FALSE(compute_reward(in).ordering_ok);
}

TEST(EngineEdge, RequiresBackboneAndValidLevels) {
  Rng rng(2);
  auto layer = std::make_unique<Linear>(8, 8, rng);
  std::vector<Linear*> raw = {layer.get()};
  ModelPruner pruner(raw);
  PatternSet set;
  set.patterns.push_back(Pattern::dense(4));
  // No backbone frozen yet -> engine construction fails.
  EXPECT_THROW(ReconfigEngine(pruner, {set}, SwitchCostModel(),
                              ModelSpec::paper_transformer(), 100),
               CheckError);
  pruner.freeze_backbone();
  ReconfigEngine engine(pruner, {set}, SwitchCostModel(),
                        ModelSpec::paper_transformer(), 100);
  EXPECT_THROW(engine.switch_to(5), CheckError);
  EXPECT_THROW(engine.switch_to(-1), CheckError);
}

TEST(SpaceEdge, ImportanceSkipsNonTileableLayers) {
  Rng rng(3);
  auto tileable = std::make_unique<Linear>(16, 16, rng);
  auto ragged = std::make_unique<Linear>(10, 6, rng);  // not /8
  std::vector<Linear*> layers = {tileable.get(), ragged.get()};
  Rng map_rng(4);
  const Tensor imp = importance_from_layers(layers, 8, map_rng);
  EXPECT_EQ(imp.shape(), (Shape{8, 8}));
  EXPECT_GT(imp.sum(), 0.0F);  // tileable layer contributed
}

TEST(SpaceEdge, VariantIndexValidation) {
  Rng rng(5);
  auto layer = std::make_unique<Linear>(16, 16, rng);
  std::vector<Linear*> raw = {layer.get()};
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel latency;
  latency.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);
  const VfTable table = VfTable::odroid_xu3_a7();
  SearchSpaceConfig cfg;
  cfg.psize = 4;
  cfg.patterns_per_set = 2;
  cfg.num_variants = 2;
  const auto space = PatternSearchSpace::build(
      cfg, {table.level(5)}, spec, latency, raw, 0.3);
  EXPECT_THROW(space.variant(-1, 0), CheckError);
  EXPECT_THROW(space.variant(0, 2), CheckError);
  EXPECT_THROW(space.sparsity_at(space.grid_size()), CheckError);
}

TEST(LmEdge, ForwardValidatesIdCount) {
  TransformerLmConfig cfg;
  cfg.vocab_size = 16;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 16;
  TransformerLm lm(cfg);
  std::vector<std::int64_t> ids(7, 0);  // not batch*seq_len
  EXPECT_THROW(lm.forward(ids, 2, 4), CheckError);
}

TEST(LmEdge, SequenceLengthCapEnforced) {
  TransformerLmConfig cfg;
  cfg.vocab_size = 16;
  cfg.d_model = 8;
  cfg.num_heads = 2;
  cfg.ffn_hidden = 16;
  cfg.max_seq_len = 4;
  TransformerLm lm(cfg);
  std::vector<std::int64_t> ids(8, 0);
  EXPECT_THROW(lm.forward(ids, 1, 8), CheckError);  // 8 > max_seq_len
  EXPECT_NO_THROW(lm.forward(ids, 2, 4));
}

TEST(LatencyEdge, InvalidInputsRejected) {
  const ModelSpec spec = ModelSpec::paper_transformer();
  const LatencyModel model;
  EXPECT_THROW(model.latency_ms(spec, 1.0, ExecMode::kDense, 1000.0),
               CheckError);  // sparsity 1.0 => zero work, undefined
  EXPECT_THROW(model.latency_ms(spec, 0.5, ExecMode::kDense, 0.0),
               CheckError);
  EXPECT_THROW(model.latency_ms(spec, -0.1, ExecMode::kDense, 1000.0),
               CheckError);
}

TEST(GovernorEdge, BoundaryFractions) {
  const Governor gov = Governor::equal_tranches({5, 3, 2});
  EXPECT_NO_THROW(gov.level_for(0.0));
  EXPECT_NO_THROW(gov.level_for(1.0));
  EXPECT_THROW(gov.level_for(-0.1), CheckError);
  EXPECT_THROW(gov.level_for(1.1), CheckError);
}

TEST(BatteryEdge, ZeroAndNegativeGuards) {
  EXPECT_THROW(Battery{0.0}, CheckError);
  Battery b(10.0);
  EXPECT_THROW(b.drain(-1.0), CheckError);
  EXPECT_TRUE(b.drain(0.0));  // no-op drain allowed
  EXPECT_NEAR(b.fraction(), 1.0, 1e-12);
}

}  // namespace
}  // namespace rt3
