// Shrunken pattern-pruning search space (paper component #3).
//
// Given the timing constraint T, the N selected V/F levels, and the Level-1
// backbone, the generator:
//   1. predicts, per level, the sparsity ratio whose latency just meets T
//      (via the calibrated latency model — "predict the N sparsity ratios
//      nearest to T");
//   2. gradually tightens the constraint to widen the grid to theta * N
//      ratios;
//   3. for every ratio builds several candidate PatternSets of m patterns
//      each from backbone importance (sampling n/2 tiles per pattern).
// The RL controller then only chooses among these candidates instead of the
// astronomically large raw pattern space (C(100,50) ~ 1e286 in the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "dvfs/dvfs.hpp"
#include "nn/linear.hpp"
#include "perf/latency_model.hpp"
#include "sparse/pattern.hpp"

namespace rt3 {

struct SearchSpaceConfig {
  double timing_constraint_ms = 100.0;
  /// Constraint-tightening factor per extra ring of candidates.
  double tighten_step = 0.08;
  /// theta: rings of candidates (grid size = theta * num_levels, deduped).
  std::int64_t theta = 3;
  /// m: patterns per set.
  std::int64_t patterns_per_set = 4;
  /// Pattern-set variants per sparsity candidate (controller's 2nd action).
  std::int64_t num_variants = 3;
  std::int64_t psize = 8;
  ExecMode exec_mode = ExecMode::kPattern;
  std::uint64_t seed = 21;
};

/// Tile-importance accumulated across all prunable layers of the backbone:
/// samples half the tiles of each layer (paper: "sample n/2 blocks and
/// conduct point-wise addition").
Tensor importance_from_layers(const std::vector<Linear*>& layers,
                              std::int64_t psize, Rng& rng);

/// A pattern set built from cross-layer backbone importance.
PatternSet pattern_set_from_layers(const std::vector<Linear*>& layers,
                                   std::int64_t psize, double sparsity,
                                   std::int64_t m, Rng& rng);

/// The generated space: a sparsity grid plus per-grid-point variants.
class PatternSearchSpace {
 public:
  /// Builds the space for the given levels (fast -> slow order).
  static PatternSearchSpace build(const SearchSpaceConfig& config,
                                  const std::vector<VfLevel>& levels,
                                  const ModelSpec& spec,
                                  const LatencyModel& latency,
                                  const std::vector<Linear*>& backbone_layers,
                                  double backbone_sparsity);

  std::int64_t grid_size() const {
    return static_cast<std::int64_t>(sparsity_grid_.size());
  }
  std::int64_t num_variants() const { return num_variants_; }

  double sparsity_at(std::int64_t grid_index) const;
  const PatternSet& variant(std::int64_t grid_index,
                            std::int64_t variant_index) const;
  const std::vector<double>& sparsity_grid() const { return sparsity_grid_; }

  /// Index of the grid point whose sparsity just satisfies T at the given
  /// level (the heuristic baseline of Fig. 3(b,c)).
  std::int64_t heuristic_choice_for_level(const VfLevel& level,
                                          const ModelSpec& spec,
                                          const LatencyModel& latency,
                                          ExecMode mode,
                                          double timing_constraint_ms,
                                          double backbone_sparsity) const;

 private:
  std::vector<double> sparsity_grid_;                 // ascending
  std::vector<std::vector<PatternSet>> variants_;     // [grid][variant]
  std::int64_t num_variants_ = 0;
};

}  // namespace rt3
