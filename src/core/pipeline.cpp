#include "core/pipeline.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "common/wall_time.hpp"
#include "rl/reward.hpp"

namespace rt3 {

namespace {

std::vector<VfLevel> resolve_levels(const std::vector<std::int64_t>& indices) {
  const VfTable table = VfTable::odroid_xu3_a7();
  std::vector<VfLevel> levels;
  levels.reserve(indices.size());
  for (std::int64_t i : indices) {
    levels.push_back(table.level(i));
  }
  // Fast -> slow ordering is required (M1 = fastest level).
  for (std::size_t i = 1; i < levels.size(); ++i) {
    check(levels[i].freq_mhz < levels[i - 1].freq_mhz,
          "Rt3Options: level_indices must be ordered fast -> slow");
  }
  return levels;
}

}  // namespace

Rt3Result run_rt3_search(const Rt3Options& options, const ModelSpec& spec,
                         const LatencyModel& latency,
                         const PatternSearchSpace& space,
                         const SearchHooks& hooks, double original_accuracy,
                         double backbone_accuracy, double backbone_sparsity) {
  const auto levels = resolve_levels(options.level_indices);
  const std::int64_t n_levels = static_cast<std::int64_t>(levels.size());
  const PowerModel power;
  const double tranche = options.energy_budget_mj / static_cast<double>(n_levels);
  const double min_accuracy = options.min_accuracy > 0.0
                                  ? options.min_accuracy
                                  : 0.5 * backbone_accuracy;

  // Normalizer for R_runs: the runs achievable at an aggressive 97%
  // sparsity at every level — an upper bound no real episode exceeds.
  double runs_reference = 0.0;
  for (const auto& level : levels) {
    const double lat =
        latency.latency_ms(spec, 0.97, ExecMode::kPattern, level.freq_mhz);
    runs_reference += number_of_runs(tranche, power.power_mw(level), lat);
  }

  ControllerConfig ctrl_cfg = options.controller;
  ctrl_cfg.num_levels = n_levels;
  ctrl_cfg.num_sparsity_choices = space.grid_size();
  ctrl_cfg.num_variants = space.num_variants();
  RlController controller(ctrl_cfg);
  Rng rng(options.seed);

  Rt3Result result;
  result.original_accuracy = original_accuracy;
  result.backbone_accuracy = backbone_accuracy;
  result.backbone_sparsity = backbone_sparsity;

  struct BestEpisode {
    double reward = -std::numeric_limits<double>::infinity();
    // Paper selection rule: "In these Pareto frontiers, we select the ones
    // (P_T and P_L) with the highest accuracy" — so the deployed episode is
    // the feasible one with the best weighted accuracy, while the reward
    // (Eq. 1) still drives controller learning.
    double weighted_accuracy = -std::numeric_limits<double>::infinity();
    std::vector<PatternSet> sets;
    std::vector<double> sparsities;
    std::vector<double> latencies;
    std::vector<double> runs;
  };
  BestEpisode best;
  ParetoFront pareto;

  for (std::int64_t episode = 0; episode < options.episodes; ++episode) {
    const EpisodeSample sample = controller.sample(rng);

    std::vector<PatternSet> sets;
    std::vector<double> sparsities;
    std::vector<double> latencies;
    std::vector<double> runs;
    for (std::int64_t i = 0; i < n_levels; ++i) {
      const PatternSet& set =
          space.variant(sample.sparsity_choice[static_cast<std::size_t>(i)],
                        sample.variant_choice[static_cast<std::size_t>(i)]);
      sets.push_back(set);
      const double sigma = hooks.measure_sparsity(set);
      sparsities.push_back(sigma);
      const double lat = latency.latency_ms(spec, sigma, ExecMode::kPattern,
                                            levels[static_cast<std::size_t>(i)].freq_mhz);
      latencies.push_back(lat);
      runs.push_back(number_of_runs(
          tranche, power.power_mw(levels[static_cast<std::size_t>(i)]), lat));
    }

    RewardInputs inputs;
    inputs.latencies_ms = latencies;
    inputs.runs = runs;
    inputs.timing_constraint_ms = options.timing_constraint_ms;
    inputs.backbone_accuracy = backbone_accuracy;
    inputs.min_accuracy = min_accuracy;
    inputs.runs_reference = runs_reference;
    inputs.penalty = options.penalty;

    bool feasible = true;
    for (double lat : latencies) {
      feasible = feasible && lat <= options.timing_constraint_ms;
    }
    if (feasible) {
      // Paper: fine-tune only when the timing constraint holds.
      inputs.accuracies = hooks.joint_train(sets, options.episode_train);
    }

    const RewardResult reward = compute_reward(inputs);
    controller.update(sample, reward.value);

    ExploredPoint point;
    point.weighted_accuracy = reward.weighted_accuracy;
    point.total_runs = reward.total_runs;
    point.reward = reward.value;
    point.feasible = reward.feasible;
    result.explored.push_back(point);
    if (reward.feasible) {
      pareto.insert({reward.weighted_accuracy, reward.total_runs, episode});
      if (reward.weighted_accuracy > best.weighted_accuracy) {
        best = {reward.value, reward.weighted_accuracy,
                sets, sparsities, latencies, runs};
      }
    }
  }

  if (best.sets.empty()) {
    // No feasible episode: fall back to the heuristic choice (the paper's
    // baseline): smallest sparsity that satisfies T per level, variant 0.
    for (std::int64_t i = 0; i < n_levels; ++i) {
      const std::int64_t g = space.heuristic_choice_for_level(
          levels[static_cast<std::size_t>(i)], spec, latency,
          ExecMode::kPattern, options.timing_constraint_ms,
          backbone_sparsity);
      const PatternSet& set = space.variant(g, 0);
      best.sets.push_back(set);
      const double sigma = hooks.measure_sparsity(set);
      best.sparsities.push_back(sigma);
      best.latencies.push_back(
          latency.latency_ms(spec, sigma, ExecMode::kPattern,
                             levels[static_cast<std::size_t>(i)].freq_mhz));
      best.runs.push_back(number_of_runs(
          tranche, power.power_mw(levels[static_cast<std::size_t>(i)]),
          best.latencies.back()));
    }
  }

  // Assign the chosen sets to levels in increasing-sparsity order: the
  // fastest level takes the densest (most accurate) set.  This is the
  // ordering Eq. (1)'s cond term steers the controller toward; enforcing
  // it at selection time is safe because a denser set only ever moves to a
  // FASTER level.  Keep the permutation only if every level still meets T.
  {
    std::vector<std::size_t> order(best.sets.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return best.sparsities[a] < best.sparsities[b];
    });
    BestEpisode sorted = best;
    bool feasible = true;
    for (std::size_t i = 0; i < order.size(); ++i) {
      sorted.sets[i] = best.sets[order[i]];
      sorted.sparsities[i] = best.sparsities[order[i]];
      sorted.latencies[i] =
          latency.latency_ms(spec, sorted.sparsities[i], ExecMode::kPattern,
                             levels[i].freq_mhz);
      sorted.runs[i] = number_of_runs(tranche, power.power_mw(levels[i]),
                                      sorted.latencies[i]);
      feasible = feasible &&
                 sorted.latencies[i] <= options.timing_constraint_ms;
    }
    if (feasible) {
      best = std::move(sorted);
    }
  }

  // Final longer joint fine-tune of the selected solution.
  const std::vector<double> final_accs =
      hooks.joint_train(best.sets, options.final_train);

  result.chosen_sets = best.sets;
  result.total_runs = 0.0;
  result.weighted_accuracy = 0.0;
  for (std::int64_t i = 0; i < n_levels; ++i) {
    SubModelResult sub;
    sub.level_name = levels[static_cast<std::size_t>(i)].name;
    sub.freq_mhz = levels[static_cast<std::size_t>(i)].freq_mhz;
    sub.pattern_sparsity = best.sets[static_cast<std::size_t>(i)].sparsity();
    sub.overall_sparsity = best.sparsities[static_cast<std::size_t>(i)];
    sub.latency_ms = best.latencies[static_cast<std::size_t>(i)];
    sub.accuracy = final_accs[static_cast<std::size_t>(i)];
    sub.runs = best.runs[static_cast<std::size_t>(i)];
    result.levels.push_back(sub);
    result.total_runs += sub.runs;
    result.weighted_accuracy +=
        sub.accuracy / static_cast<double>(n_levels);
  }

  // Switch costs (Table III "Interrupt" row): device-model numbers from the
  // cost model plus a measured wall-clock mask recomposition on this host.
  const SwitchCostModel cost_model;
  result.model_switch_ms = cost_model.full_model_switch_ms(spec.dense_bytes());
  const std::int64_t tiles = spec.num_tiles(100);
  std::int64_t max_set_bytes = 0;
  for (const auto& set : best.sets) {
    max_set_bytes = std::max(max_set_bytes, set.storage_bytes());
  }
  result.pattern_switch_ms =
      cost_model.pattern_set_switch_ms(max_set_bytes + tiles * 2, tiles);
  const auto t0 = wall_now();
  hooks.measure_sparsity(best.sets.front());
  result.pattern_switch_wall_ms = wall_ms_since(t0);
  return result;
}

Rt3LmPipeline::Rt3LmPipeline(TransformerLm& model, const Corpus& corpus,
                             const Rt3Options& options, ModelSpec paper_spec)
    : model_(model),
      corpus_(corpus),
      options_(options),
      spec_(std::move(paper_spec)),
      pruner_(model.prunable()) {
  // Table II anchor: BP-only Transformer at F-mode = 114.59 ms.
  latency_.calibrate(spec_, 0.6426, ExecMode::kBlock, 1400.0, 114.59);
}

Rt3Result Rt3LmPipeline::run() {
  const double original = eval_lm(model_, corpus_);

  // Level 1: block-structured pruning + masked recovery fine-tune.
  pruner_.apply_bp(options_.bp);
  train_lm(model_, corpus_, options_.backbone_train);
  const double backbone_acc = eval_lm(model_, corpus_);
  const double backbone_sparsity = pruner_.overall_sparsity();

  // Level 2: shrunken search space from the fixed backbone.
  SearchSpaceConfig space_cfg = options_.space;
  space_cfg.timing_constraint_ms = options_.timing_constraint_ms;
  const auto levels = resolve_levels(options_.level_indices);
  const PatternSearchSpace space =
      PatternSearchSpace::build(space_cfg, levels, spec_, latency_,
                                pruner_.layers(), backbone_sparsity);

  SearchHooks hooks;
  hooks.joint_train = [this](const std::vector<PatternSet>& sets,
                             const TrainConfig& cfg) {
    return joint_train_lm(model_, pruner_, sets, corpus_, cfg)
        .per_set_accuracy;
  };
  hooks.measure_sparsity = [this](const PatternSet& set) {
    const double s = pruner_.apply_pattern_set(set);
    pruner_.restore_backbone();
    return s;
  };

  return run_rt3_search(options_, spec_, latency_, space, hooks, original,
                        backbone_acc, backbone_sparsity);
}

namespace {

DeploymentPackage make_package(const Module& model, const ModelPruner& pruner,
                               const Rt3Result& result,
                               const std::vector<VfLevel>& levels) {
  DeploymentPackage pkg;
  for (const auto& np : model.named_parameters()) {
    pkg.param_names.push_back(np.name);
    pkg.params.push_back(np.param.value());
  }
  for (std::size_t i = 0; i < pruner.layers().size(); ++i) {
    pkg.prunable_names.push_back("prunable." + std::to_string(i));
    pkg.backbone_masks.push_back(pruner.backbone_masks()[i]);
  }
  pkg.pattern_sets = result.chosen_sets;
  for (std::size_t i = 0; i < result.levels.size(); ++i) {
    const SubModelResult& sub = result.levels[i];
    LevelMeta meta;
    meta.level_name = sub.level_name;
    meta.freq_mhz = levels[i].freq_mhz;
    meta.pattern_sparsity = sub.pattern_sparsity;
    meta.overall_sparsity = sub.overall_sparsity;
    meta.latency_ms = sub.latency_ms;
    meta.accuracy = sub.accuracy;
    pkg.levels.push_back(std::move(meta));
  }
  return pkg;
}

}  // namespace

DeploymentPackage Rt3LmPipeline::package(const Rt3Result& result) const {
  return make_package(model_, pruner_, result,
                      resolve_levels(options_.level_indices));
}

Rt3GluePipeline::Rt3GluePipeline(DistilBertLike& model,
                                 const GlueDataset& data,
                                 const Rt3Options& options,
                                 ModelSpec paper_spec)
    : model_(model),
      data_(data),
      options_(options),
      spec_(std::move(paper_spec)),
      pruner_(model.prunable()) {
  // DistilBERT anchor: the paper's RTE M1 (51.78% sparsity) meets T=200 ms
  // at F-mode with 199.94 ms.
  latency_.calibrate(spec_, 0.5178, ExecMode::kPattern, 1400.0, 199.94);
}

Rt3Result Rt3GluePipeline::run() {
  const double original = model_.evaluate(data_);

  pruner_.apply_bp(options_.bp);
  train_glue(model_, data_, options_.backbone_train);
  const double backbone_acc = model_.evaluate(data_);
  const double backbone_sparsity = pruner_.overall_sparsity();

  SearchSpaceConfig space_cfg = options_.space;
  space_cfg.timing_constraint_ms = options_.timing_constraint_ms;
  const auto levels = resolve_levels(options_.level_indices);
  const PatternSearchSpace space =
      PatternSearchSpace::build(space_cfg, levels, spec_, latency_,
                                pruner_.layers(), backbone_sparsity);

  SearchHooks hooks;
  hooks.joint_train = [this](const std::vector<PatternSet>& sets,
                             const TrainConfig& cfg) {
    return joint_train_glue(model_, pruner_, sets, data_, cfg)
        .per_set_accuracy;
  };
  hooks.measure_sparsity = [this](const PatternSet& set) {
    const double s = pruner_.apply_pattern_set(set);
    pruner_.restore_backbone();
    return s;
  };

  return run_rt3_search(options_, spec_, latency_, space, hooks, original,
                        backbone_acc, backbone_sparsity);
}

DeploymentPackage Rt3GluePipeline::package(const Rt3Result& result) const {
  return make_package(model_, pruner_, result,
                      resolve_levels(options_.level_indices));
}

}  // namespace rt3
