#include "obs/slo.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rt3 {

const char* slo_rule_kind_name(SloRuleKind kind) {
  switch (kind) {
    case SloRuleKind::kMissBurn:
      return "miss_burn";
    case SloRuleKind::kLatencyEwma:
      return "latency_ewma";
    case SloRuleKind::kBatterySlope:
      return "battery_slope";
  }
  return "unknown";
}

SloMonitor::SloMonitor(std::vector<SloRule> rules)
    : rules_(std::move(rules)), states_(rules_.size()) {}

std::vector<SloRule> SloMonitor::default_rules() {
  std::vector<SloRule> rules;
  SloRule burn;
  burn.name = "miss-burn";
  burn.kind = SloRuleKind::kMissBurn;
  rules.push_back(burn);
  SloRule latency;
  latency.name = "latency-ewma";
  latency.kind = SloRuleKind::kLatencyEwma;
  rules.push_back(latency);
  SloRule battery;
  battery.name = "battery-slope";
  battery.kind = SloRuleKind::kBatterySlope;
  rules.push_back(battery);
  return rules;
}

void SloMonitor::transition(std::size_t rule_idx, bool breach,
                            double now_ms, double value,
                            std::int64_t misses) {
  RuleState& state = states_[rule_idx];
  const SloRule& rule = rules_[rule_idx];
  if (breach == state.in_breach) return;
  state.in_breach = breach;
  if (breach) {
    SloEpisode episode;
    episode.rule = rule.name;
    episode.start_ms = now_ms;
    episode.trigger_value = value;
    episode.trigger_misses = misses;
    state.open_episode = static_cast<std::int64_t>(episodes_.size());
    episodes_.push_back(std::move(episode));
  } else {
    episodes_[static_cast<std::size_t>(state.open_episode)].end_ms = now_ms;
    state.open_episode = -1;
  }
  if (trace_ != nullptr) {
    TraceEvent ev(breach ? "slo.breach" : "slo.recover", "slo", now_ms, 0);
    ev.arg("rule", rule.name)
        .arg("kind", std::string(slo_rule_kind_name(rule.kind)))
        .arg("value", value);
    if (rule.kind == SloRuleKind::kMissBurn && breach) {
      ev.arg("misses", misses);
    }
    trace_->record(std::move(ev));
  }
}

void SloMonitor::observe(const SloObservation& obs) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    RuleState& state = states_[i];
    switch (rule.kind) {
      case SloRuleKind::kMissBurn: {
        state.window.push_back(obs);
        state.long_completed += obs.completed;
        state.long_missed += obs.missed;
        while (!state.window.empty() &&
               state.window.front().end_ms <
                   obs.end_ms - rule.long_window_ms) {
          state.long_completed -= state.window.front().completed;
          state.long_missed -= state.window.front().missed;
          state.window.pop_front();
        }
        std::int64_t short_completed = 0;
        std::int64_t short_missed = 0;
        for (auto it = state.window.rbegin(); it != state.window.rend();
             ++it) {
          if (it->end_ms < obs.end_ms - rule.short_window_ms) break;
          short_completed += it->completed;
          short_missed += it->missed;
        }
        const double short_rate =
            static_cast<double>(short_missed) /
            static_cast<double>(short_completed > 0 ? short_completed : 1);
        const double long_rate =
            static_cast<double>(state.long_missed) /
            static_cast<double>(state.long_completed > 0
                                    ? state.long_completed
                                    : 1);
        const bool breach = short_missed >= rule.min_misses &&
                            short_rate >= rule.short_threshold &&
                            long_rate >= rule.long_threshold;
        transition(i, breach, obs.end_ms, short_rate, short_missed);
        break;
      }
      case SloRuleKind::kLatencyEwma: {
        if (!state.ewma_init) {
          state.ewma = obs.mean_latency_ms;
          state.ewma_init = true;
        } else {
          state.ewma += rule.ewma_alpha * (obs.mean_latency_ms - state.ewma);
        }
        transition(i, state.ewma > rule.latency_threshold_ms, obs.end_ms,
                   state.ewma, 0);
        break;
      }
      case SloRuleKind::kBatterySlope: {
        state.slope.emplace_back(obs.end_ms, obs.battery_fraction);
        while (!state.slope.empty() &&
               state.slope.front().first <
                   obs.end_ms - rule.slope_window_ms) {
          state.slope.pop_front();
        }
        const double span =
            state.slope.back().first - state.slope.front().first;
        if (span < rule.slope_window_ms / 2.0) {
          // Not enough history to trust a slope; hold the current state.
          break;
        }
        const double drained =
            state.slope.front().second - state.slope.back().second;
        if (drained <= 0.0) {
          transition(i, false, obs.end_ms, 0.0, 0);
          break;
        }
        const double projected_ms =
            state.slope.back().second * span / drained;
        transition(i, projected_ms < rule.min_projected_ms, obs.end_ms,
                   projected_ms, 0);
        break;
      }
    }
  }
}

std::int64_t SloMonitor::active_breaches() const {
  std::int64_t n = 0;
  for (const RuleState& s : states_) n += s.in_breach ? 1 : 0;
  return n;
}

void SloMonitor::publish(MetricsRegistry& registry) const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    std::int64_t count = 0;
    for (const SloEpisode& e : episodes_) {
      if (e.rule == rules_[i].name) ++count;
    }
    total += count;
    const MetricLabels labels{{"rule", rules_[i].name}};
    registry.counter("slo.breaches", labels).inc(count);
    registry.gauge("slo.in_breach", labels)
        .set(states_[i].in_breach ? 1.0 : 0.0);
  }
  registry.counter("slo.breaches").inc(total);
}

std::string SloMonitor::to_json() const {
  std::string out = "[";
  for (std::size_t i = 0; i < episodes_.size(); ++i) {
    const SloEpisode& e = episodes_[i];
    if (i > 0) out += ", ";
    out += "{\"rule\": \"" + trace_json_escape(e.rule) + "\"";
    out += ", \"start_ms\": " + trace_json_num(e.start_ms);
    out += ", \"end_ms\": " + trace_json_num(e.end_ms);
    out += ", \"trigger_value\": " + trace_json_num(e.trigger_value);
    out += ", \"trigger_misses\": " + std::to_string(e.trigger_misses);
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace rt3
