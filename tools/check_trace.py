#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file emitted by `rt3 --trace`.

Checks the structural contract that Perfetto / chrome://tracing rely
on, plus the rt3-specific invariants the trace exporter promises:

  * top level is an object with a "traceEvents" array (JSON-object
    format, so displayTimeUnit is allowed);
  * every event carries string "name"/"ph", numeric "ts", and integer
    "pid"/"tid";
  * phases are limited to the ones rt3 emits: 'X' (complete span,
    requires numeric non-negative "dur"), 'i' (instant, requires scope
    "s"), 'C' (counter, requires a numeric args value and no "dur"),
    and 'M' (metadata);
  * timestamps are non-negative (the virtual clock starts at 0);
  * every tid used by a real event has a thread_name metadata record
    (the exporter names every lane);
  * request-lifecycle events ("request" spans, "miss"/"shed"/"reject"
    instants) carry an integer request id in args;
  * SLO events ("slo.breach"/"slo.recover") carry a string args.rule.

With --require-counter-events the trace must contain at least one 'C'
counter event (telemetry export) or it fails — CI uses this to assert
`--telemetry` sessions actually sampled.

Prints a one-line summary with event counts on success.

Usage: check_trace.py [--require-counter-events] TRACE.json [TRACE2.json ...]
Exit codes: 0 valid, 1 invalid, 2 usage/IO error.
"""

import json
import sys

ALLOWED_PHASES = {"X", "i", "C", "M"}
REQUEST_SCOPED = {"request", "miss", "shed", "reject", "arrive", "enqueue"}
SLO_EVENTS = {"slo.breach", "slo.recover"}


def check_events(path, doc, errors, phases):
    """Appends per-event problem strings to `errors`; returns counts.

    `phases` accumulates a per-phase event tally for the caller.
    """
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append("top level has no 'traceEvents' array")
        return {}
    if not events:
        errors.append("'traceEvents' is empty")
        return {}
    named_tids = set()
    used_tids = set()
    counts = {}
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            errors.append(f"{where}: not an object")
            continue
        name = e.get("name")
        ph = e.get("ph")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing or empty 'name'")
            continue
        if ph not in ALLOWED_PHASES:
            errors.append(f"{where} ({name}): unexpected phase {ph!r}")
            continue
        phases[ph] = phases.get(ph, 0) + 1
        if not isinstance(e.get("pid"), int):
            errors.append(f"{where} ({name}): missing integer 'pid'")
        if not isinstance(e.get("tid"), int):
            errors.append(f"{where} ({name}): missing integer 'tid'")
            continue
        if ph == "M":
            if name == "thread_name":
                label = (e.get("args") or {}).get("name")
                if not isinstance(label, str) or not label:
                    errors.append(f"{where}: thread_name without a label")
                named_tids.add(e["tid"])
            continue
        counts[name] = counts.get(name, 0) + 1
        used_tids.add(e["tid"])
        ts = e.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where} ({name}): missing numeric 'ts'")
        elif ts < 0:
            errors.append(f"{where} ({name}): negative ts {ts}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)):
                errors.append(f"{where} ({name}): span without numeric "
                              f"'dur'")
            elif dur < 0:
                errors.append(f"{where} ({name}): negative dur {dur}")
        if ph == "i" and not isinstance(e.get("s"), str):
            errors.append(f"{where} ({name}): instant without scope 's'")
        if ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or not args:
                errors.append(f"{where} ({name}): counter without args")
            elif not all(isinstance(v, (int, float)) and
                         not isinstance(v, bool) for v in args.values()):
                errors.append(f"{where} ({name}): counter with non-numeric "
                              f"args value")
            if "dur" in e:
                errors.append(f"{where} ({name}): counter must not carry "
                              f"'dur'")
        if name in SLO_EVENTS:
            rule = (e.get("args") or {}).get("rule")
            if not isinstance(rule, str) or not rule:
                errors.append(f"{where} ({name}): slo event without string "
                              f"args.rule")
        if name in REQUEST_SCOPED:
            rid = (e.get("args") or {}).get("id")
            if not isinstance(rid, int):
                errors.append(f"{where} ({name}): request event without "
                              f"integer args.id")
    unnamed = sorted(used_tids - named_tids)
    if unnamed:
        errors.append(f"tids {unnamed} have events but no thread_name "
                      f"metadata")
    return counts


def check_file(path, require_counters=False):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict):
        print(f"check_trace: {path}: top level is not an object",
              file=sys.stderr)
        return False
    errors = []
    phases = {}
    counts = check_events(path, doc, errors, phases)
    if require_counters and not phases.get("C"):
        errors.append("no counter ('C') events — telemetry export missing")
    for e in errors[:50]:
        print(f"check_trace: {path}: {e}", file=sys.stderr)
    if len(errors) > 50:
        print(f"check_trace: {path}: ... and {len(errors) - 50} more",
              file=sys.stderr)
    if errors:
        return False
    total = sum(counts.values())
    top = ", ".join(f"{name} x{n}" for name, n in
                    sorted(counts.items(), key=lambda kv: -kv[1])[:6])
    print(f"check_trace: {path}: ok — {total} events ({top})")
    return True


def main():
    args = sys.argv[1:]
    require_counters = "--require-counter-events" in args
    paths = [a for a in args if a != "--require-counter-events"]
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    ok = all([check_file(path, require_counters) for path in paths])
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
