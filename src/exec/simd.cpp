#include "exec/simd.hpp"

#include <thread>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "common/check.hpp"
#include "exec/kernels_dispatch.hpp"

namespace rt3 {
namespace {

SimdIsa detect_once() {
#if defined(__aarch64__)
  return SimdIsa::kNeon;
#elif defined(__x86_64__) || defined(__i386__)
  // The AVX2 table may be absent when the toolchain could not compile it
  // (see CMakeLists); only report an ISA we can actually dispatch to.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
      avx2_kernel_table() != nullptr) {
    return SimdIsa::kAvx2;
  }
  return SimdIsa::kScalar;
#else
  return SimdIsa::kScalar;
#endif
}

SimdIsa& active_isa_slot() {
  static SimdIsa active = detect_once();
  return active;
}

/// sysconf-probed cache size with a fallback when the kernel does not
/// expose the level (common in containers).
std::int64_t probe_cache(int name, std::int64_t fallback) {
#if defined(__linux__)
  const long bytes = sysconf(name);
  if (bytes > 0) {
    return static_cast<std::int64_t>(bytes);
  }
#else
  (void)name;
#endif
  return fallback;
}

}  // namespace

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kNeon:
      return "neon";
    case SimdIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdIsa simd_isa_from_name(const std::string& name) {
  for (SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kNeon, SimdIsa::kAvx2}) {
    if (name == simd_isa_name(isa)) {
      return isa;
    }
  }
  throw CheckError("unknown SIMD ISA: " + name);
}

SimdIsa detect_simd_isa() {
  static const SimdIsa detected = detect_once();
  return detected;
}

SimdIsa active_simd_isa() { return active_isa_slot(); }

void set_simd_isa(SimdIsa isa) {
  check(isa == SimdIsa::kScalar || isa == detect_simd_isa(),
        std::string("set_simd_isa: host cannot execute ") +
            simd_isa_name(isa));
  active_isa_slot() = isa;
}

std::int64_t simd_isa_width(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return 1;
    case SimdIsa::kNeon:
      return 4;
    case SimdIsa::kAvx2:
      return 8;
  }
  return 1;
}

std::int64_t cpu_l1d_bytes() {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  static const std::int64_t bytes =
      probe_cache(_SC_LEVEL1_DCACHE_SIZE, 32 * 1024);
#else
  static const std::int64_t bytes = 32 * 1024;
#endif
  return bytes;
}

std::int64_t cpu_l2_bytes() {
#if defined(_SC_LEVEL2_CACHE_SIZE)
  static const std::int64_t bytes =
      probe_cache(_SC_LEVEL2_CACHE_SIZE, 512 * 1024);
#else
  static const std::int64_t bytes = 512 * 1024;
#endif
  return bytes;
}

std::int64_t cpu_cores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<std::int64_t>(n) : 1;
}

}  // namespace rt3
