// Scheduling-policy vocabulary for the serving subsystem.
//
// The Batcher and the RequestQueue hold pending requests in a RequestHeap
// (request.hpp) whose pop order is policy-driven rather than
// arrival-driven:
//   kFifo        — strict push order (bitwise-identical to the historical
//                  deque path; the heap key is the push sequence number);
//   kEdf         — earliest absolute deadline first;
//   kEdfPriority — EDF within weighted priority classes, with an aging
//                  (anti-starvation) term so a low-priority request cannot
//                  wait unboundedly behind a sustained high-priority load.
//
// The EDF-with-priority key is evaluated in its STATIC form: the dynamic
// rank at decision time `now` is
//
//   deadline + prio_weight_ms * class - aging_ms_per_ms * (now - arrival)
//
// and the `-aging * now` term is common to every pending request, so the
// ordering is identical to the push-time constant
//
//   deadline + prio_weight_ms * class + aging_ms_per_ms * arrival.
//
// Keys are therefore computed exactly once, the heap never needs re-keying
// as the clock advances, and pop order is bit-deterministic (ties broken
// by push sequence).
#pragma once

#include <cstdint>
#include <string>

namespace rt3 {

enum class SchedulingPolicy : std::uint8_t { kFifo, kEdf, kEdfPriority };

/// "fifo" / "edf" / "edf-prio" (throws CheckError otherwise).
SchedulingPolicy scheduling_policy_from_name(const std::string& name);
std::string scheduling_policy_name(SchedulingPolicy policy);

struct SchedulerConfig {
  SchedulingPolicy policy = SchedulingPolicy::kFifo;
  /// kEdfPriority: key penalty (virtual ms) per priority-class step; class
  /// c is scheduled as if its deadline were prio_weight_ms * c later.
  double prio_weight_ms = 400.0;
  /// kEdfPriority: how much already-waited time counts against the key.
  /// 0 keeps pure class-weighted EDF; larger values pull long-waiting
  /// requests forward faster (the anti-starvation knob).
  double aging_ms_per_ms = 0.5;
};

}  // namespace rt3
