// RNN policy controller (paper component #2).
//
// For each of the N selected V/F levels the controller emits two actions
// from softmax heads over the shrunken search space (component #3): the
// sparsity-candidate index and the pattern-set variant index.  Actions are
// sampled autoregressively — each step feeds the previous action's
// embedding through a GRU — and trained with REINFORCE against the Eq. (1)
// reward, using a moving-average baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rl/gru.hpp"
#include "tensor/optim.hpp"

namespace rt3 {

struct ControllerConfig {
  std::int64_t num_levels = 3;
  /// Size of the sparsity-candidate grid (theta * N in the paper).
  std::int64_t num_sparsity_choices = 9;
  /// Pattern-set variants per sparsity candidate.
  std::int64_t num_variants = 3;
  std::int64_t hidden_dim = 32;
  float learning_rate = 5e-3F;
  float baseline_decay = 0.7F;
  std::uint64_t seed = 11;
};

/// One sampled episode: per-level (sparsity index, variant index) actions.
struct EpisodeSample {
  std::vector<std::int64_t> sparsity_choice;  // size num_levels
  std::vector<std::int64_t> variant_choice;   // size num_levels
  /// Sum of log-probabilities of all sampled actions (graph root for the
  /// REINFORCE update).
  Var log_prob_sum;
};

class RlController : public Module {
 public:
  explicit RlController(const ControllerConfig& config);

  /// Samples one episode's actions.
  EpisodeSample sample(Rng& rng) const;

  /// Greedy (argmax) episode, used to extract the final policy.
  EpisodeSample sample_greedy() const;

  /// REINFORCE update: loss = -(reward - baseline) * log_prob_sum.
  /// Returns the advantage used.
  double update(const EpisodeSample& episode, double reward);

  double baseline() const { return baseline_; }
  const ControllerConfig& config() const { return config_; }

  void collect_params(const std::string& prefix,
                      std::vector<NamedParam>& out) const override;

 private:
  EpisodeSample roll(Rng* rng) const;

  ControllerConfig config_;
  std::unique_ptr<GruCell> gru_;
  /// Embedding per action step (2 per level), input to the GRU.
  Var step_embeddings_;  // [2*num_levels, hidden]
  std::unique_ptr<Linear> sparsity_head_;
  std::unique_ptr<Linear> variant_head_;
  std::unique_ptr<Adam> optimizer_;
  double baseline_ = 0.0;
  bool baseline_initialized_ = false;
};

}  // namespace rt3
