#include "tensor/optim.hpp"

#include <cmath>

#include "common/check.hpp"

namespace rt3 {

namespace {

// Gradient of a parameter, or nullptr when no gradient has been
// accumulated this step (e.g. a module was not used in the forward pass).
const Tensor* grad_or_null(const Var& p) {
  // Var::grad() throws when unallocated; probe via a local try.  Parameters
  // untouched by the loss simply skip their update.
  try {
    return &p.grad();
  } catch (const CheckError&) {
    return nullptr;
  }
}

}  // namespace

Optimizer::Optimizer(std::vector<Var> params) : params_(std::move(params)) {
  for (const auto& p : params_) {
    check(p.defined(), "Optimizer: null parameter");
    check(p.requires_grad(), "Optimizer: parameter does not require grad");
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) {
    p.zero_grad();
  }
}

Sgd::Sgd(std::vector<Var> params, float lr, float momentum, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.emplace_back(p.value().shape());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Tensor* g = grad_or_null(params_[i]);
    if (g == nullptr) {
      continue;
    }
    Tensor& w = params_[i].mutable_value();
    Tensor& v = velocity_[i];
    for (std::int64_t k = 0; k < w.numel(); ++k) {
      float gk = (*g)[k] + weight_decay_ * w[k];
      if (momentum_ != 0.0F) {
        v[k] = momentum_ * v[k] + gk;
        gk = v[k];
      }
      w[k] -= lr_ * gk;
    }
  }
}

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value().shape());
    v_.emplace_back(p.value().shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const Tensor* g = grad_or_null(params_[i]);
    if (g == nullptr) {
      continue;
    }
    Tensor& w = params_[i].mutable_value();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::int64_t k = 0; k < w.numel(); ++k) {
      const float gk = (*g)[k] + weight_decay_ * w[k];
      m[k] = beta1_ * m[k] + (1.0F - beta1_) * gk;
      v[k] = beta2_ * v[k] + (1.0F - beta2_) * gk * gk;
      const float mhat = m[k] / bc1;
      const float vhat = v[k] / bc2;
      w[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

float clip_grad_norm(std::vector<Var>& params, float max_norm) {
  double total_sq = 0.0;
  for (const auto& p : params) {
    const Tensor* g = grad_or_null(p);
    if (g == nullptr) {
      continue;
    }
    for (std::int64_t k = 0; k < g->numel(); ++k) {
      total_sq += static_cast<double>((*g)[k]) * (*g)[k];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0F) {
    const float factor = max_norm / norm;
    for (auto& p : params) {
      const Tensor* g = grad_or_null(p);
      if (g == nullptr) {
        continue;
      }
      // grad() is const; scale through the node's accumulated tensor by
      // re-accumulating the negative part.  Simpler: const_cast-free path —
      // zero and re-add scaled.
      Tensor scaled = *g;
      scaled.scale_(factor);
      p.zero_grad();
      p.accumulate_grad(scaled);
    }
  }
  return norm;
}

}  // namespace rt3
