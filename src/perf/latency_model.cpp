#include "perf/latency_model.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace rt3 {

const char* exec_mode_name(ExecMode mode) {
  switch (mode) {
    case ExecMode::kDense:
      return "dense";
    case ExecMode::kBlock:
      return "block";
    case ExecMode::kPattern:
      return "pattern";
    case ExecMode::kIrregular:
      return "irregular";
  }
  return "unknown";
}

ExecMode exec_mode_from_name(const std::string& name) {
  for (ExecMode mode : {ExecMode::kDense, ExecMode::kBlock,
                        ExecMode::kPattern, ExecMode::kIrregular}) {
    if (name == exec_mode_name(mode)) {
      return mode;
    }
  }
  throw CheckError("unknown exec mode: " + name);
}

double exec_mode_overhead(ExecMode mode) {
  // The numbers live in the LatencyModelConfig field defaults (block:
  // near-dense inner loops on kept columns; pattern: compiler-scheduled
  // decode, PatDNN-style; irregular: per-element COO indexing).
  return LatencyModelConfig{}.mode_overhead(mode);
}

double LatencyModelConfig::mode_overhead(ExecMode mode) const {
  switch (mode) {
    case ExecMode::kDense:
      return 1.0;
    case ExecMode::kBlock:
      return block_overhead;
    case ExecMode::kPattern:
      return pattern_overhead;
    case ExecMode::kIrregular:
      return irregular_overhead;
  }
  throw CheckError("LatencyModelConfig::mode_overhead: unknown mode");
}

LatencyModel::LatencyModel(LatencyModelConfig config) : config_(config) {
  check(config_.macs_per_cycle > 0.0, "LatencyModel: bad throughput");
}

double LatencyModel::cycles(const ModelSpec& spec, double sparsity,
                            ExecMode mode) const {
  check(sparsity >= 0.0 && sparsity < 1.0, "LatencyModel: bad sparsity");
  const double density = 1.0 - sparsity;
  const double effective_macs =
      spec.dense_macs() * density * config_.mode_overhead(mode);
  return effective_macs / config_.macs_per_cycle + config_.fixed_cycles;
}

double LatencyModel::latency_ms(const ModelSpec& spec, double sparsity,
                                ExecMode mode, double freq_mhz) const {
  check(freq_mhz > 0.0, "LatencyModel: bad frequency");
  // freq in MHz = cycles per millisecond * 1e3; 1 ms has freq_mhz * 1e3
  // kilocycles -> cycles/ms = freq_mhz * 1e3.
  return cycles(spec, sparsity, mode) / (freq_mhz * 1e3);
}

double LatencyModel::sparsity_for_latency(const ModelSpec& spec, ExecMode mode,
                                          double freq_mhz,
                                          double target_ms) const {
  // latency is monotone decreasing in sparsity; bisect.
  double lo = 0.0;
  double hi = 0.99;
  if (latency_ms(spec, lo, mode, freq_mhz) <= target_ms) {
    return 0.0;  // dense already meets the target
  }
  if (latency_ms(spec, hi, mode, freq_mhz) > target_ms) {
    return hi;  // even 99% sparsity misses: return the cap
  }
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (latency_ms(spec, mid, mode, freq_mhz) > target_ms) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

void LatencyModel::calibrate(const ModelSpec& spec, double sparsity,
                             ExecMode mode, double freq_mhz,
                             double target_ms) {
  check(target_ms > 0.0, "LatencyModel::calibrate: bad target");
  const double target_cycles = target_ms * freq_mhz * 1e3;
  const double compute_cycles = target_cycles - config_.fixed_cycles;
  check(compute_cycles > 0.0,
        "LatencyModel::calibrate: fixed cost exceeds target");
  const double density = 1.0 - sparsity;
  config_.macs_per_cycle =
      spec.dense_macs() * density * config_.mode_overhead(mode) /
      compute_cycles;
}

SwitchCostModel::SwitchCostModel(SwitchCostConfig config) : config_(config) {
  check(config_.flash_bytes_per_ms > 0.0 && config_.memory_bytes_per_ms > 0.0,
        "SwitchCostModel: bad bandwidth");
}

double SwitchCostModel::full_model_switch_ms(std::int64_t model_bytes) const {
  check(model_bytes >= 0, "SwitchCostModel: negative bytes");
  return static_cast<double>(model_bytes) / config_.flash_bytes_per_ms +
         config_.model_rebuild_ms;
}

double SwitchCostModel::pattern_set_switch_ms(std::int64_t pattern_set_bytes,
                                              std::int64_t num_tiles) const {
  check(pattern_set_bytes >= 0 && num_tiles >= 0,
        "SwitchCostModel: negative payload");
  return static_cast<double>(pattern_set_bytes) / config_.memory_bytes_per_ms +
         static_cast<double>(num_tiles) * config_.per_tile_remap_ms;
}

}  // namespace rt3
