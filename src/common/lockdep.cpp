#include "common/lockdep.hpp"

#if RT3_LOCKDEP

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace rt3::lockdep {
namespace {

/// Bookkeeping state.  Guarded by a RAW std::mutex on purpose: the
/// checker must not instrument its own lock (it nests inside every
/// instrumented acquisition, which would self-report).  lockdep.* is the
/// raw-mutex rule's whitelist in tools/rt3_lint.py for exactly this.
struct State {
  std::mutex mu;
  /// Interned lock classes; index = class id.  std::map keeps
  /// registration independent of pointer values.
  std::map<std::string, int> ids;
  std::vector<std::string> names;
  /// before[a] holds b iff some thread held a while acquiring b.
  std::vector<std::set<int>> before;
  /// For each recorded edge (a, b): the held stack at record time,
  /// rendered for reports ("A -> B [held: A]").
  std::map<std::pair<int, int>, std::string> edge_site;
  /// Edges already reported, so a non-aborting handler (tests) does not
  /// spam one report per re-occurrence.
  std::set<std::pair<int, int>> reported;
  Handler handler = nullptr;
};

State& state() {
  static State* s = new State();  // leaked: outlives all static mutexes
  return *s;
}

/// The calling thread's held lock-class stack, in acquisition order.
// rt3-lint: allow(raw-parallel) per-thread held-lock stack is the design
thread_local std::vector<int> t_held;

void default_handler(const char* report) {
  std::fprintf(stderr, "%s", report);
  std::abort();
}

/// True iff `to` is reachable from `from` in the acquired-before graph.
/// Iterative DFS; collects one witness path into `path` (class ids from
/// `from` to `to`) for the report.
bool reachable(const State& s, int from, int to, std::vector<int>& path) {
  std::vector<int> stack = {from};
  std::vector<int> parent(s.names.size(), -1);
  std::vector<bool> seen(s.names.size(), false);
  seen[static_cast<std::size_t>(from)] = true;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    if (node == to) {
      for (int at = to; at != -1; at = parent[static_cast<std::size_t>(at)]) {
        path.push_back(at);
      }
      for (std::size_t i = 0, j = path.size(); i + 1 < j; ++i) {
        std::swap(path[i], path[--j]);
      }
      return true;
    }
    for (const int next : s.before[static_cast<std::size_t>(node)]) {
      if (!seen[static_cast<std::size_t>(next)]) {
        seen[static_cast<std::size_t>(next)] = true;
        parent[static_cast<std::size_t>(next)] = node;
        stack.push_back(next);
      }
    }
  }
  return false;
}

std::string render_stack(const State& s, const std::vector<int>& held) {
  std::string out = "[";
  for (std::size_t i = 0; i < held.size(); ++i) {
    out += (i ? ", " : "") + s.names[static_cast<std::size_t>(held[i])];
  }
  return out + "]";
}

/// Builds the inversion report for acquiring `acquiring` while holding
/// `held_cls`, where the graph already orders `acquiring` before
/// `held_cls` along `path`.
std::string render_report(const State& s, int held_cls, int acquiring,
                          const std::vector<int>& path) {
  std::string out =
      "rt3 lockdep: lock-order inversion detected\n"
      "  this thread holds " +
      s.names[static_cast<std::size_t>(held_cls)] + " and is acquiring " +
      s.names[static_cast<std::size_t>(acquiring)] +
      "\n  held stack now: " + render_stack(s, t_held) +
      "\n  but the reverse order was already established:\n";
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto edge = std::make_pair(path[i], path[i + 1]);
    const auto it = s.edge_site.find(edge);
    out += "    " + s.names[static_cast<std::size_t>(path[i])] + " -> " +
           s.names[static_cast<std::size_t>(path[i + 1])] +
           (it != s.edge_site.end() ? "  (held stack then: " + it->second + ")"
                                    : "") +
           "\n";
  }
  out +=
      "  cycle: taking " + s.names[static_cast<std::size_t>(acquiring)] +
      " here closes " + s.names[static_cast<std::size_t>(acquiring)] +
      " -> ... -> " + s.names[static_cast<std::size_t>(held_cls)] + " -> " +
      s.names[static_cast<std::size_t>(acquiring)] + "\n";
  return out;
}

}  // namespace

int register_class(const char* name) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto [it, inserted] =
      s.ids.emplace(name, static_cast<int>(s.names.size()));
  if (inserted) {
    s.names.emplace_back(name);
    s.before.emplace_back();
  }
  return it->second;
}

void on_lock(int cls) {
  // Same class already held by this thread: with one lock class per
  // mutex name, nested same-class acquisition is either self-deadlock
  // (same instance) or an unordered peer pair (two instances) — both
  // banned.  Checked before blocking on the OS mutex.
  std::string report;
  Handler handler = nullptr;
  {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    handler = s.handler != nullptr ? s.handler : &default_handler;
    for (const int held : t_held) {
      if (held == cls) {
        report = "rt3 lockdep: recursive acquisition of lock class " +
                 s.names[static_cast<std::size_t>(cls)] +
                 " (self-deadlock or unordered same-class pair)\n" +
                 "  held stack now: " + render_stack(s, t_held) + "\n";
        break;
      }
      std::vector<int> path;
      if (s.before[static_cast<std::size_t>(cls)].count(held) != 0 ||
          reachable(s, cls, held, path)) {
        if (path.empty()) {
          path = {cls, held};
        }
        const auto edge = std::make_pair(held, cls);
        if (s.reported.insert(edge).second) {
          report = render_report(s, held, cls, path);
        }
        break;
      }
    }
    if (report.empty()) {
      for (const int held : t_held) {
        const auto edge = std::make_pair(held, cls);
        if (s.before[static_cast<std::size_t>(held)].insert(cls).second) {
          s.edge_site[edge] = render_stack(s, t_held);
        }
      }
    }
  }
  if (!report.empty()) {
    handler(report.c_str());  // default aborts; tests throw
    return;                   // throwing handlers skip the push
  }
  t_held.push_back(cls);
}

void on_try_lock(int cls) { t_held.push_back(cls); }

void on_unlock(int cls) {
  for (std::size_t i = t_held.size(); i > 0; --i) {
    if (t_held[i - 1] == cls) {
      t_held.erase(t_held.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
}

void set_handler(Handler handler) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.handler = handler;
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (auto& b : s.before) {
    b.clear();
  }
  s.edge_site.clear();
  s.reported.clear();
  t_held.clear();
}

int num_edges() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  int n = 0;
  for (const auto& b : s.before) {
    n += static_cast<int>(b.size());
  }
  return n;
}

}  // namespace rt3::lockdep

#endif  // RT3_LOCKDEP
