#!/usr/bin/env python3
"""CI perf-regression gate over bench_serve_traffic output.

Compares a candidate BENCH_serve.json against the committed baseline and
fails (exit 1) when any cell present in both files regresses beyond the
tolerance on deadline-miss rate or p99 latency.  Three grids are gated,
each cell against ITS OWN baseline cell (so the gate never punishes one
column for another's latency profile — EDF trades background p99 for
interactive misses by design):

    scenarios       -> {scenario  x policy}  single-model Server cells
    node_scenarios  -> {scenario  x models}  multi-model ServeNode cells
    overload        -> {burst     x admission}  edf-shed vs edf-admit

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json
        [--miss-tolerance 0.02] [--p99-tolerance 0.10]

--miss-tolerance is absolute (rate points): candidate miss_rate may
exceed baseline by at most this much.  --p99-tolerance is relative:
candidate p99_ms may exceed baseline * (1 + tolerance).  Both default to
a small headroom over bit-deterministic equality so the gate survives a
deliberate seed or toolchain change without being noisy.

Exit codes: 0 ok, 1 perf regression, 2 usage/format error.
"""

import argparse
import json
import sys


# Gated grids: top-level key -> {row -> {column -> cell}}.  "scenarios"
# is mandatory (the PR-3 contract); the others are gated when present in
# the baseline, so an old baseline still compares cleanly.
SECTIONS = ("scenarios", "node_scenarios", "overload")


def load_cells(path):
    """Returns {(section, row, column): {"miss_rate": x, "p99_ms": y}}.

    Format problems are collected across the WHOLE file and reported in
    one pass — one message per bad section/row/cell — so a mangled file
    surfaces every defect in a single CI run instead of one per rerun.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    errors = []
    if not isinstance(doc.get("scenarios"), dict) or not doc["scenarios"]:
        errors.append(f"{path} has no 'scenarios' object")
    cells = {}
    for section in SECTIONS:
        rows = doc.get(section)
        if rows is None:
            continue  # optional section absent
        if not isinstance(rows, dict):
            if section != "scenarios":  # scenarios already reported above
                errors.append(
                    f"section '{section}' in {path} is not an object")
            continue
        for row, columns in rows.items():
            if not isinstance(columns, dict):
                errors.append(
                    f"row '{section}/{row}' in {path} is not an object")
                continue
            for column, cell in columns.items():
                try:
                    cells[(section, row, column)] = {
                        "miss_rate": float(cell["miss_rate"]),
                        "p99_ms": float(cell["p99_ms"]),
                    }
                except (KeyError, TypeError, ValueError) as e:
                    errors.append(
                        f"bad cell {section}/{row}/{column} in {path}: "
                        f"{e!r}")
    if errors:
        for e in errors:
            print(f"bench_compare: {e}", file=sys.stderr)
        print(f"bench_compare: {len(errors)} format problem(s) in {path}",
              file=sys.stderr)
        sys.exit(2)
    return cells


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--miss-tolerance", type=float, default=0.02,
                        help="absolute miss-rate headroom (default 0.02)")
    parser.add_argument("--p99-tolerance", type=float, default=0.10,
                        help="relative p99 headroom (default 0.10)")
    args = parser.parse_args()

    base = load_cells(args.baseline)
    cand = load_cells(args.candidate)

    shared = sorted(set(base) & set(cand))
    if not shared:
        print("bench_compare: no (scenario, policy) cells in common",
              file=sys.stderr)
        sys.exit(2)
    # Report EVERY missing and extra cell in one pass (one line each) so a
    # renamed grid surfaces completely in a single CI run.  Missing cells
    # are a gate hole — fatal.  Extra candidate-only cells are expected
    # when a PR adds a grid before regenerating the baseline, so they only
    # warn.
    missing = sorted(set(base) - set(cand))
    for section, row, column in missing:
        print(f"  [missing] {section:14s} {row:8s} {column:9s} "
              f"in baseline but not candidate", file=sys.stderr)
    extra = sorted(set(cand) - set(base))
    for section, row, column in extra:
        print(f"  [extra]   {section:14s} {row:8s} {column:9s} "
              f"in candidate but not baseline (not gated)")
    if missing:
        print(f"\nbench_compare: candidate is missing {len(missing)} "
              f"baseline cell(s)", file=sys.stderr)
        sys.exit(2)

    failures = []
    for key in shared:
        section, row, column = key
        b, c = base[key], cand[key]
        miss_limit = b["miss_rate"] + args.miss_tolerance
        p99_limit = b["p99_ms"] * (1.0 + args.p99_tolerance)
        verdicts = []
        if c["miss_rate"] > miss_limit:
            verdicts.append(
                f"miss_rate {c['miss_rate']:.4f} > limit {miss_limit:.4f} "
                f"(baseline {b['miss_rate']:.4f})")
        if c["p99_ms"] > p99_limit:
            verdicts.append(
                f"p99 {c['p99_ms']:.1f} ms > limit {p99_limit:.1f} ms "
                f"(baseline {b['p99_ms']:.1f} ms)")
        status = "FAIL" if verdicts else "ok"
        detail = "; ".join(verdicts) if verdicts else (
            f"miss {c['miss_rate']:.4f} (≤ {miss_limit:.4f}), "
            f"p99 {c['p99_ms']:.1f} ms (≤ {p99_limit:.1f} ms)")
        print(f"  [{status}] {section:14s} {row:8s} {column:9s} {detail}")
        if verdicts:
            failures.append((key, verdicts))

    if failures:
        print(f"\nbench_compare: {len(failures)} cell(s) regressed beyond "
              f"tolerance", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_compare: all {len(shared)} cells within tolerance")


if __name__ == "__main__":
    main()
