#include "exec/backend.hpp"

#include "common/check.hpp"

namespace rt3 {

ExecutionBackend::~ExecutionBackend() = default;

const char* exec_backend_name(ExecBackendKind kind) {
  switch (kind) {
    case ExecBackendKind::kAnalytic:
      return "analytic";
    case ExecBackendKind::kMeasured:
      return "measured";
  }
  throw CheckError("exec_backend_name: unknown kind");
}

ExecBackendKind exec_backend_from_name(const std::string& name) {
  if (name == "analytic") {
    return ExecBackendKind::kAnalytic;
  }
  if (name == "measured") {
    return ExecBackendKind::kMeasured;
  }
  throw CheckError("exec_backend_from_name: unknown backend '" + name +
                   "' (expected analytic|measured)");
}

}  // namespace rt3
