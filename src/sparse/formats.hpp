// Classic sparse matrix formats (COO, CSR) with byte-level storage
// accounting.
//
// The paper's Challenge 1 argues that irregular pruning stored as COO
// needs three vectors (row, col, data) and therefore pays a large index
// overhead, while block-structured pruning only stores per-block kept
// row/column indices.  These classes make that argument executable:
// every format reports storage_bytes() and implements the same
// multiply-by-dense operation so the trade-off is testable.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace rt3 {

/// Coordinate format: one (row, col, value) triple per nonzero.
class CooMatrix {
 public:
  CooMatrix(std::int64_t rows, std::int64_t cols);

  static CooMatrix from_dense(const Tensor& dense);
  Tensor to_dense() const;

  void add_entry(std::int64_t row, std::int64_t col, float value);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }
  double sparsity() const;

  /// this [R,C] x dense [C,N] -> [R,N].
  Tensor multiply(const Tensor& dense) const;

  /// 4 B value + 4 B row index + 4 B col index per nonzero (paper's three
  /// vectors: row, col, data).
  std::int64_t storage_bytes() const;

  const std::vector<std::int64_t>& row_indices() const { return row_idx_; }
  const std::vector<std::int64_t>& col_indices() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  std::vector<std::int64_t> row_idx_;
  std::vector<std::int64_t> col_idx_;
  std::vector<float> values_;
};

/// Compressed sparse row format.
class CsrMatrix {
 public:
  CsrMatrix(std::int64_t rows, std::int64_t cols);

  static CsrMatrix from_dense(const Tensor& dense);
  static CsrMatrix from_coo(const CooMatrix& coo);
  Tensor to_dense() const;

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(values_.size()); }
  double sparsity() const;

  Tensor multiply(const Tensor& dense) const;

  /// 4 B per value + 4 B per col index + 4 B per row pointer.
  std::int64_t storage_bytes() const;

  const std::vector<std::int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::int64_t>& col_indices() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  std::vector<std::int64_t> row_ptr_;
  std::vector<std::int64_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace rt3
