// Software-only reconfiguration: the paper's intro scenario of "local
// language translation for on-line interactive events with a fluctuating
// network bandwidth".
//
// The device stays at one V/F level, but the per-request deadline moves
// with network conditions (tight deadline when the link is slow and the
// local model must answer fast).  RT3 switches pattern sets to track the
// deadline — demonstrating that run-time reconfigurability is not tied to
// DVFS.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "runtime/engine.hpp"

int main() {
  using namespace rt3;
  std::cout << "RT3 translation-stream demo (software reconfiguration only)\n"
            << "============================================================\n";

  // Train a small LM to act as the on-device translator stand-in.
  CorpusConfig corpus_cfg;
  corpus_cfg.vocab_size = 64;
  corpus_cfg.num_tokens = 8000;
  const Corpus corpus(corpus_cfg);
  TransformerLmConfig model_cfg;
  model_cfg.vocab_size = 64;
  model_cfg.d_model = 32;
  model_cfg.num_heads = 4;
  model_cfg.ffn_hidden = 64;
  TransformerLm model(model_cfg);
  TrainConfig pre;
  pre.steps = 160;
  pre.batch = 12;
  pre.seq_len = 16;
  pre.lr = 8e-3F;
  train_lm(model, corpus, pre);

  ModelPruner pruner(model.prunable());
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.35;
  pruner.apply_bp(bp);
  TrainConfig recover = pre;
  recover.steps = 60;
  train_lm(model, corpus, recover);

  // Three pattern sets: relaxed / normal / tight deadlines.
  Rng rng(3);
  std::vector<PatternSet> sets;
  for (double s : {0.3, 0.6, 0.85}) {
    sets.push_back(pattern_set_from_layers(pruner.layers(), 8, s, 4, rng));
  }
  joint_train_lm(model, pruner, sets, corpus, recover);

  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel latency;
  latency.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);
  ReconfigEngine engine(pruner, sets, SwitchCostModel(), spec, 100);

  // Device pinned at N-mode (l4, 1000 MHz); the deadline fluctuates.
  const double freq = 1000.0;
  Rng net(17);
  double bandwidth_mbps = 12.0;

  // Per-level composed sparsities, measured once up front (sparsity_at
  // switches the engine, so don't call it inside the selection loop).
  std::vector<double> level_sparsity;
  for (std::int64_t i = 0; i < engine.num_levels(); ++i) {
    level_sparsity.push_back(engine.sparsity_at(i));
  }

  TablePrinter t({"t(s)", "bandwidth", "deadline", "set", "sparsity",
                  "latency", "on time", "switch"});
  std::int64_t switches = 0;
  for (int tick = 0; tick < 12; ++tick) {
    // Random-walk bandwidth: slow link -> tighter local deadline.
    bandwidth_mbps =
        std::clamp(bandwidth_mbps + net.normal(0.0, 4.0), 1.0, 24.0);
    const double deadline_ms = 60.0 + bandwidth_mbps * 8.0;

    // Pick the densest set that meets the deadline at this frequency.
    std::int64_t choice = engine.num_levels() - 1;
    for (std::int64_t i = 0; i < engine.num_levels(); ++i) {
      const double s = level_sparsity[static_cast<std::size_t>(i)];
      if (latency.latency_ms(spec, s, ExecMode::kPattern, freq) <=
          deadline_ms) {
        choice = i;
        break;
      }
    }
    const SwitchReport report = engine.switch_to(choice);
    switches += (report.from_level != report.to_level &&
                 report.from_level >= 0)
                    ? 1
                    : 0;
    const double s = pruner.overall_sparsity();
    const double lat = latency.latency_ms(spec, s, ExecMode::kPattern, freq);
    t.add_row({std::to_string(tick), fmt_f(bandwidth_mbps, 1) + " Mbps",
               fmt_f(deadline_ms, 0) + " ms", std::to_string(choice),
               fmt_pct(s), fmt_f(lat, 1) + " ms",
               lat <= deadline_ms ? "Y" : "N",
               report.from_level != report.to_level && report.from_level >= 0
                   ? fmt_f(report.modeled_ms, 1) + " ms"
                   : "-"});
  }
  std::cout << "\n" << t.str();
  std::cout << "\n" << switches
            << " pattern-set switches tracked the fluctuating deadline with "
               "no DVFS change and no model reload — the generalization the "
               "paper's introduction calls out.\n";
  return 0;
}
