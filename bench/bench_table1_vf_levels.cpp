// Reproduces paper Table I: the voltage/frequency ladder of the ARM
// Cortex-A7 core in the Odroid-XU3, extended with the power model's draw
// per level and the resulting energy-per-megacycle (the quantity DVFS
// exploits).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "dvfs/dvfs.hpp"

int main() {
  using namespace rt3;
  bench::print_header("Table I - Voltage/Frequency levels (Odroid-XU3, A7)",
                      "paper Table I, verbatim ladder + derived power");

  const VfTable table = VfTable::odroid_xu3_a7();
  const PowerModel power;

  TablePrinter t({"Notation", "freq (MHz)", "vol (mV)", "P (mW, model)",
                  "mJ per Mcycle"});
  for (std::int64_t i = 0; i < table.size(); ++i) {
    const VfLevel& l = table.level(i);
    const double p = power.power_mw(l);
    // Energy to execute one megacycle of work at this level.
    const double mj_per_mcycle = p / l.freq_mhz / 1000.0;
    t.add_row({l.name, fmt_f(l.freq_mhz, 0), fmt_f(l.volt_mv, 2),
               fmt_f(p, 1), fmt_f(mj_per_mcycle * 1000.0, 3)});
  }
  std::cout << t.str();

  std::cout << "\nPaper Table I values: l1=400MHz/916.25mV ... "
               "l6=1400MHz/1240mV (exact match by construction).\n"
            << "Energy-per-cycle falls toward lower levels across the "
               "paper's evaluation range {l3,l4,l6}; that gap is what the "
               "paper's DVFS reconfiguration converts into extra runs.\n";
  return 0;
}
