#include "sparse/formats.hpp"

#include "common/check.hpp"

namespace rt3 {

CooMatrix::CooMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols) {
  check(rows > 0 && cols > 0, "CooMatrix: bad dimensions");
}

CooMatrix CooMatrix::from_dense(const Tensor& dense) {
  check(dense.dim() == 2, "CooMatrix::from_dense: need 2-D");
  CooMatrix out(dense.size(0), dense.size(1));
  for (std::int64_t i = 0; i < dense.size(0); ++i) {
    for (std::int64_t j = 0; j < dense.size(1); ++j) {
      const float v = dense[i * dense.size(1) + j];
      if (v != 0.0F) {
        out.add_entry(i, j, v);
      }
    }
  }
  return out;
}

Tensor CooMatrix::to_dense() const {
  Tensor out({rows_, cols_});
  for (std::size_t k = 0; k < values_.size(); ++k) {
    out[row_idx_[k] * cols_ + col_idx_[k]] = values_[k];
  }
  return out;
}

void CooMatrix::add_entry(std::int64_t row, std::int64_t col, float value) {
  check(row >= 0 && row < rows_ && col >= 0 && col < cols_,
        "CooMatrix::add_entry: out of range");
  row_idx_.push_back(row);
  col_idx_.push_back(col);
  values_.push_back(value);
}

double CooMatrix::sparsity() const {
  return 1.0 - static_cast<double>(nnz()) /
                   static_cast<double>(rows_ * cols_);
}

Tensor CooMatrix::multiply(const Tensor& dense) const {
  check(dense.dim() == 2 && dense.size(0) == cols_,
        "CooMatrix::multiply: shape mismatch");
  const std::int64_t n = dense.size(1);
  Tensor out({rows_, n});
  for (std::size_t k = 0; k < values_.size(); ++k) {
    const float v = values_[k];
    const float* brow = dense.data() + col_idx_[k] * n;
    float* orow = out.data() + row_idx_[k] * n;
    for (std::int64_t j = 0; j < n; ++j) {
      orow[j] += v * brow[j];
    }
  }
  return out;
}

std::int64_t CooMatrix::storage_bytes() const { return nnz() * (4 + 4 + 4); }

CsrMatrix::CsrMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols), row_ptr_(static_cast<std::size_t>(rows) + 1, 0) {
  check(rows > 0 && cols > 0, "CsrMatrix: bad dimensions");
}

CsrMatrix CsrMatrix::from_dense(const Tensor& dense) {
  check(dense.dim() == 2, "CsrMatrix::from_dense: need 2-D");
  CsrMatrix out(dense.size(0), dense.size(1));
  for (std::int64_t i = 0; i < dense.size(0); ++i) {
    for (std::int64_t j = 0; j < dense.size(1); ++j) {
      const float v = dense[i * dense.size(1) + j];
      if (v != 0.0F) {
        out.col_idx_.push_back(j);
        out.values_.push_back(v);
      }
    }
    out.row_ptr_[static_cast<std::size_t>(i) + 1] =
        static_cast<std::int64_t>(out.values_.size());
  }
  return out;
}

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo) {
  // COO entries from from_dense are already row-major sorted; handle the
  // general case by counting then placing.
  CsrMatrix out(coo.rows(), coo.cols());
  const auto& ri = coo.row_indices();
  const auto& ci = coo.col_indices();
  const auto& vs = coo.values();
  for (std::size_t k = 0; k < vs.size(); ++k) {
    ++out.row_ptr_[static_cast<std::size_t>(ri[k]) + 1];
  }
  for (std::size_t i = 1; i < out.row_ptr_.size(); ++i) {
    out.row_ptr_[i] += out.row_ptr_[i - 1];
  }
  out.col_idx_.resize(vs.size());
  out.values_.resize(vs.size());
  std::vector<std::int64_t> cursor(out.row_ptr_.begin(),
                                   out.row_ptr_.end() - 1);
  for (std::size_t k = 0; k < vs.size(); ++k) {
    const std::int64_t pos = cursor[static_cast<std::size_t>(ri[k])]++;
    out.col_idx_[static_cast<std::size_t>(pos)] = ci[k];
    out.values_[static_cast<std::size_t>(pos)] = vs[k];
  }
  return out;
}

Tensor CsrMatrix::to_dense() const {
  Tensor out({rows_, cols_});
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      out[i * cols_ + col_idx_[static_cast<std::size_t>(k)]] =
          values_[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

double CsrMatrix::sparsity() const {
  return 1.0 - static_cast<double>(nnz()) /
                   static_cast<double>(rows_ * cols_);
}

Tensor CsrMatrix::multiply(const Tensor& dense) const {
  check(dense.dim() == 2 && dense.size(0) == cols_,
        "CsrMatrix::multiply: shape mismatch");
  const std::int64_t n = dense.size(1);
  Tensor out({rows_, n});
  for (std::int64_t i = 0; i < rows_; ++i) {
    float* orow = out.data() + i * n;
    for (std::int64_t k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const float v = values_[static_cast<std::size_t>(k)];
      const float* brow =
          dense.data() + col_idx_[static_cast<std::size_t>(k)] * n;
      for (std::int64_t j = 0; j < n; ++j) {
        orow[j] += v * brow[j];
      }
    }
  }
  return out;
}

std::int64_t CsrMatrix::storage_bytes() const {
  return nnz() * (4 + 4) +
         static_cast<std::int64_t>(row_ptr_.size()) * 4;
}

}  // namespace rt3
