// Basic arithmetic, matrix and reduction ops on Var.
#include <cmath>

#include "common/check.hpp"
#include "tensor/var.hpp"

namespace rt3 {

namespace {

enum class Bcast { kSame, kScalar, kLastDim };

Bcast bcast_kind(const Shape& a, const Shape& b) {
  if (a == b) {
    return Bcast::kSame;
  }
  if (Tensor::volume(b) == 1) {
    return Bcast::kScalar;
  }
  if (b.size() == 1 && !a.empty() && b[0] == a.back()) {
    return Bcast::kLastDim;
  }
  throw CheckError("broadcast: unsupported shape combination");
}

// Materializes b broadcast to the shape of `like`.
Tensor broadcast_to(const Tensor& b, const Shape& target, Bcast kind) {
  switch (kind) {
    case Bcast::kSame:
      return b;
    case Bcast::kScalar:
      return Tensor::full(target, b[0]);
    case Bcast::kLastDim: {
      Tensor out(target);
      const std::int64_t last = target.back();
      const std::int64_t rows = out.numel() / last;
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t j = 0; j < last; ++j) {
          out[r * last + j] = b[j];
        }
      }
      return out;
    }
  }
  throw CheckError("broadcast: unreachable");
}

// Reduces a gradient of broadcast shape back to b's original shape.
Tensor reduce_from(const Tensor& g, const Shape& b_shape, Bcast kind) {
  switch (kind) {
    case Bcast::kSame:
      return g;
    case Bcast::kScalar: {
      Tensor out(b_shape);
      out[0] = g.sum();
      return out;
    }
    case Bcast::kLastDim: {
      Tensor out(b_shape);
      const std::int64_t last = b_shape[0];
      const std::int64_t rows = g.numel() / last;
      for (std::int64_t r = 0; r < rows; ++r) {
        for (std::int64_t j = 0; j < last; ++j) {
          out[j] += g[r * last + j];
        }
      }
      return out;
    }
  }
  throw CheckError("broadcast: unreachable");
}

Tensor pointwise(const Tensor& a, float (*fn)(float)) {
  Tensor out = a;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] = fn(out[i]);
  }
  return out;
}

}  // namespace

Var add(const Var& a, const Var& b) {
  const Bcast kind = bcast_kind(a.shape(), b.shape());
  Tensor out = a.value();
  out.add_(broadcast_to(b.value(), a.shape(), kind));
  const Shape b_shape = b.shape();
  return Var::make_op(std::move(out), {a, b},
                      [kind, b_shape](const Tensor& g, std::vector<Var>& ps) {
                        ps[0].accumulate_grad(g);
                        ps[1].accumulate_grad(reduce_from(g, b_shape, kind));
                      });
}

Var sub(const Var& a, const Var& b) {
  const Bcast kind = bcast_kind(a.shape(), b.shape());
  Tensor out = a.value();
  out.add_scaled_(broadcast_to(b.value(), a.shape(), kind), -1.0F);
  const Shape b_shape = b.shape();
  return Var::make_op(std::move(out), {a, b},
                      [kind, b_shape](const Tensor& g, std::vector<Var>& ps) {
                        ps[0].accumulate_grad(g);
                        Tensor gb = reduce_from(g, b_shape, kind);
                        gb.scale_(-1.0F);
                        ps[1].accumulate_grad(gb);
                      });
}

Var mul(const Var& a, const Var& b) {
  const Bcast kind = bcast_kind(a.shape(), b.shape());
  const Tensor bb = broadcast_to(b.value(), a.shape(), kind);
  Tensor out = mul(a.value(), bb);
  const Shape b_shape = b.shape();
  const Tensor a_val = a.value();
  return Var::make_op(
      std::move(out), {a, b},
      [kind, b_shape, bb, a_val](const Tensor& g, std::vector<Var>& ps) {
        ps[0].accumulate_grad(mul(g, bb));
        ps[1].accumulate_grad(reduce_from(mul(g, a_val), b_shape, kind));
      });
}

Var neg(const Var& a) { return scale(a, -1.0F); }

Var scale(const Var& a, float factor) {
  Tensor out = a.value();
  out.scale_(factor);
  return Var::make_op(std::move(out), {a},
                      [factor](const Tensor& g, std::vector<Var>& ps) {
                        Tensor ga = g;
                        ga.scale_(factor);
                        ps[0].accumulate_grad(ga);
                      });
}

Var add_scalar(const Var& a, float constant) {
  Tensor out = a.value();
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] += constant;
  }
  return Var::make_op(std::move(out), {a},
                      [](const Tensor& g, std::vector<Var>& ps) {
                        ps[0].accumulate_grad(g);
                      });
}

Var mul_const(const Var& a, const Tensor& mask) {
  check(mask.shape() == a.shape(), "mul_const: mask shape mismatch");
  Tensor out = mul(a.value(), mask);
  const Tensor mask_copy = mask;
  return Var::make_op(std::move(out), {a},
                      [mask_copy](const Tensor& g, std::vector<Var>& ps) {
                        ps[0].accumulate_grad(mul(g, mask_copy));
                      });
}

Var add_const(const Var& a, const Tensor& bias) {
  check(bias.shape() == a.shape(), "add_const: bias shape mismatch");
  Tensor out = a.value();
  out.add_(bias);
  return Var::make_op(std::move(out), {a},
                      [](const Tensor& g, std::vector<Var>& ps) {
                        ps[0].accumulate_grad(g);
                      });
}

Var matmul(const Var& a, const Var& b) {
  Tensor out = matmul2d(a.value(), b.value());
  const Tensor a_val = a.value();
  const Tensor b_val = b.value();
  return Var::make_op(
      std::move(out), {a, b},
      [a_val, b_val](const Tensor& g, std::vector<Var>& ps) {
        ps[0].accumulate_grad(matmul2d(g, transpose2d(b_val)));
        ps[1].accumulate_grad(matmul2d(transpose2d(a_val), g));
      });
}

namespace {

// Batched [B,M,K] x [B,K,N] -> [B,M,N] on raw tensors.
Tensor bmm_raw(const Tensor& a, const Tensor& b) {
  check(a.dim() == 3 && b.dim() == 3, "bmm: need 3-D operands");
  const std::int64_t batch = a.size(0);
  const std::int64_t m = a.size(1);
  const std::int64_t k = a.size(2);
  const std::int64_t n = b.size(2);
  check(b.size(0) == batch && b.size(1) == k, "bmm: shape mismatch");
  Tensor out({batch, m, n});
  for (std::int64_t bt = 0; bt < batch; ++bt) {
    const float* pa = a.data() + bt * m * k;
    const float* pb = b.data() + bt * k * n;
    float* po = out.data() + bt * m * n;
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float aik = pa[i * k + kk];
        if (aik == 0.0F) {
          continue;
        }
        for (std::int64_t j = 0; j < n; ++j) {
          po[i * n + j] += aik * pb[kk * n + j];
        }
      }
    }
  }
  return out;
}

Tensor transpose_last2_raw(const Tensor& a) {
  check(a.dim() == 2 || a.dim() == 3, "transpose_last2: need 2-D or 3-D");
  if (a.dim() == 2) {
    return transpose2d(a);
  }
  const std::int64_t batch = a.size(0);
  const std::int64_t m = a.size(1);
  const std::int64_t n = a.size(2);
  Tensor out({batch, n, m});
  for (std::int64_t bt = 0; bt < batch; ++bt) {
    const float* pa = a.data() + bt * m * n;
    float* po = out.data() + bt * n * m;
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        po[j * m + i] = pa[i * n + j];
      }
    }
  }
  return out;
}

}  // namespace

Var bmm(const Var& a, const Var& b) {
  Tensor out = bmm_raw(a.value(), b.value());
  const Tensor a_val = a.value();
  const Tensor b_val = b.value();
  return Var::make_op(
      std::move(out), {a, b},
      [a_val, b_val](const Tensor& g, std::vector<Var>& ps) {
        ps[0].accumulate_grad(bmm_raw(g, transpose_last2_raw(b_val)));
        ps[1].accumulate_grad(bmm_raw(transpose_last2_raw(a_val), g));
      });
}

Var transpose_last2(const Var& a) {
  Tensor out = transpose_last2_raw(a.value());
  return Var::make_op(std::move(out), {a},
                      [](const Tensor& g, std::vector<Var>& ps) {
                        ps[0].accumulate_grad(transpose_last2_raw(g));
                      });
}

namespace {

Tensor permute_raw(const Tensor& a, const std::vector<std::int64_t>& axes) {
  const std::int64_t nd = a.dim();
  check(static_cast<std::int64_t>(axes.size()) == nd,
        "permute: axes arity mismatch");
  Shape new_shape(static_cast<std::size_t>(nd));
  for (std::int64_t d = 0; d < nd; ++d) {
    new_shape[static_cast<std::size_t>(d)] = a.size(axes[static_cast<std::size_t>(d)]);
  }
  Tensor out(new_shape);
  // Strides of the input.
  std::vector<std::int64_t> in_strides(static_cast<std::size_t>(nd), 1);
  for (std::int64_t d = nd - 2; d >= 0; --d) {
    in_strides[static_cast<std::size_t>(d)] =
        in_strides[static_cast<std::size_t>(d + 1)] * a.size(d + 1);
  }
  std::vector<std::int64_t> idx(static_cast<std::size_t>(nd), 0);
  for (std::int64_t flat = 0; flat < out.numel(); ++flat) {
    std::int64_t src = 0;
    for (std::int64_t d = 0; d < nd; ++d) {
      src += idx[static_cast<std::size_t>(d)] *
             in_strides[static_cast<std::size_t>(axes[static_cast<std::size_t>(d)])];
    }
    out[flat] = a[src];
    // Increment the multi-index over the OUTPUT shape.
    for (std::int64_t d = nd - 1; d >= 0; --d) {
      auto& id = idx[static_cast<std::size_t>(d)];
      if (++id < new_shape[static_cast<std::size_t>(d)]) {
        break;
      }
      id = 0;
    }
  }
  return out;
}

std::vector<std::int64_t> inverse_axes(const std::vector<std::int64_t>& axes) {
  std::vector<std::int64_t> inv(axes.size());
  for (std::size_t i = 0; i < axes.size(); ++i) {
    inv[static_cast<std::size_t>(axes[i])] = static_cast<std::int64_t>(i);
  }
  return inv;
}

}  // namespace

Var permute(const Var& a, const std::vector<std::int64_t>& axes) {
  Tensor out = permute_raw(a.value(), axes);
  const auto inv = inverse_axes(axes);
  return Var::make_op(std::move(out), {a},
                      [inv](const Tensor& g, std::vector<Var>& ps) {
                        ps[0].accumulate_grad(permute_raw(g, inv));
                      });
}

Var reshape(const Var& a, Shape new_shape) {
  const Shape old_shape = a.shape();
  Tensor out = a.value().reshaped(std::move(new_shape));
  return Var::make_op(std::move(out), {a},
                      [old_shape](const Tensor& g, std::vector<Var>& ps) {
                        ps[0].accumulate_grad(g.reshaped(old_shape));
                      });
}

Var concat_rows(const std::vector<Var>& parts) {
  check(!parts.empty(), "concat_rows: empty input");
  Shape tail = parts[0].shape();
  check(!tail.empty(), "concat_rows: need at least 1-D parts");
  std::int64_t rows = 0;
  std::int64_t row_elems = 1;
  for (std::size_t d = 1; d < tail.size(); ++d) {
    row_elems *= tail[d];
  }
  for (const auto& p : parts) {
    Shape s = p.shape();
    check(s.size() == tail.size(), "concat_rows: rank mismatch");
    for (std::size_t d = 1; d < tail.size(); ++d) {
      check(s[d] == tail[d], "concat_rows: trailing shape mismatch");
    }
    rows += s[0];
  }
  Shape out_shape = tail;
  out_shape[0] = rows;
  Tensor out(out_shape);
  std::int64_t offset = 0;
  std::vector<std::int64_t> part_offsets;
  std::vector<std::int64_t> part_sizes;
  for (const auto& p : parts) {
    const std::int64_t n = p.numel();
    part_offsets.push_back(offset);
    part_sizes.push_back(n);
    for (std::int64_t i = 0; i < n; ++i) {
      out[offset + i] = p.value()[i];
    }
    offset += n;
  }
  (void)row_elems;
  return Var::make_op(
      std::move(out), parts,
      [part_offsets, part_sizes](const Tensor& g, std::vector<Var>& ps) {
        for (std::size_t k = 0; k < ps.size(); ++k) {
          Tensor gk(ps[k].shape());
          for (std::int64_t i = 0; i < part_sizes[k]; ++i) {
            gk[i] = g[part_offsets[k] + i];
          }
          ps[k].accumulate_grad(gk);
        }
      });
}

Var relu(const Var& a) {
  Tensor out = pointwise(a.value(), [](float x) { return x > 0.0F ? x : 0.0F; });
  const Tensor a_val = a.value();
  return Var::make_op(std::move(out), {a},
                      [a_val](const Tensor& g, std::vector<Var>& ps) {
                        Tensor ga = g;
                        for (std::int64_t i = 0; i < ga.numel(); ++i) {
                          ga[i] = a_val[i] > 0.0F ? ga[i] : 0.0F;
                        }
                        ps[0].accumulate_grad(ga);
                      });
}

Var gelu(const Var& a) {
  const Tensor a_val = a.value();
  Tensor out = pointwise(a.value(), [](float x) {
    return 0.5F * x * (1.0F + std::erf(x * 0.70710678F));
  });
  return Var::make_op(
      std::move(out), {a},
      [a_val](const Tensor& g, std::vector<Var>& ps) {
        Tensor ga = g;
        for (std::int64_t i = 0; i < ga.numel(); ++i) {
          const float x = a_val[i];
          const float cdf = 0.5F * (1.0F + std::erf(x * 0.70710678F));
          const float pdf = 0.3989422804F * std::exp(-0.5F * x * x);
          ga[i] *= cdf + x * pdf;
        }
        ps[0].accumulate_grad(ga);
      });
}

Var tanh_v(const Var& a) {
  Tensor out = pointwise(a.value(), [](float x) { return std::tanh(x); });
  const Tensor out_val = out;
  return Var::make_op(std::move(out), {a},
                      [out_val](const Tensor& g, std::vector<Var>& ps) {
                        Tensor ga = g;
                        for (std::int64_t i = 0; i < ga.numel(); ++i) {
                          ga[i] *= 1.0F - out_val[i] * out_val[i];
                        }
                        ps[0].accumulate_grad(ga);
                      });
}

Var sigmoid(const Var& a) {
  Tensor out = pointwise(a.value(), [](float x) {
    return 1.0F / (1.0F + std::exp(-x));
  });
  const Tensor out_val = out;
  return Var::make_op(std::move(out), {a},
                      [out_val](const Tensor& g, std::vector<Var>& ps) {
                        Tensor ga = g;
                        for (std::int64_t i = 0; i < ga.numel(); ++i) {
                          ga[i] *= out_val[i] * (1.0F - out_val[i]);
                        }
                        ps[0].accumulate_grad(ga);
                      });
}

Var exp_v(const Var& a) {
  Tensor out = pointwise(a.value(), [](float x) { return std::exp(x); });
  const Tensor out_val = out;
  return Var::make_op(std::move(out), {a},
                      [out_val](const Tensor& g, std::vector<Var>& ps) {
                        ps[0].accumulate_grad(mul(g, out_val));
                      });
}

Var log_v(const Var& a) {
  const Tensor a_val = a.value();
  Tensor out = pointwise(a.value(), [](float x) { return std::log(x); });
  return Var::make_op(std::move(out), {a},
                      [a_val](const Tensor& g, std::vector<Var>& ps) {
                        Tensor ga = g;
                        for (std::int64_t i = 0; i < ga.numel(); ++i) {
                          ga[i] /= a_val[i];
                        }
                        ps[0].accumulate_grad(ga);
                      });
}

Var sum_all(const Var& a) {
  Tensor out = Tensor::scalar(a.value().sum());
  const Shape in_shape = a.shape();
  return Var::make_op(std::move(out), {a},
                      [in_shape](const Tensor& g, std::vector<Var>& ps) {
                        ps[0].accumulate_grad(Tensor::full(in_shape, g[0]));
                      });
}

Var mean_all(const Var& a) {
  const float inv_n = 1.0F / static_cast<float>(a.numel());
  Tensor out = Tensor::scalar(a.value().sum() * inv_n);
  const Shape in_shape = a.shape();
  return Var::make_op(
      std::move(out), {a},
      [in_shape, inv_n](const Tensor& g, std::vector<Var>& ps) {
        ps[0].accumulate_grad(Tensor::full(in_shape, g[0] * inv_n));
      });
}

}  // namespace rt3
