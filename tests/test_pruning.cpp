// Tests for Level-1 block pruning (Algorithm 1), the group-lasso
// regularizer, Level-2 pattern construction, and model-level composition.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "nn/linear.hpp"
#include "pruning/block_prune.hpp"
#include "pruning/model_pruner.hpp"
#include "pruning/pattern_prune.hpp"
#include "tensor/gradcheck.hpp"

namespace rt3 {
namespace {

TEST(BlockPrune, PercentilePrunesRequestedFraction) {
  Rng rng(1);
  const Tensor w = Tensor::randn({8, 10}, rng);
  BpConfig cfg;
  cfg.num_blocks = 2;
  cfg.mode = BpConfig::Mode::kPercentile;
  cfg.prune_fraction = 0.5;
  const Tensor mask = bp_mask(w, cfg);
  EXPECT_NEAR(mask.sparsity(), 0.5, 1e-9);
}

TEST(BlockPrune, ThresholdPrunesWeakColumns) {
  // Build a matrix with two strong and two ~zero columns per block.
  Tensor w({4, 4});
  for (std::int64_t r = 0; r < 4; ++r) {
    w[r * 4 + 0] = 1.0F;
    w[r * 4 + 1] = 1e-4F;
    w[r * 4 + 2] = 2.0F;
    w[r * 4 + 3] = 1e-4F;
  }
  BpConfig cfg;
  cfg.num_blocks = 2;
  cfg.mode = BpConfig::Mode::kThreshold;
  cfg.threshold = 0.01;
  const Tensor mask = bp_mask(w, cfg);
  for (std::int64_t r = 0; r < 4; ++r) {
    EXPECT_FLOAT_EQ(mask[r * 4 + 0], 1.0F);
    EXPECT_FLOAT_EQ(mask[r * 4 + 1], 0.0F);
    EXPECT_FLOAT_EQ(mask[r * 4 + 2], 1.0F);
    EXPECT_FLOAT_EQ(mask[r * 4 + 3], 0.0F);
  }
}

TEST(BlockPrune, MaskIsBlockStructured) {
  // Within a block, a pruned column must be entirely zero.
  Rng rng(2);
  const Tensor w = Tensor::randn({12, 6}, rng);
  BpConfig cfg;
  cfg.num_blocks = 3;
  cfg.prune_fraction = 0.5;
  const Tensor mask = bp_mask(w, cfg);
  const std::int64_t block_rows = 4;
  for (std::int64_t b = 0; b < 3; ++b) {
    for (std::int64_t c = 0; c < 6; ++c) {
      const float first = mask[b * block_rows * 6 + c];
      for (std::int64_t r = 1; r < block_rows; ++r) {
        EXPECT_FLOAT_EQ(mask[(b * block_rows + r) * 6 + c], first)
            << "column " << c << " of block " << b << " is ragged";
      }
    }
  }
}

TEST(BlockPrune, KeepsStrongestColumns) {
  // Column strength increases with index; percentile pruning must drop the
  // low-index columns.
  Tensor w({4, 6});
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 6; ++c) {
      w[r * 6 + c] = static_cast<float>(c + 1);
    }
  }
  BpConfig cfg;
  cfg.num_blocks = 1;
  cfg.prune_fraction = 0.5;
  const Tensor mask = bp_mask(w, cfg);
  for (std::int64_t c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(mask[c], 0.0F);
  }
  for (std::int64_t c = 3; c < 6; ++c) {
    EXPECT_FLOAT_EQ(mask[c], 1.0F);
  }
}

TEST(BlockPrune, RandomBaselineMatchesCounts) {
  Rng rng(3);
  const Tensor w = Tensor::randn({8, 10}, rng);
  BpConfig cfg;
  cfg.num_blocks = 2;
  cfg.prune_fraction = 0.4;
  const Tensor bp = bp_mask(w, cfg);
  const Tensor rbp = rbp_mask(w, cfg, rng);
  EXPECT_NEAR(bp.sparsity(), rbp.sparsity(), 1e-9);
}

TEST(BlockPrune, RandomBaselineLosesMoreEnergy) {
  // BP keeps the highest-norm columns, so retained weight energy must be
  // at least that of random pruning (the Table IV rBP-vs-BP gap).
  Rng rng(4);
  const Tensor w = Tensor::randn({16, 20}, rng);
  BpConfig cfg;
  cfg.num_blocks = 4;
  cfg.prune_fraction = 0.5;
  const Tensor bp = mul(w, bp_mask(w, cfg));
  const Tensor rbp = mul(w, rbp_mask(w, cfg, rng));
  EXPECT_GT(bp.l2_norm(), rbp.l2_norm());
}

TEST(BlockPrune, BpPrunedCountsThresholdMode) {
  Tensor w({2, 3}, {1.0F, 0.001F, 1.0F, 1.0F, 0.001F, 1.0F});
  BpConfig cfg;
  cfg.num_blocks = 1;
  cfg.mode = BpConfig::Mode::kThreshold;
  cfg.threshold = 0.01;
  const auto counts = bp_pruned_counts(w, cfg);
  ASSERT_EQ(counts.size(), 1U);
  EXPECT_EQ(counts[0], 1);
}

TEST(GroupLasso, PenaltyMatchesClosedForm) {
  // 2x2, one block: penalty = ||col0|| + ||col1||.
  Var w(Tensor({2, 2}, {3.0F, 0.0F, 4.0F, 0.0F}), true);
  const Var pen = group_lasso_penalty(w, 1, {}, 1e-6F);
  EXPECT_NEAR(pen.item(), 5.0F, 1e-3F);
}

TEST(GroupLasso, GradientMatchesFiniteDifference) {
  Rng rng(5);
  Var w(Tensor::rand_uniform({4, 3}, rng, 0.3F, 1.0F), true);
  const auto result = grad_check(
      {w}, [&] { return group_lasso_penalty(w, 2); }, 1e-3F);
  EXPECT_TRUE(result.ok(2e-2)) << result.max_abs_err;
}

TEST(GroupLasso, ReweightingPenalizesSmallGroupsMore) {
  Tensor w({2, 2}, {10.0F, 0.1F, 10.0F, 0.1F});
  const auto coeffs = reweighting_coefficients(w, 1);
  ASSERT_EQ(coeffs.size(), 2U);
  EXPECT_GT(coeffs[1], coeffs[0]);  // small column -> large coefficient
}

TEST(PatternPrune, KeptForSparsity) {
  EXPECT_EQ(kept_for_sparsity(10, 0.0), 100);
  EXPECT_EQ(kept_for_sparsity(10, 0.75), 25);
  EXPECT_EQ(kept_for_sparsity(10, 1.0), 1);  // clamped to >= 1
}

TEST(PatternPrune, ImportanceMapAccumulatesMagnitudes) {
  // Backbone with large values in the top-left corner of every tile.
  Tensor backbone({4, 4});
  backbone[0] = 10.0F;                       // tile (0,0) corner
  backbone[0 * 4 + 2] = 10.0F;               // tile (0,1) corner
  backbone[2 * 4 + 0] = 10.0F;               // tile (1,0) corner
  backbone[2 * 4 + 2] = 10.0F;               // tile (1,1) corner
  Rng rng(6);
  const Tensor imp = pattern_importance_map(backbone, 2, 4, rng);
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_GT(imp[0], imp[2]);
  EXPECT_GT(imp[0], imp[3]);
}

TEST(PatternPrune, BuildSetRespectsSparsityAndSize) {
  Rng rng(7);
  const Tensor backbone = Tensor::randn({16, 16}, rng);
  const PatternSet set = build_pattern_set(backbone, 4, 0.5, 4, rng);
  EXPECT_EQ(set.patterns.size(), 4U);
  for (const auto& p : set.patterns) {
    EXPECT_EQ(p.count_kept(), kept_for_sparsity(4, 0.5));
  }
  EXPECT_NEAR(set.sparsity(), 0.5, 1e-9);
}

TEST(PatternPrune, GuidedBeatsRandomOnRetainedEnergy) {
  // The paper's claim behind rPP-vs-PP (Table IV): importance-guided
  // patterns retain more weight energy than random ones.
  Rng rng(8);
  // Backbone with a consistent intra-tile structure.
  Tensor backbone({32, 32});
  for (std::int64_t r = 0; r < 32; ++r) {
    for (std::int64_t c = 0; c < 32; ++c) {
      // Energy concentrated where (r%8, c%8) is in the top-left quadrant.
      const bool hot = (r % 8) < 4 && (c % 8) < 4;
      backbone[r * 32 + c] = hot ? static_cast<float>(rng.normal(0, 1.0))
                                 : static_cast<float>(rng.normal(0, 0.05));
    }
  }
  Rng rng_a(9);
  Rng rng_b(9);
  const PatternSet guided = build_pattern_set(backbone, 8, 0.75, 4, rng_a);
  const PatternSet random = random_pattern_set(8, 0.75, 4, rng_b);
  const Tensor gm = mul(backbone, pattern_mask_for_weight(backbone, guided));
  const Tensor rm = mul(backbone, pattern_mask_for_weight(backbone, random));
  EXPECT_GT(gm.l2_norm(), rm.l2_norm());
}

TEST(PatternPrune, MaskForWeightSparsityMatchesSet) {
  Rng rng(10);
  const Tensor w = Tensor::randn({16, 16}, rng);
  const PatternSet set = random_pattern_set(4, 0.5, 3, rng);
  const Tensor mask = pattern_mask_for_weight(w, set);
  EXPECT_NEAR(mask.sparsity(), 0.5, 1e-9);
}

TEST(PatternPrune, RejectsIndivisibleDims) {
  Rng rng(11);
  const Tensor w = Tensor::randn({10, 10}, rng);
  const PatternSet set = random_pattern_set(4, 0.5, 2, rng);
  EXPECT_THROW(pattern_mask_for_weight(w, set), CheckError);
}

class PrunerFixture : public ::testing::Test {
 protected:
  PrunerFixture() : rng_(12) {
    for (int i = 0; i < 3; ++i) {
      layers_.push_back(std::make_unique<Linear>(16, 16, rng_));
    }
    for (auto& l : layers_) {
      raw_.push_back(l.get());
    }
  }
  Rng rng_;
  std::vector<std::unique_ptr<Linear>> layers_;
  std::vector<Linear*> raw_;
};

TEST_F(PrunerFixture, BpInstallsBackboneMasks) {
  ModelPruner pruner(raw_);
  BpConfig cfg;
  cfg.num_blocks = 4;
  cfg.prune_fraction = 0.5;
  pruner.apply_bp(cfg);
  EXPECT_TRUE(pruner.has_backbone());
  EXPECT_NEAR(pruner.overall_sparsity(), 0.5, 1e-9);
  for (Linear* l : raw_) {
    EXPECT_TRUE(l->has_mask());
  }
}

TEST_F(PrunerFixture, PatternComposesOnTopOfBackbone) {
  ModelPruner pruner(raw_);
  BpConfig cfg;
  cfg.num_blocks = 4;
  cfg.prune_fraction = 0.5;
  pruner.apply_bp(cfg);
  Rng rng(13);
  const PatternSet set = random_pattern_set(4, 0.5, 3, rng);
  const double sparsity = pruner.apply_pattern_set(set);
  // Composed sparsity >= max of the two (mask AND).
  EXPECT_GE(sparsity, 0.5);
  EXPECT_LE(sparsity, 1.0);
  // Composed mask must never keep an entry the backbone pruned.
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    const Tensor& composed = raw_[i]->mask();
    const Tensor& backbone = pruner.backbone_masks()[i];
    for (std::int64_t k = 0; k < composed.numel(); ++k) {
      EXPECT_LE(composed[k], backbone[k]);
    }
  }
}

TEST_F(PrunerFixture, RestoreBackboneUndoesPattern) {
  ModelPruner pruner(raw_);
  BpConfig cfg;
  cfg.num_blocks = 4;
  cfg.prune_fraction = 0.25;
  pruner.apply_bp(cfg);
  const double backbone_sparsity = pruner.overall_sparsity();
  Rng rng(14);
  pruner.apply_pattern_set(random_pattern_set(4, 0.75, 2, rng));
  EXPECT_GT(pruner.overall_sparsity(), backbone_sparsity);
  pruner.restore_backbone();
  EXPECT_NEAR(pruner.overall_sparsity(), backbone_sparsity, 1e-9);
}

TEST_F(PrunerFixture, FreezeBackboneOnDenseModel) {
  ModelPruner pruner(raw_);
  pruner.freeze_backbone();
  EXPECT_TRUE(pruner.has_backbone());
  EXPECT_DOUBLE_EQ(pruner.overall_sparsity(), 0.0);
  Rng rng(15);
  const double s = pruner.apply_pattern_set(random_pattern_set(4, 0.5, 2, rng));
  EXPECT_NEAR(s, 0.5, 1e-9);
}

TEST_F(PrunerFixture, PatternBeforeBackboneThrows) {
  ModelPruner pruner(raw_);
  Rng rng(16);
  EXPECT_THROW(pruner.apply_pattern_set(random_pattern_set(4, 0.5, 2, rng)),
               CheckError);
}

TEST_F(PrunerFixture, TotalWeightsAndBytes) {
  ModelPruner pruner(raw_);
  EXPECT_EQ(pruner.total_weights(), 3 * 16 * 16);
  EXPECT_EQ(pruner.dense_weight_bytes(), 3 * 16 * 16 * 4);
}

// Sweep: composed sparsity grows monotonically with pattern sparsity.
class ComposedSparsitySweep : public ::testing::TestWithParam<double> {};

TEST_P(ComposedSparsitySweep, MonotoneComposition) {
  Rng rng(17);
  auto layer = std::make_unique<Linear>(16, 16, rng);
  ModelPruner pruner({layer.get()});
  BpConfig cfg;
  cfg.num_blocks = 4;
  cfg.prune_fraction = 0.25;
  pruner.apply_bp(cfg);
  Rng set_rng(18);
  const PatternSet set = random_pattern_set(4, GetParam(), 2, set_rng);
  const double s = pruner.apply_pattern_set(set);
  // Composition can only add zeros relative to either mask alone; compare
  // against the set's ACTUAL sparsity (kept counts quantize to psize^2).
  EXPECT_GE(s, std::max(0.25, set.sparsity()) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PatternSparsities, ComposedSparsitySweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace rt3
