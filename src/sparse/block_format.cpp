#include "sparse/block_format.hpp"

#include "common/check.hpp"

namespace rt3 {

BlockPrunedMatrix BlockPrunedMatrix::from_dense(const Tensor& dense,
                                                std::int64_t num_blocks) {
  check(dense.dim() == 2, "BlockPrunedMatrix: need 2-D");
  const std::int64_t rows = dense.size(0);
  const std::int64_t cols = dense.size(1);
  check(num_blocks > 0 && rows % num_blocks == 0,
        "BlockPrunedMatrix: rows must divide evenly into blocks");
  BlockPrunedMatrix out(rows, cols);
  out.block_rows_ = rows / num_blocks;
  out.kept_cols_.resize(static_cast<std::size_t>(num_blocks));
  out.values_.resize(static_cast<std::size_t>(num_blocks));

  for (std::int64_t b = 0; b < num_blocks; ++b) {
    const std::int64_t r0 = b * out.block_rows_;
    auto& kept = out.kept_cols_[static_cast<std::size_t>(b)];
    for (std::int64_t c = 0; c < cols; ++c) {
      bool any = false;
      for (std::int64_t r = r0; r < r0 + out.block_rows_ && !any; ++r) {
        any = dense[r * cols + c] != 0.0F;
      }
      if (any) {
        kept.push_back(c);
      }
    }
    auto& vals = out.values_[static_cast<std::size_t>(b)];
    vals.reserve(static_cast<std::size_t>(
        out.block_rows_ * static_cast<std::int64_t>(kept.size())));
    for (std::int64_t r = r0; r < r0 + out.block_rows_; ++r) {
      for (std::int64_t c : kept) {
        vals.push_back(dense[r * cols + c]);
      }
    }
  }
  return out;
}

Tensor BlockPrunedMatrix::to_dense() const {
  Tensor out({rows_, cols_});
  for (std::size_t b = 0; b < kept_cols_.size(); ++b) {
    const std::int64_t r0 = static_cast<std::int64_t>(b) * block_rows_;
    const auto& kept = kept_cols_[b];
    const auto& vals = values_[b];
    const std::int64_t k = static_cast<std::int64_t>(kept.size());
    for (std::int64_t r = 0; r < block_rows_; ++r) {
      for (std::int64_t ci = 0; ci < k; ++ci) {
        out[(r0 + r) * cols_ + kept[static_cast<std::size_t>(ci)]] =
            vals[static_cast<std::size_t>(r * k + ci)];
      }
    }
  }
  return out;
}

const std::vector<std::int64_t>& BlockPrunedMatrix::kept_cols(
    std::int64_t block) const {
  check(block >= 0 && block < num_blocks(),
        "BlockPrunedMatrix::kept_cols: block out of range");
  return kept_cols_[static_cast<std::size_t>(block)];
}

const std::vector<float>& BlockPrunedMatrix::block_values(
    std::int64_t block) const {
  check(block >= 0 && block < num_blocks(),
        "BlockPrunedMatrix::block_values: block out of range");
  return values_[static_cast<std::size_t>(block)];
}

Tensor BlockPrunedMatrix::multiply(const Tensor& dense) const {
  check(dense.dim() == 2 && dense.size(0) == cols_,
        "BlockPrunedMatrix::multiply: shape mismatch");
  const std::int64_t n = dense.size(1);
  Tensor out({rows_, n});
  for (std::size_t b = 0; b < kept_cols_.size(); ++b) {
    const std::int64_t r0 = static_cast<std::int64_t>(b) * block_rows_;
    const auto& kept = kept_cols_[b];
    const auto& vals = values_[b];
    const std::int64_t k = static_cast<std::int64_t>(kept.size());
    for (std::int64_t r = 0; r < block_rows_; ++r) {
      float* orow = out.data() + (r0 + r) * n;
      for (std::int64_t ci = 0; ci < k; ++ci) {
        const float v = vals[static_cast<std::size_t>(r * k + ci)];
        if (v == 0.0F) {
          continue;
        }
        const float* brow =
            dense.data() + kept[static_cast<std::size_t>(ci)] * n;
        for (std::int64_t j = 0; j < n; ++j) {
          orow[j] += v * brow[j];
        }
      }
    }
  }
  return out;
}

std::int64_t BlockPrunedMatrix::nnz_values() const {
  std::int64_t n = 0;
  for (const auto& vals : values_) {
    n += static_cast<std::int64_t>(vals.size());
  }
  return n;
}

double BlockPrunedMatrix::sparsity() const {
  return 1.0 - static_cast<double>(nnz_values()) /
                   static_cast<double>(rows_ * cols_);
}

std::int64_t BlockPrunedMatrix::storage_bytes() const {
  std::int64_t bytes = 0;
  for (std::size_t b = 0; b < kept_cols_.size(); ++b) {
    bytes += static_cast<std::int64_t>(values_[b].size()) * 4;
    bytes += static_cast<std::int64_t>(kept_cols_[b].size()) * 4;
  }
  return bytes;
}

PatternMaskedMatrix PatternMaskedMatrix::from_dense(const Tensor& dense,
                                                    const PatternSet& set) {
  check(dense.dim() == 2, "PatternMaskedMatrix: need 2-D");
  check(!set.patterns.empty(), "PatternMaskedMatrix: empty pattern set");
  const std::int64_t psize = set.psize();
  const std::int64_t rows = dense.size(0);
  const std::int64_t cols = dense.size(1);
  check(rows % psize == 0 && cols % psize == 0,
        "PatternMaskedMatrix: dims must be multiples of psize");

  PatternMaskedMatrix out(rows, cols, psize);
  out.set_ = set;
  const std::int64_t tiles_r = rows / psize;
  const std::int64_t tiles_c = cols / psize;
  out.assignment_.reserve(static_cast<std::size_t>(tiles_r * tiles_c));

  for (std::int64_t tr = 0; tr < tiles_r; ++tr) {
    for (std::int64_t tc = 0; tc < tiles_c; ++tc) {
      // Extract the tile.
      Tensor tile({psize, psize});
      for (std::int64_t r = 0; r < psize; ++r) {
        for (std::int64_t c = 0; c < psize; ++c) {
          tile[r * psize + c] =
              dense[(tr * psize + r) * cols + tc * psize + c];
        }
      }
      // Paper's rule: choose the pattern with the largest retained l2.
      std::size_t best = 0;
      double best_l2 = -1.0;
      for (std::size_t p = 0; p < set.patterns.size(); ++p) {
        const double l2 = set.patterns[p].retained_l2(tile);
        if (l2 > best_l2) {
          best_l2 = l2;
          best = p;
        }
      }
      out.assignment_.push_back(static_cast<std::int64_t>(best));
      const Pattern& pat = set.patterns[best];
      for (std::int64_t r = 0; r < psize; ++r) {
        for (std::int64_t c = 0; c < psize; ++c) {
          if (pat.kept(r, c)) {
            out.values_.push_back(tile[r * psize + c]);
          }
        }
      }
    }
  }
  return out;
}

Tensor PatternMaskedMatrix::to_dense() const {
  Tensor out({rows_, cols_});
  const std::int64_t tiles_c = cols_ / psize_;
  std::size_t vi = 0;
  for (std::size_t t = 0; t < assignment_.size(); ++t) {
    const std::int64_t tr = static_cast<std::int64_t>(t) / tiles_c;
    const std::int64_t tc = static_cast<std::int64_t>(t) % tiles_c;
    const Pattern& pat =
        set_.patterns[static_cast<std::size_t>(assignment_[t])];
    for (std::int64_t r = 0; r < psize_; ++r) {
      for (std::int64_t c = 0; c < psize_; ++c) {
        if (pat.kept(r, c)) {
          out[(tr * psize_ + r) * cols_ + tc * psize_ + c] = values_[vi++];
        }
      }
    }
  }
  return out;
}

Tensor PatternMaskedMatrix::multiply(const Tensor& dense) const {
  check(dense.dim() == 2 && dense.size(0) == cols_,
        "PatternMaskedMatrix::multiply: shape mismatch");
  const std::int64_t n = dense.size(1);
  Tensor out({rows_, n});
  const std::int64_t tiles_c = cols_ / psize_;
  std::size_t vi = 0;
  for (std::size_t t = 0; t < assignment_.size(); ++t) {
    const std::int64_t tr = static_cast<std::int64_t>(t) / tiles_c;
    const std::int64_t tc = static_cast<std::int64_t>(t) % tiles_c;
    const Pattern& pat =
        set_.patterns[static_cast<std::size_t>(assignment_[t])];
    for (std::int64_t r = 0; r < psize_; ++r) {
      float* orow = out.data() + (tr * psize_ + r) * n;
      for (std::int64_t c = 0; c < psize_; ++c) {
        if (!pat.kept(r, c)) {
          continue;
        }
        const float v = values_[vi++];
        if (v == 0.0F) {
          continue;
        }
        const float* brow = dense.data() + (tc * psize_ + c) * n;
        for (std::int64_t j = 0; j < n; ++j) {
          orow[j] += v * brow[j];
        }
      }
    }
  }
  return out;
}

double PatternMaskedMatrix::sparsity() const {
  return 1.0 - static_cast<double>(values_.size()) /
                   static_cast<double>(rows_ * cols_);
}

std::int64_t PatternMaskedMatrix::storage_bytes() const {
  return static_cast<std::int64_t>(values_.size()) * 4 +
         switch_payload_bytes();
}

std::int64_t PatternMaskedMatrix::switch_payload_bytes() const {
  return static_cast<std::int64_t>(assignment_.size()) * 2 +
         set_.storage_bytes();
}

}  // namespace rt3
