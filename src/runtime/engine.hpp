// Run-time reconfiguration engine: swaps the active pattern set when the
// DVFS level changes, and the battery discharge simulator that drives it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dvfs/dvfs.hpp"
#include "perf/latency_model.hpp"
#include "perf/model_spec.hpp"
#include "pruning/model_pruner.hpp"
#include "sparse/pattern.hpp"

namespace rt3 {

class TraceRecorder;
class TelemetrySampler;

/// Result of one reconfiguration switch.
struct SwitchReport {
  std::int64_t from_level = -1;
  std::int64_t to_level = -1;
  /// Device-model switch latency (Odroid-scale, from SwitchCostModel).
  double modeled_ms = 0.0;
  /// Wall-clock time the mask re-composition took on this host.
  double wall_ms = 0.0;
  /// Wall-clock time the plan-swap hook took (0 when no hook is set).
  double plan_swap_wall_ms = 0.0;
};

/// Hook invoked after a pattern-set switch is applied, with the new level;
/// returns the host wall ms spent swapping execution plans (typically
/// PlanCache::swap_to via a MeasuredBackend).
using PlanSwapHook = std::function<double(std::int64_t)>;

/// Holds the backbone-resident model and switches pattern sets.
class ReconfigEngine {
 public:
  /// `sets` are ordered fast -> slow V/F level.  `spec` and psize size the
  /// modeled switch payload at paper scale.
  ReconfigEngine(ModelPruner& pruner, std::vector<PatternSet> sets,
                 SwitchCostModel cost_model, ModelSpec spec,
                 std::int64_t psize);

  std::int64_t num_levels() const {
    return static_cast<std::int64_t>(sets_.size());
  }
  std::int64_t current_level() const { return current_; }

  /// Applies level `to`'s pattern set (no-op report if already active).
  SwitchReport switch_to(std::int64_t to);

  /// Installs (or clears, with nullptr) the per-level plan-swap hook; it
  /// runs inside every effective switch_to and its wall time is reported
  /// in SwitchReport::plan_swap_wall_ms.
  void set_plan_swap_hook(PlanSwapHook hook);

  /// Attaches a trace recorder (nullptr detaches): every effective
  /// switch_to then emits a pattern-swap instant (stamped at the
  /// recorder's published virtual clock; wall args only when it records
  /// wall time).
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Attaches a telemetry sampler (nullptr detaches): every effective
  /// switch_to then records the swapped pattern-set storage size into the
  /// node.swap_bytes series at the sampler's published virtual clock.
  void set_telemetry(TelemetrySampler* telemetry) { telemetry_ = telemetry; }

  /// Overall model sparsity at a level (measured on the composed masks).
  double sparsity_at(std::int64_t level);

  const PatternSet& set_at(std::int64_t level) const;

 private:
  ModelPruner& pruner_;
  std::vector<PatternSet> sets_;
  SwitchCostModel cost_model_;
  ModelSpec spec_;
  std::int64_t psize_;
  std::int64_t current_ = -1;
  PlanSwapHook plan_swap_hook_;
  TraceRecorder* trace_ = nullptr;
  TelemetrySampler* telemetry_ = nullptr;
};

/// Battery-discharge simulation (the paper's Table II experiment and the
/// battery_sim example).
struct DischargeConfig {
  double battery_capacity_mj = 5e5;
  double timing_constraint_ms = 115.0;
  /// When false, the same sub-model (index 0) runs at every level — the
  /// paper's E2 (hardware-only reconfiguration).
  bool software_reconfig = true;
  /// Energy cost of one pattern-set switch (mJ); tiny but accounted.
  double switch_energy_mj = 0.5;
};

struct DischargeStats {
  double total_runs = 0.0;
  double deadline_misses = 0.0;
  std::int64_t switches = 0;
  double simulated_seconds = 0.0;
  std::vector<double> runs_per_level;
};

/// Runs the battery down through the governor's levels.  `sparsities[i]`
/// is the overall model sparsity of the sub-model for governor level i
/// (fast -> slow); with software_reconfig=false only sparsities[0] is
/// used everywhere.
DischargeStats simulate_discharge(const DischargeConfig& config,
                                  const VfTable& table,
                                  const Governor& governor,
                                  const PowerModel& power,
                                  const LatencyModel& latency,
                                  const ModelSpec& spec,
                                  const std::vector<double>& sparsities,
                                  ExecMode mode);

}  // namespace rt3
