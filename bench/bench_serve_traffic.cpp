// Serving-under-traffic bench, three grids over identical battery/ladder:
//
//   1. scenario x policy (fifo, edf, edf-prio) — single-model Server, the
//      PR-3 cells, bitwise-stable so bench_compare.py can gate CI on them;
//   2. scenario x models (m2, m3) — multi-model ServeNode: N resident
//      models behind ONE battery/governor, requests routed by model id;
//   3. burst overload: edf+shedding vs edf+shedding+feasibility admission
//      — admission rejects requests no immediate solo launch could serve,
//      so the SERVED miss rate drops below shedding alone.
//   4. discharge x governor (ladder, adaptive, rl) — the GovernorPolicy
//      seam: identical traffic under the static threshold ladder, the
//      self-sizing-margin controller, and the learned RL governor (trained
//      in-bench from fixed seeds, so the cells stay bit-deterministic).
//      The lowbatt row shrinks the battery so surviving the session
//      actually requires stepping down.
//
// Emits a human table on stdout and machine-readable BENCH_serve.json
// ({scenarios|node_scenarios|overload|governor_scenarios ->
// {row -> {col -> stats}}}) so
// later PRs have a perf trajectory to compare against — and so
// tools/bench_compare.py can gate CI on deadline-miss-rate / p99
// regressions vs bench/baselines/ across all three grids.
//
//   bench_serve_traffic [OUT.json] [REPEATS] [SEED]
//   bench_serve_traffic [--out=OUT.json] [--repeats=N] [--seed=S]
//
// Positional and --flag=value forms are interchangeable but not mixable
// (the parser is common/args.hpp, shared with the rt3 CLI; mixing would
// bind a positional to the wrong knob, so it exits 2 instead).  REPEATS
// (default 1) re-runs
// every cell with seeds SEED..SEED+R-1; the gate fields (miss_rate,
// p99_ms) are means over repeats.  The virtual clock makes every repeat
// bit-deterministic from its seed.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/check.hpp"
#include "common/table.hpp"
#include "common/wall_time.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "rl/governor.hpp"
#include "serve/node.hpp"
#include "serve/policy.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"

namespace {

using namespace rt3;

/// Gate fields of one bench cell plus the first repeat's full stats JSON.
struct Cell {
  std::string first_json;  // full stats of the first repeat (seed = SEED)
  double mean_miss_rate = 0.0;
  double mean_p99_ms = 0.0;
  double mean_switch_lag_p99_ms = 0.0;
  // Human-table columns from the first repeat (works for ServerStats and
  // NodeStats alike — one shared capture instead of per-runner copies).
  std::string requests, served, batches, thrpt, switches, misses_qse;

  template <typename Stats>
  void capture_first(const Stats& stats) {
    first_json = stats.to_json();
    requests = std::to_string(stats.submitted);
    served = std::to_string(stats.completed);
    batches = std::to_string(stats.batches);
    thrpt = fmt_f(stats.throughput_rps(), 2);
    switches = std::to_string(stats.switches);
    misses_qse = std::to_string(stats.miss_queued) + "/" +
                 std::to_string(stats.miss_switch) + "/" +
                 std::to_string(stats.miss_exec);
  }

  std::string to_json() const {
    return "{\"miss_rate\": " + std::to_string(mean_miss_rate) +
           ", \"p99_ms\": " + std::to_string(mean_p99_ms) +
           ", \"switch_lag_p99_ms\": " +
           std::to_string(mean_switch_lag_p99_ms) +
           ",\n        \"stats\": " + first_json + "}";
  }
};

/// The obs-layer invariant every cell must satisfy: each deadline miss is
/// classified into exactly one cause (checked on EVERY repeat, for
/// ServerStats and NodeStats alike).
template <typename Stats>
void check_miss_attribution(const Stats& stats) {
  check(stats.miss_queued + stats.miss_switch + stats.miss_exec ==
            stats.deadline_misses,
        "bench: miss_queued + miss_switch + miss_exec != deadline_misses");
}

/// The workload every grid shares: mixed interactive/background deadlines
/// (30% tight 350 ms, the rest 1 s), mean 3 req/s over 60 s.  With one
/// uniform slack, deadline order degenerates to arrival order and every
/// policy coincides with FIFO.
TrafficConfig base_traffic(TrafficScenario scenario, std::uint64_t seed) {
  TrafficConfig tcfg;
  tcfg.scenario = scenario;
  tcfg.rate_rps = 3.0;
  tcfg.duration_ms = 60'000.0;
  tcfg.deadline_slack_ms = 1'000.0;
  tcfg.tight_fraction = 0.3;
  tcfg.tight_slack_ms = 350.0;
  tcfg.seed = seed;
  return tcfg;
}

Cell run_policy_cell(TrafficScenario scenario, SchedulingPolicy policy,
                     std::int64_t repeats, std::uint64_t seed) {
  Cell cell;
  for (std::int64_t rep = 0; rep < repeats; ++rep) {
    ServeSessionConfig scfg;  // defaults: 12 kmJ battery, T=115, batch<=2
    scfg.scheduler.policy = policy;
    if (policy == SchedulingPolicy::kEdfPriority) {
      // The priority column doubles as the governor-aware-batching cell.
      scfg.governor_margin = 0.05;
    }
    TrafficConfig tcfg =
        base_traffic(scenario, seed + static_cast<std::uint64_t>(rep));
    if (policy == SchedulingPolicy::kEdfPriority) {
      tcfg.priority_classes = 3;
    }
    const std::vector<Request> schedule = generate_traffic(tcfg);
    ServeSession session(scfg);
    const ServerStats stats = serve_concurrent(session.server(), schedule, 2);
    check_miss_attribution(stats);
    if (rep == 0) {
      cell.capture_first(stats);
    }
    cell.mean_miss_rate += stats.miss_rate();
    cell.mean_p99_ms += stats.latency_percentile(99.0);
    cell.mean_switch_lag_p99_ms += stats.switch_lag_percentile(99.0);
  }
  const double r = static_cast<double>(repeats);
  cell.mean_miss_rate /= r;
  cell.mean_p99_ms /= r;
  cell.mean_switch_lag_p99_ms /= r;
  return cell;
}

Cell run_node_cell(TrafficScenario scenario, std::int64_t models,
                   std::int64_t repeats, std::uint64_t seed) {
  Cell cell;
  for (std::int64_t rep = 0; rep < repeats; ++rep) {
    ServeSessionConfig per_model;  // same defaults as the policy grid
    TrafficConfig tcfg =
        base_traffic(scenario, seed + static_cast<std::uint64_t>(rep));
    tcfg.num_models = models;
    const std::vector<Request> schedule = generate_traffic(tcfg);
    NodeSession session(per_model, models);
    const NodeStats stats =
        serve_node_concurrent(session.node(), schedule, 2);
    check_miss_attribution(stats);
    for (const auto& [model_id, model_stats] : stats.per_model) {
      (void)model_id;
      check_miss_attribution(model_stats);  // per shard too, not just sums
    }
    if (rep == 0) {
      cell.capture_first(stats);
    }
    cell.mean_miss_rate += stats.miss_rate();
    cell.mean_p99_ms += stats.latency_percentile(99.0);
    cell.mean_switch_lag_p99_ms += stats.switch_lag_percentile(99.0);
  }
  const double r = static_cast<double>(repeats);
  cell.mean_miss_rate /= r;
  cell.mean_p99_ms /= r;
  cell.mean_switch_lag_p99_ms /= r;
  return cell;
}

/// Burst at 2x the base rate: sustained overload where plain EDF dominoes.
/// The interactive slack tightens to 250 ms so that a tight request
/// admitted after one full batch of queueing is already infeasible —
/// exactly the request EDF would launch first (earliest deadline), miss,
/// and blow feasible deadlines behind (the domino admission removes).
Cell run_overload_cell(bool admit, std::int64_t repeats, std::uint64_t seed) {
  Cell cell;
  for (std::int64_t rep = 0; rep < repeats; ++rep) {
    ServeSessionConfig scfg;
    scfg.scheduler.policy = SchedulingPolicy::kEdf;
    scfg.shed_expired = true;
    scfg.admit_feasible = admit;
    TrafficConfig tcfg = base_traffic(TrafficScenario::kBurst,
                                      seed + static_cast<std::uint64_t>(rep));
    tcfg.rate_rps = 6.0;
    tcfg.tight_slack_ms = 250.0;
    const std::vector<Request> schedule = generate_traffic(tcfg);
    ServeSession session(scfg);
    const ServerStats stats = serve_concurrent(session.server(), schedule, 2);
    check_miss_attribution(stats);
    if (rep == 0) {
      cell.capture_first(stats);
    }
    cell.mean_miss_rate += stats.miss_rate();
    cell.mean_p99_ms += stats.latency_percentile(99.0);
    cell.mean_switch_lag_p99_ms += stats.switch_lag_percentile(99.0);
  }
  const double r = static_cast<double>(repeats);
  cell.mean_miss_rate /= r;
  cell.mean_p99_ms /= r;
  cell.mean_switch_lag_p99_ms /= r;
  return cell;
}

/// One governor-grid discharge: the bench traffic under a GovernorPolicy
/// family.  `rl_policy` is the in-bench-trained instance (shared across
/// cells; serve() clears its episode state, greedy decisions only) and is
/// ignored for the other kinds.
Cell run_governor_cell(TrafficScenario scenario, double capacity_mj,
                       GovernorKind kind,
                       const std::shared_ptr<GovernorPolicy>& rl_policy,
                       std::int64_t repeats, std::uint64_t seed) {
  Cell cell;
  for (std::int64_t rep = 0; rep < repeats; ++rep) {
    ServeSessionConfig scfg;  // defaults except battery + governor
    scfg.battery_capacity_mj = capacity_mj;
    scfg.governor = kind;
    if (kind == GovernorKind::kRl) {
      scfg.governor_policy = rl_policy;
    }
    TrafficConfig tcfg =
        base_traffic(scenario, seed + static_cast<std::uint64_t>(rep));
    const std::vector<Request> schedule = generate_traffic(tcfg);
    ServeSession session(scfg);
    const ServerStats stats = serve_concurrent(session.server(), schedule, 2);
    check_miss_attribution(stats);
    if (rep == 0) {
      cell.capture_first(stats);
    }
    cell.mean_miss_rate += stats.miss_rate();
    cell.mean_p99_ms += stats.latency_percentile(99.0);
    cell.mean_switch_lag_p99_ms += stats.switch_lag_percentile(99.0);
  }
  const double r = static_cast<double>(repeats);
  cell.mean_miss_rate /= r;
  cell.mean_p99_ms /= r;
  cell.mean_switch_lag_p99_ms /= r;
  return cell;
}

/// Trains the RL governor for the governor grid, in-bench, from seeds
/// derived only from the bench seed — the trained weights (and therefore
/// every rl cell) are bit-deterministic per seed.  Episodes round-robin
/// the three scenarios over the SAME traffic shape the grid serves, half
/// at the grid's full battery and half at the lowbatt capacity so the
/// policy sees discharges where stepping down is the only way to survive.
std::shared_ptr<RlGovernorPolicy> train_bench_governor(
    std::uint64_t seed, double capacity_mj, double lowbatt_capacity_mj) {
  GovernorTrainConfig tcfg;
  tcfg.episodes = 12;
  tcfg.traffic = base_traffic(TrafficScenario::kSteady, seed);
  tcfg.traffic_seed = seed;
  tcfg.sample_seed = seed + 1234;
  tcfg.reward.reference_lifetime_ms = tcfg.traffic.duration_ms;
  tcfg.session.battery_capacity_mj = capacity_mj;
  const GovernorTrainResult full = train_governor(tcfg);
  // Continue training the SAME weights on the scarce-battery regime
  // (train_governor always builds a fresh policy, so this second phase
  // drives the policy's training API directly).
  Rng sample_rng(seed + 4321);
  ServeSessionConfig scfg = tcfg.session;
  scfg.battery_capacity_mj = lowbatt_capacity_mj;
  scfg.governor = GovernorKind::kRl;
  scfg.governor_policy = full.policy;
  ServeSession session(scfg);
  for (std::int64_t e = 0; e < tcfg.episodes; ++e) {
    TrafficConfig traffic = tcfg.traffic;
    traffic.scenario = tcfg.scenarios[static_cast<std::size_t>(e) %
                                      tcfg.scenarios.size()];
    traffic.seed = seed + 100 + static_cast<std::uint64_t>(e);
    const std::vector<Request> schedule = generate_traffic(traffic);
    full.policy->set_sample_rng(&sample_rng);
    const ServerStats stats = session.server().serve(schedule);
    const double reward = governor_reward(tcfg.reward, stats);
    if (full.policy->decisions_this_episode() > 0) {
      full.policy->update(reward);
    }
  }
  full.policy->set_sample_rng(nullptr);
  full.policy->reset();
  return full.policy;
}

/// The obs-layer overhead contract, proven per bench run: a traced session
/// over the identical schedule must leave every serving stat
/// BYTE-IDENTICAL (tracing is pure observation), and the wall-time cost of
/// tracing must stay small.  Wall times are host-dependent and purely
/// informational — the gate is the identity check, which aborts the bench
/// on violation.
struct ObsCell {
  std::int64_t trace_events = 0;
  std::int64_t telemetry_points = 0;
  std::int64_t slo_breaches = 0;
  double wall_off_ms = 0.0;
  double wall_on_ms = 0.0;
};

ObsCell run_observability_cell(std::uint64_t seed) {
  TrafficConfig tcfg = base_traffic(TrafficScenario::kBurst, seed);
  const std::vector<Request> schedule = generate_traffic(tcfg);
  ServeSessionConfig scfg;
  scfg.scheduler.policy = SchedulingPolicy::kEdf;
  ObsCell out;
  // Obs-off reference (single-threaded serve keeps the timing clean).
  ServeSession off(scfg);
  const auto t0 = wall_now();
  const ServerStats stats_off = off.server().serve(schedule);
  out.wall_off_ms = wall_ms_since(t0);
  // Full-observability run: trace + telemetry + SLO monitor all attached.
  // Virtual stamps only, so every artifact is deterministic too.
  ServeSession on(scfg);
  TraceRecorder trace(/*record_wall=*/false);
  TelemetrySampler telemetry{TelemetryConfig{}};
  SloMonitor slo(SloMonitor::default_rules());
  on.server().set_trace(&trace);
  on.server().set_telemetry(&telemetry);
  on.server().set_slo(&slo);
  const auto t1 = wall_now();
  const ServerStats stats_on = on.server().serve(schedule);
  out.wall_on_ms = wall_ms_since(t1);
  check(stats_off.to_json() == stats_on.to_json(),
        "bench: observability layer perturbed serving results");
  // Telemetry itself must be bit-deterministic: a repeat over the same
  // schedule yields a byte-identical JSON dump.
  ServeSession rep(scfg);
  TelemetrySampler telemetry2{TelemetryConfig{}};
  SloMonitor slo2(SloMonitor::default_rules());
  rep.server().set_telemetry(&telemetry2);
  rep.server().set_slo(&slo2);
  rep.server().serve(schedule);
  check(telemetry.to_json() == telemetry2.to_json(),
        "bench: telemetry dump not deterministic across repeats");
  check(slo.to_json() == slo2.to_json(),
        "bench: slo episodes not deterministic across repeats");
  out.trace_events = trace.num_events();
  out.telemetry_points = telemetry.num_points();
  out.slo_breaches = static_cast<std::int64_t>(slo.breaches());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  std::int64_t repeats = 1;
  std::int64_t seed_value = 7;
  try {
    const std::vector<std::string> args = split_flag_args(argc, argv);
    const std::vector<std::string> positionals = positional_args(args);
    // The two spellings are interchangeable, not mixable: a mixed
    // "--out report.json 5" would bind 5 to OUT and silently ignore it.
    if (!positionals.empty() &&
        (arg_present(args, "--out") || arg_present(args, "--repeats") ||
         arg_present(args, "--seed"))) {
      std::cerr << "bench_serve_traffic: use positional OR --flag form, "
                   "not both\n";
      return 2;
    }
    // Positional values run through the same whole-string parser as the
    // flags (arg_int), so trailing garbage ("3x") is rejected, not
    // silently truncated.
    if (!positionals.empty()) {
      out_path = positionals[0];
    }
    if (positionals.size() > 1) {
      repeats = arg_int({"--repeats", positionals[1]}, "--repeats", repeats);
    }
    if (positionals.size() > 2) {
      seed_value = arg_int({"--seed", positionals[2]}, "--seed", seed_value);
    }
    out_path = arg_string(args, "--out", out_path);
    repeats = arg_int(args, "--repeats", repeats);
    seed_value = arg_int(args, "--seed", seed_value);
  } catch (const std::exception& e) {
    std::cerr << "bench_serve_traffic: bad arguments: " << e.what() << "\n"
              << "usage: bench_serve_traffic [OUT.json] [REPEATS] [SEED]\n"
              << "       bench_serve_traffic [--out=F] [--repeats=N] "
                 "[--seed=S]\n";
    return 2;
  }
  if (repeats < 1) {
    std::cerr << "bench_serve_traffic: REPEATS must be >= 1\n";
    return 2;
  }
  if (seed_value < 0) {
    std::cerr << "bench_serve_traffic: SEED must be non-negative\n";
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(seed_value);

  std::cout << "\n=== serve: battery-aware serving under traffic ===\n"
            << "One battery discharge per cell; same ladder {l6,l4,l3},\n"
            << "same mean load, pattern-set switches between batches.\n"
            << repeats << " repeat(s), seed " << seed << ".  edf-prio runs "
            << "3 priority classes + governor-aware\nbatching (margin 5%); "
            << "mN rows run N models behind ONE battery;\noverload rows "
            << "run burst at 2x rate with edf + shedding,\nwith and "
            << "without feasibility admission; governor rows serve\n"
            << "identical traffic under ladder vs adaptive vs rl (trained\n"
            << "in-bench, fixed seeds; lowbatt = burst on a 7 kmJ battery)."
            << "\n\n";

  const std::vector<TrafficScenario> scenarios = {TrafficScenario::kSteady,
                                                  TrafficScenario::kBurst,
                                                  TrafficScenario::kDiurnal};
  TablePrinter t({"grid", "scenario", "cell", "requests", "served",
                  "batches", "thrpt (req/s)", "p99 (ms)", "miss rate",
                  "misses q/s/e", "switches"});
  std::string json = "{\n  \"seed\": " + std::to_string(seed) +
                     ",\n  \"repeats\": " + std::to_string(repeats) +
                     ",\n  \"scenarios\": {\n";

  // Grid 1: scenario x policy (the PR-3 cells, bitwise-stable).
  bool first_scenario = true;
  for (const TrafficScenario scenario : scenarios) {
    json += std::string(first_scenario ? "" : ",\n") + "    \"" +
            traffic_scenario_name(scenario) + "\": {\n";
    first_scenario = false;
    bool first_cell = true;
    for (const SchedulingPolicy policy :
         {SchedulingPolicy::kFifo, SchedulingPolicy::kEdf,
          SchedulingPolicy::kEdfPriority}) {
      const Cell cell = run_policy_cell(scenario, policy, repeats, seed);
      t.add_row({"policy", traffic_scenario_name(scenario),
                 scheduling_policy_name(policy), cell.requests, cell.served,
                 cell.batches, cell.thrpt, fmt_f(cell.mean_p99_ms, 1),
                 fmt_pct(cell.mean_miss_rate), cell.misses_qse,
                 cell.switches});
      json += std::string(first_cell ? "" : ",\n") + "      \"" +
              scheduling_policy_name(policy) + "\": " + cell.to_json();
      first_cell = false;
    }
    json += "\n    }";
  }
  json += "\n  },\n  \"node_scenarios\": {\n";

  // Grid 2: scenario x resident-model count on one ServeNode.
  first_scenario = true;
  for (const TrafficScenario scenario : scenarios) {
    json += std::string(first_scenario ? "" : ",\n") + "    \"" +
            traffic_scenario_name(scenario) + "\": {\n";
    first_scenario = false;
    bool first_cell = true;
    for (const std::int64_t models : {2, 3}) {
      const Cell cell = run_node_cell(scenario, models, repeats, seed);
      const std::string label = "m" + std::to_string(models);
      t.add_row({"node", traffic_scenario_name(scenario), label,
                 cell.requests, cell.served, cell.batches, cell.thrpt,
                 fmt_f(cell.mean_p99_ms, 1), fmt_pct(cell.mean_miss_rate),
                 cell.misses_qse, cell.switches});
      json += std::string(first_cell ? "" : ",\n") + "      \"" + label +
              "\": " + cell.to_json();
      first_cell = false;
    }
    json += "\n    }";
  }
  json += "\n  },\n  \"overload\": {\n    \"burst\": {\n";

  // Grid 3: feasibility admission vs shedding alone under overload.
  bool first_cell = true;
  for (const bool admit : {false, true}) {
    const Cell cell = run_overload_cell(admit, repeats, seed);
    const std::string label = admit ? "edf-admit" : "edf-shed";
    t.add_row({"overload", "burst", label, cell.requests, cell.served,
               cell.batches, cell.thrpt, fmt_f(cell.mean_p99_ms, 1),
               fmt_pct(cell.mean_miss_rate), cell.misses_qse,
               cell.switches});
    json += std::string(first_cell ? "" : ",\n") + "      \"" + label +
            "\": " + cell.to_json();
    first_cell = false;
  }
  json += "\n    }\n  },\n  \"governor_scenarios\": {\n";

  // Grid 4: discharge x governor family over the GovernorPolicy seam.
  // The rl column serves the in-bench-trained policy greedily; lowbatt
  // shrinks the battery so finishing the session requires stepping down.
  constexpr double kLowbattCapacityMj = 7'000.0;
  const std::shared_ptr<RlGovernorPolicy> rl_policy =
      train_bench_governor(seed, 12'000.0, kLowbattCapacityMj);
  struct GovernorRow {
    const char* label;
    TrafficScenario scenario;
    double capacity_mj;
  };
  const std::vector<GovernorRow> governor_rows = {
      {"steady", TrafficScenario::kSteady, 12'000.0},
      {"burst", TrafficScenario::kBurst, 12'000.0},
      {"diurnal", TrafficScenario::kDiurnal, 12'000.0},
      {"lowbatt", TrafficScenario::kBurst, kLowbattCapacityMj},
  };
  bool first_row = true;
  for (const GovernorRow& row : governor_rows) {
    json += std::string(first_row ? "" : ",\n") + "    \"" + row.label +
            "\": {\n";
    first_row = false;
    bool first_gov = true;
    for (const GovernorKind kind :
         {GovernorKind::kLadder, GovernorKind::kAdaptive, GovernorKind::kRl}) {
      const Cell cell = run_governor_cell(row.scenario, row.capacity_mj,
                                          kind, rl_policy, repeats, seed);
      t.add_row({"governor", row.label, governor_kind_name(kind),
                 cell.requests, cell.served, cell.batches, cell.thrpt,
                 fmt_f(cell.mean_p99_ms, 1), fmt_pct(cell.mean_miss_rate),
                 cell.misses_qse, cell.switches});
      json += std::string(first_gov ? "" : ",\n") + "      \"" +
              governor_kind_name(kind) + "\": " + cell.to_json();
      first_gov = false;
    }
    json += "\n    }";
  }
  json += "\n  },\n";

  // Observability cell: trace + telemetry + SLO must be pure observation
  // (byte-identical stats; the checks inside abort otherwise) and the
  // telemetry/SLO dumps must be bit-deterministic across repeats.
  const ObsCell obs = run_observability_cell(seed);
  json += "  \"observability\": {\"trace_off_identical\": true, "
          "\"telemetry_deterministic\": true, \"trace_events\": " +
          std::to_string(obs.trace_events) +
          ", \"telemetry_points\": " + std::to_string(obs.telemetry_points) +
          ", \"slo_breaches\": " + std::to_string(obs.slo_breaches) +
          ", \"wall_off_ms\": " + fmt_f(obs.wall_off_ms, 2) +
          ", \"wall_on_ms\": " + fmt_f(obs.wall_on_ms, 2) + "}\n}\n";
  std::cout << t.str();
  std::cout << "\nobservability: obs-off stats byte-identical to fully "
            << "instrumented run: yes;\ntelemetry dump bit-deterministic "
            << "across repeats: yes.  Instrumented run\nrecorded "
            << obs.trace_events << " trace events, " << obs.telemetry_points
            << " telemetry points, " << obs.slo_breaches
            << " SLO breach(es)\n(" << fmt_f(obs.wall_off_ms, 1)
            << " ms bare vs " << fmt_f(obs.wall_on_ms, 1)
            << " ms instrumented wall).\n";

  std::ofstream out(out_path);
  out << json;
  out.close();
  std::cout << "\nwrote " << out_path << "\n"
            << "FIFO launches whatever arrived first, so during bursts the\n"
            << "queue's tail blows deadlines that EDF meets by launching the\n"
            << "most urgent work first.  The node rows split the same load\n"
            << "across resident models sharing one battery: every step-down\n"
            << "switches all of them at one drain boundary.  Under overload,\n"
            << "feasibility admission rejects requests no immediate solo\n"
            << "launch could serve, so the served-request miss rate drops\n"
            << "below edf shedding alone.\n";
  return 0;
}
