// Kernel microbenchmarks (google-benchmark): dense vs COO vs CSR vs
// block-pruned vs pattern-masked SpMM, plus pattern-set switch cost.
//
// Not a paper exhibit per se, but the executable evidence behind the
// paper's hardware-efficiency claims: block/pattern formats keep regular
// inner loops (fast), COO pays per-element indexing (slow), and a pattern
// switch touches kilobytes, not megabytes.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "exec/kernels.hpp"
#include "exec/simd.hpp"
#include "pruning/model_pruner.hpp"
#include "sparse/block_format.hpp"
#include "sparse/formats.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace rt3;

constexpr std::int64_t kRows = 256;
constexpr std::int64_t kCols = 256;
constexpr std::int64_t kBatch = 32;
constexpr double kSparsity = 0.75;

Tensor make_block_sparse_weight() {
  Rng rng(1);
  Tensor w = Tensor::randn({kRows, kCols}, rng);
  // Block-structured column pruning, 4 blocks.
  BpConfig cfg;
  cfg.num_blocks = 4;
  cfg.prune_fraction = kSparsity;
  const Tensor mask = bp_mask(w, cfg);
  return mul(w, mask);
}

Tensor make_activation() {
  Rng rng(2);
  return Tensor::randn({kCols, kBatch}, rng);
}

void BM_DenseMatmul(benchmark::State& state) {
  Rng rng(3);
  const Tensor w = Tensor::randn({kRows, kCols}, rng);
  const Tensor x = make_activation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul2d(w, x));
  }
}
BENCHMARK(BM_DenseMatmul);

void BM_CooSpmm(benchmark::State& state) {
  const CooMatrix coo = CooMatrix::from_dense(make_block_sparse_weight());
  const Tensor x = make_activation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(coo.multiply(x));
  }
}
BENCHMARK(BM_CooSpmm);

void BM_CsrSpmm(benchmark::State& state) {
  const CsrMatrix csr = CsrMatrix::from_dense(make_block_sparse_weight());
  const Tensor x = make_activation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(csr.multiply(x));
  }
}
BENCHMARK(BM_CsrSpmm);

void BM_BlockSpmm(benchmark::State& state) {
  const BlockPrunedMatrix blocked =
      BlockPrunedMatrix::from_dense(make_block_sparse_weight(), 4);
  const Tensor x = make_activation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(blocked.multiply(x));
  }
}
BENCHMARK(BM_BlockSpmm);

void BM_PatternSpmm(benchmark::State& state) {
  Rng rng(4);
  const Tensor w = make_block_sparse_weight();
  const PatternSet set = random_pattern_set(16, 0.5, 4, rng);
  const PatternMaskedMatrix pm = PatternMaskedMatrix::from_dense(w, set);
  const Tensor x = make_activation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.multiply(x));
  }
}
BENCHMARK(BM_PatternSpmm);

// SIMD-vs-scalar pairs over the measured-backend kernel entry points.
// Same inputs, same bitwise outputs — the delta is pure vectorization.
// The ISA is forced around the timing loop and restored afterwards so
// later benchmarks in the binary see the detected ISA again.

void run_dense_gemm_with_isa(benchmark::State& state, SimdIsa isa) {
  Rng rng(3);
  const Tensor w = Tensor::randn({kRows, kCols}, rng);
  const Tensor x = make_activation();
  const KernelOptions opts;
  set_simd_isa(isa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense_gemm(w, x, nullptr, opts));
  }
  set_simd_isa(detect_simd_isa());
}

void BM_DenseGemmScalar(benchmark::State& state) {
  run_dense_gemm_with_isa(state, SimdIsa::kScalar);
}
BENCHMARK(BM_DenseGemmScalar);

void BM_DenseGemmSimd(benchmark::State& state) {
  run_dense_gemm_with_isa(state, detect_simd_isa());
}
BENCHMARK(BM_DenseGemmSimd);

void run_block_gemm_with_isa(benchmark::State& state, SimdIsa isa) {
  const BlockPrunedMatrix blocked =
      BlockPrunedMatrix::from_dense(make_block_sparse_weight(), 4);
  const Tensor x = make_activation();
  const KernelOptions opts;
  set_simd_isa(isa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(block_gemm(blocked, x, nullptr, opts));
  }
  set_simd_isa(detect_simd_isa());
}

void BM_BlockGemmScalar(benchmark::State& state) {
  run_block_gemm_with_isa(state, SimdIsa::kScalar);
}
BENCHMARK(BM_BlockGemmScalar);

void BM_BlockGemmSimd(benchmark::State& state) {
  run_block_gemm_with_isa(state, detect_simd_isa());
}
BENCHMARK(BM_BlockGemmSimd);

void BM_MaskComposition(benchmark::State& state) {
  // The wall-clock cost of an RT3 pattern-set switch at host scale: mask
  // re-composition over all prunable layers of a small Transformer.
  Rng rng(5);
  std::vector<std::unique_ptr<Linear>> layers;
  std::vector<Linear*> raw;
  for (int i = 0; i < 8; ++i) {
    layers.push_back(std::make_unique<Linear>(64, 64, rng));
    raw.push_back(layers.back().get());
  }
  ModelPruner pruner(raw);
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.35;
  pruner.apply_bp(bp);
  const PatternSet set = random_pattern_set(8, 0.5, 4, rng);
  for (auto _ : state) {
    pruner.apply_pattern_set(set);
    benchmark::DoNotOptimize(pruner.overall_sparsity());
  }
}
BENCHMARK(BM_MaskComposition);

void BM_StorageAccounting(benchmark::State& state) {
  const Tensor w = make_block_sparse_weight();
  for (auto _ : state) {
    const auto coo = CooMatrix::from_dense(w);
    const auto blocked = BlockPrunedMatrix::from_dense(w, 4);
    benchmark::DoNotOptimize(coo.storage_bytes());
    benchmark::DoNotOptimize(blocked.storage_bytes());
  }
}
BENCHMARK(BM_StorageAccounting);

}  // namespace

BENCHMARK_MAIN();
