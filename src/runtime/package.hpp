// Deployment package: everything a device needs to run RT3 — the backbone
// weights, the fixed Level-1 masks, and one pattern set per V/F level —
// with a compact binary serialization.  The size split between "backbone
// bytes" (loaded once) and "pattern set bytes" (swapped per switch) is the
// storage argument behind the paper's millisecond reconfiguration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/pattern.hpp"
#include "tensor/tensor.hpp"

namespace rt3 {

/// Metadata for one V/F level's sub-model.
struct LevelMeta {
  std::string level_name;
  double freq_mhz = 0.0;
  double pattern_sparsity = 0.0;
  double overall_sparsity = 0.0;
  double latency_ms = 0.0;
  double accuracy = 0.0;
};

/// Serializable deployment artifact.
struct DeploymentPackage {
  /// Named backbone parameters (weights after Level-1 + joint training).
  std::vector<std::string> param_names;
  std::vector<Tensor> params;
  /// Level-1 masks for the prunable layers (parallel to `prunable_names`).
  std::vector<std::string> prunable_names;
  std::vector<Tensor> backbone_masks;
  /// One pattern set per V/F level (fast -> slow).
  std::vector<PatternSet> pattern_sets;
  std::vector<LevelMeta> levels;

  /// Bytes of the resident part (params + backbone masks, bitmask-packed).
  std::int64_t resident_bytes() const;
  /// Bytes that must move on a level switch (that level's pattern set).
  std::int64_t switch_bytes(std::int64_t level_index) const;

  void save(const std::string& path) const;
  static DeploymentPackage load(const std::string& path);
};

}  // namespace rt3
