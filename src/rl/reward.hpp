// The RT3 reward function, Eq. (1) of the paper:
//
//   R = -1 + R_runs                                   if any lat_i > T
//   R = (Aw - Am) / (Ao - Am) + R_runs                if feasible & cond
//   R = (Aw - Am) / (Ao - Am) - pen + R_runs          otherwise
//
// where Aw is the level-weighted accuracy, Ao the Level-1 backbone
// accuracy, Am a preset floor, cond requires accuracies to DECREASE with
// the level index (M1 for the fastest level must be the most accurate),
// and R_runs is the number-of-runs reward normalized to [0, 1].
#pragma once

#include <vector>

namespace rt3 {

struct RewardInputs {
  /// Per-level latency (ms), index 0 = fastest V/F level (M1).
  std::vector<double> latencies_ms;
  /// Per-level accuracy after joint training (empty if infeasible —
  /// the paper skips fine-tuning when the timing constraint fails).
  std::vector<double> accuracies;
  /// Per-level number of runs within the level's energy tranche.
  std::vector<double> runs;
  /// Real-time constraint T (ms).
  double timing_constraint_ms = 100.0;
  /// Ao: accuracy of the Level-1 backbone.
  double backbone_accuracy = 1.0;
  /// Am: preset accuracy floor.
  double min_accuracy = 0.0;
  /// alpha_i weights for Aw (defaults to uniform if empty).
  std::vector<double> level_weights;
  /// Normalizer mapping total runs into [0, 1].
  double runs_reference = 1.0;
  /// pen in Eq. (1).
  double penalty = 0.25;
};

struct RewardResult {
  double value = 0.0;
  bool feasible = false;       // all latencies <= T
  bool ordering_ok = false;    // cond of Eq. (1)
  double weighted_accuracy = 0.0;
  double runs_reward = 0.0;    // R_runs in [0, 1]
  double total_runs = 0.0;
};

/// Evaluates Eq. (1).
RewardResult compute_reward(const RewardInputs& inputs);

}  // namespace rt3
