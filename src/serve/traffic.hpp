// Open-loop traffic generation for serve sessions.
//
// Three scenarios, all Poisson at heart, all bit-reproducible from a seed
// via rt3::Rng:
//   kSteady  — homogeneous Poisson arrivals at `rate_rps`;
//   kBurst   — on/off (interrupted Poisson): bursts at burst_factor x the
//              base rate separated by near-silent gaps;
//   kDiurnal — raised-cosine rate ramp between diurnal_min_factor and 1x
//              peak over the session (a day compressed into the session),
//              sampled by thinning.
// Every request's deadline is arrival + deadline_slack_ms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace rt3 {

enum class TrafficScenario : std::uint8_t { kSteady, kBurst, kDiurnal };

/// "steady" / "burst" / "diurnal" (throws CheckError otherwise).
TrafficScenario traffic_scenario_from_name(const std::string& name);
std::string traffic_scenario_name(TrafficScenario scenario);

struct TrafficConfig {
  TrafficScenario scenario = TrafficScenario::kSteady;
  /// Session length of the arrival process (virtual ms).
  double duration_ms = 60'000.0;
  /// Mean request rate over the session, requests per second.
  double rate_rps = 20.0;
  /// Per-request latency budget: deadline = arrival + slack.
  double deadline_slack_ms = 250.0;
  /// Heterogeneous deadlines: each request's slack is drawn uniformly
  /// from [slack * (1 - jitter), slack * (1 + jitter)], from an rng stream
  /// independent of the arrival process.  0 keeps the historical uniform
  /// slack (and the deadline stream bitwise-identical).  Mixed tight/loose
  /// deadlines are what make deadline-aware (EDF) ordering differ from
  /// FIFO: with one uniform slack, deadline order IS arrival order.
  double deadline_slack_jitter = 0.0;
  /// Mixed interactive/background workload: this fraction of requests is
  /// "interactive" and uses tight_slack_ms as its base slack instead of
  /// deadline_slack_ms (jitter applies to either).  This bimodal mix is
  /// the regime where EDF decisively beats FIFO: background requests can
  /// absorb burst queueing delay that would blow interactive deadlines,
  /// so deadline order saves the tight ones without dooming the loose.
  /// 0 disables (single-slack traffic).
  double tight_fraction = 0.0;
  double tight_slack_ms = 150.0;
  /// kBurst: on/off period lengths and the on-period rate multiplier
  /// (off periods run at 1/10 of the base rate, not zero, so the tail of
  /// the queue is still exercised between bursts).
  double burst_on_ms = 2'000.0;
  double burst_off_ms = 3'000.0;
  double burst_factor = 4.0;
  /// kDiurnal: trough rate as a fraction of the peak.
  double diurnal_min_factor = 0.2;
  /// Number of priority classes (>= 1): each request draws a class
  /// uniformly from [0, priority_classes), from an rng stream independent
  /// of the arrival process — so the arrival schedule is bitwise-identical
  /// for any class count, and 1 keeps every request at class 0.
  std::int64_t priority_classes = 1;
  /// Multi-model mix for a ServeNode (>= 1): each model m in
  /// [0, num_models) gets its OWN independent arrival process — its own
  /// rng streams seeded from (seed, m) — at rate_rps * weight_m, and the
  /// per-model schedules merge by arrival time.  1 (the default) takes
  /// the historical single-model path, bitwise-identical: no extra rng
  /// draws, every request at model_id 0.
  std::int64_t num_models = 1;
  /// Per-model share of rate_rps (num_models entries, positive; they are
  /// normalized to sum to 1).  Empty = uniform 1/num_models each.
  std::vector<double> model_weights;
  std::uint64_t seed = 7;
};

/// Generates the full arrival schedule, sorted by arrival time (ties by
/// model id), ids 0..n-1 in that order.  With num_models > 1 each model's
/// requests form an independent thinned-Poisson stream of the scenario's
/// shape at its weighted share of the mean rate.
std::vector<Request> generate_traffic(const TrafficConfig& config);

}  // namespace rt3
