#include "train/trainer.hpp"

#include <map>

#include "common/check.hpp"
#include "pruning/block_prune.hpp"
#include "tensor/optim.hpp"

namespace rt3 {

void copy_parameters(Module& dst, const Module& src) {
  const auto src_named = src.named_parameters();
  auto dst_named = dst.named_parameters();
  check(src_named.size() == dst_named.size(),
        "copy_parameters: parameter count mismatch");
  std::map<std::string, const Var*> by_name;
  for (const auto& np : src_named) {
    by_name[np.name] = &np.param;
  }
  for (auto& np : dst_named) {
    const auto it = by_name.find(np.name);
    check(it != by_name.end(), "copy_parameters: missing " + np.name);
    check(it->second->shape() == np.param.shape(),
          "copy_parameters: shape mismatch for " + np.name);
    np.param.mutable_value() = it->second->value();
  }
}

double train_lm(TransformerLm& model, const Corpus& corpus,
                const TrainConfig& config) {
  LmBatcher train_batcher(corpus.train(), config.batch, config.seq_len);
  Adam opt(model.parameters(), config.lr);
  Rng rng(config.seed);

  // Lasso regularization targets the prunable weights (Level-1 prep).
  std::vector<Linear*> lasso_layers;
  if (config.group_lasso_lambda > 0.0F) {
    lasso_layers = model.prunable();
  }

  for (std::int64_t step = 0; step < config.steps; ++step) {
    opt.zero_grad();
    Var loss = model.loss(train_batcher.next(rng));
    if (config.group_lasso_lambda > 0.0F) {
      for (Linear* layer : lasso_layers) {
        if (layer->weight().shape()[0] % config.lasso_blocks != 0) {
          continue;
        }
        const auto coeffs = reweighting_coefficients(
            layer->weight().value(), config.lasso_blocks);
        loss = add(loss,
                   scale(group_lasso_penalty(layer->weight(),
                                             config.lasso_blocks, coeffs),
                         config.group_lasso_lambda));
      }
    }
    loss.backward();
    opt.step();
  }
  return eval_lm(model, corpus, config.batch, config.seq_len);
}

double eval_lm(const TransformerLm& model, const Corpus& corpus,
               std::int64_t batch, std::int64_t seq_len,
               std::int64_t max_batches) {
  LmBatcher valid_batcher(corpus.valid(), batch, seq_len);
  return model.evaluate(valid_batcher, max_batches);
}

double train_glue(DistilBertLike& model, const GlueDataset& data,
                  const TrainConfig& config) {
  Adam opt(model.parameters(), config.lr);
  Rng rng(config.seed);
  const auto& train = data.train();
  for (std::int64_t step = 0; step < config.steps; ++step) {
    std::vector<GlueExample> batch;
    batch.reserve(static_cast<std::size_t>(config.batch));
    for (std::int64_t i = 0; i < config.batch; ++i) {
      batch.push_back(train[static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(train.size())))]);
    }
    opt.zero_grad();
    Var loss = model.loss(data, batch);
    loss.backward();
    opt.step();
  }
  return model.evaluate(data);
}

namespace {

std::vector<double> normalized_weights(std::size_t n,
                                       const std::vector<double>& weights) {
  if (weights.empty()) {
    return std::vector<double>(n, 1.0 / static_cast<double>(n));
  }
  check(weights.size() == n, "joint_train: weight arity mismatch");
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  check(total > 0.0, "joint_train: weights must sum positive");
  std::vector<double> out = weights;
  for (double& w : out) {
    w /= total;
  }
  return out;
}

}  // namespace

JointTrainResult joint_train_lm(TransformerLm& model, ModelPruner& pruner,
                                const std::vector<PatternSet>& sets,
                                const Corpus& corpus,
                                const TrainConfig& config,
                                const std::vector<double>& set_weights) {
  check(!sets.empty(), "joint_train_lm: no pattern sets");
  const auto alphas = normalized_weights(sets.size(), set_weights);
  LmBatcher train_batcher(corpus.train(), config.batch, config.seq_len);
  Adam opt(model.parameters(), config.lr);
  Rng rng(config.seed);

  for (std::int64_t step = 0; step < config.steps; ++step) {
    const LmBatch batch = train_batcher.next(rng);
    opt.zero_grad();
    // Fig. 2 forward: one sub-loss per pattern set on the same minibatch;
    // each apply_pattern_set captures its masks into that sub-graph.
    Var total;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      pruner.apply_pattern_set(sets[i]);
      Var sub = scale(model.loss(batch), static_cast<float>(alphas[i]));
      total = total.defined() ? add(total, sub) : sub;
    }
    total.backward();
    opt.step();
  }

  JointTrainResult result;
  for (const auto& set : sets) {
    pruner.apply_pattern_set(set);
    result.per_set_accuracy.push_back(
        eval_lm(model, corpus, config.batch, config.seq_len));
  }
  return result;
}

JointTrainResult joint_train_glue(DistilBertLike& model, ModelPruner& pruner,
                                  const std::vector<PatternSet>& sets,
                                  const GlueDataset& data,
                                  const TrainConfig& config,
                                  const std::vector<double>& set_weights) {
  check(!sets.empty(), "joint_train_glue: no pattern sets");
  const auto alphas = normalized_weights(sets.size(), set_weights);
  Adam opt(model.parameters(), config.lr);
  Rng rng(config.seed);
  const auto& train = data.train();

  for (std::int64_t step = 0; step < config.steps; ++step) {
    std::vector<GlueExample> batch;
    batch.reserve(static_cast<std::size_t>(config.batch));
    for (std::int64_t i = 0; i < config.batch; ++i) {
      batch.push_back(train[static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(train.size())))]);
    }
    opt.zero_grad();
    Var total;
    for (std::size_t i = 0; i < sets.size(); ++i) {
      pruner.apply_pattern_set(sets[i]);
      Var sub = scale(model.loss(data, batch), static_cast<float>(alphas[i]));
      total = total.defined() ? add(total, sub) : sub;
    }
    total.backward();
    opt.step();
  }

  JointTrainResult result;
  for (const auto& set : sets) {
    pruner.apply_pattern_set(set);
    result.per_set_accuracy.push_back(model.evaluate(data));
  }
  return result;
}

}  // namespace rt3
