#include "data/glue.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace rt3 {

namespace {

// Tokens [class * kPoolSize, (class+1) * kPoolSize) are the signal pool for
// that class; everything above the pools is background vocabulary.
constexpr std::int64_t kPoolSize = 16;
constexpr std::int64_t kSepTokenOffset = 0;  // background token 0 acts as SEP

}  // namespace

GlueTaskProfile glue_task_profile(GlueTask task) {
  // Tuned so an unpruned reduced-scale model scores in the neighbourhood of
  // the DistilBERT numbers plotted in the paper's Fig. 5: easy tasks
  // (SST-2, QNLI, QQP, MRPC, MNLI) high, CoLA mid, RTE / WNLI near chance.
  switch (task) {
    case GlueTask::kMnli:
      return {3, 0.16, 0.35};
    case GlueTask::kQqp:
      return {2, 0.11, 0.35};
    case GlueTask::kQnli:
      return {2, 0.10, 0.35};
    case GlueTask::kSst2:
      return {2, 0.08, 0.40};
    case GlueTask::kCola:
      return {2, 0.24, 0.25};
    case GlueTask::kStsB:
      return {1, 0.10, 0.50};  // label_noise reused as score noise scale
    case GlueTask::kMrpc:
      return {2, 0.11, 0.35};
    case GlueTask::kRte:
      return {2, 0.41, 0.20};
    case GlueTask::kWnli:
      return {2, 0.44, 0.15};
  }
  throw CheckError("glue_task_profile: unknown task");
}

GlueDataset::GlueDataset(const GlueTaskConfig& config) : config_(config) {
  const auto profile = glue_task_profile(config_.task);
  check(config_.vocab_size > profile.num_classes * kPoolSize + 8,
        "GlueDataset: vocab too small for signal pools");
  Rng rng(config_.seed);
  train_.reserve(static_cast<std::size_t>(config_.train_size));
  dev_.reserve(static_cast<std::size_t>(config_.dev_size));
  for (std::int64_t i = 0; i < config_.train_size; ++i) {
    train_.push_back(generate_example(rng));
  }
  for (std::int64_t i = 0; i < config_.dev_size; ++i) {
    dev_.push_back(generate_example(rng));
  }
}

MetricType GlueDataset::metric() const {
  switch (config_.task) {
    case GlueTask::kQqp:
    case GlueTask::kMrpc:
      return MetricType::kF1;
    case GlueTask::kCola:
      return MetricType::kMcc;
    case GlueTask::kStsB:
      return MetricType::kSpearman;
    default:
      return MetricType::kAccuracy;
  }
}

std::int64_t GlueDataset::num_classes() const {
  return glue_task_profile(config_.task).num_classes;
}

GlueExample GlueDataset::generate_example(Rng& rng) const {
  const auto profile = glue_task_profile(config_.task);
  const std::int64_t background_base = profile.num_classes * kPoolSize;
  const std::int64_t background_size = config_.vocab_size - background_base;
  const auto background = [&]() -> std::int64_t {
    return background_base + rng.zipf(background_size, 1.05);
  };

  GlueExample ex;
  ex.tokens.reserve(static_cast<std::size_t>(config_.seq_len));

  if (config_.task == GlueTask::kStsB) {
    // Similarity is planted as SHARED-TOPIC overlap: with probability
    // `sim`, a token of the second half is drawn from the shared-topic
    // pool (ids [0, kPoolSize)); otherwise from the background.  The
    // fraction of shared-topic tokens is a bag-of-words-decodable proxy
    // for sentence similarity, so degradation under pruning shows up as a
    // falling Spearman correlation — the behaviour the paper's STS-B
    // columns measure.  The regression target is 5*sim plus noise.
    const std::int64_t half = config_.seq_len / 2;
    const double sim = rng.uniform();
    for (std::int64_t t = 0; t < half; ++t) {
      ex.tokens.push_back(background());
    }
    ex.tokens.push_back(background_base + kSepTokenOffset);
    for (std::int64_t t = 0; t < config_.seq_len - half - 1; ++t) {
      if (rng.bernoulli(sim)) {
        ex.tokens.push_back(rng.uniform_int(kPoolSize));
      } else {
        ex.tokens.push_back(background());
      }
    }
    const double noisy =
        5.0 * sim + rng.normal(0.0, profile.label_noise * 2.5);
    ex.score = static_cast<float>(std::clamp(noisy, 0.0, 5.0));
    ex.label = 0;
    return ex;
  }

  const std::int64_t true_class = rng.uniform_int(profile.num_classes);
  for (std::int64_t t = 0; t < config_.seq_len; ++t) {
    if (rng.bernoulli(profile.signal_density)) {
      ex.tokens.push_back(true_class * kPoolSize + rng.uniform_int(kPoolSize));
    } else {
      ex.tokens.push_back(background());
    }
  }
  // Label noise bounds the achievable score, task by task.
  if (rng.bernoulli(profile.label_noise)) {
    std::int64_t flipped = rng.uniform_int(profile.num_classes - 1);
    if (flipped >= true_class) {
      ++flipped;
    }
    ex.label = flipped;
  } else {
    ex.label = true_class;
  }
  return ex;
}

double GlueDataset::evaluate(
    const std::vector<std::int64_t>& predicted_labels) const {
  check(!is_regression(), "evaluate: use evaluate_regression for STS-B");
  check(predicted_labels.size() == dev_.size(),
        "evaluate: prediction count mismatch");
  std::vector<std::int64_t> truth;
  truth.reserve(dev_.size());
  for (const auto& ex : dev_) {
    truth.push_back(ex.label);
  }
  switch (metric()) {
    case MetricType::kAccuracy:
      return accuracy(predicted_labels, truth);
    case MetricType::kF1:
      return f1_score(predicted_labels, truth);
    case MetricType::kMcc:
      return matthews_corr(predicted_labels, truth);
    case MetricType::kSpearman:
      break;
  }
  throw CheckError("evaluate: metric/task mismatch");
}

double GlueDataset::evaluate_regression(
    const std::vector<double>& predicted_scores) const {
  check(is_regression(), "evaluate_regression: task is not STS-B");
  check(predicted_scores.size() == dev_.size(),
        "evaluate_regression: prediction count mismatch");
  std::vector<double> truth;
  truth.reserve(dev_.size());
  for (const auto& ex : dev_) {
    truth.push_back(static_cast<double>(ex.score));
  }
  return spearman(predicted_scores, truth);
}

std::string GlueDataset::task_name(GlueTask task) {
  switch (task) {
    case GlueTask::kMnli:
      return "MNLI";
    case GlueTask::kQqp:
      return "QQP";
    case GlueTask::kQnli:
      return "QNLI";
    case GlueTask::kSst2:
      return "SST-2";
    case GlueTask::kCola:
      return "CoLA";
    case GlueTask::kStsB:
      return "STS-B";
    case GlueTask::kMrpc:
      return "MRPC";
    case GlueTask::kRte:
      return "RTE";
    case GlueTask::kWnli:
      return "WNLI";
  }
  throw CheckError("task_name: unknown task");
}

std::string GlueDataset::metric_name(MetricType metric) {
  switch (metric) {
    case MetricType::kAccuracy:
      return "accuracy";
    case MetricType::kF1:
      return "F1";
    case MetricType::kMcc:
      return "MCC";
    case MetricType::kSpearman:
      return "Spearman";
  }
  throw CheckError("metric_name: unknown metric");
}

}  // namespace rt3
