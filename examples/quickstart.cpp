// Quickstart: the RT3 API in ~80 lines.
//
//   1. Train a small Transformer LM on the synthetic WikiText-2 analog.
//   2. Level 1: block-structured pruning -> fixed backbone.
//   3. Level 2: build two pattern sets of different sparsity.
//   4. Switch between them at "run time" and watch sparsity, modeled
//      mobile latency and accuracy move together.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "runtime/engine.hpp"

int main() {
  using namespace rt3;
  std::cout << "RT3 quickstart\n==============\n";

  // 1. Data + model + pre-training.
  CorpusConfig corpus_cfg;
  corpus_cfg.vocab_size = 64;
  corpus_cfg.num_tokens = 8000;
  corpus_cfg.rule_strength = 0.96;
  const Corpus corpus(corpus_cfg);

  TransformerLmConfig model_cfg;
  model_cfg.vocab_size = 64;
  model_cfg.d_model = 32;
  model_cfg.num_heads = 4;
  model_cfg.ffn_hidden = 64;
  TransformerLm model(model_cfg);

  TrainConfig pretrain;
  pretrain.steps = 200;
  pretrain.batch = 12;
  pretrain.seq_len = 16;
  pretrain.lr = 8e-3F;
  const double dense_acc = train_lm(model, corpus, pretrain);
  std::cout << "dense model accuracy: " << fmt_pct(dense_acc) << "\n";

  // 2. Level 1: block-structured pruning (Algorithm 1) + recovery.
  ModelPruner pruner(model.prunable());
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.4;
  pruner.apply_bp(bp);
  TrainConfig recover = pretrain;
  recover.steps = 80;
  const double backbone_acc = train_lm(model, corpus, recover);
  std::cout << "backbone (BP " << fmt_pct(pruner.overall_sparsity())
            << " sparse) accuracy: " << fmt_pct(backbone_acc) << "\n";

  // 3. Level 2: two pattern sets built from backbone importance.
  Rng rng(7);
  std::vector<PatternSet> sets;
  sets.push_back(pattern_set_from_layers(pruner.layers(), 8, 0.45, 4, rng));
  sets.push_back(pattern_set_from_layers(pruner.layers(), 8, 0.75, 4, rng));
  const JointTrainResult joint =
      joint_train_lm(model, pruner, sets, corpus, recover);

  // 4. Run-time switching with modeled mobile latency.
  const ModelSpec spec = ModelSpec::paper_transformer();
  LatencyModel latency;
  latency.calibrate(spec, 0.6426, ExecMode::kBlock, 1400.0, 114.59);
  ReconfigEngine engine(pruner, sets, SwitchCostModel(), spec, 100);

  TablePrinter t({"mode", "overall sparsity", "latency@1.4GHz",
                  "latency@800MHz", "accuracy", "switch cost"});
  const std::vector<std::string> names = {"high-accuracy", "energy-saver"};
  for (std::int64_t i = 0; i < engine.num_levels(); ++i) {
    const SwitchReport report = engine.switch_to(i);
    const double s = pruner.overall_sparsity();
    t.add_row({names[static_cast<std::size_t>(i)], fmt_pct(s),
               fmt_f(latency.latency_ms(spec, s, ExecMode::kPattern, 1400.0), 1) + " ms",
               fmt_f(latency.latency_ms(spec, s, ExecMode::kPattern, 800.0), 1) + " ms",
               fmt_pct(joint.per_set_accuracy[static_cast<std::size_t>(i)]),
               fmt_f(report.modeled_ms, 2) + " ms"});
  }
  std::cout << "\n" << t.str();
  std::cout << "\nThe backbone stayed resident the whole time; each switch "
               "moved only a pattern set (milliseconds), not the model "
               "(tens of seconds).\n";
  return 0;
}
