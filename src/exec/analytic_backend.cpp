#include "exec/analytic_backend.hpp"

#include <utility>

#include "common/check.hpp"

namespace rt3 {

AnalyticBackend::AnalyticBackend(LatencyModel latency, ModelSpec spec,
                                 ExecMode mode, std::vector<double> freqs_mhz,
                                 std::vector<double> sparsities)
    : latency_(latency),
      spec_(std::move(spec)),
      mode_(mode),
      freqs_mhz_(std::move(freqs_mhz)),
      sparsities_(std::move(sparsities)) {
  check(!freqs_mhz_.empty(), "AnalyticBackend: no levels");
  check(freqs_mhz_.size() == sparsities_.size(),
        "AnalyticBackend: one sparsity per level required");
}

double AnalyticBackend::batch_latency_ms(std::int64_t batch_size,
                                         std::int64_t level_pos) const {
  check(batch_size >= 1, "AnalyticBackend: empty batch");
  check(level_pos >= 0 && level_pos < num_levels(),
        "AnalyticBackend: level position out of range");
  const auto pos = static_cast<std::size_t>(level_pos);
  const double cycles_one =
      latency_.cycles(spec_, sparsities_[pos], mode_);
  const double fixed = latency_.config().fixed_cycles;
  const double batch_cycles =
      fixed + (cycles_one - fixed) * static_cast<double>(batch_size);
  return batch_cycles / (freqs_mhz_[pos] * 1000.0);
}

BatchExecution AnalyticBackend::run_batch(std::int64_t batch_size,
                                          std::int64_t level_pos) {
  return {batch_latency_ms(batch_size, level_pos), 0.0};
}

double AnalyticBackend::activate_level(std::int64_t level_pos) {
  check(level_pos >= 0 && level_pos < num_levels(),
        "AnalyticBackend: level position out of range");
  return 0.0;  // nothing to swap: the model is level-agnostic
}

}  // namespace rt3
