// Clang thread-safety-analysis attribute shim (no-ops elsewhere).
//
// The serving stack's concurrency contract — which mutex guards which
// member, which methods must (not) be called with a lock held — is
// written down with these macros so `clang++ -Wthread-safety
// -Werror=thread-safety-analysis` (the CI static-analysis leg) rejects a
// PR that touches guarded state without the right lock, instead of the
// contract living only in comments.  See rt3::Mutex in common/lockdep.hpp
// for the capability-annotated mutex these attributes attach to;
// std::mutex itself carries no attributes, so the analysis is vacuous on
// raw std::mutex (which the `raw-mutex` rule of tools/rt3_lint.py bans in
// src/ for exactly that reason).
//
// Macro set and semantics follow the clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define RT3_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RT3_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex").
#define RT3_CAPABILITY(x) RT3_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define RT3_SCOPED_CAPABILITY RT3_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be touched while `x` is held.
#define RT3_GUARDED_BY(x) RT3_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose POINTEE may only be touched while `x` is held.
#define RT3_PT_GUARDED_BY(x) RT3_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and did not hold it on entry).
#define RT3_ACQUIRE(...) RT3_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry).
#define RT3_RELEASE(...) RT3_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability; holds it iff it returned `b`.
#define RT3_TRY_ACQUIRE(b, ...) \
  RT3_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Caller must hold the capability across the call.
#define RT3_REQUIRES(...) RT3_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself —
/// calling with it held would self-deadlock).
#define RT3_EXCLUDES(...) RT3_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Returns a reference to the capability guarding the returned object.
#define RT3_RETURN_CAPABILITY(x) RT3_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model (document why!).
#define RT3_NO_THREAD_SAFETY_ANALYSIS \
  RT3_THREAD_ANNOTATION(no_thread_safety_analysis)
