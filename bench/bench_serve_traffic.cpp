// Serving-under-traffic bench: battery-discharge serve sessions per
// traffic scenario (steady Poisson, bursty on/off, diurnal ramp) x
// scheduling policy (fifo, edf, edf-prio), identical battery / ladder /
// batching policy, live ReconfigEngine.  The edf-prio column runs with
// 3 traffic priority classes and governor-aware batching enabled, so the
// switch-latency tail is exercised too.
//
// Emits a human table on stdout and machine-readable BENCH_serve.json
// ({scenarios -> {policy -> stats}}) so later PRs have a perf trajectory
// to compare against — and so tools/bench_compare.py can gate CI on
// deadline-miss-rate / p99 regressions vs bench/baselines/.
//
//   bench_serve_traffic [OUT.json] [REPEATS] [SEED]
//
// REPEATS (default 1) re-runs every cell with seeds SEED..SEED+R-1; the
// gate fields (miss_rate, p99_ms) are means over repeats.  The virtual
// clock makes every repeat bit-deterministic from its seed.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "serve/policy.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"

namespace {

using namespace rt3;

/// One bench cell: scenario x policy, averaged over repeats.
struct Cell {
  ServerStats first;  // full stats of the first repeat (seed = SEED)
  double mean_miss_rate = 0.0;
  double mean_p99_ms = 0.0;
  double mean_switch_lag_p99_ms = 0.0;
};

Cell run_cell(TrafficScenario scenario, SchedulingPolicy policy,
              std::int64_t repeats, std::uint64_t seed) {
  Cell cell;
  for (std::int64_t rep = 0; rep < repeats; ++rep) {
    ServeSessionConfig scfg;  // defaults: 12 kmJ battery, T=115, batch<=2
    scfg.scheduler.policy = policy;
    if (policy == SchedulingPolicy::kEdfPriority) {
      // The priority column doubles as the governor-aware-batching cell.
      scfg.governor_margin = 0.05;
    }
    TrafficConfig tcfg;
    tcfg.scenario = scenario;
    tcfg.rate_rps = 3.0;
    tcfg.duration_ms = 60'000.0;
    // Mixed interactive/background workload: 30% of requests carry a
    // tight 350 ms deadline, the rest can absorb a second of queueing.
    // With one uniform slack, deadline order degenerates to arrival
    // order and every policy coincides with FIFO.
    tcfg.deadline_slack_ms = 1'000.0;
    tcfg.tight_fraction = 0.3;
    tcfg.tight_slack_ms = 350.0;
    tcfg.seed = seed + static_cast<std::uint64_t>(rep);
    if (policy == SchedulingPolicy::kEdfPriority) {
      tcfg.priority_classes = 3;
    }
    const std::vector<Request> schedule = generate_traffic(tcfg);
    ServeSession session(scfg);
    const ServerStats stats = serve_concurrent(session.server(), schedule, 2);
    if (rep == 0) {
      cell.first = stats;
    }
    cell.mean_miss_rate += stats.miss_rate();
    cell.mean_p99_ms += stats.latency_percentile(99.0);
    cell.mean_switch_lag_p99_ms += stats.switch_lag_percentile(99.0);
  }
  const double r = static_cast<double>(repeats);
  cell.mean_miss_rate /= r;
  cell.mean_p99_ms /= r;
  cell.mean_switch_lag_p99_ms /= r;
  return cell;
}

/// Whole-string integer parse: rejects trailing garbage ("3x") that
/// std::stoll would silently truncate.
bool parse_whole_int(const char* text, long long& out) {
  try {
    std::size_t pos = 0;
    out = std::stoll(text, &pos);
    return pos == std::strlen(text);
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_serve.json");
  std::int64_t repeats = 1;
  std::uint64_t seed = 7;
  long long parsed = 0;
  if (argc > 2) {
    if (!parse_whole_int(argv[2], parsed) || parsed < 1) {
      std::cerr << "bench_serve_traffic: REPEATS must be an integer >= 1, "
                << "got '" << argv[2] << "'\n";
      return 2;
    }
    repeats = parsed;
  }
  if (argc > 3) {
    if (!parse_whole_int(argv[3], parsed) || parsed < 0) {
      std::cerr << "bench_serve_traffic: SEED must be a non-negative "
                << "integer, got '" << argv[3] << "'\n";
      return 2;
    }
    seed = static_cast<std::uint64_t>(parsed);
  }

  std::cout << "\n=== serve: battery-aware serving under traffic ===\n"
            << "One battery discharge per scenario x policy; same ladder\n"
            << "{l6,l4,l3}, same mean load, pattern-set switches between\n"
            << "batches.  " << repeats << " repeat(s), seed " << seed
            << ".  edf-prio runs 3 priority classes + governor-aware\n"
            << "batching (margin 5%).\n\n";

  TablePrinter t({"scenario", "policy", "requests", "served", "batches",
                  "thrpt (req/s)", "p99 (ms)", "miss rate", "sw lag p99",
                  "switches"});
  std::string json = "{\n  \"seed\": " + std::to_string(seed) +
                     ",\n  \"repeats\": " + std::to_string(repeats) +
                     ",\n  \"scenarios\": {\n";
  bool first_scenario = true;
  for (TrafficScenario scenario :
       {TrafficScenario::kSteady, TrafficScenario::kBurst,
        TrafficScenario::kDiurnal}) {
    json += std::string(first_scenario ? "" : ",\n") + "    \"" +
            traffic_scenario_name(scenario) + "\": {\n";
    first_scenario = false;
    bool first_policy = true;
    for (SchedulingPolicy policy :
         {SchedulingPolicy::kFifo, SchedulingPolicy::kEdf,
          SchedulingPolicy::kEdfPriority}) {
      const Cell cell = run_cell(scenario, policy, repeats, seed);
      const ServerStats& stats = cell.first;
      t.add_row({traffic_scenario_name(scenario),
                 scheduling_policy_name(policy),
                 std::to_string(stats.submitted),
                 std::to_string(stats.completed),
                 std::to_string(stats.batches),
                 fmt_f(stats.throughput_rps(), 2),
                 fmt_f(cell.mean_p99_ms, 1), fmt_pct(cell.mean_miss_rate),
                 fmt_f(cell.mean_switch_lag_p99_ms, 2),
                 std::to_string(stats.switches)});
      json += std::string(first_policy ? "" : ",\n") + "      \"" +
              scheduling_policy_name(policy) +
              "\": {\"miss_rate\": " + std::to_string(cell.mean_miss_rate) +
              ", \"p99_ms\": " + std::to_string(cell.mean_p99_ms) +
              ", \"switch_lag_p99_ms\": " +
              std::to_string(cell.mean_switch_lag_p99_ms) +
              ",\n        \"stats\": " + stats.to_json() + "}";
      first_policy = false;
    }
    json += "\n    }";
  }
  json += "\n  }\n}\n";
  std::cout << t.str();

  std::ofstream out(out_path);
  out << json;
  out.close();
  std::cout << "\nwrote " << out_path << "\n"
            << "FIFO launches whatever arrived first, so during bursts the\n"
            << "queue's tail blows deadlines that EDF meets by launching the\n"
            << "most urgent work first; edf-prio trades a little class-0 miss\n"
            << "rate headroom for bounded-delay service of lower classes, and\n"
            << "its governor margin shrinks batches near a switch threshold\n"
            << "so the drain-then-switch point lands sooner.\n";
  return 0;
}
