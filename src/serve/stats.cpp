#include "serve/stats.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/metrics.hpp"

namespace rt3 {
namespace {

double sum(const std::vector<double>& xs) {
  double total = 0.0;
  for (double x : xs) {
    total += x;
  }
  return total;
}

/// p50/p95/p99 from ONE sorted copy (summary/to_json report all three;
/// sorting per percentile would triple the work on large sessions).
struct LatencyTail {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

LatencyTail latency_tail(std::vector<double> xs) {
  LatencyTail tail;
  if (xs.empty()) {
    return tail;
  }
  std::sort(xs.begin(), xs.end());
  const auto at = [&](double p) {
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    if (lo + 1 >= xs.size()) {
      return xs.back();
    }
    return xs[lo] + (rank - static_cast<double>(lo)) * (xs[lo + 1] - xs[lo]);
  };
  tail.p50 = at(50.0);
  tail.p95 = at(95.0);
  tail.p99 = at(99.0);
  return tail;
}

std::vector<double> merged_latencies(
    const std::vector<std::pair<std::int64_t, ServerStats>>& per_model) {
  std::vector<double> merged;
  for (const auto& [id, s] : per_model) {
    merged.insert(merged.end(), s.latency_ms.begin(), s.latency_ms.end());
  }
  return merged;
}

}  // namespace

void ServerStats::ensure_class(std::int64_t priority_class) {
  check(priority_class >= 0, "ServerStats: negative priority class");
  const auto need = static_cast<std::size_t>(priority_class) + 1;
  if (completed_per_class.size() < need) {
    completed_per_class.resize(need, 0);
    misses_per_class.resize(need, 0);
  }
}

double ServerStats::throughput_rps() const {
  if (sim_end_ms <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(completed) / (sim_end_ms / 1000.0);
}

double ServerStats::miss_rate() const {
  if (completed == 0) {
    return 0.0;
  }
  return static_cast<double>(deadline_misses) / static_cast<double>(completed);
}

double ServerStats::class_miss_rate(std::int64_t priority_class) const {
  const auto i = static_cast<std::size_t>(priority_class);
  check(priority_class >= 0 && i < completed_per_class.size(),
        "ServerStats: priority class out of range");
  if (completed_per_class[i] == 0) {
    return 0.0;
  }
  return static_cast<double>(misses_per_class[i]) /
         static_cast<double>(completed_per_class[i]);
}

double ServerStats::mean_batch_size() const {
  if (batches == 0) {
    return 0.0;
  }
  double total = 0.0;
  for (std::int64_t b : batch_sizes) {
    total += static_cast<double>(b);
  }
  return total / static_cast<double>(batches);
}

double ServerStats::latency_percentile(double p) const {
  return percentile(latency_ms, p);
}

double ServerStats::switch_percentile(double p) const {
  return percentile(switch_ms, p);
}

double ServerStats::switch_lag_percentile(double p) const {
  return percentile(switch_lag_ms, p);
}

double ServerStats::queue_wait_total_ms() const { return sum(queue_wait_ms); }

double ServerStats::batch_wait_total_ms() const { return sum(batch_wait_ms); }

double ServerStats::switch_stall_total_ms() const {
  return sum(switch_stall_req_ms);
}

void ServerStats::publish(MetricsRegistry& registry,
                          const MetricLabels& labels) const {
  registry.counter("serve.submitted", labels).inc(submitted);
  registry.counter("serve.completed", labels).inc(completed);
  registry.counter("serve.dropped", labels).inc(dropped);
  registry.counter("serve.shed", labels).inc(shed);
  registry.counter("serve.rejected", labels).inc(rejected);
  registry.counter("serve.batches", labels).inc(batches);
  registry.counter("serve.switches", labels).inc(switches);
  registry.counter("serve.deadline_misses", labels).inc(deadline_misses);
  registry.counter("serve.miss_queued", labels).inc(miss_queued);
  registry.counter("serve.miss_switch", labels).inc(miss_switch);
  registry.counter("serve.miss_exec", labels).inc(miss_exec);
  registry.gauge("serve.energy_used_mj", labels).set(energy_used_mj);
  registry.gauge("serve.busy_ms", labels).set(busy_ms);
  registry.gauge("serve.sim_end_ms", labels).set(sim_end_ms);
  registry.gauge("serve.switch_ms_total", labels).set(switch_ms_total);
  for (std::size_t i = 0; i < runs_per_level.size(); ++i) {
    MetricLabels level_labels = labels;
    level_labels.add("level", static_cast<std::int64_t>(i));
    registry.counter("serve.runs_per_level", level_labels)
        .inc(static_cast<std::int64_t>(runs_per_level[i]));
  }
  Histogram& lat = registry.histogram("serve.latency_ms", labels);
  for (double x : latency_ms) {
    lat.observe(x);
  }
  Histogram& queue = registry.histogram("serve.queue_wait_ms", labels);
  for (double x : queue_wait_ms) {
    queue.observe(x);
  }
  Histogram& batch = registry.histogram("serve.batch_wait_ms", labels);
  for (double x : batch_wait_ms) {
    batch.observe(x);
  }
  Histogram& stall = registry.histogram("serve.switch_stall_ms", labels);
  for (double x : switch_stall_req_ms) {
    stall.observe(x);
  }
  Histogram& sizes = registry.histogram("serve.batch_size", labels, 1.0, 12);
  for (std::int64_t b : batch_sizes) {
    sizes.observe(static_cast<double>(b));
  }
}

std::string ServerStats::summary() const {
  const LatencyTail tail = latency_tail(latency_ms);
  std::ostringstream os;
  os << "  backend          : " << (backend.empty() ? "analytic" : backend)
     << "\n"
     << "  policy           : " << (policy.empty() ? "fifo" : policy) << "\n"
     << "  submitted        : " << submitted << "\n"
     << "  completed        : " << completed << "\n"
     << "  dropped          : " << dropped << "\n"
     << "  shed             : " << shed << "\n"
     << "  rejected         : " << rejected << "\n"
     << "  batches          : " << batches << " (mean size "
     << fmt_f(mean_batch_size(), 2) << ")\n"
     << "  switches         : " << switches << " ("
     << fmt_f(switch_ms_total, 2) << " ms total, drain lag p99 "
     << fmt_f(switch_lag_percentile(99.0), 2) << " ms)\n"
     << "  plan swaps       : " << plan_swap_ms.size() << " ("
     << fmt_f(plan_swap_ms_total, 4) << " ms wall total)\n"
     << "  throughput       : " << fmt_f(throughput_rps(), 1) << " req/s\n"
     << "  latency p50/p95/p99 : " << fmt_f(tail.p50, 1) << " / "
     << fmt_f(tail.p95, 1) << " / " << fmt_f(tail.p99, 1) << " ms\n"
     << "  deadline misses  : " << deadline_misses << " ("
     << fmt_pct(miss_rate()) << ")\n"
     << "  miss attribution : queued " << miss_queued << ", switch "
     << miss_switch << ", exec " << miss_exec << "\n"
     << "  wait breakdown   : queue " << fmt_f(queue_wait_total_ms(), 0)
     << " / batch " << fmt_f(batch_wait_total_ms(), 0) << " / stall "
     << fmt_f(switch_stall_total_ms(), 0) << " ms total\n";
  if (completed_per_class.size() > 1) {
    os << "  miss rate by class : ";
    for (std::size_t c = 0; c < completed_per_class.size(); ++c) {
      os << (c ? "  " : "") << "c" << c << " "
         << fmt_pct(class_miss_rate(static_cast<std::int64_t>(c)));
    }
    os << "\n";
  }
  os << "  session length   : " << fmt_f(sim_end_ms / 1000.0, 1)
     << " s virtual (busy " << fmt_f(busy_ms / 1000.0, 1) << " s)\n"
     << "  kernel wall time : " << fmt_f(kernel_wall_ms_total, 2) << " ms\n"
     << "  energy used      : " << fmt_f(energy_used_mj, 0) << " mJ\n"
     << "  runs per level   : ";
  for (double runs : runs_per_level) {
    os << fmt_f(runs, 0) << " ";
  }
  os << "\n";
  return os.str();
}

std::string ServerStats::to_json() const {
  const LatencyTail tail = latency_tail(latency_ms);
  std::ostringstream os;
  os << "{"
     << "\"backend\": \"" << (backend.empty() ? "analytic" : backend)
     << "\", "
     << "\"policy\": \"" << (policy.empty() ? "fifo" : policy) << "\", "
     << "\"submitted\": " << submitted << ", "
     << "\"completed\": " << completed << ", "
     << "\"dropped\": " << dropped << ", "
     << "\"shed\": " << shed << ", "
     << "\"rejected\": " << rejected << ", "
     << "\"batches\": " << batches << ", "
     << "\"mean_batch_size\": " << mean_batch_size() << ", "
     << "\"switches\": " << switches << ", "
     << "\"switch_ms_total\": " << switch_ms_total << ", "
     << "\"switch_p50_ms\": " << switch_percentile(50.0) << ", "
     << "\"switch_p99_ms\": " << switch_percentile(99.0) << ", "
     << "\"switch_lag_p50_ms\": " << switch_lag_percentile(50.0) << ", "
     << "\"switch_lag_p99_ms\": " << switch_lag_percentile(99.0) << ", "
     << "\"kernel_wall_ms_total\": " << kernel_wall_ms_total << ", "
     << "\"plan_swap_ms_total\": " << plan_swap_ms_total << ", "
     << "\"plan_swaps\": " << plan_swap_ms.size() << ", "
     << "\"throughput_rps\": " << throughput_rps() << ", "
     << "\"p50_ms\": " << tail.p50 << ", "
     << "\"p95_ms\": " << tail.p95 << ", "
     << "\"p99_ms\": " << tail.p99 << ", "
     << "\"deadline_misses\": " << deadline_misses << ", "
     << "\"miss_queued\": " << miss_queued << ", "
     << "\"miss_switch\": " << miss_switch << ", "
     << "\"miss_exec\": " << miss_exec << ", "
     << "\"queue_wait_ms_total\": " << queue_wait_total_ms() << ", "
     << "\"batch_wait_ms_total\": " << batch_wait_total_ms() << ", "
     << "\"switch_stall_ms_total\": " << switch_stall_total_ms() << ", "
     << "\"miss_rate\": " << miss_rate() << ", "
     << "\"miss_rate_per_class\": [";
  for (std::size_t c = 0; c < completed_per_class.size(); ++c) {
    os << (c ? ", " : "") << class_miss_rate(static_cast<std::int64_t>(c));
  }
  os << "], "
     << "\"completed_per_class\": [";
  for (std::size_t c = 0; c < completed_per_class.size(); ++c) {
    os << (c ? ", " : "") << completed_per_class[c];
  }
  os << "], "
     << "\"sim_end_ms\": " << sim_end_ms << ", "
     << "\"busy_ms\": " << busy_ms << ", "
     << "\"energy_used_mj\": " << energy_used_mj << ", "
     << "\"runs_per_level\": [";
  for (std::size_t i = 0; i < runs_per_level.size(); ++i) {
    os << (i ? ", " : "") << runs_per_level[i];
  }
  os << "]}";
  return os.str();
}

const ServerStats& NodeStats::model(std::int64_t model_id) const {
  for (const auto& [id, stats] : per_model) {
    if (id == model_id) {
      return stats;
    }
  }
  throw CheckError("NodeStats: no model " + std::to_string(model_id));
}

bool NodeStats::has_model(std::int64_t model_id) const {
  for (const auto& [id, stats] : per_model) {
    if (id == model_id) {
      return true;
    }
  }
  return false;
}

void NodeStats::aggregate() {
  submitted = unroutable;
  completed = dropped = shed = rejected = 0;
  batches = switches = deadline_misses = 0;
  miss_queued = miss_switch = miss_exec = 0;
  busy_ms = energy_used_mj = switch_ms_total = 0.0;
  for (const auto& [id, s] : per_model) {
    submitted += s.submitted;
    completed += s.completed;
    dropped += s.dropped;
    shed += s.shed;
    rejected += s.rejected;
    batches += s.batches;
    switches += s.switches;
    deadline_misses += s.deadline_misses;
    miss_queued += s.miss_queued;
    miss_switch += s.miss_switch;
    miss_exec += s.miss_exec;
    busy_ms += s.busy_ms;
    energy_used_mj += s.energy_used_mj;
    switch_ms_total += s.switch_ms_total;
  }
}

void NodeStats::publish(MetricsRegistry& registry) const {
  for (const auto& [id, s] : per_model) {
    MetricLabels labels;
    labels.add("model", id);
    s.publish(registry, labels);
  }
  registry.counter("node.unroutable").inc(unroutable);
  registry.gauge("node.sim_end_ms").set(sim_end_ms);
}

double NodeStats::miss_rate() const {
  if (completed == 0) {
    return 0.0;
  }
  return static_cast<double>(deadline_misses) / static_cast<double>(completed);
}

double NodeStats::throughput_rps() const {
  if (sim_end_ms <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(completed) / (sim_end_ms / 1000.0);
}

double NodeStats::latency_percentile(double p) const {
  return percentile(merged_latencies(per_model), p);
}

double NodeStats::switch_lag_percentile(double p) const {
  std::vector<double> merged;
  for (const auto& [id, s] : per_model) {
    merged.insert(merged.end(), s.switch_lag_ms.begin(),
                  s.switch_lag_ms.end());
  }
  return percentile(merged, p);
}

std::string NodeStats::summary() const {
  const LatencyTail tail = latency_tail(merged_latencies(per_model));
  std::ostringstream os;
  os << "  models           : " << per_model.size() << "\n"
     << "  submitted        : " << submitted
     << (unroutable > 0 ? " (" + std::to_string(unroutable) + " unroutable)"
                        : "")
     << "\n"
     << "  completed        : " << completed << "\n"
     << "  dropped          : " << dropped << "\n"
     << "  shed / rejected  : " << shed << " / " << rejected << "\n"
     << "  batches          : " << batches << "\n"
     << "  switches         : " << switches << " ("
     << fmt_f(switch_ms_total, 2) << " ms total, all models)\n"
     << "  throughput       : " << fmt_f(throughput_rps(), 1) << " req/s\n"
     << "  latency p50/p99  : " << fmt_f(tail.p50, 1) << " / "
     << fmt_f(tail.p99, 1) << " ms\n"
     << "  deadline misses  : " << deadline_misses << " ("
     << fmt_pct(miss_rate()) << ")\n"
     << "  miss attribution : queued " << miss_queued << ", switch "
     << miss_switch << ", exec " << miss_exec << "\n"
     << "  session length   : " << fmt_f(sim_end_ms / 1000.0, 1)
     << " s virtual (busy " << fmt_f(busy_ms / 1000.0, 1) << " s)\n"
     << "  energy used      : " << fmt_f(energy_used_mj, 0) << " mJ\n"
     << "  per model        :\n";
  for (const auto& [id, s] : per_model) {
    os << "    m" << id << ": " << s.completed << "/" << s.submitted
       << " served, miss " << fmt_pct(s.miss_rate()) << ", p99 "
       << fmt_f(s.latency_percentile(99.0), 1) << " ms, " << s.batches
       << " batches, " << s.switches << " switches"
       << (s.rejected > 0 ? ", " + std::to_string(s.rejected) + " rejected"
                          : "")
       << "\n";
  }
  return os.str();
}

std::string NodeStats::to_json() const {
  const LatencyTail tail = latency_tail(merged_latencies(per_model));
  std::ostringstream os;
  os << "{"
     << "\"models\": {";
  bool first = true;
  for (const auto& [id, s] : per_model) {
    os << (first ? "" : ", ") << "\"" << id << "\": " << s.to_json();
    first = false;
  }
  os << "}, "
     << "\"unroutable\": " << unroutable << ", "
     << "\"submitted\": " << submitted << ", "
     << "\"completed\": " << completed << ", "
     << "\"dropped\": " << dropped << ", "
     << "\"shed\": " << shed << ", "
     << "\"rejected\": " << rejected << ", "
     << "\"batches\": " << batches << ", "
     << "\"switches\": " << switches << ", "
     << "\"switch_ms_total\": " << switch_ms_total << ", "
     << "\"throughput_rps\": " << throughput_rps() << ", "
     << "\"p50_ms\": " << tail.p50 << ", "
     << "\"p99_ms\": " << tail.p99 << ", "
     << "\"deadline_misses\": " << deadline_misses << ", "
     << "\"miss_queued\": " << miss_queued << ", "
     << "\"miss_switch\": " << miss_switch << ", "
     << "\"miss_exec\": " << miss_exec << ", "
     << "\"miss_rate\": " << miss_rate() << ", "
     << "\"sim_end_ms\": " << sim_end_ms << ", "
     << "\"busy_ms\": " << busy_ms << ", "
     << "\"energy_used_mj\": " << energy_used_mj << "}";
  return os.str();
}

}  // namespace rt3
