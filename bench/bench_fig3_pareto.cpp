// Reproduces paper Fig. 3: search-space exploration.
//
// (a) Pareto frontiers of explored solutions (weighted accuracy vs number
//     of runs) under the loose (104 ms) and tight (94 ms) constraints; the
//     loose frontier must cover the tight one.
// (b,c) The best solutions P_L / P_T: per-level accuracy-vs-sparsity
//     curves for RT3, the heuristic baseline (smallest sparsity meeting T,
//     jointly trained), the accuracy upper bound, and the reference lines
//     for the original and BP-only models.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "search/space.hpp"

namespace {

using namespace rt3;

struct FrontierRun {
  Rt3Result result;
  std::vector<double> heuristic_acc;
  std::vector<double> heuristic_sparsity;
  std::vector<double> ub_acc;
};

FrontierRun explore(double timing_ms, std::uint64_t seed,
                    std::int64_t episodes) {
  FrontierRun out;
  bench::LmWorkload w = bench::make_lm_workload(seed);
  // Clone the pre-trained model for the heuristic and UB baselines (same
  // starting point as RT3, no redundant retraining).
  TransformerLm heuristic_model(w.model->config());
  copy_parameters(heuristic_model, *w.model);
  TransformerLm ub_model(w.model->config());
  copy_parameters(ub_model, *w.model);

  Rt3Options options = bench::bench_options(timing_ms, episodes);
  Rt3LmPipeline pipeline(*w.model, *w.corpus, options,
                         ModelSpec::paper_transformer());
  out.result = pipeline.run();

  // Heuristic baseline: per level, the smallest grid sparsity meeting T,
  // jointly trained on the cloned pre-trained model.
  ModelPruner pruner(heuristic_model.prunable());
  pruner.apply_bp(options.bp);
  train_lm(heuristic_model, *w.corpus, options.backbone_train);
  const double backbone_sparsity = pruner.overall_sparsity();

  const ModelSpec spec = ModelSpec::paper_transformer();
  const LatencyModel& latency = pipeline.latency_model();
  const VfTable table = VfTable::odroid_xu3_a7();
  Rng rng(seed + 7);
  std::vector<PatternSet> heuristic_sets;
  for (std::int64_t li : {5, 3, 2}) {
    const double target = std::max(
        backbone_sparsity,
        latency.sparsity_for_latency(spec, ExecMode::kPattern,
                                     table.level(li).freq_mhz, timing_ms));
    heuristic_sets.push_back(pattern_set_from_layers(
        pruner.layers(), options.space.psize, target,
        options.space.patterns_per_set, rng));
  }
  for (const auto& set : heuristic_sets) {
    out.heuristic_sparsity.push_back(pruner.apply_pattern_set(set));
    pruner.restore_backbone();
  }
  out.heuristic_acc = joint_train_lm(heuristic_model, pruner, heuristic_sets,
                                     *w.corpus, options.final_train)
                          .per_set_accuracy;

  // Accuracy upper bound on RT3's chosen sets.
  out.ub_acc = bench::ub_accuracies_lm(ub_model, *w.corpus, options.bp,
                                       out.result.chosen_sets,
                                       options.final_train);
  return out;
}

void print_frontier(const std::string& label, const Rt3Result& result) {
  std::cout << "\n  " << label << " explored points (weighted acc, runs 1e6, "
            << "feasible):\n";
  for (const auto& p : result.explored) {
    std::cout << "    acc=" << fmt_pct(p.weighted_accuracy)
              << "  runs=" << fmt_millions(p.total_runs)
              << "  reward=" << fmt_f(p.reward, 3)
              << (p.feasible ? "" : "  [infeasible]") << "\n";
  }
  ParetoFront front;
  std::int64_t tag = 0;
  for (const auto& p : result.explored) {
    if (p.feasible) {
      front.insert({p.weighted_accuracy, p.total_runs, tag});
    }
    ++tag;
  }
  std::cout << "  Pareto frontier:\n";
  for (const auto& p : front.front()) {
    std::cout << "    acc=" << fmt_pct(p.accuracy)
              << "  runs=" << fmt_millions(p.runs) << "\n";
  }
}

void print_best_solution(const std::string& label, const FrontierRun& run) {
  std::cout << "\n  " << label << ":\n";
  TablePrinter t({"Level", "Sparsity", "RT3 acc", "Heuristic acc", "UB acc"});
  for (std::size_t i = 0; i < run.result.levels.size(); ++i) {
    const auto& sub = run.result.levels[i];
    t.add_row({sub.level_name, fmt_pct(sub.overall_sparsity),
               fmt_pct(sub.accuracy), fmt_pct(run.heuristic_acc[i]),
               fmt_pct(run.ub_acc[i])});
  }
  std::cout << t.str();
  std::cout << "  original (dense) acc: "
            << fmt_pct(run.result.original_accuracy)
            << " | BP-only backbone acc: "
            << fmt_pct(run.result.backbone_accuracy) << "\n";
}

}  // namespace

int main() {
  using namespace rt3;
  bench::print_header("Fig. 3 - search space exploration",
                      "paper Fig. 3(a) Pareto frontiers, (b) P_L, (c) P_T");

  const FrontierRun loose = explore(104.0, 51, /*episodes=*/4);
  const FrontierRun tight = explore(94.0, 51, /*episodes=*/4);

  std::cout << "(a) Pareto frontiers\n";
  print_frontier("Loose (104 ms)", loose.result);
  print_frontier("Tight (94 ms)", tight.result);

  std::cout << "\n(b) Best solution under the LOOSE constraint (P_L)";
  print_best_solution("P_L", loose);
  std::cout << "\n(c) Best solution under the TIGHT constraint (P_T)";
  print_best_solution("P_T", tight);

  // Coverage check: the loose frontier should dominate-or-match the tight
  // one (paper: "the Pareto frontier [of the loose constraint] covers the
  // one with tight constraint").
  double best_loose = 0.0;
  double best_tight = 0.0;
  for (const auto& p : loose.result.explored) {
    if (p.feasible) {
      best_loose = std::max(best_loose, p.weighted_accuracy);
    }
  }
  for (const auto& p : tight.result.explored) {
    if (p.feasible) {
      best_tight = std::max(best_tight, p.weighted_accuracy);
    }
  }
  std::cout << "\nShape check: best loose-constraint accuracy ("
            << fmt_pct(best_loose) << ") >= best tight-constraint accuracy ("
            << fmt_pct(best_tight)
            << ") -> looser deadlines admit denser, more accurate models.\n";
  return 0;
}
