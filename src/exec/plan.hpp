// Precompiled execution plans for the measured backend.
//
// A KernelPlan fixes, ahead of time, everything a kernel needs to execute
// one weight matrix in one ExecMode: the dense payload (kDense), the
// kept-column block layout (kBlock), or the pattern-tiled structure
// (kPattern) in which each Pattern's kept-index list is compiled once into
// a per-row CSR and shared by every tile assigned that pattern.  A
// PlanCache pre-builds one plan per (layer, V/F level) at construction, so
// activating a level at a governor switch is a pointer swap — the runtime
// analogue of the paper's ms-scale pattern-set switch, with the expensive
// compilation paid before serving starts.
//
// Edge tiles of matrices whose dimensions are not multiples of psize get a
// private clipped CSR (kept cells outside the matrix are dropped), so
// plans handle arbitrary layer shapes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nn/linear.hpp"
#include "perf/latency_model.hpp"
#include "sparse/block_format.hpp"
#include "sparse/pattern.hpp"
#include "tensor/tensor.hpp"

namespace rt3 {

struct TuningRecord;  // exec/tuner.hpp

/// Tunable knobs of one kernel launch.  The defaults are sane everywhere;
/// the offline autotuner (exec/tuner.hpp) searches this space per
/// (layer, level) and bakes winners into the PlanCache.
struct KernelOptions {
  /// k-tile (rows of X kept hot) for the dense kernel; 0 = auto-size so
  /// the active X slice fits the per-core L1/L2 budget (exec/simd.hpp).
  std::int64_t k_tile = 64;
  /// Minimum output rows per parallel task; below this the kernel runs
  /// serially on the calling thread.
  std::int64_t row_grain = 16;
  /// Independent j-vector accumulator chains in flight per row (1, 2 or
  /// 4).  More chains hide fma latency; lanes never mix, so the per-lane
  /// accumulation order — and therefore bitwise output — is unchanged.
  std::int64_t unroll = 2;
  /// Worker-thread cap for this launch; 0 = every pool worker.  The
  /// autotuner uses it to pick a per-(layer, level) parallelism degree
  /// without resizing the shared pool.
  std::int64_t threads = 0;
};

/// One Pattern's kept cells as a CSR over tile rows: row r's kept columns
/// are cols[row_ptr[r] .. row_ptr[r+1]), ascending.  Values stored against
/// this structure are laid out in the same traversal order.
struct CompiledPattern {
  std::int64_t psize = 0;
  std::vector<std::int32_t> row_ptr;  // psize + 1 entries
  std::vector<std::int32_t> cols;

  static CompiledPattern compile(const Pattern& pattern);
};

/// One psize x psize tile of a pattern plan.  Interior tiles reference the
/// shared CompiledPattern by id; clipped edge tiles carry their own CSR.
struct PatternTile {
  /// Index into PatternPlan::compiled, or -1 for a clipped edge tile.
  std::int32_t pattern_id = -1;
  /// Offset of this tile's first value in PatternPlan::values.
  std::int64_t value_offset = 0;
  /// Private CSR for clipped tiles (empty for interior tiles).
  std::vector<std::int32_t> row_ptr;
  std::vector<std::int32_t> cols;
};

/// Pattern-tiled execution structure for one weight matrix: per-tile
/// pattern assignment (paper's retained-L2 rule over the backbone-masked
/// weights), shared compiled kept-index lists, tile-major values.
struct PatternPlan {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t psize = 0;
  std::int64_t tiles_r = 0;
  std::int64_t tiles_c = 0;
  std::vector<CompiledPattern> compiled;  // one per set pattern
  std::vector<PatternTile> tiles;         // row-major over the tile grid
  std::vector<float> values;

  /// Builds the plan from an (already backbone-masked) weight matrix.
  /// Dimensions need NOT be multiples of psize.
  static PatternPlan build(const Tensor& masked_weight, const PatternSet& set);

  /// CSR of one tile (shared pattern or private clipped structure).
  const std::int32_t* tile_row_ptr(const PatternTile& tile) const;
  const std::int32_t* tile_cols(const PatternTile& tile) const;

  /// The dense matrix this plan computes with (masked weight under the
  /// per-tile pattern assignment) — the kernel's ground truth in tests.
  Tensor to_dense() const;

  double sparsity() const;
};

/// Element-wise COO execution structure for ExecMode::kIrregular: one
/// (row, col, value) triple per nonzero, sorted row-major so per-element
/// contributions still reach each output in ascending-k order.  This is
/// the paper's Challenge-1 strawman made measurable — same nonzeros as a
/// regular plan, but every term pays per-element index loads and an
/// output-row round trip instead of streaming a compiled structure.
struct IrregularPlan {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::vector<std::int32_t> row_idx;  // per nonzero, row-major sorted
  std::vector<std::int32_t> col_idx;
  std::vector<float> values;
  /// First triple of each matrix row (rows + 1 entries) — used only to
  /// partition the triple list deterministically across workers.
  std::vector<std::int64_t> row_start;

  std::int64_t nnz() const {
    return static_cast<std::int64_t>(values.size());
  }

  /// Collects every nonzero of an (already masked) weight matrix.
  static IrregularPlan build(const Tensor& masked_weight);

  Tensor to_dense() const;
  double sparsity() const;
};

/// Everything needed to execute one layer in one ExecMode.
struct LayerPlan {
  ExecMode mode = ExecMode::kDense;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  Tensor dense_weight;                     // kDense payload
  std::optional<BlockPrunedMatrix> block;  // kBlock payload
  std::optional<PatternPlan> pattern;      // kPattern payload
  std::optional<IrregularPlan> irregular;  // kIrregular payload
  /// Autotuned launch options for THIS (layer, level); absent = use the
  /// backend-wide defaults.
  std::optional<KernelOptions> tuned;

  /// The dense matrix the kernel multiplies by (for reference checks).
  Tensor dense_equivalent() const;
  double sparsity() const;
};

/// Pre-built plans for every (layer, V/F level); swapping the active level
/// is a pointer reassignment whose wall time is returned to the caller.
class PlanCache {
 public:
  /// `backbone_masks` may be empty (dense backbone) or hold one
  /// weight-shaped 0/1 mask per layer.  `sets` holds one PatternSet per
  /// level and is required for kPattern; for other modes it may be empty
  /// and `num_levels` sizes the (identical) per-level plans.  kIrregular
  /// with sets executes each level's PATTERN nonzeros as COO triples —
  /// the same pruned weights a kPattern cache would run, so the measured
  /// gap between the two caches is pure indexing overhead (Challenge 1).
  /// `bp_blocks` is the row-block count for kBlock plans; layers whose row
  /// count is not divisible fall back to a single block.
  PlanCache(ExecMode mode, const std::vector<Linear*>& layers,
            const std::vector<Tensor>& backbone_masks,
            const std::vector<PatternSet>& sets, std::int64_t num_levels,
            std::int64_t bp_blocks);

  std::int64_t num_layers() const {
    return static_cast<std::int64_t>(plans_.empty() ? 0 : plans_[0].size());
  }
  std::int64_t num_levels() const {
    return static_cast<std::int64_t>(plans_.size());
  }
  ExecMode mode() const { return mode_; }

  /// Activates a level's plan set; returns the swap's host wall ms
  /// (pointer reassignment — microseconds).  No-op if already active.
  double swap_to(std::int64_t level);

  std::int64_t active_level() const { return active_level_; }
  const LayerPlan& active_plan(std::int64_t layer) const;
  const LayerPlan& plan(std::int64_t layer, std::int64_t level) const;

  /// Host wall ms spent pre-building every plan at construction.
  double build_wall_ms() const { return build_wall_ms_; }

  /// Installs autotuned launch options for one (layer, level).
  void set_tuned(std::int64_t layer, std::int64_t level,
                 const KernelOptions& options);
  /// Applies every entry of a tuning record (exec/tuner.hpp) whose
  /// (layer, level) exists in this cache; returns how many applied.
  std::int64_t apply_tuning(const TuningRecord& record);

  /// Weight-sparsity of a level's plans (weighted across layers).
  double level_sparsity(std::int64_t level) const;

 private:
  ExecMode mode_;
  std::vector<std::vector<LayerPlan>> plans_;  // [level][layer]
  std::vector<const LayerPlan*> active_;
  std::int64_t active_level_ = -1;
  double build_wall_ms_ = 0.0;
};

}  // namespace rt3
