#include "serve/session.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "pruning/pattern_prune.hpp"

namespace rt3 {

const std::vector<std::int64_t>& paper_serve_ladder() {
  static const std::vector<std::int64_t> ladder = {5, 3, 2};  // F -> N -> E
  return ladder;
}

LatencyModel paper_calibrated_latency() {
  LatencyModel latency;
  latency.calibrate(ModelSpec::paper_transformer(), 0.6426, ExecMode::kBlock,
                    1400.0, 114.59);
  return latency;
}

std::vector<double> paper_ladder_sparsities(const LatencyModel& latency,
                                            double timing_constraint_ms) {
  const VfTable table = VfTable::odroid_xu3_a7();
  const ModelSpec spec = ModelSpec::paper_transformer();
  std::vector<double> sparsities;
  for (std::int64_t li : paper_serve_ladder()) {
    const double tuned = latency.sparsity_for_latency(
        spec, ExecMode::kPattern, table.level(li).freq_mhz,
        timing_constraint_ms);
    sparsities.push_back(std::max(0.6426, tuned));
  }
  return sparsities;
}

ReconfigEngine& ServeSession::engine() {
  check(engine_ != nullptr,
        "ServeSession: hardware-only baseline has no ReconfigEngine");
  return *engine_;
}

MeasuredBackend& ServeSession::measured_backend() {
  check(measured_ != nullptr,
        "ServeSession: analytic session has no MeasuredBackend");
  return *measured_;
}

ServeSession::ServeSession(const ServeSessionConfig& config)
    : rng_(config.seed) {
  const VfTable table = VfTable::odroid_xu3_a7();
  const ModelSpec spec = ModelSpec::paper_transformer();
  const LatencyModel latency = paper_calibrated_latency();
  sparsities_ = paper_ladder_sparsities(latency, config.timing_constraint_ms);
  const bool measured = config.backend == ExecBackendKind::kMeasured;

  ServerConfig scfg;
  scfg.battery_capacity_mj = config.battery_capacity_mj;
  scfg.batch = config.batch;
  scfg.scheduler = config.scheduler;
  scfg.governor_margin = config.governor_margin;
  scfg.governor_shrink_batch = config.governor_shrink_batch;
  scfg.software_reconfig = config.software_reconfig;
  scfg.shed_expired = config.shed_expired;
  scfg.exec_mode =
      config.software_reconfig ? ExecMode::kPattern : ExecMode::kBlock;
  const std::vector<double> served_sparsities =
      config.software_reconfig
          ? sparsities_
          : std::vector<double>(paper_serve_ladder().size(), 0.6426);
  server_ = std::make_unique<Server>(
      scfg, table, Governor::equal_tranches(paper_serve_ladder()), PowerModel(),
      latency, spec, served_sparsities);

  if (!config.software_reconfig && !measured) {
    return;  // hardware-only analytic baseline: no engine, no kernels
  }

  // Resident backbone with real masks; the analytic models carry the
  // paper-scale numbers, the engine carries the switch semantics.  The
  // measured backend needs enough MAC work per layer to time, so its
  // backbone is bigger than the 16 x 16 engine-only demo.
  const std::int64_t dim = measured ? config.measured_layer_dim : 16;
  const std::int64_t num_layers = measured ? config.measured_layers : 2;
  check(dim >= 8 && num_layers >= 1, "ServeSession: bad backbone sizing");
  for (std::int64_t i = 0; i < num_layers; ++i) {
    owned_layers_.push_back(std::make_unique<Linear>(dim, dim, rng_));
    layers_.push_back(owned_layers_.back().get());
  }
  pruner_ = std::make_unique<ModelPruner>(layers_);
  BpConfig bp;
  bp.num_blocks = 4;
  bp.prune_fraction = 0.25;
  pruner_->apply_bp(bp);
  std::vector<PatternSet> sets;
  for (double s : {0.25, 0.5, 0.75}) {  // denser set at faster level
    sets.push_back(random_pattern_set(4, s, 2, rng_));
  }

  if (measured) {
    std::vector<double> freqs;
    for (std::int64_t li : paper_serve_ladder()) {
      freqs.push_back(table.level(li).freq_mhz);
    }
    MeasuredBackendConfig mcfg;
    mcfg.mode = config.software_reconfig ? ExecMode::kPattern
                                         : ExecMode::kBlock;
    mcfg.threads = config.measured_threads;
    mcfg.max_batch =
        std::max<std::int64_t>(64, config.batch.max_batch_size);
    const std::vector<PatternSet> level_sets =
        config.software_reconfig ? sets : std::vector<PatternSet>{};
    measured_ = std::make_unique<MeasuredBackend>(
        mcfg, layers_, pruner_->backbone_masks(), level_sets,
        std::move(freqs));
    // Map a batch of 1 at the fastest level to ~80% of the timing
    // constraint, so the virtual session walks the same battery/deadline
    // regime as the calibrated analytic path.
    measured_->auto_scale(0.8 * config.timing_constraint_ms);
    server_->attach_backend(measured_.get());
  }

  if (config.software_reconfig) {
    engine_ = std::make_unique<ReconfigEngine>(*pruner_, std::move(sets),
                                               SwitchCostModel(), spec, 100);
    server_->attach_engine(engine_.get());
  }
}

}  // namespace rt3
