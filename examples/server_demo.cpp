// Battery-aware serving demo: the same bursty traffic served twice over
// identical batteries —
//   A. hardware-only reconfiguration (DVFS steps down, same sub-model):
//      every request at the slower levels blows the deadline;
//   B. RT3 (DVFS + pattern-set switching between batches): the engine
//      swaps to a sparser sub-model when the governor steps down, so the
//      deadline holds across the whole discharge and nothing is lost.
// Then the multi-model front-end (serve/node.hpp):
//   C. three backbone-resident models behind ONE battery and governor,
//      requests routed by model id; a single battery step-down
//      drain-then-switches every resident model at the same batch
//      boundary, and per-model stats roll up into the node totals.
// This is the serving-system version of the battery_sim example.
//
// Usage: server_demo [analytic|measured] [fifo|edf|edf-prio]
//   analytic (default) models batch latency with the calibrated
//   LatencyModel; measured actually runs the pruned layers as kernels and
//   lets wall time drive the virtual clock.  The second argument picks the
//   RT3 session's scheduling policy (default fifo).
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "exec/backend.hpp"
#include "serve/policy.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/traffic.hpp"

int main(int argc, char** argv) {
  using namespace rt3;
  const ExecBackendKind backend =
      exec_backend_from_name(argc > 1 ? argv[1] : "analytic");
  const SchedulingPolicy policy =
      scheduling_policy_from_name(argc > 2 ? argv[2] : "fifo");
  std::cout << "RT3 serving demo: bursty traffic along a draining battery\n"
            << "========================================================="
            << "\nexecution backend: " << exec_backend_name(backend)
            << ", scheduling policy: " << scheduling_policy_name(policy)
            << "\n\n";

  TrafficConfig tcfg;
  tcfg.scenario = TrafficScenario::kBurst;
  tcfg.rate_rps = 3.0;
  tcfg.duration_ms = 60'000.0;
  // Mixed interactive/background deadlines (the bench's workload): with
  // one uniform slack, deadline order degenerates to arrival order and
  // the policy argument would be invisible.
  tcfg.deadline_slack_ms = 1'000.0;
  tcfg.tight_fraction = 0.3;
  tcfg.tight_slack_ms = 350.0;
  const std::vector<Request> schedule = generate_traffic(tcfg);
  std::cout << schedule.size() << " requests over "
            << fmt_f(tcfg.duration_ms / 1000.0, 0)
            << " s; 30% interactive (deadline = arrival + "
            << fmt_f(tcfg.tight_slack_ms, 0) << " ms), the rest background ("
            << fmt_f(tcfg.deadline_slack_ms, 0) << " ms slack)\n\n";

  ServeSessionConfig hw_only;
  hw_only.software_reconfig = false;
  hw_only.backend = backend;
  ServeSession a(hw_only);
  const ServerStats sa = a.server().serve(schedule);

  ServeSessionConfig rt3_cfg;  // software_reconfig = true
  rt3_cfg.backend = backend;
  rt3_cfg.scheduler.policy = policy;
  ServeSession b(rt3_cfg);
  const ServerStats sb = serve_concurrent(b.server(), schedule, 2);

  TablePrinter t({"strategy", "served", "dropped", "p99 (ms)", "miss rate",
                  "switches", "energy (mJ)"});
  t.add_row({"A: DVFS only", std::to_string(sa.completed),
             std::to_string(sa.dropped), fmt_f(sa.latency_percentile(99.0), 1),
             fmt_pct(sa.miss_rate()), std::to_string(sa.switches),
             fmt_f(sa.energy_used_mj, 0)});
  t.add_row({"B: DVFS + RT3", std::to_string(sb.completed),
             std::to_string(sb.dropped), fmt_f(sb.latency_percentile(99.0), 1),
             fmt_pct(sb.miss_rate()), std::to_string(sb.switches),
             fmt_f(sb.energy_used_mj, 0)});
  std::cout << t.str() << "\nRT3 session detail:\n" << sb.summary();

  std::cout << "\nWith hardware-only reconfiguration the fixed sub-model "
               "breaks the per-\ninference deadline as soon as the governor "
               "leaves F-mode; RT3 drains the\nin-flight batch, swaps the "
               "pattern set in milliseconds, and keeps the\nsub-model inside "
               "T at every level, so only burst-queueing tails miss\n(paper "
               "Tables II/III, now under concurrent load).\n";

  // C: the multi-model node — three NLP services resident on one phone,
  // one battery, one governor; the same mean load split across them.
  std::cout << "\nC: multi-model node (3 models, ONE battery/governor)\n"
            << "----------------------------------------------------\n";
  TrafficConfig ncfg = tcfg;
  ncfg.num_models = 3;
  const std::vector<Request> node_schedule = generate_traffic(ncfg);
  ServeSessionConfig per_model;
  per_model.backend = backend;
  per_model.scheduler.policy = policy;
  NodeSession node_session(per_model, ncfg.num_models);
  const NodeStats nstats =
      serve_node_concurrent(node_session.node(), node_schedule, 2);
  std::cout << nstats.summary()
            << "\nEvery model switched at the same drain boundaries ("
            << nstats.switches << " switches = " << ncfg.num_models
            << " models x " << nstats.model(0).switches
            << " step-downs): the shared governor never leaves a resident\n"
               "model running a sub-model the new V/F level cannot "
               "afford.\n";
  return 0;
}
