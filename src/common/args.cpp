#include "common/args.hpp"

#include <cstring>

#include "common/check.hpp"

namespace rt3 {

std::vector<std::string> split_flag_args(int argc, char** argv, int begin) {
  std::vector<std::string> args;
  for (int i = begin; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }
  return args;
}

namespace {

/// Pointer to the value token after `flag`, nullptr when absent.
const std::string* find_value(const std::vector<std::string>& args,
                              const std::string& flag) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) {
      return &args[i + 1];
    }
  }
  return nullptr;
}

}  // namespace

double arg_double(const std::vector<std::string>& args,
                  const std::string& flag, double fallback) {
  const std::string* value = find_value(args, flag);
  if (value == nullptr) {
    return fallback;
  }
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(*value, &pos);
    check(pos == value->size(), flag + ": trailing garbage in '" + *value +
                                    "'");
    return parsed;
  } catch (const CheckError&) {
    throw;
  } catch (const std::exception&) {
    throw CheckError(flag + ": cannot parse '" + *value + "' as a number");
  }
}

std::int64_t arg_int(const std::vector<std::string>& args,
                     const std::string& flag, std::int64_t fallback) {
  const std::string* value = find_value(args, flag);
  if (value == nullptr) {
    return fallback;
  }
  try {
    std::size_t pos = 0;
    const long long parsed = std::stoll(*value, &pos);
    check(pos == value->size(), flag + ": trailing garbage in '" + *value +
                                    "'");
    return static_cast<std::int64_t>(parsed);
  } catch (const CheckError&) {
    throw;
  } catch (const std::exception&) {
    throw CheckError(flag + ": cannot parse '" + *value + "' as an integer");
  }
}

std::string arg_string(const std::vector<std::string>& args,
                       const std::string& flag, const std::string& fallback) {
  const std::string* value = find_value(args, flag);
  return value != nullptr ? *value : fallback;
}

bool arg_present(const std::vector<std::string>& args,
                 const std::string& flag) {
  for (const std::string& a : args) {
    if (a == flag) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> positional_args(
    const std::vector<std::string>& args,
    const std::vector<std::string>& presence_flags) {
  // A token is positional when it is not a flag and not the value slot of
  // the (value-taking) flag right before it.
  const auto is_presence_flag = [&](const std::string& token) {
    for (const std::string& flag : presence_flags) {
      if (token == flag) {
        return true;
      }
    }
    return false;
  };
  std::vector<std::string> positionals;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].rfind("--", 0) == 0) {
      continue;
    }
    if (i > 0 && args[i - 1].rfind("--", 0) == 0 &&
        !is_presence_flag(args[i - 1])) {
      continue;  // value of the preceding flag
    }
    positionals.push_back(args[i]);
  }
  return positionals;
}

}  // namespace rt3
