// Internal dispatch seam between the public kernel entry points
// (exec/kernels.hpp) and the per-ISA inner-loop instantiations.
//
// Each ISA contributes one KernelTable of row-range functions; the tables
// are built from the SAME templated bodies (exec/kernels_inner.hpp), so
// every ISA executes the identical per-lane ascending-k accumulation
// sequence and differs only in how many lanes advance per instruction.
// Tables for ISAs the build cannot produce are nullptr and detection
// (exec/simd.hpp) skips them.
#pragma once

#include <cstdint>

#include "exec/plan.hpp"
#include "exec/simd.hpp"

namespace rt3 {

/// Dense GEMM row-range arguments: out[R,N] += W[R,C] x X[C,N] over rows
/// [r0, r1), k-tiled by `k_tile`, `unroll` independent j-vectors in
/// flight per row.
struct DenseRangeArgs {
  const float* w = nullptr;
  const float* x = nullptr;
  float* out = nullptr;
  std::int64_t cols = 0;
  std::int64_t n = 0;
  std::int64_t k_tile = 64;
  std::int64_t unroll = 1;
};

/// Kept-column block GEMM row-range arguments.
struct BlockRangeArgs {
  const BlockPrunedMatrix* w = nullptr;
  const float* x = nullptr;
  float* out = nullptr;
  std::int64_t n = 0;
  std::int64_t unroll = 1;
};

/// Pattern-CSR GEMM arguments; ranges are tile-row aligned (multiples of
/// the plan's psize) so each worker owns whole tile rows.
struct PatternRangeArgs {
  const PatternPlan* plan = nullptr;
  const float* x = nullptr;
  float* out = nullptr;
  std::int64_t n = 0;
  std::int64_t unroll = 1;
};

/// One ISA's kernel family.  All functions process output rows [r0, r1)
/// and are safe to run concurrently on disjoint ranges.
struct KernelTable {
  const char* name = "scalar";
  std::int64_t width = 1;
  void (*dense_range)(const DenseRangeArgs&, std::int64_t r0,
                      std::int64_t r1) = nullptr;
  void (*block_range)(const BlockRangeArgs&, std::int64_t r0,
                      std::int64_t r1) = nullptr;
  void (*pattern_range)(const PatternRangeArgs&, std::int64_t r0,
                        std::int64_t r1) = nullptr;
};

/// Always available.
const KernelTable* scalar_kernel_table();
/// nullptr unless the build produced AVX2+FMA code (x86 only).
const KernelTable* avx2_kernel_table();
/// nullptr off aarch64.
const KernelTable* neon_kernel_table();

/// Table for an ISA; throws CheckError when the build lacks it.
const KernelTable& kernel_table_for(SimdIsa isa);

}  // namespace rt3
