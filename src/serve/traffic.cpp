#include "serve/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace rt3 {
namespace {

constexpr double kPi = 3.14159265358979323846;
/// Off-period rate as a fraction of the base rate in kBurst.
constexpr double kBurstOffFraction = 0.1;

/// Instantaneous rate multiplier at virtual time t, normalized so the
/// session-mean multiplier is 1 (rate_rps stays the cross-scenario mean).
double rate_factor(const TrafficConfig& c, double t_ms) {
  switch (c.scenario) {
    case TrafficScenario::kSteady:
      return 1.0;
    case TrafficScenario::kBurst: {
      const double period = c.burst_on_ms + c.burst_off_ms;
      const double mean = (c.burst_on_ms * c.burst_factor +
                           c.burst_off_ms * kBurstOffFraction) /
                          period;
      const double phase = std::fmod(t_ms, period);
      const double factor =
          phase < c.burst_on_ms ? c.burst_factor : kBurstOffFraction;
      return factor / mean;
    }
    case TrafficScenario::kDiurnal: {
      // Raised cosine: trough at t=0, peak mid-session, trough at the end.
      const double phase = t_ms / c.duration_ms;
      const double factor =
          c.diurnal_min_factor +
          (1.0 - c.diurnal_min_factor) * 0.5 *
              (1.0 - std::cos(2.0 * kPi * phase));
      const double mean = (1.0 + c.diurnal_min_factor) / 2.0;
      return factor / mean;
    }
  }
  return 1.0;
}

double peak_factor(const TrafficConfig& c) {
  double peak = 1.0;
  // Sample the normalized factor densely; the shapes are smooth or
  // two-valued, so 1000 points bound the true peak tightly.
  for (std::int64_t i = 0; i < 1000; ++i) {
    const double t = c.duration_ms * static_cast<double>(i) / 1000.0;
    peak = std::max(peak, rate_factor(c, t));
  }
  return peak;
}

/// The historical single-model generator: one thinned-Poisson stream at
/// `config.rate_rps`, every request tagged `model_id`.  This body is the
/// bitwise-stability contract — multi-model traffic is a merge of these.
std::vector<Request> generate_single_model(const TrafficConfig& config,
                                           std::int64_t model_id) {
  Rng rng(config.seed);
  // Priority classes and slack jitter draw from independent streams so
  // tagging requests never perturbs the arrival process — schedules stay
  // bitwise-identical in arrival for any classes / jitter setting.
  Rng prio_rng(config.seed ^ 0xc2b2ae3d27d4eb4fULL);
  Rng slack_rng(config.seed ^ 0x165667b19e3779f9ULL);
  const double base_per_ms = config.rate_rps / 1000.0;
  const double peak_per_ms = base_per_ms * peak_factor(config);

  // Thinning (Lewis & Shedler): homogeneous Poisson at the peak rate,
  // accept each candidate with probability rate(t) / peak.
  std::vector<Request> schedule;
  schedule.reserve(
      static_cast<std::size_t>(config.rate_rps * config.duration_ms / 1000.0));
  double t = 0.0;
  std::int64_t next_id = 0;
  for (;;) {
    t += -std::log(1.0 - rng.uniform()) / peak_per_ms;
    if (t >= config.duration_ms) {
      break;
    }
    const double accept = base_per_ms * rate_factor(config, t) / peak_per_ms;
    if (rng.uniform() < accept) {
      Request r;
      r.id = next_id++;
      r.arrival_ms = t;
      r.model_id = model_id;
      double slack = config.deadline_slack_ms;
      if (config.tight_fraction > 0.0 &&
          slack_rng.bernoulli(config.tight_fraction)) {
        slack = config.tight_slack_ms;
      }
      if (config.deadline_slack_jitter > 0.0) {
        slack *= slack_rng.uniform(1.0 - config.deadline_slack_jitter,
                                   1.0 + config.deadline_slack_jitter);
      }
      r.deadline_ms = t + slack;
      if (config.priority_classes > 1) {
        r.priority = prio_rng.uniform_int(config.priority_classes);
      }
      schedule.push_back(r);
    }
  }
  return schedule;
}

}  // namespace

TrafficScenario traffic_scenario_from_name(const std::string& name) {
  if (name == "steady") {
    return TrafficScenario::kSteady;
  }
  if (name == "burst") {
    return TrafficScenario::kBurst;
  }
  if (name == "diurnal") {
    return TrafficScenario::kDiurnal;
  }
  throw CheckError("unknown traffic scenario: " + name);
}

std::string traffic_scenario_name(TrafficScenario scenario) {
  switch (scenario) {
    case TrafficScenario::kSteady:
      return "steady";
    case TrafficScenario::kBurst:
      return "burst";
    case TrafficScenario::kDiurnal:
      return "diurnal";
  }
  return "?";
}

std::vector<Request> generate_traffic(const TrafficConfig& config) {
  check(config.duration_ms > 0.0, "generate_traffic: duration must be > 0");
  check(config.rate_rps > 0.0, "generate_traffic: rate must be > 0");
  check(config.deadline_slack_ms > 0.0,
        "generate_traffic: deadline slack must be > 0");
  check(config.burst_on_ms > 0.0 && config.burst_off_ms > 0.0,
        "generate_traffic: burst periods must be > 0");
  check(config.burst_factor >= 1.0, "generate_traffic: burst_factor < 1");
  check(config.diurnal_min_factor > 0.0 && config.diurnal_min_factor <= 1.0,
        "generate_traffic: diurnal_min_factor out of (0, 1]");
  check(config.priority_classes >= 1,
        "generate_traffic: priority_classes must be >= 1");
  check(config.deadline_slack_jitter >= 0.0 &&
            config.deadline_slack_jitter < 1.0,
        "generate_traffic: deadline_slack_jitter out of [0, 1)");
  check(config.tight_fraction >= 0.0 && config.tight_fraction <= 1.0,
        "generate_traffic: tight_fraction out of [0, 1]");
  check(config.tight_slack_ms > 0.0,
        "generate_traffic: tight_slack_ms must be > 0");
  check(config.num_models >= 1, "generate_traffic: num_models must be >= 1");
  check(config.model_weights.empty() ||
            config.model_weights.size() ==
                static_cast<std::size_t>(config.num_models),
        "generate_traffic: model_weights must have num_models entries");

  if (config.num_models == 1) {
    // Historical path, bitwise-identical: same streams, same draws.
    return generate_single_model(config, 0);
  }

  double weight_sum = 0.0;
  for (const double w : config.model_weights) {
    check(w > 0.0, "generate_traffic: model weights must be > 0");
    weight_sum += w;
  }

  // Each model is an INDEPENDENT arrival process: its own seed-derived
  // rng streams (arrivals, priorities, slacks), its own share of the
  // mean rate, the scenario's shape.  Merging by arrival time then gives
  // the node-level mix without any cross-model rng coupling.  (The rng
  // SEEDING is what stays independent; the normalized rate shares are
  // not — re-weighting or adding a model changes every model's share of
  // rate_rps and therefore its thinned schedule.)
  std::vector<Request> merged;
  for (std::int64_t m = 0; m < config.num_models; ++m) {
    TrafficConfig per_model = config;
    per_model.num_models = 1;
    per_model.model_weights.clear();
    const double share =
        config.model_weights.empty()
            ? 1.0 / static_cast<double>(config.num_models)
            : config.model_weights[static_cast<std::size_t>(m)] / weight_sum;
    per_model.rate_rps = config.rate_rps * share;
    std::uint64_t state =
        config.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(m);
    per_model.seed = splitmix64(state);
    const std::vector<Request> one = generate_single_model(per_model, m);
    merged.insert(merged.end(), one.begin(), one.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Request& a, const Request& b) {
              return a.arrival_ms != b.arrival_ms
                         ? a.arrival_ms < b.arrival_ms
                         : a.model_id < b.model_id;
            });
  for (std::size_t i = 0; i < merged.size(); ++i) {
    merged[i].id = static_cast<std::int64_t>(i);
  }
  return merged;
}

}  // namespace rt3
