#include "perf/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace rt3 {
namespace {

/// Batch cycles under a config: fixed once, per-item MAC work B times.
double predicted_batch_cycles(const ModelSpec& spec,
                              const LatencyObservation& obs,
                              const LatencyModelConfig& config) {
  const double per_item = spec.dense_macs() * (1.0 - obs.sparsity) *
                          config.mode_overhead(obs.mode) /
                          config.macs_per_cycle;
  return config.fixed_cycles +
         static_cast<double>(obs.batch_size) * per_item;
}

}  // namespace

ModelSpec spec_from_layers(const std::string& name,
                           const std::vector<Linear*>& layers,
                           std::int64_t tokens_per_inference) {
  check(!layers.empty(), "spec_from_layers: no layers");
  check(tokens_per_inference >= 1, "spec_from_layers: bad token count");
  ModelSpec spec;
  spec.name = name;
  spec.tokens_per_inference = tokens_per_inference;
  for (std::size_t li = 0; li < layers.size(); ++li) {
    LayerSpec layer;
    layer.name = "linear" + std::to_string(li);
    layer.rows = layers[li]->weight().value().size(0);
    layer.cols = layers[li]->weight().value().size(1);
    layer.uses_per_token = 1;
    spec.layers.push_back(std::move(layer));
  }
  return spec;
}

LatencyModelConfig fit_latency_config(
    const ModelSpec& spec, const std::vector<LatencyObservation>& observations,
    double host_freq_mhz, LatencyModelConfig base) {
  check(host_freq_mhz > 0.0, "fit_latency_config: bad host frequency");
  const double cycles_per_ms = host_freq_mhz * 1e3;
  const double macs = spec.dense_macs();
  check(macs > 0.0, "fit_latency_config: spec has no MACs");

  // Dense anchor: regress measured cycles against effective MAC count.
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  std::int64_t n_dense = 0;
  for (const LatencyObservation& obs : observations) {
    if (obs.mode != ExecMode::kDense) {
      continue;
    }
    check(obs.wall_ms > 0.0 && obs.batch_size >= 1,
          "fit_latency_config: bad dense observation");
    const double x =
        static_cast<double>(obs.batch_size) * macs * (1.0 - obs.sparsity);
    const double y = obs.wall_ms * cycles_per_ms;
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n_dense;
  }
  check(n_dense >= 2, "fit_latency_config: need >= 2 dense observations");
  const double denom = static_cast<double>(n_dense) * sxx - sx * sx;
  check(std::abs(denom) > 1e-12 * sxx,
        "fit_latency_config: dense observations share one batch size");
  double slope = (static_cast<double>(n_dense) * sxy - sx * sy) / denom;
  double fixed = (sy - slope * sx) / static_cast<double>(n_dense);
  if (slope <= 0.0) {
    // Timing noise made measured cycles non-monotone in batch size; fall
    // back to the through-origin ratio estimator (always positive for
    // positive observations) rather than failing the calibration run.
    slope = sy / sx;
    fixed = 0.0;
  }
  LatencyModelConfig fitted = base;
  fitted.macs_per_cycle = 1.0 / slope;
  fitted.fixed_cycles = std::max(0.0, fixed);

  // Each sparse mode's overhead: mean ratio of measured compute cycles to
  // the dense-anchored prediction.
  const auto fit_overhead = [&](ExecMode mode, double fallback) {
    double ratio_sum = 0.0;
    std::int64_t count = 0;
    for (const LatencyObservation& obs : observations) {
      if (obs.mode != mode) {
        continue;
      }
      check(obs.wall_ms > 0.0 && obs.batch_size >= 1 && obs.sparsity < 1.0,
            "fit_latency_config: bad sparse observation");
      const double compute =
          obs.wall_ms * cycles_per_ms - fitted.fixed_cycles;
      const double baseline = static_cast<double>(obs.batch_size) * macs *
                              (1.0 - obs.sparsity) / fitted.macs_per_cycle;
      ratio_sum += compute / baseline;
      ++count;
    }
    if (count == 0) {
      return fallback;
    }
    return std::max(0.05, ratio_sum / static_cast<double>(count));
  };
  fitted.block_overhead = fit_overhead(ExecMode::kBlock, base.block_overhead);
  fitted.pattern_overhead =
      fit_overhead(ExecMode::kPattern, base.pattern_overhead);
  fitted.irregular_overhead =
      fit_overhead(ExecMode::kIrregular, base.irregular_overhead);
  return fitted;
}

double calibration_error(const ModelSpec& spec,
                         const std::vector<LatencyObservation>& observations,
                         const LatencyModelConfig& config,
                         double host_freq_mhz) {
  check(!observations.empty(), "calibration_error: no observations");
  check(host_freq_mhz > 0.0, "calibration_error: bad host frequency");
  double err = 0.0;
  for (const LatencyObservation& obs : observations) {
    check(obs.wall_ms > 0.0, "calibration_error: bad observation");
    const double predicted_ms =
        predicted_batch_cycles(spec, obs, config) / (host_freq_mhz * 1e3);
    err += std::abs(predicted_ms - obs.wall_ms) / obs.wall_ms;
  }
  return err / static_cast<double>(observations.size());
}

}  // namespace rt3
