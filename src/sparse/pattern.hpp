// Patterns and pattern sets — the unit of software reconfiguration in RT3.
//
// A Pattern is a psize x psize binary mask.  A PatternSet is a small
// library of m patterns sharing one sparsity ratio; at run time every
// psize x psize block of a weight matrix is assigned one pattern from the
// active set.  Switching V/F level swaps the active PatternSet only — the
// backbone weights stay resident — which is why the paper's switch cost is
// milliseconds instead of the minute-scale full-model reload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace rt3 {

/// A square binary mask of side `psize`.
class Pattern {
 public:
  Pattern(std::int64_t psize, std::vector<std::uint8_t> bits);

  /// All-ones (dense) pattern.
  static Pattern dense(std::int64_t psize);

  /// Builds a pattern keeping exactly `kept` positions: the `kept` largest
  /// entries of the importance map (ties broken by index).
  static Pattern from_importance(const Tensor& importance, std::int64_t kept);

  std::int64_t psize() const { return psize_; }
  bool kept(std::int64_t r, std::int64_t c) const;
  std::int64_t count_kept() const;
  double sparsity() const;

  const std::vector<std::uint8_t>& bits() const { return bits_; }

  /// Row-major flat indices of the kept cells, ascending — the kept-index
  /// list a kernel plan precompiles once per pattern instead of re-testing
  /// bits per tile at execution time.
  std::vector<std::int64_t> kept_indices() const;

  /// Binary mask as a psize x psize tensor of 0/1.
  Tensor to_mask() const;

  /// Retained L2 energy of a block under this pattern (sum of squares of
  /// kept entries) — the selection criterion for per-block assignment.
  double retained_l2(const Tensor& block) const;

  /// Fraction of positions where two patterns agree (for the Fig. 4
  /// similarity observation).
  double overlap(const Pattern& other) const;

  /// ASCII art (one char per cell) for visualization benches.
  std::string to_ascii() const;

  bool operator==(const Pattern& other) const = default;

 private:
  std::int64_t psize_;
  std::vector<std::uint8_t> bits_;  // row-major 0/1
};

/// A library of patterns with one common sparsity ratio, used for one V/F
/// level.
struct PatternSet {
  std::vector<Pattern> patterns;
  /// Nominal sparsity of the set (every member has the same kept count).
  double sparsity() const;
  std::int64_t psize() const;
  /// Transfer size of the set during a reconfiguration switch: packed
  /// bitmaps (psize^2 / 8 bytes per pattern).
  std::int64_t storage_bytes() const;
};

}  // namespace rt3
