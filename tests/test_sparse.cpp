// Tests for sparse formats: round trips, SpMM equivalence vs dense,
// storage accounting, pattern semantics.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "sparse/block_format.hpp"
#include "sparse/formats.hpp"
#include "sparse/pattern.hpp"
#include "tensor/tensor.hpp"

namespace rt3 {
namespace {

Tensor random_sparse_dense(std::int64_t rows, std::int64_t cols,
                           double sparsity, Rng& rng) {
  Tensor t = Tensor::randn({rows, cols}, rng);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    if (rng.bernoulli(sparsity)) {
      t[i] = 0.0F;
    }
  }
  return t;
}

TEST(Coo, RoundTrip) {
  Rng rng(1);
  const Tensor dense = random_sparse_dense(6, 8, 0.6, rng);
  const CooMatrix coo = CooMatrix::from_dense(dense);
  EXPECT_TRUE(coo.to_dense().allclose(dense));
  EXPECT_EQ(coo.nnz(), dense.count_nonzero());
}

TEST(Coo, MultiplyMatchesDense) {
  Rng rng(2);
  const Tensor a = random_sparse_dense(5, 7, 0.5, rng);
  const Tensor b = Tensor::randn({7, 3}, rng);
  EXPECT_TRUE(CooMatrix::from_dense(a).multiply(b).allclose(matmul2d(a, b),
                                                            1e-4F));
}

TEST(Coo, StorageBytesIsTwelvePerNnz) {
  Rng rng(3);
  const Tensor a = random_sparse_dense(10, 10, 0.7, rng);
  const CooMatrix coo = CooMatrix::from_dense(a);
  EXPECT_EQ(coo.storage_bytes(), coo.nnz() * 12);
}

TEST(Csr, RoundTripFromDenseAndCoo) {
  Rng rng(4);
  const Tensor dense = random_sparse_dense(6, 9, 0.6, rng);
  EXPECT_TRUE(CsrMatrix::from_dense(dense).to_dense().allclose(dense));
  const CooMatrix coo = CooMatrix::from_dense(dense);
  EXPECT_TRUE(CsrMatrix::from_coo(coo).to_dense().allclose(dense));
}

TEST(Csr, MultiplyMatchesDense) {
  Rng rng(5);
  const Tensor a = random_sparse_dense(8, 6, 0.4, rng);
  const Tensor b = Tensor::randn({6, 5}, rng);
  EXPECT_TRUE(CsrMatrix::from_dense(a).multiply(b).allclose(matmul2d(a, b),
                                                            1e-4F));
}

TEST(Csr, BeatsOrTiesCooStorage) {
  Rng rng(6);
  const Tensor a = random_sparse_dense(20, 20, 0.8, rng);
  const auto coo = CooMatrix::from_dense(a);
  const auto csr = CsrMatrix::from_dense(a);
  // 8 B/nnz + row ptr vs 12 B/nnz: CSR wins once nnz > rows+1.
  EXPECT_LE(csr.storage_bytes(), coo.storage_bytes() + 21 * 4);
}

Tensor block_pruned_dense(std::int64_t rows, std::int64_t cols,
                          std::int64_t num_blocks, double col_prune,
                          Rng& rng) {
  Tensor t = Tensor::randn({rows, cols}, rng);
  const std::int64_t block_rows = rows / num_blocks;
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(col_prune)) {
        for (std::int64_t r = b * block_rows; r < (b + 1) * block_rows; ++r) {
          t[r * cols + c] = 0.0F;
        }
      }
    }
  }
  return t;
}

TEST(BlockFormat, RoundTrip) {
  Rng rng(7);
  const Tensor dense = block_pruned_dense(12, 10, 3, 0.5, rng);
  const auto blocked = BlockPrunedMatrix::from_dense(dense, 3);
  EXPECT_TRUE(blocked.to_dense().allclose(dense));
  EXPECT_EQ(blocked.num_blocks(), 3);
}

TEST(BlockFormat, MultiplyMatchesDense) {
  Rng rng(8);
  const Tensor a = block_pruned_dense(8, 12, 4, 0.6, rng);
  const Tensor b = Tensor::randn({12, 5}, rng);
  EXPECT_TRUE(BlockPrunedMatrix::from_dense(a, 4).multiply(b).allclose(
      matmul2d(a, b), 1e-4F));
}

TEST(BlockFormat, StorageBeatsCooAtBlockSparsity) {
  // The paper's Challenge-1 claim: per-block column indices are much
  // cheaper than per-element COO coordinates.
  Rng rng(9);
  const Tensor a = block_pruned_dense(40, 40, 4, 0.5, rng);
  const auto blocked = BlockPrunedMatrix::from_dense(a, 4);
  const auto coo = CooMatrix::from_dense(a);
  EXPECT_LT(blocked.storage_bytes(), coo.storage_bytes());
}

TEST(BlockFormat, RejectsBadBlockCount) {
  Rng rng(10);
  const Tensor a = Tensor::randn({10, 10}, rng);
  EXPECT_THROW(BlockPrunedMatrix::from_dense(a, 3), CheckError);
}

TEST(Pattern, FromImportanceKeepsTopK) {
  Tensor imp({2, 2}, {0.9F, 0.1F, 0.5F, 0.7F});
  const Pattern p = Pattern::from_importance(imp, 2);
  EXPECT_TRUE(p.kept(0, 0));   // 0.9
  EXPECT_TRUE(p.kept(1, 1));   // 0.7
  EXPECT_FALSE(p.kept(0, 1));  // 0.1
  EXPECT_EQ(p.count_kept(), 2);
  EXPECT_DOUBLE_EQ(p.sparsity(), 0.5);
}

TEST(Pattern, MaskAndAscii) {
  const Pattern p = Pattern::dense(3);
  EXPECT_TRUE(p.to_mask().allclose(Tensor::ones({3, 3})));
  EXPECT_EQ(p.to_ascii(), "###\n###\n###\n");
}

TEST(Pattern, RetainedL2PicksEnergy) {
  Tensor block({2, 2}, {3.0F, 0.0F, 0.0F, 4.0F});
  Pattern diag(2, {1, 0, 0, 1});
  Pattern anti(2, {0, 1, 1, 0});
  EXPECT_DOUBLE_EQ(diag.retained_l2(block), 25.0);
  EXPECT_DOUBLE_EQ(anti.retained_l2(block), 0.0);
}

TEST(Pattern, OverlapSelfIsOne) {
  Rng rng(11);
  Tensor imp = Tensor::rand_uniform({4, 4}, rng, 0.0F, 1.0F);
  const Pattern p = Pattern::from_importance(imp, 7);
  EXPECT_DOUBLE_EQ(p.overlap(p), 1.0);
  const Pattern q = Pattern::dense(4);
  EXPECT_NEAR(p.overlap(q), 7.0 / 16.0, 1e-12);
}

TEST(Pattern, RejectsMalformed) {
  EXPECT_THROW(Pattern(2, {1, 0, 1}), CheckError);
  EXPECT_THROW(Pattern(2, {1, 0, 2, 1}), CheckError);
}

TEST(PatternSet, StorageBytesPacksBits) {
  PatternSet set;
  set.patterns.push_back(Pattern::dense(8));
  set.patterns.push_back(Pattern::dense(8));
  // 64 bits -> 8 bytes per pattern.
  EXPECT_EQ(set.storage_bytes(), 16);
}

TEST(PatternMasked, RoundTripPreservesKeptEntries) {
  Rng rng(12);
  const Tensor dense = Tensor::randn({8, 8}, rng);
  PatternSet set;
  set.patterns.push_back(Pattern::from_importance(
      Tensor::rand_uniform({4, 4}, rng, 0.0F, 1.0F), 8));
  set.patterns.push_back(Pattern::from_importance(
      Tensor::rand_uniform({4, 4}, rng, 0.0F, 1.0F), 8));
  const auto pm = PatternMaskedMatrix::from_dense(dense, set);
  const Tensor back = pm.to_dense();
  // Every nonzero of the reconstruction matches the original.
  for (std::int64_t i = 0; i < back.numel(); ++i) {
    if (back[i] != 0.0F) {
      EXPECT_FLOAT_EQ(back[i], dense[i]);
    }
  }
  EXPECT_NEAR(pm.sparsity(), 0.5, 1e-12);
}

TEST(PatternMasked, MultiplyMatchesMaskedDense) {
  Rng rng(13);
  const Tensor dense = Tensor::randn({8, 12}, rng);
  PatternSet set;
  set.patterns.push_back(Pattern::from_importance(
      Tensor::rand_uniform({4, 4}, rng, 0.0F, 1.0F), 6));
  const auto pm = PatternMaskedMatrix::from_dense(dense, set);
  const Tensor b = Tensor::randn({12, 3}, rng);
  EXPECT_TRUE(pm.multiply(b).allclose(matmul2d(pm.to_dense(), b), 1e-4F));
}

TEST(PatternMasked, ChoosesMaxRetainedL2PerTile) {
  // Construct a matrix where tile (0,0) has energy on the diagonal and tile
  // (0,1) off-diagonal; with two complementary patterns the assignment must
  // differ per tile.
  Tensor dense({2, 4});
  dense[0 * 4 + 0] = 5.0F;  // tile 0: diagonal
  dense[1 * 4 + 1] = 5.0F;
  dense[0 * 4 + 3] = 5.0F;  // tile 1: anti-diagonal
  dense[1 * 4 + 2] = 5.0F;
  PatternSet set;
  set.patterns.emplace_back(2, std::vector<std::uint8_t>{1, 0, 0, 1});
  set.patterns.emplace_back(2, std::vector<std::uint8_t>{0, 1, 1, 0});
  const auto pm = PatternMaskedMatrix::from_dense(dense, set);
  ASSERT_EQ(pm.assignments().size(), 2U);
  EXPECT_EQ(pm.assignments()[0], 0);
  EXPECT_EQ(pm.assignments()[1], 1);
  // Nothing lost: reconstruction is exact for this construction.
  EXPECT_TRUE(pm.to_dense().allclose(dense));
}

TEST(PatternMasked, SwitchPayloadIsTiny) {
  // The run-time switch only moves pattern bitmaps + tile ids, far less
  // than the dense weight bytes (basis of the paper's 1000x switch gain).
  Rng rng(14);
  const Tensor dense = Tensor::randn({64, 64}, rng);
  PatternSet set;
  for (int i = 0; i < 4; ++i) {
    set.patterns.push_back(Pattern::from_importance(
        Tensor::rand_uniform({8, 8}, rng, 0.0F, 1.0F), 32));
  }
  const auto pm = PatternMaskedMatrix::from_dense(dense, set);
  EXPECT_LT(pm.switch_payload_bytes(), dense.numel() * 4 / 20);
}

// Sweep: all formats agree with dense multiply across sparsities.
class FormatEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(FormatEquivalence, AllFormatsMatchDense) {
  Rng rng(15);
  const double sparsity = GetParam();
  const Tensor a = random_sparse_dense(12, 12, sparsity, rng);
  const Tensor b = Tensor::randn({12, 4}, rng);
  const Tensor expected = matmul2d(a, b);
  EXPECT_TRUE(CooMatrix::from_dense(a).multiply(b).allclose(expected, 1e-4F));
  EXPECT_TRUE(CsrMatrix::from_dense(a).multiply(b).allclose(expected, 1e-4F));
  EXPECT_TRUE(BlockPrunedMatrix::from_dense(a, 4).multiply(b).allclose(
      expected, 1e-4F));
}

INSTANTIATE_TEST_SUITE_P(Sparsities, FormatEquivalence,
                         ::testing::Values(0.0, 0.3, 0.5, 0.8, 0.95));

}  // namespace
}  // namespace rt3
