// Continuous telemetry for the serving stack: a virtual-clock-driven
// sampler that records per-model and node-level time series (queue depth,
// in-flight batch size, battery fraction, governor level, per-batch
// energy draw, miss-rate / latency EWMAs, shed / reject counters) at a
// configurable deterministic cadence — sampled at BATCH BOUNDARIES by the
// serving loops, never from a wall-clock thread — so the system can see
// trends while serving instead of one end-of-session snapshot.  This is
// the observation vector a learned GovernorPolicy (ROADMAP item 2) and a
// cloud-offload decision will consume.
//
// Determinism contract: every sample is driven by the virtual serving
// clock and by counts the loops already maintain, so two runs of the same
// seeded session produce byte-identical series dumps.  Every
// instrumentation site in the serving path is one `if (telemetry_)`
// branch, and telemetry-off sessions are bitwise-identical to
// uninstrumented ones (proven by the observability cell in
// bench_serve_traffic).
//
// Memory contract: each series is a fixed-capacity buffer with
// deterministic stride-doubling downsampling — when a series fills, every
// other stored point is dropped and the keep-stride doubles, so an
// arbitrarily long session costs O(capacity) per series while preserving
// the full time span at halved resolution.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rt3 {

class TraceRecorder;

/// Fixed-capacity (time, value) series with deterministic stride-doubling
/// downsampling: points are offered in time order; the series stores every
/// `stride()`-th offered point, and when `capacity` stored points are
/// reached it drops every other one and doubles the stride.  Stored points
/// are therefore always the offered indices {0, stride, 2*stride, ...} —
/// a pure function of the offered sequence, independent of when the
/// compactions happened.
class TimeSeries {
 public:
  explicit TimeSeries(std::int64_t capacity);

  /// Offers one point; `t_ms` must be non-decreasing across calls.
  void record(double t_ms, double value);

  const std::vector<double>& times() const { return t_; }
  const std::vector<double>& values() const { return v_; }
  std::int64_t size() const { return static_cast<std::int64_t>(t_.size()); }
  /// Total points offered (stored + downsampled away).
  std::int64_t offered() const { return offered_; }
  /// Current keep-every-stride (1 until the first compaction).
  std::int64_t stride() const { return stride_; }
  /// Most recently OFFERED value (survives downsampling; 0 when empty).
  double last_value() const { return last_value_; }

 private:
  std::int64_t capacity_;
  std::int64_t stride_ = 1;
  std::int64_t offered_ = 0;
  double last_value_ = 0.0;
  std::vector<double> t_;
  std::vector<double> v_;
};

struct TelemetryConfig {
  /// Record series points every Nth batch boundary (1 = every batch).
  /// EWMAs still update on EVERY batch — the cadence only thins storage.
  std::int64_t sample_every_batches = 1;
  /// Per-series stored-point cap before stride-doubling downsampling.
  std::int64_t series_capacity = 512;
  /// Smoothing factor for the miss-rate / latency EWMAs (0 < alpha <= 1).
  double ewma_alpha = 0.2;
};

/// One executed batch, as reported by the serving loops at its boundary.
struct BatchSample {
  std::int64_t model_id = 0;
  double start_ms = 0.0;
  double end_ms = 0.0;
  std::int64_t batch_size = 0;
  std::int64_t level_pos = 0;
  double energy_mj = 0.0;
  double battery_fraction = 0.0;
  /// Target shard's pending queue depth after the batch was popped.
  std::int64_t queue_depth = 0;
  /// Pending across ALL shards (== queue_depth on a single-model Server).
  std::int64_t node_queue_depth = 0;
  /// Deadline misses among this batch's requests.
  std::int64_t misses = 0;
  /// Sum of queue-to-completion latency over this batch's requests.
  double latency_sum_ms = 0.0;
};

/// Collects deterministic time series from the serving loops and exports
/// them as Chrome trace counter events and as a compact JSON dump.
class TelemetrySampler {
 public:
  explicit TelemetrySampler(TelemetryConfig config = {});

  /// Publishes the driver loop's virtual clock for instrumentation sites
  /// without clock access (the ReconfigEngine's swap-size record).
  void set_now_ms(double now_ms) { now_ms_ = now_ms; }
  double now_ms() const { return now_ms_; }

  /// Batch-boundary sample: updates the per-model EWMAs (every call) and
  /// records all series points (every `sample_every_batches`-th call).
  void on_batch(const BatchSample& sample);

  /// Cumulative counters, sampled into series at the next batch boundary.
  void count_shed(std::int64_t model_id, std::int64_t n);
  void count_reject(std::int64_t model_id, std::int64_t n = 1);
  void count_unroutable(std::int64_t n = 1);

  /// Pattern-set switch duration at the current virtual time (recorded
  /// unsampled — switches are rare and each one matters).
  void record_switch(double duration_ms);
  /// Pattern-set storage bytes swapped in (from the ReconfigEngine).
  void record_swap_bytes(double bytes);

  /// EWMA snapshots (0 before the first batch of the model).
  double miss_ewma(std::int64_t model_id) const;
  double latency_ewma_ms(std::int64_t model_id) const;

  std::int64_t batches_seen() const { return batches_; }
  std::int64_t num_series() const {
    return static_cast<std::int64_t>(series_.size());
  }
  /// Stored points across all series.
  std::int64_t num_points() const;
  /// The named series, or nullptr when it never recorded a point.
  const TimeSeries* series(const std::string& name) const;

  /// Replays every stored point into `trace` as Chrome counter events
  /// ('C' phase) on the series' lane (0 = node, model id + 1 = model), so
  /// the series render as counter tracks merged into the session's trace
  /// stream.  Call once, before exporting the trace.
  void export_counters(TraceRecorder& trace) const;

  /// {"sample_every": N, "capacity": N, "batches": N, "series": {name:
  /// {"lane": L, "stride": S, "offered": N, "t": [...], "v": [...]}}}
  std::string to_json() const;

 private:
  TimeSeries& series_for(const std::string& name, std::int64_t lane);

  struct Entry {
    TimeSeries ts;
    std::int64_t lane = 0;
    explicit Entry(std::int64_t capacity, std::int64_t lane)
        : ts(capacity), lane(lane) {}
  };

  TelemetryConfig config_;
  double now_ms_ = 0.0;
  std::int64_t batches_ = 0;
  /// Name -> series; std::map so every export walks in canonical order.
  std::map<std::string, Entry> series_;
  std::map<std::int64_t, double> miss_ewma_;
  std::map<std::int64_t, double> latency_ewma_;
  std::map<std::int64_t, std::int64_t> shed_;
  std::map<std::int64_t, std::int64_t> rejected_;
  std::int64_t unroutable_ = 0;
};

}  // namespace rt3
